// Quickstart: build a small indoor venue by hand, index it with a VIP-tree,
// and answer an Indoor Facility Location Selection (IFLS) query.
//
// The venue is a single floor with a corridor, four rooms and a kitchen:
//
//         +-------+-------+-------+
//         | room0 | room1 | room2 |
//         +---d0--+--d1---+--d2---+
//         |        corridor       |
//         +---d3--+--d4---+--d5---+
//         | room3 | kitchen| room4|
//         +-------+-------+-------+
//
// One coffee machine already exists in the kitchen; we pick the best of the
// candidate rooms for a second one so that the farthest client is as close
// as possible to a machine (the MinMax objective).

#include <cstdio>

#include "src/core/efficient.h"
#include "src/index/vip_tree.h"
#include "src/indoor/venue_builder.h"

int main() {
  using namespace ifls;

  // 1. Describe the venue: partitions (axis-aligned rooms) and doors.
  VenueBuilder builder("quickstart-office");
  const PartitionId room0 = builder.AddPartition(Rect(0, 8, 10, 16));
  const PartitionId room1 = builder.AddPartition(Rect(10, 8, 20, 16));
  const PartitionId room2 = builder.AddPartition(Rect(20, 8, 30, 16));
  const PartitionId corridor = builder.AddPartition(
      Rect(0, 4, 30, 8), PartitionKind::kCorridor);
  const PartitionId room3 = builder.AddPartition(Rect(0, 0, 10, 4));
  const PartitionId kitchen = builder.AddPartition(Rect(10, 0, 20, 4));
  const PartitionId room4 = builder.AddPartition(Rect(20, 0, 30, 4));
  builder.AddDoor(room0, corridor, Point(5, 8));
  builder.AddDoor(room1, corridor, Point(15, 8));
  builder.AddDoor(room2, corridor, Point(25, 8));
  builder.AddDoor(room3, corridor, Point(5, 4));
  builder.AddDoor(kitchen, corridor, Point(15, 4));
  builder.AddDoor(room4, corridor, Point(25, 4));
  Result<Venue> venue = builder.Build();
  if (!venue.ok()) {
    std::fprintf(stderr, "venue error: %s\n",
                 venue.status().ToString().c_str());
    return 1;
  }
  std::printf("venue: %s\n", venue->ToString().c_str());

  // 2. Index it (offline step).
  Result<VipTree> tree = VipTree::Build(&venue.value());
  if (!tree.ok()) {
    std::fprintf(stderr, "index error: %s\n",
                 tree.status().ToString().c_str());
    return 1;
  }
  std::printf("index: %s\n", tree->ToString().c_str());

  // 3. Pose the query: clients at desks, one existing machine, three
  //    candidate rooms.
  IflsContext ctx;
  ctx.oracle = &tree.value();
  ctx.existing = {kitchen};
  ctx.candidates = {room0, room2, room3};
  int next_id = 0;
  auto desk = [&](double x, double y, PartitionId p) {
    Client c;
    c.id = next_id++;
    c.position = Point(x, y);
    c.partition = p;
    ctx.clients.push_back(c);
  };
  desk(1, 15, room0);
  desk(9, 15, room0);
  desk(15, 15, room1);
  desk(29, 15, room2);
  desk(2, 1, room3);
  desk(29, 1, room4);

  // 4. Solve with the efficient single-pass algorithm.
  Result<IflsResult> result = SolveEfficient(ctx);
  if (!result.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (!result->found) {
    std::printf("no candidate improves the current worst-case distance\n");
    return 0;
  }
  const char* names[] = {"room0", "room1", "room2", "corridor",
                         "room3", "kitchen", "room4"};
  std::printf("place the new machine in %s\n", names[result->answer]);
  std::printf("worst client-to-machine distance becomes %.2f m\n",
              result->objective);
  std::printf("stats: %s\n", result->stats.ToString().c_str());
  return 0;
}
