// Hospital nurse-station placement (the paper's motivating example):
// given patient beds (clients) and the existing nurse stations, choose the
// ward that minimizes the maximum bed-to-station walking distance — and
// compare with the MinDist objective (minimum *total* walking distance),
// which models the nurses' aggregate effort instead of the worst case.
//
// The hospital is a synthetic 4-level building; beds are placed in patient
// rooms only (no corridors), nurse stations and candidate wards are rooms.

#include <cstdio>

#include "src/core/efficient.h"
#include "src/core/mindist.h"
#include "src/datasets/client_generator.h"
#include "src/datasets/facility_selector.h"
#include "src/datasets/venue_generator.h"
#include "src/index/vip_tree.h"

int main() {
  using namespace ifls;

  VenueGeneratorSpec spec;
  spec.name = "st-elsewhere";
  spec.levels = 4;
  spec.rooms_per_level = 48;
  spec.rooms_per_corridor_side = 12;
  spec.room_width = 6.0;
  spec.room_depth = 8.0;
  spec.corridor_width = 3.0;
  spec.stairwells = 2;
  spec.stair_length = 12.0;
  Result<Venue> venue = GenerateVenue(spec);
  if (!venue.ok()) {
    std::fprintf(stderr, "%s\n", venue.status().ToString().c_str());
    return 1;
  }
  std::printf("hospital: %s\n", venue->ToString().c_str());

  Result<VipTree> tree = VipTree::Build(&venue.value());
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }

  // 3 existing nurse stations, 12 candidate wards, 400 patient beds.
  Rng rng(2026);
  Result<FacilitySets> sets =
      SelectUniformFacilities(*venue, /*num_existing=*/3,
                              /*num_candidates=*/12, &rng);
  if (!sets.ok()) {
    std::fprintf(stderr, "%s\n", sets.status().ToString().c_str());
    return 1;
  }
  ClientGeneratorOptions beds;
  beds.allow_corridors = false;  // beds live in rooms

  IflsContext ctx;
  ctx.oracle = &tree.value();
  ctx.existing = sets->existing;
  ctx.candidates = sets->candidates;
  ctx.clients = GenerateClients(*venue, 400, beds, &rng);

  Result<IflsResult> minmax = SolveEfficient(ctx);
  if (!minmax.ok()) {
    std::fprintf(stderr, "%s\n", minmax.status().ToString().c_str());
    return 1;
  }
  if (minmax->found) {
    const Partition& ward = venue->partition(minmax->answer);
    std::printf(
        "MinMax: new station in ward %d (level %d); worst bed is now "
        "%.1f m from help\n",
        minmax->answer, ward.level(), minmax->objective);
  } else {
    std::printf("MinMax: current stations already cover every bed best\n");
  }
  std::printf("  pruned %lld of %zu beds, %lld distance computations\n",
              static_cast<long long>(minmax->stats.clients_pruned),
              ctx.clients.size(),
              static_cast<long long>(minmax->stats.distance_computations));

  Result<IflsResult> mindist = SolveMinDist(ctx);
  if (!mindist.ok()) {
    std::fprintf(stderr, "%s\n", mindist.status().ToString().c_str());
    return 1;
  }
  if (mindist->found) {
    const Partition& ward = venue->partition(mindist->answer);
    std::printf(
        "MinDist: new station in ward %d (level %d); total bed-to-station "
        "distance %.1f m (avg %.1f m)\n",
        mindist->answer, ward.level(), mindist->objective,
        mindist->objective / static_cast<double>(ctx.clients.size()));
  }
  if (minmax->found && mindist->found && minmax->answer != mindist->answer) {
    std::printf(
        "note: the two objectives pick different wards — worst-case relief "
        "and average effort can disagree\n");
  }
  return 0;
}
