// Dynamic-crowd facility planning (the paper's §8 future work, "moving
// clients"): pedestrians walk random-waypoint routes through the Menzies
// Building while a continuous-IFLS monitor keeps the best spot for a new
// help desk up to date. The monitor's certified cache answers most ticks
// without re-solving; the printout shows how often the optimal location
// actually changes as the crowd flows.

#include <cstdio>
#include <map>

#include "src/core/continuous.h"
#include "src/datasets/facility_selector.h"
#include "src/datasets/presets.h"
#include "src/datasets/trajectory_generator.h"
#include "src/index/vip_tree.h"

int main() {
  using namespace ifls;

  Result<Venue> venue = BuildPresetVenue(VenuePreset::kMenziesBuilding);
  if (!venue.ok()) {
    std::fprintf(stderr, "%s\n", venue.status().ToString().c_str());
    return 1;
  }
  Result<VipTree> tree = VipTree::Build(&venue.value());
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::printf("venue: %s\n", venue->ToString().c_str());

  Rng rng(7);
  Result<FacilitySets> sets =
      SelectUniformFacilities(*venue, /*num_existing=*/4,
                              /*num_candidates=*/25, &rng);
  if (!sets.ok()) {
    std::fprintf(stderr, "%s\n", sets.status().ToString().c_str());
    return 1;
  }

  // 120 people walking for 90 ticks of 5 simulated seconds.
  TrajectoryOptions walk;
  walk.ticks = 90;
  walk.tick_seconds = 5.0;
  Result<std::vector<Trajectory>> trajectories =
      GenerateTrajectories(*tree, 120, walk, &rng);
  if (!trajectories.ok()) {
    std::fprintf(stderr, "%s\n", trajectories.status().ToString().c_str());
    return 1;
  }

  ContinuousIfls monitor(&tree.value(), sets->existing, sets->candidates);
  std::vector<ClientId> ids;
  for (const Trajectory& t : *trajectories) {
    ids.push_back(monitor.AddClient(t[0].position, t[0].partition));
  }

  std::map<PartitionId, int> residency;  // ticks each answer stays optimal
  PartitionId last_answer = kInvalidPartition;
  int changes = 0;
  for (std::size_t tick = 1; tick < walk.ticks; ++tick) {
    for (std::size_t agent = 0; agent < trajectories->size(); ++agent) {
      const TrajectoryPoint& p = (*trajectories)[agent][tick];
      if (Status s = monitor.MoveClient(ids[agent], p.position, p.partition);
          !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
    }
    // 10% staleness tolerance: most ticks are served from the certified
    // cache without a full solve.
    Result<ContinuousIfls::MonitorAnswer> answer = monitor.AnswerWithin(0.10);
    if (!answer.ok()) {
      std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
      return 1;
    }
    if (answer->result.found) {
      ++residency[answer->result.answer];
      if (answer->result.answer != last_answer) {
        if (last_answer != kInvalidPartition) ++changes;
        last_answer = answer->result.answer;
      }
    }
  }

  std::printf(
      "simulated %zu ticks x %zu walkers: %lld full solves, %lld certified "
      "cache hits, answer changed %d times\n",
      walk.ticks - 1, trajectories->size(),
      static_cast<long long>(monitor.solve_count()),
      static_cast<long long>(monitor.skip_count()), changes);
  std::printf("help-desk residency (ticks at each optimal partition):\n");
  for (const auto& [partition, ticks] : residency) {
    std::printf("  partition %4d (level %2d): %3d ticks\n", partition,
                venue->partition(partition).level(), ticks);
  }
  return 0;
}
