// Coffee-kiosk placement at Copenhagen Airport under a changing crowd (the
// paper's dynamic-crowd motivation): as passengers re-distribute through the
// day (tight morning cluster at security, dispersed afternoon), the optimal
// kiosk location moves. We re-run the IFLS query per crowd snapshot — fast
// enough with the efficient single-pass algorithm to do continuously — and
// also compare against the modified-MinMax baseline on one snapshot.
// Finally the venue and one workload are saved to /tmp in the text formats,
// demonstrating the IO layer.

#include <cstdio>

#include "src/core/efficient.h"
#include "src/core/minmax_baseline.h"
#include "src/datasets/workload.h"
#include "src/index/vip_tree.h"
#include "src/io/venue_io.h"
#include "src/io/workload_io.h"

int main() {
  using namespace ifls;

  Result<Venue> venue = BuildPresetVenue(VenuePreset::kCopenhagenAirport);
  if (!venue.ok()) {
    std::fprintf(stderr, "%s\n", venue.status().ToString().c_str());
    return 1;
  }
  Result<VipTree> tree = VipTree::Build(&venue.value());
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::printf("venue: %s\n", venue->ToString().c_str());

  Rng rng(99);
  Result<FacilitySets> sets =
      SelectUniformFacilities(*venue, /*num_existing=*/6,
                              /*num_candidates=*/18, &rng);
  if (!sets.ok()) {
    std::fprintf(stderr, "%s\n", sets.status().ToString().c_str());
    return 1;
  }

  // Crowd snapshots through the day: sigma grows as passengers disperse.
  const struct {
    const char* label;
    double sigma;
    std::size_t count;
  } snapshots[] = {
      {"06:00 morning rush ", 0.125, 1200},
      {"10:00 mid-morning  ", 0.5, 800},
      {"14:00 afternoon    ", 1.0, 600},
      {"20:00 evening lull ", 2.0, 300},
  };

  WorkloadData saved;
  saved.facilities = *sets;
  for (const auto& snap : snapshots) {
    ClientGeneratorOptions crowd;
    crowd.distribution = ClientDistribution::kNormal;
    crowd.sigma = snap.sigma;
    IflsContext ctx;
    ctx.oracle = &tree.value();
    ctx.existing = sets->existing;
    ctx.candidates = sets->candidates;
    ctx.clients = GenerateClients(*venue, snap.count, crowd, &rng);
    Result<IflsResult> result = SolveEfficient(ctx);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    if (result->found) {
      std::printf(
          "%s sigma=%.3f -> kiosk at partition %3d, worst walk %.0f m "
          "(%.1f ms)\n",
          snap.label, snap.sigma, result->answer, result->objective,
          result->stats.elapsed_seconds * 1e3);
    } else {
      std::printf("%s sigma=%.3f -> existing kiosks already optimal\n",
                  snap.label, snap.sigma);
    }
    saved.clients = ctx.clients;  // keep the last snapshot for the IO demo
  }

  // Head-to-head on the last snapshot.
  {
    IflsContext ctx;
    ctx.oracle = &tree.value();
    ctx.existing = sets->existing;
    ctx.candidates = sets->candidates;
    ctx.clients = saved.clients;
    FacilityIndex offline(&tree.value(), ctx.existing);
    MinMaxBaselineOptions options;
    options.offline_existing_index = &offline;
    Result<IflsResult> efficient = SolveEfficient(ctx);
    Result<IflsResult> baseline = SolveModifiedMinMax(ctx, options);
    if (efficient.ok() && baseline.ok()) {
      std::printf(
          "head-to-head: efficient %.1f ms vs baseline %.1f ms (%.1fx)\n",
          efficient->stats.elapsed_seconds * 1e3,
          baseline->stats.elapsed_seconds * 1e3,
          efficient->stats.elapsed_seconds > 0
              ? baseline->stats.elapsed_seconds /
                    efficient->stats.elapsed_seconds
              : 0.0);
    }
  }

  // Persist venue + workload.
  if (Status s = SaveVenueToFile(*venue, "/tmp/cph_venue.txt"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = SaveWorkloadToFile(saved, "/tmp/cph_workload.txt");
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("saved /tmp/cph_venue.txt and /tmp/cph_workload.txt\n");
  return 0;
}
