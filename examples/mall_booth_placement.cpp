// Advertising-booth placement in Melbourne Central (the paper's real
// setting): the mall restricts booths to tenant partitions outside the
// "dining & entertainment" category, which already hosts competing booths.
// MaxSum picks the candidate that wins the most shoppers (it becomes their
// nearest booth); MinMax instead guarantees no shopper is too far from any
// booth. Shoppers are drawn from a normal distribution — crowds concentrate
// around the central atrium.

#include <cstdio>

#include "src/core/efficient.h"
#include "src/core/maxsum.h"
#include "src/datasets/client_generator.h"
#include "src/datasets/facility_selector.h"
#include "src/datasets/presets.h"
#include "src/index/vip_tree.h"

int main() {
  using namespace ifls;

  Result<Venue> venue = BuildPresetVenue(VenuePreset::kMelbourneCentral);
  if (!venue.ok()) {
    std::fprintf(stderr, "%s\n", venue.status().ToString().c_str());
    return 1;
  }
  if (Status s = AssignMelbourneCentralCategories(&venue.value()); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("venue: %s\n", venue->ToString().c_str());

  Result<VipTree> tree = VipTree::Build(&venue.value());
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }

  Result<FacilitySets> sets =
      SelectCategoryFacilities(*venue, "dining & entertainment");
  if (!sets.ok()) {
    std::fprintf(stderr, "%s\n", sets.status().ToString().c_str());
    return 1;
  }
  std::printf("existing booths: %zu, permitted booth locations: %zu\n",
              sets->existing.size(), sets->candidates.size());

  ClientGeneratorOptions crowd;
  crowd.distribution = ClientDistribution::kNormal;
  crowd.sigma = 0.5;  // shoppers cluster around the atrium
  Rng rng(7);

  IflsContext ctx;
  ctx.oracle = &tree.value();
  ctx.existing = sets->existing;
  ctx.candidates = sets->candidates;
  ctx.clients = GenerateClients(*venue, 1500, crowd, &rng);

  Result<IflsResult> maxsum = SolveMaxSum(ctx);
  if (!maxsum.ok()) {
    std::fprintf(stderr, "%s\n", maxsum.status().ToString().c_str());
    return 1;
  }
  if (maxsum->found) {
    std::printf(
        "MaxSum: booth at partition %d (%s) captures %.0f of %zu shoppers\n",
        maxsum->answer,
        venue->partition(maxsum->answer).category.c_str(),
        maxsum->objective, ctx.clients.size());
  }

  Result<IflsResult> minmax = SolveEfficient(ctx);
  if (!minmax.ok()) {
    std::fprintf(stderr, "%s\n", minmax.status().ToString().c_str());
    return 1;
  }
  if (minmax->found) {
    std::printf(
        "MinMax: booth at partition %d leaves no shopper more than %.1f m "
        "from a booth\n",
        minmax->answer, minmax->objective);
  } else {
    std::printf(
        "MinMax: the existing booths already minimize the worst distance\n");
  }
  std::printf("query stats (MaxSum): %s\n",
              maxsum->stats.ToString().c_str());
  return 0;
}
