#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "src/common/logging.h"
#include "src/common/memory_tracker.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/stopwatch.h"
#include "src/common/versioned.h"

namespace ifls {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  IFLS_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

// ---------------------------------------------------------------- Result

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.value(), 5);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
}

TEST(ResultTest, ValueOrReturnsAlternative) {
  EXPECT_EQ(Result<int>(Status::NotFound("x")).ValueOr(7), 7);
  EXPECT_EQ(Result<int>(3).ValueOr(7), 3);
}

TEST(ResultTest, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

Result<int> UseAssignOrReturn(int x) {
  IFLS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(UseAssignOrReturn(4).value(), 5);
  EXPECT_TRUE(UseAssignOrReturn(0).status().IsOutOfRange());
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoundedIsUniformish) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.15);
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndComplete) {
  Rng rng(17);
  const auto sample = rng.SampleWithoutReplacement(20, 20);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 19u);

  const auto partial = rng.SampleWithoutReplacement(100, 5);
  EXPECT_EQ(partial.size(), 5u);
  EXPECT_EQ(std::set<std::size_t>(partial.begin(), partial.end()).size(), 5u);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

// -------------------------------------------------------- MemoryTracker

TEST(MemoryTrackerTest, TracksPeak) {
  MemoryTracker t;
  t.Charge(100);
  t.Charge(200);
  t.Release(150);
  t.Charge(10);
  EXPECT_EQ(t.current_bytes(), 160);
  EXPECT_EQ(t.peak_bytes(), 300);
  t.Reset();
  EXPECT_EQ(t.current_bytes(), 0);
  EXPECT_EQ(t.peak_bytes(), 0);
}

TEST(MemoryTrackerTest, MappedBytesAreTrackedApartFromHeap) {
  // Mapped (mmap-backed) bytes must not inflate the heap figures: eviction
  // budgets reason about resident heap, and dropping a mapping releases no
  // heap. They get their own gauge instead.
  MemoryTracker t;
  t.Charge(100);
  t.ChargeMapped(4096);
  EXPECT_EQ(t.current_bytes(), 100);
  EXPECT_EQ(t.peak_bytes(), 100);
  EXPECT_EQ(t.mapped_bytes(), 4096);
  t.ReleaseMapped(4096);
  EXPECT_EQ(t.mapped_bytes(), 0);
  EXPECT_EQ(t.peak_bytes(), 100);
  t.ChargeMapped(512);
  t.Reset();
  EXPECT_EQ(t.mapped_bytes(), 0);
}

TEST(MemoryTrackerTest, ScopedPeakIsolatesScopeHighWater) {
  MemoryTracker t;
  t.Charge(500);
  t.Release(400);  // current 100, peak 500
  {
    MemoryTracker::ScopedPeak scope(&t);
    // The scope starts from the current held bytes, not the old peak.
    EXPECT_EQ(scope.scope_peak_bytes(), 100);
    t.Charge(150);
    t.Release(150);
    EXPECT_EQ(scope.scope_peak_bytes(), 250);
  }
  // Outer peak restored: the scope never exceeded the pre-scope high water.
  EXPECT_EQ(t.peak_bytes(), 500);
  EXPECT_EQ(t.current_bytes(), 100);
}

TEST(MemoryTrackerTest, ScopedPeakPropagatesLargerScopePeak) {
  MemoryTracker t;
  t.Charge(100);  // current 100, peak 100
  {
    MemoryTracker::ScopedPeak scope(&t);
    t.Charge(900);
    t.Release(900);
    EXPECT_EQ(scope.scope_peak_bytes(), 1000);
  }
  // The scope's high water beat the outer peak and survives the scope.
  EXPECT_EQ(t.peak_bytes(), 1000);
}

TEST(MemoryTrackerTest, ScopedPeakNests) {
  MemoryTracker t;
  t.Charge(50);
  {
    MemoryTracker::ScopedPeak outer(&t);
    t.Charge(100);  // outer scope peak 150
    {
      MemoryTracker::ScopedPeak inner(&t);
      EXPECT_EQ(inner.scope_peak_bytes(), 150);
      t.Charge(10);
      t.Release(10);
      EXPECT_EQ(inner.scope_peak_bytes(), 160);
    }
    t.Release(100);
    EXPECT_EQ(outer.scope_peak_bytes(), 160);
  }
  EXPECT_EQ(t.peak_bytes(), 160);
}

TEST(MemoryTrackerTest, ScopedTrackingInstallsAndRestores) {
  EXPECT_EQ(ActiveMemoryTracker(), nullptr);
  MemoryTracker outer, inner;
  {
    ScopedMemoryTracking s1(&outer);
    EXPECT_EQ(ActiveMemoryTracker(), &outer);
    {
      ScopedMemoryTracking s2(&inner);
      EXPECT_EQ(ActiveMemoryTracker(), &inner);
    }
    EXPECT_EQ(ActiveMemoryTracker(), &outer);
  }
  EXPECT_EQ(ActiveMemoryTracker(), nullptr);
}

TEST(MemoryTrackerTest, TrackingAllocatorChargesActiveTracker) {
  MemoryTracker t;
  {
    ScopedMemoryTracking scope(&t);
    std::vector<int, TrackingAllocator<int>> v;
    v.reserve(1024);
    EXPECT_GE(t.peak_bytes(),
              static_cast<std::int64_t>(1024 * sizeof(int)));
  }
  // Vector destroyed inside the scope: everything released.
  EXPECT_EQ(t.current_bytes(), 0);
}

TEST(MemoryTrackerTest, AllocatorWithoutScopeIsUntracked) {
  std::vector<int, TrackingAllocator<int>> v;
  v.resize(64);  // must not crash with no active tracker
  EXPECT_EQ(v.size(), 64u);
}

// --------------------------------------------------------------- Logging

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(old);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  IFLS_CHECK(1 + 1 == 2) << "never printed";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ IFLS_CHECK(false) << "boom"; }, "Check failed");
}

// ------------------------------------------------------ LatencyHistogram

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.MeanSeconds(), 0.0);
  EXPECT_EQ(h.PercentileSeconds(0.5), 0.0);
  EXPECT_EQ(h.PercentileSeconds(0.99), 0.0);
}

TEST(LatencyHistogramTest, PercentilesReturnBucketUpperBounds) {
  LatencyHistogram h;
  // 90 samples at 1us (bucket [1,2)us -> bound 2us) and 10 at 1000us
  // (bucket [512,1024)us -> bound 1024us).
  for (int i = 0; i < 90; ++i) h.Record(1e-6);
  for (int i = 0; i < 10; ++i) h.Record(1000e-6);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(0.5), 2e-6);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(0.9), 2e-6);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(0.99), 1024e-6);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(1.0), 1024e-6);
  EXPECT_NEAR(h.MeanSeconds(), 100.9e-6, 1e-12);
  EXPECT_NEAR(h.total_seconds(), 100.0 * 100.9e-6, 1e-10);
  EXPECT_FALSE(h.ToString().empty());
}

TEST(LatencyHistogramTest, SubMicrosecondAndGarbageSamplesLandInBucketZero) {
  LatencyHistogram h;
  h.Record(1e-9);
  h.Record(-5.0);  // clock glitch: clamped, not UB
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(0.5), 2e-6);  // bucket 0 upper bound
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.Record(5e-6);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.PercentileSeconds(0.99), 0.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(3e-6);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(0.5), 4e-6);  // [2,4)us bucket
}

// ----------------------------------------------------------- VersionedPtr

TEST(VersionedPtrTest, StorePublishesAndReturnsDisplaced) {
  VersionedPtr<int> cell;
  EXPECT_EQ(cell.Acquire(), nullptr);
  EXPECT_EQ(cell.version(), 0u);

  auto first = std::make_shared<const int>(1);
  EXPECT_EQ(cell.Store(first), nullptr);
  EXPECT_EQ(cell.version(), 1u);
  EXPECT_EQ(*cell.Acquire(), 1);

  auto second = std::make_shared<const int>(2);
  EXPECT_EQ(cell.Store(second), first);
  EXPECT_EQ(cell.version(), 2u);
  EXPECT_EQ(*cell.Acquire(), 2);
}

TEST(VersionedPtrTest, ReadersKeepDisplacedStateAlive) {
  VersionedPtr<int> cell(std::make_shared<const int>(7));
  std::shared_ptr<const int> pinned = cell.Acquire();
  cell.Store(std::make_shared<const int>(8));
  EXPECT_EQ(*pinned, 7);  // old state alive until the reader drops it
  EXPECT_EQ(*cell.Acquire(), 8);
}

// -------------------------------------------------------------- Stopwatch

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMicros(), 0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace ifls
