// WorkspacePool contention stress (run under TSan via the `parallel`
// label): 16 threads x 1000 acquire/release cycles over one shared pool.
// The pool must never create more objects than the peak number of
// concurrent leases, must recycle every object, and two leases must never
// alias the same workspace.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "src/common/workspace_pool.h"

namespace ifls {
namespace {

/// A scratch object like the Dijkstra workspaces the solvers pool: owns a
/// buffer whose capacity should survive recycling, plus an in-use flag that
/// trips if two leases ever hold the same object at once.
struct Workspace {
  std::vector<int> buffer;
  std::atomic<bool> in_use{false};
};

TEST(WorkspacePoolStressTest, SixteenThreadsThousandCycles) {
  constexpr int kThreads = 16;
  constexpr int kCycles = 1000;

  WorkspacePool<Workspace> pool;
  std::atomic<bool> aliased{false};
  std::atomic<bool> corrupted{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCycles; ++i) {
        WorkspacePool<Workspace>::Lease lease = pool.Acquire();
        ASSERT_TRUE(lease);
        if (lease->in_use.exchange(true, std::memory_order_acq_rel)) {
          aliased = true;  // someone else holds this workspace right now
        }
        // Use the workspace: grow, stamp, verify — a torn hand-off shows
        // up as a mismatched stamp.
        const int stamp = t * kCycles + i;
        lease->buffer.assign(64, stamp);
        for (int v : lease->buffer) {
          if (v != stamp) corrupted = true;
        }
        lease->in_use.store(false, std::memory_order_release);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(aliased.load());
  EXPECT_FALSE(corrupted.load());
  // Peak concurrent leases is bounded by the thread count (one lease per
  // thread at a time), and every object returned to the free list.
  EXPECT_GE(pool.total_created(), 1u);
  EXPECT_LE(pool.total_created(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(pool.idle_count(), pool.total_created());
}

TEST(WorkspacePoolStressTest, NestedLeasesUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kCycles = 250;

  WorkspacePool<Workspace> pool;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCycles; ++i) {
        WorkspacePool<Workspace>::Lease outer = pool.Acquire();
        WorkspacePool<Workspace>::Lease inner = pool.Acquire();
        ASSERT_NE(outer.get(), inner.get());
        // Move-assignment releases the old workspace back mid-flight.
        outer = std::move(inner);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_LE(pool.total_created(), static_cast<std::size_t>(2 * kThreads));
  EXPECT_EQ(pool.idle_count(), pool.total_created());
}

}  // namespace
}  // namespace ifls
