#include "src/index/rstar_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/rng.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

std::vector<RStarTree::Entry> VenueEntries(const Venue& venue) {
  std::vector<RStarTree::Entry> entries;
  for (const Partition& p : venue.partitions()) {
    entries.push_back({p.rect, p.id});
  }
  return entries;
}

double PlanarMin(const Rect& r, const Point& p) {
  const double dx = std::max({r.min_x - p.x, 0.0, p.x - r.max_x});
  const double dy = std::max({r.min_y - p.y, 0.0, p.y - r.max_y});
  return std::sqrt(dx * dx + dy * dy);
}

TEST(RStarTreeTest, EmptyTree) {
  RStarTree tree({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Contains(Point(0, 0, 0)).empty());
  EXPECT_TRUE(tree.Intersects(Rect(0, 0, 1, 1, 0)).empty());
  EXPECT_TRUE(tree.NearestNeighbors(Point(0, 0, 0), 3).empty());
}

TEST(RStarTreeTest, ContainsMatchesLinearScan) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  RStarTree tree(VenueEntries(venue));
  EXPECT_EQ(tree.size(), venue.num_partitions());
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const Level level =
        static_cast<Level>(rng.NextBounded(
            static_cast<std::uint64_t>(venue.num_levels())));
    const Rect bounds = venue.LevelBounds(level);
    const Point p(rng.NextUniform(bounds.min_x - 2, bounds.max_x + 2),
                  rng.NextUniform(bounds.min_y - 2, bounds.max_y + 2),
                  level);
    std::set<std::int32_t> expected;
    for (const Partition& part : venue.partitions()) {
      if (part.rect.Contains(p)) expected.insert(part.id);
    }
    const auto got = tree.Contains(p);
    EXPECT_EQ(std::set<std::int32_t>(got.begin(), got.end()), expected);
  }
}

TEST(RStarTreeTest, IntersectsMatchesLinearScan) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  RStarTree tree(VenueEntries(venue));
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const Level level =
        static_cast<Level>(rng.NextBounded(
            static_cast<std::uint64_t>(venue.num_levels())));
    const Rect bounds = venue.LevelBounds(level);
    const double x0 = rng.NextUniform(bounds.min_x, bounds.max_x);
    const double y0 = rng.NextUniform(bounds.min_y, bounds.max_y);
    const Rect window(x0, y0, x0 + rng.NextUniform(1, 20),
                      y0 + rng.NextUniform(1, 20), level);
    std::set<std::int32_t> expected;
    for (const Partition& part : venue.partitions()) {
      if (part.rect.TouchesOrIntersects(window)) expected.insert(part.id);
    }
    const auto got = tree.Intersects(window);
    EXPECT_EQ(std::set<std::int32_t>(got.begin(), got.end()), expected);
  }
}

TEST(RStarTreeTest, NearestNeighborsMatchLinearScan) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  RStarTree tree(VenueEntries(venue));
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Level level =
        static_cast<Level>(rng.NextBounded(
            static_cast<std::uint64_t>(venue.num_levels())));
    const Rect bounds = venue.LevelBounds(level);
    const Point p(rng.NextUniform(bounds.min_x, bounds.max_x),
                  rng.NextUniform(bounds.min_y, bounds.max_y), level);
    const auto got = tree.NearestNeighbors(p, 5);
    ASSERT_EQ(got.size(), 5u);
    // Expected distances by linear scan.
    std::vector<double> expected;
    for (const Partition& part : venue.partitions()) {
      if (part.level() != level) continue;
      expected.push_back(PlanarMin(part.rect, p));
    }
    std::sort(expected.begin(), expected.end());
    for (std::size_t k = 0; k < got.size(); ++k) {
      const Rect& r = venue.partition(got[k]).rect;
      EXPECT_EQ(r.level, level);
      EXPECT_NEAR(PlanarMin(r, p), expected[k], 1e-9) << "rank " << k;
    }
  }
}

TEST(RStarTreeTest, KnnHandlesSmallLevels) {
  RStarTree tree({{Rect(0, 0, 1, 1, 0), 7}, {Rect(2, 2, 3, 3, 0), 8}});
  const auto got = tree.NearestNeighbors(Point(0.5, 0.5, 0), 10);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 7);
  EXPECT_EQ(got[1], 8);
  // Level 1 has nothing.
  EXPECT_TRUE(tree.NearestNeighbors(Point(0.5, 0.5, 1), 3).empty());
}

TEST(RStarTreeTest, HeightGrowsLogarithmically) {
  std::vector<RStarTree::Entry> entries;
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextUniform(0, 1000);
    const double y = rng.NextUniform(0, 1000);
    entries.push_back({Rect(x, y, x + 5, y + 5, 0), i});
  }
  RStarTree tree(std::move(entries), /*node_capacity=*/16);
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_LE(tree.height(), 4);
  EXPECT_GT(tree.MemoryFootprintBytes(), 0u);
}

}  // namespace
}  // namespace ifls
