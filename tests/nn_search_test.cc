#include "src/index/nn_search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "src/index/graph_oracle.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

class NnSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    venue_ = Unwrap(GenerateVenue(SmallVenueSpec()));
    tree_ = std::make_unique<VipTree>(Unwrap(VipTree::Build(&venue_)));
    oracle_ = std::make_unique<GraphDistanceOracle>(&venue_);
    Rng rng(1001);
    Result<FacilitySets> sets = SelectUniformFacilities(venue_, 5, 8, &rng);
    facilities_ = Unwrap(std::move(sets));
    index_ = std::make_unique<FacilityIndex>(tree_.get(),
                                             facilities_.existing);
    index_->AddCandidates(facilities_.candidates);
  }

  /// Brute-force facility ranking by exact distance.
  std::vector<NnResult> BruteRank(const Client& c, FacilityFilter filter) {
    std::vector<NnResult> all;
    auto consider = [&](PartitionId p) {
      all.push_back(
          {p, oracle_->PointToPartition(c.position, c.partition, p)});
    };
    if (filter != FacilityFilter::kCandidateOnly) {
      for (PartitionId p : facilities_.existing) consider(p);
    }
    if (filter != FacilityFilter::kExistingOnly) {
      for (PartitionId p : facilities_.candidates) consider(p);
    }
    std::sort(all.begin(), all.end(),
              [](const NnResult& a, const NnResult& b) {
                return a.distance < b.distance;
              });
    return all;
  }

  Venue venue_;
  std::unique_ptr<VipTree> tree_;
  std::unique_ptr<GraphDistanceOracle> oracle_;
  FacilitySets facilities_;
  std::unique_ptr<FacilityIndex> index_;
};

TEST_F(NnSearchTest, NearestMatchesBruteForce) {
  Rng rng(2002);
  for (int i = 0; i < 200; ++i) {
    const Client c = RandomClient(venue_, &rng, 0);
    for (FacilityFilter filter :
         {FacilityFilter::kAny, FacilityFilter::kExistingOnly,
          FacilityFilter::kCandidateOnly}) {
      const auto nn =
          NearestFacility(*index_, c.position, c.partition, filter, nullptr);
      const auto expected = BruteRank(c, filter);
      ASSERT_TRUE(nn.has_value());
      ASSERT_FALSE(expected.empty());
      ASSERT_NEAR(nn->distance, expected.front().distance, 1e-9)
          << "client " << i;
    }
  }
}

TEST_F(NnSearchTest, KnnReturnsAscendingExactDistances) {
  Rng rng(2003);
  for (int i = 0; i < 50; ++i) {
    const Client c = RandomClient(venue_, &rng, 0);
    const auto knn = KNearestFacilities(*index_, c.position, c.partition, 6,
                                        FacilityFilter::kAny, nullptr);
    const auto expected = BruteRank(c, FacilityFilter::kAny);
    ASSERT_EQ(knn.size(), 6u);
    for (std::size_t k = 0; k < knn.size(); ++k) {
      ASSERT_NEAR(knn[k].distance, expected[k].distance, 1e-9);
      if (k > 0) {
        ASSERT_GE(knn[k].distance, knn[k - 1].distance);
      }
    }
  }
}

TEST_F(NnSearchTest, KnnWithKLargerThanFacilityCountReturnsAll) {
  Rng rng(2004);
  const Client c = RandomClient(venue_, &rng, 0);
  const auto knn = KNearestFacilities(*index_, c.position, c.partition, 1000,
                                      FacilityFilter::kAny, nullptr);
  EXPECT_EQ(knn.size(),
            facilities_.existing.size() + facilities_.candidates.size());
}

TEST_F(NnSearchTest, KnnZeroIsEmpty) {
  Rng rng(2005);
  const Client c = RandomClient(venue_, &rng, 0);
  EXPECT_TRUE(KNearestFacilities(*index_, c.position, c.partition, 0,
                                 FacilityFilter::kAny, nullptr)
                  .empty());
}

TEST_F(NnSearchTest, RadiusSearchMatchesBruteForce) {
  Rng rng(2006);
  for (int i = 0; i < 50; ++i) {
    const Client c = RandomClient(venue_, &rng, 0);
    const double radius = rng.NextUniform(5.0, 60.0);
    const auto within =
        FacilitiesWithinRadius(*index_, c.position, c.partition, radius,
                               FacilityFilter::kAny, nullptr);
    const auto expected = BruteRank(c, FacilityFilter::kAny);
    std::size_t expected_count = 0;
    while (expected_count < expected.size() &&
           expected[expected_count].distance <= radius) {
      ++expected_count;
    }
    ASSERT_EQ(within.size(), expected_count) << "radius " << radius;
  }
}

TEST_F(NnSearchTest, StatsAreRecorded) {
  Rng rng(2007);
  const Client c = RandomClient(venue_, &rng, 0);
  NnSearchStats stats;
  (void)NearestFacility(*index_, c.position, c.partition, FacilityFilter::kAny,
                        &stats);
  EXPECT_GT(stats.queue_pushes, 0);
  EXPECT_GT(stats.queue_pops, 0);
  EXPECT_GT(stats.distance_computations, 0);
}

TEST_F(NnSearchTest, ClientInsideFacilityHasZeroDistance) {
  const PartitionId f = facilities_.existing.front();
  const Point inside = venue_.partition(f).rect.center();
  const auto nn = NearestFacility(*index_, inside, f,
                                  FacilityFilter::kExistingOnly, nullptr);
  ASSERT_TRUE(nn.has_value());
  EXPECT_EQ(nn->facility, f);
  EXPECT_DOUBLE_EQ(nn->distance, 0.0);
}

TEST(NnSearchEmptyTest, NoFacilitiesReturnsNullopt) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  FacilityIndex index(&tree, {});
  const Point p = venue.partition(0).rect.center();
  EXPECT_FALSE(
      NearestFacility(index, p, 0, FacilityFilter::kAny, nullptr).has_value());
  EXPECT_TRUE(KNearestFacilities(index, p, 0, 3, FacilityFilter::kAny, nullptr)
                  .empty());
}

}  // namespace
}  // namespace ifls
