// Format-v3 (zero-copy mmap) snapshot tests: a mapped tree must be
// indistinguishable from the built tree — same structure, bit-identical
// payload cells, bit-identical solver answers on every objective — and the
// v1/v2 legacy formats must migrate into v3 losslessly. Also pins down the
// byte stability of the v3 image and the resident-vs-mapped memory
// accounting the fleet router's eviction budget relies on.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/solve_dispatch.h"
#include "src/datasets/facility_selector.h"
#include "src/index/vip_tree.h"
#include "src/index/vip_tree_io_v3.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

template <typename T>
std::vector<T> ToVector(std::span<const T> s) {
  return std::vector<T>(s.begin(), s.end());
}

void ExpectSameStructure(const VipTree& built, const VipTree& loaded) {
  ASSERT_EQ(loaded.num_nodes(), built.num_nodes());
  EXPECT_EQ(loaded.num_leaves(), built.num_leaves());
  EXPECT_EQ(loaded.height(), built.height());
  EXPECT_EQ(loaded.root(), built.root());
  for (std::size_t i = 0; i < built.num_nodes(); ++i) {
    const VipNode& a = built.node(static_cast<NodeId>(i));
    const VipNode& b = loaded.node(static_cast<NodeId>(i));
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.depth, b.depth);
    EXPECT_EQ(ToVector(a.children), ToVector(b.children));
    EXPECT_EQ(ToVector(a.partitions), ToVector(b.partitions));
    EXPECT_EQ(ToVector(a.doors), ToVector(b.doors));
    EXPECT_EQ(ToVector(a.access_doors), ToVector(b.access_doors));
    EXPECT_EQ(a.subtree_partitions, b.subtree_partitions);
    ASSERT_EQ(a.ancestor_matrices.size(), b.ancestor_matrices.size());
  }
}

void ExpectSamePayload(const VipTree& built, const VipTree& loaded) {
  for (std::size_t i = 0; i < built.num_nodes(); ++i) {
    const VipNode& a = built.node(static_cast<NodeId>(i));
    const VipNode& b = loaded.node(static_cast<NodeId>(i));
    auto expect_same_matrix = [](const DoorMatrixView& ma,
                                 const DoorMatrixView& mb) {
      ASSERT_EQ(ma.num_rows(), mb.num_rows());
      ASSERT_EQ(ma.num_cols(), mb.num_cols());
      for (std::size_t r = 0; r < ma.num_rows(); ++r) {
        for (std::size_t c = 0; c < ma.num_cols(); ++c) {
          const int ri = static_cast<int>(r);
          const int ci = static_cast<int>(c);
          ASSERT_EQ(ma.At(ri, ci), mb.At(ri, ci));
          ASSERT_EQ(ma.FirstHopAt(ri, ci), mb.FirstHopAt(ri, ci));
        }
      }
    };
    expect_same_matrix(a.matrix, b.matrix);
    for (std::size_t k = 0; k < a.ancestor_matrices.size(); ++k) {
      expect_same_matrix(a.ancestor_matrices[k], b.ancestor_matrices[k]);
    }
  }
}

std::string SaveV3ToTempFile(const VipTree& tree, const std::string& stem) {
  const std::string path = ::testing::TempDir() + "/" + stem + ".v3.ifls";
  IFLS_CHECK(tree.SaveV3ToFile(path).ok());
  return path;
}

TEST(VipTreeIoV3Test, RoundTripPreservesStructureAndPayload) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  const std::string path = SaveV3ToTempFile(built, "roundtrip");
  VipTree mapped = Unwrap(VipTree::LoadV3FromFile(&venue, path));
  EXPECT_TRUE(mapped.is_mapped());
  EXPECT_FALSE(built.is_mapped());
  ExpectSameStructure(built, mapped);
  ExpectSamePayload(built, mapped);
}

TEST(VipTreeIoV3Test, LoadFromFileSniffsV3Magic) {
  // The generic loader must route a v3 image to the mmap path and a v2
  // text file to the parser, without being told which is which.
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  const std::string v3 = SaveV3ToTempFile(built, "sniff");
  const std::string v2 = ::testing::TempDir() + "/sniff.v2.txt";
  ASSERT_TRUE(built.SaveToFile(v2).ok());

  VipTree from_v3 = Unwrap(VipTree::LoadFromFile(&venue, v3));
  EXPECT_TRUE(from_v3.is_mapped());
  VipTree from_v2 = Unwrap(VipTree::LoadFromFile(&venue, v2));
  EXPECT_FALSE(from_v2.is_mapped());
  ExpectSamePayload(from_v2, from_v3);
}

/// The acceptance bar of the mmap refactor: on every objective, a query
/// against file-backed arenas returns the bit-identical answer, objective
/// and work counters as the heap-built tree.
TEST(VipTreeIoV3Test, MappedAnswersBitIdenticalAcrossObjectives) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  const std::string path = SaveV3ToTempFile(built, "answers");
  VipTree mapped = Unwrap(VipTree::LoadV3FromFile(&venue, path));

  Rng rng(411);
  FacilitySets sets = Unwrap(SelectUniformFacilities(venue, 4, 8, &rng));
  IflsContext ctx;
  ctx.existing = sets.existing;
  ctx.candidates = sets.candidates;
  for (int i = 0; i < 24; ++i) {
    ctx.clients.push_back(RandomClient(venue, &rng, i));
  }

  for (IflsObjective objective :
       {IflsObjective::kMinMax, IflsObjective::kMinDist,
        IflsObjective::kMaxSum}) {
    ctx.oracle = &built;
    const IflsResult heap = Unwrap(SolveWithObjective(objective, ctx));
    ctx.oracle = &mapped;
    const IflsResult mapped_result =
        Unwrap(SolveWithObjective(objective, ctx));
    EXPECT_EQ(heap.found, mapped_result.found);
    EXPECT_EQ(heap.answer, mapped_result.answer);
    EXPECT_EQ(heap.objective, mapped_result.objective);  // bit-identical
    EXPECT_EQ(heap.stats.distance_computations,
              mapped_result.stats.distance_computations);
    EXPECT_EQ(heap.stats.matrix_lookups, mapped_result.stats.matrix_lookups);
  }
}

TEST(VipTreeIoV3Test, V1MigratesToV3) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  std::stringstream v1;
  ASSERT_TRUE(built.SaveLegacyV1(&v1).ok());
  VipTree from_v1 = Unwrap(VipTree::Load(&venue, &v1));

  const std::string path = SaveV3ToTempFile(from_v1, "migrate_v1");
  VipTree mapped = Unwrap(VipTree::LoadV3FromFile(&venue, path));
  ExpectSameStructure(built, mapped);
  ExpectSamePayload(built, mapped);
}

TEST(VipTreeIoV3Test, V2MigratesToV3AndBack) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  std::stringstream v2;
  ASSERT_TRUE(built.Save(&v2).ok());
  VipTree from_v2 = Unwrap(VipTree::Load(&venue, &v2));

  const std::string path = SaveV3ToTempFile(from_v2, "migrate_v2");
  VipTree mapped = Unwrap(VipTree::LoadV3FromFile(&venue, path));
  ExpectSameStructure(built, mapped);
  ExpectSamePayload(built, mapped);

  // And back out: a mapped tree re-saved as v2 text equals the original v2
  // serialization byte for byte (the shared deterministic layout order).
  std::stringstream v2_again;
  ASSERT_TRUE(mapped.Save(&v2_again).ok());
  EXPECT_EQ(v2.str(), v2_again.str());
}

TEST(VipTreeIoV3Test, V3SaveIsByteStable) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  const std::string first = SaveV3ToTempFile(built, "stable_first");
  VipTree mapped = Unwrap(VipTree::LoadV3FromFile(&venue, first));
  const std::string second = SaveV3ToTempFile(mapped, "stable_second");

  std::ifstream a(first, std::ios::binary);
  std::ifstream b(second, std::ios::binary);
  const std::string bytes_a(std::istreambuf_iterator<char>(a), {});
  const std::string bytes_b(std::istreambuf_iterator<char>(b), {});
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(VipTreeIoV3Test, IpTreeVariantRoundTrips) {
  // build_leaf_to_ancestor=false (the IP-tree ablation) writes no ancestor
  // matrices; store_first_hop stays on. The header must carry the options.
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTreeOptions options;
  options.build_leaf_to_ancestor = false;
  VipTree built = Unwrap(VipTree::Build(&venue, options));
  const std::string path = SaveV3ToTempFile(built, "iptree");
  VipTree mapped = Unwrap(VipTree::LoadV3FromFile(&venue, path));
  EXPECT_FALSE(mapped.options().build_leaf_to_ancestor);
  ExpectSameStructure(built, mapped);
  ExpectSamePayload(built, mapped);
}

TEST(VipTreeIoV3Test, MappedFootprintAccounting) {
  // Mapped arenas must vanish from the resident footprint (what eviction
  // budgets count) and appear in the mapped figure instead.
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  const std::string path = SaveV3ToTempFile(built, "footprint");
  VipTree mapped = Unwrap(VipTree::LoadV3FromFile(&venue, path));

  const VipTreeLayoutStats built_stats = built.LayoutStats();
  const VipTreeLayoutStats mapped_stats = mapped.LayoutStats();
  EXPECT_GT(built_stats.arena_capacity_bytes, 0u);
  EXPECT_EQ(built_stats.mapped_bytes, 0u);
  // For a mapped tree the arena "capacity" is the mapped section sizes (so
  // utilization stays meaningful), and all of it is mapped, none heap.
  EXPECT_EQ(mapped_stats.arena_capacity_bytes, mapped_stats.mapped_bytes);
  EXPECT_GT(mapped_stats.mapped_bytes, 0u);

  EXPECT_EQ(mapped.MappedFootprintBytes(),
            std::filesystem::file_size(path));
  EXPECT_LT(mapped.MemoryFootprintBytes(), built.MemoryFootprintBytes());
}

}  // namespace
}  // namespace ifls
