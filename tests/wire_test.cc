// Frame codec coverage (satellite of the network PR): round-trips for every
// opcode, envelope corruption (magic/version/oversized/checksum) rejected
// with typed Status, payload truncation naming the missing field, and
// fuzz-style partial-read reassembly — frames split at every byte boundary
// must decode identically. The trace-context frame extension (DESIGN.md §15)
// is covered both ways: flagged frames round-trip the context and strip the
// suffix before payload decoding, flag-free frames stay byte-identical to
// the pre-extension encoding, and unknown flag bits or an impossible suffix
// length are corrupt envelopes.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/endian.h"
#include "src/common/hash.h"
#include "src/net/wire.h"

namespace ifls {
namespace {

std::vector<Client> TwoClients() {
  Client a;
  a.id = 3;
  a.partition = 1;
  a.position = Point(1.25, -2.5, 0);
  Client b;
  b.id = 9;
  b.partition = 4;
  b.position = Point(17.75, 3.0, 1);
  return {a, b};
}

/// Decodes exactly one frame from raw bytes, requiring completeness.
WireFrame DecodeOne(const std::string& bytes) {
  ByteRing ring;
  ring.Append(bytes.data(), bytes.size());
  Result<std::optional<WireFrame>> decoded = TryDecodeFrame(&ring);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value().has_value());
  EXPECT_TRUE(ring.empty());
  return std::move(*decoded.value());
}

// ------------------------------------------------------------- round trips

TEST(WireRoundTripTest, QueryRequestEveryObjective) {
  for (IflsObjective objective :
       {IflsObjective::kMinMax, IflsObjective::kMinDist,
        IflsObjective::kMaxSum}) {
    WireQueryRequest request;
    request.venue_id = "venue7";
    request.deadline_seconds = 0.125;
    request.clients = TwoClients();
    const std::string bytes = EncodeQueryFrame(77, objective, request);
    WireFrame frame = DecodeOne(bytes);
    EXPECT_EQ(frame.opcode, QueryOpcodeFor(objective));
    EXPECT_EQ(ObjectiveForQueryOpcode(frame.opcode), objective);
    EXPECT_EQ(frame.request_id, 77u);
    auto decoded = DecodeQueryRequest(frame.payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().venue_id, "venue7");
    EXPECT_EQ(decoded.value().deadline_seconds, 0.125);
    ASSERT_EQ(decoded.value().clients.size(), 2u);
    EXPECT_EQ(decoded.value().clients[0].id, 3);
    EXPECT_EQ(decoded.value().clients[1].partition, 4);
    EXPECT_EQ(decoded.value().clients[1].position.x, 17.75);
    EXPECT_EQ(decoded.value().clients[1].position.level, 1);
  }
}

TEST(WireRoundTripTest, QueryResponse) {
  WireQueryResponse response;
  response.found = true;
  response.answer = 42;
  response.objective = 13.625;
  response.snapshot_epoch = 5;
  response.overlay_size = 2;
  response.batched = true;
  response.batch_size = 17;
  WireFrame frame =
      DecodeOne(EncodeQueryResultFrame(0xFFFF'FFFF'FFFF'FFFEull, response));
  EXPECT_EQ(frame.opcode, WireOpcode::kQueryResult);
  EXPECT_EQ(frame.request_id, 0xFFFF'FFFF'FFFF'FFFEull);
  auto decoded = DecodeQueryResponse(frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().found);
  EXPECT_EQ(decoded.value().answer, 42);
  EXPECT_EQ(decoded.value().objective, 13.625);
  EXPECT_EQ(decoded.value().snapshot_epoch, 5u);
  EXPECT_EQ(decoded.value().overlay_size, 2u);
  EXPECT_TRUE(decoded.value().batched);
  EXPECT_EQ(decoded.value().batch_size, 17u);
}

TEST(WireRoundTripTest, MutateRequestAndResponse) {
  for (MutationKind kind :
       {MutationKind::kAddFacility, MutationKind::kRemoveFacility,
        MutationKind::kAddCandidate, MutationKind::kRemoveCandidate}) {
    WireMutateRequest request;
    request.venue_id = "v";
    request.kind = kind;
    request.partition = 6;
    WireFrame frame = DecodeOne(EncodeMutateFrame(8, request));
    EXPECT_EQ(frame.opcode, WireOpcode::kMutate);
    auto decoded = DecodeMutateRequest(frame.payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().kind, kind);
    EXPECT_EQ(decoded.value().partition, 6);
  }
  WireMutateResponse response;
  response.applied_version = 123;
  WireFrame frame = DecodeOne(EncodeMutateResultFrame(9, response));
  EXPECT_EQ(frame.opcode, WireOpcode::kMutateResult);
  auto decoded = DecodeMutateResponse(frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().applied_version, 123u);
}

TEST(WireRoundTripTest, SubscriptionLifecycleFrames) {
  WireSubscribeRequest sub;
  sub.venue_id = "venue0";
  sub.tolerance = 0.5;
  sub.clients = TwoClients();
  WireFrame frame = DecodeOne(EncodeSubscribeFrame(11, sub));
  EXPECT_EQ(frame.opcode, WireOpcode::kSubscribe);
  auto sub_decoded = DecodeSubscribeRequest(frame.payload);
  ASSERT_TRUE(sub_decoded.ok());
  EXPECT_EQ(sub_decoded.value().tolerance, 0.5);
  ASSERT_EQ(sub_decoded.value().clients.size(), 2u);

  WireSubscribeResponse sub_result;
  sub_result.subscription_id = 31;
  frame = DecodeOne(EncodeSubscribeResultFrame(11, sub_result));
  EXPECT_EQ(frame.opcode, WireOpcode::kSubscribeResult);
  auto result_decoded = DecodeSubscribeResponse(frame.payload);
  ASSERT_TRUE(result_decoded.ok());
  EXPECT_EQ(result_decoded.value().subscription_id, 31u);

  WireTickRequest tick;
  tick.venue_id = "venue0";
  tick.subscription_id = 31;
  tick.client = 1;
  tick.position = Point(2.0, 3.0, 1);
  tick.partition = 4;
  frame = DecodeOne(EncodeTickFrame(12, tick));
  EXPECT_EQ(frame.opcode, WireOpcode::kSubscriptionTick);
  auto tick_decoded = DecodeTickRequest(frame.payload);
  ASSERT_TRUE(tick_decoded.ok());
  EXPECT_EQ(tick_decoded.value().subscription_id, 31u);
  EXPECT_EQ(tick_decoded.value().client, 1);
  EXPECT_EQ(tick_decoded.value().position.y, 3.0);
  EXPECT_EQ(tick_decoded.value().partition, 4);

  WireUnsubscribeRequest unsub;
  unsub.venue_id = "venue0";
  unsub.subscription_id = 31;
  frame = DecodeOne(EncodeUnsubscribeFrame(13, unsub));
  EXPECT_EQ(frame.opcode, WireOpcode::kUnsubscribe);
  auto unsub_decoded = DecodeUnsubscribeRequest(frame.payload);
  ASSERT_TRUE(unsub_decoded.ok());
  EXPECT_EQ(unsub_decoded.value().subscription_id, 31u);

  WireSubscriptionPush push;
  push.subscription_id = 31;
  push.sequence = 7;
  push.version = 3;
  push.ticks_applied = 2;
  push.latency_seconds = 0.0625;
  push.found = true;
  push.answer = 5;
  push.objective = 99.5;
  frame = DecodeOne(EncodePushFrame(11, push));
  EXPECT_EQ(frame.opcode, WireOpcode::kSubscriptionPush);
  auto push_decoded = DecodePush(frame.payload);
  ASSERT_TRUE(push_decoded.ok());
  EXPECT_EQ(push_decoded.value().sequence, 7u);
  EXPECT_EQ(push_decoded.value().version, 3u);
  EXPECT_EQ(push_decoded.value().ticks_applied, 2u);
  EXPECT_EQ(push_decoded.value().latency_seconds, 0.0625);
  EXPECT_TRUE(push_decoded.value().found);
  EXPECT_EQ(push_decoded.value().answer, 5);
  EXPECT_EQ(push_decoded.value().objective, 99.5);
}

TEST(WireRoundTripTest, ErrorCarriesTypedStatus) {
  const Status status = Status::Unavailable("admission queue full (4 queries)");
  WireFrame frame = DecodeOne(EncodeErrorFrame(21, status));
  EXPECT_EQ(frame.opcode, WireOpcode::kError);
  const Status decoded = DecodeErrorPayload(frame.payload);
  EXPECT_EQ(decoded.code(), StatusCode::kUnavailable);
  EXPECT_EQ(decoded.message(), "admission queue full (4 queries)");
}

TEST(WireRoundTripTest, TextAndEmptyFrames) {
  WireFrame frame = DecodeOne(
      EncodeTextFrame(WireOpcode::kMetricsText, 5, "# TYPE foo counter\n"));
  EXPECT_EQ(frame.opcode, WireOpcode::kMetricsText);
  auto text = DecodeTextResponse(frame.payload);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value().text, "# TYPE foo counter\n");

  for (WireOpcode opcode :
       {WireOpcode::kPing, WireOpcode::kPong, WireOpcode::kAck,
        WireOpcode::kMetricsPull, WireOpcode::kTracePull}) {
    frame = DecodeOne(EncodeEmptyFrame(opcode, 6));
    EXPECT_EQ(frame.opcode, opcode);
    EXPECT_TRUE(frame.payload.empty());
  }
}

// ------------------------------------------------- trace-context extension

TEST(WireTraceContextTest, QueryFrameRoundTripsContext) {
  for (bool sampled : {true, false}) {
    WireQueryRequest request;
    request.venue_id = "venue7";
    request.clients = TwoClients();
    TraceContext context;
    context.trace_id = 0x1122'3344'5566'7788ull;
    context.parent_span_id = 42;
    context.sampled = sampled;
    context.client_send_nanos = 987'654'321;
    WireFrame frame = DecodeOne(
        EncodeQueryFrame(5, IflsObjective::kMinMax, request, &context));
    ASSERT_TRUE(frame.has_trace_context);
    EXPECT_EQ(frame.trace_context.trace_id, context.trace_id);
    EXPECT_EQ(frame.trace_context.parent_span_id, 42u);
    EXPECT_EQ(frame.trace_context.sampled, sampled);
    EXPECT_EQ(frame.trace_context.client_send_nanos, 987'654'321u);
    // The decoder stripped the suffix: the payload decodes as the plain
    // message (all payload decoders reject trailing bytes, so this also
    // proves no suffix leaked through).
    auto decoded = DecodeQueryRequest(frame.payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().venue_id, "venue7");
    ASSERT_EQ(decoded.value().clients.size(), 2u);
    EXPECT_EQ(decoded.value().clients[1].partition, 4);
  }
}

TEST(WireTraceContextTest, ContextFreeFramesStayByteIdentical) {
  // No context and an invalid context (trace_id 0) must both produce the
  // exact pre-extension frame bytes: zero flags word, no payload suffix.
  WireQueryRequest request;
  request.venue_id = "venue7";
  request.clients = TwoClients();
  const std::string plain =
      EncodeQueryFrame(5, IflsObjective::kMinMax, request);
  TraceContext invalid;  // trace_id == 0 -> valid() is false
  const std::string with_invalid =
      EncodeQueryFrame(5, IflsObjective::kMinMax, request, &invalid);
  EXPECT_EQ(plain, with_invalid);
  EXPECT_EQ(LoadLE<std::uint32_t>(plain.data() + 20), 0u);
  WireFrame frame = DecodeOne(plain);
  EXPECT_FALSE(frame.has_trace_context);
  EXPECT_EQ(frame.trace_context.trace_id, 0u);
}

TEST(WireTraceContextTest, UnknownFlagBitsAreACorruptEnvelope) {
  std::string bytes = EncodeEmptyFrame(WireOpcode::kPing, 1);
  StoreLE<std::uint32_t>(bytes.data() + 20, kWireFlagTraceContext << 1);
  ByteRing ring;
  ring.Append(bytes.data(), bytes.size());
  Result<std::optional<WireFrame>> decoded = TryDecodeFrame(&ring);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("unknown extension flags"),
            std::string::npos);
}

TEST(WireTraceContextTest, FlaggedFrameTooShortForSuffixRejected) {
  // A ping has an empty payload region; flagging a trace context on it
  // claims 25 suffix bytes that cannot exist.
  std::string bytes = EncodeEmptyFrame(WireOpcode::kPing, 1);
  StoreLE<std::uint32_t>(bytes.data() + 20, kWireFlagTraceContext);
  ByteRing ring;
  ring.Append(bytes.data(), bytes.size());
  Result<std::optional<WireFrame>> decoded = TryDecodeFrame(&ring);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTraceContextTest, FlaggedFrameReassemblesAtEveryBoundary) {
  TraceContext context;
  context.trace_id = 7;
  context.sampled = true;
  WireQueryRequest request;
  request.venue_id = "split";
  request.clients = TwoClients();
  const std::string stream =
      EncodeQueryFrame(1, IflsObjective::kMaxSum, request, &context);
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    ByteRing ring;
    std::optional<WireFrame> frame;
    auto feed = [&](const char* data, std::size_t n) {
      ring.Append(data, n);
      Result<std::optional<WireFrame>> decoded = TryDecodeFrame(&ring);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      if (decoded.value().has_value()) frame = std::move(*decoded.value());
    };
    feed(stream.data(), split);
    feed(stream.data() + split, stream.size() - split);
    ASSERT_TRUE(frame.has_value()) << "split at " << split;
    EXPECT_TRUE(frame->has_trace_context);
    EXPECT_EQ(frame->trace_context.trace_id, 7u);
    EXPECT_TRUE(DecodeQueryRequest(frame->payload).ok());
  }
}

TEST(WireTraceContextTest, PongCarriesServerTimestamps) {
  WirePongResponse pong;
  pong.server_recv_nanos = 1'000'000'111;
  pong.server_send_nanos = 1'000'000'222;
  WireFrame frame = DecodeOne(EncodePongFrame(9, pong));
  EXPECT_EQ(frame.opcode, WireOpcode::kPong);
  auto decoded = DecodePong(frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().server_recv_nanos, 1'000'000'111u);
  EXPECT_EQ(decoded.value().server_send_nanos, 1'000'000'222u);

  // A PR 8 pong has no payload: decodes as {0, 0} rather than failing, so
  // mixed-version ping keeps working (offset estimation then rejects it
  // explicitly at the client layer).
  auto legacy = DecodePong(std::string_view());
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy.value().server_recv_nanos, 0u);
  EXPECT_EQ(legacy.value().server_send_nanos, 0u);

  // Any other truncation is malformed.
  auto truncated = DecodePong(std::string_view(frame.payload).substr(0, 7));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------- envelope errors

TEST(WireEnvelopeTest, BadMagicRejected) {
  std::string bytes = EncodeEmptyFrame(WireOpcode::kPing, 1);
  bytes[0] ^= 0x01;
  ByteRing ring;
  ring.Append(bytes.data(), bytes.size());
  Result<std::optional<WireFrame>> decoded = TryDecodeFrame(&ring);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireEnvelopeTest, BadVersionRejected) {
  std::string bytes = EncodeEmptyFrame(WireOpcode::kPing, 1);
  StoreLE<std::uint16_t>(bytes.data() + 4, kWireVersion + 1);
  ByteRing ring;
  ring.Append(bytes.data(), bytes.size());
  Result<std::optional<WireFrame>> decoded = TryDecodeFrame(&ring);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireEnvelopeTest, OversizedPayloadRejectedBeforeBuffering) {
  std::string bytes = EncodeEmptyFrame(WireOpcode::kPing, 1);
  StoreLE<std::uint32_t>(bytes.data() + 16, kWireMaxPayloadBytes + 1);
  ByteRing ring;
  ring.Append(bytes.data(), bytes.size());
  Result<std::optional<WireFrame>> decoded = TryDecodeFrame(&ring);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireEnvelopeTest, ChecksumMismatchRejected) {
  WireQueryResponse response;
  response.answer = 1;
  std::string bytes = EncodeQueryResultFrame(2, response);
  bytes[kWireHeaderBytes] ^= 0x40;  // flip one payload bit
  ByteRing ring;
  ring.Append(bytes.data(), bytes.size());
  Result<std::optional<WireFrame>> decoded = TryDecodeFrame(&ring);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("checksum"), std::string::npos);
}

// --------------------------------------------------------- payload errors

TEST(WirePayloadTest, TruncationIsTypedAndNamed) {
  WireQueryRequest request;
  request.venue_id = "venue";
  request.clients = TwoClients();
  const std::string bytes =
      EncodeQueryFrame(1, IflsObjective::kMinMax, request);
  WireFrame frame = DecodeOne(bytes);
  // Every proper prefix of the payload must fail with InvalidArgument —
  // never crash, never succeed.
  for (std::size_t cut = 0; cut < frame.payload.size(); ++cut) {
    auto decoded =
        DecodeQueryRequest(std::string_view(frame.payload).substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "prefix " << cut << " decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
  // Trailing bytes are rejected too (a frame is exactly one message).
  std::string padded = frame.payload + std::string(1, '\0');
  EXPECT_FALSE(DecodeQueryRequest(padded).ok());
}

TEST(WirePayloadTest, MutateKindValidated) {
  WireMutateRequest request;
  request.kind = MutationKind::kRemoveCandidate;
  WireFrame frame = DecodeOne(EncodeMutateFrame(1, request));
  std::string payload = frame.payload;
  // kind is encoded after the venue string (u32 len) as a u8.
  payload[4] = 17;  // no such MutationKind
  auto decoded = DecodeMutateRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WirePayloadTest, ErrorPayloadNeverDecodesAsOk) {
  // Code 0 (kOk) on the wire is a protocol violation; the decoder must
  // return a non-ok Status regardless.
  std::string payload;
  AppendLE<std::uint16_t>(&payload, 0);  // code kOk
  AppendLE<std::uint32_t>(&payload, 0);  // empty message
  const Status decoded = DecodeErrorPayload(payload);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.code(), StatusCode::kInternal);
}

// ------------------------------------------------------------- reassembly

TEST(WireReassemblyTest, SplitAtEveryByteBoundary) {
  WireQueryRequest request;
  request.venue_id = "split";
  request.clients = TwoClients();
  const std::string first =
      EncodeQueryFrame(100, IflsObjective::kMinDist, request);
  const std::string second = EncodeEmptyFrame(WireOpcode::kPing, 101);
  const std::string stream = first + second;
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    ByteRing ring;
    std::vector<WireFrame> frames;
    auto feed = [&](const char* data, std::size_t n) {
      ring.Append(data, n);
      while (true) {
        Result<std::optional<WireFrame>> decoded = TryDecodeFrame(&ring);
        ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
        if (!decoded.value().has_value()) break;
        frames.push_back(std::move(*decoded.value()));
      }
    };
    feed(stream.data(), split);
    feed(stream.data() + split, stream.size() - split);
    ASSERT_EQ(frames.size(), 2u) << "split at " << split;
    EXPECT_EQ(frames[0].request_id, 100u);
    EXPECT_EQ(frames[0].opcode, WireOpcode::kQueryMinDist);
    EXPECT_EQ(frames[1].request_id, 101u);
    EXPECT_EQ(frames[1].opcode, WireOpcode::kPing);
    auto decoded = DecodeQueryRequest(frames[0].payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().venue_id, "split");
  }
}

TEST(WireReassemblyTest, OneByteAtATime) {
  WireSubscriptionPush push;
  push.subscription_id = 4;
  push.sequence = 2;
  push.found = true;
  push.answer = 3;
  push.objective = 1.5;
  const std::string stream = EncodePushFrame(50, push) +
                             EncodeErrorFrame(51, Status::NotFound("gone")) +
                             EncodeEmptyFrame(WireOpcode::kPong, 52);
  ByteRing ring;
  std::vector<WireFrame> frames;
  for (char byte : stream) {
    ring.Append(&byte, 1);
    Result<std::optional<WireFrame>> decoded = TryDecodeFrame(&ring);
    ASSERT_TRUE(decoded.ok());
    if (decoded.value().has_value()) {
      frames.push_back(std::move(*decoded.value()));
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].opcode, WireOpcode::kSubscriptionPush);
  EXPECT_EQ(frames[1].opcode, WireOpcode::kError);
  EXPECT_EQ(frames[2].opcode, WireOpcode::kPong);
  EXPECT_EQ(DecodeErrorPayload(frames[1].payload).code(),
            StatusCode::kNotFound);
  auto decoded_push = DecodePush(frames[0].payload);
  ASSERT_TRUE(decoded_push.ok());
  EXPECT_EQ(decoded_push.value().answer, 3);
}

TEST(WireReassemblyTest, ByteRingCompactsWithoutLosingData) {
  // Interleave appends and consumes so the ring's head crosses the
  // compaction threshold repeatedly.
  ByteRing ring;
  std::string expect;
  std::size_t consumed = 0;
  for (int round = 0; round < 200; ++round) {
    std::string chunk(17 + round % 13, static_cast<char>('a' + round % 26));
    ring.Append(chunk.data(), chunk.size());
    expect += chunk;
    const std::size_t take = ring.size() / 2;
    // Verify the window before consuming half of it.
    ASSERT_EQ(std::string_view(ring.data(), ring.size()),
              std::string_view(expect).substr(consumed));
    ring.Consume(take);
    consumed += take;
  }
  EXPECT_EQ(std::string_view(ring.data(), ring.size()),
            std::string_view(expect).substr(consumed));
}

}  // namespace
}  // namespace ifls
