#include "src/index/vip_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "src/index/graph_oracle.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::BuildTinyVenue;
using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::TinyVenue;
using testing_util::Unwrap;

// ------------------------------------------------------------- Structure

TEST(VipTreeStructureTest, LeavesPartitionTheVenue) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  std::set<PartitionId> covered;
  std::size_t leaves = 0;
  for (std::size_t n = 0; n < tree.num_nodes(); ++n) {
    const VipNode& node = tree.node(static_cast<NodeId>(n));
    if (!node.is_leaf()) continue;
    ++leaves;
    for (PartitionId p : node.partitions) {
      EXPECT_TRUE(covered.insert(p).second) << "partition in two leaves";
      EXPECT_EQ(tree.LeafOf(p), node.id);
    }
    EXPECT_LE(node.partitions.size(),
              static_cast<std::size_t>(tree.options().leaf_capacity));
  }
  EXPECT_EQ(covered.size(), venue.num_partitions());
  EXPECT_EQ(leaves, tree.num_leaves());
}

TEST(VipTreeStructureTest, ParentChildLinksConsistent) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  const VipNode& root = tree.node(tree.root());
  EXPECT_EQ(root.parent, kInvalidNode);
  EXPECT_EQ(root.depth, 0);
  EXPECT_EQ(root.subtree_partitions,
            static_cast<std::int32_t>(venue.num_partitions()));
  for (std::size_t n = 0; n < tree.num_nodes(); ++n) {
    const VipNode& node = tree.node(static_cast<NodeId>(n));
    for (NodeId ch : node.children) {
      EXPECT_EQ(tree.node(ch).parent, node.id);
      EXPECT_EQ(tree.node(ch).depth, node.depth + 1);
    }
    if (!node.is_leaf()) {
      EXPECT_LE(node.children.size(),
                static_cast<std::size_t>(tree.options().internal_fanout));
      std::int32_t total = 0;
      for (NodeId ch : node.children) {
        total += tree.node(ch).subtree_partitions;
      }
      EXPECT_EQ(node.subtree_partitions, total);
    }
  }
}

TEST(VipTreeStructureTest, AccessDoorsHaveExactlyOneSideInside) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  for (std::size_t n = 0; n < tree.num_nodes(); ++n) {
    const NodeId id = static_cast<NodeId>(n);
    const VipNode& node = tree.node(id);
    for (const Door& d : venue.doors()) {
      const bool a_in = tree.NodeContainsPartition(id, d.partition_a);
      const bool b_in = tree.NodeContainsPartition(id, d.partition_b);
      const bool is_access =
          std::binary_search(node.access_doors.begin(),
                             node.access_doors.end(), d.id);
      EXPECT_EQ(is_access, a_in != b_in)
          << "node " << id << " door " << d.id;
    }
  }
}

TEST(VipTreeStructureTest, RootHasNoAccessDoors) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  EXPECT_TRUE(tree.node(tree.root()).access_doors.empty());
}

TEST(VipTreeStructureTest, LowestCommonAncestor) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  const NodeId leaf0 = tree.LeafOf(0);
  EXPECT_EQ(tree.LowestCommonAncestor(leaf0, leaf0), leaf0);
  EXPECT_EQ(tree.LowestCommonAncestor(leaf0, tree.root()), tree.root());
  // LCA of two distinct leaves contains both.
  const NodeId leaf_last = tree.LeafOf(
      static_cast<PartitionId>(venue.num_partitions() - 1));
  if (leaf0 != leaf_last) {
    const NodeId lca = tree.LowestCommonAncestor(leaf0, leaf_last);
    EXPECT_TRUE(tree.NodeContainsPartition(lca, 0));
    EXPECT_TRUE(tree.NodeContainsPartition(
        lca, static_cast<PartitionId>(venue.num_partitions() - 1)));
  }
}

TEST(VipTreeStructureTest, LeavesNeverStraddleLevels) {
  // The tiny venue spans two levels; even with a huge leaf capacity the
  // builder keeps one leaf per level (floor-coherent nodes whose access
  // doors are the stair doors).
  TinyVenue t = BuildTinyVenue();
  VipTreeOptions options;
  options.leaf_capacity = 16;
  VipTree tree = Unwrap(VipTree::Build(&t.venue, options));
  EXPECT_EQ(tree.num_leaves(), 2u);
  EXPECT_EQ(tree.num_nodes(), 3u);
  EXPECT_NE(tree.LeafOf(t.room_a), tree.LeafOf(t.room_d));
  const VipNode& level0 = tree.node(tree.LeafOf(t.room_a));
  ASSERT_EQ(level0.access_doors.size(), 1u);
  EXPECT_EQ(level0.access_doors[0], t.door_stair);
  // Distances still exact across the levels.
  GraphDistanceOracle oracle(&t.venue);
  EXPECT_NEAR(tree.DoorToDoor(t.door_a, t.door_d),
              oracle.DoorToDoor(t.door_a, t.door_d), 1e-9);
}

TEST(VipTreeStructureTest, SingleLeafVenue) {
  // A one-level venue small enough for one leaf: the root is the leaf.
  VenueBuilder b("one-level");
  const PartitionId room_a = b.AddPartition(Rect(0, 0, 10, 4, 0));
  const PartitionId hall =
      b.AddPartition(Rect(10, 0, 20, 4, 0), PartitionKind::kCorridor);
  const PartitionId room_b = b.AddPartition(Rect(20, 0, 30, 4, 0));
  const DoorId door_a = b.AddDoor(room_a, hall, Point(10, 2, 0));
  const DoorId door_b = b.AddDoor(room_b, hall, Point(20, 2, 0));
  Venue venue = Unwrap(b.Build());
  VipTreeOptions options;
  options.leaf_capacity = 16;
  VipTree tree = Unwrap(VipTree::Build(&venue, options));
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.root(), tree.LeafOf(room_a));
  EXPECT_DOUBLE_EQ(tree.DoorToDoor(door_a, door_b), 10.0);
}

TEST(VipTreeBuildTest, RejectsBadOptions) {
  TinyVenue t = BuildTinyVenue();
  VipTreeOptions options;
  options.leaf_capacity = 0;
  EXPECT_TRUE(VipTree::Build(&t.venue, options).status().IsInvalidArgument());
  options.leaf_capacity = 4;
  options.internal_fanout = 1;
  EXPECT_TRUE(VipTree::Build(&t.venue, options).status().IsInvalidArgument());
  EXPECT_TRUE(VipTree::Build(nullptr).status().IsInvalidArgument());
}

TEST(VipTreeBuildTest, MemoryFootprintAndToStringArePopulated) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  EXPECT_GT(tree.MemoryFootprintBytes(), 0u);
  EXPECT_NE(tree.ToString().find("VIP-tree"), std::string::npos);
  VipTreeOptions ip;
  ip.build_leaf_to_ancestor = false;
  VipTree ip_tree = Unwrap(VipTree::Build(&venue, ip));
  EXPECT_NE(ip_tree.ToString().find("IP-tree"), std::string::npos);
  // The VIP-tree strictly dominates the IP-tree in stored matrix bytes.
  EXPECT_GT(tree.MemoryFootprintBytes(), ip_tree.MemoryFootprintBytes());
}

// ------------------------------------------------------------- Distances

/// Parameterized over (leaf_capacity, internal_fanout, leaf_to_ancestor):
/// every configuration must agree exactly with the graph oracle.
class VipTreeDistanceTest
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {
 protected:
  VipTreeOptions Options() const {
    VipTreeOptions options;
    options.leaf_capacity = std::get<0>(GetParam());
    options.internal_fanout = std::get<1>(GetParam());
    options.build_leaf_to_ancestor = std::get<2>(GetParam());
    return options;
  }
};

TEST_P(VipTreeDistanceTest, DoorToDoorMatchesOracleExhaustively) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue, Options()));
  GraphDistanceOracle oracle(&venue);
  for (std::size_t a = 0; a < venue.num_doors(); ++a) {
    for (std::size_t b = 0; b < venue.num_doors(); ++b) {
      const DoorId da = static_cast<DoorId>(a);
      const DoorId db = static_cast<DoorId>(b);
      ASSERT_NEAR(tree.DoorToDoor(da, db), oracle.DoorToDoor(da, db), 1e-9)
          << "doors " << a << " -> " << b;
    }
  }
}

TEST_P(VipTreeDistanceTest, PointToPointMatchesOracleOnRandomPairs) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue, Options()));
  GraphDistanceOracle oracle(&venue);
  Rng rng(77);
  for (int i = 0; i < 300; ++i) {
    const Client a = RandomClient(venue, &rng, 0);
    const Client b = RandomClient(venue, &rng, 1);
    ASSERT_NEAR(
        tree.PointToPoint(a.position, a.partition, b.position, b.partition),
        oracle.PointToPoint(a.position, a.partition, b.position, b.partition),
        1e-9);
  }
}

TEST_P(VipTreeDistanceTest, PointToPartitionMatchesOracle) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue, Options()));
  GraphDistanceOracle oracle(&venue);
  Rng rng(78);
  for (int i = 0; i < 300; ++i) {
    const Client a = RandomClient(venue, &rng, 0);
    const auto target = static_cast<PartitionId>(
        rng.NextBounded(venue.num_partitions()));
    ASSERT_NEAR(tree.PointToPartition(a.position, a.partition, target),
                oracle.PointToPartition(a.position, a.partition, target),
                1e-9);
  }
}

TEST_P(VipTreeDistanceTest, PartitionToPartitionMatchesOracle) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue, Options()));
  GraphDistanceOracle oracle(&venue);
  Rng rng(79);
  for (int i = 0; i < 200; ++i) {
    const auto p =
        static_cast<PartitionId>(rng.NextBounded(venue.num_partitions()));
    const auto q =
        static_cast<PartitionId>(rng.NextBounded(venue.num_partitions()));
    ASSERT_NEAR(tree.PartitionToPartition(p, q),
                oracle.PartitionToPartition(p, q), 1e-9);
  }
}

TEST_P(VipTreeDistanceTest, NodeLowerBoundsAreValid) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue, Options()));
  Rng rng(80);
  for (int i = 0; i < 100; ++i) {
    const Client c = RandomClient(venue, &rng, 0);
    const auto n =
        static_cast<NodeId>(rng.NextBounded(tree.num_nodes()));
    const double bound = tree.PointToNode(c.position, c.partition, n);
    // The bound must not exceed the exact distance to any partition inside
    // the node.
    for (const Partition& p : venue.partitions()) {
      if (!tree.NodeContainsPartition(n, p.id)) continue;
      ASSERT_LE(bound, tree.PointToPartition(c.position, c.partition, p.id) +
                           1e-9);
    }
    // And iMinD(p, n) <= point-level bound.
    ASSERT_LE(tree.PartitionToNode(c.partition, n), bound + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, VipTreeDistanceTest,
    ::testing::Values(std::make_tuple(1, 2, true),
                      std::make_tuple(2, 2, true),
                      std::make_tuple(4, 3, true),
                      std::make_tuple(8, 4, true),
                      std::make_tuple(8, 4, false),   // IP-tree
                      std::make_tuple(2, 2, false),   // deep IP-tree
                      std::make_tuple(64, 4, true))); // single leaf

TEST(VipTreeDistanceTest, StairCostsAppearInCrossLevelDistances) {
  TinyVenue t = BuildTinyVenue();
  VipTreeOptions options;
  options.leaf_capacity = 2;
  VipTree tree = Unwrap(VipTree::Build(&t.venue, options));
  // Client in room A to room D must pay both stair half-costs (8 total).
  const Point a(5, 2, 0);
  const double d = tree.PointToPartition(a, t.room_a, t.room_d);
  GraphDistanceOracle oracle(&t.venue);
  EXPECT_NEAR(d, oracle.PointToPartition(a, t.room_a, t.room_d), 1e-9);
  EXPECT_GT(d, 8.0);
}

TEST(VipTreeDistanceTest, SameLevelPairsDoNotPayStairs) {
  TinyVenue t = BuildTinyVenue();
  VipTree tree = Unwrap(VipTree::Build(&t.venue));
  const Point a(5, 2, 0);   // room A
  const Point b(25, 2, 0);  // room B
  // a -> door_a (5) + door_a -> door_b (10) + door_b -> b (5).
  EXPECT_DOUBLE_EQ(tree.PointToPoint(a, t.room_a, b, t.room_b), 20.0);
}

TEST(VipTreeDistanceTest, SinglePartitionPairIsPlanar) {
  TinyVenue t = BuildTinyVenue();
  VipTree tree = Unwrap(VipTree::Build(&t.venue));
  EXPECT_DOUBLE_EQ(
      tree.PointToPoint(Point(1, 1, 0), t.room_a, Point(4, 5, 0), t.room_a),
      5.0);
  EXPECT_DOUBLE_EQ(tree.PointToPartition(Point(1, 1, 0), t.room_a, t.room_a),
                   0.0);
}

TEST(VipTreeDistanceTest, SingleDoorOptimizationMatchesFullComputation) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTreeOptions with_opt;
  with_opt.single_door_optimization = true;
  VipTreeOptions without_opt;
  without_opt.single_door_optimization = false;
  VipTree tree_a = Unwrap(VipTree::Build(&venue, with_opt));
  VipTree tree_b = Unwrap(VipTree::Build(&venue, without_opt));
  Rng rng(81);
  for (int i = 0; i < 200; ++i) {
    const Client c = RandomClient(venue, &rng, 0);
    const auto target = static_cast<PartitionId>(
        rng.NextBounded(venue.num_partitions()));
    ASSERT_NEAR(tree_a.PointToPartition(c.position, c.partition, target),
                tree_b.PointToPartition(c.position, c.partition, target),
                1e-9);
  }
}

TEST(VipTreeDistanceTest, FirstHopIsConsistentWithinLeaf) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  GraphDistanceOracle oracle(&venue);
  // For doors sharing a leaf, walking to the first hop and recursing must
  // reproduce the total distance.
  int checked = 0;
  for (std::size_t n = 0; n < tree.num_nodes() && checked < 50; ++n) {
    const VipNode& node = tree.node(static_cast<NodeId>(n));
    if (!node.is_leaf()) continue;
    for (DoorId a : node.doors) {
      for (DoorId b : node.doors) {
        if (a == b) continue;
        const DoorId hop = tree.FirstHop(a, b);
        if (hop == kInvalidDoor) continue;
        ASSERT_NEAR(oracle.DoorToDoor(a, b),
                    oracle.DoorToDoor(a, hop) + oracle.DoorToDoor(hop, b),
                    1e-9);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(VipTreeDistanceTest, CountersAdvance) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  tree.ResetCounters();
  (void)tree.DoorToDoor(0, static_cast<DoorId>(venue.num_doors() - 1));
  EXPECT_GE(tree.counters().door_distance_evals, 1u);
  EXPECT_GE(tree.counters().matrix_lookups, 1u);
  tree.ResetCounters();
  EXPECT_EQ(tree.counters().door_distance_evals, 0u);
}

}  // namespace
}  // namespace ifls
