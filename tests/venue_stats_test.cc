#include "src/datasets/venue_stats.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

TEST(VenueStatsTest, CountsMatchTheVenue) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  const VenueStats stats = ComputeVenueStats(tree, /*samples=*/50);
  EXPECT_EQ(stats.partitions, venue.num_partitions());
  EXPECT_EQ(stats.rooms, venue.num_rooms());
  EXPECT_EQ(stats.doors, venue.num_doors());
  EXPECT_EQ(stats.levels, venue.num_levels());
  EXPECT_EQ(stats.rooms + stats.corridors + stats.stairwells,
            stats.partitions);
  // 2 levels joined by exactly one stair door in the small spec.
  EXPECT_EQ(stats.stairwells, 2u);
  EXPECT_EQ(stats.stair_doors, 1u);
}

TEST(VenueStatsTest, DegreeAndAreaArePlausible) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  const VenueStats stats = ComputeVenueStats(tree, /*samples=*/50);
  // Sum of degrees = 2 * doors.
  EXPECT_NEAR(stats.mean_degree * static_cast<double>(stats.partitions),
              2.0 * static_cast<double>(stats.doors), 1e-9);
  EXPECT_GE(stats.max_degree, 2);
  EXPECT_GT(stats.walkable_area, 0.0);
}

TEST(VenueStatsTest, DistanceMomentsAreDeterministicAndOrdered) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  const VenueStats a = ComputeVenueStats(tree, 100, /*seed=*/7);
  const VenueStats b = ComputeVenueStats(tree, 100, /*seed=*/7);
  EXPECT_DOUBLE_EQ(a.mean_distance, b.mean_distance);
  EXPECT_DOUBLE_EQ(a.max_distance, b.max_distance);
  EXPECT_GT(a.mean_distance, 0.0);
  EXPECT_GE(a.max_distance, a.mean_distance);
  EXPECT_FALSE(a.ToString().empty());
}

}  // namespace
}  // namespace ifls
