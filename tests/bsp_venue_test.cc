// The BSP generator and — more importantly — robustness of the whole stack
// (index exactness, solver optimality) on irregular, corridor-free
// topologies.

#include "src/datasets/bsp_venue.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/core/brute_force.h"
#include "src/core/efficient.h"
#include "src/core/maxsum.h"
#include "src/core/mindist.h"
#include "src/core/minmax_baseline.h"
#include "src/index/graph_oracle.h"
#include "src/index/vip_tree.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::Unwrap;

BspVenueSpec DefaultSpec() {
  BspVenueSpec spec;
  spec.levels = 2;
  spec.rooms_per_level = 28;
  spec.width = 90;
  spec.height = 70;
  return spec;
}

TEST(BspVenueTest, GeneratesValidConnectedVenues) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    Venue venue = Unwrap(GenerateBspVenue(DefaultSpec(), &rng));
    EXPECT_TRUE(venue.Validate().ok()) << "seed " << seed;
    EXPECT_EQ(venue.num_levels(), 2);
    EXPECT_GE(venue.num_rooms(), 40u);  // ~28 per level, min-side capped
    EXPECT_LE(venue.num_rooms(), 56u);
  }
}

TEST(BspVenueTest, RoomsTileTheFloorWithoutOverlap) {
  Rng rng(7);
  Venue venue = Unwrap(GenerateBspVenue(DefaultSpec(), &rng));
  double area = 0.0;
  for (const Partition& p : venue.partitions()) {
    if (p.level() == 0) area += p.rect.area();
    for (const Partition& q : venue.partitions()) {
      if (p.id >= q.id || p.level() != q.level()) continue;
      // Closed rects may touch but not properly overlap.
      const double ox =
          std::min(p.rect.max_x, q.rect.max_x) -
          std::max(p.rect.min_x, q.rect.min_x);
      const double oy =
          std::min(p.rect.max_y, q.rect.max_y) -
          std::max(p.rect.min_y, q.rect.min_y);
      EXPECT_FALSE(ox > 1e-9 && oy > 1e-9)
          << "rooms " << p.id << " and " << q.id << " overlap";
    }
  }
  EXPECT_NEAR(area, 90.0 * 70.0, 1e-6);
}

TEST(BspVenueTest, DeterministicPerSeed) {
  Rng a(11), b(11);
  Venue va = Unwrap(GenerateBspVenue(DefaultSpec(), &a));
  Venue vb = Unwrap(GenerateBspVenue(DefaultSpec(), &b));
  ASSERT_EQ(va.num_partitions(), vb.num_partitions());
  ASSERT_EQ(va.num_doors(), vb.num_doors());
  for (std::size_t i = 0; i < va.num_doors(); ++i) {
    EXPECT_EQ(va.door(static_cast<DoorId>(i)).position,
              vb.door(static_cast<DoorId>(i)).position);
  }
}

TEST(BspVenueTest, RejectsBadSpecs) {
  Rng rng(13);
  BspVenueSpec bad = DefaultSpec();
  bad.levels = 0;
  EXPECT_TRUE(GenerateBspVenue(bad, &rng).status().IsInvalidArgument());
  bad = DefaultSpec();
  bad.width = 5;
  bad.min_room_side = 4;
  EXPECT_TRUE(GenerateBspVenue(bad, &rng).status().IsInvalidArgument());
}

TEST(BspVenueTest, VipTreeStaysExactOnIrregularTopology) {
  Rng rng(17);
  Venue venue = Unwrap(GenerateBspVenue(DefaultSpec(), &rng));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  GraphDistanceOracle oracle(&venue);
  Rng qrng(18);
  for (int i = 0; i < 200; ++i) {
    const Client a = RandomClient(venue, &qrng, 0);
    const Client b = RandomClient(venue, &qrng, 1);
    ASSERT_NEAR(
        tree.PointToPoint(a.position, a.partition, b.position, b.partition),
        oracle.PointToPoint(a.position, a.partition, b.position, b.partition),
        1e-9);
  }
}

TEST(BspVenueTest, SolversStayOptimalOnIrregularTopology) {
  Rng rng(19);
  Venue venue = Unwrap(GenerateBspVenue(DefaultSpec(), &rng));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    Rng wrng(seed);
    IflsContext ctx;
    ctx.oracle = &tree;
    FacilitySets sets =
        Unwrap(SelectUniformFacilities(venue, 4, 8, &wrng));
    ctx.existing = std::move(sets.existing);
    ctx.candidates = std::move(sets.candidates);
    for (int i = 0; i < 40; ++i) {
      ctx.clients.push_back(
          RandomClient(venue, &wrng, static_cast<ClientId>(i)));
    }
    const IflsResult brute = Unwrap(SolveBruteForceMinMax(ctx));
    const IflsResult efficient = Unwrap(SolveEfficient(ctx));
    const IflsResult baseline = Unwrap(SolveModifiedMinMax(ctx));
    if (efficient.found) {
      EXPECT_NEAR(EvaluateMinMax(ctx, efficient.answer), brute.objective,
                  1e-7 * std::max(1.0, brute.objective));
    }
    if (baseline.found) {
      EXPECT_NEAR(EvaluateMinMax(ctx, baseline.answer), brute.objective,
                  1e-7 * std::max(1.0, brute.objective));
    }
  }
}

TEST(BspVenueTest, ExtensionSolversStayOptimalOnIrregularTopology) {
  Rng rng(31);
  Venue venue = Unwrap(GenerateBspVenue(DefaultSpec(), &rng));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  for (std::uint64_t seed : {41u, 42u}) {
    Rng wrng(seed);
    IflsContext ctx;
    ctx.oracle = &tree;
    FacilitySets sets = Unwrap(SelectUniformFacilities(venue, 3, 7, &wrng));
    ctx.existing = std::move(sets.existing);
    ctx.candidates = std::move(sets.candidates);
    for (int i = 0; i < 35; ++i) {
      ctx.clients.push_back(
          RandomClient(venue, &wrng, static_cast<ClientId>(i)));
    }
    const IflsResult brute_md = Unwrap(SolveBruteForceMinDist(ctx));
    const IflsResult mindist = Unwrap(SolveMinDist(ctx));
    ASSERT_TRUE(mindist.found);
    EXPECT_NEAR(EvaluateMinDist(ctx, mindist.answer), brute_md.objective,
                1e-7 * std::max(1.0, brute_md.objective));

    const IflsResult brute_ms = Unwrap(SolveBruteForceMaxSum(ctx));
    const IflsResult maxsum = Unwrap(SolveMaxSum(ctx));
    ASSERT_TRUE(maxsum.found);
    EXPECT_NEAR(EvaluateMaxSum(ctx, maxsum.answer), brute_ms.objective,
                1e-9);
  }
}

TEST(BspVenueTest, TopKStaysExactOnIrregularTopology) {
  Rng rng(51);
  Venue venue = Unwrap(GenerateBspVenue(DefaultSpec(), &rng));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  Rng wrng(52);
  IflsContext ctx;
  ctx.oracle = &tree;
  FacilitySets sets = Unwrap(SelectUniformFacilities(venue, 4, 10, &wrng));
  ctx.existing = std::move(sets.existing);
  ctx.candidates = std::move(sets.candidates);
  for (int i = 0; i < 30; ++i) {
    ctx.clients.push_back(
        RandomClient(venue, &wrng, static_cast<ClientId>(i)));
  }
  const IflsResult oracle = Unwrap(SolveBruteForceTopKMinMax(ctx, 4));
  EfficientOptions options;
  options.top_k = 4;
  const IflsResult ranked = Unwrap(SolveEfficient(ctx, options));
  ASSERT_EQ(ranked.ranked.size(), oracle.ranked.size());
  for (std::size_t i = 0; i < ranked.ranked.size(); ++i) {
    EXPECT_NEAR(ranked.ranked[i].second, oracle.ranked[i].second,
                1e-7 * std::max(1.0, oracle.ranked[i].second));
  }
}

}  // namespace
}  // namespace ifls
