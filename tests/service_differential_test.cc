// Acceptance lock-in for the online serving subsystem: across randomized
// venues and randomized mutation sequences, all three objectives answered on
// the service's (snapshot ⊕ overlay) composition must be bit-identical —
// answer id, found flag, objective value and ranked tie-breaks — to a full
// from-scratch rebuild (fresh VIP-tree, composed facility sets) at every
// step, both before and after compaction.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/solve_dispatch.h"
#include "src/service/service.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::Unwrap;

VenueGeneratorSpec RandomSpec(Rng* rng) {
  VenueGeneratorSpec spec;
  spec.name = "service-diff";
  spec.levels = 1 + static_cast<int>(rng->NextBounded(2));
  spec.rooms_per_level = 12 + static_cast<int>(rng->NextBounded(16));
  spec.rooms_per_corridor_side = 4 + static_cast<int>(rng->NextBounded(4));
  spec.room_width = 4.0 + rng->NextUniform(0.0, 3.0);
  spec.room_depth = 6.0 + rng->NextUniform(0.0, 3.0);
  spec.corridor_width = 3.0;
  spec.stairwells = 1;
  spec.stair_length = 8.0 + rng->NextUniform(0.0, 6.0);
  spec.door_jitter_seed = rng->NextBounded(1u << 20) + 1;
  return spec;
}

/// Reference model of the effective facility sets, mirrored mutation by
/// mutation (only those the service accepted).
struct ReferenceSets {
  std::vector<PartitionId> existing;
  std::vector<PartitionId> candidates;

  static void Insert(std::vector<PartitionId>* v, PartitionId p) {
    v->insert(std::upper_bound(v->begin(), v->end(), p), p);
  }
  static void Erase(std::vector<PartitionId>* v, PartitionId p) {
    v->erase(std::find(v->begin(), v->end(), p));
  }
  void Apply(const Mutation& m) {
    switch (m.kind) {
      case MutationKind::kAddFacility:
        Insert(&existing, m.partition);
        break;
      case MutationKind::kRemoveFacility:
        Erase(&existing, m.partition);
        break;
      case MutationKind::kAddCandidate:
        Insert(&candidates, m.partition);
        break;
      case MutationKind::kRemoveCandidate:
        Erase(&candidates, m.partition);
        break;
    }
  }
};

class ServiceDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ServiceDifferentialTest, ServiceMatchesFullRebuildAtEveryStep) {
  Rng rng(GetParam());

  // The rebuild reference gets its own identical venue + fresh VIP-tree
  // (venue generation and tree construction are deterministic).
  const VenueGeneratorSpec spec = RandomSpec(&rng);
  Venue reference_venue = Unwrap(GenerateVenue(spec));
  const VipTree reference_tree =
      Unwrap(VipTree::Build(&reference_venue));

  ReferenceSets ref;
  {
    FacilitySets sets = Unwrap(SelectUniformFacilities(
        reference_venue, 2 + rng.NextBounded(3), 3 + rng.NextBounded(4),
        &rng));
    ref.existing = std::move(sets.existing);
    ref.candidates = std::move(sets.candidates);
    std::sort(ref.existing.begin(), ref.existing.end());
    std::sort(ref.candidates.begin(), ref.candidates.end());
  }

  std::vector<Client> clients;
  const std::size_t num_clients = 8 + rng.NextBounded(12);
  for (std::size_t i = 0; i < num_clients; ++i) {
    clients.push_back(
        RandomClient(reference_venue, &rng, static_cast<ClientId>(i)));
  }

  ServiceOptions options;
  options.num_workers = 0;        // inline, deterministic
  options.compaction_threshold = 0;  // compaction points chosen by the test
  Venue service_venue = Unwrap(GenerateVenue(spec));
  std::unique_ptr<IflsService> service = Unwrap(IflsService::Create(
      std::move(service_venue), ref.existing, ref.candidates, options));

  // Bit-identical comparison of the service answer vs a from-scratch solve
  // over the reference tree and the composed sets.
  const auto check_all_objectives = [&](const char* stage, int step) {
    for (IflsObjective objective :
         {IflsObjective::kMinMax, IflsObjective::kMinDist,
          IflsObjective::kMaxSum}) {
      SCOPED_TRACE(::testing::Message()
                   << stage << " step " << step << " "
                   << IflsObjectiveName(objective));
      ServiceRequest req;
      req.objective = objective;
      req.clients = clients;
      const ServiceReply reply = service->Query(std::move(req));

      IflsContext ctx;
      ctx.oracle = &reference_tree;
      ctx.existing = ref.existing;
      ctx.candidates = ref.candidates;
      ctx.clients = clients;
      const Result<IflsResult> rebuilt = SolveWithObjective(objective, ctx);

      // Mutations can drive the sets into shapes a solver rejects (e.g.
      // everything removed); service and rebuild must then fail identically.
      ASSERT_EQ(reply.status.ok(), rebuilt.ok())
          << reply.status.ToString() << " vs " << rebuilt.status().ToString();
      if (!rebuilt.ok()) continue;

      EXPECT_EQ(reply.result.found, rebuilt->found);
      EXPECT_EQ(reply.result.answer, rebuilt->answer);
      EXPECT_EQ(reply.result.objective, rebuilt->objective);  // bit-identical
      EXPECT_EQ(reply.result.ranked, rebuilt->ranked);

      // The service's effective sets equal the reference composition.
      const auto state = service->AcquireState();
      EXPECT_EQ(state->overlay.effective_existing(), ref.existing);
      EXPECT_EQ(state->overlay.effective_candidates(), ref.candidates);
    }
  };

  check_all_objectives("boot", -1);

  const int num_steps = 10 + static_cast<int>(rng.NextBounded(6));
  std::uint64_t epoch_before = service->snapshot_epoch();
  for (int step = 0; step < num_steps; ++step) {
    // A random mutation on a random partition; invalid ones must be
    // rejected without changing any answer.
    Mutation m;
    m.kind = static_cast<MutationKind>(rng.NextBounded(4));
    m.partition = static_cast<PartitionId>(
        rng.NextBounded(reference_venue.num_partitions()));
    const Status applied = service->Mutate(m);
    if (applied.ok()) ref.Apply(m);

    check_all_objectives("mutate", step);

    // Compact at random points (and always near the end): the fold plus
    // overlay rebase must leave every answer unchanged.
    if (rng.NextBounded(4) == 0 || step == num_steps - 1) {
      ASSERT_TRUE(service->CompactNow().ok());
      const std::uint64_t epoch_after = service->snapshot_epoch();
      EXPECT_GT(epoch_after, epoch_before);  // epochs strictly monotonic
      epoch_before = epoch_after;
      check_all_objectives("compacted", step);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMutationSequences, ServiceDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace ifls
