#include "src/graph/dijkstra.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/door_graph.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::BuildTinyVenue;
using testing_util::TinyVenue;
using testing_util::Unwrap;

TEST(DoorGraphTest, EdgeCountsMatchPartitionCliques) {
  TinyVenue t = BuildTinyVenue();
  DoorGraph graph(t.venue);
  EXPECT_EQ(graph.num_doors(), 6u);
  // Corridor has 4 doors -> 4*3 directed edges; each stairwell has 2 doors
  // -> 2 directed edges each; rooms have 1 door -> none.
  EXPECT_EQ(graph.num_edges(), 12u + 2u + 2u);
}

TEST(DoorGraphTest, EdgeWeightsIncludeStairCosts) {
  TinyVenue t = BuildTinyVenue();
  DoorGraph graph(t.venue);
  // door_s0 (16,4) <-> door_stair (16,6), vertical cost 8 charged half.
  bool found = false;
  for (const DoorGraph::Edge* e = graph.EdgesBegin(t.door_s0);
       e != graph.EdgesEnd(t.door_s0); ++e) {
    if (e->to == t.door_stair) {
      EXPECT_DOUBLE_EQ(e->weight, 2.0 + 4.0);
      EXPECT_EQ(e->via, t.stair0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DijkstraTest, DistancesMatchHandComputedValues) {
  TinyVenue t = BuildTinyVenue();
  DoorGraph graph(t.venue);
  const ShortestPaths paths = SingleSourceShortestPaths(graph, t.door_a);
  EXPECT_DOUBLE_EQ(paths.distance[static_cast<std::size_t>(t.door_a)], 0.0);
  EXPECT_DOUBLE_EQ(paths.distance[static_cast<std::size_t>(t.door_b)], 10.0);
  EXPECT_DOUBLE_EQ(paths.distance[static_cast<std::size_t>(t.door_c)],
                   std::sqrt(29.0));
  EXPECT_DOUBLE_EQ(paths.distance[static_cast<std::size_t>(t.door_s0)],
                   std::sqrt(40.0));
  // a -> s0 -> stair door -> d: sqrt(40) + (2 + 4) + (2 + 4).
  EXPECT_DOUBLE_EQ(paths.distance[static_cast<std::size_t>(t.door_stair)],
                   std::sqrt(40.0) + 6.0);
  EXPECT_DOUBLE_EQ(paths.distance[static_cast<std::size_t>(t.door_d)],
                   std::sqrt(40.0) + 12.0);
}

TEST(DijkstraTest, FirstHopPointsThroughTheCorridor) {
  TinyVenue t = BuildTinyVenue();
  DoorGraph graph(t.venue);
  const ShortestPaths paths = SingleSourceShortestPaths(graph, t.door_a);
  EXPECT_EQ(paths.first_hop[static_cast<std::size_t>(t.door_a)],
            kInvalidDoor);
  EXPECT_EQ(paths.first_hop[static_cast<std::size_t>(t.door_b)], t.door_b);
  EXPECT_EQ(paths.first_hop[static_cast<std::size_t>(t.door_d)], t.door_s0);
}

TEST(DijkstraTest, PathReconstruction) {
  TinyVenue t = BuildTinyVenue();
  DoorGraph graph(t.venue);
  const ShortestPaths paths = SingleSourceShortestPaths(graph, t.door_a);
  const std::vector<DoorId> path =
      ReconstructPath(paths, t.door_a, t.door_d);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], t.door_a);
  EXPECT_EQ(path[1], t.door_s0);
  EXPECT_EQ(path[2], t.door_stair);
  EXPECT_EQ(path[3], t.door_d);
  // Source to itself.
  EXPECT_EQ(ReconstructPath(paths, t.door_a, t.door_a).size(), 1u);
}

TEST(DijkstraTest, TargetedSearchMatchesFullSearch) {
  Venue venue = Unwrap(GenerateVenue(testing_util::SmallVenueSpec()));
  DoorGraph graph(venue);
  const DoorId source = 0;
  const ShortestPaths full = SingleSourceShortestPaths(graph, source);
  std::vector<DoorId> targets = {
      static_cast<DoorId>(venue.num_doors() - 1),
      static_cast<DoorId>(venue.num_doors() / 2), 3};
  const ShortestPaths targeted =
      ShortestPathsToTargets(graph, source, targets);
  for (DoorId tgt : targets) {
    EXPECT_DOUBLE_EQ(targeted.distance[static_cast<std::size_t>(tgt)],
                     full.distance[static_cast<std::size_t>(tgt)]);
  }
}

TEST(DijkstraTest, SymmetricDistances) {
  // The door graph is undirected, so d(a, b) == d(b, a).
  Venue venue = Unwrap(GenerateVenue(testing_util::SmallVenueSpec()));
  DoorGraph graph(venue);
  const ShortestPaths from0 = SingleSourceShortestPaths(graph, 0);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const DoorId d = static_cast<DoorId>(rng.NextBounded(venue.num_doors()));
    const ShortestPaths back = SingleSourceShortestPaths(graph, d);
    EXPECT_NEAR(from0.distance[static_cast<std::size_t>(d)],
                back.distance[0], 1e-9);
  }
}

TEST(DijkstraTest, TriangleInequalityHolds) {
  Venue venue = Unwrap(GenerateVenue(testing_util::SmallVenueSpec()));
  DoorGraph graph(venue);
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const DoorId a = static_cast<DoorId>(rng.NextBounded(venue.num_doors()));
    const DoorId b = static_cast<DoorId>(rng.NextBounded(venue.num_doors()));
    const DoorId c = static_cast<DoorId>(rng.NextBounded(venue.num_doors()));
    const ShortestPaths from_a = SingleSourceShortestPaths(graph, a);
    const ShortestPaths from_b = SingleSourceShortestPaths(graph, b);
    EXPECT_LE(from_a.distance[static_cast<std::size_t>(c)],
              from_a.distance[static_cast<std::size_t>(b)] +
                  from_b.distance[static_cast<std::size_t>(c)] + 1e-9);
  }
}

TEST(DijkstraTest, UnreachableIsEmptyPath) {
  TinyVenue t = BuildTinyVenue();
  DoorGraph graph(t.venue);
  ShortestPaths paths = SingleSourceShortestPaths(graph, t.door_a);
  // Fabricate an unreachable door index by clearing a distance.
  paths.distance[static_cast<std::size_t>(t.door_d)] = kInfDistance;
  EXPECT_TRUE(ReconstructPath(paths, t.door_a, t.door_d).empty());
}

}  // namespace
}  // namespace ifls
