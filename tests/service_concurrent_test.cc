// Concurrency suite for the online service (run under TSan via the
// `parallel` ctest label): query threads hammer SubmitQuery/Query while a
// mutator drifts the facility sets and the background compactor publishes
// snapshots. Readers must never block or crash, epochs must be monotonic
// per observer, and a pinned ServingState must stay fully usable across
// publications.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <iterator>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/solve_dispatch.h"
#include "src/service/service.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

struct Fixture {
  Venue venue;
  std::vector<PartitionId> existing;
  std::vector<PartitionId> candidates;
  std::vector<PartitionId> pool;  // unassigned partitions the mutator uses
  std::vector<Client> clients;
  std::unique_ptr<IflsService> service;
};

Fixture MakeFixture(const ServiceOptions& options) {
  Fixture f;
  f.venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  Rng rng(404);
  FacilitySets sets = Unwrap(SelectUniformFacilities(f.venue, 3, 4, &rng));
  f.existing = std::move(sets.existing);
  f.candidates = std::move(sets.candidates);
  std::vector<bool> taken(f.venue.num_partitions(), false);
  for (PartitionId p : f.existing) taken[static_cast<std::size_t>(p)] = true;
  for (PartitionId p : f.candidates) taken[static_cast<std::size_t>(p)] = true;
  for (std::size_t p = 0; p < f.venue.num_partitions(); ++p) {
    if (!taken[p]) f.pool.push_back(static_cast<PartitionId>(p));
  }
  for (int i = 0; i < 24; ++i) {
    f.clients.push_back(RandomClient(f.venue, &rng, static_cast<ClientId>(i)));
  }
  Venue copy = Unwrap(GenerateVenue(SmallVenueSpec()));
  f.service = Unwrap(
      IflsService::Create(std::move(copy), f.existing, f.candidates, options));
  return f;
}

TEST(ServiceConcurrentTest, QueriesSurviveMutationsAndCompactions) {
  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 256;
  options.compaction_threshold = 3;  // publish often
  Fixture f = MakeFixture(options);

  constexpr int kClientThreads = 4;
  constexpr int kQueriesPerThread = 40;
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<bool> epoch_regressed{false};
  std::atomic<bool> wrong_status{false};

  std::vector<std::thread> clients_threads;
  for (int t = 0; t < kClientThreads; ++t) {
    clients_threads.emplace_back([&, t] {
      std::uint64_t last_epoch = 0;
      // Meet the quota AND see at least 3 publications (bounded overall so
      // a stuck compactor fails the test instead of hanging it).
      for (int i = 0; i < kQueriesPerThread ||
                      (f.service->snapshot_epoch() < 3 && i < 2000);
           ++i) {
        ServiceRequest req;
        req.objective = static_cast<IflsObjective>((t + i) % 3);
        req.clients = f.clients;
        const ServiceReply reply = f.service->Query(std::move(req));
        if (reply.status.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
          // Publication epochs observed by one sequential client must
          // never move backwards.
          if (reply.snapshot_epoch < last_epoch) epoch_regressed = true;
          last_epoch = reply.snapshot_epoch;
        } else if (reply.status.IsUnavailable()) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          wrong_status = true;
        }
      }
    });
  }

  // The mutator cycles pool partitions through candidate / facility roles,
  // which keeps crossing the compaction threshold.
  std::atomic<bool> stop_mutator{false};
  std::thread mutator([&] {
    Rng mrng(7);
    std::size_t i = 0;
    // Additions are removed with a lag, so the net overlay keeps swelling
    // past the compaction threshold instead of cancelling immediately.
    std::deque<std::pair<PartitionId, bool>> live;
    while (!stop_mutator.load(std::memory_order_relaxed)) {
      const PartitionId p = f.pool[i % f.pool.size()];
      const bool candidate = mrng.NextBounded(2) == 0;
      if (f.service
              ->Mutate({candidate ? MutationKind::kAddCandidate
                                  : MutationKind::kAddFacility,
                        p})
              .ok()) {
        live.emplace_back(p, candidate);
      }
      while (live.size() > 4) {
        const auto [victim, was_candidate] = live.front();
        live.pop_front();
        (void)f.service->Mutate({was_candidate
                                     ? MutationKind::kRemoveCandidate
                                     : MutationKind::kRemoveFacility,
                                 victim});
      }
      ++i;
      std::this_thread::yield();
    }
  });

  for (std::thread& t : clients_threads) t.join();
  stop_mutator = true;
  mutator.join();
  f.service->Drain();

  EXPECT_FALSE(epoch_regressed.load());
  EXPECT_FALSE(wrong_status.load());
  EXPECT_GE(ok.load() + shed.load(),
            static_cast<std::uint64_t>(kClientThreads * kQueriesPerThread));
  EXPECT_GT(ok.load(), 0u);

  // Force the tail of the overlay through and require the run to have
  // crossed several publications.
  ASSERT_TRUE(f.service->CompactNow().ok());
  const ServiceMetrics m = f.service->Metrics();
  EXPECT_GE(m.snapshot_epoch, 3u);
  EXPECT_GE(m.compactions, 3u);
  EXPECT_EQ(m.failed, 0u);
}

TEST(ServiceConcurrentTest, PinnedStateStaysSolvableAcrossPublications) {
  ServiceOptions options;
  options.num_workers = 2;
  options.compaction_threshold = 0;
  Fixture f = MakeFixture(options);

  const auto pinned = f.service->AcquireState();

  // Concurrent solver on the pinned state while the writer publishes.
  std::atomic<bool> solver_failed{false};
  std::thread reader([&] {
    for (int i = 0; i < 8; ++i) {
      IflsContext ctx;
      ctx.oracle = &pinned->oracle();
      ctx.existing = pinned->overlay.effective_existing();
      ctx.candidates = pinned->overlay.effective_candidates();
      ctx.clients = f.clients;
      if (!SolveWithObjective(static_cast<IflsObjective>(i % 3), ctx).ok()) {
        solver_failed = true;
      }
    }
  });

  for (int round = 0; round < 4; ++round) {
    const PartitionId p = f.pool[static_cast<std::size_t>(round)];
    ASSERT_TRUE(f.service->Mutate({MutationKind::kAddCandidate, p}).ok());
    ASSERT_TRUE(f.service->CompactNow().ok());
  }
  reader.join();

  EXPECT_FALSE(solver_failed.load());
  EXPECT_EQ(pinned->snapshot->epoch(), 0u);  // old version, still intact
  EXPECT_EQ(f.service->AcquireState()->snapshot->epoch(), 4u);
}

TEST(ServiceConcurrentTest, ConcurrentMutatorsStayConsistent) {
  ServiceOptions options;
  options.num_workers = 1;
  options.compaction_threshold = 5;
  Fixture f = MakeFixture(options);

  // Two mutators fight over the same pool; the overlay's validation must
  // serialize them into a consistent effective state (disjoint Fe/Fn).
  std::vector<std::thread> mutators;
  for (int t = 0; t < 2; ++t) {
    mutators.emplace_back([&, t] {
      Rng mrng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 200; ++i) {
        const PartitionId p = f.pool[mrng.NextBounded(f.pool.size())];
        const Mutation m{static_cast<MutationKind>(mrng.NextBounded(4)), p};
        (void)f.service->Mutate(m);  // rejections are expected here
      }
    });
  }
  for (std::thread& t : mutators) t.join();

  const auto state = f.service->AcquireState();
  const auto& fe = state->overlay.effective_existing();
  const auto& fn = state->overlay.effective_candidates();
  EXPECT_TRUE(std::is_sorted(fe.begin(), fe.end()));
  EXPECT_TRUE(std::is_sorted(fn.begin(), fn.end()));
  std::vector<PartitionId> both;
  std::set_intersection(fe.begin(), fe.end(), fn.begin(), fn.end(),
                        std::back_inserter(both));
  EXPECT_TRUE(both.empty());

  // And the composed state still answers queries.
  ServiceRequest req;
  req.objective = IflsObjective::kMinMax;
  req.clients = f.clients;
  EXPECT_TRUE(f.service->Query(std::move(req)).status.ok());
}

}  // namespace
}  // namespace ifls
