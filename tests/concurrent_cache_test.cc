// ConcurrentDoorCache: single-thread semantics plus a 16-thread mixed
// insert/lookup/evict stress. Runs under `ctest -L parallel`, which is the
// label the TSan CI job executes — the cache is all atomics, so the seqlock
// protocol is checked there by construction, not by sampling.

#include "src/common/concurrent_cache.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ifls {
namespace {

/// The deterministic key -> value function the callers guarantee (a cached
/// door distance is a pure function of the door pair). The stress threads
/// verify every hit against it.
double ValueFor(std::uint64_t key) {
  return static_cast<double>(key % 100003) * 0.5;
}

TEST(ConcurrentDoorCacheTest, InsertThenLookup) {
  ConcurrentDoorCache cache(1024);
  double out = -1.0;
  EXPECT_FALSE(cache.Lookup(7, &out));
  cache.Insert(7, 3.25);
  ASSERT_TRUE(cache.Lookup(7, &out));
  EXPECT_EQ(out, 3.25);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ConcurrentDoorCacheTest, ValueBitsRoundTripExactly) {
  ConcurrentDoorCache cache(256);
  const double values[] = {0.0, -0.0, 1.0 / 3.0, 1e-300, 1e300,
                           std::numeric_limits<double>::infinity()};
  std::uint64_t key = 1;
  for (double v : values) {
    cache.Insert(key, v);
    double out = -1.0;
    ASSERT_TRUE(cache.Lookup(key, &out));
    std::uint64_t want_bits, got_bits;
    std::memcpy(&want_bits, &v, sizeof(want_bits));
    std::memcpy(&got_bits, &out, sizeof(got_bits));
    EXPECT_EQ(want_bits, got_bits);
    ++key;
  }
}

TEST(ConcurrentDoorCacheTest, ClearEmptiesEverySlot) {
  ConcurrentDoorCache cache(512);
  for (std::uint64_t k = 0; k < 200; ++k) cache.Insert(k, ValueFor(k));
  EXPECT_GT(cache.size(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  double out;
  for (std::uint64_t k = 0; k < 200; ++k) EXPECT_FALSE(cache.Lookup(k, &out));
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ConcurrentDoorCacheTest, CapacityRoundsUpAndShardsArePowerOfTwo) {
  ConcurrentDoorCache cache(1000, 3);
  EXPECT_EQ(cache.num_shards(), 4u);
  EXPECT_GE(cache.capacity(), 1000u);
  // Power-of-two slots per shard.
  EXPECT_EQ(cache.capacity() % cache.num_shards(), 0u);
  const std::size_t per_shard = cache.capacity() / cache.num_shards();
  EXPECT_EQ(per_shard & (per_shard - 1), 0u);
  EXPECT_GT(cache.MemoryFootprintBytes(), cache.capacity() * 24);
}

TEST(ConcurrentDoorCacheTest, OverflowEvictsInsteadOfGrowing) {
  // Tiny cache, far more keys than slots: inserts must stay bounded and
  // evict, and every hit must still return the key's own value.
  ConcurrentDoorCache cache(64, 1);
  const std::uint64_t kKeys = 10000;
  for (std::uint64_t k = 0; k < kKeys; ++k) cache.Insert(k, ValueFor(k));
  EXPECT_LE(cache.size(), cache.capacity());
  const auto st = cache.stats();
  EXPECT_GT(st.evictions, 0u);
  std::size_t hits = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    double out;
    if (cache.Lookup(k, &out)) {
      ++hits;
      EXPECT_EQ(out, ValueFor(k));
    }
  }
  EXPECT_GT(hits, 0u);
}

// 16 threads hammer one small cache with a mixed workload: inserts of a
// shared key universe (forcing claim races and evictions), lookups verifying
// the key -> value contract bit-exactly, and periodic clears from one
// designated thread. Any torn read the seqlock failed to suppress shows up
// as a value mismatch; any write-write race as TSan noise in the sanitizer
// job.
TEST(ConcurrentDoorCacheTest, SixteenThreadMixedStress) {
  constexpr int kThreads = 16;
  constexpr int kOpsPerThread = 40000;
  constexpr std::uint64_t kKeyUniverse = 4096;
  ConcurrentDoorCache cache(/*capacity=*/512, /*shards=*/8);
  std::atomic<std::uint64_t> wrong_values{0};
  std::atomic<std::uint64_t> total_hits{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &cache, &wrong_values, &total_hits] {
      // Cheap per-thread xorshift; no shared RNG state.
      std::uint64_t x = 0x9e3779b97f4a7c15ull * (t + 1);
      std::uint64_t hits = 0;
      for (int op = 0; op < kOpsPerThread; ++op) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // Key from the high half: op below uses the low bits, and sharing
        // them would partition the key space between inserters and readers.
        const std::uint64_t key = (x >> 32) % kKeyUniverse;
        switch (x % 4) {
          case 0: {
            cache.Insert(key, ValueFor(key));
            break;
          }
          case 3: {
            if (t == 0 && op % 8192 == 0) {
              cache.Clear();
              break;
            }
            [[fallthrough]];
          }
          default: {
            double out = -1.0;
            if (cache.Lookup(key, &out)) {
              ++hits;
              std::uint64_t want, got;
              const double expect = ValueFor(key);
              std::memcpy(&want, &expect, sizeof(want));
              std::memcpy(&got, &out, sizeof(got));
              if (want != got) {
                wrong_values.fetch_add(1, std::memory_order_relaxed);
              }
            }
            break;
          }
        }
      }
      total_hits.fetch_add(hits, std::memory_order_relaxed);
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(wrong_values.load(), 0u)
      << "a reader observed a value that was not its key's";
  // With a 4096-key universe over a 512-slot cache and 640k ops, hits are
  // statistically certain; zero would mean lookups are broken.
  EXPECT_GT(total_hits.load(), 0u);
  EXPECT_LE(cache.size(), cache.capacity());
}

}  // namespace
}  // namespace ifls
