#include "src/graph/accessibility_model.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/index/graph_oracle.h"
#include "src/index/vip_tree.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

TEST(AccessibilityModelTest, MatchesTheVipTreeExactly) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  AccessibilityModel model(&venue);
  Rng rng(71);
  for (int i = 0; i < 200; ++i) {
    const Client a = RandomClient(venue, &rng, 0);
    const Client b = RandomClient(venue, &rng, 1);
    ASSERT_NEAR(
        model.PointToPoint(a.position, a.partition, b.position, b.partition),
        tree.PointToPoint(a.position, a.partition, b.position, b.partition),
        1e-9);
    const auto target = static_cast<PartitionId>(
        rng.NextBounded(venue.num_partitions()));
    ASSERT_NEAR(model.PointToPartition(a.position, a.partition, target),
                tree.PointToPartition(a.position, a.partition, target),
                1e-9);
  }
}

TEST(AccessibilityModelTest, SamePartitionShortcuts) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  AccessibilityModel model(&venue);
  const Partition& p = venue.partition(0);
  const Point a(p.rect.min_x + 1, p.rect.min_y + 1, p.level());
  const Point b = p.rect.center();
  EXPECT_DOUBLE_EQ(model.PointToPoint(a, 0, b, 0), PlanarDistance(a, b));
  EXPECT_DOUBLE_EQ(model.PointToPartition(a, 0, 0), 0.0);
  EXPECT_EQ(model.num_expansions(), 0u);  // no graph work needed
}

TEST(AccessibilityModelTest, CountsExpansions) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  AccessibilityModel model(&venue);
  Rng rng(72);
  const Client a = RandomClient(venue, &rng, 0);
  const Client b = RandomClient(venue, &rng, 1);
  if (a.partition != b.partition) {
    (void)model.PointToPoint(a.position, a.partition, b.position,
                             b.partition);
    EXPECT_EQ(model.num_expansions(), 1u);
  }
}

}  // namespace
}  // namespace ifls
