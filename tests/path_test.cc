#include "src/index/path.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/index/graph_oracle.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::BuildTinyVenue;
using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::TinyVenue;
using testing_util::Unwrap;

class PathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    venue_ = Unwrap(GenerateVenue(SmallVenueSpec()));
    tree_ = std::make_unique<VipTree>(Unwrap(VipTree::Build(&venue_)));
    reconstructor_ = std::make_unique<PathReconstructor>(tree_.get());
  }

  Venue venue_;
  std::unique_ptr<VipTree> tree_;
  std::unique_ptr<PathReconstructor> reconstructor_;
};

/// Walks the path's waypoints and sums planar legs plus stair costs; must
/// equal the reported distance.
double WalkPath(const Venue& venue, const IndoorPath& path) {
  double total = 0.0;
  Point prev = path.start;
  for (DoorId d : path.doors) {
    const Door& door = venue.door(d);
    total += PlanarDistance(prev, door.position) + door.vertical_cost;
    prev = door.position;
  }
  total += PlanarDistance(prev, path.end);
  // Stair costs are charged once per crossing above, but PointToDoorDistance
  // charges half per side; both conventions add up to vertical_cost per
  // crossed stair door, so the walk matches iDist.
  return total;
}

TEST_F(PathTest, SamePartitionPathIsDirect) {
  const Partition& p = venue_.partition(0);
  const Point a(p.rect.min_x + 0.5, p.rect.min_y + 0.5, p.level());
  const Point b = p.rect.center();
  IndoorPath path = Unwrap(reconstructor_->PointToPoint(a, 0, b, 0));
  EXPECT_TRUE(path.doors.empty());
  EXPECT_DOUBLE_EQ(path.distance, PlanarDistance(a, b));
}

TEST_F(PathTest, PathDistanceMatchesIndexDistance) {
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    const Client a = RandomClient(venue_, &rng, 0);
    const Client b = RandomClient(venue_, &rng, 1);
    IndoorPath path = Unwrap(reconstructor_->PointToPoint(
        a.position, a.partition, b.position, b.partition));
    EXPECT_NEAR(path.distance,
                tree_->PointToPoint(a.position, a.partition, b.position,
                                    b.partition),
                1e-9);
  }
}

TEST_F(PathTest, WalkingTheDoorsReproducesTheDistance) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    const Client a = RandomClient(venue_, &rng, 0);
    const Client b = RandomClient(venue_, &rng, 1);
    IndoorPath path = Unwrap(reconstructor_->PointToPoint(
        a.position, a.partition, b.position, b.partition));
    EXPECT_NEAR(WalkPath(venue_, path), path.distance, 1e-9) << "trial " << i;
  }
}

TEST_F(PathTest, ConsecutiveDoorsShareAPartition) {
  Rng rng(44);
  for (int i = 0; i < 50; ++i) {
    const Client a = RandomClient(venue_, &rng, 0);
    const Client b = RandomClient(venue_, &rng, 1);
    IndoorPath path = Unwrap(reconstructor_->PointToPoint(
        a.position, a.partition, b.position, b.partition));
    if (path.doors.empty()) continue;
    // First door on the start partition, last door on the end partition.
    EXPECT_TRUE(venue_.door(path.doors.front()).Connects(a.partition));
    EXPECT_TRUE(venue_.door(path.doors.back()).Connects(b.partition));
    for (std::size_t j = 1; j < path.doors.size(); ++j) {
      const Door& prev = venue_.door(path.doors[j - 1]);
      const Door& cur = venue_.door(path.doors[j]);
      const bool share =
          prev.Connects(cur.partition_a) || prev.Connects(cur.partition_b);
      EXPECT_TRUE(share) << "hop " << j << " jumps between partitions";
    }
  }
}

TEST_F(PathTest, PointToPartitionEndsAtTargetDoor) {
  Rng rng(45);
  for (int i = 0; i < 50; ++i) {
    const Client a = RandomClient(venue_, &rng, 0);
    const auto target = static_cast<PartitionId>(
        rng.NextBounded(venue_.num_partitions()));
    IndoorPath path = Unwrap(
        reconstructor_->PointToPartition(a.position, a.partition, target));
    EXPECT_NEAR(path.distance,
                tree_->PointToPartition(a.position, a.partition, target),
                1e-9);
    if (a.partition != target) {
      ASSERT_FALSE(path.doors.empty());
      EXPECT_TRUE(venue_.door(path.doors.back()).Connects(target));
    }
  }
}

TEST_F(PathTest, CrossLevelPathUsesStairDoors) {
  TinyVenue t = BuildTinyVenue();
  VipTree tree = Unwrap(VipTree::Build(&t.venue));
  PathReconstructor reconstructor(&tree);
  IndoorPath path = Unwrap(reconstructor.PointToPoint(
      Point(5, 2, 0), t.room_a, Point(7, 6, 1), t.room_d));
  bool crossed_stairs = false;
  for (DoorId d : path.doors) {
    crossed_stairs = crossed_stairs || t.venue.door(d).is_stair_door();
  }
  EXPECT_TRUE(crossed_stairs);
  EXPECT_NEAR(path.distance,
              tree.PointToPoint(Point(5, 2, 0), t.room_a, Point(7, 6, 1),
                                t.room_d),
              1e-9);
}

TEST_F(PathTest, WaypointsAndDescribe) {
  Rng rng(46);
  const Client a = RandomClient(venue_, &rng, 0);
  const Client b = RandomClient(venue_, &rng, 1);
  IndoorPath path = Unwrap(reconstructor_->PointToPoint(
      a.position, a.partition, b.position, b.partition));
  const auto waypoints = PathReconstructor::Waypoints(path, venue_);
  EXPECT_EQ(waypoints.size(), path.doors.size() + 2);
  EXPECT_EQ(waypoints.front(), a.position);
  EXPECT_EQ(waypoints.back(), b.position);
  const std::string description = PathReconstructor::Describe(path, venue_);
  EXPECT_NE(description.find("partition"), std::string::npos);
}

TEST_F(PathTest, InvalidEndpointsRejected) {
  const Point p = venue_.partition(0).rect.center();
  EXPECT_TRUE(reconstructor_->PointToPoint(p, -1, p, 0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(reconstructor_->PointToPoint(Point(-999, -999, 0), 0, p, 0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(reconstructor_
                  ->PointToPartition(p, 0,
                                     static_cast<PartitionId>(
                                         venue_.num_partitions()))
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ifls
