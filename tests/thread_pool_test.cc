// Concurrency primitives behind the batch engine: the fixed thread pool,
// the workspace free-list, and the now-atomic MemoryTracker. The hammer
// tests here are the ones a ThreadSanitizer build (-DIFLS_SANITIZE=thread)
// is expected to run clean.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/memory_tracker.h"
#include "src/common/thread_pool.h"
#include "src/common/workspace_pool.h"

namespace ifls {
namespace {

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, ReportsRequestedThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  ThreadPool inline_pool(0);
  EXPECT_EQ(inline_pool.num_threads(), 1);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(ran.load(), 20 * (round + 1));
  }
}

TEST(ThreadPoolTest, ParallelForVisitsEachIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 5000;
    std::vector<std::atomic<int>> visits(kN);
    pool.ParallelFor(kN, [&visits](std::size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> one{0};
  pool.ParallelFor(1, [&one](std::size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool must not drop queued tasks
  EXPECT_EQ(ran.load(), 50);
}

struct Scratch {
  std::vector<double> buffer;
};

TEST(WorkspacePoolTest, LeaseRecyclesObjects) {
  WorkspacePool<Scratch> pool;
  Scratch* first = nullptr;
  {
    auto lease = pool.Acquire();
    first = lease.get();
    lease->buffer.resize(128, 1.0);
  }
  EXPECT_EQ(pool.idle_count(), 1u);
  {
    auto lease = pool.Acquire();
    EXPECT_EQ(lease.get(), first);          // recycled, not re-made
    EXPECT_EQ(lease->buffer.size(), 128u);  // state survives for reuse
  }
  EXPECT_EQ(pool.total_created(), 1u);
}

TEST(WorkspacePoolTest, ConcurrentLeasesNeverShareAnObject) {
  WorkspacePool<Scratch> pool;
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::atomic<bool> overlap{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &overlap] {
      for (int i = 0; i < kIters; ++i) {
        auto lease = pool.Acquire();
        // Tag the workspace; any interleaved writer would corrupt the tag.
        lease->buffer.assign(16, static_cast<double>(i));
        for (double v : lease->buffer) {
          if (v != static_cast<double>(i)) overlap.store(true);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(overlap.load());
  EXPECT_LE(pool.total_created(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(pool.idle_count(), pool.total_created());
}

TEST(MemoryTrackerConcurrencyTest, EightThreadHammerBalancesToZero) {
  MemoryTracker tracker;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  constexpr std::int64_t kBytes = 64;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracker] {
      for (int i = 0; i < kIters; ++i) {
        tracker.Charge(kBytes);
        tracker.Charge(3 * kBytes);
        tracker.Release(kBytes);
        tracker.Release(3 * kBytes);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every charge was matched by a release: the total must balance to zero
  // no matter how the 8 threads interleaved.
  EXPECT_EQ(tracker.current_bytes(), 0);
  // At least one thread held its 4*kBytes peak; never more than all of them.
  EXPECT_GE(tracker.peak_bytes(), 4 * kBytes);
  EXPECT_LE(tracker.peak_bytes(), kThreads * 4 * kBytes);
}

TEST(MemoryTrackerConcurrencyTest, ThreadLocalScopesStayIndependent) {
  // Each thread installs its own tracker; the thread-local active-tracker
  // pointer must keep attributions separate even though allocations race.
  constexpr int kThreads = 8;
  std::vector<std::int64_t> peaks(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &peaks] {
      MemoryTracker local;
      ScopedMemoryTracking scope(&local);
      {
        std::vector<double, TrackingAllocator<double>> v;
        v.resize(static_cast<std::size_t>(t + 1) * 1000);
      }
      EXPECT_EQ(local.current_bytes(), 0);
      peaks[t] = local.peak_bytes();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    const auto expected =
        static_cast<std::int64_t>((t + 1) * 1000 * sizeof(double));
    EXPECT_GE(peaks[t], expected) << "thread " << t;
  }
}

}  // namespace
}  // namespace ifls
