#include "src/datasets/trajectory_generator.h"

#include <gtest/gtest.h>

#include <memory>

#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

class TrajectoryEnv {
 public:
  static TrajectoryEnv& Get() {
    static TrajectoryEnv* env = new TrajectoryEnv();
    return *env;
  }
  const Venue& venue() const { return venue_; }
  const VipTree& tree() const { return *tree_; }

 private:
  TrajectoryEnv() {
    venue_ = Unwrap(GenerateVenue(SmallVenueSpec()));
    tree_ = std::make_unique<VipTree>(Unwrap(VipTree::Build(&venue_)));
  }
  Venue venue_;
  std::unique_ptr<VipTree> tree_;
};

TEST(TrajectoryTest, ShapesAndCounts) {
  TrajectoryEnv& env = TrajectoryEnv::Get();
  TrajectoryOptions options;
  options.ticks = 30;
  Rng rng(1);
  const auto trajectories =
      Unwrap(GenerateTrajectories(env.tree(), 7, options, &rng));
  ASSERT_EQ(trajectories.size(), 7u);
  for (const Trajectory& t : trajectories) {
    EXPECT_EQ(t.size(), 30u);
  }
}

TEST(TrajectoryTest, EverySampleIsInsideItsPartition) {
  TrajectoryEnv& env = TrajectoryEnv::Get();
  TrajectoryOptions options;
  options.ticks = 50;
  Rng rng(2);
  const auto trajectories =
      Unwrap(GenerateTrajectories(env.tree(), 10, options, &rng));
  for (const Trajectory& t : trajectories) {
    for (const TrajectoryPoint& p : t) {
      ASSERT_NE(p.partition, kInvalidPartition);
      const Partition& part = env.venue().partition(p.partition);
      EXPECT_TRUE(part.rect.Contains(p.position))
          << p.position.ToString() << " vs " << part.rect.ToString();
    }
  }
}

TEST(TrajectoryTest, StepLengthsRespectWalkingSpeed) {
  TrajectoryEnv& env = TrajectoryEnv::Get();
  TrajectoryOptions options;
  options.ticks = 40;
  options.speed_mps = 1.5;
  options.tick_seconds = 2.0;
  options.max_pause_ticks = 0;
  Rng rng(3);
  const auto trajectories =
      Unwrap(GenerateTrajectories(env.tree(), 6, options, &rng));
  const double max_step = options.speed_mps * options.tick_seconds;
  for (const Trajectory& t : trajectories) {
    for (std::size_t i = 1; i < t.size(); ++i) {
      if (t[i].position.level != t[i - 1].position.level) continue;
      // Planar movement per tick never exceeds the walking budget (stair
      // dwells and arrivals can make it shorter).
      EXPECT_LE(PlanarDistance(t[i - 1].position, t[i].position),
                max_step + 1e-9);
    }
  }
}

TEST(TrajectoryTest, AgentsActuallyMoveAndChangeLevels) {
  TrajectoryEnv& env = TrajectoryEnv::Get();
  TrajectoryOptions options;
  options.ticks = 200;
  options.speed_mps = 3.0;
  Rng rng(4);
  const auto trajectories =
      Unwrap(GenerateTrajectories(env.tree(), 8, options, &rng));
  double total_movement = 0.0;
  bool level_changed = false;
  for (const Trajectory& t : trajectories) {
    for (std::size_t i = 1; i < t.size(); ++i) {
      if (t[i].position.level == t[i - 1].position.level) {
        total_movement += PlanarDistance(t[i - 1].position, t[i].position);
      } else {
        level_changed = true;
      }
    }
  }
  EXPECT_GT(total_movement, 100.0);
  // The small venue has two levels; with 1600 samples someone takes stairs.
  EXPECT_TRUE(level_changed);
}

TEST(TrajectoryTest, DeterministicPerSeed) {
  TrajectoryEnv& env = TrajectoryEnv::Get();
  TrajectoryOptions options;
  options.ticks = 25;
  Rng rng_a(5), rng_b(5);
  const auto a = Unwrap(GenerateTrajectories(env.tree(), 4, options, &rng_a));
  const auto b = Unwrap(GenerateTrajectories(env.tree(), 4, options, &rng_b));
  for (std::size_t agent = 0; agent < a.size(); ++agent) {
    for (std::size_t i = 0; i < a[agent].size(); ++i) {
      EXPECT_EQ(a[agent][i].position, b[agent][i].position);
      EXPECT_EQ(a[agent][i].partition, b[agent][i].partition);
    }
  }
}

TEST(TrajectoryTest, RejectsBadOptions) {
  TrajectoryEnv& env = TrajectoryEnv::Get();
  Rng rng(6);
  TrajectoryOptions bad;
  bad.speed_mps = 0;
  EXPECT_TRUE(GenerateTrajectories(env.tree(), 1, bad, &rng)
                  .status()
                  .IsInvalidArgument());
  bad = TrajectoryOptions();
  bad.ticks = 0;
  EXPECT_TRUE(GenerateTrajectories(env.tree(), 1, bad, &rng)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ifls
