#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/core/brute_force.h"
#include "src/core/efficient.h"
#include "src/core/minmax_baseline.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

constexpr double kTol = 1e-7;

/// Shared venue + tree across the whole file (index construction is the
/// expensive part).
class SolverEnv {
 public:
  static SolverEnv& Get() {
    static SolverEnv* env = new SolverEnv();
    return *env;
  }

  const Venue& venue() const { return venue_; }
  const VipTree& tree() const { return *tree_; }

 private:
  SolverEnv() {
    venue_ = Unwrap(GenerateVenue(SmallVenueSpec()));
    tree_ = std::make_unique<VipTree>(Unwrap(VipTree::Build(&venue_)));
  }
  Venue venue_;
  std::unique_ptr<VipTree> tree_;
};

/// Draws a random context on the shared venue.
IflsContext RandomContext(std::uint64_t seed, std::size_t num_existing,
                          std::size_t num_candidates,
                          std::size_t num_clients) {
  SolverEnv& env = SolverEnv::Get();
  Rng rng(seed);
  IflsContext ctx;
  ctx.oracle = &env.tree();
  FacilitySets sets = Unwrap(SelectUniformFacilities(
      env.venue(), num_existing, num_candidates, &rng));
  ctx.existing = std::move(sets.existing);
  ctx.candidates = std::move(sets.candidates);
  ctx.clients.reserve(num_clients);
  for (std::size_t i = 0; i < num_clients; ++i) {
    ctx.clients.push_back(
        RandomClient(env.venue(), &rng, static_cast<ClientId>(i)));
  }
  return ctx;
}

/// Certifies a solver result against the brute-force optimum: a returned
/// answer must achieve the optimal objective (re-evaluated exactly); a
/// no-answer must mean no candidate improves the no-facility objective.
void Certify(const IflsContext& ctx, const IflsResult& result,
             const IflsResult& brute, const char* which) {
  if (result.found) {
    ASSERT_NE(result.answer, kInvalidPartition) << which;
    const double achieved = EvaluateMinMax(ctx, result.answer);
    ASSERT_TRUE(brute.found) << which << ": answer exists but oracle found "
                                          "no candidates";
    EXPECT_NEAR(achieved, brute.objective,
                kTol * std::max(1.0, brute.objective))
        << which << " returned a non-optimal candidate";
    // The reported objective is an upper bound no smaller than the truth
    // and never above the no-new-facility objective.
    EXPECT_GE(result.objective + kTol, achieved) << which;
    EXPECT_LE(result.objective,
              NoFacilityMinMax(ctx) + kTol) << which;
  } else if (brute.found) {
    // Declining to answer is only sound when nothing improves the
    // objective.
    const double f0 = NoFacilityMinMax(ctx);
    EXPECT_NEAR(brute.objective, f0, kTol * std::max(1.0, f0))
        << which << " found no answer but an improving candidate exists";
  }
}

struct TrialParam {
  std::uint64_t seed;
  std::size_t existing;
  std::size_t candidates;
  std::size_t clients;
};

class SolverAgreementTest : public ::testing::TestWithParam<TrialParam> {};

TEST_P(SolverAgreementTest, AllSolversAchieveTheOptimum) {
  const TrialParam p = GetParam();
  const IflsContext ctx =
      RandomContext(p.seed, p.existing, p.candidates, p.clients);
  const IflsResult brute = Unwrap(SolveBruteForceMinMax(ctx));
  const IflsResult baseline = Unwrap(SolveModifiedMinMax(ctx));
  const IflsResult efficient = Unwrap(SolveEfficient(ctx));
  Certify(ctx, baseline, brute, "baseline");
  Certify(ctx, efficient, brute, "efficient");
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrials, SolverAgreementTest,
    ::testing::Values(
        TrialParam{101, 3, 6, 30}, TrialParam{102, 5, 10, 50},
        TrialParam{103, 8, 12, 80}, TrialParam{104, 2, 4, 20},
        TrialParam{105, 6, 9, 40}, TrialParam{106, 4, 15, 60},
        TrialParam{107, 10, 5, 25}, TrialParam{108, 1, 20, 70},
        TrialParam{109, 12, 3, 35}, TrialParam{110, 7, 7, 45},
        TrialParam{111, 3, 18, 55}, TrialParam{112, 9, 11, 65},
        TrialParam{113, 1, 1, 10}, TrialParam{114, 15, 15, 90},
        TrialParam{115, 5, 5, 100}, TrialParam{116, 2, 12, 15}));

class EfficientVariantTest : public ::testing::TestWithParam<TrialParam> {};

TEST_P(EfficientVariantTest, AblationVariantsStayOptimal) {
  const TrialParam p = GetParam();
  const IflsContext ctx =
      RandomContext(p.seed, p.existing, p.candidates, p.clients);
  const IflsResult brute = Unwrap(SolveBruteForceMinMax(ctx));

  for (int mask = 0; mask < 16; ++mask) {
    EfficientOptions options;
    options.group_clients = (mask & 1) == 0;
    options.prune_clients = (mask & 2) == 0;
    options.skip_empty_subtrees = (mask & 4) == 0;
    options.reuse_group_distances = (mask & 8) == 0;
    const IflsResult result = Unwrap(SolveEfficient(ctx, options));
    SCOPED_TRACE("options mask " + std::to_string(mask));
    Certify(ctx, result, brute, "efficient-variant");
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrials, EfficientVariantTest,
                         ::testing::Values(TrialParam{201, 4, 8, 40},
                                           TrialParam{202, 6, 10, 60},
                                           TrialParam{203, 2, 5, 25}));

TEST(EfficientOnIpTreeTest, IpTreeIndexGivesSameAnswers) {
  SolverEnv& env = SolverEnv::Get();
  VipTreeOptions ip_options;
  ip_options.build_leaf_to_ancestor = false;
  VipTree ip_tree = Unwrap(VipTree::Build(&env.venue(), ip_options));
  for (std::uint64_t seed : {301u, 302u, 303u}) {
    IflsContext ctx = RandomContext(seed, 5, 8, 40);
    const IflsResult brute = Unwrap(SolveBruteForceMinMax(ctx));
    ctx.oracle = &ip_tree;
    const IflsResult result = Unwrap(SolveEfficient(ctx));
    Certify(ctx, result, brute, "efficient-on-ip-tree");
  }
}

// ------------------------------------------------------- Degenerate inputs

TEST(SolverDegenerateTest, EmptyCandidates) {
  IflsContext ctx = RandomContext(401, 4, 5, 20);
  ctx.candidates.clear();
  EXPECT_FALSE(Unwrap(SolveBruteForceMinMax(ctx)).found);
  EXPECT_FALSE(Unwrap(SolveModifiedMinMax(ctx)).found);
  EXPECT_FALSE(Unwrap(SolveEfficient(ctx)).found);
}

TEST(SolverDegenerateTest, EmptyClients) {
  IflsContext ctx = RandomContext(402, 4, 5, 20);
  ctx.clients.clear();
  const IflsResult brute = Unwrap(SolveBruteForceMinMax(ctx));
  EXPECT_TRUE(brute.found);
  EXPECT_DOUBLE_EQ(brute.objective, 0.0);
  const IflsResult baseline = Unwrap(SolveModifiedMinMax(ctx));
  EXPECT_TRUE(baseline.found);
  EXPECT_DOUBLE_EQ(baseline.objective, 0.0);
  // The efficient approach reports "no answer" for an empty client set
  // (paper: empty C means no client constrains the answer); every candidate
  // ties at objective 0, consistent with the oracle.
  const IflsResult efficient = Unwrap(SolveEfficient(ctx));
  if (efficient.found) {
    EXPECT_DOUBLE_EQ(EvaluateMinMax(ctx, efficient.answer), 0.0);
  }
}

TEST(SolverDegenerateTest, EmptyExistingFacilities) {
  IflsContext ctx = RandomContext(403, 4, 6, 30);
  ctx.existing.clear();
  const IflsResult brute = Unwrap(SolveBruteForceMinMax(ctx));
  const IflsResult baseline = Unwrap(SolveModifiedMinMax(ctx));
  const IflsResult efficient = Unwrap(SolveEfficient(ctx));
  ASSERT_TRUE(brute.found);
  Certify(ctx, baseline, brute, "baseline");
  Certify(ctx, efficient, brute, "efficient");
}

TEST(SolverDegenerateTest, AllClientsInsideExistingFacilities) {
  SolverEnv& env = SolverEnv::Get();
  IflsContext ctx = RandomContext(404, 4, 6, 0);
  // Place every client inside an existing facility: everyone is pruned at
  // distance zero and no candidate can improve anything.
  for (std::size_t i = 0; i < 10; ++i) {
    Client c;
    c.id = static_cast<ClientId>(i);
    c.partition = ctx.existing[i % ctx.existing.size()];
    c.position = env.venue().partition(c.partition).rect.center();
    ctx.clients.push_back(c);
  }
  const IflsResult efficient = Unwrap(SolveEfficient(ctx));
  EXPECT_FALSE(efficient.found);
  EXPECT_DOUBLE_EQ(efficient.objective, 0.0);
  EXPECT_EQ(efficient.stats.clients_pruned, 10);
}

TEST(SolverDegenerateTest, ClientInsideCandidateGetsZeroObjective) {
  SolverEnv& env = SolverEnv::Get();
  IflsContext ctx = RandomContext(405, 3, 5, 0);
  Client c;
  c.id = 0;
  c.partition = ctx.candidates.front();
  c.position = env.venue().partition(c.partition).rect.center();
  ctx.clients.push_back(c);
  const IflsResult efficient = Unwrap(SolveEfficient(ctx));
  ASSERT_TRUE(efficient.found);
  EXPECT_EQ(efficient.answer, ctx.candidates.front());
  EXPECT_DOUBLE_EQ(efficient.objective, 0.0);
}

TEST(SolverDegenerateTest, InvalidContextsAreRejected) {
  IflsContext ctx = RandomContext(406, 3, 5, 10);
  IflsContext bad = ctx;
  bad.existing.push_back(bad.candidates.front());  // overlap
  EXPECT_TRUE(SolveEfficient(bad).status().IsInvalidArgument());
  EXPECT_TRUE(SolveModifiedMinMax(bad).status().IsInvalidArgument());
  EXPECT_TRUE(SolveBruteForceMinMax(bad).status().IsInvalidArgument());

  bad = ctx;
  bad.existing.push_back(bad.existing.front());  // duplicate
  EXPECT_TRUE(SolveEfficient(bad).status().IsInvalidArgument());

  bad = ctx;
  bad.clients.front().position = Point(-1e6, -1e6, 0);  // outside partition
  EXPECT_TRUE(SolveEfficient(bad).status().IsInvalidArgument());

  bad = ctx;
  bad.oracle = nullptr;
  EXPECT_TRUE(SolveEfficient(bad).status().IsInvalidArgument());
}

// ----------------------------------------------------------------- Stats

TEST(SolverStatsTest, EfficientPrunesClientsAndTracksWork) {
  const IflsContext ctx = RandomContext(501, 8, 10, 100);
  const IflsResult result = Unwrap(SolveEfficient(ctx));
  const QueryStats& s = result.stats;
  EXPECT_GT(s.queue_pushes, 0);
  EXPECT_GT(s.queue_pops, 0);
  EXPECT_GT(s.facilities_retrieved, 0);
  EXPECT_GT(s.distance_computations, 0);
  EXPECT_GT(s.lower_bound_computations, 0);
  EXPECT_GT(s.clients_pruned, 0);
  EXPECT_GT(s.peak_memory_bytes, 0);
  EXPECT_GT(s.door_distance_evals, 0u);
  EXPECT_GE(s.elapsed_seconds, 0.0);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(SolverStatsTest, BaselineCountsNnSearches) {
  const IflsContext ctx = RandomContext(502, 5, 8, 60);
  const IflsResult result = Unwrap(SolveModifiedMinMax(ctx));
  EXPECT_EQ(result.stats.nn_searches,
            static_cast<std::int64_t>(ctx.clients.size()));
  EXPECT_GT(result.stats.peak_memory_bytes, 0);
}

TEST(SolverStatsTest, PruningReducesDistanceComputations) {
  const IflsContext ctx = RandomContext(503, 10, 10, 150);
  EfficientOptions with;
  EfficientOptions without;
  without.prune_clients = false;
  const IflsResult pruned = Unwrap(SolveEfficient(ctx, with));
  const IflsResult unpruned = Unwrap(SolveEfficient(ctx, without));
  EXPECT_LE(pruned.stats.distance_computations,
            unpruned.stats.distance_computations);
}

TEST(SolverStatsTest, OfflineIndexReuseMatchesOwnedIndex) {
  const IflsContext ctx = RandomContext(504, 5, 8, 40);
  FacilityIndex offline(ctx.oracle, ctx.existing);
  MinMaxBaselineOptions options;
  options.offline_existing_index = &offline;
  const IflsResult with_offline = Unwrap(SolveModifiedMinMax(ctx, options));
  const IflsResult owned = Unwrap(SolveModifiedMinMax(ctx));
  EXPECT_EQ(with_offline.found, owned.found);
  if (owned.found) {
    EXPECT_NEAR(EvaluateMinMax(ctx, with_offline.answer),
                EvaluateMinMax(ctx, owned.answer), kTol);
  }
}

}  // namespace
}  // namespace ifls
