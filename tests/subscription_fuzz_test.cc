// Randomized invalidation fuzz harness for streaming iterators and standing
// subscriptions (DESIGN.md §11). Many threads interleave facility mutations,
// trajectory ticks, snapshot compactions and iterator pagination against one
// service; the harness then proves that every answer the service ever
// delivered — each subscription push and each drained iterator — is
// bit-identical to a from-scratch SolveEfficient at the exact (version,
// ticks) it claims:
//
//   * mutators log (version -> mutation) for every accepted Mutate, so any
//     version's facility sets can be recomposed as boot sets + a prefix of
//     the log;
//   * each subscription is owned by one tick thread, whose accepted-move log
//     makes push.ticks_applied a prefix length into the client history;
//   * pagers check in-flight: an open iterator's drained pages must equal
//     the one-shot full ranking over the iterator's own pinned state.
//
// Carries its own main() so `--iterations=<n|high>` can scale the run (the
// `high` row is the nightly ctest configuration), and exports the span
// recorder to subscription_fuzz.trace.json when a run fails with tracing on.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/trace.h"
#include "src/core/solve_dispatch.h"
#include "src/service/service.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

// Total interleaved operations across all threads; overridden by
// --iterations. The default already exceeds the 10k-step floor the harness
// promises.
int g_total_steps = 12000;

struct MutationLog {
  std::mutex mu;
  std::vector<std::pair<std::uint64_t, Mutation>> entries;

  void Append(std::uint64_t version, const Mutation& m) {
    std::lock_guard<std::mutex> lock(mu);
    entries.emplace_back(version, m);
  }
};

struct TickRecord {
  ClientId client = 0;
  Point position;
  PartitionId partition = kInvalidPartition;
};

/// One standing query under fuzz: the live handle, its boot crowd, the
/// owner-thread move log and the delivered pushes.
struct SubHarness {
  std::shared_ptr<Subscription> sub;
  std::vector<Client> boot_clients;  // ids 0..n-1, registration order
  std::vector<TickRecord> ticks;     // accepted moves, owner thread only

  std::mutex push_mu;
  std::vector<SubscriptionPush> pushes;

  SubscriptionCallback Callback() {
    return [this](const SubscriptionPush& push) {
      std::lock_guard<std::mutex> lock(push_mu);
      pushes.push_back(push);
    };
  }
};

/// Composes the facility sets at `version`: boot sets plus the sorted
/// mutation-log prefix. The log must hold contiguous versions 1..N.
struct SetComposer {
  std::vector<PartitionId> boot_existing;
  std::vector<PartitionId> boot_candidates;
  std::vector<Mutation> by_version;  // by_version[v-1] produced version v

  void Compose(std::uint64_t version, std::vector<PartitionId>* existing,
               std::vector<PartitionId>* candidates) const {
    *existing = boot_existing;
    *candidates = boot_candidates;
    for (std::uint64_t v = 0; v < version; ++v) {
      const Mutation& m = by_version[v];
      auto insert = [](std::vector<PartitionId>* s, PartitionId p) {
        s->insert(std::upper_bound(s->begin(), s->end(), p), p);
      };
      auto erase = [](std::vector<PartitionId>* s, PartitionId p) {
        s->erase(std::find(s->begin(), s->end(), p));
      };
      switch (m.kind) {
        case MutationKind::kAddFacility:
          insert(existing, m.partition);
          break;
        case MutationKind::kRemoveFacility:
          erase(existing, m.partition);
          break;
        case MutationKind::kAddCandidate:
          insert(candidates, m.partition);
          break;
        case MutationKind::kRemoveCandidate:
          erase(candidates, m.partition);
          break;
      }
    }
  }
};

TEST(SubscriptionFuzzTest, PushedAndPagedAnswersMatchFromScratchSolves) {
  Rng boot_rng(2023);
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  const std::size_t num_partitions = venue.num_partitions();
  const FacilitySets boot_sets =
      Unwrap(SelectUniformFacilities(venue, 3, 8, &boot_rng));

  ServiceOptions options;
  options.num_workers = 2;           // pumps run on workers, concurrently
  options.compaction_threshold = 0;  // compaction points are fuzz actions
  std::unique_ptr<IflsService> service = Unwrap(IflsService::Create(
      std::move(venue), boot_sets.existing, boot_sets.candidates, options));

  SetComposer composer;
  composer.boot_existing = boot_sets.existing;
  composer.boot_candidates = boot_sets.candidates;
  std::sort(composer.boot_existing.begin(), composer.boot_existing.end());
  std::sort(composer.boot_candidates.begin(), composer.boot_candidates.end());

  // Pin the boot state for the whole run: the venue reference the threads
  // generate positions from, and the oracle every replay solves against
  // (snapshots share the tree, so distances are identical at any epoch).
  const auto boot_state = service->AcquireState();
  const Venue& boot_venue = boot_state->snapshot->venue();
  const EfficientOptions solver = service->options().solvers.minmax;

  constexpr int kTickOwners = 4;
  constexpr int kSubsPerOwner = 2;
  constexpr int kMutators = 2;
  constexpr int kPagers = 2;
  constexpr std::size_t kClientsPerSub = 3;

  std::vector<std::unique_ptr<SubHarness>> subs;
  for (int i = 0; i < kTickOwners * kSubsPerOwner; ++i) {
    auto harness = std::make_unique<SubHarness>();
    for (std::size_t c = 0; c < kClientsPerSub; ++c) {
      harness->boot_clients.push_back(
          RandomClient(boot_venue, &boot_rng, static_cast<ClientId>(c)));
    }
    harness->sub = Unwrap(service->Subscribe(
        harness->boot_clients, SubscriptionOptions{}, harness->Callback()));
    subs.push_back(std::move(harness));
  }

  MutationLog mutation_log;
  std::atomic<std::uint64_t> accepted_mutations{0};
  std::atomic<std::uint64_t> accepted_ticks{0};

  // Fixed per-thread step quotas (summing to g_total_steps) instead of one
  // shared budget: thread speeds differ wildly — ticks are cheap, mutations
  // serialize behind the writer lock — and a shared pool lets the fast
  // roles starve the slow ones of their coverage.
  const int steps_per_thread =
      std::max(1, g_total_steps / (kMutators + kTickOwners + kPagers));
  std::atomic<int> fuzzers_running{kMutators + kTickOwners + kPagers};
  // Decrements on every exit path — gtest ASSERTs return early, and the
  // compactor must not keep spinning after a failed thread bails out.
  struct RunningGuard {
    std::atomic<int>* count;
    ~RunningGuard() { count->fetch_sub(1); }
  };

  std::vector<std::thread> threads;

  // Mutators: random facility mutations, logging (version -> mutation) for
  // every accepted one.
  for (int t = 0; t < kMutators; ++t) {
    threads.emplace_back([&, t] {
      RunningGuard guard{&fuzzers_running};
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (int step = 0; step < steps_per_thread; ++step) {
        Mutation m;
        m.kind = static_cast<MutationKind>(rng.NextBounded(4));
        m.partition = static_cast<PartitionId>(rng.NextBounded(num_partitions));
        std::uint64_t version = 0;
        if (service->Mutate(m, &version).ok()) {
          mutation_log.Append(version, m);
          accepted_mutations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Tick owners: each drives the trajectories of its own subscriptions, so
  // per-subscription move logs need no synchronization.
  for (int t = 0; t < kTickOwners; ++t) {
    threads.emplace_back([&, t] {
      RunningGuard guard{&fuzzers_running};
      Rng rng(2000 + static_cast<std::uint64_t>(t));
      for (int step = 0; step < steps_per_thread; ++step) {
        SubHarness& h =
            *subs[static_cast<std::size_t>(t) * kSubsPerOwner +
                  rng.NextBounded(kSubsPerOwner)];
        const std::size_t idx = rng.NextBounded(h.boot_clients.size());
        const ClientId id = static_cast<ClientId>(idx);
        const Client moved = RandomClient(boot_venue, &rng, id);
        const Status ticked = service->TickSubscription(
            h.sub->id(), id, moved.position, moved.partition);
        ASSERT_TRUE(ticked.ok()) << ticked.ToString();
        h.ticks.push_back({id, moved.position, moved.partition});
        accepted_ticks.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Compactor: folds the overlay under everything else, for as long as any
  // fuzzing thread is still running.
  threads.emplace_back([&] {
    while (fuzzers_running.load(std::memory_order_relaxed) > 0) {
      ASSERT_TRUE(service->CompactNow().ok());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Pagers: open an iterator at whatever state is current, drain it with
  // random page sizes, and demand the concatenation equal the one-shot full
  // ranking over the iterator's own pinned state.
  for (int t = 0; t < kPagers; ++t) {
    threads.emplace_back([&, t] {
      RunningGuard guard{&fuzzers_running};
      Rng rng(3000 + static_cast<std::uint64_t>(t));
      for (int step = 0; step < steps_per_thread; ++step) {
        std::vector<Client> crowd;
        const std::size_t n = 1 + rng.NextBounded(4);
        for (std::size_t i = 0; i < n; ++i) {
          crowd.push_back(
              RandomClient(boot_venue, &rng, static_cast<ClientId>(i)));
        }
        ServiceRequest request;
        request.clients = crowd;
        auto opened = service->OpenIterator(std::move(request));
        ASSERT_TRUE(opened.ok()) << opened.status().ToString();
        std::unique_ptr<ResultIterator> it = std::move(*opened);

        IflsContext ctx;
        ctx.oracle = &it->state()->oracle();
        ctx.existing = it->state()->overlay.effective_existing();
        ctx.candidates = it->state()->overlay.effective_candidates();
        ctx.clients = crowd;
        EfficientOptions ranked = solver;
        ranked.top_k = static_cast<int>(
            std::max<std::size_t>(1, ctx.candidates.size()));
        const auto reference = SolveEfficient(ctx, ranked);
        ASSERT_TRUE(reference.ok()) << reference.status().ToString();

        std::vector<std::pair<PartitionId, double>> paged;
        while (!it->exhausted()) {
          const ResultIterator::Page page = it->Next(1 + rng.NextBounded(5));
          paged.insert(paged.end(), page.items.begin(), page.items.end());
        }
        ASSERT_EQ(paged, reference->ranked)
            << "iterator at version " << it->version() << " diverged";
      }
    });
  }

  ASSERT_GE(static_cast<int>(threads.size()), 8);
  for (std::thread& t : threads) t.join();
  service->Drain();  // fold + deliver everything still queued

  // --- Replay ---------------------------------------------------------------
  // The mutation log, sorted by version, must be exactly 1..N.
  {
    std::lock_guard<std::mutex> lock(mutation_log.mu);
    std::sort(mutation_log.entries.begin(), mutation_log.entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    ASSERT_EQ(mutation_log.entries.size(),
              accepted_mutations.load(std::memory_order_relaxed));
    for (std::size_t i = 0; i < mutation_log.entries.size(); ++i) {
      ASSERT_EQ(mutation_log.entries[i].first, i + 1) << "version gap";
      composer.by_version.push_back(mutation_log.entries[i].second);
    }
  }

  // Every push every subscription ever delivered must be bit-identical to a
  // from-scratch solve at its claimed (version, ticks_applied).
  std::size_t replayed = 0;
  for (const std::unique_ptr<SubHarness>& h : subs) {
    std::vector<SubscriptionPush> pushes;
    {
      std::lock_guard<std::mutex> lock(h->push_mu);
      pushes = h->pushes;
    }
    ASSERT_FALSE(pushes.empty());  // at least the initial answer
    EXPECT_EQ(pushes.front().sequence, 0u);
    std::uint64_t last_sequence = 0;
    for (const SubscriptionPush& push : pushes) {
      SCOPED_TRACE(::testing::Message()
                   << "sub " << h->sub->id() << " push seq " << push.sequence
                   << " version " << push.version << " ticks "
                   << push.ticks_applied);
      if (push.sequence != 0) {
        EXPECT_EQ(push.sequence, last_sequence + 1);  // no lost pushes
        last_sequence = push.sequence;
      }
      ASSERT_LE(push.ticks_applied, h->ticks.size());

      IflsContext ctx;
      ctx.oracle = &boot_state->oracle();
      composer.Compose(push.version, &ctx.existing, &ctx.candidates);
      std::vector<Client> crowd = h->boot_clients;
      for (std::uint64_t i = 0; i < push.ticks_applied; ++i) {
        const TickRecord& tick = h->ticks[i];
        crowd[static_cast<std::size_t>(tick.client)].position = tick.position;
        crowd[static_cast<std::size_t>(tick.client)].partition =
            tick.partition;
      }
      ctx.clients = crowd;
      const auto fresh = SolveEfficient(ctx, solver);
      ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
      EXPECT_EQ(push.result.found, fresh->found);
      EXPECT_EQ(push.result.answer, fresh->answer);
      EXPECT_EQ(push.result.objective, fresh->objective);  // bit-identical
      ++replayed;
    }
  }

  // Accounting: every accepted mutation fanned out to every subscription,
  // every accepted tick to exactly one, and all of it was folded.
  const ServiceMetrics metrics = service->Metrics();
  EXPECT_EQ(metrics.subscription_events,
            accepted_mutations.load() * subs.size() + accepted_ticks.load());
  EXPECT_EQ(metrics.subscription_pushes, static_cast<std::uint64_t>(replayed));
  EXPECT_GT(metrics.subscription_skips, 0u);  // the bound did elide work
  std::printf(
      "fuzz: %d steps, %llu mutations, %llu ticks, %llu compaction epochs, "
      "%zu pushes replayed, %llu solves, %llu skips\n",
      g_total_steps, static_cast<unsigned long long>(accepted_mutations.load()),
      static_cast<unsigned long long>(accepted_ticks.load()),
      static_cast<unsigned long long>(service->snapshot_epoch()), replayed,
      static_cast<unsigned long long>(metrics.subscription_solves),
      static_cast<unsigned long long>(metrics.subscription_skips));

  for (const std::unique_ptr<SubHarness>& h : subs) {
    EXPECT_TRUE(service->Unsubscribe(h->sub->id()).ok());
  }
}

}  // namespace
}  // namespace ifls

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--iterations=", 13) != 0) continue;
    const std::string value = arg + 13;
    if (value == "high") {
      ifls::g_total_steps = 120000;  // nightly configuration
    } else {
      ifls::g_total_steps = std::max(1, std::atoi(value.c_str()));
    }
  }
  const int result = RUN_ALL_TESTS();
  if (result != 0 && ifls::TraceEnabled()) {
    const char* path = "subscription_fuzz.trace.json";
    const ifls::Status exported =
        ifls::TraceRecorder::Global().ExportChromeTraceToFile(path);
    std::fprintf(stderr, "trace export to %s: %s\n", path,
                 exported.ToString().c_str());
  }
  return result;
}
