// Integration coverage of the wire server + client (DESIGN.md §13): every
// networked answer must be bit-identical to the in-process service, with
// both batching configs; backpressure travels as typed kUnavailable error
// frames (never dropped connections); mutations, standing subscriptions,
// metrics/trace pulls and corrupt-stream teardown all ride the same loop;
// and a thousand concurrent loopback connections verify differentially via
// the load generator. The PR 10 additions (DESIGN.md §15) are covered here
// too: the HTTP admin plane sharing the binary port (valid scrapes, 400 on
// malformed requests, interleaving with binary traffic under TSan), pong
// timestamps feeding the clock-offset estimate, and wire trace-context
// propagation honoring the caller's sampling verdict server-side.

#include <gtest/gtest.h>

#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/trace.h"
#include "src/core/solve_dispatch.h"
#include "src/datasets/client_generator.h"
#include "src/datasets/facility_selector.h"
#include "src/datasets/venue_generator.h"
#include "src/net/client.h"
#include "src/net/load_gen.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/service/fleet_store.h"
#include "src/service/service.h"
#include "src/service/venue_router.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::BuildTinyVenue;
using testing_util::RandomClient;
using testing_util::TinyVenue;
using testing_util::Unwrap;

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::vector<Client> SomeClients(const Venue& venue, std::size_t n,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Client> clients;
  for (std::size_t i = 0; i < n; ++i) {
    clients.push_back(RandomClient(venue, &rng, static_cast<ClientId>(i)));
  }
  return clients;
}

std::shared_ptr<IflsService> MakeTinyService(ServiceOptions options = {}) {
  TinyVenue tiny = BuildTinyVenue();
  return std::shared_ptr<IflsService>(Unwrap(IflsService::Create(
      std::move(tiny.venue), {tiny.room_a}, {tiny.room_b, tiny.room_c},
      options)));
}

// ------------------------------------------------- queries, both configs

TEST(NetServerTest, QueryBitIdenticalToInProcessBothBatchingModes) {
  for (bool coalesce : {true, false}) {
    std::shared_ptr<IflsService> service = MakeTinyService();
    const std::vector<Client> clients =
        SomeClients(service->AcquireState()->snapshot->venue(), 6, 11);

    // In-process ground truth, one per objective.
    std::vector<ServiceReply> expected;
    for (IflsObjective objective :
         {IflsObjective::kMinMax, IflsObjective::kMinDist,
          IflsObjective::kMaxSum}) {
      ServiceRequest request;
      request.objective = objective;
      request.clients = clients;
      expected.push_back(service->Query(std::move(request)));
      ASSERT_TRUE(expected.back().status.ok());
    }

    ServerOptions server_options;
    server_options.coalesce_batches = coalesce;
    std::unique_ptr<IflsServer> server =
        Unwrap(IflsServer::Create(service, server_options));
    std::unique_ptr<IflsClient> client =
        Unwrap(IflsClient::Connect(server->port()));

    int idx = 0;
    for (IflsObjective objective :
         {IflsObjective::kMinMax, IflsObjective::kMinDist,
          IflsObjective::kMaxSum}) {
      WireQueryRequest request;
      request.clients = clients;
      const WireQueryResponse response =
          Unwrap(client->Query(objective, request));
      EXPECT_EQ(response.found, expected[idx].result.found);
      EXPECT_EQ(response.answer, expected[idx].result.answer);
      EXPECT_TRUE(
          BitEqual(response.objective, expected[idx].result.objective))
          << "objective " << idx << " coalesce=" << coalesce;
      EXPECT_EQ(response.batched, coalesce);
      ++idx;
    }
    server->Stop();
    service->Stop();
  }
}

TEST(NetServerTest, PipelinedResponsesMatchedByRequestId) {
  std::shared_ptr<IflsService> service = MakeTinyService();
  const Venue& venue = service->AcquireState()->snapshot->venue();
  std::unique_ptr<IflsServer> server = Unwrap(IflsServer::Create(service));
  std::unique_ptr<IflsClient> client =
      Unwrap(IflsClient::Connect(server->port()));

  constexpr int kInFlight = 16;
  std::vector<std::uint64_t> ids;
  std::vector<ServiceReply> expected;
  for (int i = 0; i < kInFlight; ++i) {
    const std::vector<Client> clients =
        SomeClients(venue, 4, 100 + static_cast<std::uint64_t>(i));
    ServiceRequest request;
    request.objective = IflsObjective::kMinMax;
    request.clients = clients;
    expected.push_back(service->Query(std::move(request)));
    ASSERT_TRUE(expected.back().status.ok());
    WireQueryRequest wire_request;
    wire_request.clients = clients;
    ids.push_back(
        Unwrap(client->SendQuery(IflsObjective::kMinMax, wire_request)));
  }
  // Collect deliberately in reverse submission order: responses are keyed
  // by request id, not arrival order.
  for (int i = kInFlight - 1; i >= 0; --i) {
    const WireQueryResponse response = Unwrap(client->WaitQuery(ids[i]));
    EXPECT_EQ(response.found, expected[i].result.found);
    EXPECT_EQ(response.answer, expected[i].result.answer);
    EXPECT_TRUE(BitEqual(response.objective, expected[i].result.objective));
  }
  server->Stop();
  service->Stop();
}

// ----------------------------------------------------------- backpressure

TEST(NetServerTest, BackpressureTravelsAsTypedErrorFrame) {
  // Admission-only service with a one-slot queue: the first routed query is
  // admitted and parks (nothing drains), every subsequent one is shed with
  // kUnavailable — which must arrive as a typed error frame on a healthy
  // connection, not a dropped one.
  ServiceOptions service_options;
  service_options.num_workers = 0;
  service_options.queue_capacity = 1;
  std::shared_ptr<IflsService> service = MakeTinyService(service_options);
  const Venue& venue = service->AcquireState()->snapshot->venue();

  ServerOptions server_options;
  server_options.coalesce_batches = false;  // route through the admission queue
  std::unique_ptr<IflsServer> server =
      Unwrap(IflsServer::Create(service, server_options));
  std::unique_ptr<IflsClient> client =
      Unwrap(IflsClient::Connect(server->port()));

  constexpr int kBurst = 6;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kBurst; ++i) {
    WireQueryRequest request;
    request.clients = SomeClients(venue, 3, 7);
    ids.push_back(
        Unwrap(client->SendQuery(IflsObjective::kMinMax, request)));
  }
  // Wait until every shed has been issued: a shed requires a full admission
  // queue, so rejected == kBurst-1 also proves the one admitted query is
  // already parked in the queue — safe to drain it from this thread
  // (num_workers == 0 means nobody else will).
  for (int spin = 0;
       spin < 5000 && server->Metrics().rejected <
                          static_cast<std::uint64_t>(kBurst - 1);
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server->Metrics().rejected,
            static_cast<std::uint64_t>(kBurst - 1));
  while (service->ProcessOneInline()) {
  }
  int ok = 0;
  int unavailable = 0;
  for (std::uint64_t id : ids) {
    Result<WireQueryResponse> response = client->WaitQuery(id);
    if (response.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(response.status().code(), StatusCode::kUnavailable)
          << response.status().ToString();
      ++unavailable;
    }
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(unavailable, kBurst - 1);
  EXPECT_GE(server->Metrics().rejected,
            static_cast<std::uint64_t>(kBurst - 1));
  // The connection survived the shedding: a ping still round-trips.
  EXPECT_TRUE(client->Ping().ok());

  // The rejected counter is visible over the wire too.
  const std::string metrics = Unwrap(client->PullMetrics());
  EXPECT_NE(metrics.find("ifls_net_rejected_total"), std::string::npos);
  server->Stop();
  service->Stop();
}

// ------------------------------------------------------------- mutations

TEST(NetServerTest, MutationsApplyAndAffectSubsequentQueries) {
  std::shared_ptr<IflsService> service = MakeTinyService();
  const Venue& venue = service->AcquireState()->snapshot->venue();
  std::unique_ptr<IflsServer> server = Unwrap(IflsServer::Create(service));
  std::unique_ptr<IflsClient> client =
      Unwrap(IflsClient::Connect(server->port()));

  // Mirror service on an identical venue to predict the post-mutation
  // answer in-process.
  std::shared_ptr<IflsService> mirror = MakeTinyService();
  TinyVenue layout = BuildTinyVenue();  // for partition ids

  WireMutateRequest mutate;
  mutate.kind = MutationKind::kAddCandidate;
  mutate.partition = layout.room_d;
  const WireMutateResponse applied = Unwrap(client->Mutate(mutate));
  EXPECT_EQ(applied.applied_version, 1u);
  ASSERT_TRUE(mirror
                  ->Mutate(Mutation{MutationKind::kAddCandidate,
                                    layout.room_d})
                  .ok());

  const std::vector<Client> clients = SomeClients(venue, 5, 21);
  ServiceRequest mirror_request;
  mirror_request.objective = IflsObjective::kMinMax;
  mirror_request.clients = clients;
  const ServiceReply expected = mirror->Query(std::move(mirror_request));
  ASSERT_TRUE(expected.status.ok());

  WireQueryRequest request;
  request.clients = clients;
  const WireQueryResponse response =
      Unwrap(client->Query(IflsObjective::kMinMax, request));
  EXPECT_EQ(response.found, expected.result.found);
  EXPECT_EQ(response.answer, expected.result.answer);
  EXPECT_TRUE(BitEqual(response.objective, expected.result.objective));
  EXPECT_EQ(response.overlay_size, 1u);

  // Invalid mutation surfaces its typed status, connection intact.
  WireMutateRequest bad;
  bad.kind = MutationKind::kAddCandidate;
  bad.partition = layout.room_d;  // already a candidate now
  Result<WireMutateResponse> rejected = client->Mutate(bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(client->Ping().ok());
  server->Stop();
  service->Stop();
  mirror->Stop();
}

// ---------------------------------------------------------- subscriptions

TEST(NetServerTest, SubscriptionPushesStreamOverTheConnection) {
  std::shared_ptr<IflsService> service = MakeTinyService();
  const Venue& venue = service->AcquireState()->snapshot->venue();
  TinyVenue layout = BuildTinyVenue();
  std::unique_ptr<IflsServer> server = Unwrap(IflsServer::Create(service));
  std::unique_ptr<IflsClient> client =
      Unwrap(IflsClient::Connect(server->port()));

  WireSubscribeRequest subscribe;
  subscribe.clients = SomeClients(venue, 4, 31);
  const WireSubscription sub = Unwrap(client->Subscribe(subscribe));
  EXPECT_NE(sub.subscription_id, 0u);

  // Push #0 (the initial answer) is delivered during registration; it may
  // arrive before or after the subscribe result, tagged with its request id.
  ReceivedPush initial = Unwrap(client->WaitPush());
  EXPECT_EQ(initial.request_id, sub.request_id);
  EXPECT_EQ(initial.push.subscription_id, sub.subscription_id);
  EXPECT_EQ(initial.push.sequence, 0u);
  EXPECT_TRUE(initial.push.found);

  // Removing the current best candidate invalidates the standing answer and
  // pushes sequence 1 at version 1 over the same connection.
  WireMutateRequest mutate;
  mutate.kind = MutationKind::kRemoveCandidate;
  mutate.partition = initial.push.answer;
  Unwrap(client->Mutate(mutate));
  ReceivedPush next = Unwrap(client->WaitPush());
  EXPECT_EQ(next.push.sequence, 1u);
  EXPECT_EQ(next.push.version, 1u);
  EXPECT_NE(next.push.answer, initial.push.answer);

  // Tick a client across the venue: acks even when it does not invalidate.
  WireTickRequest tick;
  tick.subscription_id = sub.subscription_id;
  tick.client = 0;
  tick.position = Point(25.0, 2.0, 0);
  tick.partition = layout.room_b;
  ASSERT_TRUE(client->Tick(tick).ok());

  WireUnsubscribeRequest unsubscribe;
  unsubscribe.subscription_id = sub.subscription_id;
  EXPECT_TRUE(client->Unsubscribe(unsubscribe).ok());
  // Unknown id after teardown: typed NotFound, connection intact.
  EXPECT_EQ(client->Unsubscribe(unsubscribe).code(), StatusCode::kNotFound);
  EXPECT_TRUE(client->Ping().ok());
  server->Stop();
  service->Stop();
}

// ------------------------------------------------- observability over wire

TEST(NetServerTest, MetricsAndTracePullOverWire) {
  std::shared_ptr<IflsService> service = MakeTinyService();
  std::unique_ptr<IflsServer> server = Unwrap(IflsServer::Create(service));
  std::unique_ptr<IflsClient> client =
      Unwrap(IflsClient::Connect(server->port()));
  const std::string metrics = Unwrap(client->PullMetrics());
  EXPECT_NE(metrics.find("ifls_net_frames_total"), std::string::npos);
  EXPECT_NE(metrics.find("ifls_net_connections"), std::string::npos);
  const std::string trace = Unwrap(client->PullTrace());
  EXPECT_FALSE(trace.empty());
  server->Stop();
  service->Stop();
}

// --------------------------------------------------- HTTP admin plane

/// One HTTP exchange against the server's port: writes `request` verbatim,
/// reads until the server closes (the admin plane is one-shot HTTP/1.0).
/// Poll-bounded so a regression cannot hang the suite.
std::string HttpExchange(std::uint16_t port, const std::string& request) {
  OwnedFd fd = Unwrap(ConnectTcp(port));
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::write(fd.get(), request.data() + sent, request.size() - sent);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  EXPECT_EQ(sent, request.size());
  std::string response;
  char buf[4096];
  for (int rounds = 0; rounds < 200; ++rounds) {
    pollfd pfd{fd.get(), POLLIN, 0};
    if (::poll(&pfd, 1, 5000) <= 0) break;
    const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n <= 0) break;  // EOF: the server closed after its one response
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response;
}

TEST(NetServerTest, HttpAdminPlaneServesScrapeEndpoints) {
  ServiceOptions service_options;
  service_options.venue_label = "tiny";
  std::shared_ptr<IflsService> service = MakeTinyService(service_options);
  const Venue& venue = service->AcquireState()->snapshot->venue();
  std::unique_ptr<IflsServer> server = Unwrap(IflsServer::Create(service));

  // One binary query first so the cost ledger has something to expose.
  std::unique_ptr<IflsClient> client =
      Unwrap(IflsClient::Connect(server->port()));
  WireQueryRequest request;
  request.clients = SomeClients(venue, 4, 5);
  ASSERT_TRUE(client->Query(IflsObjective::kMinMax, request).ok());

  const std::string metrics =
      HttpExchange(server->port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("ifls_net_connections"), std::string::npos);
  EXPECT_NE(metrics.find("ifls_ledger_queries_total{venue=\"tiny\""),
            std::string::npos);
  EXPECT_NE(metrics.find("ifls_net_http_requests_total"), std::string::npos);

  const std::string healthz =
      HttpExchange(server->port(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(healthz.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("\r\n\r\nok\n"), std::string::npos);

  // Query strings are stripped before routing (Prometheus appends none, but
  // curl users do).
  const std::string venues = HttpExchange(
      server->port(), "GET /venues?pretty=1 HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(venues.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(venues.find("application/json"), std::string::npos);
  EXPECT_NE(venues.find("\"venue_id\": \"tiny\""), std::string::npos);
  EXPECT_NE(venues.find("\"resident\": true"), std::string::npos);

  const std::string slow =
      HttpExchange(server->port(), "GET /slow HTTP/1.0\r\n\r\n");
  EXPECT_NE(slow.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(slow.find("\"slow_queries\""), std::string::npos);

  const std::string missing =
      HttpExchange(server->port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"), std::string::npos);

  // The sniff left binary connections untouched: the client still works,
  // and the admin requests were counted.
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_GE(server->Metrics().http_requests, 5u);
  server->Stop();
  service->Stop();
}

TEST(NetServerTest, HttpBadRequestAnswered400AndClosed) {
  std::shared_ptr<IflsService> service = MakeTinyService();
  std::unique_ptr<IflsServer> server = Unwrap(IflsServer::Create(service));

  // Sniffs as HTTP (starts with "GET ") but the request line is malformed:
  // no version token. The server must answer 400 and close, not hang.
  const std::string bad =
      HttpExchange(server->port(), "GET junk\r\n\r\n");
  EXPECT_NE(bad.find("HTTP/1.0 400 Bad Request"), std::string::npos);

  // Non-GET methods never reach HTTP mode (the sniff is exactly "GET "), so
  // they travel the binary path and tear down as a corrupt envelope — but a
  // GET whose header block never terminates is bounded: past 8 KiB without
  // "\r\n\r\n" the server answers 400 and closes rather than buffering
  // forever.
  const std::string oversized = HttpExchange(
      server->port(), "GET /metrics HTTP/1.0\r\nPadding: " +
                          std::string(9000, 'x'));  // no terminator, ever
  EXPECT_NE(oversized.find("HTTP/1.0 400 Bad Request"), std::string::npos);

  // The server survived both: a well-formed scrape still answers.
  const std::string ok =
      HttpExchange(server->port(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(ok.find("HTTP/1.0 200 OK"), std::string::npos);
  server->Stop();
  service->Stop();
}

TEST(NetServerTest, HttpAndBinaryInterleaveOnOnePort) {
  std::shared_ptr<IflsService> service = MakeTinyService();
  const Venue& venue = service->AcquireState()->snapshot->venue();
  std::unique_ptr<IflsServer> server = Unwrap(IflsServer::Create(service));

  ServiceRequest truth_request;
  truth_request.objective = IflsObjective::kMinMax;
  truth_request.clients = SomeClients(venue, 4, 77);
  const ServiceReply expected = service->Query(std::move(truth_request));
  ASSERT_TRUE(expected.status.ok());

  constexpr int kThreadsPerKind = 4;
  constexpr int kRequestsPerThread = 8;
  std::atomic<int> http_ok{0};
  std::atomic<int> query_ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreadsPerKind; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::string response = HttpExchange(
            server->port(), "GET /metrics HTTP/1.0\r\n\r\n");
        if (response.find("HTTP/1.0 200 OK") != std::string::npos &&
            response.find("ifls_net_frames_total") != std::string::npos) {
          http_ok.fetch_add(1);
        }
      }
    });
    threads.emplace_back([&] {
      std::unique_ptr<IflsClient> client =
          Unwrap(IflsClient::Connect(server->port()));
      for (int i = 0; i < kRequestsPerThread; ++i) {
        WireQueryRequest request;
        request.clients = SomeClients(venue, 4, 77);
        Result<WireQueryResponse> response =
            client->Query(IflsObjective::kMinMax, request);
        if (response.ok() && response.value().answer == expected.result.answer &&
            BitEqual(response.value().objective, expected.result.objective)) {
          query_ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(http_ok.load(), kThreadsPerKind * kRequestsPerThread);
  EXPECT_EQ(query_ok.load(), kThreadsPerKind * kRequestsPerThread);
  server->Stop();
  service->Stop();
}

// ------------------------------------------------- distributed tracing

TEST(NetServerTest, ClockOffsetEstimateFromPongTimestamps) {
  std::shared_ptr<IflsService> service = MakeTinyService();
  std::unique_ptr<IflsServer> server = Unwrap(IflsServer::Create(service));
  std::unique_ptr<IflsClient> client =
      Unwrap(IflsClient::Connect(server->port()));
  const std::int64_t offset = Unwrap(client->EstimateClockOffset());
  // Client and server share one process here, so the true offset is zero;
  // the estimate is bounded by the loopback RTT. A second's slack keeps the
  // assertion robust on the slowest CI machine while still catching
  // sign/unit mistakes (a nanos/micros mixup is off by 10^3).
  EXPECT_LT(std::llabs(offset), 1'000'000'000ll);
  server->Stop();
  service->Stop();
}

TEST(NetServerTest, TraceContextPropagatesAcrossTheWire) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.Enable(1);

  std::shared_ptr<IflsService> service = MakeTinyService();
  const Venue& venue = service->AcquireState()->snapshot->venue();
  ServerOptions server_options;
  // Coalesced batches deliberately do not adopt per-query scopes; the
  // propagation contract is on the admission path.
  server_options.coalesce_batches = false;
  std::unique_ptr<IflsServer> server =
      Unwrap(IflsServer::Create(service, server_options));
  std::unique_ptr<IflsClient> client =
      Unwrap(IflsClient::Connect(server->port()));

  const std::uint64_t trace_id = recorder.NewTraceId();
  {
    TraceIdScope scope(trace_id, /*sampled=*/true);
    WireQueryRequest request;
    request.clients = SomeClients(venue, 4, 13);
    ASSERT_TRUE(client->Query(IflsObjective::kMinMax, request).ok());
  }
  // The server executed before replying, so its spans are already recorded;
  // collect the client and server sides of the same trace id.
  bool has_rpc = false;
  bool has_queue_wait = false;
  bool has_solve = false;
  for (const TraceEvent& event : recorder.SnapshotTrace(trace_id)) {
    const std::string name = event.name != nullptr ? event.name : "";
    has_rpc |= name == "rpc_query";
    has_queue_wait |= name == "queue_wait";
    has_solve |= name == "solve";
  }
  EXPECT_TRUE(has_rpc);
  EXPECT_TRUE(has_queue_wait);
  EXPECT_TRUE(has_solve);

  // A propagated not-sampled verdict is honored: the server must not
  // re-roll the draw, so the trace id records nothing on either side.
  const std::uint64_t unsampled_id = recorder.NewTraceId();
  {
    TraceIdScope scope(unsampled_id, /*sampled=*/false);
    WireQueryRequest request;
    request.clients = SomeClients(venue, 4, 13);
    ASSERT_TRUE(client->Query(IflsObjective::kMinMax, request).ok());
  }
  EXPECT_TRUE(recorder.SnapshotTrace(unsampled_id).empty());

  server->Stop();
  service->Stop();
  recorder.Disable();
  recorder.Clear();
}

// ------------------------------------------------------- protocol hygiene

TEST(NetServerTest, CorruptEnvelopeTearsDownOnlyThatConnection) {
  std::shared_ptr<IflsService> service = MakeTinyService();
  std::unique_ptr<IflsServer> server = Unwrap(IflsServer::Create(service));

  OwnedFd raw = Unwrap(ConnectTcp(server->port()));
  const char garbage[40] = "this is definitely not an IFLW frame...";
  ASSERT_EQ(::write(raw.get(), garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));
  // The server answers with a best-effort error frame and closes; read
  // until EOF (poll-bounded so a regression cannot hang the suite).
  char buf[4096];
  bool closed = false;
  for (int rounds = 0; rounds < 100 && !closed; ++rounds) {
    pollfd pfd{raw.get(), POLLIN, 0};
    ASSERT_GT(::poll(&pfd, 1, 5000), 0) << "server never closed the stream";
    ssize_t n = ::read(raw.get(), buf, sizeof(buf));
    if (n == 0) closed = true;
    ASSERT_GE(n, 0);
  }
  EXPECT_TRUE(closed);

  // A well-behaved connection to the same server still works.
  std::unique_ptr<IflsClient> client =
      Unwrap(IflsClient::Connect(server->port()));
  EXPECT_TRUE(client->Ping().ok());
  server->Stop();
  service->Stop();
}

TEST(NetServerTest, SingleVenueServerRejectsVenueIds) {
  std::shared_ptr<IflsService> service = MakeTinyService();
  const Venue& venue = service->AcquireState()->snapshot->venue();
  std::unique_ptr<IflsServer> server = Unwrap(IflsServer::Create(service));
  std::unique_ptr<IflsClient> client =
      Unwrap(IflsClient::Connect(server->port()));
  WireQueryRequest request;
  request.venue_id = "not-a-fleet";
  request.clients = SomeClients(venue, 2, 3);
  Result<WireQueryResponse> response =
      client->Query(IflsObjective::kMinMax, request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client->Ping().ok());
  server->Stop();
  service->Stop();
}

// ----------------------------------------------------------- fleet routing

TEST(NetServerTest, FleetServerRoutesByVenueId) {
  // Two distinct venues in a fleet directory; the wire venue_id picks which
  // one answers, hydrating lazily on first touch.
  const std::string root =
      ::testing::TempDir() + "/ifls_net_fleet";
  std::filesystem::remove_all(root);
  std::vector<Venue> venues;
  std::vector<FacilitySets> sets;
  for (int i = 0; i < 2; ++i) {
    VenueGeneratorSpec spec = testing_util::SmallVenueSpec();
    spec.name = "venue" + std::to_string(i);
    spec.rooms_per_level += 4 * i;
    spec.door_jitter_seed = static_cast<std::uint64_t>(i + 1);
    venues.push_back(Unwrap(GenerateVenue(spec)));
    Venue& venue = venues.back();
    VipTree tree = Unwrap(VipTree::Build(&venue));
    Rng rng(static_cast<std::uint64_t>(100 + i));
    sets.push_back(Unwrap(SelectUniformFacilities(venue, 3, 6, &rng)));
    ASSERT_TRUE(WriteVenueSnapshot(root + "/" + spec.name, venue, tree,
                                   sets.back().existing,
                                   sets.back().candidates)
                    .ok());
  }
  std::shared_ptr<VenueRouter> router = Unwrap(VenueRouter::Open(root));
  std::unique_ptr<IflsServer> server = Unwrap(IflsServer::CreateFleet(router));
  std::unique_ptr<IflsClient> client =
      Unwrap(IflsClient::Connect(server->port()));

  for (int i = 0; i < 2; ++i) {
    const std::string venue_id = "venue" + std::to_string(i);
    Rng rng(static_cast<std::uint64_t>(7 + i));
    std::vector<Client> clients =
        GenerateClients(venues[static_cast<std::size_t>(i)], 8, {}, &rng);

    ServiceRequest truth_request;
    truth_request.objective = IflsObjective::kMinMax;
    truth_request.clients = clients;
    const ServiceReply expected =
        router->Query(venue_id, std::move(truth_request));
    ASSERT_TRUE(expected.status.ok());

    WireQueryRequest request;
    request.venue_id = venue_id;
    request.clients = std::move(clients);
    const WireQueryResponse response =
        Unwrap(client->Query(IflsObjective::kMinMax, request));
    EXPECT_EQ(response.found, expected.result.found);
    EXPECT_EQ(response.answer, expected.result.answer);
    EXPECT_TRUE(BitEqual(response.objective, expected.result.objective))
        << venue_id;
  }

  // Unknown venue: typed NotFound, connection intact.
  Rng rng(99);
  WireQueryRequest missing;
  missing.venue_id = "no-such-venue";
  missing.clients = GenerateClients(venues[0], 2, {}, &rng);
  Result<WireQueryResponse> response =
      client->Query(IflsObjective::kMinMax, missing);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(client->Ping().ok());
  server->Stop();
}

// --------------------------------------------------- concurrency at scale

TEST(NetServerTest, ThousandConnectionsBitIdenticalUnderLoad) {
  std::shared_ptr<IflsService> service = MakeTinyService();
  const Venue& venue = service->AcquireState()->snapshot->venue();

  // Ground truth straight from the in-process service.
  std::vector<NetExpectation> expectations;
  int seed = 0;
  for (IflsObjective objective :
       {IflsObjective::kMinMax, IflsObjective::kMinDist,
        IflsObjective::kMaxSum}) {
    for (int rep = 0; rep < 3; ++rep) {
      NetExpectation expectation;
      expectation.objective = objective;
      expectation.clients =
          SomeClients(venue, 4, 400 + static_cast<std::uint64_t>(seed++));
      ServiceRequest request;
      request.objective = objective;
      request.clients = expectation.clients;
      const ServiceReply reply = service->Query(std::move(request));
      ASSERT_TRUE(reply.status.ok());
      expectation.found = reply.result.found;
      expectation.answer = reply.result.answer;
      expectation.objective_value = reply.result.objective;
      expectations.push_back(std::move(expectation));
    }
  }

  ServerOptions server_options;
  server_options.coalesce_batches = true;
  server_options.num_dispatchers = 4;
  server_options.dispatch_queue_capacity = 8192;  // errors==0 asserted below
  std::unique_ptr<IflsServer> server =
      Unwrap(IflsServer::Create(service, server_options));

  LoadGenOptions load;
  load.port = server->port();
  load.num_connections = 1024;
  load.num_threads = 8;
  load.pipeline_depth = 1;
  load.queries_per_connection = 2;
  const LoadGenReport report = Unwrap(RunNetworkLoad(load, expectations));
  EXPECT_EQ(report.mismatches, 0u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.completed,
            load.num_connections * load.queries_per_connection);
  EXPECT_GT(report.qps, 0.0);
  // Socket-layer batching actually engaged under concurrent arrivals.
  const ServerMetrics metrics = server->Metrics();
  EXPECT_EQ(metrics.queries,
            load.num_connections * load.queries_per_connection);
  EXPECT_GT(metrics.batched_queries, 0u);
  server->Stop();
  service->Stop();
}

}  // namespace
}  // namespace ifls
