// End-to-end coverage of the tracing subsystem (src/common/trace.h): the
// recorder's enable/sample/overflow mechanics, the bit-identity contract
// (spans never change answers), slow-query capture through the log sink,
// Prometheus round-trips of service counters, and — the load-bearing part —
// that a Chrome trace exported from a *multi-threaded* service run parses as
// well-formed JSON with balanced B/E pairs and monotonic per-thread
// timestamps, spanning the service, solver and oracle layers.

#include "src/common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/metrics_registry.h"
#include "src/core/efficient.h"
#include "src/core/maxsum.h"
#include "src/core/mindist.h"
#include "src/index/graph_oracle.h"
#include "src/service/service.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

// --------------------------------------------------------- mini JSON parser
//
// Just enough recursive-descent JSON to round-trip the exporter's output;
// rejecting anything malformed is the point of the test.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                              nullptr);
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          default: return false;  // exporter never emits other escapes
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::kObject;
    SkipSpace();
    if (Consume('}')) return true;
    for (;;) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::kArray;
    SkipSpace();
    if (Consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Resets the global recorder around each test so tests can't leak spans or
/// the enabled flag into each other.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
  }
  void TearDown() override {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
  }
};

// ------------------------------------------------------------ recorder unit

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(TraceEnabled());
  { TraceSpan span(TraceCategory::kSolver, "ignored"); }
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
}

TEST_F(TraceTest, EnabledSpansRecordNameCategoryAndTimes) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable();
  { TraceSpan span(TraceCategory::kOracle, "unit_span"); }
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "unit_span");
  EXPECT_EQ(events[0].category, TraceCategory::kOracle);
  EXPECT_EQ(events[0].trace_id, 0u);  // no enclosing TraceIdScope
  EXPECT_LE(events[0].start_nanos, events[0].end_nanos);
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST_F(TraceTest, RingOverflowDropsOldestAndCounts) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable();
  const std::size_t n = TraceRecorder::kSlotsPerThread + 100;
  for (std::size_t i = 0; i < n; ++i) {
    recorder.Record(TraceCategory::kService, "flood", 0, i, i + 1);
  }
  const std::vector<TraceEvent> events = recorder.Snapshot();
  EXPECT_EQ(events.size(), TraceRecorder::kSlotsPerThread);
  EXPECT_GE(recorder.dropped_events(), 100u);
  // The survivors are the newest spans.
  std::uint64_t min_start = n;
  for (const TraceEvent& e : events) {
    min_start = std::min(min_start, e.start_nanos);
  }
  EXPECT_EQ(min_start, n - TraceRecorder::kSlotsPerThread);
  recorder.Clear();
  EXPECT_EQ(recorder.dropped_events(), 0u);
}

TEST_F(TraceTest, SamplingSuppressesScopedSpansOfLosingQueries) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(/*sample_every=*/2);
  EXPECT_EQ(recorder.sample_every(), 2u);
  std::vector<std::uint64_t> sampled_ids;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t id = recorder.NewTraceId();
    if (recorder.Sampled(id)) sampled_ids.push_back(id);
    TraceIdScope scope(id, recorder.Sampled(id));
    TraceSpan span(TraceCategory::kSolver, "per_query");
  }
  ASSERT_EQ(sampled_ids.size(), 2u);  // 1-in-2 of four consecutive ids
  std::vector<std::uint64_t> recorded_ids;
  for (const TraceEvent& e : recorder.Snapshot()) {
    recorded_ids.push_back(e.trace_id);
  }
  std::sort(recorded_ids.begin(), recorded_ids.end());
  EXPECT_EQ(recorded_ids, sampled_ids);
  // Spans outside any scope still record while sampling is active.
  { TraceSpan span(TraceCategory::kCompaction, "unscoped"); }
  EXPECT_EQ(recorder.Snapshot().size(), sampled_ids.size() + 1);
}

TEST_F(TraceTest, SnapshotTraceFiltersToOneQuery) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable();
  recorder.Record(TraceCategory::kService, "a", 7, 10, 20);
  recorder.Record(TraceCategory::kSolver, "b", 7, 12, 18);
  recorder.Record(TraceCategory::kService, "c", 8, 11, 19);
  const std::vector<TraceEvent> mine = recorder.SnapshotTrace(7);
  ASSERT_EQ(mine.size(), 2u);
  EXPECT_STREQ(mine[0].name, "a");
  EXPECT_STREQ(mine[1].name, "b");
  const std::string tree = FormatSpanTree(mine);
  EXPECT_NE(tree.find("[service] a"), std::string::npos);
  EXPECT_NE(tree.find("[solver] b"), std::string::npos);
}

// -------------------------------------------------------------- bit identity

TEST_F(TraceTest, SolverAnswersBitIdenticalWithTracingOnAndOff) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  Rng rng(3);
  FacilitySets sets = Unwrap(SelectUniformFacilities(venue, 4, 8, &rng));
  IflsContext ctx;
  ctx.oracle = &tree;
  ctx.existing = std::move(sets.existing);
  ctx.candidates = std::move(sets.candidates);
  for (int i = 0; i < 30; ++i) {
    ctx.clients.push_back(RandomClient(venue, &rng, static_cast<ClientId>(i)));
  }

  const auto solve_all = [&ctx] {
    std::vector<IflsResult> results;
    results.push_back(Unwrap(SolveEfficient(ctx)));
    results.push_back(Unwrap(SolveMinDist(ctx)));
    results.push_back(Unwrap(SolveMaxSum(ctx)));
    return results;
  };

  ASSERT_FALSE(TraceEnabled());
  const std::vector<IflsResult> off = solve_all();

  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable();
  std::vector<IflsResult> on;
  {
    const std::uint64_t id = recorder.NewTraceId();
    TraceIdScope scope(id, recorder.Sampled(id));
    on = solve_all();
  }
  EXPECT_FALSE(recorder.Snapshot().empty());  // spans actually recorded

  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].found, on[i].found) << "solver " << i;
    EXPECT_EQ(off[i].answer, on[i].answer) << "solver " << i;
    // Bitwise equality, not NEAR: spans must never perturb the computation.
    EXPECT_EQ(off[i].objective, on[i].objective) << "solver " << i;
    EXPECT_EQ(off[i].stats.distance_computations,
              on[i].stats.distance_computations)
        << "solver " << i;
  }
}

// ----------------------------------------------------------- service export

struct TracedScenario {
  Venue venue;  // a second identical build, for the graph-oracle solve
  std::vector<PartitionId> existing;
  std::vector<PartitionId> candidates;
  std::vector<Client> clients;
  std::unique_ptr<IflsService> service;
};

TracedScenario MakeTracedScenario(const ServiceOptions& options,
                                  std::uint64_t seed = 11) {
  TracedScenario s;
  s.venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  Rng rng(seed);
  FacilitySets sets = Unwrap(SelectUniformFacilities(s.venue, 3, 6, &rng));
  s.existing = std::move(sets.existing);
  s.candidates = std::move(sets.candidates);
  std::sort(s.existing.begin(), s.existing.end());
  std::sort(s.candidates.begin(), s.candidates.end());
  for (int i = 0; i < 20; ++i) {
    s.clients.push_back(
        RandomClient(s.venue, &rng, static_cast<ClientId>(i)));
  }
  Venue copy = Unwrap(GenerateVenue(SmallVenueSpec()));
  s.service = Unwrap(IflsService::Create(std::move(copy), s.existing,
                                         s.candidates, options));
  return s;
}

TEST_F(TraceTest, ExportedChromeTraceFromThreadedServiceIsWellFormed) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable();

  ServiceOptions options;
  options.num_workers = 2;
  TracedScenario s = MakeTracedScenario(options);

  // Queries on worker threads (queue_wait + snapshot_pin + solve spans).
  std::vector<std::future<ServiceReply>> pending;
  const IflsObjective objectives[] = {IflsObjective::kMinMax,
                                      IflsObjective::kMinDist,
                                      IflsObjective::kMaxSum};
  for (int i = 0; i < 9; ++i) {
    ServiceRequest request;
    request.objective = objectives[i % 3];
    request.clients = s.clients;
    pending.push_back(Unwrap(s.service->SubmitQuery(std::move(request))));
  }
  for (std::future<ServiceReply>& f : pending) {
    const ServiceReply reply = f.get();
    ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
    EXPECT_NE(reply.trace_id, 0u);
  }

  // Mutation churn + forced compaction (kCompaction spans), net-zero so the
  // differential solve below sees the boot facility sets.
  const PartitionId toggled = s.candidates.back();
  ASSERT_TRUE(
      s.service->Mutate({MutationKind::kRemoveCandidate, toggled}).ok());
  ASSERT_TRUE(s.service->CompactNow().ok());
  ASSERT_TRUE(
      s.service->Mutate({MutationKind::kAddCandidate, toggled}).ok());
  ASSERT_TRUE(s.service->CompactNow().ok());

  // Graph-oracle differential solve: cold per-source rows force the
  // Dijkstra fallback, whose named span must land in the export.
  GraphDistanceOracle graph(&s.venue);
  IflsContext ctx;
  ctx.oracle = &graph;
  ctx.existing = s.existing;
  ctx.candidates = s.candidates;
  ctx.clients = s.clients;
  const std::uint64_t diff_id = recorder.NewTraceId();
  {
    TraceIdScope scope(diff_id, recorder.Sampled(diff_id));
    ASSERT_TRUE(SolveEfficient(ctx).ok());
  }

  s.service->Stop();  // quiesce writers before exporting

  std::ostringstream out;
  ASSERT_TRUE(recorder.ExportChromeTrace(out).ok());
  JsonValue root;
  ASSERT_TRUE(JsonParser(out.str()).Parse(&root)) << out.str().substr(0, 400);
  ASSERT_EQ(root.kind, JsonValue::kObject);
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);
  ASSERT_FALSE(events->array.empty());

  // Balanced B/E per thread, timestamps non-decreasing in emission order.
  std::map<double, int> depth_by_tid;
  std::map<double, double> last_ts_by_tid;
  std::vector<std::string> names;
  std::vector<std::string> categories;
  for (const JsonValue& e : events->array) {
    ASSERT_EQ(e.kind, JsonValue::kObject);
    const JsonValue* ph = e.Find("ph");
    const JsonValue* tid = e.Find("tid");
    const JsonValue* ts = e.Find("ts");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(tid, nullptr);
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ph->string == "B" || ph->string == "E") << ph->string;
    int& depth = depth_by_tid[tid->number];
    if (ph->string == "B") {
      const JsonValue* name = e.Find("name");
      const JsonValue* cat = e.Find("cat");
      ASSERT_NE(name, nullptr);
      ASSERT_NE(cat, nullptr);
      names.push_back(name->string);
      categories.push_back(cat->string);
      ++depth;
    } else {
      --depth;
      ASSERT_GE(depth, 0) << "E without matching B on tid " << tid->number;
    }
    auto [it, first] = last_ts_by_tid.emplace(tid->number, ts->number);
    if (!first) {
      EXPECT_GE(ts->number, it->second) << "ts regressed on tid "
                                        << tid->number;
      it->second = ts->number;
    }
  }
  for (const auto& [tid, depth] : depth_by_tid) {
    EXPECT_EQ(depth, 0) << "unbalanced B/E on tid " << tid;
  }

  const auto seen = [&](const std::vector<std::string>& v,
                        const std::string& want) {
    return std::find(v.begin(), v.end(), want) != v.end();
  };
  EXPECT_TRUE(seen(names, "queue_wait"));
  EXPECT_TRUE(seen(names, "dijkstra_fallback"));
  std::vector<std::string> distinct = categories;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  EXPECT_GE(distinct.size(), 3u) << "want spans from >= 3 categories";
  EXPECT_TRUE(seen(distinct, "service"));
  EXPECT_TRUE(seen(distinct, "solver"));
  EXPECT_TRUE(seen(distinct, "oracle"));
}

TEST_F(TraceTest, PrometheusExpositionRoundTripsServiceCounters) {
  ServiceOptions options;
  options.num_workers = 0;  // deterministic inline pumping
  TracedScenario s = MakeTracedScenario(options, /*seed=*/13);

  for (int i = 0; i < 5; ++i) {
    ServiceRequest request;
    request.objective = IflsObjective::kMinMax;
    request.clients = s.clients;
    std::future<ServiceReply> f =
        Unwrap(s.service->SubmitQuery(std::move(request)));
    while (s.service->ProcessOneInline()) {
    }
    ASSERT_TRUE(f.get().status.ok());
  }

  const ServiceMetrics metrics = s.service->Metrics();
  ASSERT_EQ(metrics.completed, 5u);
  const std::string text = DumpMetricsText();

  // Exactly this instance's series (older test services unregistered on
  // destruction), with values matching the Metrics() sample.
  const auto expect_series = [&text](const std::string& name,
                                     std::uint64_t want) {
    const std::size_t pos = text.find(name + "{instance=");
    ASSERT_NE(pos, std::string::npos) << name << " missing from:\n" << text;
    const std::size_t space = text.find(' ', pos);
    ASSERT_NE(space, std::string::npos);
    EXPECT_EQ(std::strtoull(text.c_str() + space + 1, nullptr, 10), want)
        << name;
  };
  expect_series("ifls_service_submitted_total", metrics.submitted);
  expect_series("ifls_service_completed_total", metrics.completed);
  expect_series("ifls_service_shed_total", metrics.shed);
  expect_series("ifls_service_latency_seconds_count", metrics.completed);

  // The process-wide solver-work rollups saw this service's queries. The
  // leading newline skips past the family's "# TYPE ... counter" line to
  // the sample line itself.
  const std::string rollup_line = "\nifls_query_distance_computations_total ";
  const std::size_t rollup = text.find(rollup_line);
  ASSERT_NE(rollup, std::string::npos);
  EXPECT_GT(std::strtoull(text.c_str() + rollup + rollup_line.size(),
                          nullptr, 10),
            0u);
}

// ------------------------------------------------------------- slow queries

class CapturingSink : public LogSink {
 public:
  void Write(LogLevel, const std::string& line) override {
    lines_.push_back(line);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

TEST_F(TraceTest, SlowQueryDumpsSpanTreeThroughLogger) {
  TraceRecorder::Global().Enable();
  ServiceOptions options;
  options.num_workers = 0;
  options.slow_query_threshold_seconds = 1e-9;  // everything is "slow"
  TracedScenario s = MakeTracedScenario(options, /*seed=*/17);

  CapturingSink sink;
  LogSink* previous = SwapLogSink(&sink);
  ServiceRequest request;
  request.objective = IflsObjective::kMinDist;
  request.clients = s.clients;
  std::future<ServiceReply> f =
      Unwrap(s.service->SubmitQuery(std::move(request)));
  while (s.service->ProcessOneInline()) {
  }
  const ServiceReply reply = f.get();
  SwapLogSink(previous);

  ASSERT_TRUE(reply.status.ok());
  ASSERT_NE(reply.trace_id, 0u);
  std::string slow_line;
  for (const std::string& line : sink.lines()) {
    if (line.find("slow query trace_id=") != std::string::npos) {
      slow_line = line;
      break;
    }
  }
  ASSERT_FALSE(slow_line.empty()) << "no slow-query line captured";
  EXPECT_NE(
      slow_line.find("trace_id=" + std::to_string(reply.trace_id)),
      std::string::npos);
  EXPECT_NE(slow_line.find("objective=MinDist"), std::string::npos);
  // The span tree rides along: the query's own service + solver spans.
  EXPECT_NE(slow_line.find("[service] solve"), std::string::npos);
  EXPECT_NE(slow_line.find("[solver] mindist"), std::string::npos);
}

}  // namespace
}  // namespace ifls
