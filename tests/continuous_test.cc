// The continuous-IFLS monitor (moving clients, paper §8 future work):
// exactness against fresh solves, certified skips, and trajectory-driven
// simulation.

#include "src/core/continuous.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/core/brute_force.h"
#include "src/datasets/trajectory_generator.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

constexpr double kTol = 1e-7;

class ContinuousEnv {
 public:
  static ContinuousEnv& Get() {
    static ContinuousEnv* env = new ContinuousEnv();
    return *env;
  }
  const Venue& venue() const { return venue_; }
  const VipTree& tree() const { return *tree_; }
  FacilitySets MakeSets(std::uint64_t seed, std::size_t fe,
                        std::size_t fn) const {
    Rng rng(seed);
    return Unwrap(SelectUniformFacilities(venue_, fe, fn, &rng));
  }

 private:
  ContinuousEnv() {
    venue_ = Unwrap(GenerateVenue(SmallVenueSpec()));
    tree_ = std::make_unique<VipTree>(Unwrap(VipTree::Build(&venue_)));
  }
  Venue venue_;
  std::unique_ptr<VipTree> tree_;
};

/// Exact objective of the monitor's current crowd, computed independently.
double FreshOptimum(const ContinuousEnv& env, const FacilitySets& sets,
                    const std::vector<Client>& clients) {
  IflsContext ctx;
  ctx.oracle = &env.tree();
  ctx.existing = sets.existing;
  ctx.candidates = sets.candidates;
  ctx.clients = clients;
  const IflsResult brute = Unwrap(SolveBruteForceMinMax(ctx));
  return brute.found ? brute.objective : NoFacilityMinMax(ctx);
}

TEST(ContinuousIflsTest, MatchesFreshSolveAfterEveryUpdate) {
  ContinuousEnv& env = ContinuousEnv::Get();
  const FacilitySets sets = env.MakeSets(11, 4, 8);
  ContinuousIfls monitor(&env.tree(), sets.existing, sets.candidates);

  Rng rng(12);
  std::vector<Client> mirror;
  std::vector<ClientId> ids;
  for (int i = 0; i < 25; ++i) {
    Client c = RandomClient(env.venue(), &rng, 0);
    ids.push_back(monitor.AddClient(c.position, c.partition));
    c.id = ids.back();
    mirror.push_back(c);
  }
  for (int step = 0; step < 12; ++step) {
    // Move a random client.
    const std::size_t idx =
        static_cast<std::size_t>(rng.NextBounded(mirror.size()));
    Client moved = RandomClient(env.venue(), &rng, mirror[idx].id);
    ASSERT_TRUE(monitor
                    .MoveClient(ids[idx], moved.position, moved.partition)
                    .ok());
    mirror[idx] = moved;
    const IflsResult answer = Unwrap(monitor.Answer());
    const double optimum = FreshOptimum(env, sets, mirror);
    if (answer.found) {
      IflsContext ctx;
      ctx.oracle = &env.tree();
      ctx.existing = sets.existing;
      ctx.candidates = sets.candidates;
      ctx.clients = mirror;
      EXPECT_NEAR(EvaluateMinMax(ctx, answer.answer), optimum,
                  kTol * std::max(1.0, optimum))
          << "step " << step;
    }
  }
}

TEST(ContinuousIflsTest, AddAndRemoveClients) {
  ContinuousEnv& env = ContinuousEnv::Get();
  const FacilitySets sets = env.MakeSets(21, 3, 6);
  ContinuousIfls monitor(&env.tree(), sets.existing, sets.candidates);
  Rng rng(22);

  EXPECT_TRUE(monitor.RemoveClient(999).IsNotFound());

  const Client a = RandomClient(env.venue(), &rng, 0);
  const ClientId id_a = monitor.AddClient(a.position, a.partition);
  const Client b = RandomClient(env.venue(), &rng, 0);
  monitor.AddClient(b.position, b.partition);
  EXPECT_EQ(monitor.num_clients(), 2u);
  ASSERT_TRUE(monitor.RemoveClient(id_a).ok());
  EXPECT_EQ(monitor.num_clients(), 1u);
  EXPECT_TRUE(monitor.RemoveClient(id_a).IsNotFound());

  const IflsResult answer = Unwrap(monitor.Answer());
  std::vector<Client> mirror = {b};
  mirror[0].id = 0;
  const double optimum = FreshOptimum(env, sets, mirror);
  if (answer.found) {
    EXPECT_NEAR(answer.objective, optimum, 1e-6 + optimum * 1e-6);
  }
}

TEST(ContinuousIflsTest, CachedAnswerServedWhenClean) {
  ContinuousEnv& env = ContinuousEnv::Get();
  const FacilitySets sets = env.MakeSets(31, 4, 8);
  ContinuousIfls monitor(&env.tree(), sets.existing, sets.candidates);
  Rng rng(32);
  for (int i = 0; i < 10; ++i) {
    const Client c = RandomClient(env.venue(), &rng, 0);
    monitor.AddClient(c.position, c.partition);
  }
  (void)Unwrap(monitor.Answer());
  const std::int64_t solves = monitor.solve_count();
  (void)Unwrap(monitor.Answer());
  (void)Unwrap(monitor.Answer());
  EXPECT_EQ(monitor.solve_count(), solves);  // no re-solve when clean
}

TEST(ContinuousIflsTest, ToleranceSkipsAreSoundAndHappen) {
  ContinuousEnv& env = ContinuousEnv::Get();
  const FacilitySets sets = env.MakeSets(41, 4, 10);
  ContinuousIfls monitor(&env.tree(), sets.existing, sets.candidates);
  Rng rng(42);
  std::vector<ClientId> ids;
  std::vector<Client> mirror;
  for (int i = 0; i < 30; ++i) {
    Client c = RandomClient(env.venue(), &rng, 0);
    ids.push_back(monitor.AddClient(c.position, c.partition));
    c.id = ids.back();
    mirror.push_back(c);
  }
  (void)Unwrap(monitor.Answer());

  constexpr double kTolerance = 0.25;
  for (int step = 0; step < 30; ++step) {
    // Nudge one client within its partition (small moves rarely change the
    // answer -> skips should fire).
    const std::size_t idx =
        static_cast<std::size_t>(rng.NextBounded(mirror.size()));
    const Partition& p = env.venue().partition(mirror[idx].partition);
    Point nudged(rng.NextUniform(p.rect.min_x, p.rect.max_x),
                 rng.NextUniform(p.rect.min_y, p.rect.max_y), p.level());
    ASSERT_TRUE(
        monitor.MoveClient(ids[idx], nudged, mirror[idx].partition).ok());
    mirror[idx].position = nudged;

    const ContinuousIfls::MonitorAnswer answer =
        Unwrap(monitor.AnswerWithin(kTolerance));
    const double optimum = FreshOptimum(env, sets, mirror);
    ASSERT_TRUE(answer.result.found);
    // Soundness: the served answer is within tolerance of optimal.
    IflsContext ctx;
    ctx.oracle = &env.tree();
    ctx.existing = sets.existing;
    ctx.candidates = sets.candidates;
    ctx.clients = mirror;
    EXPECT_LE(EvaluateMinMax(ctx, answer.result.answer),
              (1.0 + kTolerance) * optimum + kTol)
        << "step " << step;
  }
  EXPECT_GT(monitor.skip_count(), 0) << "no skip ever fired";
  EXPECT_LT(monitor.solve_count(), 31) << "skips should avoid some solves";
}

TEST(ContinuousIflsTest, ZeroToleranceStillExact) {
  ContinuousEnv& env = ContinuousEnv::Get();
  const FacilitySets sets = env.MakeSets(51, 3, 7);
  ContinuousIfls monitor(&env.tree(), sets.existing, sets.candidates);
  Rng rng(52);
  std::vector<Client> mirror;
  std::vector<ClientId> ids;
  for (int i = 0; i < 15; ++i) {
    Client c = RandomClient(env.venue(), &rng, 0);
    ids.push_back(monitor.AddClient(c.position, c.partition));
    c.id = ids.back();
    mirror.push_back(c);
  }
  for (int step = 0; step < 8; ++step) {
    const std::size_t idx =
        static_cast<std::size_t>(rng.NextBounded(mirror.size()));
    Client moved = RandomClient(env.venue(), &rng, mirror[idx].id);
    ASSERT_TRUE(
        monitor.MoveClient(ids[idx], moved.position, moved.partition).ok());
    mirror[idx] = moved;
    const auto answer = Unwrap(monitor.AnswerWithin(0.0));
    const double optimum = FreshOptimum(env, sets, mirror);
    if (answer.result.found) {
      IflsContext ctx;
      ctx.oracle = &env.tree();
      ctx.existing = sets.existing;
      ctx.candidates = sets.candidates;
      ctx.clients = mirror;
      EXPECT_NEAR(EvaluateMinMax(ctx, answer.result.answer), optimum,
                  kTol * std::max(1.0, optimum));
    }
  }
  EXPECT_TRUE(monitor.AnswerWithin(-0.5).status().IsInvalidArgument());
}

// Property: the certified lower bound L = max_i min(nef_i, nc_i) must never
// exceed what an actual re-solve achieves — for any crowd reached by random
// moves and any facility sets reached by random mutations. A violation
// would make AnswerWithin's skip rule unsound (it could certify a stale
// answer as within-tolerance when a better candidate exists).
class ContinuousLowerBoundTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContinuousLowerBoundTest, CertifiedBoundNeverViolatedByResolve) {
  ContinuousEnv& env = ContinuousEnv::Get();
  Rng rng(GetParam());
  FacilitySets sets = env.MakeSets(GetParam(), 3 + rng.NextBounded(3),
                                   5 + rng.NextBounded(6));
  ContinuousIfls monitor(&env.tree(), sets.existing, sets.candidates);
  std::sort(sets.existing.begin(), sets.existing.end());
  std::sort(sets.candidates.begin(), sets.candidates.end());

  std::vector<Client> mirror;
  std::vector<ClientId> ids;
  for (int i = 0; i < 12; ++i) {
    Client c = RandomClient(env.venue(), &rng, 0);
    ids.push_back(monitor.AddClient(c.position, c.partition));
    c.id = ids.back();
    mirror.push_back(c);
  }
  (void)Unwrap(monitor.Answer());

  const auto mirror_insert = [](std::vector<PartitionId>* v, PartitionId p) {
    v->insert(std::upper_bound(v->begin(), v->end(), p), p);
  };
  const auto mirror_erase = [](std::vector<PartitionId>* v, PartitionId p) {
    v->erase(std::find(v->begin(), v->end(), p));
  };

  for (int step = 0; step < 40; ++step) {
    // Random event: move a client or mutate a facility set.
    switch (rng.NextBounded(5)) {
      case 0:
      case 1:
      case 2: {  // move
        const std::size_t idx =
            static_cast<std::size_t>(rng.NextBounded(mirror.size()));
        const Client moved = RandomClient(env.venue(), &rng, mirror[idx].id);
        ASSERT_TRUE(
            monitor.MoveClient(ids[idx], moved.position, moved.partition)
                .ok());
        mirror[idx].position = moved.position;
        mirror[idx].partition = moved.partition;
        break;
      }
      case 3: {  // candidate churn
        const auto p = static_cast<PartitionId>(
            rng.NextBounded(env.venue().num_partitions()));
        if (monitor.AddCandidateFacility(p).ok()) {
          mirror_insert(&sets.candidates, p);
        } else if (monitor.RemoveCandidateFacility(p).ok()) {
          mirror_erase(&sets.candidates, p);
        }
        break;
      }
      default: {  // existing churn
        const auto p = static_cast<PartitionId>(
            rng.NextBounded(env.venue().num_partitions()));
        if (monitor.AddExistingFacility(p).ok()) {
          mirror_insert(&sets.existing, p);
        } else if (monitor.RemoveExistingFacility(p).ok()) {
          mirror_erase(&sets.existing, p);
        }
        break;
      }
    }

    // The bound must hold *before* the monitor re-solves: it is what the
    // skip decision reads.
    const double bound = monitor.certified_lower_bound();
    const double optimum = FreshOptimum(env, sets, mirror);
    EXPECT_LE(bound, optimum + kTol * std::max(1.0, optimum))
        << "step " << step << ": certified bound above a real re-solve";

    // And the served answer (skip or re-solve) must stay exact: tolerance 0
    // only skips when f(cached) <= L <= optimum.
    const auto answer = Unwrap(monitor.AnswerWithin(0.0));
    if (answer.result.found) {
      IflsContext ctx;
      ctx.oracle = &env.tree();
      ctx.existing = sets.existing;
      ctx.candidates = sets.candidates;
      ctx.clients = mirror;
      EXPECT_NEAR(EvaluateMinMax(ctx, answer.result.answer), optimum,
                  kTol * std::max(1.0, optimum))
          << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContinuousLowerBoundTest,
                         ::testing::Range<std::uint64_t>(71, 77));

TEST(ContinuousIflsTest, FacilityMutationsValidateAndStayConsistent) {
  ContinuousEnv& env = ContinuousEnv::Get();
  const FacilitySets sets = env.MakeSets(81, 3, 5);
  ContinuousIfls monitor(&env.tree(), sets.existing, sets.candidates);
  Rng rng(82);
  for (int i = 0; i < 8; ++i) {
    const Client c = RandomClient(env.venue(), &rng, 0);
    monitor.AddClient(c.position, c.partition);
  }
  (void)Unwrap(monitor.Answer());

  const PartitionId existing = sets.existing.front();
  const PartitionId candidate = sets.candidates.front();
  EXPECT_TRUE(monitor.AddExistingFacility(existing).IsAlreadyExists());
  EXPECT_TRUE(monitor.AddCandidateFacility(candidate).IsAlreadyExists());
  EXPECT_TRUE(monitor.AddExistingFacility(candidate).IsFailedPrecondition());
  EXPECT_TRUE(monitor.AddCandidateFacility(existing).IsFailedPrecondition());
  EXPECT_TRUE(monitor.RemoveExistingFacility(candidate).IsNotFound());
  EXPECT_TRUE(monitor.RemoveCandidateFacility(existing).IsNotFound());
  EXPECT_TRUE(
      monitor.AddExistingFacility(kInvalidPartition).IsInvalidArgument());

  // Removing the cached answer itself must invalidate and re-solve.
  const IflsResult before = Unwrap(monitor.Answer());
  ASSERT_TRUE(before.found);
  const std::int64_t solves = monitor.solve_count();
  ASSERT_TRUE(monitor.RemoveCandidateFacility(before.answer).ok());
  const IflsResult after = Unwrap(monitor.Answer());
  EXPECT_GT(monitor.solve_count(), solves);
  if (after.found) EXPECT_NE(after.answer, before.answer);
}

TEST(ContinuousIflsTest, DrivesOffTrajectories) {
  ContinuousEnv& env = ContinuousEnv::Get();
  const FacilitySets sets = env.MakeSets(61, 4, 8);
  TrajectoryOptions topts;
  topts.ticks = 10;
  Rng rng(62);
  const std::vector<Trajectory> trajectories =
      Unwrap(GenerateTrajectories(env.tree(), 12, topts, &rng));

  ContinuousIfls monitor(&env.tree(), sets.existing, sets.candidates);
  std::vector<ClientId> ids;
  for (const Trajectory& t : trajectories) {
    ids.push_back(monitor.AddClient(t[0].position, t[0].partition));
  }
  for (std::size_t tick = 1; tick < topts.ticks; ++tick) {
    for (std::size_t agent = 0; agent < trajectories.size(); ++agent) {
      const TrajectoryPoint& p = trajectories[agent][tick];
      ASSERT_TRUE(monitor.MoveClient(ids[agent], p.position, p.partition)
                      .ok())
          << "agent " << agent << " tick " << tick;
    }
    const auto answer = Unwrap(monitor.AnswerWithin(0.2));
    EXPECT_TRUE(answer.result.found || answer.result.objective >= 0.0);
  }
}

}  // namespace
}  // namespace ifls
