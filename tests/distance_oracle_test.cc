// Backend-equivalence tests of the DistanceOracle interface: every solver
// must produce the same answers whether the context's oracle is the
// materialized VIP-tree, the memoized door-graph oracle, or the
// index-free brute-force oracle. The three backends share no code on their
// DoorToDoor paths, so agreement here certifies both the distance semantics
// and the degenerate (single-node) hierarchy defaults the flat backends
// inherit from the interface.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/brute_force.h"
#include "src/core/efficient.h"
#include "src/core/maxsum.h"
#include "src/core/mindist.h"
#include "src/core/minmax_baseline.h"
#include "src/index/brute_force_oracle.h"
#include "src/index/graph_oracle.h"
#include "src/index/nn_search.h"
#include "src/index/vip_tree.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::BuildTinyVenue;
using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::TinyVenue;
using testing_util::Unwrap;

constexpr double kTol = 1e-9;

/// Shared fixture state: one venue, all three oracle backends over it.
class OracleBackends {
 public:
  static OracleBackends& Get() {
    static OracleBackends* instance = new OracleBackends();
    return *instance;
  }

  const Venue& venue() const { return venue_; }
  const VipTree& tree() const { return *tree_; }
  const GraphDistanceOracle& graph() const { return *graph_; }
  const BruteForceOracle& brute() const { return *brute_; }

  std::vector<const DistanceOracle*> all() const {
    return {tree_.get(), graph_.get(), brute_.get()};
  }

 private:
  OracleBackends() {
    venue_ = Unwrap(GenerateVenue(SmallVenueSpec()));
    tree_ = std::make_unique<VipTree>(Unwrap(VipTree::Build(&venue_)));
    graph_ = std::make_unique<GraphDistanceOracle>(&venue_);
    brute_ = std::make_unique<BruteForceOracle>(&venue_);
  }
  Venue venue_;
  std::unique_ptr<VipTree> tree_;
  std::unique_ptr<GraphDistanceOracle> graph_;
  std::unique_ptr<BruteForceOracle> brute_;
};

IflsContext MakeContext(const DistanceOracle* oracle, std::uint64_t seed,
                        std::size_t num_existing, std::size_t num_candidates,
                        std::size_t num_clients) {
  OracleBackends& env = OracleBackends::Get();
  Rng rng(seed);
  IflsContext ctx;
  ctx.oracle = oracle;
  FacilitySets sets = Unwrap(SelectUniformFacilities(
      env.venue(), num_existing, num_candidates, &rng));
  ctx.existing = std::move(sets.existing);
  ctx.candidates = std::move(sets.candidates);
  for (std::size_t i = 0; i < num_clients; ++i) {
    ctx.clients.push_back(
        RandomClient(env.venue(), &rng, static_cast<ClientId>(i)));
  }
  return ctx;
}

// ------------------------------------------------------------------ distances

TEST(DistanceOracleTest, BackendsAgreeOnDoorToDoor) {
  OracleBackends& env = OracleBackends::Get();
  Rng rng(11);
  for (int i = 0; i < 60; ++i) {
    const auto a =
        static_cast<DoorId>(rng.NextBounded(env.venue().num_doors()));
    const auto b =
        static_cast<DoorId>(rng.NextBounded(env.venue().num_doors()));
    const double expect = env.graph().DoorToDoor(a, b);
    EXPECT_NEAR(env.tree().DoorToDoor(a, b), expect, kTol);
    EXPECT_NEAR(env.brute().DoorToDoor(a, b), expect, kTol);
  }
}

TEST(DistanceOracleTest, BackendsAgreeOnPointQueries) {
  OracleBackends& env = OracleBackends::Get();
  Rng rng(12);
  for (int i = 0; i < 40; ++i) {
    const Client a = RandomClient(env.venue(), &rng, 0);
    const Client b = RandomClient(env.venue(), &rng, 1);
    const auto target = static_cast<PartitionId>(
        rng.NextBounded(env.venue().num_partitions()));
    const double p2p_expect = env.graph().PointToPoint(
        a.position, a.partition, b.position, b.partition);
    EXPECT_NEAR(env.tree().PointToPoint(a.position, a.partition, b.position,
                                        b.partition),
                p2p_expect, kTol);
    EXPECT_NEAR(env.brute().PointToPoint(a.position, a.partition, b.position,
                                         b.partition),
                p2p_expect, kTol);
    const double p2part_expect =
        env.graph().PointToPartition(a.position, a.partition, target);
    EXPECT_NEAR(env.tree().PointToPartition(a.position, a.partition, target),
                p2part_expect, kTol);
    EXPECT_NEAR(env.brute().PointToPartition(a.position, a.partition, target),
                p2part_expect, kTol);
  }
}

// ------------------------------------------------------- degenerate hierarchy

TEST(DistanceOracleTest, FlatBackendsExposeSingleNodeHierarchy) {
  OracleBackends& env = OracleBackends::Get();
  for (const DistanceOracle* oracle :
       {static_cast<const DistanceOracle*>(&env.graph()),
        static_cast<const DistanceOracle*>(&env.brute())}) {
    EXPECT_EQ(oracle->num_nodes(), 1u);
    EXPECT_EQ(oracle->root(), 0);
    EXPECT_TRUE(oracle->IsLeaf(oracle->root()));
    EXPECT_EQ(oracle->Parent(oracle->root()), kInvalidNode);
    EXPECT_TRUE(oracle->Children(oracle->root()).empty());
    // The root "leaf" contains every partition, in id order.
    const std::span<const PartitionId> parts =
        oracle->NodePartitions(oracle->root());
    ASSERT_EQ(parts.size(), env.venue().num_partitions());
    for (std::size_t p = 0; p < parts.size(); ++p) {
      EXPECT_EQ(parts[p], static_cast<PartitionId>(p));
      EXPECT_EQ(oracle->LeafOf(static_cast<PartitionId>(p)), oracle->root());
      EXPECT_TRUE(oracle->NodeContainsPartition(
          oracle->root(), static_cast<PartitionId>(p)));
    }
    // Containment makes every node-level lower bound zero.
    EXPECT_EQ(oracle->PartitionToNode(0, oracle->root()), 0.0);
  }
}

// -------------------------------------------------------------- NN search

TEST(DistanceOracleTest, NearestFacilityAgreesAcrossBackends) {
  OracleBackends& env = OracleBackends::Get();
  Rng rng(13);
  FacilitySets sets =
      Unwrap(SelectUniformFacilities(env.venue(), 4, 0, &rng));
  FacilityIndex tree_index(&env.tree(), sets.existing);
  FacilityIndex graph_index(&env.graph(), sets.existing);
  for (int i = 0; i < 25; ++i) {
    const Client c = RandomClient(env.venue(), &rng, i);
    const auto from_tree =
        NearestFacility(tree_index, c.position, c.partition,
                        FacilityFilter::kExistingOnly, nullptr);
    const auto from_graph =
        NearestFacility(graph_index, c.position, c.partition,
                        FacilityFilter::kExistingOnly, nullptr);
    ASSERT_EQ(from_tree.has_value(), from_graph.has_value());
    if (from_tree.has_value()) {
      EXPECT_NEAR(from_tree->distance, from_graph->distance, kTol);
      EXPECT_EQ(from_tree->facility, from_graph->facility);
    }
  }
}

// ---------------------------------------------------------------- solvers

class SolverEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {
};

/// Every solver, every backend: identical found/answer and matching
/// objectives. The VIP-tree context is the reference.
TEST_P(SolverEquivalenceTest, AllSolversAgreeAcrossBackends) {
  const std::uint64_t seed = GetParam();
  OracleBackends& env = OracleBackends::Get();

  const IflsContext ref_ctx = MakeContext(&env.tree(), seed, 3, 4, 10);
  struct Solved {
    IflsResult minmax, baseline, mindist, maxsum;
  };
  auto solve_all = [&](const DistanceOracle* oracle) {
    IflsContext ctx = ref_ctx;
    ctx.oracle = oracle;
    Solved s;
    s.minmax = Unwrap(SolveEfficient(ctx));
    s.baseline = Unwrap(SolveModifiedMinMax(ctx));
    s.mindist = Unwrap(SolveMinDist(ctx));
    s.maxsum = Unwrap(SolveMaxSum(ctx));
    return s;
  };

  const Solved ref = solve_all(&env.tree());
  for (const DistanceOracle* oracle :
       {static_cast<const DistanceOracle*>(&env.graph()),
        static_cast<const DistanceOracle*>(&env.brute())}) {
    const Solved got = solve_all(oracle);
    EXPECT_EQ(got.minmax.found, ref.minmax.found);
    EXPECT_EQ(got.minmax.answer, ref.minmax.answer);
    EXPECT_NEAR(got.minmax.objective, ref.minmax.objective, kTol);
    EXPECT_EQ(got.baseline.found, ref.baseline.found);
    EXPECT_EQ(got.baseline.answer, ref.baseline.answer);
    EXPECT_NEAR(got.baseline.objective, ref.baseline.objective, kTol);
    EXPECT_EQ(got.mindist.found, ref.mindist.found);
    EXPECT_EQ(got.mindist.answer, ref.mindist.answer);
    EXPECT_NEAR(got.mindist.objective, ref.mindist.objective, kTol);
    EXPECT_EQ(got.maxsum.found, ref.maxsum.found);
    EXPECT_EQ(got.maxsum.answer, ref.maxsum.answer);
    EXPECT_NEAR(got.maxsum.objective, ref.maxsum.objective, kTol);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverEquivalenceTest,
                         ::testing::Values(101, 202, 303, 404, 505));

/// The brute-force reference solver certifies the efficient answer under a
/// non-tree backend too (the traversal degenerates to one root expansion).
TEST(DistanceOracleTest, EfficientMatchesBruteForceOnGraphBackend) {
  OracleBackends& env = OracleBackends::Get();
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    IflsContext ctx = MakeContext(&env.graph(), seed, 2, 5, 8);
    const IflsResult fast = Unwrap(SolveEfficient(ctx));
    const IflsResult slow = Unwrap(SolveBruteForceMinMax(ctx));
    EXPECT_EQ(fast.found, slow.found);
    if (fast.found) {
      EXPECT_NEAR(EvaluateMinMax(ctx, fast.answer),
                  EvaluateMinMax(ctx, slow.answer), kTol);
    }
  }
}

/// Small hand-built venue: exact distances through doors are easy to verify
/// against the known layout for all three backends.
TEST(DistanceOracleTest, TinyVenueKnownDistances) {
  TinyVenue t = BuildTinyVenue();
  VipTree tree = Unwrap(VipTree::Build(&t.venue));
  GraphDistanceOracle graph(&t.venue);
  BruteForceOracle brute(&t.venue);
  // door_a (10,2,0) -> door_b (20,2,0) through the corridor: 10 metres.
  for (const DistanceOracle* oracle :
       {static_cast<const DistanceOracle*>(&tree),
        static_cast<const DistanceOracle*>(&graph),
        static_cast<const DistanceOracle*>(&brute)}) {
    EXPECT_NEAR(oracle->DoorToDoor(t.door_a, t.door_b), 10.0, kTol);
    EXPECT_EQ(oracle->DoorToDoor(t.door_c, t.door_c), 0.0);
    EXPECT_NEAR(oracle->PartitionToPartition(t.room_a, t.room_b), 10.0, kTol);
  }
}

}  // namespace
}  // namespace ifls
