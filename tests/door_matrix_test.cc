#include "src/index/door_matrix.h"

#include <gtest/gtest.h>

#include "src/graph/dijkstra.h"

namespace ifls {
namespace {

TEST(DoorMatrixTest, EmptyMatrix) {
  DoorMatrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.num_rows(), 0u);
  EXPECT_EQ(m.num_cols(), 0u);
  EXPECT_EQ(m.MemoryFootprintBytes(), 0u);
}

TEST(DoorMatrixTest, IndexLookups) {
  DoorMatrix m({2, 5, 9}, {1, 9}, /*store_first_hop=*/true);
  EXPECT_EQ(m.num_rows(), 3u);
  EXPECT_EQ(m.num_cols(), 2u);
  EXPECT_EQ(m.RowIndex(5), 1);
  EXPECT_EQ(m.RowIndex(9), 2);
  EXPECT_EQ(m.RowIndex(3), -1);
  EXPECT_EQ(m.ColIndex(1), 0);
  EXPECT_EQ(m.ColIndex(2), -1);
  EXPECT_TRUE(m.HasRow(2));
  EXPECT_FALSE(m.HasRow(1));
  EXPECT_TRUE(m.HasCol(9));
}

TEST(DoorMatrixTest, SetAndGet) {
  DoorMatrix m({0, 1}, {0, 1, 2}, /*store_first_hop=*/true);
  m.Set(0, 2, 4.5, 7);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 4.5);
  EXPECT_EQ(m.FirstHopAt(0, 2), 7);
  EXPECT_DOUBLE_EQ(m.Distance(0, 2), 4.5);
  // Unset cells are infinite / invalid.
  EXPECT_EQ(m.At(1, 1), kInfDistance);
  EXPECT_EQ(m.FirstHopAt(1, 1), kInvalidDoor);
}

TEST(DoorMatrixTest, WithoutFirstHopStorage) {
  DoorMatrix m({0, 1}, {0, 1}, /*store_first_hop=*/false);
  m.Set(0, 1, 2.0, 5);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);
  EXPECT_EQ(m.FirstHopAt(0, 1), kInvalidDoor);  // dropped by design
}

TEST(DoorMatrixTest, FillRowFromShortestPaths) {
  DoorMatrix m({3}, {0, 1, 2}, /*store_first_hop=*/true);
  ShortestPaths paths;
  paths.distance = {10.0, 20.0, kInfDistance, 0.0};
  paths.first_hop = {1, 1, kInvalidDoor, kInvalidDoor};
  paths.predecessor = {kInvalidDoor, kInvalidDoor, kInvalidDoor,
                       kInvalidDoor};
  m.FillRowFromShortestPaths(3, paths);
  EXPECT_DOUBLE_EQ(m.Distance(3, 0), 10.0);
  EXPECT_DOUBLE_EQ(m.Distance(3, 1), 20.0);
  EXPECT_EQ(m.Distance(3, 2), kInfDistance);
  EXPECT_EQ(m.FirstHopAt(0, 0), 1);
}

TEST(DoorMatrixTest, MemoryFootprintScalesWithSize) {
  DoorMatrix small({0, 1}, {0, 1}, true);
  DoorMatrix large({0, 1, 2, 3, 4, 5, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7}, true);
  EXPECT_GT(large.MemoryFootprintBytes(), small.MemoryFootprintBytes());
}

}  // namespace
}  // namespace ifls
