#ifndef IFLS_TESTS_TEST_UTIL_H_
#define IFLS_TESTS_TEST_UTIL_H_

#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/datasets/client_generator.h"
#include "src/datasets/facility_selector.h"
#include "src/datasets/venue_generator.h"
#include "src/indoor/venue.h"
#include "src/indoor/venue_builder.h"
#include "src/index/vip_tree.h"

namespace ifls {
namespace testing_util {

/// Unwraps a Result in tests, aborting with the status message on error.
template <typename T>
T Unwrap(Result<T> result) {
  IFLS_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Hand-built 6-partition venue used by the fine-grained unit tests:
///
///   level 0:   [room A][corridor H][room B]
///                         |
///   (door to)          [room C]
///   level 1:   [room D] -- stairwell over H
///
/// Exact layout: corridor H (10..20, 0..4); A (0..10, 0..4); B (20..30,
/// 0..4); C (10..20, -6..0); stairwell S0 (14..18, 4..8) attached to H;
/// stairwell S1 stacked on level 1 with room D (0..14, 4..8) beside it.
struct TinyVenue {
  Venue venue;
  PartitionId room_a, room_b, room_c, room_d, corridor, stair0, stair1;
  DoorId door_a, door_b, door_c, door_s0, door_stair, door_d;
};

inline TinyVenue BuildTinyVenue() {
  TinyVenue t;
  VenueBuilder b("tiny");
  t.room_a = b.AddPartition(Rect(0, 0, 10, 4, 0), PartitionKind::kRoom);
  t.corridor =
      b.AddPartition(Rect(10, 0, 20, 4, 0), PartitionKind::kCorridor);
  t.room_b = b.AddPartition(Rect(20, 0, 30, 4, 0), PartitionKind::kRoom);
  t.room_c = b.AddPartition(Rect(10, -6, 20, 0, 0), PartitionKind::kRoom);
  t.stair0 =
      b.AddPartition(Rect(14, 4, 18, 8, 0), PartitionKind::kStairwell);
  t.stair1 =
      b.AddPartition(Rect(14, 4, 18, 8, 1), PartitionKind::kStairwell);
  t.room_d = b.AddPartition(Rect(0, 4, 14, 8, 1), PartitionKind::kRoom);
  t.door_a = b.AddDoor(t.room_a, t.corridor, Point(10, 2, 0));
  t.door_b = b.AddDoor(t.room_b, t.corridor, Point(20, 2, 0));
  t.door_c = b.AddDoor(t.room_c, t.corridor, Point(15, 0, 0));
  t.door_s0 = b.AddDoor(t.stair0, t.corridor, Point(16, 4, 0));
  t.door_stair = b.AddStairDoor(t.stair0, t.stair1, Point(16, 6, 0), 8.0);
  t.door_d = b.AddDoor(t.room_d, t.stair1, Point(14, 6, 1));
  t.venue = Unwrap(b.Build());
  return t;
}

/// Small two-level generated venue for property sweeps: fast to index,
/// non-trivial topology (2 levels, 2 corridors/level, stairs).
inline VenueGeneratorSpec SmallVenueSpec() {
  VenueGeneratorSpec spec;
  spec.name = "small";
  spec.levels = 2;
  spec.rooms_per_level = 24;
  spec.rooms_per_corridor_side = 6;
  spec.room_width = 5.0;
  spec.room_depth = 7.0;
  spec.corridor_width = 3.0;
  spec.stairwells = 1;
  spec.stair_length = 9.0;
  return spec;
}

/// Uniform random point inside a random non-stairwell partition.
inline Client RandomClient(const Venue& venue, Rng* rng, ClientId id) {
  for (;;) {
    const auto pid = static_cast<PartitionId>(
        rng->NextBounded(venue.num_partitions()));
    const Partition& p = venue.partition(pid);
    if (p.kind == PartitionKind::kStairwell) continue;
    Client c;
    c.id = id;
    c.partition = pid;
    c.position = Point(rng->NextUniform(p.rect.min_x, p.rect.max_x),
                       rng->NextUniform(p.rect.min_y, p.rect.max_y),
                       p.level());
    return c;
  }
}

}  // namespace testing_util
}  // namespace ifls

#endif  // IFLS_TESTS_TEST_UTIL_H_
