// Concurrent-reader guarantees of the serialized VIP-tree: after a
// Save/Load round trip, many threads may load their own copies and query
// one shared loaded instance simultaneously, and every distance/solver
// answer must equal the single-threaded truth. This exercises the sharded
// lock-free door-distance cache, the atomic counter aggregate, and the
// call_once memoization under real contention.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/batch_engine.h"
#include "src/core/efficient.h"
#include "src/index/graph_oracle.h"
#include "src/index/vip_tree.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

constexpr int kThreads = 8;

struct Fixture {
  Venue venue;
  std::string blob;                // serialized index
  std::unique_ptr<VipTree> tree;   // loaded once, shared by reader threads
  std::vector<std::pair<Client, Client>> pairs;
  std::vector<double> truth;       // single-threaded PointToPoint answers
};

Fixture BuildFixture() {
  Fixture f;
  f.venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&f.venue));
  std::stringstream stream;
  EXPECT_TRUE(built.Save(&stream).ok());
  f.blob = stream.str();

  std::stringstream in(f.blob);
  f.tree = std::make_unique<VipTree>(Unwrap(VipTree::Load(&f.venue, &in)));

  Rng rng(2026);
  for (int i = 0; i < 120; ++i) {
    f.pairs.emplace_back(RandomClient(f.venue, &rng, 0),
                         RandomClient(f.venue, &rng, 1));
  }
  for (const auto& [a, b] : f.pairs) {
    f.truth.push_back(f.tree->PointToPoint(a.position, a.partition,
                                           b.position, b.partition));
  }
  return f;
}

TEST(VipTreeIoConcurrentTest, ParallelLoadersMatchSingleThreadedAnswers) {
  Fixture f = BuildFixture();
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&f, &mismatches] {
      // Each thread deserializes its own instance from the shared bytes...
      std::stringstream in(f.blob);
      Result<VipTree> loaded = VipTree::Load(&f.venue, &in);
      if (!loaded.ok()) {
        mismatches.fetch_add(1000);
        return;
      }
      const VipTree tree = std::move(loaded).value();
      // ...and must reproduce the single-threaded distances exactly.
      for (std::size_t i = 0; i < f.pairs.size(); ++i) {
        const auto& [a, b] = f.pairs[i];
        const double d = tree.PointToPoint(a.position, a.partition,
                                           b.position, b.partition);
        if (d != f.truth[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(VipTreeIoConcurrentTest, SharedLoadedTreeServesConcurrentReaders) {
  Fixture f = BuildFixture();
  // Start from a cold cache so the concurrent readers race on inserts.
  f.tree->ClearDistanceCache();
  f.tree->ResetCounters();
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&f, &mismatches, t] {
      // Stagger starting offsets so threads collide on different keys.
      for (std::size_t k = 0; k < f.pairs.size(); ++k) {
        const std::size_t i = (k + static_cast<std::size_t>(t) * 17) %
                              f.pairs.size();
        const auto& [a, b] = f.pairs[i];
        const double d = f.tree->PointToPoint(a.position, a.partition,
                                              b.position, b.partition);
        if (d != f.truth[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Without a per-thread sink installed the tree-wide atomic aggregate
  // picked up every thread's lookups.
  EXPECT_GT(f.tree->counters().matrix_lookups, 0u);
}

TEST(VipTreeIoConcurrentTest, ConcurrentSolversOnLoadedTreeAgree) {
  Fixture f = BuildFixture();
  Rng rng(7);
  IflsContext ctx;
  ctx.oracle = f.tree.get();
  FacilitySets sets = Unwrap(SelectUniformFacilities(f.venue, 3, 6, &rng));
  ctx.existing = std::move(sets.existing);
  ctx.candidates = std::move(sets.candidates);
  for (int i = 0; i < 30; ++i) {
    ctx.clients.push_back(RandomClient(f.venue, &rng, i));
  }
  const IflsResult truth = Unwrap(SolveEfficient(ctx));

  std::vector<BatchQuery> batch(
      static_cast<std::size_t>(2 * kThreads),
      BatchQuery{IflsObjective::kMinMax, ctx});
  BatchEngineOptions opts;
  opts.num_threads = kThreads;
  BatchQueryEngine engine(opts);
  const std::vector<BatchQueryOutcome> outcomes = engine.Run(batch);
  for (const BatchQueryOutcome& o : outcomes) {
    ASSERT_TRUE(o.status.ok());
    EXPECT_EQ(o.result.found, truth.found);
    EXPECT_EQ(o.result.answer, truth.answer);
    EXPECT_EQ(o.result.objective, truth.objective);
    EXPECT_EQ(o.result.stats.distance_computations,
              truth.stats.distance_computations);
  }
}

TEST(VipTreeIoConcurrentTest, ParallelBuildIsByteIdenticalToSequential) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTreeOptions sequential_opts;
  sequential_opts.build_threads = 1;
  VipTreeOptions parallel_opts;
  parallel_opts.build_threads = 4;
  const VipTree sequential =
      Unwrap(VipTree::Build(&venue, sequential_opts));
  const VipTree parallel = Unwrap(VipTree::Build(&venue, parallel_opts));
  // Each door's matrix row comes from its own Dijkstra run, so thread
  // scheduling cannot change a single byte of the serialized index.
  std::stringstream a;
  std::stringstream b;
  ASSERT_TRUE(sequential.Save(&a).ok());
  ASSERT_TRUE(parallel.Save(&b).ok());
  EXPECT_EQ(a.str(), b.str());
}

TEST(VipTreeIoConcurrentTest, GraphOracleMemoizesOnceUnderContention) {
  Fixture f = BuildFixture();
  GraphDistanceOracle oracle(&f.venue);
  const DoorId source = 0;
  const std::size_t num_doors = f.venue.num_doors();
  std::vector<std::vector<double>> per_thread(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&oracle, &per_thread, num_doors, t] {
      for (DoorId d = 0; d < static_cast<DoorId>(num_doors); ++d) {
        per_thread[static_cast<std::size_t>(t)].push_back(
            oracle.DoorToDoor(source, d));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[static_cast<std::size_t>(t)], per_thread[0]);
  }
  // call_once collapsed the racing threads to one Dijkstra per source.
  EXPECT_EQ(oracle.num_sssp_runs(), 1u);
}

}  // namespace
}  // namespace ifls
