#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/core/brute_force.h"
#include "src/core/maxsum.h"
#include "src/core/mindist.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

constexpr double kTol = 1e-7;

class ExtensionEnv {
 public:
  static ExtensionEnv& Get() {
    static ExtensionEnv* env = new ExtensionEnv();
    return *env;
  }
  const Venue& venue() const { return venue_; }
  const VipTree& tree() const { return *tree_; }

 private:
  ExtensionEnv() {
    venue_ = Unwrap(GenerateVenue(SmallVenueSpec()));
    tree_ = std::make_unique<VipTree>(Unwrap(VipTree::Build(&venue_)));
  }
  Venue venue_;
  std::unique_ptr<VipTree> tree_;
};

IflsContext RandomContext(std::uint64_t seed, std::size_t num_existing,
                          std::size_t num_candidates,
                          std::size_t num_clients) {
  ExtensionEnv& env = ExtensionEnv::Get();
  Rng rng(seed);
  IflsContext ctx;
  ctx.oracle = &env.tree();
  FacilitySets sets = Unwrap(SelectUniformFacilities(
      env.venue(), num_existing, num_candidates, &rng));
  ctx.existing = std::move(sets.existing);
  ctx.candidates = std::move(sets.candidates);
  for (std::size_t i = 0; i < num_clients; ++i) {
    ctx.clients.push_back(
        RandomClient(env.venue(), &rng, static_cast<ClientId>(i)));
  }
  return ctx;
}

struct TrialParam {
  std::uint64_t seed;
  std::size_t existing;
  std::size_t candidates;
  std::size_t clients;
};

class MinDistAgreementTest : public ::testing::TestWithParam<TrialParam> {};

TEST_P(MinDistAgreementTest, MatchesBruteForceOptimum) {
  const TrialParam p = GetParam();
  const IflsContext ctx =
      RandomContext(p.seed, p.existing, p.candidates, p.clients);
  const IflsResult brute = Unwrap(SolveBruteForceMinDist(ctx));
  for (bool grouped : {true, false}) {
    MinDistOptions options;
    options.group_clients = grouped;
    const IflsResult result = Unwrap(SolveMinDist(ctx, options));
    SCOPED_TRACE(grouped ? "grouped" : "ungrouped");
    ASSERT_EQ(result.found, brute.found);
    if (!result.found) continue;
    // The solver's answer must achieve the optimal total, and its reported
    // objective must be that exact total.
    const double achieved = EvaluateMinDist(ctx, result.answer);
    EXPECT_NEAR(achieved, brute.objective,
                kTol * std::max(1.0, brute.objective));
    EXPECT_NEAR(result.objective, achieved,
                kTol * std::max(1.0, achieved));
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrials, MinDistAgreementTest,
    ::testing::Values(TrialParam{601, 3, 6, 30}, TrialParam{602, 5, 10, 50},
                      TrialParam{603, 8, 12, 70}, TrialParam{604, 2, 4, 20},
                      TrialParam{605, 6, 9, 40}, TrialParam{606, 1, 15, 60},
                      TrialParam{607, 12, 5, 25}, TrialParam{608, 4, 8, 80}));

class MaxSumAgreementTest : public ::testing::TestWithParam<TrialParam> {};

TEST_P(MaxSumAgreementTest, MatchesBruteForceOptimum) {
  const TrialParam p = GetParam();
  const IflsContext ctx =
      RandomContext(p.seed, p.existing, p.candidates, p.clients);
  const IflsResult brute = Unwrap(SolveBruteForceMaxSum(ctx));
  for (bool grouped : {true, false}) {
    MaxSumOptions options;
    options.group_clients = grouped;
    const IflsResult result = Unwrap(SolveMaxSum(ctx, options));
    SCOPED_TRACE(grouped ? "grouped" : "ungrouped");
    ASSERT_EQ(result.found, brute.found);
    if (!result.found) continue;
    const double achieved = EvaluateMaxSum(ctx, result.answer);
    EXPECT_NEAR(achieved, brute.objective, 1e-9);
    EXPECT_NEAR(result.objective, achieved, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrials, MaxSumAgreementTest,
    ::testing::Values(TrialParam{701, 3, 6, 30}, TrialParam{702, 5, 10, 50},
                      TrialParam{703, 8, 12, 70}, TrialParam{704, 2, 4, 20},
                      TrialParam{705, 6, 9, 40}, TrialParam{706, 1, 15, 60},
                      TrialParam{707, 12, 5, 25}, TrialParam{708, 4, 8, 80}));

TEST(ExtensionDegenerateTest, EmptyCandidates) {
  IflsContext ctx = RandomContext(801, 4, 5, 20);
  ctx.candidates.clear();
  EXPECT_FALSE(Unwrap(SolveMinDist(ctx)).found);
  EXPECT_FALSE(Unwrap(SolveMaxSum(ctx)).found);
}

TEST(ExtensionDegenerateTest, EmptyClientsEveryCandidateTies) {
  IflsContext ctx = RandomContext(802, 4, 5, 20);
  ctx.clients.clear();
  const IflsResult mindist = Unwrap(SolveMinDist(ctx));
  ASSERT_TRUE(mindist.found);
  EXPECT_DOUBLE_EQ(mindist.objective, 0.0);
  const IflsResult maxsum = Unwrap(SolveMaxSum(ctx));
  ASSERT_TRUE(maxsum.found);
  EXPECT_DOUBLE_EQ(maxsum.objective, 0.0);
}

TEST(ExtensionDegenerateTest, NoExistingFacilities) {
  IflsContext ctx = RandomContext(803, 0, 6, 30);
  ctx.existing.clear();
  const IflsResult brute_md = Unwrap(SolveBruteForceMinDist(ctx));
  const IflsResult mindist = Unwrap(SolveMinDist(ctx));
  ASSERT_TRUE(mindist.found);
  EXPECT_NEAR(EvaluateMinDist(ctx, mindist.answer), brute_md.objective,
              kTol * std::max(1.0, brute_md.objective));
  // MaxSum with no existing facilities: every client is won by any
  // candidate (distance < infinity), so the optimum is |C|.
  const IflsResult maxsum = Unwrap(SolveMaxSum(ctx));
  ASSERT_TRUE(maxsum.found);
  EXPECT_DOUBLE_EQ(maxsum.objective, static_cast<double>(ctx.clients.size()));
}

TEST(ExtensionStatsTest, WorkCountersPopulated) {
  const IflsContext ctx = RandomContext(804, 6, 8, 60);
  const IflsResult result = Unwrap(SolveMinDist(ctx));
  EXPECT_GT(result.stats.queue_pops, 0);
  EXPECT_GT(result.stats.facilities_retrieved, 0);
  EXPECT_GT(result.stats.peak_memory_bytes, 0);
}

}  // namespace
}  // namespace ifls
