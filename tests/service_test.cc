// Unit coverage of the online serving subsystem: IndexSnapshot validation,
// DeltaOverlay mutation semantics, OverlayOracle composition, and the
// IflsService front (queries vs direct solve, immediate mutation visibility,
// backpressure, deadlines, compaction, metrics, lifecycle). Deterministic
// single-threaded paths use the admission-only mode (num_workers = 0).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/solve_dispatch.h"
#include "src/service/service.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::BuildTinyVenue;
using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::TinyVenue;
using testing_util::Unwrap;

std::vector<Client> SomeClients(const Venue& venue, std::size_t n,
                                std::uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<Client> clients;
  for (std::size_t i = 0; i < n; ++i) {
    clients.push_back(RandomClient(venue, &rng, static_cast<ClientId>(i)));
  }
  return clients;
}

// --------------------------------------------------------- ComposeFacilitySet

TEST(ComposeFacilitySetTest, UnionMinusRemovalsSorted) {
  const std::vector<PartitionId> base = {1, 3, 5, 7};
  const std::vector<PartitionId> added = {2, 6};
  const std::vector<PartitionId> removed = {3, 7};
  EXPECT_EQ(ComposeFacilitySet(base, added, removed),
            (std::vector<PartitionId>{1, 2, 5, 6}));
  EXPECT_EQ(ComposeFacilitySet(base, {}, {}), base);
  EXPECT_EQ(ComposeFacilitySet({}, added, {}), added);
}

TEST(ValidateFacilityDeltaTest, RejectsInconsistentDeltas) {
  const std::vector<PartitionId> fe = {1, 3};
  const std::vector<PartitionId> fn = {5, 7};
  FacilityDelta ok_delta;
  ok_delta.added_existing = {2};
  ok_delta.removed_candidates = {5};
  EXPECT_TRUE(ValidateFacilityDelta(ok_delta, fe, fn).ok());

  FacilityDelta dup;
  dup.added_existing = {2, 2};
  EXPECT_FALSE(ValidateFacilityDelta(dup, fe, fn).ok());

  FacilityDelta unsorted;
  unsorted.added_existing = {4, 2};
  EXPECT_FALSE(ValidateFacilityDelta(unsorted, fe, fn).ok());

  FacilityDelta add_member;  // already in base Fe
  add_member.added_existing = {3};
  EXPECT_FALSE(ValidateFacilityDelta(add_member, fe, fn).ok());

  FacilityDelta remove_nonmember;
  remove_nonmember.removed_existing = {2};
  EXPECT_FALSE(ValidateFacilityDelta(remove_nonmember, fe, fn).ok());

  FacilityDelta overlap;  // composed sets would intersect at 5
  overlap.added_existing = {5};
  EXPECT_FALSE(ValidateFacilityDelta(overlap, fe, fn).ok());
}

// -------------------------------------------------------------- DeltaOverlay

TEST(DeltaOverlayTest, ApplyValidatesAgainstEffectiveState) {
  const std::vector<PartitionId> fe = {0};
  const std::vector<PartitionId> fn = {1};
  DeltaOverlay overlay(4, fe, fn);

  EXPECT_TRUE(overlay.Apply({MutationKind::kAddCandidate, 2}).ok());
  EXPECT_EQ(overlay.EffectiveKind(2), FacilityKind::kCandidate);

  // Re-adding the same role: kAlreadyExists.
  EXPECT_TRUE(overlay.Apply({MutationKind::kAddCandidate, 2})
                  .IsAlreadyExists());
  // Promoting without removing first: kFailedPrecondition.
  EXPECT_TRUE(overlay.Apply({MutationKind::kAddFacility, 2})
                  .IsFailedPrecondition());
  // Removing a role the partition does not hold: kNotFound.
  EXPECT_TRUE(overlay.Apply({MutationKind::kRemoveFacility, 3}).IsNotFound());
  // Out-of-range partition.
  EXPECT_TRUE(overlay.Apply({MutationKind::kAddCandidate, 99}).IsOutOfRange());
  EXPECT_TRUE(overlay.Apply({MutationKind::kAddCandidate, -1}).IsOutOfRange());

  EXPECT_EQ(overlay.net_size(), 1u);
  EXPECT_EQ(overlay.mutations_applied(), 1u);
}

TEST(DeltaOverlayTest, TogglingBackToBaseCancelsNetChange) {
  const std::vector<PartitionId> fe = {0};
  const std::vector<PartitionId> fn = {1};
  DeltaOverlay overlay(4, fe, fn);

  EXPECT_TRUE(overlay.Apply({MutationKind::kRemoveFacility, 0}).ok());
  EXPECT_EQ(overlay.net_size(), 1u);
  EXPECT_TRUE(overlay.Apply({MutationKind::kAddFacility, 0}).ok());
  EXPECT_EQ(overlay.net_size(), 0u);
  EXPECT_TRUE(overlay.delta().empty());
  EXPECT_EQ(overlay.mutations_applied(), 2u);
}

TEST(DeltaOverlayTest, DeltaBucketsAreSortedAndNet) {
  const std::vector<PartitionId> fe = {0, 4};
  const std::vector<PartitionId> fn = {1};
  DeltaOverlay overlay(8, fe, fn);
  EXPECT_TRUE(overlay.Apply({MutationKind::kAddCandidate, 6}).ok());
  EXPECT_TRUE(overlay.Apply({MutationKind::kAddCandidate, 3}).ok());
  EXPECT_TRUE(overlay.Apply({MutationKind::kRemoveFacility, 4}).ok());
  EXPECT_TRUE(overlay.Apply({MutationKind::kAddFacility, 7}).ok());

  const FacilityDelta d = overlay.delta();
  EXPECT_EQ(d.added_candidates, (std::vector<PartitionId>{3, 6}));
  EXPECT_EQ(d.removed_existing, (std::vector<PartitionId>{4}));
  EXPECT_EQ(d.added_existing, (std::vector<PartitionId>{7}));
  EXPECT_TRUE(d.removed_candidates.empty());
  EXPECT_EQ(d.size(), 4u);
}

TEST(DeltaOverlayTest, RebaseDropsFoldedChangesKeepsRacingOnes) {
  const std::vector<PartitionId> fe = {0};
  const std::vector<PartitionId> fn = {1};
  DeltaOverlay overlay(6, fe, fn);
  EXPECT_TRUE(overlay.Apply({MutationKind::kAddCandidate, 2}).ok());

  // Compactor folds the cut {added_candidates: [2]} into a new base...
  const std::vector<PartitionId> new_fe = {0};
  const std::vector<PartitionId> new_fn = {1, 2};
  // ...while a racing mutation lands before the rebase.
  EXPECT_TRUE(overlay.Apply({MutationKind::kAddCandidate, 3}).ok());

  overlay.RebaseTo(new_fe, new_fn);
  const FacilityDelta d = overlay.delta();
  EXPECT_EQ(d.added_candidates, (std::vector<PartitionId>{3}));
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(overlay.EffectiveKind(2), FacilityKind::kCandidate);
}

TEST(DeltaOverlayTest, RebaseHonorsMutationsUndoneAfterTheCut) {
  // The subtle compaction race: AddCandidate(2) is cut into the new base,
  // then RemoveCandidate(2) lands (cancelling the override entirely) before
  // the rebase. The rebased overlay must still record 2's removal relative
  // to the new base — otherwise the withdrawn candidate silently reappears.
  const std::vector<PartitionId> fe = {0};
  const std::vector<PartitionId> fn = {1};
  DeltaOverlay overlay(6, fe, fn);
  EXPECT_TRUE(overlay.Apply({MutationKind::kAddCandidate, 2}).ok());
  const std::vector<PartitionId> new_fn = {1, 2};  // cut folded in

  EXPECT_TRUE(overlay.Apply({MutationKind::kRemoveCandidate, 2}).ok());
  EXPECT_TRUE(overlay.delta().empty());  // override cancelled vs old base

  overlay.RebaseTo(fe, new_fn);
  const FacilityDelta d = overlay.delta();
  EXPECT_EQ(d.removed_candidates, (std::vector<PartitionId>{2}));
  EXPECT_EQ(overlay.EffectiveKind(2), FacilityKind::kNone);
}

// ------------------------------------------------------------- IndexSnapshot

TEST(IndexSnapshotTest, BuildValidatesAndCanonicalizes) {
  TinyVenue t = BuildTinyVenue();
  auto venue = std::make_shared<const Venue>(std::move(t.venue));

  // Unsorted inputs come back sorted.
  auto snap = Unwrap(IndexSnapshot::Build(venue, {t.room_c, t.room_a},
                                          {t.room_d, t.room_b},
                                          /*epoch=*/3, VipTreeOptions{}));
  EXPECT_EQ(snap->epoch(), 3u);
  std::vector<PartitionId> fe(snap->existing().begin(),
                              snap->existing().end());
  EXPECT_EQ(fe, (std::vector<PartitionId>{t.room_a, t.room_c}));
  std::vector<PartitionId> fn(snap->candidates().begin(),
                              snap->candidates().end());
  EXPECT_EQ(fn, (std::vector<PartitionId>{t.room_b, t.room_d}));

  // Duplicates, range violations, Fe/Fn overlap.
  EXPECT_FALSE(IndexSnapshot::Build(venue, {t.room_a, t.room_a}, {},
                                    0, VipTreeOptions{})
                   .ok());
  EXPECT_FALSE(IndexSnapshot::Build(
                   venue, {static_cast<PartitionId>(venue->num_partitions())},
                   {}, 0, VipTreeOptions{})
                   .ok());
  EXPECT_FALSE(IndexSnapshot::Build(venue, {t.room_a}, {t.room_a}, 0,
                                    VipTreeOptions{})
                   .ok());
}

TEST(IndexSnapshotTest, SharedTreeIsReused) {
  TinyVenue t = BuildTinyVenue();
  auto venue = std::make_shared<const Venue>(std::move(t.venue));
  auto first = Unwrap(
      IndexSnapshot::Build(venue, {t.room_a}, {t.room_b}, 0,
                           VipTreeOptions{}));
  auto second = Unwrap(IndexSnapshot::Build(venue, {t.room_c}, {t.room_d}, 1,
                                            VipTreeOptions{},
                                            first->shared_tree()));
  EXPECT_EQ(&first->tree(), &second->tree());
  EXPECT_EQ(second->epoch(), 1u);
}

// ----------------------------------------------------------------- Service

struct ServiceScenario {
  Venue venue;  // the service owns its own copy
  std::unique_ptr<VipTree> reference_tree;
  std::vector<PartitionId> existing;
  std::vector<PartitionId> candidates;
  std::vector<Client> clients;
  std::unique_ptr<IflsService> service;
};

ServiceScenario MakeScenario(const ServiceOptions& options,
                             std::uint64_t seed = 11) {
  ServiceScenario s;
  s.venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  s.reference_tree =
      std::make_unique<VipTree>(Unwrap(VipTree::Build(&s.venue)));
  Rng rng(seed);
  FacilitySets sets =
      Unwrap(SelectUniformFacilities(s.venue, 3, 5, &rng));
  s.existing = std::move(sets.existing);
  s.candidates = std::move(sets.candidates);
  std::sort(s.existing.begin(), s.existing.end());
  std::sort(s.candidates.begin(), s.candidates.end());
  s.clients = SomeClients(s.venue, 15, seed + 1);
  Venue copy = Unwrap(GenerateVenue(SmallVenueSpec()));
  s.service = Unwrap(
      IflsService::Create(std::move(copy), s.existing, s.candidates, options));
  return s;
}

TEST(IflsServiceTest, CreateRejectsBadOptions) {
  TinyVenue t = BuildTinyVenue();
  ServiceOptions bad_workers;
  bad_workers.num_workers = -1;
  EXPECT_FALSE(
      IflsService::Create(std::move(t.venue), {}, {}, bad_workers).ok());

  TinyVenue t2 = BuildTinyVenue();
  ServiceOptions bad_queue;
  bad_queue.queue_capacity = 0;
  EXPECT_FALSE(
      IflsService::Create(std::move(t2.venue), {}, {}, bad_queue).ok());

  TinyVenue t3 = BuildTinyVenue();
  EXPECT_FALSE(IflsService::Create(std::move(t3.venue), {0}, {0}, {}).ok());
}

TEST(IflsServiceTest, QueryMatchesDirectSolve) {
  ServiceOptions options;
  options.num_workers = 0;  // deterministic inline execution
  ServiceScenario s = MakeScenario(options);

  for (IflsObjective objective :
       {IflsObjective::kMinMax, IflsObjective::kMinDist,
        IflsObjective::kMaxSum}) {
    SCOPED_TRACE(IflsObjectiveName(objective));
    ServiceRequest req;
    req.objective = objective;
    req.clients = s.clients;
    const ServiceReply reply = s.service->Query(std::move(req));
    ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
    EXPECT_EQ(reply.snapshot_epoch, 0u);
    EXPECT_EQ(reply.overlay_size, 0u);

    IflsContext ctx;
    ctx.oracle = s.reference_tree.get();
    ctx.existing = s.existing;
    ctx.candidates = s.candidates;
    ctx.clients = s.clients;
    const IflsResult direct = Unwrap(SolveWithObjective(objective, ctx));
    EXPECT_EQ(reply.result.found, direct.found);
    EXPECT_EQ(reply.result.answer, direct.answer);
    EXPECT_EQ(reply.result.objective, direct.objective);
    EXPECT_EQ(reply.result.ranked, direct.ranked);
  }
}

TEST(IflsServiceTest, MutationIsVisibleToNextQuery) {
  ServiceOptions options;
  options.num_workers = 0;
  options.compaction_threshold = 0;  // manual compaction only
  ServiceScenario s = MakeScenario(options);

  // Withdraw every candidate but one: the solver must pick the survivor.
  const PartitionId survivor = s.candidates.front();
  for (std::size_t i = 1; i < s.candidates.size(); ++i) {
    ASSERT_TRUE(
        s.service->Mutate({MutationKind::kRemoveCandidate, s.candidates[i]})
            .ok());
  }
  const auto state = s.service->AcquireState();
  EXPECT_EQ(state->overlay.effective_candidates(),
            std::vector<PartitionId>{survivor});

  ServiceRequest req;
  req.objective = IflsObjective::kMinDist;
  req.clients = s.clients;
  const ServiceReply reply = s.service->Query(std::move(req));
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  EXPECT_EQ(reply.overlay_size, s.candidates.size() - 1);
  if (reply.result.found) EXPECT_EQ(reply.result.answer, survivor);

  const ServiceMetrics m = s.service->Metrics();
  EXPECT_EQ(m.mutations_applied, s.candidates.size() - 1);
  EXPECT_EQ(m.overlay_size, s.candidates.size() - 1);
}

TEST(IflsServiceTest, InvalidMutationIsRejectedAndCounted) {
  ServiceOptions options;
  options.num_workers = 0;
  ServiceScenario s = MakeScenario(options);
  EXPECT_TRUE(s.service->Mutate({MutationKind::kAddFacility, -3})
                  .IsOutOfRange());
  EXPECT_TRUE(
      s.service->Mutate({MutationKind::kAddCandidate, s.candidates.front()})
          .IsAlreadyExists());
  const ServiceMetrics m = s.service->Metrics();
  EXPECT_EQ(m.mutations_applied, 0u);
  EXPECT_EQ(m.mutations_rejected, 2u);
}

TEST(IflsServiceTest, FullQueueShedsWithUnavailable) {
  ServiceOptions options;
  options.num_workers = 0;  // nothing drains the queue
  options.queue_capacity = 2;
  ServiceScenario s = MakeScenario(options);

  ServiceRequest req;
  req.objective = IflsObjective::kMinMax;
  req.clients = s.clients;
  auto first = s.service->SubmitQuery(req);
  auto second = s.service->SubmitQuery(req);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  auto third = s.service->SubmitQuery(req);
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsUnavailable());

  // Pumping drains the two admitted requests; both complete fine.
  EXPECT_TRUE(s.service->ProcessOneInline());
  EXPECT_TRUE(s.service->ProcessOneInline());
  EXPECT_FALSE(s.service->ProcessOneInline());
  EXPECT_TRUE(first.value().get().status.ok());
  EXPECT_TRUE(second.value().get().status.ok());

  const ServiceMetrics m = s.service->Metrics();
  EXPECT_EQ(m.submitted, 3u);
  EXPECT_EQ(m.admitted, 2u);
  EXPECT_EQ(m.shed, 1u);
  EXPECT_EQ(m.completed, 2u);
  EXPECT_EQ(m.queue_depth, 0u);
}

TEST(IflsServiceTest, ExpiredDeadlineSkipsTheSolver) {
  ServiceOptions options;
  options.num_workers = 0;
  ServiceScenario s = MakeScenario(options);

  ServiceRequest req;
  req.objective = IflsObjective::kMinMax;
  req.clients = s.clients;
  req.deadline_seconds = 1e-9;
  auto submitted = s.service->SubmitQuery(std::move(req));
  ASSERT_TRUE(submitted.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(s.service->ProcessOneInline());
  const ServiceReply reply = submitted.value().get();
  EXPECT_TRUE(reply.status.IsDeadlineExceeded()) << reply.status.ToString();
  EXPECT_FALSE(reply.result.found);
  EXPECT_EQ(s.service->Metrics().deadline_expired, 1u);
}

TEST(IflsServiceTest, CompactNowFoldsOverlayAndBumpsEpoch) {
  ServiceOptions options;
  options.num_workers = 0;
  options.compaction_threshold = 0;
  ServiceScenario s = MakeScenario(options);

  const PartitionId removed = s.candidates.back();
  ASSERT_TRUE(
      s.service->Mutate({MutationKind::kRemoveCandidate, removed}).ok());
  ASSERT_TRUE(
      s.service->Mutate({MutationKind::kAddFacility, removed}).ok());
  EXPECT_EQ(s.service->snapshot_epoch(), 0u);

  ASSERT_TRUE(s.service->CompactNow().ok());
  EXPECT_EQ(s.service->snapshot_epoch(), 1u);

  const auto state = s.service->AcquireState();
  EXPECT_TRUE(state->overlay.delta().empty());  // folded into the base
  std::vector<PartitionId> expected_fe = s.existing;
  expected_fe.push_back(removed);
  std::sort(expected_fe.begin(), expected_fe.end());
  std::vector<PartitionId> base_fe(state->snapshot->existing().begin(),
                                   state->snapshot->existing().end());
  EXPECT_EQ(base_fe, expected_fe);
  EXPECT_EQ(s.service->Metrics().compactions, 1u);

  // Compacting an empty overlay still publishes a fresh epoch.
  ASSERT_TRUE(s.service->CompactNow().ok());
  EXPECT_EQ(s.service->snapshot_epoch(), 2u);
}

TEST(IflsServiceTest, ThresholdTriggersBackgroundCompaction) {
  ServiceOptions options;
  options.num_workers = 0;
  options.compaction_threshold = 2;
  ServiceScenario s = MakeScenario(options);

  ASSERT_TRUE(
      s.service->Mutate({MutationKind::kRemoveCandidate, s.candidates[0]})
          .ok());
  ASSERT_TRUE(
      s.service->Mutate({MutationKind::kRemoveCandidate, s.candidates[1]})
          .ok());
  // The compactor runs asynchronously; wait (bounded) for the publication.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (s.service->snapshot_epoch() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(s.service->snapshot_epoch(), 1u);
  EXPECT_GE(s.service->Metrics().compactions, 1u);
}

TEST(IflsServiceTest, PinnedStateSurvivesPublications) {
  ServiceOptions options;
  options.num_workers = 0;
  options.compaction_threshold = 0;
  ServiceScenario s = MakeScenario(options);

  const auto pinned = s.service->AcquireState();
  const std::vector<PartitionId> pinned_fn =
      pinned->overlay.effective_candidates();

  ASSERT_TRUE(
      s.service->Mutate({MutationKind::kRemoveCandidate, s.candidates[0]})
          .ok());
  ASSERT_TRUE(s.service->CompactNow().ok());

  // The pinned state still serves the pre-mutation view and stays solvable.
  EXPECT_EQ(pinned->overlay.effective_candidates(), pinned_fn);
  EXPECT_EQ(pinned->snapshot->epoch(), 0u);
  IflsContext ctx;
  ctx.oracle = &pinned->oracle();
  ctx.existing = pinned->overlay.effective_existing();
  ctx.candidates = pinned->overlay.effective_candidates();
  ctx.clients = s.clients;
  EXPECT_TRUE(SolveWithObjective(IflsObjective::kMinMax, ctx).ok());

  // The live state moved on.
  EXPECT_EQ(s.service->AcquireState()->snapshot->epoch(), 1u);
}

TEST(IflsServiceTest, StopShedsQueuedWorkAndRefusesNewWork) {
  ServiceOptions options;
  options.num_workers = 0;
  ServiceScenario s = MakeScenario(options);

  ServiceRequest req;
  req.objective = IflsObjective::kMinMax;
  req.clients = s.clients;
  auto queued = s.service->SubmitQuery(req);
  ASSERT_TRUE(queued.ok());

  s.service->Stop();
  EXPECT_TRUE(queued.value().get().status.IsUnavailable());

  auto after = s.service->SubmitQuery(req);
  ASSERT_FALSE(after.ok());
  EXPECT_TRUE(after.status().IsUnavailable());
  EXPECT_TRUE(s.service->CompactNow().IsUnavailable());
  s.service->Stop();  // idempotent
}

TEST(IflsServiceTest, WorkerPoolAnswersSubmittedBatch) {
  ServiceOptions options;
  options.num_workers = 3;
  ServiceScenario s = MakeScenario(options);

  std::vector<std::future<ServiceReply>> futures;
  for (int i = 0; i < 12; ++i) {
    ServiceRequest req;
    req.objective = static_cast<IflsObjective>(i % 3);
    req.clients = s.clients;
    futures.push_back(Unwrap(s.service->SubmitQuery(std::move(req))));
  }
  for (auto& f : futures) {
    const ServiceReply reply = f.get();
    EXPECT_TRUE(reply.status.ok()) << reply.status.ToString();
  }
  s.service->Drain();
  const ServiceMetrics m = s.service->Metrics();
  EXPECT_EQ(m.completed, 12u);
  EXPECT_EQ(m.failed, 0u);
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_GT(m.latency_p50_seconds, 0.0);
  EXPECT_GE(m.latency_p99_seconds, m.latency_p50_seconds);
  EXPECT_FALSE(m.ToString().empty());
}

TEST(IflsServiceTest, SolverErrorsSurfaceInReplyStatus) {
  ServiceOptions options;
  options.num_workers = 0;
  ServiceScenario s = MakeScenario(options);

  ServiceRequest req;
  req.objective = IflsObjective::kMinMax;
  req.clients = s.clients;
  req.clients.front().partition =
      static_cast<PartitionId>(1 << 20);  // out of range: validation fails
  const ServiceReply reply = s.service->Query(std::move(req));
  EXPECT_FALSE(reply.status.ok());
  const ServiceMetrics m = s.service->Metrics();
  EXPECT_EQ(m.completed, 1u);
  EXPECT_EQ(m.failed, 1u);
}

}  // namespace
}  // namespace ifls
