// Round-trip tests of the IFLS_VIPTREE serialization: a loaded index must
// be byte-for-byte equivalent in behaviour to the one that was built. Covers
// the current flat-payload format (v2), the legacy per-node-matrix format
// (v1) migration path, and corrupted-input regressions.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/core/efficient.h"
#include "src/datasets/facility_selector.h"
#include "src/index/graph_oracle.h"
#include "src/index/vip_tree.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

template <typename T>
std::vector<T> ToVector(std::span<const T> s) {
  return std::vector<T>(s.begin(), s.end());
}

/// Element-wise structural equality of two trees (spans compared by value).
void ExpectSameStructure(const VipTree& built, const VipTree& loaded) {
  ASSERT_EQ(loaded.num_nodes(), built.num_nodes());
  EXPECT_EQ(loaded.num_leaves(), built.num_leaves());
  EXPECT_EQ(loaded.height(), built.height());
  EXPECT_EQ(loaded.root(), built.root());
  for (std::size_t i = 0; i < built.num_nodes(); ++i) {
    const VipNode& a = built.node(static_cast<NodeId>(i));
    const VipNode& b = loaded.node(static_cast<NodeId>(i));
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.depth, b.depth);
    EXPECT_EQ(ToVector(a.children), ToVector(b.children));
    EXPECT_EQ(ToVector(a.partitions), ToVector(b.partitions));
    EXPECT_EQ(ToVector(a.doors), ToVector(b.doors));
    EXPECT_EQ(ToVector(a.access_doors), ToVector(b.access_doors));
    EXPECT_EQ(a.subtree_partitions, b.subtree_partitions);
    ASSERT_EQ(a.ancestor_matrices.size(), b.ancestor_matrices.size());
  }
}

/// Bit-identical distance payloads: every matrix cell of every node (main
/// and ancestor matrices) compares exactly equal.
void ExpectSamePayload(const VipTree& built, const VipTree& loaded) {
  for (std::size_t i = 0; i < built.num_nodes(); ++i) {
    const VipNode& a = built.node(static_cast<NodeId>(i));
    const VipNode& b = loaded.node(static_cast<NodeId>(i));
    auto expect_same_matrix = [](const DoorMatrixView& ma,
                                 const DoorMatrixView& mb) {
      ASSERT_EQ(ma.num_rows(), mb.num_rows());
      ASSERT_EQ(ma.num_cols(), mb.num_cols());
      for (std::size_t r = 0; r < ma.num_rows(); ++r) {
        for (std::size_t c = 0; c < ma.num_cols(); ++c) {
          const int ri = static_cast<int>(r);
          const int ci = static_cast<int>(c);
          ASSERT_EQ(ma.At(ri, ci), mb.At(ri, ci));
          ASSERT_EQ(ma.FirstHopAt(ri, ci), mb.FirstHopAt(ri, ci));
        }
      }
    };
    expect_same_matrix(a.matrix, b.matrix);
    for (std::size_t k = 0; k < a.ancestor_matrices.size(); ++k) {
      expect_same_matrix(a.ancestor_matrices[k], b.ancestor_matrices[k]);
    }
  }
}

TEST(VipTreeIoTest, RoundTripPreservesStructure) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  std::stringstream stream;
  ASSERT_TRUE(built.Save(&stream).ok());
  VipTree loaded = Unwrap(VipTree::Load(&venue, &stream));
  ExpectSameStructure(built, loaded);
  ExpectSamePayload(built, loaded);
}

TEST(VipTreeIoTest, RoundTripPreservesDistances) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  std::stringstream stream;
  ASSERT_TRUE(built.Save(&stream).ok());
  VipTree loaded = Unwrap(VipTree::Load(&venue, &stream));

  Rng rng(91);
  for (int i = 0; i < 200; ++i) {
    const Client a = RandomClient(venue, &rng, 0);
    const Client b = RandomClient(venue, &rng, 1);
    ASSERT_DOUBLE_EQ(
        loaded.PointToPoint(a.position, a.partition, b.position, b.partition),
        built.PointToPoint(a.position, a.partition, b.position, b.partition));
  }
  // First hops survive too.
  for (DoorId d = 0; d < static_cast<DoorId>(venue.num_doors()); ++d) {
    EXPECT_EQ(loaded.FirstHop(0, d), built.FirstHop(0, d));
  }
}

TEST(VipTreeIoTest, FileRoundTrip) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  const std::string path = ::testing::TempDir() + "/ifls_tree.txt";
  ASSERT_TRUE(built.SaveToFile(path).ok());
  VipTree loaded = Unwrap(VipTree::LoadFromFile(&venue, path));
  GraphDistanceOracle oracle(&venue);
  Rng rng(92);
  for (int i = 0; i < 50; ++i) {
    const Client a = RandomClient(venue, &rng, 0);
    const auto target = static_cast<PartitionId>(
        rng.NextBounded(venue.num_partitions()));
    ASSERT_NEAR(loaded.PointToPartition(a.position, a.partition, target),
                oracle.PointToPartition(a.position, a.partition, target),
                1e-9);
  }
}

TEST(VipTreeIoTest, IpTreeRoundTrips) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTreeOptions options;
  options.build_leaf_to_ancestor = false;
  VipTree built = Unwrap(VipTree::Build(&venue, options));
  std::stringstream stream;
  ASSERT_TRUE(built.Save(&stream).ok());
  VipTree loaded = Unwrap(VipTree::Load(&venue, &stream));
  EXPECT_FALSE(loaded.options().build_leaf_to_ancestor);
  Rng rng(93);
  const Client a = RandomClient(venue, &rng, 0);
  const Client b = RandomClient(venue, &rng, 1);
  EXPECT_DOUBLE_EQ(
      loaded.PointToPoint(a.position, a.partition, b.position, b.partition),
      built.PointToPoint(a.position, a.partition, b.position, b.partition));
}

// ---------------------------------------------------------------------------
// v1 (legacy per-node-matrix format) migration
// ---------------------------------------------------------------------------

/// One of ten randomized venues per test: size, stair count and door jitter
/// all vary with the seed.
VenueGeneratorSpec RandomizedSpec(std::uint64_t seed) {
  Rng rng(seed);
  VenueGeneratorSpec spec = SmallVenueSpec();
  spec.name = "rand" + std::to_string(seed);
  spec.levels = 1 + static_cast<int>(rng.NextBounded(3));
  spec.rooms_per_level = 10 + static_cast<int>(rng.NextBounded(25));
  spec.rooms_per_corridor_side = 4 + static_cast<int>(rng.NextBounded(5));
  spec.stairwells = 1 + static_cast<int>(rng.NextBounded(2));
  spec.door_jitter_seed = seed * 977 + 1;
  return spec;
}

class V1MigrationTest : public ::testing::TestWithParam<std::uint64_t> {};

/// A tree loaded from its own legacy-v1 serialization must be bit-identical
/// to the built tree: same structure, same payload cells, same query
/// answers, objectives and work counters.
TEST_P(V1MigrationTest, LegacyV1LoadsBitIdentical) {
  const std::uint64_t seed = GetParam();
  Venue venue = Unwrap(GenerateVenue(RandomizedSpec(seed)));
  VipTree built = Unwrap(VipTree::Build(&venue));

  std::stringstream v1;
  ASSERT_TRUE(built.SaveLegacyV1(&v1).ok());
  ASSERT_NE(v1.str().find("IFLS_VIPTREE 1"), std::string::npos);
  VipTree migrated = Unwrap(VipTree::Load(&venue, &v1));

  ExpectSameStructure(built, migrated);
  ExpectSamePayload(built, migrated);

  // Full-solver differential: answers, objectives and per-query work
  // counters must match exactly between the built and migrated index.
  Rng rng(seed * 31 + 7);
  FacilitySets sets = Unwrap(SelectUniformFacilities(venue, 3, 5, &rng));
  IflsContext ctx;
  ctx.existing = sets.existing;
  ctx.candidates = sets.candidates;
  for (int i = 0; i < 12; ++i) {
    ctx.clients.push_back(RandomClient(venue, &rng, i));
  }

  ctx.oracle = &built;
  const IflsResult from_built = Unwrap(SolveEfficient(ctx));
  ctx.oracle = &migrated;
  const IflsResult from_migrated = Unwrap(SolveEfficient(ctx));

  EXPECT_EQ(from_built.found, from_migrated.found);
  EXPECT_EQ(from_built.answer, from_migrated.answer);
  EXPECT_EQ(from_built.objective, from_migrated.objective);  // bit-identical
  EXPECT_EQ(from_built.stats.distance_computations,
            from_migrated.stats.distance_computations);
  EXPECT_EQ(from_built.stats.lower_bound_computations,
            from_migrated.stats.lower_bound_computations);
  EXPECT_EQ(from_built.stats.queue_pushes, from_migrated.stats.queue_pushes);
  EXPECT_EQ(from_built.stats.queue_pops, from_migrated.stats.queue_pops);
  EXPECT_EQ(from_built.stats.door_distance_evals,
            from_migrated.stats.door_distance_evals);
  EXPECT_EQ(from_built.stats.matrix_lookups,
            from_migrated.stats.matrix_lookups);
}

/// v1 round-trips *through* the v2 saver: load v1, save as v2, load again.
TEST_P(V1MigrationTest, V1ThroughV2RoundTrip) {
  const std::uint64_t seed = GetParam();
  Venue venue = Unwrap(GenerateVenue(RandomizedSpec(seed)));
  VipTree built = Unwrap(VipTree::Build(&venue));

  std::stringstream v1;
  ASSERT_TRUE(built.SaveLegacyV1(&v1).ok());
  VipTree migrated = Unwrap(VipTree::Load(&venue, &v1));

  std::stringstream v2;
  ASSERT_TRUE(migrated.Save(&v2).ok());
  ASSERT_NE(v2.str().find("IFLS_VIPTREE 2"), std::string::npos);
  VipTree reloaded = Unwrap(VipTree::Load(&venue, &v2));
  ExpectSameStructure(built, reloaded);
  ExpectSamePayload(built, reloaded);
}

INSTANTIATE_TEST_SUITE_P(RandomVenues, V1MigrationTest,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// v2 byte stability
// ---------------------------------------------------------------------------

/// save(load(save(tree))) must equal save(tree) byte for byte: the flat
/// layout (and thus the serialization order) is fully determined by the
/// structure section.
TEST(VipTreeIoTest, V2SaveIsByteStable) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  std::stringstream first;
  ASSERT_TRUE(built.Save(&first).ok());
  VipTree loaded = Unwrap(VipTree::Load(&venue, &first));
  std::stringstream second;
  ASSERT_TRUE(loaded.Save(&second).ok());
  EXPECT_EQ(first.str(), second.str());
}

// ---------------------------------------------------------------------------
// Corrupted inputs
// ---------------------------------------------------------------------------

TEST(VipTreeIoTest, RejectsWrongVenue) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  std::stringstream stream;
  ASSERT_TRUE(built.Save(&stream).ok());

  VenueGeneratorSpec other_spec = SmallVenueSpec();
  other_spec.rooms_per_level = 30;  // different venue
  Venue other = Unwrap(GenerateVenue(other_spec));
  Result<VipTree> loaded = VipTree::Load(&other, &stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST(VipTreeIoTest, RejectsGarbage) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  std::stringstream bogus("NOT_A_TREE 1");
  EXPECT_TRUE(VipTree::Load(&venue, &bogus).status().IsInvalidArgument());
  std::stringstream truncated("IFLS_VIPTREE 1\noptions 8 8 1 1 1 0\n");
  EXPECT_FALSE(VipTree::Load(&venue, &truncated).ok());
  EXPECT_TRUE(VipTree::LoadFromFile(&venue, "/no/such/file")
                  .status()
                  .IsIOError());
}

TEST(VipTreeIoTest, RejectsUnsupportedVersion) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  std::stringstream future("IFLS_VIPTREE 99\noptions 8 8 1 1 1 0\n");
  Result<VipTree> loaded = VipTree::Load(&venue, &future);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

/// Truncating a valid v2 file anywhere inside the payload section must fail
/// with a proper Status (never a crash or a silently short index).
TEST(VipTreeIoTest, RejectsTruncatedPayload) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  std::stringstream stream;
  ASSERT_TRUE(built.Save(&stream).ok());
  const std::string full = stream.str();

  const std::size_t payload_pos = full.find("payload");
  ASSERT_NE(payload_pos, std::string::npos);
  // Cut in the middle of the payload numbers.
  const std::size_t cut = payload_pos + (full.size() - payload_pos) / 2;
  std::stringstream truncated(full.substr(0, cut));
  Result<VipTree> loaded = VipTree::Load(&venue, &truncated);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

/// Dropping the trailing "end" marker is detected even though every payload
/// value is present.
TEST(VipTreeIoTest, RejectsMissingEndMarker) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  std::stringstream stream;
  ASSERT_TRUE(built.Save(&stream).ok());
  std::string full = stream.str();
  const std::size_t end_pos = full.rfind("end");
  ASSERT_NE(end_pos, std::string::npos);
  std::stringstream missing_end(full.substr(0, end_pos));
  Result<VipTree> loaded = VipTree::Load(&venue, &missing_end);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

/// A v1 body whose matrices disagree with the derived structure is rejected.
TEST(VipTreeIoTest, RejectsV1MatrixMismatch) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  std::stringstream stream;
  ASSERT_TRUE(built.SaveLegacyV1(&stream).ok());
  std::string full = stream.str();
  // Corrupt the first matrix door-id list: "matrix R C" is followed by a
  // "rows ..." id list; bump one digit of the first row id.
  const std::size_t matrix_pos = full.find("matrix ");
  ASSERT_NE(matrix_pos, std::string::npos);
  const std::size_t rows_pos = full.find("rows ", matrix_pos);
  ASSERT_NE(rows_pos, std::string::npos);
  // Find the first door id after "rows <count> " and replace it with 9999.
  std::size_t id_pos = full.find(' ', rows_pos + 5);  // skip the count
  ASSERT_NE(id_pos, std::string::npos);
  ++id_pos;
  std::size_t id_end = full.find_first_of(" \n", id_pos);
  ASSERT_NE(id_end, std::string::npos);
  full.replace(id_pos, id_end - id_pos, "9999");
  std::stringstream corrupted(full);
  Result<VipTree> loaded = VipTree::Load(&venue, &corrupted);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

}  // namespace
}  // namespace ifls
