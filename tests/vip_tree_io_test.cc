// Round-trip tests of the IFLS_VIPTREE serialization: a loaded index must
// be byte-for-byte equivalent in behaviour to the one that was built.

#include <gtest/gtest.h>

#include <sstream>

#include "src/index/graph_oracle.h"
#include "src/index/vip_tree.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

TEST(VipTreeIoTest, RoundTripPreservesStructure) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  std::stringstream stream;
  ASSERT_TRUE(built.Save(&stream).ok());
  VipTree loaded = Unwrap(VipTree::Load(&venue, &stream));

  EXPECT_EQ(loaded.num_nodes(), built.num_nodes());
  EXPECT_EQ(loaded.num_leaves(), built.num_leaves());
  EXPECT_EQ(loaded.height(), built.height());
  EXPECT_EQ(loaded.root(), built.root());
  for (std::size_t i = 0; i < built.num_nodes(); ++i) {
    const VipNode& a = built.node(static_cast<NodeId>(i));
    const VipNode& b = loaded.node(static_cast<NodeId>(i));
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.depth, b.depth);
    EXPECT_EQ(a.children, b.children);
    EXPECT_EQ(a.partitions, b.partitions);
    EXPECT_EQ(a.doors, b.doors);
    EXPECT_EQ(a.access_doors, b.access_doors);
    EXPECT_EQ(a.subtree_partitions, b.subtree_partitions);
  }
}

TEST(VipTreeIoTest, RoundTripPreservesDistances) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  std::stringstream stream;
  ASSERT_TRUE(built.Save(&stream).ok());
  VipTree loaded = Unwrap(VipTree::Load(&venue, &stream));

  Rng rng(91);
  for (int i = 0; i < 200; ++i) {
    const Client a = RandomClient(venue, &rng, 0);
    const Client b = RandomClient(venue, &rng, 1);
    ASSERT_DOUBLE_EQ(
        loaded.PointToPoint(a.position, a.partition, b.position, b.partition),
        built.PointToPoint(a.position, a.partition, b.position, b.partition));
  }
  // First hops survive too.
  for (DoorId d = 0; d < static_cast<DoorId>(venue.num_doors()); ++d) {
    EXPECT_EQ(loaded.FirstHop(0, d), built.FirstHop(0, d));
  }
}

TEST(VipTreeIoTest, FileRoundTrip) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  const std::string path = ::testing::TempDir() + "/ifls_tree.txt";
  ASSERT_TRUE(built.SaveToFile(path).ok());
  VipTree loaded = Unwrap(VipTree::LoadFromFile(&venue, path));
  GraphDistanceOracle oracle(&venue);
  Rng rng(92);
  for (int i = 0; i < 50; ++i) {
    const Client a = RandomClient(venue, &rng, 0);
    const auto target = static_cast<PartitionId>(
        rng.NextBounded(venue.num_partitions()));
    ASSERT_NEAR(loaded.PointToPartition(a.position, a.partition, target),
                oracle.PointToPartition(a.position, a.partition, target),
                1e-9);
  }
}

TEST(VipTreeIoTest, IpTreeRoundTrips) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTreeOptions options;
  options.build_leaf_to_ancestor = false;
  VipTree built = Unwrap(VipTree::Build(&venue, options));
  std::stringstream stream;
  ASSERT_TRUE(built.Save(&stream).ok());
  VipTree loaded = Unwrap(VipTree::Load(&venue, &stream));
  EXPECT_FALSE(loaded.options().build_leaf_to_ancestor);
  Rng rng(93);
  const Client a = RandomClient(venue, &rng, 0);
  const Client b = RandomClient(venue, &rng, 1);
  EXPECT_DOUBLE_EQ(
      loaded.PointToPoint(a.position, a.partition, b.position, b.partition),
      built.PointToPoint(a.position, a.partition, b.position, b.partition));
}

TEST(VipTreeIoTest, RejectsWrongVenue) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree built = Unwrap(VipTree::Build(&venue));
  std::stringstream stream;
  ASSERT_TRUE(built.Save(&stream).ok());

  VenueGeneratorSpec other_spec = SmallVenueSpec();
  other_spec.rooms_per_level = 30;  // different venue
  Venue other = Unwrap(GenerateVenue(other_spec));
  Result<VipTree> loaded = VipTree::Load(&other, &stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST(VipTreeIoTest, RejectsGarbage) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  std::stringstream bogus("NOT_A_TREE 1");
  EXPECT_TRUE(VipTree::Load(&venue, &bogus).status().IsInvalidArgument());
  std::stringstream truncated("IFLS_VIPTREE 1\noptions 8 8 1 1 1 0\n");
  EXPECT_FALSE(VipTree::Load(&venue, &truncated).ok());
  EXPECT_TRUE(VipTree::LoadFromFile(&venue, "/no/such/file")
                  .status()
                  .IsIOError());
}

}  // namespace
}  // namespace ifls
