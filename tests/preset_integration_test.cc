// Integration tests on the rebuilt evaluation venues: index exactness and
// solver agreement at realistic scale (CPH fully, MC sampled — the larger
// venues are covered by the same code paths and would only add runtime).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>

#include "src/core/brute_force.h"
#include "src/core/efficient.h"
#include "src/core/minmax_baseline.h"
#include "src/datasets/workload.h"
#include "src/index/graph_oracle.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::Unwrap;

constexpr double kTol = 1e-7;

class PresetEnv {
 public:
  static PresetEnv& Get(VenuePreset preset) {
    static PresetEnv* envs[4] = {};
    const int idx = static_cast<int>(preset);
    if (envs[idx] == nullptr) envs[idx] = new PresetEnv(preset);
    return *envs[idx];
  }
  const Venue& venue() const { return venue_; }
  const VipTree& tree() const { return *tree_; }

 private:
  explicit PresetEnv(VenuePreset preset) {
    venue_ = Unwrap(BuildPresetVenue(preset));
    tree_ = std::make_unique<VipTree>(Unwrap(VipTree::Build(&venue_)));
  }
  Venue venue_;
  std::unique_ptr<VipTree> tree_;
};

TEST(PresetIndexTest, CopenhagenDistancesMatchOracleOnSampledPairs) {
  PresetEnv& env = PresetEnv::Get(VenuePreset::kCopenhagenAirport);
  GraphDistanceOracle oracle(&env.venue());
  Rng rng(3001);
  for (int i = 0; i < 400; ++i) {
    const Client a = RandomClient(env.venue(), &rng, 0);
    const Client b = RandomClient(env.venue(), &rng, 1);
    ASSERT_NEAR(env.tree().PointToPoint(a.position, a.partition, b.position,
                                        b.partition),
                oracle.PointToPoint(a.position, a.partition, b.position,
                                    b.partition),
                1e-9);
  }
}

TEST(PresetIndexTest, MelbourneCentralDistancesMatchOracleOnSampledPairs) {
  PresetEnv& env = PresetEnv::Get(VenuePreset::kMelbourneCentral);
  GraphDistanceOracle oracle(&env.venue());
  Rng rng(3002);
  for (int i = 0; i < 150; ++i) {
    const Client a = RandomClient(env.venue(), &rng, 0);
    const auto target = static_cast<PartitionId>(
        rng.NextBounded(env.venue().num_partitions()));
    ASSERT_NEAR(
        env.tree().PointToPartition(a.position, a.partition, target),
        oracle.PointToPartition(a.position, a.partition, target), 1e-9);
  }
}

TEST(PresetIndexTest, CrossLevelDistancesPayStairs) {
  // Any two points on different levels of MC must be at least one stair
  // length apart.
  PresetEnv& env = PresetEnv::Get(VenuePreset::kMelbourneCentral);
  const VenueGeneratorSpec spec = PresetSpec(VenuePreset::kMelbourneCentral);
  Rng rng(3003);
  int checked = 0;
  while (checked < 40) {
    const Client a = RandomClient(env.venue(), &rng, 0);
    const Client b = RandomClient(env.venue(), &rng, 1);
    if (a.position.level == b.position.level) continue;
    const double d = env.tree().PointToPoint(a.position, a.partition,
                                             b.position, b.partition);
    const int level_gap = std::abs(a.position.level - b.position.level);
    EXPECT_GE(d, spec.stair_length * level_gap);
    ++checked;
  }
}

TEST(PresetSolverTest, CopenhagenSolversAgreeAtPaperDefaults) {
  PresetEnv& env = PresetEnv::Get(VenuePreset::kCopenhagenAirport);
  const ParameterGrid grid =
      PresetParameterGrid(VenuePreset::kCopenhagenAirport);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    IflsContext ctx;
    ctx.oracle = &env.tree();
    FacilitySets sets = Unwrap(SelectUniformFacilities(
        env.venue(), grid.default_existing, grid.default_candidates, &rng));
    ctx.existing = std::move(sets.existing);
    ctx.candidates = std::move(sets.candidates);
    ClientGeneratorOptions copts;
    copts.distribution = ClientDistribution::kNormal;
    copts.sigma = 1.0;
    ctx.clients = GenerateClients(env.venue(), 300, copts, &rng);

    const IflsResult brute = Unwrap(SolveBruteForceMinMax(ctx));
    const IflsResult baseline = Unwrap(SolveModifiedMinMax(ctx));
    const IflsResult efficient = Unwrap(SolveEfficient(ctx));
    ASSERT_EQ(baseline.found, brute.found) << "seed " << seed;
    if (efficient.found) {
      EXPECT_NEAR(EvaluateMinMax(ctx, efficient.answer), brute.objective,
                  kTol * std::max(1.0, brute.objective));
    }
    if (baseline.found) {
      EXPECT_NEAR(EvaluateMinMax(ctx, baseline.answer), brute.objective,
                  kTol * std::max(1.0, brute.objective));
    }
  }
}

TEST(PresetSolverTest, MelbourneRealSettingSolversAgree) {
  Venue venue = Unwrap(BuildPresetVenue(VenuePreset::kMelbourneCentral));
  ASSERT_TRUE(AssignMelbourneCentralCategories(&venue).ok());
  VipTree tree = Unwrap(VipTree::Build(&venue));
  Rng rng(3100);
  IflsContext ctx;
  ctx.oracle = &tree;
  FacilitySets sets =
      Unwrap(SelectCategoryFacilities(venue, "banks & services"));
  ctx.existing = std::move(sets.existing);
  ctx.candidates = std::move(sets.candidates);
  ClientGeneratorOptions copts;
  ctx.clients = GenerateClients(venue, 150, copts, &rng);

  const IflsResult brute = Unwrap(SolveBruteForceMinMax(ctx));
  const IflsResult efficient = Unwrap(SolveEfficient(ctx));
  ASSERT_TRUE(brute.found);
  ASSERT_TRUE(efficient.found);
  EXPECT_NEAR(EvaluateMinMax(ctx, efficient.answer), brute.objective,
              kTol * std::max(1.0, brute.objective));
  // In the real setting most candidates vastly outnumber Fe; the efficient
  // approach must still prune aggressively via the clustered facilities.
  EXPECT_GT(efficient.stats.clients_pruned, 0);
}

TEST(PresetSolverTest, WorkloadSpecEndToEnd) {
  WorkloadSpec spec;
  spec.preset = VenuePreset::kCopenhagenAirport;
  spec.num_existing = 10;
  spec.num_candidates = 25;
  spec.num_clients = 200;
  spec.client_options.distribution = ClientDistribution::kNormal;
  spec.client_options.sigma = 0.5;
  spec.seed = 77;
  Workload w = Unwrap(BuildWorkload(spec));
  VipTree tree = Unwrap(VipTree::Build(&w.venue));
  IflsContext ctx;
  ctx.oracle = &tree;
  ctx.existing = w.facilities.existing;
  ctx.candidates = w.facilities.candidates;
  ctx.clients = w.clients;
  ASSERT_TRUE(ValidateContext(ctx).ok());
  const IflsResult result = Unwrap(SolveEfficient(ctx));
  EXPECT_TRUE(result.found);
}

}  // namespace
}  // namespace ifls
