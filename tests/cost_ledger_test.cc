// Per-query cost ledger coverage (DESIGN.md §15): aggregates register as
// labeled ifls_ledger_* series and fold as exponentially-decayed means, the
// slow-query ring retains the worst queries (worst-first, span trees
// captured only for sampled queries), JSON rendering is well-formed, Reset
// isolates tests, and concurrent recorders never corrupt either product
// (the `parallel` label puts this file under the TSan job).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics_registry.h"
#include "src/common/trace.h"
#include "src/service/cost_ledger.h"

namespace ifls {
namespace {

QueryCostSample MakeSample(double solve_seconds, std::uint64_t trace_id,
                           const std::string& venue = "ledger-test") {
  QueryCostSample sample;
  sample.venue = venue;
  sample.objective = IflsObjective::kMinMax;
  sample.trace_id = trace_id;
  sample.parent_span_id = trace_id + 1000;
  sample.queue_seconds = 0.0;
  sample.solve_seconds = solve_seconds;
  sample.stats.kernel_invocations = 4;
  sample.stats.matrix_lookups = 2;
  sample.stats.cache_hits = 8;
  sample.stats.cache_misses = 1;
  sample.stats.dijkstra_fallbacks = 0;
  return sample;
}

/// Extracts the scalar after `series{...} ` from a metrics dump; -1 when the
/// series is absent.
double SeriesValue(const std::string& text, const std::string& series) {
  const std::size_t at = text.find(series);
  if (at == std::string::npos) return -1.0;
  const std::size_t close = text.find("} ", at);
  if (close == std::string::npos) return -1.0;
  return std::stod(text.substr(close + 2));
}

TEST(CostLedgerTest, AggregatesRegisterLabeledSeries) {
  QueryCostLedger& ledger = QueryCostLedger::Global();
  ledger.Reset();
  ledger.RecordQuery(MakeSample(0.5, 1), /*capture_spans=*/false);

  const std::string text = DumpMetricsText();
  EXPECT_NE(text.find("ifls_ledger_queries_total{venue=\"ledger-test\","
                      "objective=\"minmax\",tier=\""),
            std::string::npos);
  // The first sample seeds the decayed means directly.
  EXPECT_EQ(SeriesValue(text, "ifls_ledger_solve_seconds{venue=\"ledger-test\""),
            0.5);
  EXPECT_EQ(
      SeriesValue(text, "ifls_ledger_kernel_invocations{venue=\"ledger-test\""),
      4.0);
  EXPECT_EQ(SeriesValue(text, "ifls_ledger_compositions{venue=\"ledger-test\""),
            2.0);
  EXPECT_EQ(
      SeriesValue(text, "ifls_ledger_door_cache_hits{venue=\"ledger-test\""),
      8.0);

  ledger.Reset();
  EXPECT_EQ(DumpMetricsText().find(
                "venue=\"ledger-test\""),
            std::string::npos);
}

TEST(CostLedgerTest, DecayedMeanFoldsTowardNewSamples) {
  QueryCostLedger& ledger = QueryCostLedger::Global();
  ledger.Reset();
  ledger.RecordQuery(MakeSample(0.5, 1), false);
  ledger.RecordQuery(MakeSample(0.1, 2), false);

  const std::string text = DumpMetricsText();
  const std::string key = "ifls_ledger_solve_seconds{venue=\"ledger-test\"";
  const double mean = SeriesValue(text, key);
  // Two samples a microsecond apart barely decay (tau is 60s), so the mean
  // sits strictly between the seed and the newest sample, near the seed.
  EXPECT_GT(mean, 0.1);
  EXPECT_LT(mean, 0.5);
  EXPECT_EQ(SeriesValue(text,
                        "ifls_ledger_queries_total{venue=\"ledger-test\""),
            2.0);

  // Distinct objectives key distinct aggregates.
  QueryCostSample other = MakeSample(0.25, 3);
  other.objective = IflsObjective::kMaxSum;
  ledger.RecordQuery(other, false);
  const std::string after = DumpMetricsText();
  EXPECT_NE(after.find("objective=\"maxsum\""), std::string::npos);
  EXPECT_EQ(SeriesValue(after,
                        "ifls_ledger_queries_total{venue=\"ledger-test\","
                        "objective=\"maxsum\""),
            1.0);
  ledger.Reset();
}

TEST(CostLedgerTest, SlowRingKeepsWorstQueriesWorstFirst) {
  QueryCostLedger& ledger = QueryCostLedger::Global();
  ledger.Reset();
  // 20 queries with strictly increasing latency: the ring must retain the
  // most expensive kSlowRingSlots of them under serial recording.
  for (std::uint64_t i = 1; i <= 20; ++i) {
    ledger.RecordQuery(MakeSample(0.001 * static_cast<double>(i), i), false);
  }
  const auto slow = ledger.SlowQueries();
  ASSERT_EQ(slow.size(), QueryCostLedger::kSlowRingSlots);
  for (std::size_t j = 0; j < slow.size(); ++j) {
    EXPECT_EQ(slow[j]->sample.trace_id, 20 - j) << "rank " << j;
  }

  // A cheaper query than every resident entry is rejected without
  // displacing anything.
  ledger.RecordQuery(MakeSample(0.0001, 99), false);
  const auto after = ledger.SlowQueries();
  ASSERT_EQ(after.size(), QueryCostLedger::kSlowRingSlots);
  EXPECT_EQ(after.back()->sample.trace_id, 13u);

  // Zero-latency samples never enter (0 is the empty-slot sentinel).
  ledger.Reset();
  ledger.RecordQuery(MakeSample(0.0, 1), false);
  EXPECT_TRUE(ledger.SlowQueries().empty());
  ledger.Reset();
}

TEST(CostLedgerTest, SlowRingCapturesSpanTreeForSampledQueries) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.Enable(1);
  QueryCostLedger& ledger = QueryCostLedger::Global();
  ledger.Reset();

  const std::uint64_t sampled_id = recorder.NewTraceId();
  {
    TraceIdScope scope(sampled_id, /*sampled=*/true);
    TraceSpan span(TraceCategory::kSolver, "ledger_test_span");
  }
  ledger.RecordQuery(MakeSample(0.5, sampled_id), /*capture_spans=*/true);
  // An unsampled query is retained (it is still slow) but without spans.
  ledger.RecordQuery(MakeSample(0.25, 777), /*capture_spans=*/false);

  const auto slow = ledger.SlowQueries();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0]->sample.trace_id, sampled_id);
  ASSERT_EQ(slow[0]->spans.size(), 1u);
  EXPECT_STREQ(slow[0]->spans[0].name, "ledger_test_span");
  EXPECT_TRUE(slow[1]->spans.empty());

  const std::string json = ledger.SlowQueriesJson();
  EXPECT_NE(json.find("\"slow_queries\""), std::string::npos);
  EXPECT_NE(json.find("\"ledger_test_span\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": " + std::to_string(sampled_id)),
            std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\": " +
                      std::to_string(sampled_id + 1000)),
            std::string::npos);

  recorder.Disable();
  recorder.Clear();
  ledger.Reset();
  EXPECT_NE(ledger.SlowQueriesJson().find("\"slow_queries\": []"),
            std::string::npos);
}

// --------------------------------------------------------- concurrency

TEST(CostLedgerTest, ConcurrentRecordersAndReadersStayConsistent) {
  QueryCostLedger& ledger = QueryCostLedger::Global();
  ledger.Reset();

  constexpr int kRecorders = 6;
  constexpr int kPerThread = 400;
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> threads;
  // Readers hammer every product while recorders run: the slow ring's
  // lock-free admission and the registry callbacks must tolerate this
  // (this file runs under the TSan `parallel` label).
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      while (!stop_readers.load(std::memory_order_relaxed)) {
        (void)ledger.SlowQueries();
        (void)ledger.SlowQueriesJson();
        (void)DumpMetricsText();
      }
    });
  }
  for (int t = 0; t < kRecorders; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Deterministic per-thread latencies; all threads share one
        // {venue, objective, tier} key so the counter sums across them.
        const double solve =
            0.001 * static_cast<double>((t * kPerThread + i) % 97 + 1);
        ledger.RecordQuery(
            MakeSample(solve,
                       static_cast<std::uint64_t>(t) * 100000 +
                           static_cast<std::uint64_t>(i) + 1),
            false);
      }
    });
  }
  for (std::size_t i = 2; i < threads.size(); ++i) threads[i].join();
  stop_readers.store(true, std::memory_order_relaxed);
  threads[0].join();
  threads[1].join();

  // Every sample was counted exactly once.
  const std::string text = DumpMetricsText();
  EXPECT_EQ(SeriesValue(text,
                        "ifls_ledger_queries_total{venue=\"ledger-test\""),
            static_cast<double>(kRecorders * kPerThread));

  // The ring holds full, valid, worst-first records. Admission is
  // best-effort under contention, so we assert ordering and plausibility,
  // not the exact winners.
  const auto slow = ledger.SlowQueries();
  ASSERT_EQ(slow.size(), QueryCostLedger::kSlowRingSlots);
  double previous = 1e9;
  for (const auto& record : slow) {
    const double total =
        record->sample.queue_seconds + record->sample.solve_seconds;
    EXPECT_GT(total, 0.0);
    EXPECT_LE(total, previous);
    EXPECT_EQ(record->sample.venue, "ledger-test");
    EXPECT_FALSE(record->tier.empty());
    previous = total;
  }
  ledger.Reset();
}

}  // namespace
}  // namespace ifls
