// Thread-safety of the logger (run under TSan via the `parallel` label):
// many threads logging concurrently must produce whole, non-interleaved
// lines, and SwapLogSink must be safe while other threads are mid-log.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "src/common/logging.h"

namespace ifls {
namespace {

/// Collects every emitted line. Write() runs under the logger's emission
/// mutex (see LogSink contract), so no extra locking is needed here.
class CapturingSink : public LogSink {
 public:
  void Write(LogLevel level, const std::string& line) override {
    lines_.push_back(line);
    if (level >= LogLevel::kWarning) ++warnings_;
  }

  const std::vector<std::string>& lines() const { return lines_; }
  int warnings() const { return warnings_; }

 private:
  std::vector<std::string> lines_;
  int warnings_ = 0;
};

TEST(LoggingConcurrentTest, ConcurrentLinesNeverTearOrInterleave) {
  constexpr int kThreads = 8;
  constexpr int kMessagesPerThread = 500;

  CapturingSink sink;
  LogSink* previous = SwapLogSink(&sink);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kMessagesPerThread; ++i) {
        IFLS_LOG(INFO) << "payload<" << t << ":" << i << ">end";
      }
    });
  }
  for (std::thread& t : threads) t.join();
  SwapLogSink(previous);

  ASSERT_EQ(sink.lines().size(),
            static_cast<std::size_t>(kThreads * kMessagesPerThread));

  // Every line is exactly one intact message: one payload marker, properly
  // terminated, never a fragment of another thread's line spliced in.
  std::vector<std::vector<bool>> seen(
      kThreads, std::vector<bool>(kMessagesPerThread, false));
  for (const std::string& line : sink.lines()) {
    const std::size_t start = line.find("payload<");
    ASSERT_NE(start, std::string::npos) << line;
    ASSERT_EQ(line.find("payload<", start + 1), std::string::npos) << line;
    const std::size_t colon = line.find(':', start);
    const std::size_t close = line.find(">end", colon);
    ASSERT_NE(colon, std::string::npos) << line;
    ASSERT_NE(close, std::string::npos) << line;
    ASSERT_EQ(close + 4, line.size()) << line;  // nothing appended after
    const int t = std::stoi(line.substr(start + 8, colon - start - 8));
    const int i = std::stoi(line.substr(colon + 1, close - colon - 1));
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, kMessagesPerThread);
    EXPECT_FALSE(seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(
        i)])
        << "duplicate " << line;
    seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] = true;
  }
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kMessagesPerThread; ++i) {
      ASSERT_TRUE(seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(
          i)])
          << "lost message " << t << ":" << i;
    }
  }
}

TEST(LoggingConcurrentTest, SwapLogSinkIsSafeWhileOthersLog) {
  constexpr int kThreads = 4;
  constexpr int kMessagesPerThread = 200;

  CapturingSink a;
  CapturingSink b;
  LogSink* previous = SwapLogSink(&a);

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    bool use_b = true;
    while (!stop.load(std::memory_order_relaxed)) {
      SwapLogSink(use_b ? static_cast<LogSink*>(&b)
                        : static_cast<LogSink*>(&a));
      use_b = !use_b;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kMessagesPerThread; ++i) {
        IFLS_LOG(WARNING) << "swap-test " << t << ":" << i;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  stop = true;
  swapper.join();
  SwapLogSink(previous);

  // Every message landed in exactly one of the two sinks, intact.
  EXPECT_EQ(a.lines().size() + b.lines().size(),
            static_cast<std::size_t>(kThreads * kMessagesPerThread));
  EXPECT_EQ(a.warnings() + b.warnings(), kThreads * kMessagesPerThread);
}

TEST(LoggingConcurrentTest, SwapReturnsPreviousSink) {
  CapturingSink sink;
  LogSink* previous = SwapLogSink(&sink);
  EXPECT_EQ(SwapLogSink(previous), &sink);
  IFLS_LOG(INFO) << "after restore";  // goes to the default sink again
  EXPECT_TRUE(sink.lines().empty());
}

}  // namespace
}  // namespace ifls
