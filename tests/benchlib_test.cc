#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "src/benchlib/harness.h"
#include "src/benchlib/table.h"

namespace ifls {
namespace {

TEST(TextTableTest, AlignsColumnsAndFormatsNumbers) {
  TextTable table({"venue", "time (s)", "mem (MB)"});
  table.AddRow({"MC", TextTable::Num(1.2345678), TextTable::Int(42)});
  table.AddRow({"CPH", TextTable::Num(0.000123), TextTable::Num(1e7)});
  std::ostringstream os;
  table.Print(&os);
  const std::string out = os.str();
  EXPECT_NE(out.find("venue"), std::string::npos);
  EXPECT_NE(out.find("MC"), std::string::npos);
  EXPECT_NE(out.find("1.2346"), std::string::npos);
  EXPECT_NE(out.find("1.230e-04"), std::string::npos);
  EXPECT_NE(out.find("1.000e+07"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTableTest, NumHandlesSpecialValues) {
  EXPECT_EQ(TextTable::Num(0.0), "0.0000");
  EXPECT_EQ(TextTable::Num(std::numeric_limits<double>::infinity()), "inf");
}

TEST(BenchScaleTest, EnvSelection) {
  setenv("IFLS_BENCH_SCALE", "smoke", 1);
  BenchScale smoke = BenchScale::FromEnv();
  EXPECT_EQ(smoke.name, "smoke");
  EXPECT_EQ(smoke.Clients(20000), 200u);
  EXPECT_EQ(smoke.repeats, 1);

  setenv("IFLS_BENCH_SCALE", "full", 1);
  BenchScale full = BenchScale::FromEnv();
  EXPECT_EQ(full.name, "full");
  EXPECT_EQ(full.Clients(20000), 20000u);
  EXPECT_EQ(full.repeats, 10);

  unsetenv("IFLS_BENCH_SCALE");
  BenchScale def = BenchScale::FromEnv();
  EXPECT_EQ(def.name, "default");
  EXPECT_EQ(def.Clients(20000), 1000u);
  // Client counts never hit zero.
  EXPECT_EQ(def.Clients(5), 1u);
}

TEST(HarnessTest, RunPairedProducesConsistentAggregates) {
  VenueCache cache;
  const Venue& venue = cache.venue(VenuePreset::kCopenhagenAirport, false);
  const VipTree& tree = cache.tree(VenuePreset::kCopenhagenAirport, false);
  // Same objects on second access (cache hit).
  EXPECT_EQ(&venue, &cache.venue(VenuePreset::kCopenhagenAirport, false));
  EXPECT_EQ(&tree, &cache.tree(VenuePreset::kCopenhagenAirport, false));

  WorkloadSpec spec;
  spec.preset = VenuePreset::kCopenhagenAirport;
  spec.num_existing = 5;
  spec.num_candidates = 10;
  spec.num_clients = 60;
  const PairedAggregate agg = RunPaired(venue, tree, spec, /*repeats=*/2,
                                        /*seed=*/1, /*verify_agreement=*/true);
  EXPECT_EQ(agg.repeats, 2);
  EXPECT_GT(agg.efficient.mean_time_seconds, 0.0);
  EXPECT_GT(agg.baseline.mean_time_seconds, 0.0);
  EXPECT_GT(agg.efficient.mean_memory_mb, 0.0);
  EXPECT_GT(agg.baseline.mean_memory_mb, 0.0);
  EXPECT_GT(agg.speedup, 0.0);
  // Both solvers are exact: they must agree on every repeat.
  EXPECT_EQ(agg.agreements, 2);
}

}  // namespace
}  // namespace ifls
