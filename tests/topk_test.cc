// Top-k IFLS (extension beyond the paper): the efficient solver's ranked
// mode against the exhaustive top-k oracle.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/brute_force.h"
#include "src/core/efficient.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

constexpr double kTol = 1e-7;

class TopKEnv {
 public:
  static TopKEnv& Get() {
    static TopKEnv* env = new TopKEnv();
    return *env;
  }
  const Venue& venue() const { return venue_; }
  const VipTree& tree() const { return *tree_; }

 private:
  TopKEnv() {
    venue_ = Unwrap(GenerateVenue(SmallVenueSpec()));
    tree_ = std::make_unique<VipTree>(Unwrap(VipTree::Build(&venue_)));
  }
  Venue venue_;
  std::unique_ptr<VipTree> tree_;
};

IflsContext RandomContext(std::uint64_t seed, std::size_t num_existing,
                          std::size_t num_candidates,
                          std::size_t num_clients) {
  TopKEnv& env = TopKEnv::Get();
  Rng rng(seed);
  IflsContext ctx;
  ctx.oracle = &env.tree();
  FacilitySets sets = Unwrap(SelectUniformFacilities(
      env.venue(), num_existing, num_candidates, &rng));
  ctx.existing = std::move(sets.existing);
  ctx.candidates = std::move(sets.candidates);
  for (std::size_t i = 0; i < num_clients; ++i) {
    ctx.clients.push_back(
        RandomClient(env.venue(), &rng, static_cast<ClientId>(i)));
  }
  return ctx;
}

struct TopKParam {
  std::uint64_t seed;
  std::size_t existing;
  std::size_t candidates;
  std::size_t clients;
  int k;
};

class TopKAgreementTest : public ::testing::TestWithParam<TopKParam> {};

TEST_P(TopKAgreementTest, RankedObjectivesMatchTheOracle) {
  const TopKParam p = GetParam();
  const IflsContext ctx =
      RandomContext(p.seed, p.existing, p.candidates, p.clients);
  const IflsResult oracle = Unwrap(SolveBruteForceTopKMinMax(ctx, p.k));
  EfficientOptions options;
  options.top_k = p.k;
  const IflsResult ranked = Unwrap(SolveEfficient(ctx, options));

  ASSERT_EQ(ranked.found, oracle.found);
  ASSERT_EQ(ranked.ranked.size(), oracle.ranked.size());
  for (std::size_t i = 0; i < ranked.ranked.size(); ++i) {
    // Ranked objective values must match position by position (candidate
    // ids may differ on exact ties).
    EXPECT_NEAR(ranked.ranked[i].second, oracle.ranked[i].second,
                kTol * std::max(1.0, oracle.ranked[i].second))
        << "rank " << i;
    // And each reported objective must be the candidate's true objective.
    EXPECT_NEAR(EvaluateMinMax(ctx, ranked.ranked[i].first),
                ranked.ranked[i].second,
                kTol * std::max(1.0, ranked.ranked[i].second))
        << "rank " << i;
  }
  if (ranked.found) {
    EXPECT_EQ(ranked.answer, ranked.ranked.front().first);
    EXPECT_DOUBLE_EQ(ranked.objective, ranked.ranked.front().second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrials, TopKAgreementTest,
    ::testing::Values(TopKParam{1101, 4, 10, 40, 3},
                      TopKParam{1102, 6, 12, 60, 5},
                      TopKParam{1103, 2, 8, 30, 2},
                      TopKParam{1104, 8, 15, 50, 4},
                      TopKParam{1105, 3, 6, 25, 6},
                      TopKParam{1106, 5, 20, 70, 10},
                      TopKParam{1107, 1, 5, 20, 3},
                      TopKParam{1108, 10, 10, 80, 7}));

TEST(TopKEdgeTest, KLargerThanCandidateCountReturnsAll) {
  const IflsContext ctx = RandomContext(1201, 4, 5, 30);
  EfficientOptions options;
  options.top_k = 50;
  const IflsResult ranked = Unwrap(SolveEfficient(ctx, options));
  const IflsResult oracle = Unwrap(SolveBruteForceTopKMinMax(ctx, 50));
  EXPECT_EQ(ranked.ranked.size(), ctx.candidates.size());
  ASSERT_EQ(oracle.ranked.size(), ctx.candidates.size());
  for (std::size_t i = 0; i < ranked.ranked.size(); ++i) {
    EXPECT_NEAR(ranked.ranked[i].second, oracle.ranked[i].second, kTol);
  }
}

TEST(TopKEdgeTest, RankedListIsSortedAscending) {
  const IflsContext ctx = RandomContext(1202, 5, 15, 45);
  EfficientOptions options;
  options.top_k = 8;
  const IflsResult ranked = Unwrap(SolveEfficient(ctx, options));
  for (std::size_t i = 1; i < ranked.ranked.size(); ++i) {
    EXPECT_LE(ranked.ranked[i - 1].second, ranked.ranked[i].second + kTol);
  }
}

TEST(TopKEdgeTest, KOneMatchesPlainSolve) {
  const IflsContext ctx = RandomContext(1203, 4, 9, 35);
  EfficientOptions options;
  options.top_k = 1;
  const IflsResult plain = Unwrap(SolveEfficient(ctx));
  const IflsResult single = Unwrap(SolveEfficient(ctx, options));
  EXPECT_EQ(plain.found, single.found);
  if (plain.found) {
    EXPECT_NEAR(EvaluateMinMax(ctx, plain.answer),
                EvaluateMinMax(ctx, single.answer), kTol);
  }
}

TEST(TopKEdgeTest, EmptyCandidates) {
  IflsContext ctx = RandomContext(1204, 4, 5, 20);
  ctx.candidates.clear();
  EfficientOptions options;
  options.top_k = 3;
  const IflsResult ranked = Unwrap(SolveEfficient(ctx, options));
  EXPECT_FALSE(ranked.found);
  EXPECT_TRUE(ranked.ranked.empty());
  EXPECT_TRUE(SolveBruteForceTopKMinMax(ctx, 0).status().IsInvalidArgument());
}

TEST(TopKEdgeTest, DistinctCandidatesInRanking) {
  const IflsContext ctx = RandomContext(1205, 6, 12, 40);
  EfficientOptions options;
  options.top_k = 6;
  const IflsResult ranked = Unwrap(SolveEfficient(ctx, options));
  std::set<PartitionId> unique;
  for (const auto& [n, obj] : ranked.ranked) unique.insert(n);
  EXPECT_EQ(unique.size(), ranked.ranked.size());
}

}  // namespace
}  // namespace ifls
