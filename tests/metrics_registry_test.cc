#include "src/common/metrics_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/rng.h"

namespace ifls {
namespace {

// Every test uses metric names unique to this binary ("mrt_" prefix) plus
// per-test suffixes: MetricsRegistry::Global() is process-wide and
// registry-owned series are never removed, so name reuse across tests would
// alias state.

// ------------------------------------------------------ LatencyHistogram

// The histogram's contract is bucketed accuracy: PercentileSeconds returns
// the upper bound of the quantile's bucket, so the reported value is always
// >= the true quantile and < 2x it (for samples >= 1us).
TEST(LatencyHistogramAccuracyTest, QuantilesWithinBucketFactorOfTruth) {
  LatencyHistogram h;
  Rng rng(7);
  std::vector<double> samples;
  constexpr int kN = 20000;
  samples.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    // Log-uniform over [2us, ~8ms]: spans many buckets like a real latency
    // distribution.
    const double us = std::exp2(1.0 + rng.NextDouble() * 12.0);
    samples.push_back(us * 1e-6);
    h.Record(us * 1e-6);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.10, 0.50, 0.90, 0.99}) {
    const double truth =
        samples[static_cast<std::size_t>(q * (kN - 1))];
    const double reported = h.PercentileSeconds(q);
    EXPECT_GE(reported, truth * (1.0 - 1e-9)) << "q=" << q;
    EXPECT_LE(reported, truth * 2.0 + 1e-12) << "q=" << q;
  }
  double sum = 0.0;
  for (double s : samples) sum += s;
  EXPECT_NEAR(h.MeanSeconds(), sum / kN, sum / kN * 1e-6);
}

TEST(LatencyHistogramAccuracyTest, EmptyHistogramReportsZeroes) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.MeanSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.total_seconds(), 0.0);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.PercentileSeconds(q), 0.0) << "q=" << q;
  }
}

TEST(LatencyHistogramAccuracyTest, OneSampleDrivesEveryQuantile) {
  LatencyHistogram h;
  h.Record(100e-6);  // bucket [64,128)us -> upper bound 128us
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(0.0), 128e-6);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(0.5), 128e-6);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(1.0), 128e-6);
  EXPECT_NEAR(h.MeanSeconds(), 100e-6, 1e-12);
}

TEST(LatencyHistogramAccuracyTest, BucketBoundsMatchBucketCounts) {
  LatencyHistogram h;
  h.Record(3e-6);   // [2,4)us -> bucket 1
  h.Record(3e-6);
  h.Record(70e-6);  // [64,128)us -> bucket 6
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(6), 1u);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperBoundSeconds(1), 4e-6);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperBoundSeconds(6), 128e-6);
  std::uint64_t total = 0;
  for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    total += h.bucket_count(b);
  }
  EXPECT_EQ(total, h.count());
}

TEST(LatencyHistogramAccuracyTest, ConcurrentMixedRecordsStayConsistent) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      // Distinct per-thread magnitudes, so the final bucket layout checks
      // that no thread's increments were lost or misfiled.
      const double seconds = std::ldexp(1.5, t) * 1e-6;
      for (int i = 0; i < kPerThread; ++i) h.Record(seconds);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(h.bucket_count(t), static_cast<std::uint64_t>(kPerThread))
        << "bucket " << t;
  }
}

// ------------------------------------------------------ MetricsRegistry

TEST(MetricsRegistryTest, OwnedInstrumentsAreStableSingletons) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c1 = reg.GetCounter("mrt_owned_total");
  Counter* c2 = reg.GetCounter("mrt_owned_total");
  EXPECT_EQ(c1, c2);  // same series -> same instrument
  Counter* labeled = reg.GetCounter("mrt_owned_total", "instance=\"1\"");
  EXPECT_NE(c1, labeled);  // distinct label set -> distinct series
  c1->Add(3);
  labeled->Add(4);
  EXPECT_EQ(c1->value(), 3u);
  EXPECT_EQ(labeled->value(), 4u);

  Gauge* g = reg.GetGauge("mrt_owned_gauge");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(reg.GetGauge("mrt_owned_gauge")->value(), 2.5);

  LatencyHistogram* hist = reg.GetHistogram("mrt_owned_seconds");
  hist->Record(5e-6);
  EXPECT_EQ(reg.GetHistogram("mrt_owned_seconds")->count(), 1u);
}

TEST(MetricsRegistryTest, CallbackSeriesAppearAndVanishWithRegistration) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  std::atomic<std::uint64_t> backing{41};
  {
    MetricsRegistry::Registration r = reg.RegisterCallbackCounter(
        "mrt_callback_total", "instance=\"7\"",
        [&backing] { return backing.load(); });
    backing.store(42);
    const std::string text = DumpMetricsText();
    EXPECT_NE(text.find("# TYPE mrt_callback_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("mrt_callback_total{instance=\"7\"} 42"),
              std::string::npos);
  }
  // Registration destroyed: the series (and its empty family) are gone.
  EXPECT_EQ(DumpMetricsText().find("mrt_callback_total"), std::string::npos);
}

TEST(MetricsRegistryTest, MovedRegistrationKeepsSeriesAlive) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  MetricsRegistry::Registration keeper;
  {
    MetricsRegistry::Registration r = reg.RegisterCallbackGauge(
        "mrt_moved_gauge", "", [] { return 1.0; });
    keeper = std::move(r);
  }
  EXPECT_NE(DumpMetricsText().find("mrt_moved_gauge 1"), std::string::npos);
  keeper.Reset();
  EXPECT_EQ(DumpMetricsText().find("mrt_moved_gauge"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusExpositionFormat) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("mrt_expo_total", "kind=\"a\"")->Add(5);
  reg.GetCounter("mrt_expo_total", "kind=\"b\"")->Add(6);
  reg.GetGauge("mrt_expo_depth")->Set(3.0);
  const std::string text = DumpMetricsText();

  // One TYPE line per family, preceding its samples.
  const std::size_t type_pos =
      text.find("# TYPE mrt_expo_total counter");
  const std::size_t a_pos = text.find("mrt_expo_total{kind=\"a\"} 5");
  const std::size_t b_pos = text.find("mrt_expo_total{kind=\"b\"} 6");
  ASSERT_NE(type_pos, std::string::npos);
  ASSERT_NE(a_pos, std::string::npos);
  ASSERT_NE(b_pos, std::string::npos);
  EXPECT_LT(type_pos, a_pos);
  EXPECT_LT(a_pos, b_pos);  // label sets in deterministic (map) order
  EXPECT_NE(text.find("# TYPE mrt_expo_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("mrt_expo_depth 3"), std::string::npos);
  // Exactly one TYPE line per family even with multiple series.
  std::size_t type_count = 0;
  for (std::size_t p = text.find("# TYPE mrt_expo_total");
       p != std::string::npos; p = text.find("# TYPE mrt_expo_total", p + 1)) {
    ++type_count;
  }
  EXPECT_EQ(type_count, 1u);
}

TEST(MetricsRegistryTest, HistogramExpositionIsCumulativeAndSummed) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  LatencyHistogram* h = reg.GetHistogram("mrt_hist_seconds");
  h->Record(3e-6);   // bucket 1, upper bound 4us
  h->Record(3e-6);
  h->Record(70e-6);  // bucket 6, upper bound 128us
  const std::string text = DumpMetricsText();
  EXPECT_NE(text.find("# TYPE mrt_hist_seconds histogram"),
            std::string::npos);
  // Cumulative counts: the 4us bucket holds 2, every bucket from 128us up
  // (and +Inf) holds all 3.
  EXPECT_NE(text.find("mrt_hist_seconds_bucket{le=\"4e-06\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("mrt_hist_seconds_bucket{le=\"0.000128\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("mrt_hist_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("mrt_hist_seconds_count 3"), std::string::npos);
  // _sum reproduces the recorded total (2*3us + 70us = 76us).
  const std::size_t sum_pos = text.find("mrt_hist_seconds_sum ");
  ASSERT_NE(sum_pos, std::string::npos);
  double sum = 0.0;
  std::istringstream(text.substr(sum_pos + 21)) >> sum;
  EXPECT_NEAR(sum, 76e-6, 1e-9);
}

TEST(MetricsRegistryTest, SubscriptionPushHistogramRoundTrips) {
  // The real series IflsService::RegisterMetrics binds its push-latency
  // histogram to. Recording through the registry handle must round-trip
  // into the text exposition — and be the same instrument a service would
  // aggregate into, since GetHistogram returns a stable singleton.
  MetricsRegistry& reg = MetricsRegistry::Global();
  LatencyHistogram* push_seconds =
      reg.GetHistogram("ifls_subscription_push_seconds");
  ASSERT_NE(push_seconds, nullptr);
  EXPECT_EQ(reg.GetHistogram("ifls_subscription_push_seconds"), push_seconds);

  push_seconds->Record(250e-6);
  push_seconds->Record(1.5e-3);
  const std::string text = DumpMetricsText();
  EXPECT_NE(text.find("# TYPE ifls_subscription_push_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("ifls_subscription_push_seconds_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("ifls_subscription_push_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  const std::size_t sum_pos =
      text.find("ifls_subscription_push_seconds_sum ");
  ASSERT_NE(sum_pos, std::string::npos);
  double sum = 0.0;
  std::istringstream(text.substr(sum_pos + 35)) >> sum;
  EXPECT_NEAR(sum, 1.75e-3, 1e-9);
}

TEST(MetricsRegistryTest, ConcurrentGetAndDumpSmoke) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      const std::string labels =
          "shard=\"" + std::to_string(t % 4) + "\"";
      for (int i = 0; i < 1000; ++i) {
        reg.GetCounter("mrt_race_total", labels)->Add(1);
        if (i % 100 == 0) (void)DumpMetricsText();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::uint64_t total = 0;
  for (int s = 0; s < 4; ++s) {
    total += reg.GetCounter("mrt_race_total",
                            "shard=\"" + std::to_string(s) + "\"")
                 ->value();
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * 1000u);
}

}  // namespace
}  // namespace ifls
