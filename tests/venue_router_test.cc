// VenueRouter tests: fleet snapshot round-trip, lazy hydration, routed
// query correctness against a directly-built solver, LRU eviction under a
// resident-memory budget, warm reload after eviction, and queries racing
// eviction/reload from concurrent threads (run under TSan via the
// `parallel` label).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/solve_dispatch.h"
#include "src/datasets/client_generator.h"
#include "src/datasets/facility_selector.h"
#include "src/datasets/venue_generator.h"
#include "src/service/fleet_store.h"
#include "src/service/venue_router.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::Unwrap;

/// A disposable fleet directory with `count` distinct small venues.
class VenueRouterTest : public ::testing::Test {
 protected:
  void BuildFleet(int count) {
    root_ = ::testing::TempDir() + "/ifls_fleet_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    for (int i = 0; i < count; ++i) {
      VenueGeneratorSpec spec = testing_util::SmallVenueSpec();
      spec.name = "venue" + std::to_string(i);
      spec.rooms_per_level += 4 * i;  // distinct sizes
      spec.door_jitter_seed = static_cast<std::uint64_t>(i + 1);
      venues_.push_back(Unwrap(GenerateVenue(spec)));
      Venue& venue = venues_.back();
      VipTree tree = Unwrap(VipTree::Build(&venue));
      Rng rng(static_cast<std::uint64_t>(100 + i));
      sets_.push_back(Unwrap(SelectUniformFacilities(venue, 3, 6, &rng)));
      ASSERT_TRUE(WriteVenueSnapshot(root_ + "/" + spec.name, venue, tree,
                                     sets_.back().existing,
                                     sets_.back().candidates)
                      .ok());
    }
  }

  std::vector<Client> ClientsFor(std::size_t venue_idx, std::uint64_t seed) {
    Rng rng(seed);
    return GenerateClients(venues_[venue_idx], 16, {}, &rng);
  }

  std::string root_;
  std::vector<Venue> venues_;  // stable: reserve not needed, Venue is movable
  std::vector<FacilitySets> sets_;
};

TEST_F(VenueRouterTest, FleetSnapshotRoundTripsFacilitySets) {
  BuildFleet(2);
  for (SnapshotLoadMode mode :
       {SnapshotLoadMode::kMmap, SnapshotLoadMode::kParse}) {
    LoadedVenueSnapshot snapshot =
        Unwrap(LoadVenueSnapshot(root_ + "/venue0", mode));
    EXPECT_EQ(snapshot.existing, sets_[0].existing);
    EXPECT_EQ(snapshot.candidates, sets_[0].candidates);
    EXPECT_EQ(snapshot.tree->is_mapped(), mode == SnapshotLoadMode::kMmap);
    EXPECT_EQ(snapshot.venue->num_partitions(), venues_[0].num_partitions());
  }
}

TEST_F(VenueRouterTest, ListsVenuesSorted) {
  BuildFleet(3);
  const std::vector<std::string> ids = Unwrap(ListFleetVenues(root_));
  EXPECT_EQ(ids,
            (std::vector<std::string>{"venue0", "venue1", "venue2"}));
  EXPECT_TRUE(ListFleetVenues("/no/such/fleet").status().IsIOError());
}

TEST_F(VenueRouterTest, RoutedQueryMatchesDirectSolve) {
  BuildFleet(2);
  std::unique_ptr<VenueRouter> router = Unwrap(VenueRouter::Open(root_, {}));

  for (std::size_t v = 0; v < 2; ++v) {
    const std::vector<Client> clients = ClientsFor(v, 7 + v);
    ServiceRequest request;
    request.objective = IflsObjective::kMinMax;
    request.clients = clients;
    const ServiceReply reply =
        router->Query("venue" + std::to_string(v), request);
    ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();

    VipTree direct_tree = Unwrap(VipTree::Build(&venues_[v]));
    IflsContext ctx;
    ctx.oracle = &direct_tree;
    ctx.existing = sets_[v].existing;
    ctx.candidates = sets_[v].candidates;
    ctx.clients = clients;
    const IflsResult direct =
        Unwrap(SolveWithObjective(IflsObjective::kMinMax, ctx));
    EXPECT_EQ(reply.result.found, direct.found);
    // Bit-identical objective; the answer partition is only pinned when no
    // other candidate ties (the overlay iterates sets in its own order).
    EXPECT_EQ(reply.result.objective, direct.objective);
  }
}

TEST_F(VenueRouterTest, UnknownVenueIsNotFound) {
  BuildFleet(1);
  std::unique_ptr<VenueRouter> router = Unwrap(VenueRouter::Open(root_, {}));
  EXPECT_TRUE(router->Service("nope").status().IsNotFound());
  EXPECT_TRUE(router->Query("nope", {}).status.IsNotFound());
  EXPECT_TRUE(router->Evict("nope").IsNotFound());
  EXPECT_FALSE(router->IsResident("nope"));
  EXPECT_TRUE(VenueRouter::Open("/no/such/fleet", {}).status().IsIOError());
}

TEST_F(VenueRouterTest, LazyHydrationAndManualEviction) {
  BuildFleet(2);
  std::unique_ptr<VenueRouter> router = Unwrap(VenueRouter::Open(root_, {}));
  EXPECT_FALSE(router->IsResident("venue0"));
  EXPECT_FALSE(router->IsResident("venue1"));

  ASSERT_TRUE(router->Preload("venue0").ok());
  EXPECT_TRUE(router->IsResident("venue0"));
  EXPECT_FALSE(router->IsResident("venue1"));
  VenueRouterMetrics m = router->Metrics();
  EXPECT_EQ(m.loads, 1u);
  EXPECT_EQ(m.resident_venues, 1u);
  EXPECT_GT(m.resident_bytes, 0u);
  EXPECT_GT(m.mapped_bytes, 0u);  // default load mode is mmap

  ASSERT_TRUE(router->Evict("venue0").ok());
  EXPECT_FALSE(router->IsResident("venue0"));
  EXPECT_EQ(router->Metrics().evictions, 1u);
  // Evicting a cold venue is a no-op, not an error.
  ASSERT_TRUE(router->Evict("venue0").ok());
  EXPECT_EQ(router->Metrics().evictions, 1u);
}

TEST_F(VenueRouterTest, MaxResidentBudgetEvictsLru) {
  BuildFleet(3);
  VenueRouterOptions options;
  options.max_resident_venues = 2;
  std::unique_ptr<VenueRouter> router =
      Unwrap(VenueRouter::Open(root_, options));

  ASSERT_TRUE(router->Preload("venue0").ok());
  ASSERT_TRUE(router->Preload("venue1").ok());
  EXPECT_TRUE(router->IsResident("venue0"));
  EXPECT_TRUE(router->IsResident("venue1"));

  // Touch venue0 so venue1 is the LRU victim when venue2 loads.
  ASSERT_TRUE(router->Service("venue0").ok());
  ASSERT_TRUE(router->Preload("venue2").ok());
  EXPECT_TRUE(router->IsResident("venue0"));
  EXPECT_FALSE(router->IsResident("venue1"));
  EXPECT_TRUE(router->IsResident("venue2"));
  EXPECT_EQ(router->Metrics().evictions, 1u);
}

TEST_F(VenueRouterTest, MemoryBudgetEvictsAndWarmReloadAnswersIdentically) {
  BuildFleet(3);
  // First pass: learn one venue's resident footprint, then budget for ~1.5
  // venues so every second load must evict.
  std::size_t one_venue_bytes = 0;
  {
    std::unique_ptr<VenueRouter> probe =
        Unwrap(VenueRouter::Open(root_, {}));
    ASSERT_TRUE(probe->Preload("venue0").ok());
    one_venue_bytes = probe->Metrics().resident_bytes;
    ASSERT_GT(one_venue_bytes, 0u);
  }
  VenueRouterOptions options;
  options.memory_budget_bytes = one_venue_bytes + one_venue_bytes / 2;
  std::unique_ptr<VenueRouter> router =
      Unwrap(VenueRouter::Open(root_, options));

  const std::vector<Client> clients = ClientsFor(0, 55);
  ServiceRequest request;
  request.objective = IflsObjective::kMinMax;
  request.clients = clients;
  const ServiceReply first = router->Query("venue0", request);
  ASSERT_TRUE(first.status.ok());

  // Loading the other venues blows the budget and evicts venue0 (LRU).
  ASSERT_TRUE(router->Preload("venue1").ok());
  ASSERT_TRUE(router->Preload("venue2").ok());
  EXPECT_FALSE(router->IsResident("venue0"));
  EXPECT_GE(router->Metrics().evictions, 1u);

  // Warm reload: the re-mapped snapshot must answer bit-identically.
  const ServiceReply again = router->Query("venue0", request);
  ASSERT_TRUE(again.status.ok());
  EXPECT_TRUE(router->IsResident("venue0"));
  EXPECT_EQ(first.result.found, again.result.found);
  EXPECT_EQ(first.result.answer, again.result.answer);
  EXPECT_EQ(first.result.objective, again.result.objective);
  EXPECT_GE(router->Metrics().loads, 4u);  // venue0 twice
}

TEST_F(VenueRouterTest, ParseLoadModeServesIdenticalAnswers) {
  BuildFleet(1);
  const std::vector<Client> clients = ClientsFor(0, 99);
  ServiceRequest request;
  request.objective = IflsObjective::kMinDist;
  request.clients = clients;

  VenueRouterOptions mmap_opts;
  std::unique_ptr<VenueRouter> mmap_router =
      Unwrap(VenueRouter::Open(root_, mmap_opts));
  const ServiceReply from_mmap = mmap_router->Query("venue0", request);
  ASSERT_TRUE(from_mmap.status.ok());

  VenueRouterOptions parse_opts;
  parse_opts.load_mode = SnapshotLoadMode::kParse;
  std::unique_ptr<VenueRouter> parse_router =
      Unwrap(VenueRouter::Open(root_, parse_opts));
  const ServiceReply from_parse = parse_router->Query("venue0", request);
  ASSERT_TRUE(from_parse.status.ok());

  EXPECT_EQ(from_mmap.result.answer, from_parse.result.answer);
  EXPECT_EQ(from_mmap.result.objective, from_parse.result.objective);
  EXPECT_EQ(parse_router->Metrics().mapped_bytes, 0u);  // no mmap in parse
}

TEST_F(VenueRouterTest, MutationsRouteToTheRightVenue) {
  BuildFleet(2);
  std::unique_ptr<VenueRouter> router = Unwrap(VenueRouter::Open(root_, {}));
  // Remove venue0's last candidate; venue1 must still see its full set.
  const PartitionId removed = sets_[0].candidates.back();
  std::uint64_t version = 0;
  ASSERT_TRUE(router
                  ->Mutate("venue0",
                           {MutationKind::kRemoveCandidate, removed},
                           &version)
                  .ok());
  EXPECT_GT(version, 0u);

  std::shared_ptr<IflsService> v0 = Unwrap(router->Service("venue0"));
  std::shared_ptr<IflsService> v1 = Unwrap(router->Service("venue1"));
  EXPECT_EQ(
      v0->AcquireState()->overlay.effective_candidates().size(),
      sets_[0].candidates.size() - 1);
  EXPECT_EQ(v1->AcquireState()->overlay.effective_candidates().size(),
            sets_[1].candidates.size());
}

/// Queries race Evict() and the implied reloads from many threads; every
/// reply must be either OK with the right answer or a clean NotFound-free
/// status. In-flight queries hold the service shared_ptr, so eviction can
/// never pull the snapshot out from under a running solve.
TEST_F(VenueRouterTest, ConcurrentQueriesRaceEvictionAndReload) {
  BuildFleet(3);
  VenueRouterOptions options;
  options.service.num_workers = 2;
  std::unique_ptr<VenueRouter> router =
      Unwrap(VenueRouter::Open(root_, options));

  // Expected answers, solved once up front.
  std::vector<std::vector<Client>> clients;
  std::vector<IflsResult> expected;
  for (std::size_t v = 0; v < 3; ++v) {
    clients.push_back(ClientsFor(v, 300 + v));
    VipTree tree = Unwrap(VipTree::Build(&venues_[v]));
    IflsContext ctx;
    ctx.oracle = &tree;
    ctx.existing = sets_[v].existing;
    ctx.candidates = sets_[v].candidates;
    ctx.clients = clients.back();
    expected.push_back(Unwrap(SolveWithObjective(IflsObjective::kMinMax, ctx)));
  }

  constexpr int kQueryThreads = 4;
  constexpr int kQueriesPerThread = 25;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread evictor([&] {
    std::size_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string id = "venue" + std::to_string(round++ % 3);
      const Status s = router->Evict(id);
      if (!s.ok()) failures.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kQueryThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(500 + t));
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const std::size_t v = rng.NextBounded(3);
        ServiceRequest request;
        request.objective = IflsObjective::kMinMax;
        request.clients = clients[v];
        const ServiceReply reply =
            router->Query("venue" + std::to_string(v), request);
        // The objective must match the direct solve bit for bit. The answer
        // partition may legitimately differ when several candidates tie on
        // the objective (the service's overlay iterates the composed sets in
        // a different order than the raw context), so it is not asserted.
        if (!reply.status.ok() ||
            reply.result.found != expected[v].found ||
            reply.result.objective != expected[v].objective) {
          failures.fetch_add(1, std::memory_order_relaxed);
          std::printf("race failure: venue%zu status %s answer %d obj %.17g "
                      "(expected %d / %.17g)\n",
                      v, reply.status.ToString().c_str(),
                      reply.result.answer, reply.result.objective,
                      expected[v].answer, expected[v].objective);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  evictor.join();

  EXPECT_EQ(failures.load(), 0);
  const VenueRouterMetrics m = router->Metrics();
  EXPECT_EQ(m.known_venues, 3u);
  EXPECT_GE(m.loads, 3u);
  std::printf("race: %llu loads, %llu hits, %llu evictions\n",
              static_cast<unsigned long long>(m.loads),
              static_cast<unsigned long long>(m.hits),
              static_cast<unsigned long long>(m.evictions));
}

}  // namespace
}  // namespace ifls
