#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/datasets/presets.h"
#include "src/datasets/workload.h"
#include "src/index/vip_tree_io_v3.h"
#include "src/io/venue_io.h"
#include "src/io/workload_io.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::BuildTinyVenue;
using testing_util::TinyVenue;
using testing_util::Unwrap;

void ExpectVenuesEqual(const Venue& a, const Venue& b) {
  ASSERT_EQ(a.num_partitions(), b.num_partitions());
  ASSERT_EQ(a.num_doors(), b.num_doors());
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.num_levels(), b.num_levels());
  EXPECT_EQ(a.num_rooms(), b.num_rooms());
  for (std::size_t i = 0; i < a.num_partitions(); ++i) {
    const Partition& pa = a.partition(static_cast<PartitionId>(i));
    const Partition& pb = b.partition(static_cast<PartitionId>(i));
    EXPECT_EQ(pa.rect, pb.rect);
    EXPECT_EQ(pa.kind, pb.kind);
    EXPECT_EQ(pa.category, pb.category);
    EXPECT_EQ(pa.doors, pb.doors);
  }
  for (std::size_t i = 0; i < a.num_doors(); ++i) {
    const Door& da = a.door(static_cast<DoorId>(i));
    const Door& db = b.door(static_cast<DoorId>(i));
    EXPECT_EQ(da.position, db.position);
    EXPECT_EQ(da.partition_a, db.partition_a);
    EXPECT_EQ(da.partition_b, db.partition_b);
    EXPECT_DOUBLE_EQ(da.vertical_cost, db.vertical_cost);
  }
}

TEST(VenueIoTest, TinyVenueRoundTrips) {
  TinyVenue t = BuildTinyVenue();
  t.venue.SetCategory(t.room_a, "dining & entertainment");
  std::stringstream stream;
  ASSERT_TRUE(SaveVenue(t.venue, &stream).ok());
  Venue loaded = Unwrap(LoadVenue(&stream));
  ExpectVenuesEqual(t.venue, loaded);
}

TEST(VenueIoTest, GeneratedVenueWithJitterRoundTrips) {
  VenueGeneratorSpec spec = testing_util::SmallVenueSpec();
  spec.door_jitter_seed = 99;
  Venue venue = Unwrap(GenerateVenue(spec));
  std::stringstream stream;
  ASSERT_TRUE(SaveVenue(venue, &stream).ok());
  Venue loaded = Unwrap(LoadVenue(&stream));
  ExpectVenuesEqual(venue, loaded);
}

TEST(VenueIoTest, CategoriesWithSpacesSurvive) {
  Venue venue = Unwrap(BuildPresetVenue(VenuePreset::kMelbourneCentral));
  ASSERT_TRUE(AssignMelbourneCentralCategories(&venue).ok());
  std::stringstream stream;
  ASSERT_TRUE(SaveVenue(venue, &stream).ok());
  Venue loaded = Unwrap(LoadVenue(&stream));
  ExpectVenuesEqual(venue, loaded);
}

TEST(VenueIoTest, FileRoundTrip) {
  TinyVenue t = BuildTinyVenue();
  const std::string path = ::testing::TempDir() + "/ifls_venue.txt";
  ASSERT_TRUE(SaveVenueToFile(t.venue, path).ok());
  Venue loaded = Unwrap(LoadVenueFromFile(path));
  ExpectVenuesEqual(t.venue, loaded);
}

TEST(VenueIoTest, RejectsGarbage) {
  std::stringstream stream("NOT_A_VENUE 1");
  EXPECT_TRUE(LoadVenue(&stream).status().IsInvalidArgument());
  std::stringstream wrong_version("IFLS_VENUE 99\n");
  EXPECT_TRUE(LoadVenue(&wrong_version).status().IsInvalidArgument());
  std::stringstream truncated("IFLS_VENUE 1\nname x\npartitions 2\n");
  EXPECT_FALSE(LoadVenue(&truncated).ok());
  EXPECT_TRUE(LoadVenueFromFile("/no/such/path").status().IsIOError());
}

TEST(WorkloadIoTest, RoundTrips) {
  Venue venue = Unwrap(GenerateVenue(testing_util::SmallVenueSpec()));
  Rng rng(21);
  WorkloadData data;
  data.facilities = Unwrap(SelectUniformFacilities(venue, 5, 7, &rng));
  ClientGeneratorOptions options;
  data.clients = GenerateClients(venue, 40, options, &rng);

  std::stringstream stream;
  ASSERT_TRUE(SaveWorkload(data, &stream).ok());
  WorkloadData loaded = Unwrap(LoadWorkload(&stream));
  EXPECT_EQ(loaded.facilities.existing, data.facilities.existing);
  EXPECT_EQ(loaded.facilities.candidates, data.facilities.candidates);
  ASSERT_EQ(loaded.clients.size(), data.clients.size());
  for (std::size_t i = 0; i < data.clients.size(); ++i) {
    EXPECT_EQ(loaded.clients[i].partition, data.clients[i].partition);
    EXPECT_EQ(loaded.clients[i].position, data.clients[i].position);
    EXPECT_EQ(loaded.clients[i].id, static_cast<ClientId>(i));
  }
}

TEST(WorkloadIoTest, FileRoundTrip) {
  Venue venue = Unwrap(GenerateVenue(testing_util::SmallVenueSpec()));
  Rng rng(23);
  WorkloadData data;
  data.facilities = Unwrap(SelectUniformFacilities(venue, 2, 3, &rng));
  const std::string path = ::testing::TempDir() + "/ifls_workload.txt";
  ASSERT_TRUE(SaveWorkloadToFile(data, path).ok());
  WorkloadData loaded = Unwrap(LoadWorkloadFromFile(path));
  EXPECT_EQ(loaded.facilities.existing, data.facilities.existing);
}

TEST(WorkloadIoTest, RejectsGarbage) {
  std::stringstream stream("BOGUS");
  EXPECT_TRUE(LoadWorkload(&stream).status().IsInvalidArgument());
  std::stringstream truncated("IFLS_WORKLOAD 1\nexisting 5 1 2\n");
  EXPECT_FALSE(LoadWorkload(&truncated).ok());
}

// ---------------------------------------------------------------------------
// v3 mmap snapshot: corrupted-file regressions. Every failure mode must
// surface as a proper Status from the mapping/validation pipeline — never
// a crash, an abort, or a silently wrong index.
// ---------------------------------------------------------------------------

class V3CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    venue_ = testing_util::Unwrap(
        GenerateVenue(testing_util::SmallVenueSpec()));
    VipTree tree = testing_util::Unwrap(VipTree::Build(&venue_));
    path_ = ::testing::TempDir() + "/ifls_corrupt.v3.ifls";
    ASSERT_TRUE(tree.SaveV3ToFile(path_).ok());
  }

  std::string ReadBytes() {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  void WriteBytes(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  Status Load() { return VipTree::LoadV3FromFile(&venue_, path_).status(); }

  Venue venue_;
  std::string path_;
};

TEST_F(V3CorruptionTest, IntactFileLoads) {
  EXPECT_TRUE(VipTree::LoadV3FromFile(&venue_, path_).ok());
}

TEST_F(V3CorruptionTest, ShortMapSmallerThanHeader) {
  WriteBytes(ReadBytes().substr(0, 64));
  const Status s = Load();
  ASSERT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("short map"), std::string::npos);
}

TEST_F(V3CorruptionTest, ShortMapTruncatedTail) {
  const std::string bytes = ReadBytes();
  WriteBytes(bytes.substr(0, bytes.size() - 1024));
  const Status s = Load();
  ASSERT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("short map"), std::string::npos);
}

TEST_F(V3CorruptionTest, BadMagic) {
  std::string bytes = ReadBytes();
  bytes[0] ^= 0x5a;
  WriteBytes(bytes);
  const Status s = Load();
  ASSERT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("bad magic"), std::string::npos);
}

TEST_F(V3CorruptionTest, HeaderChecksumMismatch) {
  std::string bytes = ReadBytes();
  // Flip a bit inside the header (leaf_capacity) without re-checksumming.
  bytes[offsetof(V3Header, leaf_capacity)] ^= 1;
  WriteBytes(bytes);
  const Status s = Load();
  ASSERT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("header checksum"), std::string::npos);
}

TEST_F(V3CorruptionTest, PayloadChecksumMismatch) {
  std::string bytes = ReadBytes();
  V3Header h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  // Flip one distance byte; the continued ids->dist->hops checksum catches
  // it before any query can read the poisoned cell.
  bytes[h.dist_offset + 3] ^= 0xff;
  WriteBytes(bytes);
  const Status s = Load();
  ASSERT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("payload checksum"), std::string::npos);
}

TEST_F(V3CorruptionTest, DescriptorTableChecksumMismatch) {
  std::string bytes = ReadBytes();
  V3Header h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  bytes[h.structure_offset + offsetof(V3NodeRecord, num_doors)] ^= 1;
  WriteBytes(bytes);
  const Status s = Load();
  ASSERT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("descriptor table checksum"), std::string::npos);
}

TEST_F(V3CorruptionTest, TruncatedDescriptorTable) {
  std::string bytes = ReadBytes();
  V3Header h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  // Claim one more node than the table holds, re-checksumming the header so
  // the size check itself (not the checksum) must catch the lie.
  h.num_nodes += 1;
  h.header_checksum = 0;
  h.header_checksum = Fnv1a64(&h, sizeof(h));
  std::memcpy(bytes.data(), &h, sizeof(h));
  WriteBytes(bytes);
  const Status s = Load();
  ASSERT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("descriptor table is truncated"),
            std::string::npos);
}

TEST_F(V3CorruptionTest, WrongVenueRejected) {
  VenueGeneratorSpec other_spec = testing_util::SmallVenueSpec();
  other_spec.rooms_per_level = 30;
  Venue other = testing_util::Unwrap(GenerateVenue(other_spec));
  const Status s = VipTree::LoadV3FromFile(&other, path_).status();
  ASSERT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("different venue"), std::string::npos);
}

TEST_F(V3CorruptionTest, MissingFileIsIOError) {
  EXPECT_TRUE(VipTree::LoadV3FromFile(&venue_, "/no/such/file.v3.ifls")
                  .status()
                  .IsIOError());
}

}  // namespace
}  // namespace ifls
