// Differential lock-in of the parallel batch engine: across 20+ randomized
// venues, BatchQueryEngine::Run on a multi-worker pool must be bit-identical
// to RunSequential, to the plain sequential solvers, and deterministic
// across repeated runs — answers, tie-breaks, objectives and per-query work
// counters included — while every answer stays optimal per the brute-force
// oracles for all three objectives.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/batch_engine.h"
#include "src/core/brute_force.h"
#include "src/core/efficient.h"
#include "src/core/maxsum.h"
#include "src/core/mindist.h"
#include "src/common/logging.h"
#include "src/index/minplus_kernels.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::Unwrap;

constexpr double kTol = 1e-7;

/// One self-contained randomized scenario: its own venue, index, and a batch
/// mixing all three objectives over several facility/client draws.
struct Scenario {
  Venue venue;
  std::unique_ptr<VipTree> tree;
  std::vector<BatchQuery> batch;
};

VenueGeneratorSpec RandomSpec(Rng* rng) {
  VenueGeneratorSpec spec;
  spec.name = "diff";
  spec.levels = 1 + static_cast<int>(rng->NextBounded(2));
  spec.rooms_per_level = 12 + static_cast<int>(rng->NextBounded(16));
  spec.rooms_per_corridor_side = 4 + static_cast<int>(rng->NextBounded(4));
  spec.room_width = 4.0 + rng->NextUniform(0.0, 3.0);
  spec.room_depth = 6.0 + rng->NextUniform(0.0, 3.0);
  spec.corridor_width = 3.0;
  spec.stairwells = 1;
  spec.stair_length = 8.0 + rng->NextUniform(0.0, 6.0);
  spec.door_jitter_seed = rng->NextBounded(1u << 20) + 1;
  return spec;
}

Scenario BuildScenario(std::uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.venue = Unwrap(GenerateVenue(RandomSpec(&rng)));
  s.tree = std::make_unique<VipTree>(Unwrap(VipTree::Build(&s.venue)));
  // Three independent contexts per venue, each queried under every
  // objective, so one batch mixes cheap and expensive work.
  for (int draw = 0; draw < 3; ++draw) {
    IflsContext ctx;
    ctx.oracle = s.tree.get();
    FacilitySets sets = Unwrap(SelectUniformFacilities(
        s.venue, 2 + rng.NextBounded(3), 4 + rng.NextBounded(5), &rng));
    ctx.existing = std::move(sets.existing);
    ctx.candidates = std::move(sets.candidates);
    const std::size_t num_clients = 10 + rng.NextBounded(25);
    for (std::size_t i = 0; i < num_clients; ++i) {
      ctx.clients.push_back(
          RandomClient(s.venue, &rng, static_cast<ClientId>(i)));
    }
    for (IflsObjective objective :
         {IflsObjective::kMinMax, IflsObjective::kMinDist,
          IflsObjective::kMaxSum}) {
      s.batch.push_back(BatchQuery{objective, ctx});
    }
  }
  return s;
}

/// Exact (bit-level) equality of two outcomes, including the stats fields
/// that the thread-local counter sinks attribute per query. Any divergence
/// here means worker interleaving leaked into a result.
void ExpectIdentical(const BatchQueryOutcome& a, const BatchQueryOutcome& b,
                     const char* which, std::size_t i) {
  SCOPED_TRACE(::testing::Message() << which << " query " << i);
  ASSERT_EQ(a.status.ok(), b.status.ok());
  if (!a.status.ok()) return;
  EXPECT_EQ(a.result.found, b.result.found);
  EXPECT_EQ(a.result.answer, b.result.answer);  // tie-breaks included
  EXPECT_EQ(a.result.objective, b.result.objective);
  EXPECT_EQ(a.result.ranked, b.result.ranked);
  EXPECT_EQ(a.result.stats.distance_computations,
            b.result.stats.distance_computations);
  EXPECT_EQ(a.result.stats.lower_bound_computations,
            b.result.stats.lower_bound_computations);
  EXPECT_EQ(a.result.stats.queue_pushes, b.result.stats.queue_pushes);
  EXPECT_EQ(a.result.stats.queue_pops, b.result.stats.queue_pops);
  EXPECT_EQ(a.result.stats.door_distance_evals,
            b.result.stats.door_distance_evals);
  EXPECT_EQ(a.result.stats.matrix_lookups, b.result.stats.matrix_lookups);
  EXPECT_EQ(a.result.stats.peak_memory_bytes,
            b.result.stats.peak_memory_bytes);
}

/// The parallel answer must match what the brute-force oracle deems optimal
/// for the query's objective (answers may differ from the oracle's when
/// objectives tie; the achieved value may not).
void ExpectOptimal(const BatchQuery& query, const BatchQueryOutcome& outcome,
                   std::size_t i) {
  SCOPED_TRACE(::testing::Message()
               << IflsObjectiveName(query.objective) << " query " << i);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  const IflsContext& ctx = query.context;
  switch (query.objective) {
    case IflsObjective::kMinMax: {
      const IflsResult brute = Unwrap(SolveBruteForceMinMax(ctx));
      ASSERT_TRUE(brute.found);
      if (outcome.result.found) {
        const double achieved = EvaluateMinMax(ctx, outcome.result.answer);
        EXPECT_NEAR(achieved, brute.objective,
                    kTol * std::max(1.0, brute.objective));
      } else {
        const double f0 = NoFacilityMinMax(ctx);
        EXPECT_NEAR(brute.objective, f0, kTol * std::max(1.0, f0));
      }
      break;
    }
    case IflsObjective::kMinDist: {
      const IflsResult brute = Unwrap(SolveBruteForceMinDist(ctx));
      ASSERT_TRUE(brute.found);
      if (outcome.result.found) {
        const double achieved = EvaluateMinDist(ctx, outcome.result.answer);
        EXPECT_NEAR(achieved, brute.objective,
                    kTol * std::max(1.0, brute.objective));
      } else {
        const double f0 = NoFacilityMinDist(ctx);
        EXPECT_NEAR(brute.objective, f0, kTol * std::max(1.0, f0));
      }
      break;
    }
    case IflsObjective::kMaxSum: {
      const IflsResult brute = Unwrap(SolveBruteForceMaxSum(ctx));
      if (outcome.result.found) {
        EXPECT_DOUBLE_EQ(EvaluateMaxSum(ctx, outcome.result.answer),
                         brute.objective);
      } else {
        EXPECT_DOUBLE_EQ(brute.objective, 0.0);
      }
      break;
    }
  }
}

class ParallelDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelDifferentialTest, ParallelMatchesSequentialAndOracle) {
  Scenario s = BuildScenario(GetParam());

  BatchEngineOptions opts;
  opts.num_threads = 4;
  BatchQueryEngine engine(opts);
  ASSERT_EQ(engine.num_threads(), 4);

  const std::vector<BatchQueryOutcome> parallel = engine.Run(s.batch);
  const std::vector<BatchQueryOutcome> repeat = engine.Run(s.batch);
  const std::vector<BatchQueryOutcome> sequential =
      engine.RunSequential(s.batch);

  BatchEngineOptions inline_opts;
  inline_opts.num_threads = 1;
  BatchQueryEngine inline_engine(inline_opts);
  const std::vector<BatchQueryOutcome> inlined = inline_engine.Run(s.batch);

  ASSERT_EQ(parallel.size(), s.batch.size());
  ASSERT_EQ(sequential.size(), s.batch.size());
  for (std::size_t i = 0; i < s.batch.size(); ++i) {
    ExpectIdentical(parallel[i], sequential[i], "parallel-vs-sequential", i);
    ExpectIdentical(parallel[i], repeat[i], "parallel-vs-repeat", i);
    ExpectIdentical(parallel[i], inlined[i], "parallel-vs-inline", i);

    // The same solve, invoked directly outside any engine.
    const BatchQuery& q = s.batch[i];
    const Result<IflsResult> direct = [&]() -> Result<IflsResult> {
      switch (q.objective) {
        case IflsObjective::kMinMax:
          return SolveEfficient(q.context);
        case IflsObjective::kMinDist:
          return SolveMinDist(q.context);
        case IflsObjective::kMaxSum:
          return SolveMaxSum(q.context);
      }
      return Status::Internal("unreachable");
    }();
    BatchQueryOutcome direct_outcome;
    if (direct.ok()) {
      direct_outcome.result = direct.value();
    } else {
      direct_outcome.status = direct.status();
    }
    ExpectIdentical(parallel[i], direct_outcome, "parallel-vs-direct", i);

    ExpectOptimal(q, parallel[i], i);
  }

  const BatchRunReport& report = engine.last_report();
  EXPECT_EQ(report.num_queries, s.batch.size());
  EXPECT_EQ(report.num_failed, 0u);
  EXPECT_EQ(report.num_threads, 1);  // engine's last call was RunSequential
}

INSTANTIATE_TEST_SUITE_P(RandomVenues, ParallelDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 22));

/// Answer-level equality only: the door-cache axis legitimately changes the
/// work counters (a warm memo skips matrix compositions), so across that
/// axis we assert the *results* are bit-identical and leave the counters to
/// ExpectIdentical on the counter-preserving axes.
void ExpectSameAnswer(const BatchQueryOutcome& a, const BatchQueryOutcome& b,
                      const char* which, std::size_t i) {
  SCOPED_TRACE(::testing::Message() << which << " query " << i);
  ASSERT_EQ(a.status.ok(), b.status.ok());
  if (!a.status.ok()) return;
  EXPECT_EQ(a.result.found, b.result.found);
  EXPECT_EQ(a.result.answer, b.result.answer);
  EXPECT_EQ(a.result.objective, b.result.objective);  // bit-level double
  EXPECT_EQ(a.result.ranked, b.result.ranked);
}

// The tentpole's contract, checked end to end: solver answers must be
// bit-identical across the kernel-dispatch axis (scalar reference vs every
// supported SIMD tier of the ladder) and the door-cache axis (sharded memo
// on vs off), in every combination. The dispatch axis must preserve even
// the per-query work counters; the cache axis preserves answers while
// (intentionally) changing the counters.
TEST(DispatchCacheDifferentialTest, AnswersBitIdenticalAcrossBothAxes) {
  std::vector<kernels::KernelTier> tiers;
  for (int t = 0; t < kernels::kNumKernelTiers; ++t) {
    const auto tier = static_cast<kernels::KernelTier>(t);
    if (kernels::KernelTierSupported(tier)) tiers.push_back(tier);
  }
  for (const std::uint64_t seed : {3, 11, 19}) {
    Scenario s = BuildScenario(seed);  // default tree: door cache OFF
    VipTreeOptions cached_opts;
    cached_opts.enable_door_distance_cache = true;
    VipTree cached_tree = Unwrap(VipTree::Build(&s.venue, cached_opts));
    std::vector<BatchQuery> cached_batch = s.batch;
    for (BatchQuery& q : cached_batch) q.context.oracle = &cached_tree;

    BatchEngineOptions opts;
    opts.num_threads = 4;
    BatchQueryEngine engine(opts);

    // tiers[0] is always the scalar reference; run it first so every later
    // tier (and the cache axis) compares against it.
    std::vector<std::vector<BatchQueryOutcome>> plain_by_tier;
    std::vector<std::vector<BatchQueryOutcome>> cached_by_tier;
    for (const kernels::KernelTier tier : tiers) {
      IFLS_CHECK_OK(kernels::PinKernelTier(tier));
      plain_by_tier.push_back(engine.Run(s.batch));
      // First tier hits a cold cache with 4 threads racing to fill it;
      // later tiers see it warm — both must agree with the plain answers.
      cached_by_tier.push_back(engine.Run(cached_batch));
    }
    kernels::ResetKernelTierAuto();

    ASSERT_EQ(plain_by_tier[0].size(), s.batch.size());
    for (std::size_t i = 0; i < s.batch.size(); ++i) {
      for (std::size_t t = 1; t < tiers.size(); ++t) {
        // Dispatch axis, cache off: identical down to the work counters.
        ExpectIdentical(plain_by_tier[0][i], plain_by_tier[t][i],
                        kernels::KernelTierName(tiers[t]), i);
      }
      // Cache axis (and cold-vs-warm cache): answers identical to the last
      // bit even though the counters differ.
      for (std::size_t t = 0; t < tiers.size(); ++t) {
        ExpectSameAnswer(plain_by_tier[0][i], cached_by_tier[t][i],
                         "plain-vs-cache", i);
      }
    }
  }
}

TEST(BatchQueryEngineTest, InvalidQueryFailsAloneAndIdentically) {
  Scenario s = BuildScenario(1234);
  BatchQuery bad = s.batch.front();
  bad.context.existing.push_back(
      static_cast<PartitionId>(s.venue.num_partitions()));  // out of range
  std::vector<BatchQuery> batch = s.batch;
  batch.insert(batch.begin() + 2, bad);

  BatchEngineOptions opts;
  opts.num_threads = 3;
  BatchQueryEngine engine(opts);
  const std::vector<BatchQueryOutcome> parallel = engine.Run(batch);
  EXPECT_EQ(engine.last_report().num_failed, 1u);
  const std::vector<BatchQueryOutcome> sequential =
      engine.RunSequential(batch);

  ASSERT_EQ(parallel.size(), batch.size());
  EXPECT_FALSE(parallel[2].status.ok());
  EXPECT_TRUE(parallel[2].status.IsInvalidArgument());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(parallel[i].status.ok(), sequential[i].status.ok());
    if (parallel[i].status.ok()) {
      EXPECT_EQ(parallel[i].result.answer, sequential[i].result.answer);
      EXPECT_EQ(parallel[i].result.objective, sequential[i].result.objective);
    }
  }
}

TEST(BatchQueryEngineTest, ObjectiveNamesAreStable) {
  EXPECT_STREQ(IflsObjectiveName(IflsObjective::kMinMax), "MinMax");
  EXPECT_STREQ(IflsObjectiveName(IflsObjective::kMinDist), "MinDist");
  EXPECT_STREQ(IflsObjectiveName(IflsObjective::kMaxSum), "MaxSum");
}

TEST(BatchQueryEngineTest, ReportAggregatesMatchPerQueryStats) {
  Scenario s = BuildScenario(77);
  BatchEngineOptions opts;
  opts.num_threads = 2;
  BatchQueryEngine engine(opts);
  const std::vector<BatchQueryOutcome> outcomes = engine.Run(s.batch);
  const BatchRunReport& report = engine.last_report();
  EXPECT_EQ(report.num_threads, 2);
  EXPECT_EQ(report.num_queries, s.batch.size());
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.queries_per_second, 0.0);
  std::int64_t dist = 0;
  std::int64_t peak = 0;
  for (const BatchQueryOutcome& o : outcomes) {
    dist += o.result.stats.distance_computations;
    peak = std::max(peak, o.result.stats.peak_memory_bytes);
  }
  EXPECT_EQ(report.total_distance_computations, dist);
  EXPECT_EQ(report.max_peak_memory_bytes, peak);
}

}  // namespace
}  // namespace ifls
