// Metamorphic properties of the IFLS solvers: how the optimum must react to
// controlled changes of the inputs, plus determinism and order-invariance.
// These catch whole classes of bugs that point comparisons with the oracle
// can miss.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/core/brute_force.h"
#include "src/core/efficient.h"
#include "src/core/minmax_baseline.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

constexpr double kTol = 1e-7;

class PropertyEnv {
 public:
  static PropertyEnv& Get() {
    static PropertyEnv* env = new PropertyEnv();
    return *env;
  }
  const Venue& venue() const { return venue_; }
  const VipTree& tree() const { return *tree_; }

 private:
  PropertyEnv() {
    venue_ = Unwrap(GenerateVenue(SmallVenueSpec()));
    tree_ = std::make_unique<VipTree>(Unwrap(VipTree::Build(&venue_)));
  }
  Venue venue_;
  std::unique_ptr<VipTree> tree_;
};

IflsContext RandomContext(std::uint64_t seed, std::size_t num_existing,
                          std::size_t num_candidates,
                          std::size_t num_clients) {
  PropertyEnv& env = PropertyEnv::Get();
  Rng rng(seed);
  IflsContext ctx;
  ctx.oracle = &env.tree();
  FacilitySets sets = Unwrap(SelectUniformFacilities(
      env.venue(), num_existing, num_candidates, &rng));
  ctx.existing = std::move(sets.existing);
  ctx.candidates = std::move(sets.candidates);
  for (std::size_t i = 0; i < num_clients; ++i) {
    ctx.clients.push_back(
        RandomClient(env.venue(), &rng, static_cast<ClientId>(i)));
  }
  return ctx;
}

/// Optimal achievable MinMax value for a context (via the exact oracle),
/// folding in "no improvement" as the no-facility objective.
double Optimum(const IflsContext& ctx) {
  const IflsResult brute = Unwrap(SolveBruteForceMinMax(ctx));
  return brute.found ? std::min(brute.objective, NoFacilityMinMax(ctx))
                     : NoFacilityMinMax(ctx);
}

class MonotonicityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonotonicityTest, AddingACandidateNeverHurts) {
  IflsContext ctx = RandomContext(GetParam(), 4, 8, 40);
  IflsContext smaller = ctx;
  smaller.candidates.pop_back();
  smaller.candidates.pop_back();
  EXPECT_LE(Optimum(ctx), Optimum(smaller) + kTol);
}

TEST_P(MonotonicityTest, AddingAnExistingFacilityNeverHurts) {
  IflsContext ctx = RandomContext(GetParam(), 4, 8, 40);
  IflsContext more = ctx;
  // Promote a candidate to an existing facility.
  more.existing.push_back(more.candidates.back());
  more.candidates.pop_back();
  EXPECT_LE(NoFacilityMinMax(more), NoFacilityMinMax(ctx) + kTol);
  EXPECT_LE(Optimum(more), Optimum(ctx) + kTol);
}

TEST_P(MonotonicityTest, RemovingClientsNeverHurts) {
  IflsContext ctx = RandomContext(GetParam(), 4, 8, 40);
  IflsContext fewer = ctx;
  fewer.clients.resize(fewer.clients.size() / 2);
  EXPECT_LE(Optimum(fewer), Optimum(ctx) + kTol);
}

TEST_P(MonotonicityTest, ObjectiveBoundedByNoFacilityValue) {
  IflsContext ctx = RandomContext(GetParam(), 4, 8, 40);
  EXPECT_LE(Optimum(ctx), NoFacilityMinMax(ctx) + kTol);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityTest,
                         ::testing::Values(901, 902, 903, 904, 905));

class InvarianceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InvarianceTest, EfficientIsDeterministic) {
  const IflsContext ctx = RandomContext(GetParam(), 5, 9, 50);
  const IflsResult a = Unwrap(SolveEfficient(ctx));
  const IflsResult b = Unwrap(SolveEfficient(ctx));
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.answer, b.answer);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_EQ(a.stats.distance_computations, b.stats.distance_computations);
  EXPECT_EQ(a.stats.queue_pushes, b.stats.queue_pushes);
  EXPECT_EQ(a.stats.clients_pruned, b.stats.clients_pruned);
}

TEST_P(InvarianceTest, ClientOrderDoesNotChangeTheObjective) {
  IflsContext ctx = RandomContext(GetParam(), 5, 9, 50);
  const IflsResult before = Unwrap(SolveEfficient(ctx));
  Rng rng(GetParam() * 13);
  rng.Shuffle(&ctx.clients);
  const IflsResult after = Unwrap(SolveEfficient(ctx));
  ASSERT_EQ(before.found, after.found);
  if (before.found) {
    EXPECT_NEAR(EvaluateMinMax(ctx, before.answer),
                EvaluateMinMax(ctx, after.answer), kTol);
  }
}

TEST_P(InvarianceTest, CandidateOrderDoesNotChangeTheObjective) {
  IflsContext ctx = RandomContext(GetParam(), 5, 9, 50);
  const IflsResult before = Unwrap(SolveEfficient(ctx));
  std::reverse(ctx.candidates.begin(), ctx.candidates.end());
  const IflsResult after = Unwrap(SolveEfficient(ctx));
  ASSERT_EQ(before.found, after.found);
  if (before.found) {
    EXPECT_NEAR(EvaluateMinMax(ctx, before.answer),
                EvaluateMinMax(ctx, after.answer), kTol);
  }
}

TEST_P(InvarianceTest, BaselineMatchesItselfUnderClientPermutation) {
  IflsContext ctx = RandomContext(GetParam(), 5, 9, 50);
  const IflsResult before = Unwrap(SolveModifiedMinMax(ctx));
  Rng rng(GetParam() * 17);
  rng.Shuffle(&ctx.clients);
  const IflsResult after = Unwrap(SolveModifiedMinMax(ctx));
  ASSERT_EQ(before.found, after.found);
  if (before.found) {
    EXPECT_NEAR(EvaluateMinMax(ctx, before.answer),
                EvaluateMinMax(ctx, after.answer), kTol);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvarianceTest,
                         ::testing::Values(911, 912, 913, 914, 915));

TEST(SolutionStructureTest, AnswerAlwaysComesFromTheCandidateSet) {
  for (std::uint64_t seed : {921u, 922u, 923u, 924u}) {
    const IflsContext ctx = RandomContext(seed, 3, 6, 30);
    const IflsResult result = Unwrap(SolveEfficient(ctx));
    if (result.found) {
      EXPECT_NE(std::find(ctx.candidates.begin(), ctx.candidates.end(),
                          result.answer),
                ctx.candidates.end());
    }
  }
}

TEST(SolutionStructureTest, ObjectiveIsAchievableDistance) {
  // The optimum must equal some client-to-facility distance or a client's
  // NEF (the max is attained somewhere).
  const IflsContext ctx = RandomContext(931, 4, 7, 35);
  const IflsResult result = Unwrap(SolveBruteForceMinMax(ctx));
  ASSERT_TRUE(result.found);
  bool attained = false;
  for (const Client& c : ctx.clients) {
    const double nef = NearestExistingDistance(ctx, c);
    const double dn =
        ctx.oracle->PointToPartition(c.position, c.partition, result.answer);
    if (std::abs(std::min(nef, dn) - result.objective) < kTol) {
      attained = true;
      break;
    }
  }
  EXPECT_TRUE(attained);
}

TEST(ScalingPropertyTest, MoreExistingFacilitiesPruneMoreClients) {
  // Lemma 5.1's operational consequence (and the paper's Fig. 7b
  // explanation): denser Fe prunes more clients.
  const IflsContext small = RandomContext(941, 2, 8, 120);
  IflsContext large = small;
  Rng rng(942);
  // Add more existing facilities in rooms not already used.
  std::vector<char> used(PropertyEnv::Get().venue().num_partitions(), 0);
  for (PartitionId p : large.existing) used[static_cast<std::size_t>(p)] = 1;
  for (PartitionId p : large.candidates) used[static_cast<std::size_t>(p)] = 1;
  int added = 0;
  for (const Partition& p : PropertyEnv::Get().venue().partitions()) {
    if (added >= 10) break;
    if (p.kind == PartitionKind::kRoom && !used[static_cast<std::size_t>(p.id)]) {
      large.existing.push_back(p.id);
      ++added;
    }
  }
  const IflsResult few = Unwrap(SolveEfficient(small));
  const IflsResult many = Unwrap(SolveEfficient(large));
  EXPECT_GE(many.stats.clients_pruned, few.stats.clients_pruned);
}

}  // namespace
}  // namespace ifls
