#include "src/io/svg_export.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>

#include "src/datasets/client_generator.h"
#include "src/datasets/facility_selector.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::BuildTinyVenue;
using testing_util::SmallVenueSpec;
using testing_util::TinyVenue;
using testing_util::Unwrap;

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(SvgExportTest, RendersAllLevelPartitions) {
  TinyVenue t = BuildTinyVenue();
  SvgOptions options;
  options.level = 0;
  const std::string svg = RenderLevelSvg(t.venue, options);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 5 level-0 partitions + 1 background rect + door markers.
  EXPECT_GE(CountOccurrences(svg, "<rect"), 6);
}

TEST(SvgExportTest, RoleFillsAppear) {
  TinyVenue t = BuildTinyVenue();
  SvgOptions options;
  options.level = 0;
  options.existing_facilities = {t.room_a};
  options.candidate_locations = {t.room_b};
  options.answer = t.room_c;
  const std::string svg = RenderLevelSvg(t.venue, options);
  EXPECT_NE(svg.find("#1976d2"), std::string::npos);  // existing
  EXPECT_NE(svg.find("#a5d6a7"), std::string::npos);  // candidate
  EXPECT_NE(svg.find("#ef6c00"), std::string::npos);  // answer
}

TEST(SvgExportTest, ClientsAndLabels) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  Rng rng(5);
  ClientGeneratorOptions copts;
  SvgOptions options;
  options.level = 0;
  options.clients = GenerateClients(venue, 40, copts, &rng);
  options.label_partitions = true;
  const std::string svg = RenderLevelSvg(venue, options);
  int level0_clients = 0;
  for (const Client& c : options.clients) {
    if (c.position.level == 0) ++level0_clients;
  }
  EXPECT_EQ(CountOccurrences(svg, "<circle"), level0_clients);
  EXPECT_GT(CountOccurrences(svg, "<text"), 0);
}

TEST(SvgExportTest, PathsRenderAsPolylines) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  VipTree tree = Unwrap(VipTree::Build(&venue));
  PathReconstructor reconstructor(&tree);
  const Point a = venue.partition(0).rect.center();
  const Point b =
      venue.partition(static_cast<PartitionId>(venue.num_partitions() / 2))
          .rect.center();
  SvgOptions options;
  options.level = 0;
  options.paths.push_back(Unwrap(reconstructor.PointToPoint(
      a, 0, b, static_cast<PartitionId>(venue.num_partitions() / 2))));
  const std::string svg = RenderLevelSvg(venue, options);
  EXPECT_GE(CountOccurrences(svg, "<polyline"), 1);
}

TEST(SvgExportTest, StairDoorsAreHighlighted) {
  TinyVenue t = BuildTinyVenue();
  SvgOptions options;
  options.level = 0;
  const std::string svg = RenderLevelSvg(t.venue, options);
  EXPECT_NE(svg.find("#b71c1c"), std::string::npos);  // stair door marker
}

TEST(SvgExportTest, WritesFile) {
  TinyVenue t = BuildTinyVenue();
  SvgOptions options;
  const std::string path = ::testing::TempDir() + "/ifls_render.svg";
  ASSERT_TRUE(RenderLevelSvgToFile(t.venue, options, path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("<svg"), std::string::npos);
  EXPECT_TRUE(
      RenderLevelSvgToFile(t.venue, options, "/no/such/dir/x.svg").IsIOError());
}

TEST(SvgExportDeathTest, EmptyLevelFails) {
  TinyVenue t = BuildTinyVenue();
  SvgOptions options;
  options.level = 7;  // no such level
  EXPECT_DEATH((void)RenderLevelSvg(t.venue, options), "has no partitions");
}

}  // namespace
}  // namespace ifls
