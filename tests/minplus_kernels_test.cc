// Equivalence suite for the min-plus kernels: the scalar reference loops
// are the specification, and every SIMD tier (sse4 / avx2 / avx512) must
// reproduce them bit for bit — EXPECT_EQ on doubles throughout, never
// EXPECT_NEAR. The tier product runs over every tier this binary compiled
// in AND this CPU supports; compiled-but-unsupported tiers are skipped with
// a logged reason instead of failing, so the suite is green on SSE4-only
// serving hardware and on AVX-512 machines alike. CI additionally reruns
// the whole suite under each supported IFLS_KERNELS pin.

#include "src/index/minplus_kernels.h"

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace ifls {
namespace kernels {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Every tier the running machine can actually execute, scalar first.
/// Logs (once) each compiled tier the CPU lacks, so a skip is visible in
/// the test output rather than silent.
std::vector<KernelTier> SupportedTiers() {
  static const std::vector<KernelTier> tiers = [] {
    std::vector<KernelTier> out;
    for (int t = 0; t < kNumKernelTiers; ++t) {
      const KernelTier tier = static_cast<KernelTier>(t);
      if (KernelTierSupported(tier)) {
        out.push_back(tier);
      } else if (KernelTierCompiled(tier)) {
        std::printf("[ SKIP     ] tier %s compiled in but unsupported by "
                    "this CPU; excluded from the tier product\n",
                    KernelTierName(tier));
      }
    }
    return out;
  }();
  return tiers;
}

/// Runs `fn` pinned to every supported tier and returns the results in
/// SupportedTiers() order (scalar — the reference — is always index 0).
template <typename Fn>
auto AllTiers(Fn&& fn) {
  std::vector<decltype(fn())> results;
  for (const KernelTier tier : SupportedTiers()) {
    const Status pinned = PinKernelTier(tier);
    EXPECT_TRUE(pinned.ok()) << pinned.ToString();
    if (!pinned.ok()) continue;  // already failed the test above
    EXPECT_EQ(ActiveKernelTier(), tier);
    results.push_back(fn());
  }
  ResetKernelTierAuto();
  return results;
}

/// EXPECT_EQ of every tier's result against the scalar reference (index 0).
template <typename T>
void ExpectAllTiersEqual(const std::vector<T>& results,
                         const std::string& what) {
  ASSERT_EQ(results.size(), SupportedTiers().size());
  for (std::size_t t = 1; t < results.size(); ++t) {
    EXPECT_EQ(results[0], results[t])
        << what << ": tier " << KernelTierName(SupportedTiers()[t])
        << " diverged from scalar";
  }
}

struct RandomInstance {
  std::vector<double> matrix;  // rows x stride, row-major
  std::size_t stride = 0;
  std::vector<std::int32_t> row_idx;
  std::vector<std::int32_t> col_idx;
  std::vector<double> a;  // aligned with row_idx
  std::vector<double> b;  // aligned with col_idx
};

/// Random door-matrix-shaped instance: distances in [0, 1000], a sprinkle
/// of +inf cells (disconnected components), duplicated indices (access
/// doors repeat across levels) and coarse quantization on request (exact
/// ties across lanes).
RandomInstance MakeInstance(Rng& rng, std::size_t matrix_dim, std::size_t nr,
                            std::size_t nc, bool quantized = false) {
  RandomInstance inst;
  inst.stride = matrix_dim;
  inst.matrix.resize(matrix_dim * matrix_dim);
  for (double& v : inst.matrix) {
    v = quantized ? static_cast<double>(rng.NextInt(0, 8)) * 0.5
                  : rng.NextUniform(0.0, 1000.0);
    if (rng.NextUniform(0.0, 1.0) < 0.05) v = kInf;
  }
  const auto rand_idx = [&] {
    return static_cast<std::int32_t>(
        rng.NextInt(0, static_cast<int>(matrix_dim) - 1));
  };
  inst.row_idx.resize(nr);
  inst.col_idx.resize(nc);
  for (auto& r : inst.row_idx) r = rand_idx();
  for (auto& c : inst.col_idx) c = rand_idx();
  inst.a.resize(nr);
  inst.b.resize(nc);
  for (double& v : inst.a) {
    v = quantized ? static_cast<double>(rng.NextInt(0, 4)) * 0.25
                  : rng.NextUniform(0.0, 500.0);
    if (rng.NextUniform(0.0, 1.0) < 0.05) v = kInf;
  }
  for (double& v : inst.b) {
    v = quantized ? static_cast<double>(rng.NextInt(0, 4)) * 0.25
                  : rng.NextUniform(0.0, 500.0);
  }
  return inst;
}

// Sizes straddle every lane-block boundary in the ladder (2 for sse4, 4
// for avx2, 8 for avx512): empty, tiny, each remainder class mod 8, and a
// couple of larger shapes.
const std::size_t kSizes[] = {0u, 1u,  2u,  3u,  4u,  5u,  6u, 7u,
                              8u, 9u,  13u, 16u, 17u, 33u, 64u};

TEST(MinPlusKernelsTest, TierLadderIsConsistent) {
  // scalar is unconditionally compiled and supported.
  EXPECT_TRUE(KernelTierCompiled(KernelTier::kScalar));
  EXPECT_TRUE(KernelTierSupported(KernelTier::kScalar));
  // Support implies compiled; the best tier is supported; auto dispatch
  // never leaves the active tier unsupported.
  for (int t = 0; t < kNumKernelTiers; ++t) {
    const KernelTier tier = static_cast<KernelTier>(t);
    if (KernelTierSupported(tier)) {
      EXPECT_TRUE(KernelTierCompiled(tier));
    }
  }
  EXPECT_TRUE(KernelTierSupported(BestKernelTier()));
  ResetKernelTierAuto();
  EXPECT_TRUE(KernelTierSupported(ActiveKernelTier()));
#if defined(IFLS_HAVE_AVX2) && defined(__x86_64__)
  // The build compiled the AVX2 backend; on any x86-64 CI runner of this
  // project AVX2 is present, so the choose-best ladder must reach it.
  EXPECT_TRUE(KernelTierSupported(KernelTier::kAvx2));
  EXPECT_GE(static_cast<int>(BestKernelTier()),
            static_cast<int>(KernelTier::kAvx2));
#endif
}

TEST(MinPlusKernelsTest, PinAndNamesRoundTrip) {
  for (const KernelTier tier : SupportedTiers()) {
    ASSERT_TRUE(PinKernelTier(tier).ok());
    EXPECT_EQ(ActiveKernelTier(), tier);
    EXPECT_STREQ(ActiveKernelName(), KernelTierName(tier));
    const Result<KernelTier> parsed = ParseKernelTier(KernelTierName(tier));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, tier);
  }
  // Auto dispatch resolves to the best tier — unless the suite itself runs
  // under a valid IFLS_KERNELS pin (the CI matrix does exactly that), which
  // auto mode honors.
  ResetKernelTierAuto();
  KernelTier expected = BestKernelTier();
  if (const char* env = std::getenv("IFLS_KERNELS")) {
    const Result<KernelTier> pinned = ParseKernelTier(env);
    if (pinned.ok() && KernelTierSupported(*pinned)) expected = *pinned;
  }
  EXPECT_EQ(ActiveKernelTier(), expected);
}

TEST(MinPlusKernelsTest, ParseRejectsUnknownTierWithTypedStatus) {
  for (const char* bogus : {"", "avx", "AVX2", "scalar ", "neon", "turbo"}) {
    const Result<KernelTier> parsed = ParseKernelTier(bogus);
    ASSERT_FALSE(parsed.ok()) << "'" << bogus << "' unexpectedly parsed";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    // The message should name the offender and the valid values.
    EXPECT_NE(parsed.status().message().find("valid:"), std::string::npos);
  }
  // Aliases: avx512f is the cmake/GCC spelling, simd the legacy pin.
  const Result<KernelTier> f = ParseKernelTier("avx512f");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, KernelTier::kAvx512);
  const Result<KernelTier> legacy = ParseKernelTier("simd");
  if (BestKernelTier() != KernelTier::kScalar) {
    ASSERT_TRUE(legacy.ok());
    EXPECT_EQ(*legacy, BestKernelTier());
  } else {
    EXPECT_EQ(legacy.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(MinPlusKernelsTest, PinRejectsUnavailableTierAndKeepsDispatch) {
  ASSERT_TRUE(PinKernelTier(KernelTier::kScalar).ok());
  for (int t = 0; t < kNumKernelTiers; ++t) {
    const KernelTier tier = static_cast<KernelTier>(t);
    if (KernelTierSupported(tier)) continue;
    const Status pinned = PinKernelTier(tier);
    EXPECT_EQ(pinned.code(), StatusCode::kFailedPrecondition)
        << KernelTierName(tier);
    // A failed pin must not move the active table.
    EXPECT_EQ(ActiveKernelTier(), KernelTier::kScalar);
  }
  ResetKernelTierAuto();
}

TEST(MinPlusKernelsTest, EnvOverrideAppliesAndRejectsTyped) {
  // The env override is read by ApplyKernelEnvOverride/ResetKernelTierAuto;
  // exercise valid, unknown and unset values, restoring the variable after.
  const char* saved = std::getenv("IFLS_KERNELS");
  const std::string saved_value = saved ? saved : "";

  ASSERT_EQ(setenv("IFLS_KERNELS", "scalar", 1), 0);
  EXPECT_TRUE(ApplyKernelEnvOverride().ok());
  EXPECT_EQ(ActiveKernelTier(), KernelTier::kScalar);

  ASSERT_EQ(setenv("IFLS_KERNELS", "warp9", 1), 0);
  const Status unknown = ApplyKernelEnvOverride();
  EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ActiveKernelTier(), KernelTier::kScalar);  // unchanged
  // ResetKernelTierAuto under a bogus override falls back to best (and
  // logs; never dispatches to a garbage table).
  ResetKernelTierAuto();
  EXPECT_EQ(ActiveKernelTier(), BestKernelTier());

  ASSERT_EQ(unsetenv("IFLS_KERNELS"), 0);
  EXPECT_TRUE(ApplyKernelEnvOverride().ok());  // unset = no-op, OK

  if (!saved_value.empty()) {
    ASSERT_EQ(setenv("IFLS_KERNELS", saved_value.c_str(), 1), 0);
  }
  ResetKernelTierAuto();
}

TEST(MinPlusKernelsTest, JoinBitIdenticalAcrossTiers) {
  Rng rng(20260806);
  for (const std::size_t nr : {0u, 1u, 3u, 4u, 5u, 8u, 17u}) {
    for (const std::size_t nc : kSizes) {
      for (int trial = 0; trial < 4; ++trial) {
        const RandomInstance in =
            MakeInstance(rng, 64, nr, nc, /*quantized=*/trial % 2 == 1);
        const auto results = AllTiers([&] {
          return MinPlusJoin(in.a.data(), in.row_idx.data(), nr, in.b.data(),
                             in.col_idx.data(), nc, in.matrix.data(),
                             in.stride);
        });
        ExpectAllTiersEqual(results, "join nr=" + std::to_string(nr) +
                                         " nc=" + std::to_string(nc));
        if (nr == 0 || nc == 0) {
          EXPECT_EQ(results[0], kInf);
        }
      }
    }
  }
}

TEST(MinPlusKernelsTest, ComposeBitIdenticalAcrossTiers) {
  Rng rng(20260807);
  for (const std::size_t nr : {0u, 1u, 4u, 9u}) {
    for (const std::size_t nc : kSizes) {
      const RandomInstance in = MakeInstance(rng, 48, nr, nc);
      const auto results = AllTiers([&] {
        std::vector<double> out(nc, -1.0);
        MinPlusCompose(in.a.data(), in.row_idx.data(), nr, in.col_idx.data(),
                       nc, in.matrix.data(), in.stride, out.data());
        return out;
      });
      ExpectAllTiersEqual(results, "compose nr=" + std::to_string(nr) +
                                       " nc=" + std::to_string(nc));
      if (nr == 0) {
        for (const double v : results[0]) EXPECT_EQ(v, kInf);
      }
    }
  }
}

TEST(MinPlusKernelsTest, GatherFamilyBitIdenticalAcrossTiers) {
  Rng rng(20260808);
  for (const std::size_t n : kSizes) {
    for (int trial = 0; trial < 4; ++trial) {
      const RandomInstance in =
          MakeInstance(rng, 128, n, n, /*quantized=*/trial % 2 == 1);
      const double s0 = rng.NextUniform(0.0, 100.0);
      const double* row = in.matrix.data();  // any row works
      const std::string suffix = " n=" + std::to_string(n);
      ExpectAllTiersEqual(
          AllTiers([&] { return MinPlusGather(s0, row, in.col_idx.data(), n); }),
          "gather" + suffix);
      ExpectAllTiersEqual(AllTiers([&] {
        return MinPlusGatherAdd(s0, row, in.col_idx.data(), in.b.data(), n);
      }), "gather_add" + suffix);
      ExpectAllTiersEqual(AllTiers([&] {
        return MinPlusPairwise(in.a.data(), in.b.data(), n);
      }), "pairwise" + suffix);
      ExpectAllTiersEqual(AllTiers([&] {
        std::vector<double> out(n, -1.0);
        GatherCells(row, in.col_idx.data(), n, out.data());
        return out;
      }), "gather_cells" + suffix);
    }
  }
}

TEST(MinPlusKernelsTest, ArgminBitIdenticalAndLowestIndexTieBreak) {
  Rng rng(20260809);
  for (const std::size_t n : {1u, 2u, 4u, 5u, 8u, 9u, 16u, 32u, 77u}) {
    for (int trial = 0; trial < 16; ++trial) {
      std::vector<double> row(n);
      for (double& v : row) {
        // Coarse quantization to force plenty of exact ties.
        v = static_cast<double>(rng.NextInt(0, 8)) * 0.5;
      }
      const double s0 = rng.NextUniform(0.0, 4.0);
      const auto results =
          AllTiers([&] { return MinPlusArgmin(s0, row.data(), n); });
      ExpectAllTiersEqual(results, "argmin n=" + std::to_string(n));
      // Lowest-index contract, checked against a fresh scan.
      double best = kInf;
      std::size_t best_k = 0;
      for (std::size_t k = 0; k < n; ++k) {
        if (s0 + row[k] < best) {
          best = s0 + row[k];
          best_k = k;
        }
      }
      EXPECT_EQ(results[0], best_k);
    }
  }
}

TEST(MinPlusKernelsTest, ArgminAllInfinityReturnsIndexZero) {
  std::vector<double> row(11, kInf);
  const auto results =
      AllTiers([&] { return MinPlusArgmin(3.0, row.data(), row.size()); });
  for (const std::size_t k : results) EXPECT_EQ(k, 0u);
}

TEST(MinPlusKernelsTest, InfinityRowsNeverBeatFiniteCandidates) {
  // The DoorToDoor caller dropped its dist_a[i] == inf skip when moving to
  // the kernel; this is the property that makes the drop safe.
  const std::vector<double> a = {kInf, 2.0};
  const std::vector<double> b = {1.0, kInf};
  const std::vector<std::int32_t> rows = {0, 1};
  const std::vector<std::int32_t> cols = {0, 1};
  const std::vector<double> m = {0.5, kInf, 1.5, 2.5};  // 2x2, stride 2
  const auto results = AllTiers([&] {
    return MinPlusJoin(a.data(), rows.data(), 2, b.data(), cols.data(), 2,
                       m.data(), 2);
  });
  ExpectAllTiersEqual(results, "inf-join");
  EXPECT_EQ(results[0], (2.0 + 1.5) + 1.0);
}

}  // namespace
}  // namespace kernels
}  // namespace ifls
