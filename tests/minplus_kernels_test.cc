// Equivalence suite for the min-plus kernels: the scalar reference loops are
// the specification, and the SIMD backend must reproduce them bit for bit —
// EXPECT_EQ on doubles throughout, never EXPECT_NEAR. CI runs this under
// ASan in both dispatch modes (Release job: once with IFLS_KERNELS=scalar,
// once with IFLS_KERNELS=simd).

#include "src/index/minplus_kernels.h"

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace ifls {
namespace kernels {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Runs `fn` under both dispatch modes and returns the pair of results.
/// When the machine cannot run AVX2 both runs are scalar, which keeps the
/// test green (vacuously) instead of flaky.
template <typename Fn>
auto BothModes(Fn&& fn) {
  SetKernelMode(KernelMode::kScalar);
  EXPECT_EQ(ActiveKernelMode(), KernelMode::kScalar);
  auto scalar_result = fn();
  SetKernelMode(KernelMode::kSimd);
  if (SimdAvailable()) {
    EXPECT_EQ(ActiveKernelMode(), KernelMode::kSimd);
  }
  auto simd_result = fn();
  SetKernelMode(KernelMode::kAuto);
  return std::make_pair(scalar_result, simd_result);
}

struct RandomInstance {
  std::vector<double> matrix;  // rows x stride, row-major
  std::size_t stride = 0;
  std::vector<std::int32_t> row_idx;
  std::vector<std::int32_t> col_idx;
  std::vector<double> a;  // aligned with row_idx
  std::vector<double> b;  // aligned with col_idx
};

/// Random door-matrix-shaped instance: distances in [0, 1000], a sprinkle
/// of +inf cells (disconnected components) and duplicated indices (access
/// doors repeat across levels).
RandomInstance MakeInstance(Rng& rng, std::size_t matrix_dim, std::size_t nr,
                            std::size_t nc) {
  RandomInstance inst;
  inst.stride = matrix_dim;
  inst.matrix.resize(matrix_dim * matrix_dim);
  for (double& v : inst.matrix) {
    v = rng.NextUniform(0.0, 1000.0);
    if (rng.NextUniform(0.0, 1.0) < 0.05) v = kInf;
  }
  const auto rand_idx = [&] {
    return static_cast<std::int32_t>(
        rng.NextInt(0, static_cast<int>(matrix_dim) - 1));
  };
  inst.row_idx.resize(nr);
  inst.col_idx.resize(nc);
  for (auto& r : inst.row_idx) r = rand_idx();
  for (auto& c : inst.col_idx) c = rand_idx();
  inst.a.resize(nr);
  inst.b.resize(nc);
  for (double& v : inst.a) {
    v = rng.NextUniform(0.0, 500.0);
    if (rng.NextUniform(0.0, 1.0) < 0.05) v = kInf;
  }
  for (double& v : inst.b) v = rng.NextUniform(0.0, 500.0);
  return inst;
}

TEST(MinPlusKernelsTest, SimdCompiledMatchesBuildFlag) {
#if defined(IFLS_KERNEL_SIMD) && defined(__x86_64__)
  // The build compiled the AVX2 backend; whether it dispatches depends on
  // the CPU. On any x86-64 CI runner of this project AVX2 is present.
  EXPECT_TRUE(SimdAvailable());
#endif
  SetKernelMode(KernelMode::kAuto);
  EXPECT_NE(ActiveKernelMode(), KernelMode::kAuto);
}

TEST(MinPlusKernelsTest, JoinBitIdenticalAcrossBackends) {
  Rng rng(20260806);
  // Sizes straddle the 4-lane block boundary: tails of 0..3 plus tiny and
  // empty shapes.
  for (const std::size_t nr : {0u, 1u, 3u, 4u, 5u, 8u, 17u}) {
    for (const std::size_t nc : {0u, 1u, 2u, 4u, 7u, 16u, 33u}) {
      for (int trial = 0; trial < 8; ++trial) {
        const RandomInstance in = MakeInstance(rng, 64, nr, nc);
        const auto [s, v] = BothModes([&] {
          return MinPlusJoin(in.a.data(), in.row_idx.data(), nr, in.b.data(),
                             in.col_idx.data(), nc, in.matrix.data(),
                             in.stride);
        });
        EXPECT_EQ(s, v) << "nr=" << nr << " nc=" << nc << " trial=" << trial;
        if (nr == 0 || nc == 0) {
          EXPECT_EQ(s, kInf);
        }
      }
    }
  }
}

TEST(MinPlusKernelsTest, ComposeBitIdenticalAcrossBackends) {
  Rng rng(20260807);
  for (const std::size_t nr : {0u, 1u, 4u, 9u}) {
    for (const std::size_t nc : {0u, 1u, 3u, 4u, 6u, 21u}) {
      const RandomInstance in = MakeInstance(rng, 48, nr, nc);
      const auto [s, v] = BothModes([&] {
        std::vector<double> out(nc, -1.0);
        MinPlusCompose(in.a.data(), in.row_idx.data(), nr, in.col_idx.data(),
                       nc, in.matrix.data(), in.stride, out.data());
        return out;
      });
      ASSERT_EQ(s.size(), v.size());
      for (std::size_t j = 0; j < s.size(); ++j) {
        EXPECT_EQ(s[j], v[j]) << "nr=" << nr << " nc=" << nc << " j=" << j;
        if (nr == 0) {
          EXPECT_EQ(s[j], kInf);
        }
      }
    }
  }
}

TEST(MinPlusKernelsTest, GatherFamilyBitIdenticalAcrossBackends) {
  Rng rng(20260808);
  for (const std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 8u, 13u, 64u, 100u}) {
    for (int trial = 0; trial < 8; ++trial) {
      const RandomInstance in = MakeInstance(rng, 128, n, n);
      const double s0 = rng.NextUniform(0.0, 100.0);
      const double* row = in.matrix.data();  // any row works
      {
        const auto [s, v] = BothModes(
            [&] { return MinPlusGather(s0, row, in.col_idx.data(), n); });
        EXPECT_EQ(s, v) << "gather n=" << n;
      }
      {
        const auto [s, v] = BothModes([&] {
          return MinPlusGatherAdd(s0, row, in.col_idx.data(), in.b.data(), n);
        });
        EXPECT_EQ(s, v) << "gather_add n=" << n;
      }
      {
        const auto [s, v] = BothModes(
            [&] { return MinPlusPairwise(in.a.data(), in.b.data(), n); });
        EXPECT_EQ(s, v) << "pairwise n=" << n;
      }
      {
        const auto [s, v] = BothModes([&] {
          std::vector<double> out(n, -1.0);
          GatherCells(row, in.col_idx.data(), n, out.data());
          return out;
        });
        EXPECT_EQ(s, v) << "gather_cells n=" << n;
      }
    }
  }
}

TEST(MinPlusKernelsTest, ArgminBitIdenticalAndLowestIndexTieBreak) {
  Rng rng(20260809);
  for (const std::size_t n : {1u, 2u, 4u, 5u, 9u, 32u, 77u}) {
    for (int trial = 0; trial < 16; ++trial) {
      std::vector<double> row(n);
      for (double& v : row) {
        // Coarse quantization to force plenty of exact ties.
        v = static_cast<double>(rng.NextInt(0, 8)) * 0.5;
      }
      const double s0 = rng.NextUniform(0.0, 4.0);
      const auto [si, vi] =
          BothModes([&] { return MinPlusArgmin(s0, row.data(), n); });
      EXPECT_EQ(si, vi) << "argmin n=" << n;
      // Lowest-index contract, checked against a fresh scan.
      double best = kInf;
      std::size_t best_k = 0;
      for (std::size_t k = 0; k < n; ++k) {
        if (s0 + row[k] < best) {
          best = s0 + row[k];
          best_k = k;
        }
      }
      EXPECT_EQ(si, best_k);
    }
  }
}

TEST(MinPlusKernelsTest, ArgminAllInfinityReturnsIndexZero) {
  std::vector<double> row(7, kInf);
  const auto [si, vi] =
      BothModes([&] { return MinPlusArgmin(3.0, row.data(), row.size()); });
  EXPECT_EQ(si, 0u);
  EXPECT_EQ(vi, 0u);
}

TEST(MinPlusKernelsTest, InfinityRowsNeverBeatFiniteCandidates) {
  // The DoorToDoor caller dropped its dist_a[i] == inf skip when moving to
  // the kernel; this is the property that makes the drop safe.
  const std::vector<double> a = {kInf, 2.0};
  const std::vector<double> b = {1.0, kInf};
  const std::vector<std::int32_t> rows = {0, 1};
  const std::vector<std::int32_t> cols = {0, 1};
  const std::vector<double> m = {0.5, kInf, 1.5, 2.5};  // 2x2, stride 2
  const auto [s, v] = BothModes([&] {
    return MinPlusJoin(a.data(), rows.data(), 2, b.data(), cols.data(), 2,
                       m.data(), 2);
  });
  EXPECT_EQ(s, (2.0 + 1.5) + 1.0);
  EXPECT_EQ(s, v);
}

TEST(MinPlusKernelsTest, EnvOverrideSelectsBackend) {
  // SetKernelMode(kAuto) re-reads IFLS_KERNELS; the explicit modes ignore
  // it. The test leaves the environment untouched and only checks the
  // explicit-mode half unless the variable happens to be set.
  SetKernelMode(KernelMode::kScalar);
  EXPECT_STREQ(ActiveKernelName(), "scalar");
  SetKernelMode(KernelMode::kSimd);
  if (SimdAvailable()) {
    EXPECT_STREQ(ActiveKernelName(), "avx2");
  } else {
    EXPECT_STREQ(ActiveKernelName(), "scalar");
  }
  SetKernelMode(KernelMode::kAuto);
}

}  // namespace
}  // namespace kernels
}  // namespace ifls
