#include "src/geometry/geometry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace ifls {
namespace {

TEST(PointTest, EqualityAndToString) {
  Point a(1, 2, 0), b(1, 2, 0), c(1, 2, 1);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.ToString(), "(1, 2, L0)");
}

TEST(PointTest, PlanarDistance) {
  EXPECT_DOUBLE_EQ(PlanarDistance(Point(0, 0), Point(3, 4)), 5.0);
  EXPECT_DOUBLE_EQ(PlanarDistanceSquared(Point(0, 0), Point(3, 4)), 25.0);
  EXPECT_DOUBLE_EQ(PlanarDistance(Point(1, 1), Point(1, 1)), 0.0);
}

TEST(RectTest, BasicAccessors) {
  Rect r(0, 0, 4, 3, 2);
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 3.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_EQ(r.center(), Point(2, 1.5, 2));
  EXPECT_TRUE(r.IsValid());
  EXPECT_FALSE(Rect(0, 0, 0, 3).IsValid());
  EXPECT_FALSE(Rect(2, 2, 1, 1).IsValid());
}

TEST(RectTest, ContainsIsClosedAndLevelAware) {
  Rect r(0, 0, 4, 3, 0);
  EXPECT_TRUE(r.Contains(Point(2, 1, 0)));
  EXPECT_TRUE(r.Contains(Point(0, 0, 0)));   // boundary
  EXPECT_TRUE(r.Contains(Point(4, 3, 0)));   // corner
  EXPECT_FALSE(r.Contains(Point(2, 1, 1)));  // wrong level
  EXPECT_FALSE(r.Contains(Point(5, 1, 0)));
}

TEST(RectTest, TouchesOrIntersects) {
  Rect a(0, 0, 4, 3, 0);
  EXPECT_TRUE(a.TouchesOrIntersects(Rect(4, 0, 8, 3, 0)));  // shared wall
  EXPECT_TRUE(a.TouchesOrIntersects(Rect(2, 2, 6, 6, 0)));  // overlap
  EXPECT_FALSE(a.TouchesOrIntersects(Rect(5, 0, 8, 3, 0)));
  EXPECT_FALSE(a.TouchesOrIntersects(Rect(4, 0, 8, 3, 1)));  // other level
}

TEST(RectTest, UnionCoversBoth) {
  Rect u = Rect(0, 0, 2, 2, 0).Union(Rect(5, -1, 6, 1, 0));
  EXPECT_EQ(u, Rect(0, -1, 6, 2, 0));
}

TEST(RectTest, MinDistanceZeroInsidePositiveOutside) {
  Rect r(0, 0, 4, 3, 0);
  EXPECT_DOUBLE_EQ(r.MinDistance(Point(1, 1, 0)), 0.0);
  EXPECT_DOUBLE_EQ(r.MinDistance(Point(7, 3, 0)), 3.0);
  EXPECT_DOUBLE_EQ(r.MinDistance(Point(7, 7, 0)), 5.0);  // corner 3-4-5
}

TEST(RectTest, ClampProjectsOntoRect) {
  Rect r(0, 0, 4, 3, 0);
  EXPECT_EQ(r.Clamp(Point(7, 7, 0)), Point(4, 3, 0));
  EXPECT_EQ(r.Clamp(Point(2, 1, 0)), Point(2, 1, 0));
  EXPECT_EQ(r.Clamp(Point(-1, 2, 0)), Point(0, 2, 0));
}

TEST(IntervalsOverlapTest, RespectsMinimumOverlap) {
  EXPECT_TRUE(IntervalsOverlap(0, 10, 5, 15, 4.9));
  EXPECT_TRUE(IntervalsOverlap(0, 10, 5, 15, 5.0));
  EXPECT_FALSE(IntervalsOverlap(0, 10, 5, 15, 5.1));
  EXPECT_FALSE(IntervalsOverlap(0, 1, 2, 3, 0.0));
}

TEST(SharedWallTest, VerticalWallMidpoint) {
  Rect a(0, 0, 4, 6, 0);
  Rect b(4, 2, 8, 10, 0);  // shares x=4 wall, y in [2, 6]
  Point door;
  ASSERT_TRUE(SharedWallMidpoint(a, b, 1.0, &door));
  EXPECT_EQ(door, Point(4, 4, 0));
  // Symmetric order.
  ASSERT_TRUE(SharedWallMidpoint(b, a, 1.0, &door));
  EXPECT_EQ(door, Point(4, 4, 0));
}

TEST(SharedWallTest, HorizontalWallMidpoint) {
  Rect a(0, 0, 10, 4, 0);
  Rect b(2, 4, 6, 8, 0);  // shares y=4 wall, x in [2, 6]
  Point door;
  ASSERT_TRUE(SharedWallMidpoint(a, b, 1.0, &door));
  EXPECT_EQ(door, Point(4, 4, 0));
}

TEST(HilbertTest, IsABijectionOnSmallGrids) {
  for (std::uint32_t order : {1u, 2u, 3u, 4u}) {
    const std::uint32_t n = 1u << order;
    std::vector<bool> seen(static_cast<std::size_t>(n) * n, false);
    for (std::uint32_t y = 0; y < n; ++y) {
      for (std::uint32_t x = 0; x < n; ++x) {
        const std::uint64_t d = HilbertIndex(order, x, y);
        ASSERT_LT(d, static_cast<std::uint64_t>(n) * n);
        ASSERT_FALSE(seen[d]) << "duplicate index at (" << x << "," << y
                              << ") order " << order;
        seen[d] = true;
      }
    }
  }
}

TEST(HilbertTest, ConsecutiveIndicesAreGridNeighbors) {
  // The defining property of the Hilbert curve: cells with consecutive
  // curve positions are 4-neighbors on the grid.
  constexpr std::uint32_t kOrder = 5;
  constexpr std::uint32_t n = 1u << kOrder;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cell_of(
      static_cast<std::size_t>(n) * n);
  for (std::uint32_t y = 0; y < n; ++y) {
    for (std::uint32_t x = 0; x < n; ++x) {
      cell_of[HilbertIndex(kOrder, x, y)] = {x, y};
    }
  }
  for (std::size_t d = 1; d < cell_of.size(); ++d) {
    const auto [x0, y0] = cell_of[d - 1];
    const auto [x1, y1] = cell_of[d];
    const int manhattan = std::abs(static_cast<int>(x0) -
                                   static_cast<int>(x1)) +
                          std::abs(static_cast<int>(y0) -
                                   static_cast<int>(y1));
    ASSERT_EQ(manhattan, 1) << "jump at curve position " << d;
  }
}

TEST(SharedWallTest, RejectsShortWallsLevelsAndGaps) {
  Point door;
  // Too small shared span.
  EXPECT_FALSE(
      SharedWallMidpoint(Rect(0, 0, 4, 4, 0), Rect(4, 3.5, 8, 8, 0), 1.0,
                         &door));
  // Different levels.
  EXPECT_FALSE(
      SharedWallMidpoint(Rect(0, 0, 4, 4, 0), Rect(4, 0, 8, 4, 1), 1.0,
                         &door));
  // Not adjacent.
  EXPECT_FALSE(
      SharedWallMidpoint(Rect(0, 0, 4, 4, 0), Rect(5, 0, 8, 4, 0), 1.0,
                         &door));
}

}  // namespace
}  // namespace ifls
