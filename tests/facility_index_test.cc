#include "src/index/facility_index.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

class FacilityIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    venue_ = Unwrap(GenerateVenue(SmallVenueSpec()));
    tree_ = std::make_unique<VipTree>(Unwrap(VipTree::Build(&venue_)));
  }

  Venue venue_;
  std::unique_ptr<VipTree> tree_;
};

TEST_F(FacilityIndexTest, KindsAndCounts) {
  FacilityIndex index(tree_.get(), {0, 1});
  index.AddCandidates({2, 3, 4});
  EXPECT_EQ(index.num_existing(), 2);
  EXPECT_EQ(index.num_candidates(), 3);
  EXPECT_TRUE(index.IsExisting(0));
  EXPECT_TRUE(index.IsCandidate(3));
  EXPECT_FALSE(index.IsFacility(5));
  EXPECT_EQ(index.kind(1), FacilityKind::kExisting);
  EXPECT_EQ(index.kind(4), FacilityKind::kCandidate);
  EXPECT_EQ(index.kind(6), FacilityKind::kNone);
}

TEST_F(FacilityIndexTest, SubtreeCountsSumCorrectly) {
  FacilityIndex index(tree_.get(), {0, 5, 9});
  index.AddCandidates({12, 17});
  EXPECT_EQ(index.SubtreeCount(tree_->root()), 5);
  // Every facility contributes exactly once to each node on its root chain.
  for (PartitionId p : {0, 5, 9, 12, 17}) {
    for (NodeId n = tree_->LeafOf(p); n != kInvalidNode;
         n = tree_->node(n).parent) {
      EXPECT_GE(index.SubtreeCount(n), 1);
    }
  }
  // A leaf with no facilities has count zero.
  int zero_leaves = 0;
  for (std::size_t n = 0; n < tree_->num_nodes(); ++n) {
    const VipNode& node = tree_->node(static_cast<NodeId>(n));
    if (!node.is_leaf()) continue;
    bool has = false;
    for (PartitionId p : node.partitions) {
      has = has || index.IsFacility(p);
    }
    if (!has) {
      EXPECT_EQ(index.SubtreeCount(node.id), 0);
      ++zero_leaves;
    }
  }
  EXPECT_GT(zero_leaves, 0);  // venue is larger than 5 leaves
}

TEST_F(FacilityIndexTest, ClearCandidatesKeepsExisting) {
  FacilityIndex index(tree_.get(), {0, 1});
  index.AddCandidates({2, 3});
  EXPECT_EQ(index.SubtreeCount(tree_->root()), 4);
  index.ClearCandidates();
  EXPECT_EQ(index.num_candidates(), 0);
  EXPECT_EQ(index.SubtreeCount(tree_->root()), 2);
  EXPECT_FALSE(index.IsFacility(2));
  EXPECT_TRUE(index.IsExisting(0));
  // Re-adding after clear works.
  index.AddCandidates({2});
  EXPECT_EQ(index.SubtreeCount(tree_->root()), 3);
}

TEST_F(FacilityIndexTest, DuplicateRegistrationDies) {
  FacilityIndex index(tree_.get(), {0});
  EXPECT_DEATH(index.AddCandidates({0}), "registered twice");
  index.AddCandidates({1});
  EXPECT_DEATH(index.AddCandidates({1}), "registered twice");
}

TEST_F(FacilityIndexTest, OutOfRangePartitionDies) {
  FacilityIndex index(tree_.get(), {});
  EXPECT_DEATH(index.AddCandidates({static_cast<PartitionId>(
                   venue_.num_partitions())}),
               "out of range");
}

}  // namespace
}  // namespace ifls
