#include "src/indoor/venue.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/indoor/point_location.h"
#include "src/indoor/venue_builder.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::BuildTinyVenue;
using testing_util::TinyVenue;
using testing_util::Unwrap;

TEST(VenueBuilderTest, BuildsTinyVenue) {
  TinyVenue t = BuildTinyVenue();
  EXPECT_EQ(t.venue.num_partitions(), 7u);
  EXPECT_EQ(t.venue.num_doors(), 6u);
  EXPECT_EQ(t.venue.num_levels(), 2);
  EXPECT_EQ(t.venue.num_rooms(), 4u);
  EXPECT_EQ(t.venue.name(), "tiny");
}

TEST(VenueTest, DoorAccessors) {
  TinyVenue t = BuildTinyVenue();
  const Door& stair = t.venue.door(t.door_stair);
  EXPECT_TRUE(stair.is_stair_door());
  EXPECT_DOUBLE_EQ(stair.vertical_cost, 8.0);
  EXPECT_EQ(stair.Other(t.stair0), t.stair1);
  EXPECT_EQ(stair.Other(t.stair1), t.stair0);
  EXPECT_EQ(stair.Other(t.room_a), kInvalidPartition);
  EXPECT_TRUE(stair.Connects(t.stair0));
  EXPECT_FALSE(stair.Connects(t.room_a));

  const Door& normal = t.venue.door(t.door_a);
  EXPECT_FALSE(normal.is_stair_door());
}

TEST(VenueTest, NeighborsAndAdjacency) {
  TinyVenue t = BuildTinyVenue();
  const auto& nbrs = t.venue.Neighbors(t.corridor);
  EXPECT_EQ(nbrs.size(), 4u);  // A, B, C, stair0
  EXPECT_TRUE(t.venue.AreAdjacent(t.room_a, t.corridor));
  EXPECT_TRUE(t.venue.AreAdjacent(t.stair0, t.stair1));
  EXPECT_FALSE(t.venue.AreAdjacent(t.room_a, t.room_b));
  EXPECT_FALSE(t.venue.AreAdjacent(t.room_a, t.room_d));
}

TEST(VenueTest, DoorsOfListsAllDoors) {
  TinyVenue t = BuildTinyVenue();
  EXPECT_EQ(t.venue.DoorsOf(t.room_a).size(), 1u);
  EXPECT_EQ(t.venue.DoorsOf(t.corridor).size(), 4u);
  EXPECT_EQ(t.venue.DoorsOf(t.stair0).size(), 2u);
}

TEST(VenueTest, LevelBounds) {
  TinyVenue t = BuildTinyVenue();
  const Rect l0 = t.venue.LevelBounds(0);
  EXPECT_DOUBLE_EQ(l0.min_x, 0.0);
  EXPECT_DOUBLE_EQ(l0.max_x, 30.0);
  EXPECT_DOUBLE_EQ(l0.min_y, -6.0);
  EXPECT_DOUBLE_EQ(l0.max_y, 8.0);
  const Rect l1 = t.venue.LevelBounds(1);
  EXPECT_DOUBLE_EQ(l1.min_x, 0.0);
  EXPECT_DOUBLE_EQ(l1.max_x, 18.0);
}

TEST(VenueTest, SetCategory) {
  TinyVenue t = BuildTinyVenue();
  t.venue.SetCategory(t.room_a, "dining & entertainment");
  EXPECT_EQ(t.venue.partition(t.room_a).category, "dining & entertainment");
}

TEST(VenueBuilderTest, DisconnectedVenueFailsValidation) {
  VenueBuilder b("disconnected");
  b.AddPartition(Rect(0, 0, 4, 4, 0));
  b.AddPartition(Rect(10, 10, 14, 14, 0));
  Result<Venue> result = b.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("disconnected"),
            std::string::npos);
}

TEST(VenueBuilderTest, EmptyVenueFails) {
  VenueBuilder b("empty");
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(VenueBuilderDeathTest, SelfLoopDoorRejected) {
  VenueBuilder b("loop");
  PartitionId p = b.AddPartition(Rect(0, 0, 4, 4, 0));
  EXPECT_DEATH(b.AddDoor(p, p, Point(0, 0, 0)), "distinct");
}

TEST(VenueBuilderTest, CrossLevelDoorWithoutStairCostFails) {
  VenueBuilder b("bad-stairs");
  PartitionId low = b.AddPartition(Rect(0, 0, 4, 4, 0));
  PartitionId high = b.AddPartition(Rect(0, 0, 4, 4, 1));
  b.AddDoor(low, high, Point(2, 2, 0));  // zero vertical cost across levels
  Result<Venue> result = b.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("vertical cost"),
            std::string::npos);
}

TEST(VenueTest, ValidatePassesOnBuiltVenue) {
  TinyVenue t = BuildTinyVenue();
  EXPECT_TRUE(t.venue.Validate().ok());
}

// ------------------------------------------------------- PointLocator

TEST(PointLocatorTest, LocatesInteriorPoints) {
  TinyVenue t = BuildTinyVenue();
  PointLocator locator(&t.venue);
  EXPECT_EQ(locator.Locate(Point(5, 2, 0)), t.room_a);
  EXPECT_EQ(locator.Locate(Point(15, 2, 0)), t.corridor);
  EXPECT_EQ(locator.Locate(Point(25, 2, 0)), t.room_b);
  EXPECT_EQ(locator.Locate(Point(15, -3, 0)), t.room_c);
  EXPECT_EQ(locator.Locate(Point(16, 6, 0)), t.stair0);
  EXPECT_EQ(locator.Locate(Point(16, 6, 1)), t.stair1);
  EXPECT_EQ(locator.Locate(Point(5, 6, 1)), t.room_d);
}

TEST(PointLocatorTest, OutsideReturnsInvalid) {
  TinyVenue t = BuildTinyVenue();
  PointLocator locator(&t.venue);
  EXPECT_EQ(locator.Locate(Point(100, 100, 0)), kInvalidPartition);
  EXPECT_EQ(locator.Locate(Point(5, 6, 5)), kInvalidPartition);  // bad level
  EXPECT_EQ(locator.Locate(Point(5, 6, -1)), kInvalidPartition);
  // In a wall gap on level 0 (above room A, left of stairwell).
  EXPECT_EQ(locator.Locate(Point(5, 6, 0)), kInvalidPartition);
}

TEST(PointLocatorTest, BoundaryPointResolvesToLowestId) {
  TinyVenue t = BuildTinyVenue();
  PointLocator locator(&t.venue);
  // x = 10 is the shared wall between room A (id 0) and the corridor (id 1).
  EXPECT_EQ(locator.Locate(Point(10, 2, 0)), t.room_a);
}

TEST(PointLocatorTest, AgreesWithExhaustiveScanOnGeneratedVenue) {
  Venue venue = Unwrap(GenerateVenue(testing_util::SmallVenueSpec()));
  PointLocator locator(&venue);
  Rng rng(123);
  for (int i = 0; i < 500; ++i) {
    const Level level = static_cast<Level>(rng.NextBounded(
        static_cast<std::uint64_t>(venue.num_levels())));
    const Rect bounds = venue.LevelBounds(level);
    const Point p(rng.NextUniform(bounds.min_x - 1, bounds.max_x + 1),
                  rng.NextUniform(bounds.min_y - 1, bounds.max_y + 1), level);
    PartitionId expected = kInvalidPartition;
    for (const Partition& part : venue.partitions()) {
      if (part.rect.Contains(p)) {
        if (expected == kInvalidPartition || part.id < expected) {
          expected = part.id;
        }
      }
    }
    EXPECT_EQ(locator.Locate(p), expected) << p.ToString();
  }
}

}  // namespace
}  // namespace ifls
