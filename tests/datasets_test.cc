#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "src/datasets/client_generator.h"
#include "src/datasets/facility_selector.h"
#include "src/datasets/presets.h"
#include "src/datasets/venue_generator.h"
#include "src/datasets/workload.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::Unwrap;

// --------------------------------------------------------------- Generator

TEST(VenueGeneratorTest, RespectsExactRoomCounts) {
  VenueGeneratorSpec spec = testing_util::SmallVenueSpec();
  Venue venue = Unwrap(GenerateVenue(spec));
  EXPECT_EQ(venue.num_rooms(), 48u);  // 24 per level x 2
  EXPECT_EQ(venue.num_levels(), 2);
  EXPECT_TRUE(venue.Validate().ok());
}

TEST(VenueGeneratorTest, TotalRoomsDistribution) {
  VenueGeneratorSpec spec;
  spec.levels = 3;
  spec.total_rooms = 32;  // 11 + 11 + 10
  spec.rooms_per_corridor_side = 6;
  EXPECT_EQ(spec.RoomsOnLevel(0), 11);
  EXPECT_EQ(spec.RoomsOnLevel(1), 11);
  EXPECT_EQ(spec.RoomsOnLevel(2), 10);
  Venue venue = Unwrap(GenerateVenue(spec));
  EXPECT_EQ(venue.num_rooms(), 32u);
  EXPECT_EQ(venue.num_levels(), 3);
}

TEST(VenueGeneratorTest, ExtraRoomDoorsRaiseDoorCount) {
  VenueGeneratorSpec spec = testing_util::SmallVenueSpec();
  spec.levels = 1;
  spec.stairwells = 0;
  Venue base = Unwrap(GenerateVenue(spec));
  spec.extra_room_doors_per_level = 6;
  Venue extra = Unwrap(GenerateVenue(spec));
  EXPECT_EQ(extra.num_doors(), base.num_doors() + 6);
  EXPECT_TRUE(extra.Validate().ok());
}

TEST(VenueGeneratorTest, DoorJitterIsDeterministicPerSeed) {
  VenueGeneratorSpec spec = testing_util::SmallVenueSpec();
  spec.door_jitter_seed = 5;
  Venue a = Unwrap(GenerateVenue(spec));
  Venue b = Unwrap(GenerateVenue(spec));
  ASSERT_EQ(a.num_doors(), b.num_doors());
  for (std::size_t d = 0; d < a.num_doors(); ++d) {
    EXPECT_EQ(a.door(static_cast<DoorId>(d)).position,
              b.door(static_cast<DoorId>(d)).position);
  }
  spec.door_jitter_seed = 6;
  Venue c = Unwrap(GenerateVenue(spec));
  int moved = 0;
  for (std::size_t d = 0; d < a.num_doors(); ++d) {
    if (!(a.door(static_cast<DoorId>(d)).position ==
          c.door(static_cast<DoorId>(d)).position)) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(VenueGeneratorTest, RejectsBadSpecs) {
  VenueGeneratorSpec spec;
  spec.levels = 0;
  EXPECT_TRUE(GenerateVenue(spec).status().IsInvalidArgument());
  spec = VenueGeneratorSpec();
  spec.room_width = -1;
  EXPECT_TRUE(GenerateVenue(spec).status().IsInvalidArgument());
  spec = VenueGeneratorSpec();
  spec.levels = 3;
  spec.stairwells = 0;
  EXPECT_TRUE(GenerateVenue(spec).status().IsInvalidArgument());
}

// ----------------------------------------------------------------- Presets

struct PresetExpectation {
  VenuePreset preset;
  std::size_t rooms;
  std::size_t doors;  // paper-reported door count
  int levels;
};

class PresetTest : public ::testing::TestWithParam<PresetExpectation> {};

TEST_P(PresetTest, MatchesPublishedStatistics) {
  const PresetExpectation e = GetParam();
  Venue venue = Unwrap(BuildPresetVenue(e.preset));
  EXPECT_EQ(venue.num_rooms(), e.rooms);
  EXPECT_EQ(venue.num_levels(), e.levels);
  // Door counts fold corridor/stair doors into the published totals; allow
  // a modest tolerance around the paper's number.
  const double ratio =
      static_cast<double>(venue.num_doors()) / static_cast<double>(e.doors);
  EXPECT_GE(ratio, 0.85) << venue.ToString();
  EXPECT_LE(ratio, 1.15) << venue.ToString();
  EXPECT_TRUE(venue.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllVenues, PresetTest,
    ::testing::Values(
        PresetExpectation{VenuePreset::kMelbourneCentral, 298, 299, 7},
        PresetExpectation{VenuePreset::kChadstone, 679, 678, 4},
        PresetExpectation{VenuePreset::kCopenhagenAirport, 76, 118, 1},
        PresetExpectation{VenuePreset::kMenziesBuilding, 1344, 1375, 16}));

TEST(PresetTest, CopenhagenFootprintRoughlyMatchesPaper) {
  Venue venue = Unwrap(BuildPresetVenue(VenuePreset::kCopenhagenAirport));
  const Rect bounds = venue.LevelBounds(0);
  EXPECT_NEAR(bounds.width(), 2000.0, 100.0);
  EXPECT_NEAR(bounds.height(), 600.0, 50.0);
}

TEST(PresetTest, NamesAreStable) {
  EXPECT_STREQ(VenuePresetName(VenuePreset::kMelbourneCentral), "MC");
  EXPECT_STREQ(VenuePresetName(VenuePreset::kChadstone), "CH");
  EXPECT_STREQ(VenuePresetName(VenuePreset::kCopenhagenAirport), "CPH");
  EXPECT_STREQ(VenuePresetName(VenuePreset::kMenziesBuilding), "MZB");
  EXPECT_EQ(AllVenuePresets().size(), 4u);
}

TEST(McCategoryTest, CardinalitiesMatchThePaper) {
  const auto categories = MelbourneCentralCategories();
  std::map<std::string, int> counts;
  int total = 0;
  for (const auto& c : categories) {
    counts[c.name] = c.count;
    total += c.count;
  }
  EXPECT_EQ(counts["fashion & accessories"], 101);
  EXPECT_EQ(counts["dining & entertainment"], 54);
  EXPECT_EQ(counts["health & beauty"], 39);
  EXPECT_EQ(counts["fresh food"], 19);
  EXPECT_EQ(counts["banks & services"], 14);
  EXPECT_EQ(total, 291);  // Fe + Fn is always 291 in the paper's Table 2
}

TEST(McCategoryTest, AssignmentProducesPaperFacilitySplits) {
  Venue venue = Unwrap(BuildPresetVenue(VenuePreset::kMelbourneCentral));
  ASSERT_TRUE(AssignMelbourneCentralCategories(&venue).ok());
  // The five real-setting experiments: (|Fe|, |Fn|) per category.
  const std::map<std::string, std::pair<int, int>> expectations = {
      {"fashion & accessories", {101, 190}},
      {"dining & entertainment", {54, 237}},
      {"health & beauty", {39, 252}},
      {"fresh food", {19, 272}},
      {"banks & services", {14, 277}},
  };
  for (const auto& [category, sizes] : expectations) {
    FacilitySets sets =
        Unwrap(SelectCategoryFacilities(venue, category));
    EXPECT_EQ(sets.existing.size(), static_cast<std::size_t>(sizes.first))
        << category;
    EXPECT_EQ(sets.candidates.size(), static_cast<std::size_t>(sizes.second))
        << category;
  }
}

TEST(McCategoryTest, AssignmentFailsOnSmallVenue) {
  Venue venue = Unwrap(GenerateVenue(testing_util::SmallVenueSpec()));
  EXPECT_TRUE(
      AssignMelbourneCentralCategories(&venue).IsInvalidArgument());
}

TEST(McCategoryTest, UnknownCategoryIsNotFound) {
  Venue venue = Unwrap(BuildPresetVenue(VenuePreset::kMelbourneCentral));
  ASSERT_TRUE(AssignMelbourneCentralCategories(&venue).ok());
  EXPECT_TRUE(
      SelectCategoryFacilities(venue, "no such category").status()
          .IsNotFound());
}

// --------------------------------------------------------------- Clients

TEST(ClientGeneratorTest, UniformClientsAreInsideTheirPartitions) {
  Venue venue = Unwrap(GenerateVenue(testing_util::SmallVenueSpec()));
  Rng rng(31);
  ClientGeneratorOptions options;
  const auto clients = GenerateClients(venue, 500, options, &rng);
  ASSERT_EQ(clients.size(), 500u);
  std::set<PartitionId> used;
  for (const Client& c : clients) {
    const Partition& p = venue.partition(c.partition);
    EXPECT_TRUE(p.rect.Contains(c.position));
    EXPECT_NE(p.kind, PartitionKind::kStairwell);
    used.insert(c.partition);
  }
  // Uniform placement over ~50 partitions should touch many of them.
  EXPECT_GT(used.size(), 20u);
}

TEST(ClientGeneratorTest, DeterministicPerSeed) {
  Venue venue = Unwrap(GenerateVenue(testing_util::SmallVenueSpec()));
  ClientGeneratorOptions options;
  Rng rng_a(7), rng_b(7);
  const auto a = GenerateClients(venue, 50, options, &rng_a);
  const auto b = GenerateClients(venue, 50, options, &rng_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].position, b[i].position);
    EXPECT_EQ(a[i].partition, b[i].partition);
  }
}

TEST(ClientGeneratorTest, NormalClientsClusterWithSmallSigma) {
  Venue venue = Unwrap(BuildPresetVenue(VenuePreset::kCopenhagenAirport));
  ClientGeneratorOptions tight;
  tight.distribution = ClientDistribution::kNormal;
  tight.sigma = 0.125;
  ClientGeneratorOptions loose = tight;
  loose.sigma = 2.0;
  Rng rng_a(11), rng_b(11);
  const auto clustered = GenerateClients(venue, 400, tight, &rng_a);
  const auto dispersed = GenerateClients(venue, 400, loose, &rng_b);
  const Point centre = venue.LevelBounds(0).center();
  auto mean_distance = [&](const std::vector<Client>& cs) {
    double total = 0;
    for (const Client& c : cs) total += PlanarDistance(c.position, centre);
    return total / cs.size();
  };
  EXPECT_LT(mean_distance(clustered), mean_distance(dispersed) * 0.7);
  for (const Client& c : clustered) {
    EXPECT_TRUE(venue.partition(c.partition).rect.Contains(c.position));
  }
}

TEST(ClientGeneratorTest, CorridorExclusionRespected) {
  Venue venue = Unwrap(GenerateVenue(testing_util::SmallVenueSpec()));
  ClientGeneratorOptions options;
  options.allow_corridors = false;
  Rng rng(13);
  const auto clients = GenerateClients(venue, 200, options, &rng);
  for (const Client& c : clients) {
    EXPECT_EQ(venue.partition(c.partition).kind, PartitionKind::kRoom);
  }
}

// -------------------------------------------------------------- Facilities

TEST(FacilitySelectorTest, UniformDrawsAreDisjointRooms) {
  Venue venue = Unwrap(GenerateVenue(testing_util::SmallVenueSpec()));
  Rng rng(17);
  FacilitySets sets = Unwrap(SelectUniformFacilities(venue, 10, 15, &rng));
  EXPECT_EQ(sets.existing.size(), 10u);
  EXPECT_EQ(sets.candidates.size(), 15u);
  std::set<PartitionId> all(sets.existing.begin(), sets.existing.end());
  all.insert(sets.candidates.begin(), sets.candidates.end());
  EXPECT_EQ(all.size(), 25u);
  for (PartitionId p : all) {
    EXPECT_EQ(venue.partition(p).kind, PartitionKind::kRoom);
  }
}

TEST(FacilitySelectorTest, OverdrawFails) {
  Venue venue = Unwrap(GenerateVenue(testing_util::SmallVenueSpec()));
  Rng rng(19);
  EXPECT_TRUE(SelectUniformFacilities(venue, 40, 40, &rng)
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------- Workload

TEST(WorkloadTest, SyntheticBuildIsConsistent) {
  WorkloadSpec spec;
  spec.preset = VenuePreset::kCopenhagenAirport;
  spec.num_existing = 10;
  spec.num_candidates = 20;
  spec.num_clients = 100;
  spec.seed = 3;
  Workload w = Unwrap(BuildWorkload(spec));
  EXPECT_EQ(w.facilities.existing.size(), 10u);
  EXPECT_EQ(w.facilities.candidates.size(), 20u);
  EXPECT_EQ(w.clients.size(), 100u);
  EXPECT_EQ(w.venue.num_rooms(), 76u);
}

TEST(WorkloadTest, RealSettingRequiresMelbourneCentral) {
  WorkloadSpec spec;
  spec.preset = VenuePreset::kChadstone;
  spec.real_setting = true;
  EXPECT_TRUE(BuildWorkload(spec).status().IsInvalidArgument());
}

TEST(WorkloadTest, RealSettingBuildsCategorySplit) {
  WorkloadSpec spec;
  spec.preset = VenuePreset::kMelbourneCentral;
  spec.real_setting = true;
  spec.existing_category = "fresh food";
  spec.num_clients = 50;
  Workload w = Unwrap(BuildWorkload(spec));
  EXPECT_EQ(w.facilities.existing.size(), 19u);
  EXPECT_EQ(w.facilities.candidates.size(), 272u);
}

TEST(WorkloadTest, ParameterGridsMatchTable2) {
  const ParameterGrid mc = PresetParameterGrid(VenuePreset::kMelbourneCentral);
  EXPECT_EQ(mc.existing_sizes,
            (std::vector<std::size_t>{25, 50, 75, 100, 125}));
  EXPECT_EQ(mc.candidate_sizes,
            (std::vector<std::size_t>{100, 125, 150, 175, 200}));
  EXPECT_EQ(mc.default_existing, 75u);
  EXPECT_EQ(mc.default_candidates, 150u);

  const ParameterGrid cph =
      PresetParameterGrid(VenuePreset::kCopenhagenAirport);
  EXPECT_EQ(cph.existing_sizes, (std::vector<std::size_t>{10, 15, 20, 25, 30}));
  EXPECT_EQ(cph.default_existing, 20u);

  const ParameterGrid mzb = PresetParameterGrid(VenuePreset::kMenziesBuilding);
  EXPECT_EQ(mzb.candidate_sizes,
            (std::vector<std::size_t>{300, 400, 500, 600, 700}));

  EXPECT_EQ(ClientSizeSweep(),
            (std::vector<std::size_t>{1000, 5000, 10000, 15000, 20000}));
  EXPECT_EQ(SigmaSweep(), (std::vector<double>{0.125, 0.25, 0.5, 1.0, 2.0}));
}

}  // namespace
}  // namespace ifls
