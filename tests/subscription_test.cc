// Standing IFLS subscriptions: deterministic push semantics in admission-only
// mode (initial push, bound-based invalidation, skip accounting), trajectory
// ticks, unsubscribe, and the compaction-rebase regression — a subscription
// registered before a compaction cut must keep seeing mutations rebased past
// the cut.

#include "src/service/subscription.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/core/solve_dispatch.h"
#include "src/service/service.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::Unwrap;

ServiceOptions InlineOptions() {
  ServiceOptions options;
  options.num_workers = 0;
  options.compaction_threshold = 0;
  return options;
}

/// Thread-safe push log for a subscription callback.
struct PushLog {
  std::mutex mu;
  std::vector<SubscriptionPush> pushes;

  SubscriptionCallback Callback() {
    return [this](const SubscriptionPush& push) {
      std::lock_guard<std::mutex> lock(mu);
      pushes.push_back(push);
    };
  }
  std::size_t size() {
    std::lock_guard<std::mutex> lock(mu);
    return pushes.size();
  }
  SubscriptionPush at(std::size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    return pushes.at(i);
  }
  SubscriptionPush back() {
    std::lock_guard<std::mutex> lock(mu);
    return pushes.back();
  }
};

/// From-scratch solve over the service's current composition with the given
/// crowd — what every delivered answer must match.
IflsResult FreshSolve(const IflsService& service,
                      const std::vector<Client>& clients) {
  const auto state = service.AcquireState();
  IflsContext ctx;
  ctx.oracle = &state->oracle();
  ctx.existing = state->overlay.effective_existing();
  ctx.candidates = state->overlay.effective_candidates();
  ctx.clients = clients;
  return Unwrap(SolveEfficient(ctx, service.options().solvers.minmax));
}

struct SubscriptionFixture {
  std::unique_ptr<IflsService> service;
  std::vector<Client> clients;  // mirror; ids are subscription client ids
  PushLog log;

  explicit SubscriptionFixture(std::uint64_t seed, std::size_t num_clients,
                               ServiceOptions options = InlineOptions()) {
    Rng rng(seed);
    Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
    const FacilitySets sets = Unwrap(SelectUniformFacilities(
        venue, 2 + rng.NextBounded(2), 5 + rng.NextBounded(6), &rng));
    for (std::size_t i = 0; i < num_clients; ++i) {
      clients.push_back(RandomClient(venue, &rng, static_cast<ClientId>(i)));
    }
    service = Unwrap(IflsService::Create(std::move(venue), sets.existing,
                                         sets.candidates, options));
  }
};

TEST(SubscriptionTest, InitialAnswerPushedSynchronously) {
  SubscriptionFixture f(101, 8);
  std::shared_ptr<Subscription> sub = Unwrap(
      f.service->Subscribe(f.clients, SubscriptionOptions{}, f.log.Callback()));

  ASSERT_EQ(f.log.size(), 1u);  // delivered before Subscribe returned
  const SubscriptionPush initial = f.log.at(0);
  EXPECT_EQ(initial.subscription_id, sub->id());
  EXPECT_EQ(initial.sequence, 0u);
  EXPECT_EQ(initial.version, 0u);
  EXPECT_EQ(initial.ticks_applied, 0u);

  const IflsResult fresh = FreshSolve(*f.service, f.clients);
  EXPECT_EQ(initial.result.found, fresh.found);
  EXPECT_EQ(initial.result.answer, fresh.answer);
  EXPECT_EQ(initial.result.objective, fresh.objective);  // bit-identical

  const Subscription::State state = sub->Current();
  EXPECT_EQ(state.pushes, 1u);
  EXPECT_EQ(state.version, 0u);
  EXPECT_EQ(f.service->Metrics().subscriptions_active, 1u);
}

TEST(SubscriptionTest, MutationsPushExactlyWhenInvalidating) {
  SubscriptionFixture f(102, 10);
  std::shared_ptr<Subscription> sub = Unwrap(
      f.service->Subscribe(f.clients, SubscriptionOptions{}, f.log.Callback()));

  // Drive a random mutation stream; with tolerance 0, after every accepted
  // mutation the standing answer must equal a from-scratch solve — whether
  // it was refreshed by a push or certified unchanged by the bound check.
  Rng rng(103);
  const std::size_t num_partitions =
      f.service->AcquireState()->snapshot->venue().num_partitions();
  std::uint64_t accepted = 0;
  for (int step = 0; step < 40; ++step) {
    Mutation m;
    m.kind = static_cast<MutationKind>(rng.NextBounded(4));
    m.partition = static_cast<PartitionId>(rng.NextBounded(num_partitions));
    std::uint64_t version = 0;
    if (!f.service->Mutate(m, &version).ok()) continue;
    ++accepted;
    ASSERT_EQ(version, accepted);

    const Subscription::State state = sub->Current();
    EXPECT_EQ(state.version, accepted);  // event folded inline

    const IflsResult fresh = FreshSolve(*f.service, f.clients);
    if (fresh.found) {
      ASSERT_TRUE(state.has_answer);
      EXPECT_EQ(state.objective, fresh.objective);  // exact, even on skips
    }
    if (f.log.back().version == accepted) {
      // This mutation pushed: the pushed answer is the from-scratch one.
      EXPECT_EQ(f.log.back().result.found, fresh.found);
      EXPECT_EQ(f.log.back().result.answer, fresh.answer);
      EXPECT_EQ(f.log.back().result.objective, fresh.objective);
    }
  }
  ASSERT_GT(accepted, 0u);
  const ServiceMetrics metrics = f.service->Metrics();
  EXPECT_EQ(metrics.subscription_events, accepted);
  // The whole point of the certified bound: not every event re-solves.
  EXPECT_GT(metrics.subscription_skips, 0u);
  EXPECT_LT(metrics.subscription_solves,
            static_cast<std::uint64_t>(accepted) + 1);
  EXPECT_EQ(metrics.subscription_pushes, f.log.size());
}

TEST(SubscriptionTest, TicksFoldMovesAndPushOnInvalidation) {
  SubscriptionFixture f(104, 6);
  std::shared_ptr<Subscription> sub = Unwrap(
      f.service->Subscribe(f.clients, SubscriptionOptions{}, f.log.Callback()));

  Rng rng(105);
  const Venue& venue = f.service->AcquireState()->snapshot->venue();
  for (int step = 0; step < 25; ++step) {
    const std::size_t idx = rng.NextBounded(f.clients.size());
    const Client moved = RandomClient(venue, &rng, f.clients[idx].id);
    ASSERT_TRUE(f.service
                    ->TickSubscription(sub->id(), f.clients[idx].id,
                                       moved.position, moved.partition)
                    .ok());
    f.clients[idx] = moved;

    const Subscription::State state = sub->Current();
    EXPECT_EQ(state.ticks_applied, static_cast<std::uint64_t>(step) + 1);
    const IflsResult fresh = FreshSolve(*f.service, f.clients);
    if (fresh.found) {
      ASSERT_TRUE(state.has_answer);
      EXPECT_EQ(state.objective, fresh.objective);
    }
    if (f.log.back().ticks_applied == static_cast<std::uint64_t>(step) + 1) {
      EXPECT_EQ(f.log.back().result.answer, fresh.answer);
      EXPECT_EQ(f.log.back().result.objective, fresh.objective);
    }
  }
}

TEST(SubscriptionTest, SurvivesCompactionRebase) {
  // Regression: a subscription registered before a compaction cut must keep
  // composing mutations rebased past the cut. Sequence: subscribe -> mutate
  // -> compact (overlay rebased, epoch bumped) -> mutate -> tick; the final
  // answer must equal a from-scratch solve over the final composition.
  SubscriptionFixture f(106, 8);
  std::shared_ptr<Subscription> sub = Unwrap(
      f.service->Subscribe(f.clients, SubscriptionOptions{}, f.log.Callback()));

  const auto boot_state = f.service->AcquireState();
  const std::vector<PartitionId> candidates(
      boot_state->overlay.effective_candidates());
  ASSERT_GE(candidates.size(), 2u);

  // Mutation 1: remove a candidate (forces real overlay content).
  Mutation m1;
  m1.kind = MutationKind::kRemoveCandidate;
  m1.partition = candidates.front();
  ASSERT_TRUE(f.service->Mutate(m1).ok());

  // Fold the overlay into a fresh snapshot; the overlay rebases to empty.
  ASSERT_TRUE(f.service->CompactNow().ok());
  EXPECT_GT(f.service->snapshot_epoch(), 0u);
  EXPECT_EQ(f.service->AcquireState()->overlay.delta().size(), 0u);

  // Mutation 2, after the cut: remove another candidate.
  Mutation m2;
  m2.kind = MutationKind::kRemoveCandidate;
  m2.partition = candidates.back();
  std::uint64_t version = 0;
  ASSERT_TRUE(f.service->Mutate(m2, &version).ok());
  EXPECT_EQ(version, 2u);

  // And a tick on top.
  Rng rng(107);
  const Venue& venue = f.service->AcquireState()->snapshot->venue();
  const Client moved = RandomClient(venue, &rng, f.clients[0].id);
  ASSERT_TRUE(f.service
                  ->TickSubscription(sub->id(), f.clients[0].id,
                                     moved.position, moved.partition)
                  .ok());
  f.clients[0] = moved;

  const Subscription::State state = sub->Current();
  EXPECT_EQ(state.version, 2u);
  EXPECT_EQ(state.ticks_applied, 1u);
  const IflsResult fresh = FreshSolve(*f.service, f.clients);
  if (fresh.found) {
    ASSERT_TRUE(state.has_answer);
    EXPECT_EQ(state.objective, fresh.objective);
    // Neither removed candidate can be the standing answer anymore.
    EXPECT_NE(state.answer, m1.partition);
    EXPECT_NE(state.answer, m2.partition);
  }
  const SubscriptionPush last = f.log.back();
  if (last.version == 2u && last.ticks_applied == 1u) {
    EXPECT_EQ(last.result.answer, fresh.answer);
    EXPECT_EQ(last.result.objective, fresh.objective);
  }
}

TEST(SubscriptionTest, UnsubscribeStopsDeliveries) {
  SubscriptionFixture f(108, 5);
  std::shared_ptr<Subscription> sub = Unwrap(
      f.service->Subscribe(f.clients, SubscriptionOptions{}, f.log.Callback()));
  ASSERT_EQ(f.log.size(), 1u);

  ASSERT_TRUE(f.service->Unsubscribe(sub->id()).ok());
  EXPECT_TRUE(f.service->Unsubscribe(sub->id()).IsNotFound());
  EXPECT_EQ(f.service->Metrics().subscriptions_active, 0u);
  EXPECT_TRUE(f.service
                  ->TickSubscription(sub->id(), 0, f.clients[0].position,
                                     f.clients[0].partition)
                  .IsNotFound());

  const std::vector<PartitionId> candidates(
      f.service->AcquireState()->overlay.effective_candidates());
  Mutation m;
  m.kind = MutationKind::kRemoveCandidate;
  m.partition = candidates.front();
  ASSERT_TRUE(f.service->Mutate(m).ok());
  EXPECT_EQ(f.log.size(), 1u);  // nothing new after unsubscribe

  // The handle stays readable after deregistration.
  EXPECT_EQ(sub->Current().pushes, 1u);
}

TEST(SubscriptionTest, ValidatesArguments) {
  SubscriptionFixture f(109, 3);
  const SubscriptionCallback noop = [](const SubscriptionPush&) {};
  SubscriptionOptions bad_tolerance;
  bad_tolerance.tolerance = -0.1;
  EXPECT_TRUE(f.service->Subscribe(f.clients, bad_tolerance, noop)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(f.service->Subscribe(f.clients, SubscriptionOptions{}, nullptr)
                  .status()
                  .IsInvalidArgument());

  std::vector<Client> misplaced = f.clients;
  misplaced[0].position = Point(1e9, 1e9, 0);
  EXPECT_TRUE(f.service->Subscribe(misplaced, SubscriptionOptions{}, noop)
                  .status()
                  .IsInvalidArgument());

  std::shared_ptr<Subscription> sub = Unwrap(
      f.service->Subscribe(f.clients, SubscriptionOptions{}, f.log.Callback()));
  EXPECT_TRUE(f.service
                  ->TickSubscription(sub->id(), 0, Point(1e9, 1e9, 0),
                                     f.clients[0].partition)
                  .IsInvalidArgument());
  EXPECT_TRUE(f.service
                  ->TickSubscription(9999, 0, f.clients[0].position,
                                     f.clients[0].partition)
                  .IsNotFound());
}

TEST(SubscriptionTest, ToleranceTradesPushesForSkips) {
  // Geometry where the certified bound is provably decisive: one client in
  // the TinyVenue corridor between candidate doors at x=10 and x=20, the
  // only existing facility a level away (its distance never binds). With
  // moves restricted to x in (12, 18), the cached answer's distance stays
  // within a factor 8/2 = 4 of the nearest-candidate floor, so a
  // tolerance-10 subscription (skip factor 11) never re-solves after the
  // initial answer — while the exact one must re-solve on every midpoint
  // crossing and may skip only on same-side nudges.
  testing_util::TinyVenue t = testing_util::BuildTinyVenue();
  std::vector<Client> clients(1);
  clients[0].id = 0;
  clients[0].position = Point(13, 2, 0);
  clients[0].partition = t.corridor;
  std::unique_ptr<IflsService> service = Unwrap(
      IflsService::Create(std::move(t.venue), {t.room_d},
                          {t.room_a, t.room_b}, InlineOptions()));

  PushLog exact_log;
  PushLog loose_log;
  std::shared_ptr<Subscription> exact_sub = Unwrap(
      service->Subscribe(clients, SubscriptionOptions{},
                         exact_log.Callback()));
  SubscriptionOptions loose_options;
  loose_options.tolerance = 10.0;
  std::shared_ptr<Subscription> loose_sub = Unwrap(
      service->Subscribe(clients, loose_options, loose_log.Callback()));

  Rng rng(111);
  int crossings = 0;
  double prev_x = 13.0;
  for (int step = 0; step < 30; ++step) {
    const double x = rng.NextUniform(12.0, 18.0);
    if ((prev_x < 15.0) != (x < 15.0)) ++crossings;
    prev_x = x;
    const Point nudged(x, 2, 0);
    ASSERT_TRUE(
        service->TickSubscription(exact_sub->id(), 0, nudged, t.corridor)
            .ok());
    ASSERT_TRUE(
        service->TickSubscription(loose_sub->id(), 0, nudged, t.corridor)
            .ok());
  }
  ASSERT_GT(crossings, 0);  // the fixed seed does cross the midpoint

  const Subscription::State exact_state = exact_sub->Current();
  const Subscription::State loose_state = loose_sub->Current();
  EXPECT_EQ(loose_state.solves, 1);   // the initial answer, nothing since
  EXPECT_EQ(loose_state.skips, 30);
  EXPECT_EQ(loose_log.size(), 1u);
  EXPECT_GE(exact_state.solves, 1 + crossings);
  EXPECT_GT(exact_state.skips, 0);
  EXPECT_GT(exact_log.size(), loose_log.size());
}

TEST(SubscriptionTest, WorkerModeDeliversAfterDrain) {
  ServiceOptions options;
  options.num_workers = 2;
  options.compaction_threshold = 0;
  SubscriptionFixture f(112, 8, options);
  std::shared_ptr<Subscription> sub = Unwrap(
      f.service->Subscribe(f.clients, SubscriptionOptions{}, f.log.Callback()));
  ASSERT_EQ(f.log.size(), 1u);  // initial is synchronous even with workers

  const std::vector<PartitionId> candidates(
      f.service->AcquireState()->overlay.effective_candidates());
  std::uint64_t accepted = 0;
  for (PartitionId p : candidates) {
    Mutation m;
    m.kind = MutationKind::kRemoveCandidate;
    m.partition = p;
    if (f.service->Mutate(m).ok()) ++accepted;
  }
  f.service->Drain();  // waits for pending subscription pumps too
  const Subscription::State state = sub->Current();
  EXPECT_EQ(state.version, accepted);
  EXPECT_EQ(state.events_processed, accepted);
  const IflsResult fresh = FreshSolve(*f.service, f.clients);
  EXPECT_EQ(state.has_answer, fresh.found);  // all candidates removed
}

}  // namespace
}  // namespace ifls
