// Streaming result iterators: pages must concatenate — bit-identically and
// without duplicates or gaps — to the full ranked answer of a one-shot
// top-k=|Fn| solve, ties at page boundaries must break by lowest partition
// id, and an open iterator must stay pinned to its serving state across
// concurrent mutations and compactions.

#include "src/service/result_iterator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/solve_dispatch.h"
#include "src/service/service.h"
#include "tests/test_util.h"

namespace ifls {
namespace {

using testing_util::BuildTinyVenue;
using testing_util::RandomClient;
using testing_util::SmallVenueSpec;
using testing_util::TinyVenue;
using testing_util::Unwrap;

ServiceOptions InlineOptions() {
  ServiceOptions options;
  options.num_workers = 0;
  options.compaction_threshold = 0;
  return options;
}

/// The full ranked answer over the iterator's own pinned state — exactly
/// what concatenating every page must reproduce.
std::vector<std::pair<PartitionId, double>> FullRanking(
    const ResultIterator& it, const std::vector<Client>& clients) {
  const ServingState& state = *it.state();
  IflsContext ctx;
  ctx.oracle = &state.oracle();
  ctx.existing = state.overlay.effective_existing();
  ctx.candidates = state.overlay.effective_candidates();
  ctx.clients = clients;
  EfficientOptions options;
  options.top_k = static_cast<int>(std::max<std::size_t>(
      1, state.overlay.effective_candidates().size()));
  return Unwrap(SolveEfficient(ctx, options)).ranked;
}

/// Drains the iterator with the given page size, checking the exhausted
/// flag on the way.
std::vector<std::pair<PartitionId, double>> DrainPages(ResultIterator* it,
                                                       std::size_t m) {
  std::vector<std::pair<PartitionId, double>> all;
  for (int guard = 0; guard < 10000; ++guard) {
    const ResultIterator::Page page = it->Next(m);
    all.insert(all.end(), page.items.begin(), page.items.end());
    if (page.exhausted) return all;
    EXPECT_LE(page.items.size(), m);
  }
  ADD_FAILURE() << "iterator never exhausted";
  return all;
}

class ResultIteratorPagingTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResultIteratorPagingTest, PagesConcatenateToFullRankingBitIdentical) {
  Rng rng(GetParam());
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  const FacilitySets sets = Unwrap(SelectUniformFacilities(
      venue, 2 + rng.NextBounded(3), 6 + rng.NextBounded(10), &rng));
  std::vector<Client> clients;
  const std::size_t num_clients = 5 + rng.NextBounded(15);
  for (std::size_t i = 0; i < num_clients; ++i) {
    clients.push_back(RandomClient(venue, &rng, static_cast<ClientId>(i)));
  }
  std::unique_ptr<IflsService> service = Unwrap(IflsService::Create(
      std::move(venue), sets.existing, sets.candidates, InlineOptions()));

  ServiceRequest request;
  request.clients = clients;
  std::unique_ptr<ResultIterator> it =
      Unwrap(service->OpenIterator(std::move(request)));
  const std::vector<std::pair<PartitionId, double>> reference =
      FullRanking(*it, clients);
  ASSERT_EQ(reference.size(), it->total_candidates());

  // Random page sizes; every entry appears exactly once, in ranked order,
  // with the bit-identical exact objective of the one-shot solve.
  std::vector<std::pair<PartitionId, double>> paged;
  while (!it->exhausted()) {
    const std::size_t m = 1 + rng.NextBounded(4);
    const ResultIterator::Page page = it->Next(m);
    ASSERT_LE(page.items.size(), m);
    paged.insert(paged.end(), page.items.begin(), page.items.end());
    ASSERT_EQ(paged.size(), it->emitted());
  }
  EXPECT_EQ(paged, reference);  // bit-identical, no dupes, no gaps

  // Exhausted iterators keep returning empty terminal pages.
  const ResultIterator::Page after = it->Next(3);
  EXPECT_TRUE(after.exhausted);
  EXPECT_TRUE(after.items.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResultIteratorPagingTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(ResultIteratorTest, TieAtPageBoundaryBreaksByLowestPartitionId) {
  // One client dead-center in the corridor, candidate rooms A and B with
  // doors symmetric around it: both candidates score exactly 5.0 and the
  // m=1 page boundary falls inside the tie.
  TinyVenue t = BuildTinyVenue();
  const PartitionId room_a = t.room_a;
  const PartitionId room_b = t.room_b;
  std::vector<Client> clients(1);
  clients[0].id = 0;
  clients[0].position = Point(15, 2, 0);
  clients[0].partition = t.corridor;
  std::unique_ptr<IflsService> service = Unwrap(
      IflsService::Create(std::move(t.venue), {t.room_d}, {room_a, room_b},
                          InlineOptions()));
  ServiceRequest request;
  request.clients = clients;
  std::unique_ptr<ResultIterator> it =
      Unwrap(service->OpenIterator(std::move(request)));

  const ResultIterator::Page first = it->Next(1);
  const ResultIterator::Page second = it->Next(1);
  ASSERT_EQ(first.items.size(), 1u);
  ASSERT_EQ(second.items.size(), 1u);
  EXPECT_EQ(first.items[0].second, second.items[0].second);  // the tie
  EXPECT_EQ(first.items[0].first, room_a);   // lowest id wins the boundary
  EXPECT_EQ(second.items[0].first, room_b);
  EXPECT_TRUE(second.exhausted);
}

TEST(ResultIteratorTest, ZeroClientsRanksAllCandidatesByIdAtZero) {
  // With no clients every candidate's objective is an empty max = 0.0: one
  // global tie, so the stream must emit the whole candidate set ascending
  // by partition id.
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  Rng rng(7);
  const FacilitySets sets =
      Unwrap(SelectUniformFacilities(venue, 2, 9, &rng));
  std::vector<PartitionId> expected = sets.candidates;
  std::sort(expected.begin(), expected.end());
  std::unique_ptr<IflsService> service = Unwrap(IflsService::Create(
      std::move(venue), sets.existing, sets.candidates, InlineOptions()));
  std::unique_ptr<ResultIterator> it =
      Unwrap(service->OpenIterator(ServiceRequest{}));
  const auto paged = DrainPages(it.get(), 2);
  ASSERT_EQ(paged.size(), expected.size());
  for (std::size_t i = 0; i < paged.size(); ++i) {
    EXPECT_EQ(paged[i].first, expected[i]);
    EXPECT_EQ(paged[i].second, 0.0);
  }
}

TEST(ResultIteratorTest, EmptyCandidateSetExhaustsImmediately) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  Rng rng(8);
  const FacilitySets sets =
      Unwrap(SelectUniformFacilities(venue, 3, 1, &rng));
  std::vector<Client> clients = {RandomClient(venue, &rng, 0)};
  std::unique_ptr<IflsService> service = Unwrap(IflsService::Create(
      std::move(venue), sets.existing, {}, InlineOptions()));
  ServiceRequest request;
  request.clients = clients;
  std::unique_ptr<ResultIterator> it =
      Unwrap(service->OpenIterator(std::move(request)));
  EXPECT_EQ(it->total_candidates(), 0u);
  const ResultIterator::Page page = it->Next(5);
  EXPECT_TRUE(page.items.empty());
  EXPECT_TRUE(page.exhausted);
}

TEST(ResultIteratorTest, ZeroMPagePeeksWithoutConsuming) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  Rng rng(9);
  const FacilitySets sets =
      Unwrap(SelectUniformFacilities(venue, 2, 6, &rng));
  std::vector<Client> clients = {RandomClient(venue, &rng, 0),
                                 RandomClient(venue, &rng, 1)};
  std::unique_ptr<IflsService> service = Unwrap(IflsService::Create(
      std::move(venue), sets.existing, sets.candidates, InlineOptions()));
  ServiceRequest request;
  request.clients = clients;
  std::unique_ptr<ResultIterator> it =
      Unwrap(service->OpenIterator(std::move(request)));

  const ResultIterator::Page empty = it->Next(0);
  EXPECT_TRUE(empty.items.empty());
  EXPECT_FALSE(empty.exhausted);
  EXPECT_EQ(it->emitted(), 0u);
  // A zero-m probe must not have disturbed the stream.
  const auto paged = DrainPages(it.get(), 3);
  EXPECT_EQ(paged, FullRanking(*it, clients));
}

TEST(ResultIteratorTest, PinnedAcrossMutationAndCompaction) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  Rng rng(10);
  const FacilitySets sets =
      Unwrap(SelectUniformFacilities(venue, 2, 8, &rng));
  std::vector<Client> clients;
  for (int i = 0; i < 10; ++i) {
    clients.push_back(RandomClient(venue, &rng, static_cast<ClientId>(i)));
  }
  std::unique_ptr<IflsService> service = Unwrap(IflsService::Create(
      std::move(venue), sets.existing, sets.candidates, InlineOptions()));

  ServiceRequest request;
  request.clients = clients;
  std::unique_ptr<ResultIterator> it =
      Unwrap(service->OpenIterator(std::move(request)));
  const std::vector<std::pair<PartitionId, double>> reference =
      FullRanking(*it, clients);
  EXPECT_EQ(it->version(), 0u);

  // Take the first page, then yank the top candidate out from under the
  // service and compact; the snapshot chain moves on, the iterator must not.
  const ResultIterator::Page first = it->Next(2);
  ASSERT_FALSE(first.items.empty());
  Mutation removal;
  removal.kind = MutationKind::kRemoveCandidate;
  removal.partition = reference.front().first;
  std::uint64_t version = 0;
  ASSERT_TRUE(service->Mutate(removal, &version).ok());
  EXPECT_EQ(version, 1u);
  ASSERT_TRUE(service->CompactNow().ok());
  EXPECT_GT(service->snapshot_epoch(), it->snapshot_epoch());

  std::vector<std::pair<PartitionId, double>> paged = first.items;
  const auto rest = DrainPages(it.get(), 3);
  paged.insert(paged.end(), rest.begin(), rest.end());
  EXPECT_EQ(paged, reference);  // still the pre-mutation ranking, in full

  // A freshly opened iterator sees the post-mutation world.
  ServiceRequest fresh_request;
  fresh_request.clients = clients;
  std::unique_ptr<ResultIterator> fresh =
      Unwrap(service->OpenIterator(std::move(fresh_request)));
  EXPECT_EQ(fresh->version(), 1u);
  EXPECT_EQ(fresh->total_candidates(), reference.size() - 1);
  const auto fresh_paged = DrainPages(fresh.get(), 4);
  for (const auto& entry : fresh_paged) {
    EXPECT_NE(entry.first, removal.partition);
  }
}

TEST(ResultIteratorTest, NonMinMaxObjectivesAreRejected) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  Rng rng(11);
  const FacilitySets sets =
      Unwrap(SelectUniformFacilities(venue, 2, 4, &rng));
  std::unique_ptr<IflsService> service = Unwrap(IflsService::Create(
      std::move(venue), sets.existing, sets.candidates, InlineOptions()));
  for (IflsObjective objective :
       {IflsObjective::kMinDist, IflsObjective::kMaxSum}) {
    ServiceRequest request;
    request.objective = objective;
    EXPECT_TRUE(service->OpenIterator(std::move(request))
                    .status()
                    .IsInvalidArgument());
  }
}

TEST(ResultIteratorTest, StatsAccumulateAcrossPages) {
  Venue venue = Unwrap(GenerateVenue(SmallVenueSpec()));
  Rng rng(12);
  const FacilitySets sets =
      Unwrap(SelectUniformFacilities(venue, 2, 8, &rng));
  std::vector<Client> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(RandomClient(venue, &rng, static_cast<ClientId>(i)));
  }
  std::unique_ptr<IflsService> service = Unwrap(IflsService::Create(
      std::move(venue), sets.existing, sets.candidates, InlineOptions()));
  ServiceRequest request;
  request.clients = clients;
  std::unique_ptr<ResultIterator> it =
      Unwrap(service->OpenIterator(std::move(request)));
  (void)DrainPages(it.get(), 1);
  const QueryStats stats = it->stats();
  EXPECT_GT(stats.queue_pops, 0);
  EXPECT_GE(stats.elapsed_seconds, 0.0);
}

}  // namespace
}  // namespace ifls
