// Experiment A2 — index micro-benchmarks (google-benchmark): the distance
// oracles behind every IFLS query. Compares VIP-tree lookups, IP-tree chain
// composition and raw door-graph Dijkstra (via the memoised oracle, cold
// and warm), plus NN search and index construction per venue.
//
// Beyond the google-benchmark suite, the binary has a custom main() that
// measures the flat arena layout directly — bytes/node, arena utilization,
// build time/peak memory, and matrix-lookup latency against a heap-allocated
// per-node "pointer mirror" reproducing the pre-arena layout — and writes
// BENCH_index_layout.json so later PRs have a perf trajectory to compare
// against. Run with --benchmark_filter=NONE to emit only the report.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/benchlib/json_report.h"
#include "src/common/memory_tracker.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/graph/accessibility_model.h"
#include "src/datasets/client_generator.h"
#include "src/datasets/facility_selector.h"
#include "src/datasets/presets.h"
#include "src/datasets/workload.h"
#include "src/graph/dijkstra.h"
#include "src/graph/door_graph.h"
#include "src/index/door_matrix.h"
#include "src/index/graph_oracle.h"
#include "src/index/nn_search.h"
#include "src/index/vip_tree.h"

namespace ifls {
namespace {

/// Shared per-venue state, built once.
struct MicroEnv {
  Venue venue;
  std::unique_ptr<VipTree> vip;
  std::unique_ptr<VipTree> ip;
  std::unique_ptr<GraphDistanceOracle> oracle;
  std::vector<Client> clients;
  std::vector<PartitionId> targets;

  explicit MicroEnv(VenuePreset preset) {
    Result<Venue> v = BuildPresetVenue(preset);
    IFLS_CHECK(v.ok()) << v.status().ToString();
    venue = std::move(v).value();
    Result<VipTree> vip_built = VipTree::Build(&venue);
    IFLS_CHECK(vip_built.ok()) << vip_built.status().ToString();
    vip = std::make_unique<VipTree>(std::move(vip_built).value());
    VipTreeOptions ip_options;
    ip_options.build_leaf_to_ancestor = false;
    Result<VipTree> ip_built = VipTree::Build(&venue, ip_options);
    IFLS_CHECK(ip_built.ok()) << ip_built.status().ToString();
    ip = std::make_unique<VipTree>(std::move(ip_built).value());
    oracle = std::make_unique<GraphDistanceOracle>(&venue);
    Rng rng(42);
    ClientGeneratorOptions copts;
    clients = GenerateClients(venue, 512, copts, &rng);
    for (int i = 0; i < 512; ++i) {
      targets.push_back(static_cast<PartitionId>(
          rng.NextBounded(venue.num_partitions())));
    }
  }
};

MicroEnv& Env(int preset_index) {
  static MicroEnv* envs[4] = {nullptr, nullptr, nullptr, nullptr};
  if (envs[preset_index] == nullptr) {
    envs[preset_index] = new MicroEnv(AllVenuePresets()[preset_index]);
  }
  return *envs[preset_index];
}

// ------------------------------------------------------ flat vs pointer

/// Heap-allocated copy of one node's matrices: each DoorMatrix owns its own
/// id and payload vectors, reproducing the pre-arena layout where a
/// traversal chased one allocation per matrix.
struct PointerMirrorNode {
  std::unique_ptr<DoorMatrix> matrix;
  std::vector<std::unique_ptr<DoorMatrix>> ancestors;
};

std::unique_ptr<DoorMatrix> CopyMatrix(const DoorMatrixView& view) {
  auto copy = std::make_unique<DoorMatrix>(
      std::vector<DoorId>(view.rows().begin(), view.rows().end()),
      std::vector<DoorId>(view.cols().begin(), view.cols().end()),
      view.has_first_hop());
  for (std::size_t r = 0; r < view.num_rows(); ++r) {
    for (std::size_t c = 0; c < view.num_cols(); ++c) {
      copy->Set(static_cast<int>(r), static_cast<int>(c),
                view.At(static_cast<int>(r), static_cast<int>(c)),
                view.FirstHopAt(static_cast<int>(r), static_cast<int>(c)));
    }
  }
  return copy;
}

/// Identical random cell-access sequence replayed against both layouts:
/// parallel arrays of flat views and mirrored heap matrices, plus a probe
/// list (matrix, row, col) covering main and ancestor matrices alike.
struct LookupWorkload {
  std::vector<PointerMirrorNode> mirror_nodes;  // owns the heap copies
  std::vector<DoorMatrixView> flat;
  std::vector<const DoorMatrix*> mirror;
  struct Probe {
    std::uint32_t matrix;
    std::int32_t row;
    std::int32_t col;
  };
  std::vector<Probe> probes;
};

LookupWorkload BuildLookupWorkload(const VipTree& tree,
                                   std::size_t num_probes) {
  LookupWorkload w;
  w.mirror_nodes.resize(tree.num_nodes());
  for (NodeId id = 0; id < static_cast<NodeId>(tree.num_nodes()); ++id) {
    const VipNode& node = tree.node(id);
    PointerMirrorNode& mirror = w.mirror_nodes[static_cast<std::size_t>(id)];
    if (!node.matrix.empty()) {
      mirror.matrix = CopyMatrix(node.matrix);
      w.flat.push_back(node.matrix);
      w.mirror.push_back(mirror.matrix.get());
    }
    for (const DoorMatrixView& anc : node.ancestor_matrices) {
      if (anc.empty()) continue;
      mirror.ancestors.push_back(CopyMatrix(anc));
      w.flat.push_back(anc);
      w.mirror.push_back(mirror.ancestors.back().get());
    }
  }
  IFLS_CHECK(!w.flat.empty());
  Rng rng(2024);
  w.probes.reserve(num_probes);
  for (std::size_t i = 0; i < num_probes; ++i) {
    const auto m =
        static_cast<std::uint32_t>(rng.NextBounded(w.flat.size()));
    const DoorMatrixView& view = w.flat[m];
    w.probes.push_back({m,
                        static_cast<std::int32_t>(
                            rng.NextBounded(view.num_rows())),
                        static_cast<std::int32_t>(
                            rng.NextBounded(view.num_cols()))});
  }
  return w;
}

LookupWorkload& Workload(int preset_index) {
  static LookupWorkload* workloads[4] = {nullptr, nullptr, nullptr, nullptr};
  if (workloads[preset_index] == nullptr) {
    workloads[preset_index] = new LookupWorkload(
        BuildLookupWorkload(*Env(preset_index).vip, std::size_t{1} << 16));
  }
  return *workloads[preset_index];
}

// ------------------------------------------------------------ benchmarks

void BM_VipTreePointToPartition(benchmark::State& state) {
  MicroEnv& env = Env(static_cast<int>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const Client& c = env.clients[i % env.clients.size()];
    const PartitionId t = env.targets[i % env.targets.size()];
    benchmark::DoNotOptimize(
        env.vip->PointToPartition(c.position, c.partition, t));
    ++i;
  }
}
BENCHMARK(BM_VipTreePointToPartition)->DenseRange(0, 3)->Name(
    "PointToPartition/VIP-tree");

void BM_IpTreePointToPartition(benchmark::State& state) {
  MicroEnv& env = Env(static_cast<int>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const Client& c = env.clients[i % env.clients.size()];
    const PartitionId t = env.targets[i % env.targets.size()];
    benchmark::DoNotOptimize(
        env.ip->PointToPartition(c.position, c.partition, t));
    ++i;
  }
}
BENCHMARK(BM_IpTreePointToPartition)->DenseRange(0, 3)->Name(
    "PointToPartition/IP-tree");

void BM_WarmGraphOracle(benchmark::State& state) {
  MicroEnv& env = Env(static_cast<int>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const Client& c = env.clients[i % env.clients.size()];
    const PartitionId t = env.targets[i % env.targets.size()];
    benchmark::DoNotOptimize(
        env.oracle->PointToPartition(c.position, c.partition, t));
    ++i;
  }
}
BENCHMARK(BM_WarmGraphOracle)->DenseRange(0, 3)->Name(
    "PointToPartition/graph-oracle-warm");

void BM_AccessibilityModel(benchmark::State& state) {
  // The Lu et al. graph model the paper's §4 argues against: a fresh graph
  // expansion per distance query.
  MicroEnv& env = Env(static_cast<int>(state.range(0)));
  AccessibilityModel model(&env.venue);
  std::size_t i = 0;
  for (auto _ : state) {
    const Client& c = env.clients[i % env.clients.size()];
    const PartitionId t = env.targets[i % env.targets.size()];
    benchmark::DoNotOptimize(
        model.PointToPartition(c.position, c.partition, t));
    ++i;
  }
}
BENCHMARK(BM_AccessibilityModel)->DenseRange(0, 3)->Name(
    "PointToPartition/accessibility-graph");

void BM_ColdDijkstra(benchmark::State& state) {
  MicroEnv& env = Env(static_cast<int>(state.range(0)));
  DoorGraph graph(env.venue);
  std::size_t i = 0;
  for (auto _ : state) {
    const DoorId source = static_cast<DoorId>(i % env.venue.num_doors());
    benchmark::DoNotOptimize(SingleSourceShortestPaths(graph, source));
    ++i;
  }
}
BENCHMARK(BM_ColdDijkstra)->DenseRange(0, 3)->Name(
    "SingleSourceDijkstra/cold");

void BM_NearestFacility(benchmark::State& state) {
  MicroEnv& env = Env(static_cast<int>(state.range(0)));
  Rng rng(7);
  const ParameterGrid grid =
      PresetParameterGrid(AllVenuePresets()[static_cast<int>(
          state.range(0))]);
  Result<FacilitySets> sets = SelectUniformFacilities(
      env.venue, grid.default_existing, 0, &rng);
  IFLS_CHECK(sets.ok());
  FacilityIndex index(env.vip.get(), sets->existing);
  std::size_t i = 0;
  for (auto _ : state) {
    const Client& c = env.clients[i % env.clients.size()];
    benchmark::DoNotOptimize(NearestFacility(
        index, c.position, c.partition, FacilityFilter::kAny, nullptr));
    ++i;
  }
}
BENCHMARK(BM_NearestFacility)->DenseRange(0, 3)->Name(
    "NearestFacility/VIP-tree");

void BM_VipTreeBuild(benchmark::State& state) {
  MicroEnv& env = Env(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(VipTree::Build(&env.venue));
  }
}
BENCHMARK(BM_VipTreeBuild)
    ->DenseRange(0, 3)
    ->Name("IndexBuild/VIP-tree")
    ->Unit(benchmark::kMillisecond);

void BM_MatrixLookupFlat(benchmark::State& state) {
  LookupWorkload& w = Workload(static_cast<int>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const LookupWorkload::Probe& p = w.probes[i % w.probes.size()];
    benchmark::DoNotOptimize(w.flat[p.matrix].At(p.row, p.col));
    ++i;
  }
}
BENCHMARK(BM_MatrixLookupFlat)->DenseRange(0, 3)->Name(
    "MatrixLookup/flat-arena");

void BM_MatrixLookupPointer(benchmark::State& state) {
  LookupWorkload& w = Workload(static_cast<int>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const LookupWorkload::Probe& p = w.probes[i % w.probes.size()];
    benchmark::DoNotOptimize(w.mirror[p.matrix]->At(p.row, p.col));
    ++i;
  }
}
BENCHMARK(BM_MatrixLookupPointer)->DenseRange(0, 3)->Name(
    "MatrixLookup/pointer-mirror");

// --------------------------------------------------------- layout report

/// Sweeps the probe list `passes` times against one layout's matrices and
/// returns ns/lookup; `reps` repetitions, best taken (steady-state figure).
template <typename AtFn>
double MeasureLookupNs(const LookupWorkload& w, int passes, int reps,
                       AtFn&& at) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    double sum = 0.0;
    Stopwatch watch;
    for (int pass = 0; pass < passes; ++pass) {
      for (const LookupWorkload::Probe& p : w.probes) {
        sum += at(p);
      }
    }
    const double seconds = watch.ElapsedSeconds();
    benchmark::DoNotOptimize(sum);
    best = std::min(best,
                    seconds * 1e9 / (static_cast<double>(passes) *
                                     static_cast<double>(w.probes.size())));
  }
  return best;
}

struct PresetLayoutReport {
  std::string preset;
  VipTreeLayoutStats stats;
  std::size_t memory_footprint_bytes = 0;
  double build_seconds = 0.0;
  std::int64_t build_peak_bytes = 0;
  double flat_lookup_ns = 0.0;
  double pointer_lookup_ns = 0.0;
  double point_to_partition_us = 0.0;
};

PresetLayoutReport MeasurePreset(int preset_index) {
  MicroEnv& env = Env(preset_index);
  PresetLayoutReport r;
  r.preset = VenuePresetName(AllVenuePresets()[preset_index]);
  r.stats = env.vip->LayoutStats();
  r.memory_footprint_bytes = env.vip->MemoryFootprintBytes();

  // Build cost, with the arena charges isolated to this scope's high water.
  {
    MemoryTracker tracker;
    ScopedMemoryTracking tracking(&tracker);
    MemoryTracker::ScopedPeak peak(&tracker);
    Stopwatch watch;
    Result<VipTree> rebuilt = VipTree::Build(&env.venue);
    r.build_seconds = watch.ElapsedSeconds();
    IFLS_CHECK(rebuilt.ok()) << rebuilt.status().ToString();
    r.build_peak_bytes = peak.scope_peak_bytes();
  }

  // Same probe sequence against the arena views and the heap mirror.
  const LookupWorkload& w = Workload(preset_index);
  r.flat_lookup_ns = MeasureLookupNs(
      w, /*passes=*/16, /*reps=*/3,
      [&w](const LookupWorkload::Probe& p) {
        return w.flat[p.matrix].At(p.row, p.col);
      });
  r.pointer_lookup_ns = MeasureLookupNs(
      w, /*passes=*/16, /*reps=*/3,
      [&w](const LookupWorkload::Probe& p) {
        return w.mirror[p.matrix]->At(p.row, p.col);
      });

  // End-to-end distance query latency on the flat tree.
  constexpr int kQueries = 4096;
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    double sum = 0.0;
    Stopwatch watch;
    for (int i = 0; i < kQueries; ++i) {
      const Client& c = env.clients[static_cast<std::size_t>(i) %
                                    env.clients.size()];
      const PartitionId t = env.targets[static_cast<std::size_t>(i) %
                                        env.targets.size()];
      sum += env.vip->PointToPartition(c.position, c.partition, t);
    }
    const double seconds = watch.ElapsedSeconds();
    benchmark::DoNotOptimize(sum);
    best = std::min(best, seconds * 1e6 / kQueries);
  }
  r.point_to_partition_us = best;
  return r;
}

void WriteLayoutReport(const std::string& path) {
  std::vector<PresetLayoutReport> reports;
  for (int i = 0; i < 4; ++i) {
    std::cerr << "[layout] measuring preset "
              << VenuePresetName(AllVenuePresets()[i]) << "...\n";
    reports.push_back(MeasurePreset(i));
  }

  const Status written = WriteBenchReportToFile(
      path, "index_layout", [&reports](JsonWriter& w) {
        w.Key("presets");
        w.BeginArray();
        for (const PresetLayoutReport& r : reports) {
          w.BeginObject();
          w.Field("preset", r.preset);
          w.Field("num_nodes", r.stats.num_nodes);
          w.Field("num_leaves", r.stats.num_leaves);
          w.Field("bytes_per_node", r.stats.bytes_per_node);
          w.Field("memory_footprint_bytes", r.memory_footprint_bytes);
          w.Field("arena_id_bytes", r.stats.id_bytes);
          w.Field("arena_dist_bytes", r.stats.dist_bytes);
          w.Field("arena_hop_bytes", r.stats.hop_bytes);
          w.Field("arena_used_bytes", r.stats.arena_used_bytes);
          w.Field("arena_capacity_bytes", r.stats.arena_capacity_bytes);
          w.Field("arena_utilization", r.stats.arena_utilization);
          w.Field("build_seconds", r.build_seconds);
          w.Field("build_peak_bytes", r.build_peak_bytes);
          w.Field("flat_lookup_ns", r.flat_lookup_ns);
          w.Field("pointer_lookup_ns", r.pointer_lookup_ns);
          w.Field("lookup_speedup",
                  r.flat_lookup_ns > 0.0
                      ? r.pointer_lookup_ns / r.flat_lookup_ns
                      : 0.0);
          w.Field("point_to_partition_us", r.point_to_partition_us);
          w.EndObject();
        }
        w.EndArray();
      });
  IFLS_CHECK(written.ok()) << written.ToString();
  std::cerr << "[layout] wrote " << path << "\n";
  for (const PresetLayoutReport& r : reports) {
    if (r.flat_lookup_ns > r.pointer_lookup_ns) {
      std::cerr << "[layout] WARNING: flat lookups slower than pointer "
                   "mirror on preset "
                << r.preset << " (" << r.flat_lookup_ns << "ns vs "
                << r.pointer_lookup_ns << "ns)\n";
    }
  }
}

}  // namespace
}  // namespace ifls

int main(int argc, char** argv) {
  // Our flags, stripped before google-benchmark sees argv:
  //   --layout_report=PATH   where to write the JSON (default below)
  //   --no_layout_report     run only the google benchmarks
  std::string report_path = "BENCH_index_layout.json";
  bool write_report = true;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--layout_report=", 16) == 0) {
      report_path = argv[i] + 16;
    } else if (std::strcmp(argv[i], "--no_layout_report") == 0) {
      write_report = false;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }
  if (write_report) ifls::WriteLayoutReport(report_path);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
