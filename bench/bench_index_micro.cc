// Experiment A2 — index micro-benchmarks (google-benchmark): the distance
// oracles behind every IFLS query. Compares VIP-tree lookups, IP-tree chain
// composition and raw door-graph Dijkstra (via the memoised oracle, cold
// and warm), plus NN search and index construction per venue.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/accessibility_model.h"
#include "src/datasets/client_generator.h"
#include "src/datasets/facility_selector.h"
#include "src/datasets/presets.h"
#include "src/datasets/workload.h"
#include "src/graph/dijkstra.h"
#include "src/graph/door_graph.h"
#include "src/index/graph_oracle.h"
#include "src/index/nn_search.h"
#include "src/index/vip_tree.h"

namespace ifls {
namespace {

/// Shared per-venue state, built once.
struct MicroEnv {
  Venue venue;
  std::unique_ptr<VipTree> vip;
  std::unique_ptr<VipTree> ip;
  std::unique_ptr<GraphDistanceOracle> oracle;
  std::vector<Client> clients;
  std::vector<PartitionId> targets;

  explicit MicroEnv(VenuePreset preset) {
    Result<Venue> v = BuildPresetVenue(preset);
    IFLS_CHECK(v.ok()) << v.status().ToString();
    venue = std::move(v).value();
    Result<VipTree> vip_built = VipTree::Build(&venue);
    IFLS_CHECK(vip_built.ok()) << vip_built.status().ToString();
    vip = std::make_unique<VipTree>(std::move(vip_built).value());
    VipTreeOptions ip_options;
    ip_options.build_leaf_to_ancestor = false;
    Result<VipTree> ip_built = VipTree::Build(&venue, ip_options);
    IFLS_CHECK(ip_built.ok()) << ip_built.status().ToString();
    ip = std::make_unique<VipTree>(std::move(ip_built).value());
    oracle = std::make_unique<GraphDistanceOracle>(&venue);
    Rng rng(42);
    ClientGeneratorOptions copts;
    clients = GenerateClients(venue, 512, copts, &rng);
    for (int i = 0; i < 512; ++i) {
      targets.push_back(static_cast<PartitionId>(
          rng.NextBounded(venue.num_partitions())));
    }
  }
};

MicroEnv& Env(int preset_index) {
  static MicroEnv* envs[4] = {nullptr, nullptr, nullptr, nullptr};
  if (envs[preset_index] == nullptr) {
    envs[preset_index] = new MicroEnv(AllVenuePresets()[preset_index]);
  }
  return *envs[preset_index];
}

void BM_VipTreePointToPartition(benchmark::State& state) {
  MicroEnv& env = Env(static_cast<int>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const Client& c = env.clients[i % env.clients.size()];
    const PartitionId t = env.targets[i % env.targets.size()];
    benchmark::DoNotOptimize(
        env.vip->PointToPartition(c.position, c.partition, t));
    ++i;
  }
}
BENCHMARK(BM_VipTreePointToPartition)->DenseRange(0, 3)->Name(
    "PointToPartition/VIP-tree");

void BM_IpTreePointToPartition(benchmark::State& state) {
  MicroEnv& env = Env(static_cast<int>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const Client& c = env.clients[i % env.clients.size()];
    const PartitionId t = env.targets[i % env.targets.size()];
    benchmark::DoNotOptimize(
        env.ip->PointToPartition(c.position, c.partition, t));
    ++i;
  }
}
BENCHMARK(BM_IpTreePointToPartition)->DenseRange(0, 3)->Name(
    "PointToPartition/IP-tree");

void BM_WarmGraphOracle(benchmark::State& state) {
  MicroEnv& env = Env(static_cast<int>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const Client& c = env.clients[i % env.clients.size()];
    const PartitionId t = env.targets[i % env.targets.size()];
    benchmark::DoNotOptimize(
        env.oracle->PointToPartition(c.position, c.partition, t));
    ++i;
  }
}
BENCHMARK(BM_WarmGraphOracle)->DenseRange(0, 3)->Name(
    "PointToPartition/graph-oracle-warm");

void BM_AccessibilityModel(benchmark::State& state) {
  // The Lu et al. graph model the paper's §4 argues against: a fresh graph
  // expansion per distance query.
  MicroEnv& env = Env(static_cast<int>(state.range(0)));
  AccessibilityModel model(&env.venue);
  std::size_t i = 0;
  for (auto _ : state) {
    const Client& c = env.clients[i % env.clients.size()];
    const PartitionId t = env.targets[i % env.targets.size()];
    benchmark::DoNotOptimize(
        model.PointToPartition(c.position, c.partition, t));
    ++i;
  }
}
BENCHMARK(BM_AccessibilityModel)->DenseRange(0, 3)->Name(
    "PointToPartition/accessibility-graph");

void BM_ColdDijkstra(benchmark::State& state) {
  MicroEnv& env = Env(static_cast<int>(state.range(0)));
  DoorGraph graph(env.venue);
  std::size_t i = 0;
  for (auto _ : state) {
    const DoorId source = static_cast<DoorId>(i % env.venue.num_doors());
    benchmark::DoNotOptimize(SingleSourceShortestPaths(graph, source));
    ++i;
  }
}
BENCHMARK(BM_ColdDijkstra)->DenseRange(0, 3)->Name(
    "SingleSourceDijkstra/cold");

void BM_NearestFacility(benchmark::State& state) {
  MicroEnv& env = Env(static_cast<int>(state.range(0)));
  Rng rng(7);
  const ParameterGrid grid =
      PresetParameterGrid(AllVenuePresets()[static_cast<int>(
          state.range(0))]);
  Result<FacilitySets> sets = SelectUniformFacilities(
      env.venue, grid.default_existing, 0, &rng);
  IFLS_CHECK(sets.ok());
  FacilityIndex index(env.vip.get(), sets->existing);
  std::size_t i = 0;
  for (auto _ : state) {
    const Client& c = env.clients[i % env.clients.size()];
    benchmark::DoNotOptimize(NearestFacility(
        index, c.position, c.partition, FacilityFilter::kAny, nullptr));
    ++i;
  }
}
BENCHMARK(BM_NearestFacility)->DenseRange(0, 3)->Name(
    "NearestFacility/VIP-tree");

void BM_VipTreeBuild(benchmark::State& state) {
  MicroEnv& env = Env(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(VipTree::Build(&env.venue));
  }
}
BENCHMARK(BM_VipTreeBuild)
    ->DenseRange(0, 3)
    ->Name("IndexBuild/VIP-tree")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ifls
