// Experiment A1 — ablation of the efficient approach's design choices
// (DESIGN.md §3.3) on synthetic Melbourne Central at default parameters:
//   full            — all optimizations (the paper's algorithm)
//   -grouping       — one traversal stream per client instead of per
//                     partition
//   -pruning        — Lemma 5.1 off (clients keep receiving distances)
//   -subtree-skip   — facility-free subtrees and partitions are enqueued
//   -group dist reuse — no shared per-door base distances within a group
//                     (every client pays a full distance computation)
//   + door memo     — both algorithms on an index with the door-distance
//                     memo (engineering extension, DESIGN.md §3.3b)
//   top-down NN     — the modified MinMax baseline (per-client top-down NN
//                     search) as the reference point
// All variants return optimal answers; only cost changes.

#include <cstdio>
#include <iostream>

#include "src/benchlib/harness.h"
#include "src/benchlib/table.h"
#include "src/core/efficient.h"
#include "src/core/minmax_baseline.h"

int main() {
  using namespace ifls;
  const BenchScale scale = BenchScale::FromEnv();
  std::printf(
      "# A1: ablation of the efficient approach (MC synthetic, scale=%s, "
      "%d repeats)\n\n",
      scale.name.c_str(), scale.repeats);

  VenueCache cache;
  const Venue& venue = cache.venue(VenuePreset::kMelbourneCentral, false);
  const VipTree& tree = cache.tree(VenuePreset::kMelbourneCentral, false);
  const ParameterGrid grid =
      PresetParameterGrid(VenuePreset::kMelbourneCentral);

  WorkloadSpec spec;
  spec.preset = VenuePreset::kMelbourneCentral;
  spec.num_existing = grid.default_existing;
  spec.num_candidates = grid.default_candidates;
  spec.num_clients = scale.Clients(kDefaultClients);

  struct Variant {
    const char* label;
    EfficientOptions options;
  };
  EfficientOptions full;
  EfficientOptions no_group = full;
  no_group.group_clients = false;
  EfficientOptions no_prune = full;
  no_prune.prune_clients = false;
  EfficientOptions no_skip = full;
  no_skip.skip_empty_subtrees = false;
  EfficientOptions no_reuse = full;
  no_reuse.reuse_group_distances = false;
  const Variant variants[] = {
      {"full", full},           {"-grouping", no_group},
      {"-pruning", no_prune},   {"-subtree-skip", no_skip},
      {"-group dist reuse", no_reuse},
  };

  TextTable table({"variant", "time (s)", "mem (MB)", "dist comps",
                   "queue pushes", "clients pruned"});
  for (const Variant& v : variants) {
    double time = 0, mem = 0;
    long long dist = 0, pushes = 0, pruned = 0;
    for (int r = 0; r < scale.repeats; ++r) {
      Rng rng(1 + static_cast<std::uint64_t>(r));
      IflsContext ctx;
      ctx.oracle = &tree;
      Result<FacilitySets> sets = MakeFacilities(venue, spec, &rng);
      if (!sets.ok()) {
        std::fprintf(stderr, "%s\n", sets.status().ToString().c_str());
        return 1;
      }
      ctx.existing = sets->existing;
      ctx.candidates = sets->candidates;
      ctx.clients = MakeClients(venue, spec, &rng);
      Result<IflsResult> result = SolveEfficient(ctx, v.options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      time += result->stats.elapsed_seconds;
      mem += static_cast<double>(result->stats.peak_memory_bytes) / (1 << 20);
      dist += result->stats.distance_computations;
      pushes += result->stats.queue_pushes;
      pruned += result->stats.clients_pruned;
    }
    const double n = scale.repeats;
    table.AddRow({v.label, TextTable::Num(time / n), TextTable::Num(mem / n),
                  TextTable::Int(dist / scale.repeats),
                  TextTable::Int(pushes / scale.repeats),
                  TextTable::Int(pruned / scale.repeats)});
  }

  // Engineering extension beyond the paper: both algorithms on an index
  // with the door-distance memo enabled (DESIGN.md §3.2 discussion). The
  // memo mostly helps the baseline — it removes exactly the per-client
  // redundancy that the efficient approach's grouping eliminates
  // algorithmically.
  VipTreeOptions memo_options;
  memo_options.enable_door_distance_cache = true;
  Result<VipTree> memo_tree_result = VipTree::Build(&venue, memo_options);
  if (!memo_tree_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 memo_tree_result.status().ToString().c_str());
    return 1;
  }
  const VipTree& memo_tree = *memo_tree_result;
  for (const bool use_baseline : {false, true}) {
    double time = 0, mem = 0;
    long long dist = 0, pushes = 0, pruned = 0;
    for (int r = 0; r < scale.repeats; ++r) {
      memo_tree.ClearDistanceCache();  // cold per query, like the others
      Rng rng(1 + static_cast<std::uint64_t>(r));
      IflsContext ctx;
      ctx.oracle = &memo_tree;
      Result<FacilitySets> sets = MakeFacilities(venue, spec, &rng);
      if (!sets.ok()) return 1;
      ctx.existing = sets->existing;
      ctx.candidates = sets->candidates;
      ctx.clients = MakeClients(venue, spec, &rng);
      Result<IflsResult> result = use_baseline ? SolveModifiedMinMax(ctx)
                                               : SolveEfficient(ctx);
      if (!result.ok()) return 1;
      time += result->stats.elapsed_seconds;
      mem += static_cast<double>(result->stats.peak_memory_bytes) / (1 << 20);
      dist += result->stats.distance_computations;
      pushes += result->stats.queue_pushes;
      pruned += result->stats.clients_pruned;
    }
    const double n = scale.repeats;
    table.AddRow({use_baseline ? "baseline + door memo" : "full + door memo",
                  TextTable::Num(time / n), TextTable::Num(mem / n),
                  TextTable::Int(dist / scale.repeats),
                  TextTable::Int(pushes / scale.repeats),
                  use_baseline ? "-" : TextTable::Int(pruned / scale.repeats)});
  }

  // Reference: the per-client top-down NN baseline.
  {
    double time = 0, mem = 0;
    long long dist = 0, pushes = 0;
    for (int r = 0; r < scale.repeats; ++r) {
      Rng rng(1 + static_cast<std::uint64_t>(r));
      IflsContext ctx;
      ctx.oracle = &tree;
      Result<FacilitySets> sets = MakeFacilities(venue, spec, &rng);
      if (!sets.ok()) return 1;
      ctx.existing = sets->existing;
      ctx.candidates = sets->candidates;
      ctx.clients = MakeClients(venue, spec, &rng);
      FacilityIndex offline(&tree, ctx.existing);
      MinMaxBaselineOptions options;
      options.offline_existing_index = &offline;
      Result<IflsResult> result = SolveModifiedMinMax(ctx, options);
      if (!result.ok()) return 1;
      time += result->stats.elapsed_seconds;
      mem += static_cast<double>(result->stats.peak_memory_bytes) / (1 << 20);
      dist += result->stats.distance_computations;
      pushes += result->stats.queue_pushes;
    }
    const double n = scale.repeats;
    table.AddRow({"top-down NN baseline", TextTable::Num(time / n),
                  TextTable::Num(mem / n),
                  TextTable::Int(dist / scale.repeats),
                  TextTable::Int(pushes / scale.repeats), "-"});
  }
  table.Print(&std::cout);
  return 0;
}
