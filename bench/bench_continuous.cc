// Experiment A4 — continuous IFLS under a moving crowd (the paper's §8
// future work, no paper counterpart): walkers follow random-waypoint
// trajectories through Melbourne Central while the monitor keeps the answer
// fresh. Compares per-tick cost and staleness across maintenance policies:
// exact re-solve every tick vs certified-cache tolerances.

#include <cstdio>
#include <iostream>

#include "src/benchlib/harness.h"
#include "src/benchlib/table.h"
#include "src/common/stopwatch.h"
#include "src/core/continuous.h"
#include "src/datasets/trajectory_generator.h"

int main() {
  using namespace ifls;
  const BenchScale scale = BenchScale::FromEnv();
  std::printf(
      "# A4: continuous IFLS with moving clients (MC synthetic, scale=%s)\n\n",
      scale.name.c_str());

  VenueCache cache;
  const Venue& venue = cache.venue(VenuePreset::kMelbourneCentral, false);
  const VipTree& tree = cache.tree(VenuePreset::kMelbourneCentral, false);
  const ParameterGrid grid =
      PresetParameterGrid(VenuePreset::kMelbourneCentral);

  const std::size_t walkers = scale.Clients(kDefaultClients) / 2;
  TrajectoryOptions walk;
  walk.ticks = 40;
  walk.tick_seconds = 5.0;

  // Two candidate-density regimes: the certification bound (optimum >=
  // every-candidate-open floor) is tight when candidates are sparse and
  // weak when they blanket the venue — the table shows both.
  struct Regime {
    const char* label;
    std::size_t candidates;
  };
  const Regime regimes[] = {{"sparse Fn (15)", 15},
                            {"dense Fn (150)", grid.default_candidates}};
  for (const Regime& regime : regimes) {
    Rng rng(5);
    Result<FacilitySets> sets = SelectUniformFacilities(
        venue, grid.default_existing, regime.candidates, &rng);
    if (!sets.ok()) {
      std::fprintf(stderr, "%s\n", sets.status().ToString().c_str());
      return 1;
    }
    Result<std::vector<Trajectory>> trajectories =
        GenerateTrajectories(tree, walkers, walk, &rng);
    if (!trajectories.ok()) {
      std::fprintf(stderr, "%s\n",
                   trajectories.status().ToString().c_str());
      return 1;
    }
    std::printf("-- %s --\n", regime.label);
    TextTable table({"policy", "time/tick (ms)", "solves", "cache hits",
                     "final objective"});
    for (const double tolerance : {-1.0, 0.0, 0.05, 0.25}) {
      ContinuousIfls monitor(&tree, sets->existing, sets->candidates);
      std::vector<ClientId> ids;
      for (const Trajectory& t : *trajectories) {
        ids.push_back(monitor.AddClient(t[0].position, t[0].partition));
      }
      Stopwatch sw;
      double objective = 0.0;
      for (std::size_t tick = 1; tick < walk.ticks; ++tick) {
        for (std::size_t agent = 0; agent < trajectories->size(); ++agent) {
          const TrajectoryPoint& p = (*trajectories)[agent][tick];
          if (Status s =
                  monitor.MoveClient(ids[agent], p.position, p.partition);
              !s.ok()) {
            std::fprintf(stderr, "%s\n", s.ToString().c_str());
            return 1;
          }
        }
        if (tolerance < 0) {
          Result<IflsResult> answer = monitor.Answer();  // exact every tick
          if (!answer.ok()) return 1;
          objective = answer->objective;
        } else {
          Result<ContinuousIfls::MonitorAnswer> answer =
              monitor.AnswerWithin(tolerance);
          if (!answer.ok()) return 1;
          objective = answer->result.objective;
        }
      }
      const double ms_per_tick =
          sw.ElapsedSeconds() * 1e3 / static_cast<double>(walk.ticks - 1);
      const std::string label =
          tolerance < 0 ? "exact re-solve"
                        : "certified cache, tol " + TextTable::Num(tolerance);
      table.AddRow({label, TextTable::Num(ms_per_tick),
                    TextTable::Int(monitor.solve_count()),
                    TextTable::Int(monitor.skip_count()),
                    TextTable::Num(objective)});
    }
    table.Print(&std::cout);
    std::printf("\n");
  }
  std::printf(
      "%zu walkers, %zu ticks; every certified-cache answer is provably "
      "within its tolerance of optimal\n",
      walkers, walk.ticks - 1);
  return 0;
}
