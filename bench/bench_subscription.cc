// Standing-query maintenance benchmark: ~1k subscriptions with
// trajectory-driven crowds against an IflsService, mutations interleaved,
// versus the naive alternative of re-solving every standing query from
// scratch on every tick. Each tick moves one client per subscription (the
// usual trajectory-update shape: most of the crowd is where it was), so the
// certified lower bound lets the subscription path skip most events with an
// O(|Fe|+|Fn|) bound refresh instead of a full solve. The push path must
// come out at least 2x cheaper than naive per-tick re-solving; the run
// fails if it does not, or if any standing answer disagrees with a
// from-scratch solve at the same state.
//
// Writes BENCH_subscription.json (shared schema, src/benchlib).
// Scale via IFLS_BENCH_SCALE=smoke|default|full.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/benchlib/harness.h"
#include "src/benchlib/json_report.h"
#include "src/benchlib/table.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/core/solve_dispatch.h"
#include "src/datasets/facility_selector.h"
#include "src/datasets/presets.h"
#include "src/datasets/trajectory_generator.h"
#include "src/service/service.h"

namespace ifls {
namespace {

struct BenchConfig {
  std::size_t subscriptions = 1000;
  std::size_t clients_per_sub = 8;
  std::size_t ticks = 24;          // maintenance ticks after the initial answer
  std::size_t mutate_every = 6;    // candidate toggle once per this many ticks
  /// Dense existing coverage, sparse candidates: the standing-query regime.
  /// With many facilities already deployed most clients are existing-bound,
  /// so the certified floor meets the cached objective and ticks skip; a
  /// sparse-existing venue re-solves almost every tick and the push path
  /// degenerates to naive (bench_continuous covers that end).
  std::size_t existing = 150;
  std::size_t candidates = 30;
  /// Each tick moves one client in 1/move_stride of the subscriptions
  /// (staggered cohorts): crowds don't all shift at once, but a naive
  /// maintainer can't know that without the subscription machinery.
  std::size_t move_stride = 4;
};

BenchConfig ConfigForScale(const BenchScale& scale) {
  BenchConfig cfg;
  if (scale.name == "smoke") {
    cfg.subscriptions = 64;
    cfg.ticks = 8;
  } else if (scale.name == "full") {
    cfg.subscriptions = 2000;
    cfg.ticks = 40;
  }
  return cfg;
}

/// Whether subscription `s` receives a client move at tick `t`: crowds are
/// staggered in `move_stride` cohorts, so each tick carries movement for a
/// quarter of the fleet — the naive side still has to refresh everyone.
bool MovesAtTick(const BenchConfig& cfg, std::size_t s, std::size_t t) {
  return (s % cfg.move_stride) == (t % cfg.move_stride);
}

/// Which client of subscription `s` moves at tick `t` (staggered so the
/// mutation ticks don't line up with the same client everywhere).
std::size_t MovedClient(const BenchConfig& cfg, std::size_t s, std::size_t t) {
  return (t - 1 + s) % cfg.clients_per_sub;
}

/// Alternating remove/add of one designated candidate; the same schedule is
/// replayed in every phase so all phases see an identical state timeline.
bool IsMutationTick(const BenchConfig& cfg, std::size_t tick) {
  return cfg.mutate_every > 0 && tick % cfg.mutate_every == 0;
}

Mutation MutationAtTick(const BenchConfig& cfg, PartitionId toggle,
                        std::size_t tick) {
  const bool remove = (tick / cfg.mutate_every) % 2 == 1;
  Mutation m;
  m.kind = remove ? MutationKind::kRemoveCandidate : MutationKind::kAddCandidate;
  m.partition = toggle;
  return m;
}

struct PhaseResult {
  double seconds = 0.0;
  std::uint64_t solves = 0;
  std::uint64_t skips = 0;
  std::uint64_t pushes = 0;
  std::uint64_t events = 0;
  /// objective[s][t]: the standing answer's exact objective after tick t.
  /// When no candidate improves on the existing facilities the solver
  /// reports found=false with the existing-only objective; both phases
  /// record that value, so rows stay comparable.
  std::vector<std::vector<double>> objective;
};

std::unique_ptr<IflsService> BuildService(const FacilitySets& sets) {
  Result<Venue> venue = BuildPresetVenue(VenuePreset::kMelbourneCentral);
  IFLS_CHECK(venue.ok()) << venue.status().ToString();
  ServiceOptions options;
  options.num_workers = 0;  // inline: timings measure the push path itself
  options.compaction_threshold = 0;
  Result<std::unique_ptr<IflsService>> built = IflsService::Create(
      std::move(*venue), sets.existing, sets.candidates, options);
  IFLS_CHECK(built.ok()) << built.status().ToString();
  return std::move(*built);
}

/// Crowd state shared by both phases: every subscription's clients, advanced
/// one client per tick along that client's own trajectory (each client keeps
/// a private sample index, so a move is always one trajectory step).
class CrowdTimeline {
 public:
  CrowdTimeline(const BenchConfig& cfg, const std::vector<Trajectory>& traj)
      : cfg_(cfg), traj_(traj),
        next_sample_(cfg.subscriptions * cfg.clients_per_sub, 1) {
    clients_.resize(cfg.subscriptions);
    for (std::size_t s = 0; s < cfg.subscriptions; ++s) {
      clients_[s].reserve(cfg.clients_per_sub);
      for (std::size_t c = 0; c < cfg.clients_per_sub; ++c) {
        const TrajectoryPoint& p = traj[Walker(s, c)][0];
        clients_[s].push_back(
            Client{static_cast<ClientId>(c), p.position, p.partition});
      }
    }
  }

  const std::vector<Client>& clients(std::size_t s) const {
    return clients_[s];
  }

  /// Advances subscription `s` for tick `t`; returns the moved client.
  const Client& Advance(std::size_t s, std::size_t t) {
    const std::size_t c = MovedClient(cfg_, s, t);
    const std::size_t w = Walker(s, c);
    const std::size_t sample =
        std::min(next_sample_[w]++, traj_[w].size() - 1);
    const TrajectoryPoint& p = traj_[w][sample];
    clients_[s][c].position = p.position;
    clients_[s][c].partition = p.partition;
    return clients_[s][c];
  }

 private:
  std::size_t Walker(std::size_t s, std::size_t c) const {
    return s * cfg_.clients_per_sub + c;
  }

  const BenchConfig& cfg_;
  const std::vector<Trajectory>& traj_;
  std::vector<std::size_t> next_sample_;
  std::vector<std::vector<Client>> clients_;
};

/// Subscription phase: register cfg.subscriptions standing queries, then
/// drive the precomputed tick/mutation schedule through the push path.
PhaseResult RunSubscriptionPhase(const BenchConfig& cfg,
                                 const FacilitySets& sets,
                                 const std::vector<Trajectory>& traj,
                                 PartitionId toggle, double tolerance) {
  std::unique_ptr<IflsService> service = BuildService(sets);
  const ServiceMetrics before = service->Metrics();
  CrowdTimeline crowd(cfg, traj);

  // Latest pushed objective per subscription: the standing answer when the
  // monitor holds no cached answer (found=false solves push but don't cache).
  std::vector<double> last_push(cfg.subscriptions, 0.0);

  SubscriptionOptions sopts;
  sopts.tolerance = tolerance;
  std::vector<std::shared_ptr<Subscription>> subs;
  subs.reserve(cfg.subscriptions);
  for (std::size_t s = 0; s < cfg.subscriptions; ++s) {
    double* slot = &last_push[s];
    Result<std::shared_ptr<Subscription>> sub = service->Subscribe(
        crowd.clients(s), sopts,
        [slot](const SubscriptionPush& push) {
          *slot = push.result.objective;
        });
    IFLS_CHECK(sub.ok()) << sub.status().ToString();
    subs.push_back(std::move(*sub));
  }

  auto observe = [&](std::size_t s) {
    const Subscription::State state = subs[s]->Current();
    return state.has_answer ? state.objective : last_push[s];
  };

  PhaseResult out;
  out.objective.assign(cfg.subscriptions,
                       std::vector<double>(cfg.ticks + 1, 0.0));
  for (std::size_t s = 0; s < cfg.subscriptions; ++s) {
    out.objective[s][0] = observe(s);
  }

  // The initial solves above are registration cost (naive pays the same,
  // untimed); the clock covers maintenance only.
  Stopwatch watch;
  for (std::size_t t = 1; t <= cfg.ticks; ++t) {
    if (IsMutationTick(cfg, t)) {
      const Status applied = service->Mutate(MutationAtTick(cfg, toggle, t));
      IFLS_CHECK(applied.ok()) << applied.ToString();
    }
    for (std::size_t s = 0; s < cfg.subscriptions; ++s) {
      if (MovesAtTick(cfg, s, t)) {
        const Client& moved = crowd.Advance(s, t);
        const Status ticked = service->TickSubscription(
            subs[s]->id(), moved.id, moved.position, moved.partition);
        IFLS_CHECK(ticked.ok()) << ticked.ToString();
      }
      out.objective[s][t] = observe(s);
    }
  }
  out.seconds = watch.ElapsedSeconds();

  const ServiceMetrics after = service->Metrics();
  out.solves = after.subscription_solves - before.subscription_solves;
  out.skips = after.subscription_skips - before.subscription_skips;
  out.pushes = after.subscription_pushes - before.subscription_pushes;
  out.events = after.subscription_events - before.subscription_events;
  return out;
}

/// Naive baseline: no standing state — every subscription re-solved from
/// scratch on every tick against the service's current composed sets.
PhaseResult RunNaivePhase(const BenchConfig& cfg, const FacilitySets& sets,
                          const std::vector<Trajectory>& traj,
                          PartitionId toggle) {
  std::unique_ptr<IflsService> service = BuildService(sets);
  const EfficientOptions solver = service->options().solvers.minmax;
  CrowdTimeline crowd(cfg, traj);

  auto solve_one = [&](std::size_t s) {
    const std::shared_ptr<const ServingState> state = service->AcquireState();
    IflsContext ctx;
    ctx.oracle = &state->oracle();
    ctx.existing = state->overlay.effective_existing();
    ctx.candidates = state->overlay.effective_candidates();
    ctx.clients = crowd.clients(s);
    Result<IflsResult> result = SolveEfficient(ctx, solver);
    IFLS_CHECK(result.ok()) << result.status().ToString();
    return result->objective;
  };

  PhaseResult out;
  out.objective.assign(cfg.subscriptions,
                       std::vector<double>(cfg.ticks + 1, 0.0));
  for (std::size_t s = 0; s < cfg.subscriptions; ++s) {
    out.objective[s][0] = solve_one(s);  // registration cost, untimed
  }

  Stopwatch watch;
  for (std::size_t t = 1; t <= cfg.ticks; ++t) {
    if (IsMutationTick(cfg, t)) {
      const Status applied = service->Mutate(MutationAtTick(cfg, toggle, t));
      IFLS_CHECK(applied.ok()) << applied.ToString();
    }
    for (std::size_t s = 0; s < cfg.subscriptions; ++s) {
      if (MovesAtTick(cfg, s, t)) crowd.Advance(s, t);
      out.objective[s][t] = solve_one(s);
    }
  }
  out.seconds = watch.ElapsedSeconds();
  out.solves = cfg.subscriptions * cfg.ticks;
  return out;
}

int Main() {
  const BenchScale scale = BenchScale::FromEnv();
  const BenchConfig cfg = ConfigForScale(scale);

  Rng rng(4391);
  Result<Venue> venue = BuildPresetVenue(VenuePreset::kMelbourneCentral);
  IFLS_CHECK(venue.ok()) << venue.status().ToString();
  Result<FacilitySets> sets = SelectUniformFacilities(
      *venue, cfg.existing, cfg.candidates, &rng);
  IFLS_CHECK(sets.ok()) << sets.status().ToString();
  // The churned candidate: last of the selected set, removed/re-added on a
  // fixed schedule so overlay state genuinely drifts during the run.
  const PartitionId toggle = sets->candidates.back();

  Result<VipTree> tree = VipTree::Build(&*venue);
  IFLS_CHECK(tree.ok()) << tree.status().ToString();
  TrajectoryOptions topts;
  topts.ticks = cfg.ticks + 1;
  Result<std::vector<Trajectory>> traj = GenerateTrajectories(
      *tree, cfg.subscriptions * cfg.clients_per_sub, topts, &rng);
  IFLS_CHECK(traj.ok()) << traj.status().ToString();

  std::cout << "bench_subscription: " << cfg.subscriptions
            << " standing queries x " << cfg.ticks << " ticks, "
            << cfg.clients_per_sub << " clients each (scale " << scale.name
            << ")\n";

  const PhaseResult naive = RunNaivePhase(cfg, *sets, *traj, toggle);
  const PhaseResult exact =
      RunSubscriptionPhase(cfg, *sets, *traj, toggle, /*tolerance=*/0.0);
  const PhaseResult loose =
      RunSubscriptionPhase(cfg, *sets, *traj, toggle, /*tolerance=*/0.1);

  // Differential check, untimed: at tolerance 0 the standing answer's exact
  // objective must equal the from-scratch solve after every tick; at
  // tolerance 0.1 it must stay within the certified (1+tol) envelope.
  const double kEps = 1e-9;
  std::uint64_t exact_mismatches = 0;
  std::uint64_t loose_violations = 0;
  for (std::size_t s = 0; s < cfg.subscriptions; ++s) {
    for (std::size_t t = 0; t <= cfg.ticks; ++t) {
      const double ref = naive.objective[s][t];
      const double tol = kEps * std::max(1.0, std::abs(ref));
      if (std::abs(exact.objective[s][t] - ref) > tol) ++exact_mismatches;
      const double got = loose.objective[s][t];
      if (got < ref - tol || got > 1.1 * ref + tol) ++loose_violations;
    }
  }

  auto row = [&](const std::string& name, const PhaseResult& r) {
    return std::vector<std::string>{
        name, TextTable::Num(r.seconds),
        TextTable::Num(1e3 * r.seconds / static_cast<double>(cfg.ticks)),
        TextTable::Int(static_cast<long long>(r.solves)),
        TextTable::Int(static_cast<long long>(r.skips)),
        TextTable::Int(static_cast<long long>(r.pushes)),
        r.seconds > 0.0 ? TextTable::Num(naive.seconds / r.seconds) : "-"};
  };
  TextTable table({"policy", "seconds", "ms/tick", "solves", "skips",
                   "pushes", "speedup"});
  table.AddRow(row("naive re-solve", naive));
  table.AddRow(row("subscription tol=0", exact));
  table.AddRow(row("subscription tol=0.1", loose));
  table.Print(&std::cout);
  std::cout << "differential: " << exact_mismatches << " exact mismatches, "
            << loose_violations << " tolerance-envelope violations\n";

  const double speedup_exact = naive.seconds / exact.seconds;
  const double speedup_loose = naive.seconds / loose.seconds;
  const Status written = WriteBenchReport("subscription", [&](JsonWriter& w) {
    w.Field("scale", scale.name);
    w.Field("subscriptions", static_cast<std::int64_t>(cfg.subscriptions));
    w.Field("clients_per_sub",
            static_cast<std::int64_t>(cfg.clients_per_sub));
    w.Field("ticks", static_cast<std::int64_t>(cfg.ticks));
    w.Field("mutate_every", static_cast<std::int64_t>(cfg.mutate_every));
    w.Field("existing", static_cast<std::int64_t>(cfg.existing));
    w.Field("candidates", static_cast<std::int64_t>(cfg.candidates));
    w.Field("naive_seconds", naive.seconds);
    w.Field("naive_solves", static_cast<std::int64_t>(naive.solves));
    w.Field("push_seconds_tol0", exact.seconds);
    w.Field("push_solves_tol0", static_cast<std::int64_t>(exact.solves));
    w.Field("push_skips_tol0", static_cast<std::int64_t>(exact.skips));
    w.Field("push_pushes_tol0", static_cast<std::int64_t>(exact.pushes));
    w.Field("push_events_tol0", static_cast<std::int64_t>(exact.events));
    w.Field("push_seconds_tol01", loose.seconds);
    w.Field("push_solves_tol01", static_cast<std::int64_t>(loose.solves));
    w.Field("push_skips_tol01", static_cast<std::int64_t>(loose.skips));
    w.Field("push_pushes_tol01", static_cast<std::int64_t>(loose.pushes));
    w.Field("speedup_tol0", speedup_exact);
    w.Field("speedup_tol01", speedup_loose);
    w.Field("exact_mismatches", static_cast<std::int64_t>(exact_mismatches));
    w.Field("loose_violations", static_cast<std::int64_t>(loose_violations));
  });
  IFLS_CHECK(written.ok()) << written.ToString();
  std::cout << "wrote " << BenchReportPath("subscription") << "\n";

  if (exact_mismatches != 0 || loose_violations != 0) {
    std::cerr << "FAIL: standing answers diverged from from-scratch solves\n";
    return 1;
  }
  if (speedup_exact < 2.0) {
    // Smoke runs are too small for a stable ratio; everything larger must
    // clear the 2x bar the subscription design exists to deliver.
    std::cerr << (scale.name == "smoke" ? "WARN" : "FAIL")
              << ": push path speedup " << speedup_exact << " < 2x naive\n";
    if (scale.name != "smoke") return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ifls

int main() { return ifls::Main(); }
