// Network serving benchmark: a multi-threaded load generator drives >= 1k
// concurrent loopback connections against the epoll wire server, replaying
// queries whose answers were first computed in-process — every networked
// response is differentially checked (bit-identical found/answer/objective)
// against IflsService. Runs the identical load twice, with socket-layer
// batch coalescing on and off, so the report quantifies what the batching
// path buys at the same concurrency.
//
// Writes BENCH_network_throughput.json (shared schema, src/benchlib).
// Scale via IFLS_BENCH_SCALE=smoke|default|full.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "src/benchlib/harness.h"
#include "src/benchlib/json_report.h"
#include "src/common/rng.h"
#include "src/datasets/client_generator.h"
#include "src/datasets/facility_selector.h"
#include "src/datasets/presets.h"
#include "src/net/load_gen.h"
#include "src/net/server.h"
#include "src/service/service.h"

namespace ifls {
namespace {

struct BenchConfig {
  std::size_t num_connections = 1024;
  int load_threads = 8;
  int pipeline_depth = 2;
  std::size_t queries_per_connection = 16;
  std::size_t clients_per_query = 32;
  std::size_t distinct_queries = 24;  // expectation pool size
  int service_workers = 4;
  int dispatchers = 4;
};

BenchConfig ConfigForScale(const BenchScale& scale) {
  BenchConfig cfg;
  if (scale.name == "smoke") {
    cfg.num_connections = 128;
    cfg.queries_per_connection = 4;
  } else if (scale.name == "full") {
    cfg.num_connections = 2048;
    cfg.queries_per_connection = 32;
  }
  return cfg;
}

struct ConfigRun {
  std::string label;
  bool coalesce = false;
  LoadGenReport report;
  ServerMetrics server;
};

int Main() {
  const BenchScale scale = BenchScale::FromEnv();
  const BenchConfig cfg = ConfigForScale(scale);

  Result<Venue> venue = BuildPresetVenue(VenuePreset::kMelbourneCentral);
  IFLS_CHECK(venue.ok()) << venue.status().ToString();

  Rng rng(4242);
  const ParameterGrid grid =
      PresetParameterGrid(VenuePreset::kMelbourneCentral);
  Result<FacilitySets> sets = SelectUniformFacilities(
      *venue, grid.default_existing, grid.default_candidates, &rng);
  IFLS_CHECK(sets.ok()) << sets.status().ToString();

  ClientGeneratorOptions copts;
  const std::vector<Client> client_pool =
      GenerateClients(*venue, 8192, copts, &rng);

  ServiceOptions service_options;
  service_options.num_workers = cfg.service_workers;
  service_options.queue_capacity = 4096;
  Result<std::unique_ptr<IflsService>> built = IflsService::Create(
      std::move(*venue), sets->existing, sets->candidates, service_options);
  IFLS_CHECK(built.ok()) << built.status().ToString();
  std::shared_ptr<IflsService> service = std::move(*built);

  // Ground truth: a pool of distinct queries answered in-process first. The
  // load generator staggers connections across this pool so a coalesced
  // batch mixes objectives and client sets.
  const IflsObjective objectives[3] = {IflsObjective::kMinMax,
                                       IflsObjective::kMinDist,
                                       IflsObjective::kMaxSum};
  std::vector<NetExpectation> expectations;
  for (std::size_t q = 0; q < cfg.distinct_queries; ++q) {
    NetExpectation exp;
    exp.objective = objectives[q % 3];
    const std::size_t start =
        rng.NextBounded(client_pool.size() - cfg.clients_per_query);
    exp.clients.assign(
        client_pool.begin() + static_cast<std::ptrdiff_t>(start),
        client_pool.begin() +
            static_cast<std::ptrdiff_t>(start + cfg.clients_per_query));
    ServiceRequest request;
    request.objective = exp.objective;
    request.clients = exp.clients;
    const ServiceReply reply = service->Query(std::move(request));
    IFLS_CHECK(reply.status.ok()) << reply.status.ToString();
    exp.found = reply.result.found;
    exp.answer = reply.result.answer;
    exp.objective_value = reply.result.objective;
    expectations.push_back(std::move(exp));
  }

  std::vector<ConfigRun> runs;
  for (bool coalesce : {true, false}) {
    ServerOptions server_options;
    server_options.coalesce_batches = coalesce;
    server_options.num_dispatchers = cfg.dispatchers;
    server_options.dispatch_queue_capacity =
        cfg.num_connections * (static_cast<std::size_t>(cfg.pipeline_depth) + 1);
    Result<std::unique_ptr<IflsServer>> server =
        IflsServer::Create(service, server_options);
    IFLS_CHECK(server.ok()) << server.status().ToString();

    LoadGenOptions load;
    load.port = (*server)->port();
    load.num_connections = cfg.num_connections;
    load.num_threads = cfg.load_threads;
    load.pipeline_depth = cfg.pipeline_depth;
    load.queries_per_connection = cfg.queries_per_connection;
    Result<LoadGenReport> report = RunNetworkLoad(load, expectations);
    IFLS_CHECK(report.ok()) << report.status().ToString();

    ConfigRun run;
    run.label = coalesce ? "coalesce_on" : "coalesce_off";
    run.coalesce = coalesce;
    run.report = *report;
    run.server = (*server)->Metrics();
    (*server)->Stop();
    std::cerr << "[network] " << run.label << ": " << run.report.completed
              << " ok / " << run.report.errors << " err / "
              << run.report.mismatches << " mismatch across "
              << run.report.connections << " conns in "
              << run.report.wall_seconds << "s  (" << run.report.qps
              << " qps, p50 " << run.report.p50_seconds * 1e3 << "ms, p99 "
              << run.report.p99_seconds * 1e3 << "ms, p999 "
              << run.report.p999_seconds * 1e3 << "ms; batches "
              << run.server.batches << ", batched queries "
              << run.server.batched_queries << ")\n";
    runs.push_back(std::move(run));
  }
  service->Stop();

  const Status written = WriteBenchReport("network_throughput", [&](
                                              JsonWriter& w) {
    w.Field("scale", scale.name);
    w.Field("venue",
            std::string(VenuePresetName(VenuePreset::kMelbourneCentral)));
    w.Field("connections", cfg.num_connections);
    w.Field("load_threads", cfg.load_threads);
    w.Field("pipeline_depth", cfg.pipeline_depth);
    w.Field("queries_per_connection", cfg.queries_per_connection);
    w.Field("clients_per_query", cfg.clients_per_query);
    w.Field("service_workers", cfg.service_workers);
    w.Key("configs");
    w.BeginArray();
    for (const ConfigRun& run : runs) {
      w.BeginObject();
      w.Field("label", run.label);
      w.Field("coalesce_batches", run.coalesce);
      w.Field("completed", run.report.completed);
      w.Field("errors", run.report.errors);
      w.Field("mismatches", run.report.mismatches);
      w.Field("wall_seconds", run.report.wall_seconds);
      w.Field("throughput_qps", run.report.qps);
      w.Field("latency_p50_seconds", run.report.p50_seconds);
      w.Field("latency_p99_seconds", run.report.p99_seconds);
      w.Field("latency_p999_seconds", run.report.p999_seconds);
      w.Field("server_frames_received", run.server.frames_received);
      w.Field("server_batches", run.server.batches);
      w.Field("server_batched_queries", run.server.batched_queries);
      w.Field("server_rejected", run.server.rejected);
      w.EndObject();
    }
    w.EndArray();
  });
  IFLS_CHECK(written.ok()) << written.ToString();
  std::cerr << "[network] wrote " << BenchReportPath("network_throughput")
            << "\n";

  int rc = 0;
  for (const ConfigRun& run : runs) {
    if (run.report.mismatches != 0) {
      std::cerr << "[network] FAILURE: " << run.label << " had "
                << run.report.mismatches << " differential mismatches\n";
      rc = 1;
    }
    const std::uint64_t expected_total =
        cfg.num_connections * cfg.queries_per_connection;
    if (run.report.completed + run.report.errors != expected_total) {
      std::cerr << "[network] FAILURE: " << run.label << " accounted for "
                << (run.report.completed + run.report.errors) << " of "
                << expected_total << " queries\n";
      rc = 1;
    }
  }
  return rc;
}

}  // namespace
}  // namespace ifls

int main() { return ifls::Main(); }
