// Experiment E6 — paper Table 2: prints the resolved parameter grid for the
// four venues (synthetic setting) and the five category splits (real
// setting), together with the rebuilt venues' statistics vs. the paper's
// published numbers. This is the "settings" table rather than a timing run.

#include <cstdio>
#include <iostream>

#include "src/benchlib/table.h"
#include "src/common/stopwatch.h"
#include "src/datasets/presets.h"
#include "src/datasets/venue_stats.h"
#include "src/datasets/workload.h"
#include "src/index/vip_tree.h"

int main() {
  using namespace ifls;

  std::printf("# E6 / Table 2: parameter settings and venue statistics\n\n");

  std::printf("-- venue statistics (rebuilt vs paper) --\n");
  {
    struct Published {
      VenuePreset preset;
      int rooms, doors, levels;
    } published[] = {
        {VenuePreset::kMelbourneCentral, 298, 299, 7},
        {VenuePreset::kChadstone, 679, 678, 4},
        {VenuePreset::kCopenhagenAirport, 76, 118, 1},
        {VenuePreset::kMenziesBuilding, 1344, 1375, 16},
    };
    TextTable table({"venue", "rooms", "paper rooms", "doors", "paper doors",
                     "levels", "index", "index MiB", "build"});
    for (const auto& p : published) {
      Result<Venue> venue = BuildPresetVenue(p.preset);
      if (!venue.ok()) {
        std::fprintf(stderr, "%s\n", venue.status().ToString().c_str());
        return 1;
      }
      Stopwatch sw;
      Result<VipTree> tree = VipTree::Build(&venue.value());
      const double build_s = sw.ElapsedSeconds();
      if (!tree.ok()) {
        std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
        return 1;
      }
      table.AddRow(
          {VenuePresetName(p.preset),
           TextTable::Int(static_cast<long long>(venue->num_rooms())),
           TextTable::Int(p.rooms),
           TextTable::Int(static_cast<long long>(venue->num_doors())),
           TextTable::Int(p.doors), TextTable::Int(venue->num_levels()),
           std::to_string(tree->num_nodes()) + " nodes/h" +
               std::to_string(tree->height()),
           TextTable::Num(static_cast<double>(tree->MemoryFootprintBytes()) /
                          (1 << 20)),
           TextTable::Num(build_s) + "s"});
    }
    table.Print(&std::cout);
  }

  std::printf("\n-- venue topology / metric statistics --\n");
  for (VenuePreset preset : AllVenuePresets()) {
    Result<Venue> venue = BuildPresetVenue(preset);
    if (!venue.ok()) return 1;
    Result<VipTree> tree = VipTree::Build(&venue.value());
    if (!tree.ok()) return 1;
    std::printf("%-4s %s\n", VenuePresetName(preset),
                ComputeVenueStats(*tree).ToString().c_str());
  }

  std::printf("\n-- synthetic setting parameter ranges (defaults = mean) --\n");
  {
    TextTable table({"venue", "|Fe| range", "|Fe| default", "|Fn| range",
                     "|Fn| default"});
    for (VenuePreset preset : AllVenuePresets()) {
      const ParameterGrid grid = PresetParameterGrid(preset);
      auto range = [](const std::vector<std::size_t>& v) {
        return "[" + std::to_string(v.front()) + ", " +
               std::to_string(v.back()) + "] x" + std::to_string(v.size());
      };
      table.AddRow({VenuePresetName(preset), range(grid.existing_sizes),
                    TextTable::Int(static_cast<long long>(
                        grid.default_existing)),
                    range(grid.candidate_sizes),
                    TextTable::Int(static_cast<long long>(
                        grid.default_candidates))});
    }
    table.Print(&std::cout);
  }

  std::printf("\n-- real setting category splits (MC) --\n");
  {
    Result<Venue> venue = BuildPresetVenue(VenuePreset::kMelbourneCentral);
    if (!venue.ok() ||
        !AssignMelbourneCentralCategories(&venue.value()).ok()) {
      std::fprintf(stderr, "failed to build MC categories\n");
      return 1;
    }
    TextTable table({"Fe category", "|Fe|", "|Fn|"});
    for (const McCategory& c : MelbourneCentralCategories()) {
      if (c.name == "general retail") continue;  // not a paper experiment
      Result<FacilitySets> sets = SelectCategoryFacilities(*venue, c.name);
      if (!sets.ok()) {
        std::fprintf(stderr, "%s\n", sets.status().ToString().c_str());
        return 1;
      }
      table.AddRow({c.name,
                    TextTable::Int(static_cast<long long>(
                        sets->existing.size())),
                    TextTable::Int(static_cast<long long>(
                        sets->candidates.size()))});
    }
    table.Print(&std::cout);
  }

  std::printf(
      "\nclient sizes: {1k, 5k, 10k, 15k, 20k} (default 10k); "
      "normal distribution mu=0, sigma in {0.125, 0.25, 0.5, 1, 2} "
      "(default 1)\n");
  return 0;
}
