// Solver throughput before/after the min-plus kernel + sharded-cache work,
// measured at three layers:
//
//   1. kernel microbench — the blocked min-plus kernels timed under forced
//      scalar and best-supported-tier dispatch on identical inputs (the
//      headline single-thread kernel speedup; bench_kernel_micro sweeps
//      every tier of the ladder);
//   2. cache microbench — the legacy mutex + unordered_map door memo
//      (reconstructed here) vs the sharded seqlock ConcurrentDoorCache,
//      mixed lookup/insert at 1 and 8 threads;
//   3. solver throughput — per-objective queries/sec through
//      BatchQueryEngine at 1 and 8 threads, "before" (scalar kernels, door
//      cache off) vs "after" (SIMD kernels, sharded door cache on), with
//      every after-answer differential-checked bit-identical to before.
//
// Writes BENCH_solver_throughput.json (shared schema, src/benchlib).
// Scale via IFLS_BENCH_SCALE=smoke|default|full.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/benchlib/harness.h"
#include "src/benchlib/json_report.h"
#include "src/benchlib/table.h"
#include "src/common/concurrent_cache.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/core/batch_engine.h"
#include "src/index/minplus_kernels.h"

namespace ifls {
namespace {

/// Sink that keeps the optimizer from deleting the timed kernel calls.
volatile double g_sink = 0.0;

// ---------------------------------------------------------------------------
// Layer 1: kernel microbench.

struct KernelInstance {
  std::vector<double> matrix;
  std::size_t stride = 0;
  std::vector<std::int32_t> rows;
  std::vector<std::int32_t> cols;
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> out;
};

KernelInstance MakeKernelInstance(Rng* rng, std::size_t dim, std::size_t n) {
  KernelInstance inst;
  inst.stride = dim;
  inst.matrix.resize(dim * dim);
  for (double& v : inst.matrix) v = rng->NextUniform(0.0, 1000.0);
  inst.rows.resize(n);
  inst.cols.resize(n);
  for (auto& r : inst.rows) {
    r = static_cast<std::int32_t>(rng->NextInt(0, static_cast<int>(dim) - 1));
  }
  for (auto& c : inst.cols) {
    c = static_cast<std::int32_t>(rng->NextInt(0, static_cast<int>(dim) - 1));
  }
  inst.a.resize(n);
  inst.b.resize(n);
  for (double& v : inst.a) v = rng->NextUniform(0.0, 500.0);
  for (double& v : inst.b) v = rng->NextUniform(0.0, 500.0);
  inst.out.resize(n);
  return inst;
}

/// ns per call of `fn`, averaged over `iters` calls after one warmup call.
template <typename Fn>
double TimeNs(int iters, Fn&& fn) {
  fn();
  Stopwatch watch;
  for (int i = 0; i < iters; ++i) fn();
  return watch.ElapsedSeconds() * 1e9 / iters;
}

struct KernelRow {
  std::string name;
  double scalar_ns = 0.0;
  double simd_ns = 0.0;
  double speedup = 0.0;
};

/// Times one kernel pinned to the scalar reference and to the best
/// supported SIMD tier on the same instances. (bench_kernel_micro sweeps
/// the full tier ladder; this report keeps the headline before/after pair.)
template <typename Fn>
KernelRow BenchKernel(const std::string& name, int iters, Fn&& fn) {
  KernelRow row;
  row.name = name;
  IFLS_CHECK_OK(kernels::PinKernelTier(kernels::KernelTier::kScalar));
  row.scalar_ns = TimeNs(iters, fn);
  IFLS_CHECK_OK(kernels::PinKernelTier(kernels::BestKernelTier()));
  row.simd_ns = TimeNs(iters, fn);
  kernels::ResetKernelTierAuto();
  row.speedup = row.simd_ns > 0.0 ? row.scalar_ns / row.simd_ns : 0.0;
  return row;
}

std::vector<KernelRow> RunKernelMicrobench(const BenchScale& scale) {
  // Shapes mirror the hot callers: DoorToDoor joins over 24-48 access
  // doors, leaf compositions over similar fan-outs, candidate-evaluation
  // gathers over full partition door lists.
  const int iters = scale.name == "smoke" ? 20000 : 200000;
  Rng rng(42);
  constexpr int kPool = 8;  // rotate instances so no single layout is hot
  std::vector<KernelInstance> pool;
  for (int i = 0; i < kPool; ++i) pool.push_back(MakeKernelInstance(&rng, 64, 32));

  std::vector<KernelRow> rows;
  int which = 0;
  rows.push_back(BenchKernel("join_32x32", iters, [&] {
    KernelInstance& in = pool[static_cast<std::size_t>(which++ % kPool)];
    g_sink = g_sink + kernels::MinPlusJoin(
                          in.a.data(), in.rows.data(), in.rows.size(),
                          in.b.data(), in.cols.data(), in.cols.size(),
                          in.matrix.data(), in.stride);
  }));
  rows.push_back(BenchKernel("compose_32x32", iters, [&] {
    KernelInstance& in = pool[static_cast<std::size_t>(which++ % kPool)];
    kernels::MinPlusCompose(in.a.data(), in.rows.data(), in.rows.size(),
                            in.cols.data(), in.cols.size(), in.matrix.data(),
                            in.stride, in.out.data());
    g_sink = g_sink + in.out[0];
  }));
  rows.push_back(BenchKernel("gather_add_32", iters * 8, [&] {
    KernelInstance& in = pool[static_cast<std::size_t>(which++ % kPool)];
    g_sink = g_sink + kernels::MinPlusGatherAdd(1.0, in.matrix.data(),
                                                in.cols.data(), in.b.data(),
                                                in.cols.size());
  }));
  rows.push_back(BenchKernel("pairwise_32", iters * 8, [&] {
    KernelInstance& in = pool[static_cast<std::size_t>(which++ % kPool)];
    g_sink = g_sink + kernels::MinPlusPairwise(in.a.data(), in.b.data(),
                                               in.a.size());
  }));
  return rows;
}

// ---------------------------------------------------------------------------
// Layer 2: cache microbench — the pre-refactor locked memo vs the sharded
// seqlock cache, identical mixed workload.

/// Faithful reconstruction of the door-distance memo this PR replaced: one
/// mutex in front of an unordered_map, every hit and miss serialized.
class MutexMapCache {
 public:
  bool Lookup(std::uint64_t key, double* out) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    *out = it->second;
    return true;
  }
  void Insert(std::uint64_t key, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    map_.emplace(key, value);
  }

 private:
  mutable std::mutex mu_;
  mutable std::unordered_map<std::uint64_t, double> map_;
};

/// Million mixed ops/sec over `threads` threads (75% lookup, 25% insert,
/// 16k-key universe).
template <typename Cache>
double CacheMops(Cache* cache, int threads, int ops_per_thread) {
  Stopwatch watch;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([cache, t, ops_per_thread] {
      std::uint64_t x = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(t + 1);
      double local = 0.0;
      for (int op = 0; op < ops_per_thread; ++op) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t key = (x >> 32) & 0x3fff;
        if (x % 4 == 0) {
          cache->Insert(key, static_cast<double>(key) * 0.5);
        } else {
          double out;
          if (cache->Lookup(key, &out)) local += out;
        }
      }
      g_sink = g_sink + local;
    });
  }
  for (std::thread& w : workers) w.join();
  const double seconds = watch.ElapsedSeconds();
  const double total_ops = static_cast<double>(threads) * ops_per_thread;
  return seconds > 0.0 ? total_ops / seconds / 1e6 : 0.0;
}

struct CacheRow {
  int threads = 0;
  double mutex_mops = 0.0;
  double sharded_mops = 0.0;
  double speedup = 0.0;
};

std::vector<CacheRow> RunCacheMicrobench(const BenchScale& scale) {
  const int ops = scale.name == "smoke" ? 100000 : 1000000;
  std::vector<CacheRow> rows;
  for (int threads : {1, 8}) {
    CacheRow row;
    row.threads = threads;
    MutexMapCache locked;
    row.mutex_mops = CacheMops(&locked, threads, ops);
    ConcurrentDoorCache sharded(1 << 15);
    row.sharded_mops = CacheMops(&sharded, threads, ops);
    row.speedup =
        row.mutex_mops > 0.0 ? row.sharded_mops / row.mutex_mops : 0.0;
    rows.push_back(row);
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Layer 3: end-to-end solver throughput.

struct SolverRow {
  std::string objective;
  int threads = 0;
  double before_qps = 0.0;
  double after_qps = 0.0;
  double speedup = 0.0;
};

const char* ConfigName(bool after) { return after ? "after" : "before"; }

int Main() {
  const BenchScale scale = BenchScale::FromEnv();
  std::printf(
      "# solver throughput before/after kernels+cache (scale=%s, "
      "simd=%s, hardware threads=%u)\n\n",
      scale.name.c_str(), kernels::KernelTierName(kernels::BestKernelTier()),
      std::thread::hardware_concurrency());

  // --- Layer 1.
  const std::vector<KernelRow> kernel_rows = RunKernelMicrobench(scale);
  TextTable ktable({"kernel", "scalar ns/op", "best ns/op", "speedup"});
  double min_speedup = kernel_rows.empty() ? 0.0 : kernel_rows[0].speedup;
  double log_sum = 0.0;
  for (const KernelRow& row : kernel_rows) {
    ktable.AddRow({row.name, TextTable::Num(row.scalar_ns),
                   TextTable::Num(row.simd_ns), TextTable::Num(row.speedup)});
    min_speedup = std::min(min_speedup, row.speedup);
    log_sum += std::log(row.speedup);
  }
  const double geomean_speedup =
      kernel_rows.empty()
          ? 0.0
          : std::exp(log_sum / static_cast<double>(kernel_rows.size()));
  ktable.Print(&std::cout);
  std::printf("\n");

  // --- Layer 2.
  const std::vector<CacheRow> cache_rows = RunCacheMicrobench(scale);
  TextTable ctable({"threads", "mutex memo Mops/s", "sharded Mops/s",
                    "sharded/mutex"});
  for (const CacheRow& row : cache_rows) {
    ctable.AddRow({TextTable::Int(row.threads), TextTable::Num(row.mutex_mops),
                   TextTable::Num(row.sharded_mops),
                   TextTable::Num(row.speedup)});
  }
  ctable.Print(&std::cout);
  std::printf("\n");

  // --- Layer 3.
  VenueCache venue_cache;
  const Venue& venue = venue_cache.venue(VenuePreset::kMelbourneCentral, false);
  const ParameterGrid grid =
      PresetParameterGrid(VenuePreset::kMelbourneCentral);

  // "Before" tree: door cache off (the build default — paper fairness).
  // "After" tree: the sharded door cache serving repeated DoorToDoor pairs.
  Result<VipTree> before_tree = VipTree::Build(&venue);
  IFLS_CHECK(before_tree.ok()) << before_tree.status().ToString();
  VipTreeOptions cached_opts;
  cached_opts.enable_door_distance_cache = true;
  Result<VipTree> after_tree = VipTree::Build(&venue, cached_opts);
  IFLS_CHECK(after_tree.ok()) << after_tree.status().ToString();

  WorkloadSpec spec;
  spec.preset = VenuePreset::kMelbourneCentral;
  spec.num_existing = grid.default_existing;
  spec.num_candidates = grid.default_candidates;
  spec.num_clients = scale.Clients(kDefaultClients);

  const IflsObjective objectives[3] = {IflsObjective::kMinMax,
                                       IflsObjective::kMinDist,
                                       IflsObjective::kMaxSum};
  const int workloads_per_objective = 8 * scale.repeats;

  // Per objective: one batch against each tree (identical workloads).
  std::vector<SolverRow> solver_rows;
  bool all_identical = true;
  for (const IflsObjective objective : objectives) {
    std::vector<BatchQuery> before_batch;
    std::vector<BatchQuery> after_batch;
    for (int r = 0; r < workloads_per_objective; ++r) {
      Rng rng(100 + static_cast<std::uint64_t>(r));
      IflsContext ctx;
      Result<FacilitySets> sets = MakeFacilities(venue, spec, &rng);
      IFLS_CHECK(sets.ok()) << sets.status().ToString();
      ctx.existing = sets->existing;
      ctx.candidates = sets->candidates;
      ctx.clients = MakeClients(venue, spec, &rng);
      ctx.oracle = &*before_tree;
      before_batch.push_back(BatchQuery{objective, ctx});
      ctx.oracle = &*after_tree;
      after_batch.push_back(BatchQuery{objective, std::move(ctx)});
    }

    // Warm the after-tree's cache once (steady-state serving is the target
    // of the cache; the cold fill is measured implicitly by layer 2).
    {
      BatchQueryEngine warm{BatchEngineOptions{}};
      IFLS_CHECK_OK(kernels::PinKernelTier(kernels::BestKernelTier()));
      (void)warm.RunSequential(after_batch);
      kernels::ResetKernelTierAuto();
    }

    std::vector<BatchQueryOutcome> reference;  // before-config answers, 1t
    for (const int threads : {1, 8}) {
      SolverRow row;
      row.objective = IflsObjectiveName(objective);
      row.threads = threads;
      for (const bool after : {false, true}) {
        BatchEngineOptions opts;
        opts.num_threads = threads;
        BatchQueryEngine engine(opts);
        IFLS_CHECK_OK(kernels::PinKernelTier(after
                                                 ? kernels::BestKernelTier()
                                                 : kernels::KernelTier::kScalar));
        const std::vector<BatchQueryOutcome> outcomes =
            engine.Run(after ? after_batch : before_batch);
        kernels::ResetKernelTierAuto();
        const double qps = engine.last_report().queries_per_second;
        if (after) {
          row.after_qps = qps;
        } else {
          row.before_qps = qps;
        }
        if (threads == 1 && !after) reference = outcomes;
        // Differential check: every config must reproduce the before/1t
        // answers bit for bit.
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
          const IflsResult& got = outcomes[i].result;
          const IflsResult& want = reference[i].result;
          if (got.found != want.found || got.answer != want.answer ||
              got.objective != want.objective) {
            all_identical = false;
            std::fprintf(stderr,
                         "FATAL: %s/%dt/%s diverged from before/1t on "
                         "query %zu\n",
                         row.objective.c_str(), threads, ConfigName(after), i);
          }
        }
      }
      row.speedup = row.before_qps > 0.0 ? row.after_qps / row.before_qps : 0.0;
      solver_rows.push_back(row);
    }
  }

  TextTable stable({"objective", "threads", "before q/s", "after q/s",
                    "after/before"});
  for (const SolverRow& row : solver_rows) {
    stable.AddRow({row.objective, TextTable::Int(row.threads),
                   TextTable::Num(row.before_qps), TextTable::Num(row.after_qps),
                   TextTable::Num(row.speedup)});
  }
  stable.Print(&std::cout);

  const Status written = WriteBenchReport(
      "solver_throughput", [&](JsonWriter& w) {
        w.Field("scale", scale.name);
        w.Field("simd_available",
                kernels::BestKernelTier() != kernels::KernelTier::kScalar);
        w.Field("best_tier",
                kernels::KernelTierName(kernels::BestKernelTier()));
        w.Field("venue", std::string(
                             VenuePresetName(VenuePreset::kMelbourneCentral)));
        w.Field("before_config", "scalar kernels, door cache off");
        w.Field("after_config", "best-tier kernels, sharded door cache");
        w.Key("kernel_microbench");
        w.BeginArray();
        for (const KernelRow& row : kernel_rows) {
          w.BeginObject();
          w.Field("kernel", row.name);
          w.Field("scalar_ns_per_op", row.scalar_ns);
          w.Field("simd_ns_per_op", row.simd_ns);
          w.Field("speedup", row.speedup);
          w.EndObject();
        }
        w.EndArray();
        w.Field("kernel_speedup_min", min_speedup);
        w.Field("kernel_speedup_geomean", geomean_speedup);
        w.Key("cache_microbench");
        w.BeginArray();
        for (const CacheRow& row : cache_rows) {
          w.BeginObject();
          w.Field("threads", row.threads);
          w.Field("mutex_memo_mops", row.mutex_mops);
          w.Field("sharded_cache_mops", row.sharded_mops);
          w.Field("speedup", row.speedup);
          w.EndObject();
        }
        w.EndArray();
        w.Key("solver_throughput");
        w.BeginArray();
        for (const SolverRow& row : solver_rows) {
          w.BeginObject();
          w.Field("objective", row.objective);
          w.Field("threads", row.threads);
          w.Field("before_qps", row.before_qps);
          w.Field("after_qps", row.after_qps);
          w.Field("speedup", row.speedup);
          w.EndObject();
        }
        w.EndArray();
        w.Field("answers_bit_identical", all_identical);
      });
  IFLS_CHECK(written.ok()) << written.ToString();
  std::cerr << "wrote " << BenchReportPath("solver_throughput") << "\n";

  if (!all_identical) return 1;
  return 0;
}

}  // namespace
}  // namespace ifls

int main() { return ifls::Main(); }
