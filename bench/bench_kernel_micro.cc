// Per-kernel microbench over the full ISA tier ladder: every min-plus
// kernel is timed pinned to each tier this binary compiled in and this CPU
// supports (scalar / sse4 / avx2 / avx512), across a size sweep that
// straddles the 2/4/8-lane block boundaries. Reports ns/op curves and
// speedup-vs-scalar per (kernel, size, tier), plus two summary gates:
//
//   * bit_identical — every tier reproduced the scalar reference exactly
//     on randomized instances (exit 1 on violation; this is the kernel
//     contract, never a tolerance);
//   * best_not_slower_than_avx2 — the choose-best tier's geomean over the
//     sweep is within 10% of the AVX2 tier's (the PR 4 baseline), so a
//     ladder extension can't silently regress the headline speedup. Noisy
//     runners make a hard perf exit flaky, so this one reports + warns.
//
// Writes BENCH_kernel_micro.json (shared schema, src/benchlib).
// Scale via IFLS_BENCH_SCALE=smoke|default|full.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "src/benchlib/harness.h"
#include "src/benchlib/json_report.h"
#include "src/benchlib/table.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/index/minplus_kernels.h"

namespace ifls {
namespace {

volatile double g_sink = 0.0;

struct KernelInstance {
  std::vector<double> matrix;
  std::size_t stride = 0;
  std::vector<std::int32_t> rows;
  std::vector<std::int32_t> cols;
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> out;
};

KernelInstance MakeKernelInstance(Rng* rng, std::size_t dim, std::size_t n) {
  KernelInstance inst;
  inst.stride = dim;
  inst.matrix.resize(dim * dim);
  for (double& v : inst.matrix) v = rng->NextUniform(0.0, 1000.0);
  inst.rows.resize(n);
  inst.cols.resize(n);
  for (auto& r : inst.rows) {
    r = static_cast<std::int32_t>(rng->NextInt(0, static_cast<int>(dim) - 1));
  }
  for (auto& c : inst.cols) {
    c = static_cast<std::int32_t>(rng->NextInt(0, static_cast<int>(dim) - 1));
  }
  inst.a.resize(n);
  inst.b.resize(n);
  for (double& v : inst.a) v = rng->NextUniform(0.0, 500.0);
  for (double& v : inst.b) v = rng->NextUniform(0.0, 500.0);
  inst.out.resize(std::max<std::size_t>(n, 1));
  return inst;
}

/// ns per call of `fn`: best (minimum) of `reps` timed blocks of `iters`
/// calls each, after one warmup call. The min discards scheduler blips —
/// a single preempted block otherwise poisons a whole curve point.
template <typename Fn>
double TimeNs(int reps, int iters, Fn&& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    for (int i = 0; i < iters; ++i) fn();
    best = std::min(best, watch.ElapsedSeconds() * 1e9 / iters);
  }
  return best;
}

std::vector<kernels::KernelTier> SupportedTiers() {
  std::vector<kernels::KernelTier> tiers;
  for (int t = 0; t < kernels::kNumKernelTiers; ++t) {
    const auto tier = static_cast<kernels::KernelTier>(t);
    if (kernels::KernelTierSupported(tier)) tiers.push_back(tier);
  }
  return tiers;
}

/// One (kernel, size) point: ns/op per measured tier, keyed by tier name.
struct CurvePoint {
  std::string kernel;
  std::size_t size = 0;
  std::map<std::string, double> ns_per_op;  // tier name -> ns
};

/// The seven kernels, each as a runner over a rotating instance pool. The
/// runner must consume its result through g_sink so no timed call is dead.
struct KernelCase {
  const char* name;
  /// Runs the kernel once on pool[which % pool.size()].
  void (*run)(std::vector<KernelInstance>& pool, int which);
  /// Returns a comparable fingerprint for the differential check (the full
  /// result, not a hash — EXPECT-style exact equality on every lane).
  std::vector<double> (*probe)(KernelInstance& in);
};

const KernelCase kKernelCases[] = {
    {"join",
     [](std::vector<KernelInstance>& pool, int which) {
       KernelInstance& in = pool[static_cast<std::size_t>(which) % pool.size()];
       g_sink = g_sink + kernels::MinPlusJoin(
                             in.a.data(), in.rows.data(), in.rows.size(),
                             in.b.data(), in.cols.data(), in.cols.size(),
                             in.matrix.data(), in.stride);
     },
     [](KernelInstance& in) {
       return std::vector<double>{kernels::MinPlusJoin(
           in.a.data(), in.rows.data(), in.rows.size(), in.b.data(),
           in.cols.data(), in.cols.size(), in.matrix.data(), in.stride)};
     }},
    {"compose",
     [](std::vector<KernelInstance>& pool, int which) {
       KernelInstance& in = pool[static_cast<std::size_t>(which) % pool.size()];
       kernels::MinPlusCompose(in.a.data(), in.rows.data(), in.rows.size(),
                               in.cols.data(), in.cols.size(),
                               in.matrix.data(), in.stride, in.out.data());
       g_sink = g_sink + in.out[0];
     },
     [](KernelInstance& in) {
       std::vector<double> out(in.cols.size(), -1.0);
       kernels::MinPlusCompose(in.a.data(), in.rows.data(), in.rows.size(),
                               in.cols.data(), in.cols.size(),
                               in.matrix.data(), in.stride, out.data());
       return out;
     }},
    {"gather",
     [](std::vector<KernelInstance>& pool, int which) {
       KernelInstance& in = pool[static_cast<std::size_t>(which) % pool.size()];
       g_sink = g_sink + kernels::MinPlusGather(1.0, in.matrix.data(),
                                                in.cols.data(),
                                                in.cols.size());
     },
     [](KernelInstance& in) {
       return std::vector<double>{kernels::MinPlusGather(
           1.0, in.matrix.data(), in.cols.data(), in.cols.size())};
     }},
    {"gather_add",
     [](std::vector<KernelInstance>& pool, int which) {
       KernelInstance& in = pool[static_cast<std::size_t>(which) % pool.size()];
       g_sink = g_sink + kernels::MinPlusGatherAdd(1.0, in.matrix.data(),
                                                   in.cols.data(),
                                                   in.b.data(),
                                                   in.cols.size());
     },
     [](KernelInstance& in) {
       return std::vector<double>{
           kernels::MinPlusGatherAdd(1.0, in.matrix.data(), in.cols.data(),
                                     in.b.data(), in.cols.size())};
     }},
    {"pairwise",
     [](std::vector<KernelInstance>& pool, int which) {
       KernelInstance& in = pool[static_cast<std::size_t>(which) % pool.size()];
       g_sink = g_sink + kernels::MinPlusPairwise(in.a.data(), in.b.data(),
                                                  in.a.size());
     },
     [](KernelInstance& in) {
       return std::vector<double>{
           kernels::MinPlusPairwise(in.a.data(), in.b.data(), in.a.size())};
     }},
    {"argmin",
     [](std::vector<KernelInstance>& pool, int which) {
       KernelInstance& in = pool[static_cast<std::size_t>(which) % pool.size()];
       g_sink = g_sink + static_cast<double>(kernels::MinPlusArgmin(
                             1.0, in.a.data(), in.a.size()));
     },
     [](KernelInstance& in) {
       return std::vector<double>{static_cast<double>(
           kernels::MinPlusArgmin(1.0, in.a.data(), in.a.size()))};
     }},
    {"gather_cells",
     [](std::vector<KernelInstance>& pool, int which) {
       KernelInstance& in = pool[static_cast<std::size_t>(which) % pool.size()];
       kernels::GatherCells(in.matrix.data(), in.cols.data(), in.cols.size(),
                            in.out.data());
       g_sink = g_sink + in.out[0];
     },
     [](KernelInstance& in) {
       std::vector<double> out(in.cols.size(), -1.0);
       kernels::GatherCells(in.matrix.data(), in.cols.data(), in.cols.size(),
                            out.data());
       return out;
     }},
};

int Main() {
  const BenchScale scale = BenchScale::FromEnv();
  const std::vector<kernels::KernelTier> tiers = SupportedTiers();
  const kernels::KernelTier best = kernels::BestKernelTier();

  std::string tier_list;
  for (const kernels::KernelTier t : tiers) {
    if (!tier_list.empty()) tier_list += ", ";
    tier_list += kernels::KernelTierName(t);
  }
  std::printf("# per-kernel tier microbench (scale=%s, tiers: %s, best=%s)\n\n",
              scale.name.c_str(), tier_list.c_str(),
              kernels::KernelTierName(best));

  // Sizes straddle every lane-block boundary of the ladder; smoke keeps two
  // points so the CI job stays a smoke test.
  const std::vector<std::size_t> sizes =
      scale.name == "smoke"
          ? std::vector<std::size_t>{8, 32}
          : std::vector<std::size_t>{2, 4, 7, 8, 16, 32, 33, 64, 128};
  const int base_iters = scale.name == "smoke"
                             ? 5000
                             : (scale.name == "full" ? 200000 : 50000);
  const int reps = scale.name == "smoke" ? 2 : 3;

  // --- Bit-identity differential across the ladder (randomized instances,
  // exact equality). Cheap, and it guards the numbers below: a tier that
  // cheats on the contract must not get to advertise a speedup.
  bool bit_identical = true;
  {
    Rng rng(20260808);
    for (const std::size_t n : sizes) {
      for (int trial = 0; trial < 8; ++trial) {
        KernelInstance in = MakeKernelInstance(&rng, 256, n);
        for (const KernelCase& kc : kKernelCases) {
          IFLS_CHECK_OK(kernels::PinKernelTier(kernels::KernelTier::kScalar));
          const std::vector<double> want = kc.probe(in);
          for (const kernels::KernelTier tier : tiers) {
            IFLS_CHECK_OK(kernels::PinKernelTier(tier));
            if (kc.probe(in) != want) {
              bit_identical = false;
              std::fprintf(stderr, "FATAL: %s diverged from scalar at n=%zu "
                                   "under tier %s\n",
                           kc.name, n, kernels::KernelTierName(tier));
            }
          }
        }
      }
    }
  }

  // --- The ns/op sweep: pool of rotated instances per size so no single
  // index layout stays hot in L1.
  std::vector<CurvePoint> curves;
  Rng rng(42);
  for (const KernelCase& kc : kKernelCases) {
    for (const std::size_t n : sizes) {
      CurvePoint point;
      point.kernel = kc.name;
      point.size = n;
      constexpr int kPool = 8;
      std::vector<KernelInstance> pool;
      for (int i = 0; i < kPool; ++i) {
        pool.push_back(MakeKernelInstance(&rng, 256, n));
      }
      // Keep total touched elements roughly constant across sizes.
      const int iters = std::max(
          1000, static_cast<int>(base_iters / std::max<std::size_t>(n / 8, 1)));
      for (const kernels::KernelTier tier : tiers) {
        IFLS_CHECK_OK(kernels::PinKernelTier(tier));
        int which = 0;
        point.ns_per_op[kernels::KernelTierName(tier)] =
            TimeNs(reps, iters, [&] { kc.run(pool, which++); });
      }
      curves.push_back(point);
    }
  }
  kernels::ResetKernelTierAuto();

  // --- Console table + the best-vs-avx2 regression gate.
  std::vector<std::string> header = {"kernel", "n"};
  for (const kernels::KernelTier t : tiers) {
    header.push_back(std::string(kernels::KernelTierName(t)) + " ns");
  }
  header.push_back("best speedup");
  TextTable table(header);
  double best_log_sum = 0.0, avx2_log_sum = 0.0;
  int avx2_points = 0;
  const std::string best_name = kernels::KernelTierName(best);
  for (const CurvePoint& p : curves) {
    const double scalar_ns = p.ns_per_op.at("scalar");
    const double best_ns = p.ns_per_op.at(best_name);
    std::vector<std::string> row = {p.kernel, TextTable::Int(
                                                  static_cast<int>(p.size))};
    for (const kernels::KernelTier t : tiers) {
      row.push_back(TextTable::Num(p.ns_per_op.at(kernels::KernelTierName(t))));
    }
    row.push_back(TextTable::Num(best_ns > 0.0 ? scalar_ns / best_ns : 0.0));
    table.AddRow(row);
    if (best_ns > 0.0) best_log_sum += std::log(scalar_ns / best_ns);
    const auto avx2_it = p.ns_per_op.find("avx2");
    if (avx2_it != p.ns_per_op.end() && avx2_it->second > 0.0) {
      avx2_log_sum += std::log(scalar_ns / avx2_it->second);
      ++avx2_points;
    }
  }
  table.Print(&std::cout);

  const double best_geomean =
      curves.empty() ? 0.0
                     : std::exp(best_log_sum / static_cast<double>(
                                                   curves.size()));
  const double avx2_geomean =
      avx2_points == 0
          ? 0.0
          : std::exp(avx2_log_sum / static_cast<double>(avx2_points));
  // PR 4 shipped the AVX2 backend as the headline speedup; the choose-best
  // ladder must keep at least that (10% tolerance for runner noise).
  const bool best_not_slower =
      avx2_points == 0 || best_geomean >= avx2_geomean * 0.9;
  std::printf("\nbest-tier geomean speedup over scalar: %.2fx "
              "(avx2 baseline: %.2fx)\n",
              best_geomean, avx2_geomean);
  if (!best_not_slower) {
    std::fprintf(stderr, "WARNING: choose-best tier (%s) is slower than the "
                         "avx2 baseline on this sweep\n",
                 best_name.c_str());
  }

  const Status written = WriteBenchReport("kernel_micro", [&](JsonWriter& w) {
    w.Field("scale", scale.name);
    w.Field("best_tier", best_name);
    w.Key("tiers_measured");
    w.BeginArray();
    for (const kernels::KernelTier t : tiers) {
      w.Value(kernels::KernelTierName(t));
    }
    w.EndArray();
    w.Key("curves");
    w.BeginArray();
    for (const CurvePoint& p : curves) {
      w.BeginObject();
      w.Field("kernel", p.kernel);
      w.Field("size", static_cast<std::int64_t>(p.size));
      w.Key("ns_per_op");
      w.BeginObject();
      for (const auto& [tier, ns] : p.ns_per_op) w.Field(tier, ns);
      w.EndObject();
      w.Key("speedup_vs_scalar");
      w.BeginObject();
      const double scalar_ns = p.ns_per_op.at("scalar");
      for (const auto& [tier, ns] : p.ns_per_op) {
        w.Field(tier, ns > 0.0 ? scalar_ns / ns : 0.0);
      }
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
    w.Field("best_geomean_speedup", best_geomean);
    w.Field("avx2_geomean_speedup", avx2_geomean);
    w.Field("best_not_slower_than_avx2", best_not_slower);
    w.Field("bit_identical", bit_identical);
  });
  IFLS_CHECK(written.ok()) << written.ToString();
  std::cerr << "wrote " << BenchReportPath("kernel_micro") << "\n";

  return bit_identical ? 0 : 1;
}

}  // namespace
}  // namespace ifls

int main() { return ifls::Main(); }
