// Experiment A3 — the §7 extensions: MinDist and MaxSum variants of the
// efficient approach vs their brute-force oracles on synthetic Melbourne
// Central, across client sizes. Shows the single-pass machinery carries
// over to the other objectives at similar cost.

#include <cstdio>
#include <iostream>

#include "src/benchlib/harness.h"
#include "src/benchlib/table.h"
#include "src/core/brute_force.h"
#include "src/core/maxsum.h"
#include "src/core/mindist.h"

namespace {

template <typename Solver>
ifls::SolverAggregate Measure(const ifls::Venue& venue,
                              const ifls::VipTree& tree,
                              const ifls::WorkloadSpec& spec, int repeats,
                              Solver solver) {
  using namespace ifls;
  SolverAggregate agg;
  for (int r = 0; r < repeats; ++r) {
    Rng rng(1 + static_cast<std::uint64_t>(r));
    IflsContext ctx;
    ctx.oracle = &tree;
    Result<FacilitySets> sets = MakeFacilities(venue, spec, &rng);
    IFLS_CHECK(sets.ok()) << sets.status().ToString();
    ctx.existing = sets->existing;
    ctx.candidates = sets->candidates;
    ctx.clients = MakeClients(venue, spec, &rng);
    Result<IflsResult> result = solver(ctx);
    IFLS_CHECK(result.ok()) << result.status().ToString();
    agg.mean_time_seconds += result->stats.elapsed_seconds;
    agg.mean_memory_mb +=
        static_cast<double>(result->stats.peak_memory_bytes) / (1 << 20);
    agg.mean_objective += result->objective;
    agg.mean_distance_computations += result->stats.distance_computations;
  }
  agg.mean_time_seconds /= repeats;
  agg.mean_memory_mb /= repeats;
  agg.mean_objective /= repeats;
  agg.mean_distance_computations /= repeats;
  return agg;
}

}  // namespace

int main() {
  using namespace ifls;
  const BenchScale scale = BenchScale::FromEnv();
  std::printf(
      "# A3: MinDist / MaxSum extensions vs brute force (MC synthetic, "
      "scale=%s, %d repeats)\n\n",
      scale.name.c_str(), scale.repeats);

  VenueCache cache;
  const Venue& venue = cache.venue(VenuePreset::kMelbourneCentral, false);
  const VipTree& tree = cache.tree(VenuePreset::kMelbourneCentral, false);
  const ParameterGrid grid =
      PresetParameterGrid(VenuePreset::kMelbourneCentral);

  for (const char* objective : {"MinDist", "MaxSum"}) {
    std::printf("-- %s --\n", objective);
    TextTable table({"|C|", "EA time (s)", "BF time (s)", "speedup",
                     "EA mem (MB)", "objective"});
    for (std::size_t clients : ClientSizeSweep()) {
      WorkloadSpec spec;
      spec.preset = VenuePreset::kMelbourneCentral;
      spec.num_existing = grid.default_existing;
      spec.num_candidates = grid.default_candidates;
      spec.num_clients = scale.Clients(clients);
      SolverAggregate ea, bf;
      if (std::string(objective) == "MinDist") {
        ea = Measure(venue, tree, spec, scale.repeats,
                     [](const IflsContext& ctx) { return SolveMinDist(ctx); });
        bf = Measure(venue, tree, spec, scale.repeats,
                     [](const IflsContext& ctx) {
                       return SolveBruteForceMinDist(ctx);
                     });
      } else {
        ea = Measure(venue, tree, spec, scale.repeats,
                     [](const IflsContext& ctx) { return SolveMaxSum(ctx); });
        bf = Measure(venue, tree, spec, scale.repeats,
                     [](const IflsContext& ctx) {
                       return SolveBruteForceMaxSum(ctx);
                     });
      }
      table.AddRow({TextTable::Int(static_cast<long long>(spec.num_clients)),
                    TextTable::Num(ea.mean_time_seconds),
                    TextTable::Num(bf.mean_time_seconds),
                    TextTable::Num(ea.mean_time_seconds > 0
                                       ? bf.mean_time_seconds /
                                             ea.mean_time_seconds
                                       : 0.0),
                    TextTable::Num(ea.mean_memory_mb),
                    TextTable::Num(ea.mean_objective)});
    }
    table.Print(&std::cout);
    std::printf("\n");
  }
  return 0;
}
