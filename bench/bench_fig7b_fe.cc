// Experiment E4 — paper Figure 7b (time) + Figure 8b (memory): effect of
// the existing facility size |Fe| in the synthetic setting, per venue, with
// |Fn| and |C| at their defaults. The paper's signature shape: baseline
// time *rises* with |Fe| (more NN work per client) while the efficient
// approach *falls* (denser existing facilities prune more clients).

#include <cstdio>
#include <iostream>

#include "src/benchlib/harness.h"
#include "src/benchlib/table.h"

int main() {
  using namespace ifls;
  const BenchScale scale = BenchScale::FromEnv();
  std::printf(
      "# E4 / Figures 7b+8b: synthetic setting, effect of |Fe| "
      "(scale=%s, clients/%zu, %d repeats)\n\n",
      scale.name.c_str(), scale.client_divisor, scale.repeats);
  VenueCache cache;
  for (VenuePreset preset : AllVenuePresets()) {
    const Venue& venue = cache.venue(preset, false);
    const VipTree& tree = cache.tree(preset, false);
    const ParameterGrid grid = PresetParameterGrid(preset);
    std::printf("-- %s (|Fn|=%zu, |C|=%zu) --\n", VenuePresetName(preset),
                grid.default_candidates, scale.Clients(kDefaultClients));
    TextTable table({"|Fe|", "EA time (s)", "Base time (s)", "speedup",
                     "EA mem (MB)", "Base mem (MB)"});
    for (std::size_t fe : grid.existing_sizes) {
      WorkloadSpec spec;
      spec.preset = preset;
      spec.num_existing = fe;
      spec.num_candidates = grid.default_candidates;
      spec.num_clients = scale.Clients(kDefaultClients);
      const PairedAggregate agg = RunPaired(venue, tree, spec, scale.repeats);
      table.AddRow({TextTable::Int(static_cast<long long>(fe)),
                    TextTable::Num(agg.efficient.mean_time_seconds),
                    TextTable::Num(agg.baseline.mean_time_seconds),
                    TextTable::Num(agg.speedup),
                    TextTable::Num(agg.efficient.mean_memory_mb),
                    TextTable::Num(agg.baseline.mean_memory_mb)});
    }
    table.Print(&std::cout);
    std::printf("\n");
  }
  return 0;
}
