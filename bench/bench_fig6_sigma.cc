// Experiment E2 — paper Figure 6: effect of the normal distribution's
// standard deviation sigma on query time and memory. Five sub-plots:
// (i) MC real setting, (ii)-(v) MC/CH/CPH/MZB synthetic setting. Clients are
// normal-distributed; facilities come from the category split (real) or
// uniform draws at the Table-2 defaults (synthetic).

#include <cstdio>
#include <iostream>

#include "src/benchlib/harness.h"
#include "src/benchlib/table.h"

namespace {

void RunSweep(ifls::VenueCache* cache, ifls::VenuePreset preset,
              bool real_setting, const ifls::BenchScale& scale) {
  using namespace ifls;
  const Venue& venue = cache->venue(preset, real_setting);
  const VipTree& tree = cache->tree(preset, real_setting);
  const ParameterGrid grid = PresetParameterGrid(preset);
  std::printf("-- %s (%s) --\n", VenuePresetName(preset),
              real_setting ? "real" : "synthetic");
  TextTable table({"sigma", "EA time (s)", "Base time (s)", "speedup",
                   "EA mem (MB)", "Base mem (MB)"});
  for (double sigma : SigmaSweep()) {
    WorkloadSpec spec;
    spec.preset = preset;
    spec.real_setting = real_setting;
    spec.num_existing = grid.default_existing;
    spec.num_candidates = grid.default_candidates;
    spec.num_clients = real_setting ? scale.RealClients(kDefaultClients)
                                    : scale.Clients(kDefaultClients);
    spec.client_options.distribution = ClientDistribution::kNormal;
    spec.client_options.sigma = sigma;
    const PairedAggregate agg = RunPaired(venue, tree, spec, scale.repeats);
    table.AddRow({TextTable::Num(sigma),
                  TextTable::Num(agg.efficient.mean_time_seconds),
                  TextTable::Num(agg.baseline.mean_time_seconds),
                  TextTable::Num(agg.speedup),
                  TextTable::Num(agg.efficient.mean_memory_mb),
                  TextTable::Num(agg.baseline.mean_memory_mb)});
  }
  table.Print(&std::cout);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace ifls;
  const BenchScale scale = BenchScale::FromEnv();
  std::printf(
      "# E2 / Figure 6: effect of sigma (scale=%s, clients/%zu, %d "
      "repeats)\n\n",
      scale.name.c_str(), scale.client_divisor, scale.repeats);
  VenueCache cache;
  RunSweep(&cache, VenuePreset::kMelbourneCentral, /*real_setting=*/true,
           scale);
  for (VenuePreset preset : AllVenuePresets()) {
    RunSweep(&cache, preset, /*real_setting=*/false, scale);
  }
  return 0;
}
