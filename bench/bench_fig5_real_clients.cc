// Experiment E1 — paper Figure 5: effect of client size |C| in the *real
// setting* (Melbourne Central, Fe/Fn from the tenant-category split).
// One sub-table per category (Fig. 5a-5e), reporting query processing time
// and memory for the efficient approach and the modified MinMax baseline.
//
// Scale via IFLS_BENCH_SCALE=smoke|default|full (full = paper scale).

#include <cstdio>
#include <iostream>

#include "src/benchlib/harness.h"
#include "src/benchlib/table.h"

int main() {
  using namespace ifls;
  const BenchScale scale = BenchScale::FromEnv();
  std::printf(
      "# E1 / Figure 5: real setting (MC), effect of |C| "
      "(scale=%s, clients/%zu, %d repeats)\n\n",
      scale.name.c_str(), scale.client_divisor, scale.repeats);

  VenueCache cache;
  const Venue& venue = cache.venue(VenuePreset::kMelbourneCentral, true);
  const VipTree& tree = cache.tree(VenuePreset::kMelbourneCentral, true);

  const char* categories[] = {"fashion & accessories",
                              "dining & entertainment", "health & beauty",
                              "fresh food", "banks & services"};
  for (const char* category : categories) {
    std::printf("-- Fe = %s --\n", category);
    TextTable table({"|C|", "EA time (s)", "Base time (s)", "speedup",
                     "EA mem (MB)", "Base mem (MB)"});
    for (std::size_t clients : ClientSizeSweep()) {
      WorkloadSpec spec;
      spec.preset = VenuePreset::kMelbourneCentral;
      spec.real_setting = true;
      spec.existing_category = category;
      spec.num_clients = scale.RealClients(clients);
      spec.client_options.distribution = ClientDistribution::kUniform;
      const PairedAggregate agg =
          RunPaired(venue, tree, spec, scale.repeats);
      table.AddRow({TextTable::Int(static_cast<long long>(spec.num_clients)),
                    TextTable::Num(agg.efficient.mean_time_seconds),
                    TextTable::Num(agg.baseline.mean_time_seconds),
                    TextTable::Num(agg.speedup),
                    TextTable::Num(agg.efficient.mean_memory_mb),
                    TextTable::Num(agg.baseline.mean_memory_mb)});
    }
    table.Print(&std::cout);
    std::printf("\n");
  }
  return 0;
}
