// Experiment E5 — paper Figure 7c (time) + Figure 8c (memory): effect of
// the candidate location size |Fn| in the synthetic setting, per venue,
// with |Fe| and |C| at their defaults. Both algorithms slow down as |Fn|
// grows; the efficient approach keeps its lead.

#include <cstdio>
#include <iostream>

#include "src/benchlib/harness.h"
#include "src/benchlib/table.h"

int main() {
  using namespace ifls;
  const BenchScale scale = BenchScale::FromEnv();
  std::printf(
      "# E5 / Figures 7c+8c: synthetic setting, effect of |Fn| "
      "(scale=%s, clients/%zu, %d repeats)\n\n",
      scale.name.c_str(), scale.client_divisor, scale.repeats);
  VenueCache cache;
  for (VenuePreset preset : AllVenuePresets()) {
    const Venue& venue = cache.venue(preset, false);
    const VipTree& tree = cache.tree(preset, false);
    const ParameterGrid grid = PresetParameterGrid(preset);
    std::printf("-- %s (|Fe|=%zu, |C|=%zu) --\n", VenuePresetName(preset),
                grid.default_existing, scale.Clients(kDefaultClients));
    TextTable table({"|Fn|", "EA time (s)", "Base time (s)", "speedup",
                     "EA mem (MB)", "Base mem (MB)"});
    for (std::size_t fn : grid.candidate_sizes) {
      WorkloadSpec spec;
      spec.preset = preset;
      spec.num_existing = grid.default_existing;
      spec.num_candidates = fn;
      spec.num_clients = scale.Clients(kDefaultClients);
      const PairedAggregate agg = RunPaired(venue, tree, spec, scale.repeats);
      table.AddRow({TextTable::Int(static_cast<long long>(fn)),
                    TextTable::Num(agg.efficient.mean_time_seconds),
                    TextTable::Num(agg.baseline.mean_time_seconds),
                    TextTable::Num(agg.speedup),
                    TextTable::Num(agg.efficient.mean_memory_mb),
                    TextTable::Num(agg.baseline.mean_memory_mb)});
    }
    table.Print(&std::cout);
    std::printf("\n");
  }
  return 0;
}
