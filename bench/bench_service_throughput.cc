// Online serving benchmark: sustained concurrent IFLS queries against an
// IflsService while a mutator thread churns the facility sets hard enough
// to drive the background compactor through several snapshot publications.
// Demonstrates the RCU read path: queries keep completing (ok or shed at
// admission, never blocked) across >= 3 publications, and the report records
// how many distinct snapshot epochs answered queries.
//
// Writes BENCH_service_throughput.json (shared schema, src/benchlib).
// Scale via IFLS_BENCH_SCALE=smoke|default|full.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/benchlib/harness.h"
#include "src/benchlib/json_report.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/datasets/client_generator.h"
#include "src/datasets/facility_selector.h"
#include "src/datasets/presets.h"
#include "src/datasets/workload.h"
#include "src/service/service.h"

namespace ifls {
namespace {

struct BenchConfig {
  int query_threads = 4;
  std::size_t clients_per_query = 64;
  std::size_t min_queries_per_thread = 300;
  std::uint64_t min_publications = 3;
  double max_seconds = 120.0;
};

BenchConfig ConfigForScale(const BenchScale& scale) {
  BenchConfig cfg;
  if (scale.name == "smoke") {
    cfg.min_queries_per_thread = 40;
  } else if (scale.name == "full") {
    cfg.query_threads = 8;
    cfg.min_queries_per_thread = 1500;
    cfg.min_publications = 6;
  }
  return cfg;
}

int Main() {
  const BenchScale scale = BenchScale::FromEnv();
  const BenchConfig cfg = ConfigForScale(scale);

  Result<Venue> venue = BuildPresetVenue(VenuePreset::kMelbourneCentral);
  IFLS_CHECK(venue.ok()) << venue.status().ToString();
  const std::size_t num_partitions = venue->num_partitions();

  Rng rng(991);
  const ParameterGrid grid =
      PresetParameterGrid(VenuePreset::kMelbourneCentral);
  Result<FacilitySets> sets = SelectUniformFacilities(
      *venue, grid.default_existing, grid.default_candidates, &rng);
  IFLS_CHECK(sets.ok()) << sets.status().ToString();

  // Partitions outside both sets: the mutator's churn pool.
  std::vector<bool> taken(num_partitions, false);
  for (PartitionId p : sets->existing) taken[static_cast<std::size_t>(p)] = true;
  for (PartitionId p : sets->candidates)
    taken[static_cast<std::size_t>(p)] = true;
  std::vector<PartitionId> pool;
  for (std::size_t p = 0; p < num_partitions; ++p) {
    if (!taken[p]) pool.push_back(static_cast<PartitionId>(p));
  }
  IFLS_CHECK(pool.size() >= 16) << "venue too small for mutation churn";

  ClientGeneratorOptions copts;
  const std::vector<Client> client_pool =
      GenerateClients(*venue, 4096, copts, &rng);

  ServiceOptions options;
  options.num_workers = cfg.query_threads;
  options.queue_capacity = 1024;
  options.compaction_threshold = 8;  // low: force frequent publications
  Result<std::unique_ptr<IflsService>> built = IflsService::Create(
      std::move(*venue), sets->existing, sets->candidates, options);
  IFLS_CHECK(built.ok()) << built.status().ToString();
  IflsService& service = **built;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries_ok{0};
  std::atomic<std::uint64_t> queries_shed{0};
  std::atomic<std::uint64_t> queries_failed{0};
  std::mutex epochs_mu;
  std::set<std::uint64_t> epochs_answering;  // epochs that answered a query
  std::vector<std::atomic<std::uint64_t>> per_thread_done(
      static_cast<std::size_t>(cfg.query_threads));

  const IflsObjective objectives[3] = {IflsObjective::kMinMax,
                                       IflsObjective::kMinDist,
                                       IflsObjective::kMaxSum};

  Stopwatch watch;
  std::vector<std::thread> query_threads;
  for (int t = 0; t < cfg.query_threads; ++t) {
    query_threads.emplace_back([&, t] {
      Rng trng(static_cast<std::uint64_t>(1000 + t));
      std::uint64_t done = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ServiceRequest req;
        req.objective = objectives[trng.NextBounded(3)];
        const std::size_t start = trng.NextBounded(
            client_pool.size() - cfg.clients_per_query);
        req.clients.assign(
            client_pool.begin() + static_cast<std::ptrdiff_t>(start),
            client_pool.begin() +
                static_cast<std::ptrdiff_t>(start + cfg.clients_per_query));
        const ServiceReply reply = service.Query(std::move(req));
        if (reply.status.ok()) {
          queries_ok.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(epochs_mu);
          epochs_answering.insert(reply.snapshot_epoch);
        } else if (reply.status.IsUnavailable()) {
          queries_shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          queries_failed.fetch_add(1, std::memory_order_relaxed);
          std::cerr << "[service] query failed: " << reply.status.ToString()
                    << "\n";
        }
        ++done;
        per_thread_done[static_cast<std::size_t>(t)].store(
            done, std::memory_order_relaxed);
      }
    });
  }

  // The mutator walks the churn pool adding and then removing candidate /
  // existing roles; every flip drifts the overlay until the compactor cuts
  // a snapshot. Mutations on partitions the snapshot just absorbed are
  // rejected harmlessly (kAlreadyExists / kNotFound) and retried elsewhere.
  std::atomic<std::uint64_t> mutations_ok{0};
  std::thread mutator([&] {
    Rng mrng(77);
    std::vector<PartitionId> live;  // pool partitions we gave a role
    while (!stop.load(std::memory_order_relaxed)) {
      const bool remove = !live.empty() && (live.size() > pool.size() / 2 ||
                                            mrng.NextBounded(2) == 0);
      Status st;
      if (remove) {
        const std::size_t i = mrng.NextBounded(live.size());
        const PartitionId p = live[i];
        st = service.Mutate({mrng.NextBounded(2) == 0
                                 ? MutationKind::kRemoveCandidate
                                 : MutationKind::kRemoveFacility,
                             p});
        if (!st.ok()) {
          // Wrong role guessed: flip the verb.
          st = service.Mutate({st.IsNotFound() ? MutationKind::kRemoveFacility
                                               : MutationKind::kRemoveCandidate,
                               p});
        }
        if (st.ok()) {
          live[i] = live.back();
          live.pop_back();
        }
      } else {
        const PartitionId p =
            pool[mrng.NextBounded(pool.size())];
        st = service.Mutate({mrng.NextBounded(2) == 0
                                 ? MutationKind::kAddCandidate
                                 : MutationKind::kAddFacility,
                             p});
        if (st.ok()) live.push_back(p);
      }
      if (st.ok()) mutations_ok.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Run until every query thread met its quota and the compactor published
  // enough snapshots (or the safety timeout trips).
  bool timed_out = false;
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::uint64_t slowest = ~std::uint64_t{0};
    for (const auto& done : per_thread_done) {
      slowest = std::min(slowest, done.load(std::memory_order_relaxed));
    }
    const std::uint64_t publications = service.snapshot_epoch();
    if (slowest >= cfg.min_queries_per_thread &&
        publications >= cfg.min_publications) {
      break;
    }
    if (watch.ElapsedSeconds() > cfg.max_seconds) {
      timed_out = true;
      break;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : query_threads) t.join();
  mutator.join();
  service.Drain();
  const double elapsed = watch.ElapsedSeconds();
  const ServiceMetrics metrics = service.Metrics();
  service.Stop();

  const std::uint64_t ok = queries_ok.load();
  const std::uint64_t shed = queries_shed.load();
  const std::uint64_t failed = queries_failed.load();
  const std::uint64_t publications = metrics.snapshot_epoch;
  const bool zero_reader_blocking = failed == 0;

  std::cerr << "[service] " << ok << " queries ok (" << shed << " shed, "
            << failed << " failed) across " << publications
            << " snapshot publications in " << elapsed << "s; "
            << metrics.ToString() << "\n";

  std::size_t epochs_count;
  {
    std::lock_guard<std::mutex> lock(epochs_mu);
    epochs_count = epochs_answering.size();
  }

  const Status written = WriteBenchReport(
      "service_throughput", [&](JsonWriter& w) {
        w.Field("scale", scale.name);
        w.Field("venue", std::string(
                             VenuePresetName(VenuePreset::kMelbourneCentral)));
        w.Field("query_threads", cfg.query_threads);
        w.Field("clients_per_query", cfg.clients_per_query);
        w.Field("duration_seconds", elapsed);
        w.Field("queries_ok", ok);
        w.Field("queries_shed", shed);
        w.Field("queries_failed", failed);
        w.Field("throughput_qps",
                elapsed > 0.0 ? static_cast<double>(ok) / elapsed : 0.0);
        w.Field("latency_p50_seconds", metrics.latency_p50_seconds);
        w.Field("latency_p99_seconds", metrics.latency_p99_seconds);
        w.Field("latency_mean_seconds", metrics.latency_mean_seconds);
        w.Field("mutations_applied", metrics.mutations_applied);
        w.Field("mutations_rejected", metrics.mutations_rejected);
        w.Field("compactions", metrics.compactions);
        w.Field("snapshot_publications", publications);
        w.Field("epochs_answering_queries", epochs_count);
        w.Field("final_overlay_size", metrics.overlay_size);
        w.Field("zero_reader_blocking", zero_reader_blocking);
        w.Field("timed_out", timed_out);
      });
  IFLS_CHECK(written.ok()) << written.ToString();
  std::cerr << "[service] wrote " << BenchReportPath("service_throughput")
            << "\n";

  if (failed != 0) {
    std::cerr << "[service] FAILURE: " << failed << " queries errored\n";
    return 1;
  }
  if (publications < cfg.min_publications) {
    std::cerr << "[service] FAILURE: only " << publications
              << " snapshot publications (wanted >= "
              << cfg.min_publications << ")\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ifls

int main() { return ifls::Main(); }
