// Multi-venue fleet serving benchmark (DESIGN.md §12): builds a campus of
// synthetic venues into a fleet snapshot directory, then measures the three
// snapshot hydration paths on the exact same index images —
//
//   cold build      VipTree::Build from the venue (the no-snapshot world),
//   parse-load      the v2 text format (the pre-v3 persistence path),
//   mmap-load       the v3 zero-copy path (map + descriptor fixup),
//   warm re-map     mmap-load again with the page cache hot (the
//                   eviction-reload path VenueRouter leans on),
//
// cross-checks that a mapped tree answers every objective bit-identically
// to the heap-built tree, measures eviction + reload latency through a
// budget-constrained VenueRouter, and finishes with a steady-state
// concurrent query run across the whole fleet under a budget that keeps
// roughly half the venues resident (so the LRU churns continuously).
//
// Hard assertions (exit 1): mmap-load must beat parse-load by >= 5x in
// aggregate, mapped answers must equal heap answers exactly, and no steady
// -state query may fail.
//
// Writes BENCH_venue_fleet.json (shared schema, src/benchlib).
// Scale via IFLS_BENCH_SCALE=smoke|default|full.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/benchlib/harness.h"
#include "src/benchlib/json_report.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/core/solve_dispatch.h"
#include "src/datasets/client_generator.h"
#include "src/datasets/facility_selector.h"
#include "src/datasets/venue_generator.h"
#include "src/index/vip_tree.h"
#include "src/io/venue_io.h"
#include "src/service/fleet_store.h"
#include "src/service/service.h"
#include "src/service/venue_router.h"

namespace ifls {
namespace {

struct BenchConfig {
  int num_venues = 16;
  int total_rooms = 150;
  int levels = 2;
  std::size_t existing = 8;
  std::size_t candidates = 16;
  std::size_t clients_per_query = 64;
  int query_threads = 4;
  std::uint64_t steady_queries_per_thread = 100;
  double min_mmap_speedup = 5.0;
};

BenchConfig ConfigForScale(const BenchScale& scale) {
  BenchConfig cfg;
  if (scale.name == "smoke") {
    cfg.num_venues = 4;
    cfg.total_rooms = 100;
    cfg.steady_queries_per_thread = 25;
  } else if (scale.name == "full") {
    cfg.num_venues = 24;
    cfg.total_rooms = 250;
    cfg.steady_queries_per_thread = 400;
  }
  return cfg;
}

std::string VenueId(int i) {
  char id[16];
  std::snprintf(id, sizeof(id), "v%03d", i);
  return id;
}

int Main() {
  const BenchScale scale = BenchScale::FromEnv();
  const BenchConfig cfg = ConfigForScale(scale);
  namespace fs = std::filesystem;

  const fs::path root =
      fs::temp_directory_path() / "ifls_bench_venue_fleet";
  std::error_code ec;
  fs::remove_all(root, ec);

  // ---- Phase 1: build the fleet snapshot directory. --------------------
  // Venues vary in size and door jitter so the fleet is not N copies of
  // one index image.
  std::vector<Venue> venues;
  venues.reserve(static_cast<std::size_t>(cfg.num_venues));
  std::vector<FacilitySets> facility_sets(
      static_cast<std::size_t>(cfg.num_venues));
  double build_seconds = 0.0;
  std::uint64_t v3_bytes_total = 0;
  std::size_t resident_bytes_total = 0;
  for (int i = 0; i < cfg.num_venues; ++i) {
    VenueGeneratorSpec spec;
    spec.name = VenueId(i);
    spec.levels = cfg.levels;
    spec.total_rooms = cfg.total_rooms + 10 * (i % 4);
    spec.door_jitter_seed = static_cast<std::uint64_t>(1 + i);
    Result<Venue> venue = GenerateVenue(spec);
    IFLS_CHECK(venue.ok()) << venue.status().ToString();
    venues.push_back(std::move(venue).value());
  }
  for (int i = 0; i < cfg.num_venues; ++i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    Stopwatch build_watch;
    Result<VipTree> tree =
        VipTree::Build(&venues[idx], DefaultServiceTreeOptions());
    IFLS_CHECK(tree.ok()) << tree.status().ToString();
    build_seconds += build_watch.ElapsedSeconds();
    resident_bytes_total += tree->MemoryFootprintBytes();

    Rng rng(static_cast<std::uint64_t>(31 + i));
    Result<FacilitySets> sets = SelectUniformFacilities(
        venues[idx], cfg.existing, cfg.candidates, &rng);
    IFLS_CHECK(sets.ok()) << sets.status().ToString();
    facility_sets[idx] = *sets;

    const std::string dir = (root / VenueId(i)).string();
    Status written = WriteVenueSnapshot(dir, venues[idx], *tree,
                                        sets->existing, sets->candidates);
    IFLS_CHECK(written.ok()) << written.ToString();
    v3_bytes_total += static_cast<std::uint64_t>(
        fs::file_size(fs::path(dir) / kFleetIndexV3FileName));
  }

  // ---- Phase 2: hydration-path comparison on identical images. ---------
  // Times the index load only (the venue is pre-loaded) so the ratio
  // isolates v2 text parsing vs v3 map + fixup.
  double parse_seconds = 0.0;
  double mmap_seconds = 0.0;
  double remap_seconds = 0.0;
  bool answers_identical = true;
  const IflsObjective kObjectives[] = {
      IflsObjective::kMinMax, IflsObjective::kMinDist, IflsObjective::kMaxSum};
  for (int i = 0; i < cfg.num_venues; ++i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    const fs::path dir = root / VenueId(i);
    const std::string v2 = (dir / kFleetIndexV2FileName).string();
    const std::string v3 = (dir / kFleetIndexV3FileName).string();

    Stopwatch parse_watch;
    Result<VipTree> parsed = VipTree::LoadFromFile(&venues[idx], v2);
    parse_seconds += parse_watch.ElapsedSeconds();
    IFLS_CHECK(parsed.ok()) << parsed.status().ToString();

    Stopwatch mmap_watch;
    Result<VipTree> mapped = VipTree::LoadV3FromFile(&venues[idx], v3);
    mmap_seconds += mmap_watch.ElapsedSeconds();
    IFLS_CHECK(mapped.ok()) << mapped.status().ToString();

    Stopwatch remap_watch;
    Result<VipTree> remapped = VipTree::LoadV3FromFile(&venues[idx], v3);
    remap_seconds += remap_watch.ElapsedSeconds();
    IFLS_CHECK(remapped.ok()) << remapped.status().ToString();

    // Differential: heap-parsed vs mapped arenas must answer identically
    // (same descriptors, same payload bits, same traversal).
    Rng crng(static_cast<std::uint64_t>(7000 + i));
    const std::vector<Client> clients =
        GenerateClients(venues[idx], cfg.clients_per_query, {}, &crng);
    for (IflsObjective objective : kObjectives) {
      IflsContext parse_ctx;
      parse_ctx.oracle = &parsed.value();
      parse_ctx.existing = facility_sets[idx].existing;
      parse_ctx.candidates = facility_sets[idx].candidates;
      parse_ctx.clients = clients;
      IflsContext map_ctx = parse_ctx;
      map_ctx.oracle = &mapped.value();
      Result<IflsResult> a = SolveWithObjective(objective, parse_ctx);
      Result<IflsResult> b = SolveWithObjective(objective, map_ctx);
      IFLS_CHECK(a.ok()) << a.status().ToString();
      IFLS_CHECK(b.ok()) << b.status().ToString();
      if (a->found != b->found || a->answer != b->answer ||
          a->objective != b->objective) {
        answers_identical = false;
        std::cerr << "[fleet] MISMATCH venue " << VenueId(i) << " "
                  << IflsObjectiveName(objective) << ": heap ("
                  << a->answer << ", " << a->objective << ") vs mapped ("
                  << b->answer << ", " << b->objective << ")\n";
      }
    }
  }
  const double mmap_speedup =
      mmap_seconds > 0.0 ? parse_seconds / mmap_seconds : 0.0;

  // ---- Phase 3: eviction + reload latency through the router. ----------
  // max_resident_venues=1 makes every venue switch an evict + reload pair.
  double evict_seconds = 0.0;
  double reload_seconds = 0.0;
  std::uint64_t evict_reload_pairs = 0;
  {
    VenueRouterOptions ropts;
    ropts.max_resident_venues = 1;
    Result<std::unique_ptr<VenueRouter>> router =
        VenueRouter::Open(root.string(), ropts);
    IFLS_CHECK(router.ok()) << router.status().ToString();
    const std::vector<std::string> ids = (*router)->venue_ids();
    IFLS_CHECK(!ids.empty());
    IFLS_CHECK((*router)->Preload(ids[0]).ok());
    for (std::size_t round = 1; round < 2 * ids.size(); ++round) {
      const std::string& prev = ids[(round - 1) % ids.size()];
      const std::string& next = ids[round % ids.size()];
      Stopwatch evict_watch;
      IFLS_CHECK((*router)->Evict(prev).ok());
      evict_seconds += evict_watch.ElapsedSeconds();
      Stopwatch reload_watch;
      Result<std::shared_ptr<IflsService>> svc = (*router)->Service(next);
      reload_seconds += reload_watch.ElapsedSeconds();
      IFLS_CHECK(svc.ok()) << svc.status().ToString();
      ++evict_reload_pairs;
    }
  }

  // ---- Phase 4: steady-state fleet serving under a constrained budget. -
  // Budget ~ half the fleet's resident bytes: the LRU must keep evicting
  // cold venues while query threads sweep the whole fleet.
  const std::size_t budget = resident_bytes_total / 2;
  VenueRouterOptions ropts;
  ropts.memory_budget_bytes = budget;
  ropts.service.num_workers = 2;
  Result<std::unique_ptr<VenueRouter>> router =
      VenueRouter::Open(root.string(), ropts);
  IFLS_CHECK(router.ok()) << router.status().ToString();
  const std::vector<std::string> ids = (*router)->venue_ids();

  std::vector<std::vector<Client>> steady_clients(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    Rng crng(9000 + i);
    steady_clients[i] =
        GenerateClients(venues[i], cfg.clients_per_query, {}, &crng);
  }

  std::atomic<std::uint64_t> steady_ok{0};
  std::atomic<std::uint64_t> steady_failed{0};
  Stopwatch steady_watch;
  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.query_threads; ++t) {
    threads.emplace_back([&, t] {
      Rng trng(static_cast<std::uint64_t>(100 + t));
      for (std::uint64_t q = 0; q < cfg.steady_queries_per_thread; ++q) {
        const std::size_t v = trng.NextBounded(ids.size());
        ServiceRequest request;
        request.objective = kObjectives[trng.NextBounded(3)];
        request.clients = steady_clients[v];
        const ServiceReply reply =
            (*router)->Query(ids[v], std::move(request));
        if (reply.status.ok()) {
          steady_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          steady_failed.fetch_add(1, std::memory_order_relaxed);
          std::cerr << "[fleet] steady query failed: "
                    << reply.status.ToString() << "\n";
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double steady_seconds = steady_watch.ElapsedSeconds();
  const VenueRouterMetrics rm = (*router)->Metrics();
  router->reset();
  fs::remove_all(root, ec);

  const double steady_qps =
      steady_seconds > 0.0 ? static_cast<double>(steady_ok.load()) /
                                 steady_seconds
                           : 0.0;
  std::cerr << "[fleet] " << cfg.num_venues << " venues: parse "
            << parse_seconds << "s vs mmap " << mmap_seconds << "s ("
            << mmap_speedup << "x), warm re-map " << remap_seconds
            << "s; steady " << steady_ok.load() << " queries at "
            << steady_qps << " qps with " << rm.evictions
            << " evictions under a " << (budget >> 20) << " MiB budget\n";

  Status written = WriteBenchReport("venue_fleet", [&](JsonWriter& w) {
    w.Field("scale", scale.name);
    w.Field("num_venues", cfg.num_venues);
    w.Field("clients_per_query", cfg.clients_per_query);
    w.Field("v3_bytes_total", v3_bytes_total);
    w.Field("resident_bytes_total", resident_bytes_total);
    w.Field("build_seconds_total", build_seconds);
    w.Field("parse_load_seconds_total", parse_seconds);
    w.Field("mmap_load_seconds_total", mmap_seconds);
    w.Field("warm_remap_seconds_total", remap_seconds);
    w.Field("mmap_speedup_vs_parse", mmap_speedup);
    w.Field("answers_identical", answers_identical);
    w.Field("evict_reload_pairs", evict_reload_pairs);
    w.Field("evict_seconds_mean",
            evict_reload_pairs > 0
                ? evict_seconds / static_cast<double>(evict_reload_pairs)
                : 0.0);
    w.Field("reload_seconds_mean",
            evict_reload_pairs > 0
                ? reload_seconds / static_cast<double>(evict_reload_pairs)
                : 0.0);
    w.Field("steady_budget_bytes", budget);
    w.Field("steady_query_threads", cfg.query_threads);
    w.Field("steady_queries_ok", steady_ok.load());
    w.Field("steady_queries_failed", steady_failed.load());
    w.Field("steady_seconds", steady_seconds);
    w.Field("steady_qps", steady_qps);
    w.Field("router_loads", rm.loads);
    w.Field("router_hits", rm.hits);
    w.Field("router_evictions", rm.evictions);
  });
  IFLS_CHECK(written.ok()) << written.ToString();
  std::cerr << "[fleet] wrote " << BenchReportPath("venue_fleet") << "\n";

  if (!answers_identical) {
    std::cerr << "[fleet] FAILURE: mapped answers diverged from heap\n";
    return 1;
  }
  if (mmap_speedup < cfg.min_mmap_speedup) {
    std::cerr << "[fleet] FAILURE: mmap-load only " << mmap_speedup
              << "x faster than parse-load (wanted >= "
              << cfg.min_mmap_speedup << "x)\n";
    return 1;
  }
  if (steady_failed.load() != 0) {
    std::cerr << "[fleet] FAILURE: " << steady_failed.load()
              << " steady-state queries errored\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ifls

int main() { return ifls::Main(); }
