// Experiment E3 — paper Figure 7a (time) + Figure 8a (memory): effect of
// client size |C| in the synthetic setting on all four venues, with Fe/Fn
// at their Table-2 defaults and uniform clients.

#include <cstdio>
#include <iostream>

#include "src/benchlib/harness.h"
#include "src/benchlib/table.h"

int main() {
  using namespace ifls;
  const BenchScale scale = BenchScale::FromEnv();
  std::printf(
      "# E3 / Figures 7a+8a: synthetic setting, effect of |C| "
      "(scale=%s, clients/%zu, %d repeats)\n\n",
      scale.name.c_str(), scale.client_divisor, scale.repeats);
  VenueCache cache;
  for (VenuePreset preset : AllVenuePresets()) {
    const Venue& venue = cache.venue(preset, false);
    const VipTree& tree = cache.tree(preset, false);
    const ParameterGrid grid = PresetParameterGrid(preset);
    std::printf("-- %s (|Fe|=%zu, |Fn|=%zu) --\n", VenuePresetName(preset),
                grid.default_existing, grid.default_candidates);
    TextTable table({"|C|", "EA time (s)", "Base time (s)", "speedup",
                     "EA mem (MB)", "Base mem (MB)"});
    for (std::size_t clients : ClientSizeSweep()) {
      WorkloadSpec spec;
      spec.preset = preset;
      spec.num_existing = grid.default_existing;
      spec.num_candidates = grid.default_candidates;
      spec.num_clients = scale.Clients(clients);
      const PairedAggregate agg = RunPaired(venue, tree, spec, scale.repeats);
      table.AddRow({TextTable::Int(static_cast<long long>(spec.num_clients)),
                    TextTable::Num(agg.efficient.mean_time_seconds),
                    TextTable::Num(agg.baseline.mean_time_seconds),
                    TextTable::Num(agg.speedup),
                    TextTable::Num(agg.efficient.mean_memory_mb),
                    TextTable::Num(agg.baseline.mean_memory_mb)});
    }
    table.Print(&std::cout);
    std::printf("\n");
  }
  return 0;
}
