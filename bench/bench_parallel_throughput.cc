// Experiment P1 — batch query throughput vs worker count. A fixed mixed
// batch (MinMax / MinDist / MaxSum over synthetic Melbourne Central) is
// replayed through BatchQueryEngine at 1, 2, 4 and 8 threads; the table
// reports wall time, queries/sec and speedup over the 1-thread run. Every
// multi-threaded run is differential-checked against the sequential
// answers before its row is printed — a speedup is only reported for
// bit-identical results.
//
// Scaling is hardware-dependent: the speedup column tops out near the
// machine's physical core count (on a 1-core container every row is ~1x;
// the engine still must stay correct there).

#include <cstdio>
#include <iostream>
#include <thread>

#include "src/benchlib/harness.h"
#include "src/benchlib/table.h"
#include "src/core/batch_engine.h"

int main() {
  using namespace ifls;
  const BenchScale scale = BenchScale::FromEnv();
  std::printf(
      "# P1: batch throughput vs threads (MC synthetic, scale=%s, "
      "hardware threads=%u)\n\n",
      scale.name.c_str(), std::thread::hardware_concurrency());

  VenueCache cache;
  const Venue& venue = cache.venue(VenuePreset::kMelbourneCentral, false);
  const VipTree& tree = cache.tree(VenuePreset::kMelbourneCentral, false);
  const ParameterGrid grid =
      PresetParameterGrid(VenuePreset::kMelbourneCentral);

  WorkloadSpec spec;
  spec.preset = VenuePreset::kMelbourneCentral;
  spec.num_existing = grid.default_existing;
  spec.num_candidates = grid.default_candidates;
  spec.num_clients = scale.Clients(kDefaultClients);

  // One shared batch of independent workloads; objectives round-robin
  // MinMax/MinDist/MaxSum so the work mix is skewed like real batches.
  std::vector<BatchQuery> batch;
  const int num_workloads = 12 * scale.repeats;
  for (int r = 0; r < num_workloads; ++r) {
    Rng rng(1 + static_cast<std::uint64_t>(r));
    IflsContext ctx;
    ctx.oracle = &tree;
    Result<FacilitySets> sets = MakeFacilities(venue, spec, &rng);
    if (!sets.ok()) {
      std::fprintf(stderr, "%s\n", sets.status().ToString().c_str());
      return 1;
    }
    ctx.existing = sets->existing;
    ctx.candidates = sets->candidates;
    ctx.clients = MakeClients(venue, spec, &rng);
    const IflsObjective objective =
        r % 3 == 0 ? IflsObjective::kMinMax
                   : (r % 3 == 1 ? IflsObjective::kMinDist
                                 : IflsObjective::kMaxSum);
    batch.push_back(BatchQuery{objective, std::move(ctx)});
  }
  std::printf(
      "batch: %zu queries (objectives round-robin MinMax/MinDist/MaxSum)\n\n",
      batch.size());

  // Sequential reference answers (and the 1-thread baseline row).
  BatchQueryEngine reference{BatchEngineOptions{}};
  const std::vector<BatchQueryOutcome> truth =
      reference.RunSequential(batch);
  const double seq_qps = reference.last_report().queries_per_second;

  TextTable table({"threads", "wall (s)", "queries/s", "speedup vs 1",
                   "identical", "failed"});
  for (int threads : {1, 2, 4, 8}) {
    BatchEngineOptions opts;
    opts.num_threads = threads;
    BatchQueryEngine engine(opts);
    const std::vector<BatchQueryOutcome> outcomes = engine.Run(batch);
    const BatchRunReport& report = engine.last_report();

    bool identical = outcomes.size() == truth.size();
    for (std::size_t i = 0; identical && i < truth.size(); ++i) {
      identical = outcomes[i].status.ok() == truth[i].status.ok() &&
                  outcomes[i].result.found == truth[i].result.found &&
                  outcomes[i].result.answer == truth[i].result.answer &&
                  outcomes[i].result.objective == truth[i].result.objective;
    }
    table.AddRow({TextTable::Int(threads), TextTable::Num(report.wall_seconds),
                  TextTable::Num(report.queries_per_second),
                  TextTable::Num(seq_qps > 0.0
                                     ? report.queries_per_second / seq_qps
                                     : 0.0),
                  identical ? "yes" : "NO",
                  TextTable::Int(static_cast<long long>(report.num_failed))});
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: %d-thread run diverged from sequential answers\n",
                   threads);
      return 1;
    }
  }
  table.Print(&std::cout);
  return 0;
}
