// Cost of the tracing instrumentation (src/common/trace.h) on solver
// throughput, measured per objective at 1 and 8 threads in three modes:
//
//   disabled   — tracing off: every TraceSpan construction is one relaxed
//                atomic load (the steady-state production configuration);
//   sampled_16 — tracing on with 1-in-16 query sampling (the recommended
//                always-on setting);
//   full       — tracing on, every query sampled (worst case: every span
//                through solver, oracle and cache layers hits the ring).
//
// Every traced answer is differential-checked bit-identical to the disabled
// run — spans must never perturb the computation. When the committed
// BENCH_solver_throughput.json (the PR that introduced SIMD kernels + the
// sharded cache) is present in the working directory, its per-objective
// "after_qps" figures are parsed back in and the disabled-mode delta against
// that baseline is reported, locking in the "<2% when off" budget.
//
// A second, networked phase (report v2, DESIGN.md §15) runs the same
// measurement end to end over the wire server: client-side RPC spans, the
// trace-context frame extension, server-side context adoption and the
// per-query cost ledger all engaged, at three sampling settings — off
// (context-free frames, the steady-state config), 1-in-64, and full. The
// "off" row quantifies the cost of the always-on ledger plus the disabled
// trace checks; the sampled rows price the propagation machinery itself.
//
// Writes BENCH_trace_overhead.json (shared schema, src/benchlib).
// Scale via IFLS_BENCH_SCALE=smoke|default|full.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/benchlib/harness.h"
#include "src/benchlib/json_report.h"
#include "src/benchlib/table.h"
#include "src/common/logging.h"
#include "src/common/stopwatch.h"
#include "src/common/trace.h"
#include "src/core/solve_dispatch.h"
#include "src/datasets/client_generator.h"
#include "src/datasets/facility_selector.h"
#include "src/datasets/presets.h"
#include "src/datasets/workload.h"
#include "src/index/vip_tree.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/service/service.h"

namespace ifls {
namespace {

struct TraceMode {
  const char* name;
  bool enabled = false;
  std::uint32_t sample_every = 1;
};

constexpr TraceMode kModes[] = {
    {"disabled", false, 1},
    {"sampled_16", true, 16},
    {"full", true, 1},
};

/// Runs every context through SolveWithObjective on `threads` workers, each
/// query under its own TraceIdScope (the same per-query attribution the
/// service installs), and returns wall-clock queries/sec. Answers land in
/// `results` by query index regardless of completion order.
double RunQueries(const std::vector<IflsContext>& queries,
                  IflsObjective objective, int threads,
                  std::vector<IflsResult>* results) {
  results->assign(queries.size(), IflsResult{});
  std::atomic<std::size_t> next{0};
  TraceRecorder& recorder = TraceRecorder::Global();
  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= queries.size()) return;
        std::uint64_t trace_id = 0;
        bool sampled = false;
        if (TraceEnabled()) {
          trace_id = recorder.NewTraceId();
          sampled = recorder.Sampled(trace_id);
        }
        TraceIdScope scope(trace_id, sampled);
        TraceSpan span(TraceCategory::kService, "bench_query");
        Result<IflsResult> solved = SolveWithObjective(objective, queries[i]);
        IFLS_CHECK(solved.ok()) << solved.status().ToString();
        (*results)[i] = std::move(solved).value();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double seconds = watch.ElapsedSeconds();
  return seconds > 0.0 ? static_cast<double>(queries.size()) / seconds : 0.0;
}

struct OverheadRow {
  std::string objective;
  int threads = 0;
  double qps[3] = {0.0, 0.0, 0.0};  // by kModes index
  double OverheadPct(int mode) const {
    return qps[0] > 0.0 ? (qps[0] / qps[mode] - 1.0) * 100.0 : 0.0;
  }
};

/// Pulls {objective, threads} -> after_qps out of the committed
/// BENCH_solver_throughput.json with a line scanner (the rows are one
/// key per line, so full JSON parsing is unnecessary). Empty on any miss.
std::vector<std::pair<std::string, double>> LoadBaselineQps(
    const std::string& path) {
  std::vector<std::pair<std::string, double>> baseline;
  std::ifstream in(path);
  if (!in) return baseline;
  std::string line;
  std::string objective;
  int threads = -1;
  const auto value_after = [&line](const char* key) -> std::string {
    const std::size_t pos = line.find(key);
    if (pos == std::string::npos) return "";
    std::string v = line.substr(pos + std::string(key).size());
    while (!v.empty() && (v.back() == ',' || v.back() == ' ')) v.pop_back();
    return v;
  };
  while (std::getline(in, line)) {
    if (std::string v = value_after("\"objective\": \""); !v.empty()) {
      objective = v.substr(0, v.find('"'));
    } else if (std::string v = value_after("\"threads\": "); !v.empty()) {
      threads = std::atoi(v.c_str());
    } else if (std::string v = value_after("\"after_qps\": "); !v.empty()) {
      if (!objective.empty() && threads > 0) {
        baseline.emplace_back(objective + "/" + std::to_string(threads),
                              std::strtod(v.c_str(), nullptr));
      }
    }
  }
  return baseline;
}

// ------------------------------------------------------- networked phase

struct NetModeRow {
  std::string mode;
  double qps = 0.0;
  double overhead_pct = 0.0;  // vs the "off" row
};

/// One query of the networked pool with its in-process ground truth.
struct NetPoolEntry {
  IflsObjective objective = IflsObjective::kMinMax;
  WireQueryRequest request;
  IflsResult expected;
};

/// Drives `threads` connections of blocking RPCs over the query pool, each
/// query under the same mint-id/scope idiom `ifls_cli trace --remote` uses
/// (so sampled modes attach the trace-context frame extension and the server
/// adopts it). Returns wall-clock queries/sec; clears `identical` on any
/// answer that diverges from the in-process ground truth.
double RunNetworkedQueries(std::uint16_t port,
                           const std::vector<NetPoolEntry>& pool, int threads,
                           std::size_t queries_per_thread, bool* identical) {
  std::vector<std::unique_ptr<IflsClient>> clients;
  for (int t = 0; t < threads; ++t) {
    Result<std::unique_ptr<IflsClient>> client = IflsClient::Connect(port);
    IFLS_CHECK(client.ok()) << client.status().ToString();
    clients.push_back(std::move(*client));
  }
  TraceRecorder& recorder = TraceRecorder::Global();
  std::atomic<bool> all_identical{true};
  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t q = 0; q < queries_per_thread; ++q) {
        const NetPoolEntry& entry =
            pool[(static_cast<std::size_t>(t) * queries_per_thread + q) %
                 pool.size()];
        std::uint64_t trace_id = 0;
        bool sampled = false;
        if (TraceEnabled()) {
          trace_id = recorder.NewTraceId();
          sampled = recorder.Sampled(trace_id);
        }
        TraceIdScope scope(trace_id, sampled);
        Result<WireQueryResponse> response =
            clients[static_cast<std::size_t>(t)]->Query(entry.objective,
                                                        entry.request);
        IFLS_CHECK(response.ok()) << response.status().ToString();
        if (response->found != entry.expected.found ||
            response->answer != entry.expected.answer ||
            response->objective != entry.expected.objective) {
          all_identical.store(false, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double seconds = watch.ElapsedSeconds();
  if (!all_identical.load()) *identical = false;
  const std::size_t total =
      static_cast<std::size_t>(threads) * queries_per_thread;
  return seconds > 0.0 ? static_cast<double>(total) / seconds : 0.0;
}

int Main() {
  const BenchScale scale = BenchScale::FromEnv();
  std::printf("# tracing overhead on solver throughput (scale=%s)\n\n",
              scale.name.c_str());

  VenueCache venue_cache;
  const Venue& venue = venue_cache.venue(VenuePreset::kMelbourneCentral, false);
  const ParameterGrid grid =
      PresetParameterGrid(VenuePreset::kMelbourneCentral);

  // Serving configuration: door cache on, exactly what IflsService runs.
  VipTreeOptions tree_opts;
  tree_opts.enable_door_distance_cache = true;
  Result<VipTree> tree = VipTree::Build(&venue, tree_opts);
  IFLS_CHECK(tree.ok()) << tree.status().ToString();

  WorkloadSpec spec;
  spec.preset = VenuePreset::kMelbourneCentral;
  spec.num_existing = grid.default_existing;
  spec.num_candidates = grid.default_candidates;
  spec.num_clients = scale.Clients(kDefaultClients);
  const int workloads = 8 * scale.repeats;

  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Disable();
  recorder.Clear();

  const IflsObjective objectives[3] = {IflsObjective::kMinMax,
                                       IflsObjective::kMinDist,
                                       IflsObjective::kMaxSum};
  std::vector<OverheadRow> rows;
  bool all_identical = true;
  for (const IflsObjective objective : objectives) {
    std::vector<IflsContext> queries;
    for (int r = 0; r < workloads; ++r) {
      Rng rng(100 + static_cast<std::uint64_t>(r));
      IflsContext ctx;
      Result<FacilitySets> sets = MakeFacilities(venue, spec, &rng);
      IFLS_CHECK(sets.ok()) << sets.status().ToString();
      ctx.existing = std::move(sets->existing);
      ctx.candidates = std::move(sets->candidates);
      ctx.clients = MakeClients(venue, spec, &rng);
      ctx.oracle = &*tree;
      queries.push_back(std::move(ctx));
    }

    // One warm pass so the door cache reaches steady state before any mode
    // is timed (cold fills would bias whichever mode runs first).
    std::vector<IflsResult> warm;
    (void)RunQueries(queries, objective, 1, &warm);

    for (const int threads : {1, 8}) {
      OverheadRow row;
      row.objective = IflsObjectiveName(objective);
      row.threads = threads;
      std::vector<IflsResult> reference;  // disabled-mode answers
      for (int m = 0; m < 3; ++m) {
        if (kModes[m].enabled) {
          recorder.Enable(kModes[m].sample_every);
        } else {
          recorder.Disable();
        }
        recorder.Clear();
        std::vector<IflsResult> results;
        row.qps[m] = RunQueries(queries, objective, threads, &results);
        recorder.Disable();
        if (m == 0) {
          reference = std::move(results);
          continue;
        }
        // Bit-identity: tracing must never change an answer.
        for (std::size_t i = 0; i < results.size(); ++i) {
          if (results[i].found != reference[i].found ||
              results[i].answer != reference[i].answer ||
              results[i].objective != reference[i].objective) {
            all_identical = false;
            std::fprintf(stderr,
                         "FATAL: %s/%dt/%s diverged from disabled on "
                         "query %zu\n",
                         row.objective.c_str(), threads, kModes[m].name, i);
          }
        }
      }
      rows.push_back(row);
    }
  }

  TextTable table({"objective", "threads", "disabled q/s", "sampled_16 q/s",
                   "full q/s", "sampled ovh %", "full ovh %"});
  for (const OverheadRow& row : rows) {
    table.AddRow({row.objective, TextTable::Int(row.threads),
                  TextTable::Num(row.qps[0]), TextTable::Num(row.qps[1]),
                  TextTable::Num(row.qps[2]), TextTable::Num(row.OverheadPct(1)),
                  TextTable::Num(row.OverheadPct(2))});
  }
  table.Print(&std::cout);
  std::printf("\n");

  // Disabled-mode delta vs the committed SIMD-kernel PR baseline, when that
  // report is around to compare against (same machine assumed; the budget
  // is <2% on matched hardware).
  const std::vector<std::pair<std::string, double>> baseline =
      LoadBaselineQps(BenchReportPath("solver_throughput"));
  double worst_vs_baseline_pct = 0.0;
  bool have_baseline = false;
  std::vector<std::pair<std::string, double>> baseline_deltas;
  for (const OverheadRow& row : rows) {
    const std::string key =
        row.objective + "/" + std::to_string(row.threads);
    for (const auto& [bkey, bqps] : baseline) {
      if (bkey != key || bqps <= 0.0) continue;
      const double pct = (bqps / row.qps[0] - 1.0) * 100.0;
      baseline_deltas.emplace_back(key, pct);
      worst_vs_baseline_pct = std::max(worst_vs_baseline_pct, pct);
      have_baseline = true;
      std::printf("vs solver_throughput baseline %-10s %8.2f q/s -> "
                  "%8.2f q/s (%+.2f%%)\n",
                  key.c_str(), bqps, row.qps[0], -pct);
    }
  }
  if (!have_baseline) {
    std::printf("(no BENCH_solver_throughput.json in cwd; baseline "
                "comparison skipped)\n");
  }

  // ---------------------------------------------------- networked phase
  // End-to-end over the wire server: RPC spans, the trace-context frame
  // extension, server-side adoption and the cost ledger all in the loop.
  // Coalescing is off — per-query context adoption lives on the admission
  // path, the same configuration `ifls_cli serve --no-coalesce` documents
  // for merged traces.
  std::printf("\n# networked: propagation + ledger over the wire server\n\n");
  Result<Venue> net_venue = BuildPresetVenue(VenuePreset::kMelbourneCentral);
  IFLS_CHECK(net_venue.ok()) << net_venue.status().ToString();
  Rng net_rng(4242);
  Result<FacilitySets> net_sets = SelectUniformFacilities(
      *net_venue, grid.default_existing, grid.default_candidates, &net_rng);
  IFLS_CHECK(net_sets.ok()) << net_sets.status().ToString();
  const std::vector<Client> net_clients =
      GenerateClients(*net_venue, 4096, {}, &net_rng);

  ServiceOptions net_service_options;
  net_service_options.num_workers = 4;
  net_service_options.queue_capacity = 4096;
  net_service_options.venue_label = "bench";
  Result<std::unique_ptr<IflsService>> net_built =
      IflsService::Create(std::move(*net_venue), net_sets->existing,
                          net_sets->candidates, net_service_options);
  IFLS_CHECK(net_built.ok()) << net_built.status().ToString();
  std::shared_ptr<IflsService> net_service = std::move(*net_built);

  constexpr std::size_t kPoolSize = 12;
  constexpr std::size_t kClientsPerQuery = 32;
  std::vector<NetPoolEntry> pool;
  for (std::size_t q = 0; q < kPoolSize; ++q) {
    NetPoolEntry entry;
    entry.objective = objectives[q % 3];
    const std::size_t start =
        net_rng.NextBounded(net_clients.size() - kClientsPerQuery);
    entry.request.clients.assign(
        net_clients.begin() + static_cast<std::ptrdiff_t>(start),
        net_clients.begin() +
            static_cast<std::ptrdiff_t>(start + kClientsPerQuery));
    ServiceRequest request;
    request.objective = entry.objective;
    request.clients = entry.request.clients;
    const ServiceReply reply = net_service->Query(std::move(request));
    IFLS_CHECK(reply.status.ok()) << reply.status.ToString();
    entry.expected = reply.result;
    pool.push_back(std::move(entry));
  }

  ServerOptions net_server_options;
  net_server_options.coalesce_batches = false;
  net_server_options.num_dispatchers = 2;
  net_server_options.dispatch_queue_capacity = 4096;
  Result<std::unique_ptr<IflsServer>> net_server =
      IflsServer::Create(net_service, net_server_options);
  IFLS_CHECK(net_server.ok()) << net_server.status().ToString();

  const int net_threads = 4;
  const std::size_t net_queries_per_thread =
      (scale.name == "smoke" ? 50u : 250u) *
      static_cast<std::size_t>(scale.repeats);
  constexpr TraceMode kNetModes[] = {
      {"off", false, 1},
      {"sampled_64", true, 64},
      {"full", true, 1},
  };
  std::vector<NetModeRow> net_rows;
  {
    // Warm pass: door cache + connection setup out of the timed region.
    bool warm_identical = true;
    recorder.Disable();
    (void)RunNetworkedQueries((*net_server)->port(), pool, net_threads, 25,
                              &warm_identical);
    for (const TraceMode& mode : kNetModes) {
      if (mode.enabled) {
        recorder.Enable(mode.sample_every);
      } else {
        recorder.Disable();
      }
      recorder.Clear();
      NetModeRow row;
      row.mode = mode.name;
      row.qps = RunNetworkedQueries((*net_server)->port(), pool, net_threads,
                                    net_queries_per_thread, &all_identical);
      recorder.Disable();
      if (!net_rows.empty() && row.qps > 0.0) {
        row.overhead_pct = (net_rows.front().qps / row.qps - 1.0) * 100.0;
      }
      net_rows.push_back(std::move(row));
    }
  }
  TextTable net_table({"mode", "rpc q/s", "overhead % vs off"});
  for (const NetModeRow& row : net_rows) {
    net_table.AddRow({row.mode, TextTable::Num(row.qps),
                      TextTable::Num(row.overhead_pct)});
  }
  net_table.Print(&std::cout);
  std::printf("\n");
  (*net_server)->Stop();
  net_service->Stop();

  const Status written = WriteBenchReport("trace_overhead", [&](JsonWriter& w) {
    w.Field("schema_version", 2);
    w.Field("scale", scale.name);
    w.Field("venue",
            std::string(VenuePresetName(VenuePreset::kMelbourneCentral)));
    w.Field("modes", "disabled | sampled_16 | full");
    w.Key("throughput");
    w.BeginArray();
    for (const OverheadRow& row : rows) {
      w.BeginObject();
      w.Field("objective", row.objective);
      w.Field("threads", row.threads);
      w.Field("disabled_qps", row.qps[0]);
      w.Field("sampled_16_qps", row.qps[1]);
      w.Field("full_qps", row.qps[2]);
      w.Field("sampled_16_overhead_pct", row.OverheadPct(1));
      w.Field("full_overhead_pct", row.OverheadPct(2));
      w.EndObject();
    }
    w.EndArray();
    w.Field("answers_bit_identical", all_identical);
    w.Field("baseline_report", std::string("BENCH_solver_throughput.json"));
    w.Field("baseline_present", have_baseline);
    w.Key("disabled_vs_baseline");
    w.BeginArray();
    for (const auto& [key, pct] : baseline_deltas) {
      w.BeginObject();
      w.Field("config", key);
      w.Field("baseline_minus_disabled_pct", pct);
      w.EndObject();
    }
    w.EndArray();
    if (have_baseline) {
      w.Field("worst_disabled_vs_baseline_pct", worst_vs_baseline_pct);
    }
    w.Key("networked");
    w.BeginArray();
    for (const NetModeRow& row : net_rows) {
      w.BeginObject();
      w.Field("mode", row.mode);
      w.Field("rpc_qps", row.qps);
      w.Field("overhead_pct_vs_off", row.overhead_pct);
      w.EndObject();
    }
    w.EndArray();
    w.Field("networked_threads", net_threads);
    w.Field("networked_queries_per_thread", net_queries_per_thread);
    w.Field("networked_clients_per_query", kClientsPerQuery);
  });
  IFLS_CHECK(written.ok()) << written.ToString();
  std::cerr << "wrote " << BenchReportPath("trace_overhead") << "\n";

  if (!all_identical) return 1;
  return 0;
}

}  // namespace
}  // namespace ifls

int main() { return ifls::Main(); }
