// ifls_cli — command-line front end for the library, working on the text
// formats of src/io. Subcommands:
//
//   gen-venue    --preset MC|CH|CPH|MZB [--categories] --out FILE
//   gen-workload --venue FILE (--existing N --candidates N | --category C)
//                --clients N [--normal SIGMA] [--seed S] --out FILE
//   solve        --venue FILE --workload FILE
//                [--algorithm efficient|baseline|brute|mindist|maxsum]
//                [--top-k K] [--stats]
//   info         --venue FILE
//   render       --venue FILE [--workload FILE] [--level L] --out FILE.svg
//   trace        --preset MC|CH|CPH|MZB [--existing N] [--candidates N]
//                [--clients N] [--queries N] [--workers N] [--sample N]
//                [--slow-ms MS] [--seed S] [--metrics] --out FILE.trace.json
//   trace        --remote [HOST:]PORT [--preset MC|CH|CPH|MZB] [--queries N]
//                [--clients N] [--sample N] [--seed S] --out FILE.trace.json
//   subscribe    --preset MC|CH|CPH|MZB [--existing N] [--candidates N]
//                [--subs N] [--clients N] [--ticks N] [--tolerance T]
//                [--workers N] [--seed S] [--metrics]
//   fleet        --dir DIR [--build] [--venues N] [--rooms N] [--levels N]
//                [--existing N] [--candidates N] [--clients N] [--queries N]
//                [--budget-mb MB] [--max-resident N] [--workers N]
//                [--parse-load] [--seed S] [--metrics]
//   serve        [--preset MC|CH|CPH|MZB] [--port P] [--workers N]
//                [--existing N] [--candidates N] [--no-coalesce]
//                [--smoke N] [--seed S] [--metrics]
//   bench-net    [--preset MC|CH|CPH|MZB] [--connections N] [--threads N]
//                [--pipeline D] [--queries N] [--clients N] [--distinct N]
//                [--workers N] [--dispatchers N] [--no-coalesce] [--seed S]
//
// `trace` runs a traced IflsService session (queries across all three
// objectives, a facility-mutation + compaction cycle, and a graph-oracle
// differential solve) and exports the spans as Chrome trace-event JSON for
// Perfetto / chrome://tracing. --metrics additionally prints the Prometheus
// text exposition of the telemetry registry.
//
// `trace --remote` instead runs a traced client session against a live
// `ifls_cli serve` process (DESIGN.md §15): it estimates the client/server
// clock offset from timestamped pings, issues traced queries whose frames
// carry the trace context, pulls the server's trace half over the wire, and
// writes ONE merged Chrome timeline — client RPC spans (pid 1) over server
// queue/solve/oracle spans (pid 2) under the same trace ids. The --preset
// and --seed must match the serve invocation (the client pool is
// regenerated locally and must be valid in the server's venue). Start the
// server with --no-coalesce: per-query server spans are recorded on the
// admission path, which coalesced batches bypass.
//
// `subscribe` registers standing IFLS queries over trajectory-driven
// crowds, drives ticks plus a candidate-mutation/compaction cycle through
// the service, and prints every push as it is delivered: a line appears
// only when a move or mutation actually invalidated a standing answer
// beyond the tolerance — certified-fresh events are skipped silently.
//
// `fleet` is the multi-venue serving demo (DESIGN.md §12). With --build it
// first generates N distinct synthetic venues, builds their VIP-trees and
// writes a fleet snapshot directory (v3 mmap images + v2 text + facility
// sets) under --dir. It then opens a VenueRouter over the directory —
// optionally under a resident-memory budget (--budget-mb / --max-resident,
// which force LRU eviction of cold venues) or in --parse-load mode (v2
// text parsing instead of zero-copy mmap) — and round-robins queries
// across the whole fleet, printing per-venue residency and router totals.
//
// `serve` starts the binary wire-protocol server (DESIGN.md §13) over a
// preset-backed service on a loopback TCP port (--port 0 picks one and
// prints it) and serves until SIGINT/SIGTERM. --smoke N instead runs an
// N-query loopback self-test — every wire answer differentially checked
// against the same in-process service — and exits, which is what CI runs.
//
// `bench-net` is the command-line front end of the network load generator:
// N concurrent loopback connections replay a pool of pre-answered queries
// against a fresh server and every response is verified bit-identically.
// See bench/bench_network_throughput.cc for the JSON-reporting variant.
//
// Exit code 0 on success, 1 on any error (message on stderr).

#include <csignal>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/metrics_registry.h"
#include "src/common/trace.h"
#include "src/core/brute_force.h"
#include "src/core/efficient.h"
#include "src/core/maxsum.h"
#include "src/core/mindist.h"
#include "src/core/minmax_baseline.h"
#include "src/datasets/presets.h"
#include "src/datasets/trajectory_generator.h"
#include "src/datasets/venue_generator.h"
#include "src/datasets/workload.h"
#include "src/index/graph_oracle.h"
#include "src/index/minplus_kernels.h"
#include "src/index/vip_tree.h"
#include "src/io/svg_export.h"
#include "src/io/venue_io.h"
#include "src/io/workload_io.h"
#include "src/net/client.h"
#include "src/net/load_gen.h"
#include "src/net/server.h"
#include "src/net/wire.h"
#include "src/service/fleet_store.h"
#include "src/service/service.h"
#include "src/service/venue_router.h"

namespace ifls {
namespace {

/// Tiny flag parser: --name value pairs plus boolean --name flags.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", argv[i]);
        ok_ = false;
        return;
      }
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::optional<std::string> Get(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  std::string GetOr(const std::string& key, const std::string& fallback) const {
    return Get(key).value_or(fallback);
  }
  long GetInt(const std::string& key, long fallback) const {
    auto v = Get(key);
    return v.has_value() ? std::strtol(v->c_str(), nullptr, 10) : fallback;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto v = Get(key);
    return v.has_value() ? std::strtod(v->c_str(), nullptr) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Fail(const char* message) {
  std::fprintf(stderr, "error: %s\n", message);
  return 1;
}

std::optional<VenuePreset> ParsePreset(const std::string& name) {
  for (VenuePreset preset : AllVenuePresets()) {
    if (name == VenuePresetName(preset)) return preset;
  }
  return std::nullopt;
}

int GenVenue(const Args& args) {
  const auto preset_name = args.Get("preset");
  const auto out = args.Get("out");
  if (!preset_name || !out) return Fail("gen-venue needs --preset and --out");
  const auto preset = ParsePreset(*preset_name);
  if (!preset) return Fail("unknown preset (use MC, CH, CPH or MZB)");
  Result<Venue> venue = BuildPresetVenue(*preset);
  if (!venue.ok()) return Fail(venue.status());
  if (args.Has("categories")) {
    if (*preset != VenuePreset::kMelbourneCentral) {
      return Fail("--categories is defined for MC only");
    }
    if (Status s = AssignMelbourneCentralCategories(&venue.value()); !s.ok()) {
      return Fail(s);
    }
  }
  if (Status s = SaveVenueToFile(*venue, *out); !s.ok()) return Fail(s);
  std::printf("wrote %s: %s\n", out->c_str(), venue->ToString().c_str());
  return 0;
}

int GenWorkload(const Args& args) {
  const auto venue_path = args.Get("venue");
  const auto out = args.Get("out");
  if (!venue_path || !out) {
    return Fail("gen-workload needs --venue and --out");
  }
  Result<Venue> venue = LoadVenueFromFile(*venue_path);
  if (!venue.ok()) return Fail(venue.status());
  Rng rng(static_cast<std::uint64_t>(args.GetInt("seed", 1)));

  WorkloadData data;
  if (args.Has("category")) {
    Result<FacilitySets> sets =
        SelectCategoryFacilities(*venue, args.GetOr("category", ""));
    if (!sets.ok()) return Fail(sets.status());
    data.facilities = std::move(sets).value();
  } else {
    Result<FacilitySets> sets = SelectUniformFacilities(
        *venue, static_cast<std::size_t>(args.GetInt("existing", 10)),
        static_cast<std::size_t>(args.GetInt("candidates", 20)), &rng);
    if (!sets.ok()) return Fail(sets.status());
    data.facilities = std::move(sets).value();
  }
  ClientGeneratorOptions copts;
  if (args.Has("normal")) {
    copts.distribution = ClientDistribution::kNormal;
    copts.sigma = args.GetDouble("normal", 1.0);
  }
  data.clients = GenerateClients(
      *venue, static_cast<std::size_t>(args.GetInt("clients", 1000)), copts,
      &rng);
  if (Status s = SaveWorkloadToFile(data, *out); !s.ok()) return Fail(s);
  std::printf("wrote %s: |Fe|=%zu |Fn|=%zu |C|=%zu\n", out->c_str(),
              data.facilities.existing.size(),
              data.facilities.candidates.size(), data.clients.size());
  return 0;
}

int Solve(const Args& args) {
  const auto venue_path = args.Get("venue");
  const auto workload_path = args.Get("workload");
  if (!venue_path || !workload_path) {
    return Fail("solve needs --venue and --workload");
  }
  Result<Venue> venue = LoadVenueFromFile(*venue_path);
  if (!venue.ok()) return Fail(venue.status());
  Result<WorkloadData> workload = LoadWorkloadFromFile(*workload_path);
  if (!workload.ok()) return Fail(workload.status());
  Result<VipTree> tree = VipTree::Build(&venue.value());
  if (!tree.ok()) return Fail(tree.status());

  IflsContext ctx;
  ctx.oracle = &tree.value();
  ctx.existing = workload->facilities.existing;
  ctx.candidates = workload->facilities.candidates;
  ctx.clients = workload->clients;

  const std::string algorithm = args.GetOr("algorithm", "efficient");
  const int top_k = static_cast<int>(args.GetInt("top-k", 1));
  Result<IflsResult> result = Status::Internal("unset");
  if (algorithm == "efficient") {
    EfficientOptions options;
    options.top_k = top_k;
    result = SolveEfficient(ctx, options);
  } else if (algorithm == "baseline") {
    result = SolveModifiedMinMax(ctx);
  } else if (algorithm == "brute") {
    result = top_k > 1 ? SolveBruteForceTopKMinMax(ctx, top_k)
                       : SolveBruteForceMinMax(ctx);
  } else if (algorithm == "mindist") {
    result = SolveMinDist(ctx);
  } else if (algorithm == "maxsum") {
    result = SolveMaxSum(ctx);
  } else {
    return Fail("unknown --algorithm");
  }
  if (!result.ok()) return Fail(result.status());

  if (!result->found) {
    std::printf("no candidate improves the objective\n");
  } else if (!result->ranked.empty()) {
    for (std::size_t i = 0; i < result->ranked.size(); ++i) {
      std::printf("#%zu: partition %d (objective %.4f)\n", i + 1,
                  result->ranked[i].first, result->ranked[i].second);
    }
  } else {
    std::printf("answer: partition %d (objective %.4f)\n", result->answer,
                result->objective);
  }
  if (args.Has("stats")) {
    std::printf("%s\n", result->stats.ToString().c_str());
  }
  return 0;
}

int Info(const Args& args) {
  const auto venue_path = args.Get("venue");
  if (!venue_path) return Fail("info needs --venue");
  Result<Venue> venue = LoadVenueFromFile(*venue_path);
  if (!venue.ok()) return Fail(venue.status());
  std::printf("%s\n", venue->ToString().c_str());
  Result<VipTree> tree = VipTree::Build(&venue.value());
  if (!tree.ok()) return Fail(tree.status());
  std::printf("%s\n", tree->ToString().c_str());
  std::map<std::string, int> categories;
  for (const Partition& p : venue->partitions()) {
    if (!p.category.empty()) ++categories[p.category];
  }
  for (const auto& [name, count] : categories) {
    std::printf("  category '%s': %d partitions\n", name.c_str(), count);
  }
  return 0;
}

int Render(const Args& args) {
  const auto venue_path = args.Get("venue");
  const auto out = args.Get("out");
  if (!venue_path || !out) return Fail("render needs --venue and --out");
  Result<Venue> venue = LoadVenueFromFile(*venue_path);
  if (!venue.ok()) return Fail(venue.status());
  SvgOptions options;
  options.level = static_cast<Level>(args.GetInt("level", 0));
  options.label_partitions = args.Has("labels");
  if (args.Has("workload")) {
    Result<WorkloadData> workload =
        LoadWorkloadFromFile(args.GetOr("workload", ""));
    if (!workload.ok()) return Fail(workload.status());
    options.existing_facilities = workload->facilities.existing;
    options.candidate_locations = workload->facilities.candidates;
    options.clients = workload->clients;
  }
  if (Status s = RenderLevelSvgToFile(*venue, options, *out); !s.ok()) {
    return Fail(s);
  }
  std::printf("wrote %s\n", out->c_str());
  return 0;
}

/// `trace --remote`: a traced client session against a live server, merged
/// into one Chrome timeline. See the usage comment at the top of the file.
int TraceRemote(const Args& args) {
  const auto out = args.Get("out");
  if (!out) return Fail("trace needs --out");
  const std::string remote = args.GetOr("remote", "");
  const std::size_t colon = remote.rfind(':');
  const std::string port_text =
      colon == std::string::npos ? remote : remote.substr(colon + 1);
  const long port = std::strtol(port_text.c_str(), nullptr, 10);
  if (port <= 0 || port > 65535) {
    return Fail("trace --remote needs [HOST:]PORT (loopback serving only)");
  }
  const auto preset = ParsePreset(args.GetOr("preset", "MC"));
  if (!preset) return Fail("unknown preset (use MC, CH, CPH or MZB)");
  const int queries = static_cast<int>(args.GetInt("queries", 9));
  if (queries < 1) return Fail("--queries must be >= 1");

  // The client pool must lie inside the server's venue; preset + seed
  // rebuild it bit-identically to what `serve` constructed.
  Result<Venue> venue = BuildPresetVenue(*preset);
  if (!venue.ok()) return Fail(venue.status());
  Rng rng(static_cast<std::uint64_t>(args.GetInt("seed", 1)) ^ 0x51ed2701u);
  const std::vector<Client> clients = GenerateClients(
      *venue, static_cast<std::size_t>(args.GetInt("clients", 64)), {}, &rng);

  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.Enable(static_cast<std::uint32_t>(args.GetInt("sample", 1)));

  Result<std::unique_ptr<IflsClient>> client =
      IflsClient::Connect(static_cast<std::uint16_t>(port));
  if (!client.ok()) return Fail(client.status());

  // Timestamped pings pin the server's trace clock to ours before any
  // query traffic disturbs the loop thread.
  Result<std::int64_t> offset = (*client)->EstimateClockOffset();
  if (!offset.ok()) return Fail(offset.status());

  const IflsObjective kObjectives[] = {
      IflsObjective::kMinMax, IflsObjective::kMinDist, IflsObjective::kMaxSum};
  int sampled_queries = 0;
  for (int i = 0; i < queries; ++i) {
    WireQueryRequest request;
    request.clients = clients;
    // One trace id per RPC; the scope makes IflsClient::Query attach the
    // context to the frame, so the server half adopts the same id and the
    // same sampling verdict.
    const std::uint64_t trace_id = recorder.NewTraceId();
    const bool sampled = recorder.Sampled(trace_id);
    TraceIdScope scope(trace_id, sampled);
    Result<WireQueryResponse> response =
        (*client)->Query(kObjectives[i % 3], request);
    if (!response.ok()) return Fail(response.status());
    if (sampled) ++sampled_queries;
  }

  Result<std::string> server_json = (*client)->PullTrace();
  if (!server_json.ok()) return Fail(server_json.status());

  std::ostringstream client_json;
  if (Status s = recorder.ExportChromeTrace(client_json); !s.ok()) {
    return Fail(s);
  }
  recorder.Disable();

  std::string merged;
  if (Status s = MergeChromeTraces(client_json.str(), *server_json, *offset,
                                   &merged);
      !s.ok()) {
    return Fail(s);
  }
  std::FILE* file = std::fopen(out->c_str(), "wb");
  if (file == nullptr) {
    return Fail(Status::Internal("cannot open " + *out + " for writing"));
  }
  const std::size_t written =
      std::fwrite(merged.data(), 1, merged.size(), file);
  std::fclose(file);
  if (written != merged.size()) {
    return Fail(Status::Internal("short write to " + *out));
  }

  std::printf(
      "wrote %s: merged client+server trace, %d queries (%d sampled), "
      "clock offset %+.3fms\n",
      out->c_str(), queries, sampled_queries,
      static_cast<double>(*offset) / 1e6);
  return 0;
}

int Trace(const Args& args) {
  if (args.Has("remote")) return TraceRemote(args);
  const auto out = args.Get("out");
  if (!out) return Fail("trace needs --out");
  const auto preset = ParsePreset(args.GetOr("preset", "MC"));
  if (!preset) return Fail("unknown preset (use MC, CH, CPH or MZB)");
  const int queries = static_cast<int>(args.GetInt("queries", 12));
  if (queries < 1) return Fail("--queries must be >= 1");

  // Built twice on purpose: preset construction is deterministic, so the
  // second build gives the graph-oracle differential solve an identical
  // venue without copying the one the service takes ownership of.
  Result<Venue> venue = BuildPresetVenue(*preset);
  if (!venue.ok()) return Fail(venue.status());
  Result<Venue> graph_venue = BuildPresetVenue(*preset);
  if (!graph_venue.ok()) return Fail(graph_venue.status());

  Rng rng(static_cast<std::uint64_t>(args.GetInt("seed", 1)));
  Result<FacilitySets> sets = SelectUniformFacilities(
      *venue, static_cast<std::size_t>(args.GetInt("existing", 8)),
      static_cast<std::size_t>(args.GetInt("candidates", 16)), &rng);
  if (!sets.ok()) return Fail(sets.status());
  const std::vector<Client> clients = GenerateClients(
      *venue, static_cast<std::size_t>(args.GetInt("clients", 400)), {}, &rng);

  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.Enable(static_cast<std::uint32_t>(args.GetInt("sample", 1)));

  ServiceOptions options;
  options.num_workers = static_cast<int>(args.GetInt("workers", 0));
  options.slow_query_threshold_seconds = args.GetDouble("slow-ms", 0.0) / 1e3;
  Result<std::unique_ptr<IflsService>> service = IflsService::Create(
      std::move(venue).value(), sets->existing, sets->candidates, options);
  if (!service.ok()) return Fail(service.status());
  IflsService& svc = **service;

  const IflsObjective kObjectives[] = {
      IflsObjective::kMinMax, IflsObjective::kMinDist, IflsObjective::kMaxSum};

  // Phase 1: the query mix. In admission-only mode (--workers 0) the queue
  // is pumped inline, which keeps the run single-threaded and deterministic
  // for CI smokes; with workers the futures resolve concurrently.
  std::vector<std::future<ServiceReply>> pending;
  pending.reserve(static_cast<std::size_t>(queries));
  for (int i = 0; i < queries; ++i) {
    ServiceRequest request;
    request.objective = kObjectives[i % 3];
    request.clients = clients;
    Result<std::future<ServiceReply>> submitted =
        svc.SubmitQuery(std::move(request));
    if (!submitted.ok()) return Fail(submitted.status());
    pending.push_back(std::move(submitted).value());
    if (options.num_workers == 0) {
      while (svc.ProcessOneInline()) {
      }
    }
  }
  for (std::future<ServiceReply>& f : pending) {
    const ServiceReply reply = f.get();
    if (!reply.status.ok()) return Fail(reply.status);
  }

  // Phase 2: toggle one candidate through the overlay and compact after
  // each step, so the export carries mutation-epoch service spans plus the
  // compactor's overlay_cut / snapshot_build / publish_rebase spans. The
  // second compaction restores the boot facility sets.
  const PartitionId toggled = sets->candidates.back();
  if (Status s = svc.Mutate({MutationKind::kRemoveCandidate, toggled});
      !s.ok()) {
    return Fail(s);
  }
  if (Status s = svc.CompactNow(); !s.ok()) return Fail(s);
  if (Status s = svc.Mutate({MutationKind::kAddCandidate, toggled}); !s.ok()) {
    return Fail(s);
  }
  if (Status s = svc.CompactNow(); !s.ok()) return Fail(s);

  // Phase 3: one MinMax reply from the compacted snapshot, to certify the
  // differential solve against.
  ServiceRequest final_request;
  final_request.objective = IflsObjective::kMinMax;
  final_request.clients = clients;
  Result<std::future<ServiceReply>> final_submitted =
      svc.SubmitQuery(std::move(final_request));
  if (!final_submitted.ok()) return Fail(final_submitted.status());
  if (options.num_workers == 0) {
    while (svc.ProcessOneInline()) {
    }
  }
  const ServiceReply service_reply = final_submitted->get();
  if (!service_reply.status.ok()) return Fail(service_reply.status);
  svc.Drain();

  // Differential solve on the door-graph oracle: exercises the Dijkstra
  // fallback (so the export carries its named span) and cross-checks the
  // service's answer on an independent distance backend.
  std::vector<PartitionId> effective_existing;
  std::vector<PartitionId> effective_candidates;
  {
    const std::shared_ptr<const ServingState> state = svc.AcquireState();
    effective_existing = state->overlay.effective_existing();
    effective_candidates = state->overlay.effective_candidates();
  }
  GraphDistanceOracle graph(&graph_venue.value());
  IflsContext ctx;
  ctx.oracle = &graph;
  ctx.existing = std::move(effective_existing);
  ctx.candidates = std::move(effective_candidates);
  ctx.clients = clients;
  const std::uint64_t diff_id = recorder.NewTraceId();
  Result<IflsResult> diff = Status::Internal("differential solve did not run");
  {
    TraceIdScope scope(diff_id, recorder.Sampled(diff_id));
    TraceSpan span(TraceCategory::kService, "differential_solve");
    diff = SolveEfficient(ctx);
  }
  if (!diff.ok()) return Fail(diff.status());
  const double service_objective = service_reply.result.objective;
  const double graph_objective = diff->objective;
  const double scale = std::max(
      {std::fabs(service_objective), std::fabs(graph_objective), 1.0});
  if (std::fabs(service_objective - graph_objective) > 1e-6 * scale) {
    std::fprintf(stderr,
                 "error: differential mismatch: VIP-tree MinMax objective "
                 "%.9f vs graph-oracle %.9f\n",
                 service_objective, graph_objective);
    return 1;
  }

  svc.Stop();
  if (Status s = recorder.ExportChromeTraceToFile(*out); !s.ok()) {
    return Fail(s);
  }

  const std::vector<TraceEvent> spans = recorder.Snapshot();
  bool seen[kNumTraceCategories] = {};
  for (const TraceEvent& e : spans) {
    seen[static_cast<int>(e.category)] = true;
  }
  std::string categories;
  for (int c = 0; c < kNumTraceCategories; ++c) {
    if (!seen[c]) continue;
    if (!categories.empty()) categories += ",";
    categories += TraceCategoryName(static_cast<TraceCategory>(c));
  }
  std::printf(
      "wrote %s: %zu spans (categories %s, dropped %llu), "
      "MinMax answer partition %d objective %.4f (graph oracle agrees)\n",
      out->c_str(), spans.size(), categories.c_str(),
      static_cast<unsigned long long>(recorder.dropped_events()),
      service_reply.result.answer, service_objective);
  if (args.Has("metrics")) {
    std::printf("%s", DumpMetricsText().c_str());
  }
  recorder.Disable();
  return 0;
}

int Subscribe(const Args& args) {
  const auto preset = ParsePreset(args.GetOr("preset", "MC"));
  if (!preset) return Fail("unknown preset (use MC, CH, CPH or MZB)");
  const std::size_t num_subs =
      static_cast<std::size_t>(args.GetInt("subs", 4));
  const std::size_t clients_per_sub =
      static_cast<std::size_t>(args.GetInt("clients", 6));
  const std::size_t ticks = static_cast<std::size_t>(args.GetInt("ticks", 20));
  const double tolerance = args.GetDouble("tolerance", 0.0);
  if (num_subs < 1 || clients_per_sub < 1 || ticks < 1) {
    return Fail("--subs, --clients and --ticks must be >= 1");
  }

  // Built twice, as in `trace`: preset construction is deterministic, so
  // the second build drives the trajectory generator while the service owns
  // the first.
  Result<Venue> venue = BuildPresetVenue(*preset);
  if (!venue.ok()) return Fail(venue.status());
  Result<Venue> walk_venue = BuildPresetVenue(*preset);
  if (!walk_venue.ok()) return Fail(walk_venue.status());
  Result<VipTree> walk_tree = VipTree::Build(&walk_venue.value());
  if (!walk_tree.ok()) return Fail(walk_tree.status());

  Rng rng(static_cast<std::uint64_t>(args.GetInt("seed", 1)));
  Result<FacilitySets> sets = SelectUniformFacilities(
      *venue, static_cast<std::size_t>(args.GetInt("existing", 40)),
      static_cast<std::size_t>(args.GetInt("candidates", 12)), &rng);
  if (!sets.ok()) return Fail(sets.status());

  TrajectoryOptions topts;
  topts.ticks = ticks + 1;
  Result<std::vector<Trajectory>> traj = GenerateTrajectories(
      *walk_tree, num_subs * clients_per_sub, topts, &rng);
  if (!traj.ok()) return Fail(traj.status());

  ServiceOptions options;
  options.num_workers = static_cast<int>(args.GetInt("workers", 0));
  Result<std::unique_ptr<IflsService>> service = IflsService::Create(
      std::move(venue).value(), sets->existing, sets->candidates, options);
  if (!service.ok()) return Fail(service.status());
  IflsService& svc = **service;

  std::printf("subscribe demo: %zu standing queries x %zu clients, %zu "
              "ticks, tolerance %g (|Fe|=%zu |Fn|=%zu)\n",
              num_subs, clients_per_sub, ticks, tolerance,
              sets->existing.size(), sets->candidates.size());

  std::mutex print_mu;
  std::vector<std::shared_ptr<Subscription>> subs;
  subs.reserve(num_subs);
  for (std::size_t s = 0; s < num_subs; ++s) {
    std::vector<Client> clients;
    for (std::size_t c = 0; c < clients_per_sub; ++c) {
      const TrajectoryPoint& p = (*traj)[s * clients_per_sub + c][0];
      clients.push_back(
          Client{static_cast<ClientId>(c), p.position, p.partition});
    }
    SubscriptionOptions sopts;
    sopts.tolerance = tolerance;
    Result<std::shared_ptr<Subscription>> sub = svc.Subscribe(
        clients, sopts, [s, &print_mu](const SubscriptionPush& push) {
          std::lock_guard<std::mutex> lock(print_mu);
          if (push.result.found) {
            std::printf("  sub %zu push #%llu (version %llu, ticks %llu): "
                        "partition %d objective %.4f\n",
                        s, static_cast<unsigned long long>(push.sequence),
                        static_cast<unsigned long long>(push.version),
                        static_cast<unsigned long long>(push.ticks_applied),
                        push.result.answer, push.result.objective);
          } else {
            std::printf("  sub %zu push #%llu (version %llu, ticks %llu): "
                        "no candidate improves objective %.4f\n",
                        s, static_cast<unsigned long long>(push.sequence),
                        static_cast<unsigned long long>(push.version),
                        static_cast<unsigned long long>(push.ticks_applied),
                        push.result.objective);
          }
        });
    if (!sub.ok()) return Fail(sub.status());
    subs.push_back(std::move(*sub));
  }

  // Drive the fleet: one client of every subscription moves per tick; a
  // candidate is removed a third of the way in (its standing answers must
  // re-solve), the overlay is compacted, and the candidate returns later —
  // subscriptions ride across the snapshot rebase without losing state.
  const PartitionId toggled = sets->candidates.back();
  for (std::size_t t = 1; t <= ticks; ++t) {
    if (t == ticks / 3 + 1) {
      std::printf("tick %zu: remove candidate %d + compact\n", t, toggled);
      if (Status s = svc.Mutate({MutationKind::kRemoveCandidate, toggled});
          !s.ok()) {
        return Fail(s);
      }
      if (Status s = svc.CompactNow(); !s.ok()) return Fail(s);
    } else if (t == 2 * ticks / 3 + 1) {
      std::printf("tick %zu: re-add candidate %d\n", t, toggled);
      if (Status s = svc.Mutate({MutationKind::kAddCandidate, toggled});
          !s.ok()) {
        return Fail(s);
      }
    }
    for (std::size_t s = 0; s < num_subs; ++s) {
      const std::size_t c = (t - 1 + s) % clients_per_sub;
      const TrajectoryPoint& p = (*traj)[s * clients_per_sub + c][t];
      if (Status status = svc.TickSubscription(
              subs[s]->id(), static_cast<ClientId>(c), p.position,
              p.partition);
          !status.ok()) {
        return Fail(status);
      }
    }
  }
  svc.Drain();

  std::printf("final standing answers:\n");
  for (std::size_t s = 0; s < num_subs; ++s) {
    const Subscription::State state = subs[s]->Current();
    if (state.has_answer) {
      std::printf("  sub %zu: partition %d objective %.4f", s, state.answer,
                  state.objective);
    } else {
      std::printf("  sub %zu: no improving candidate", s);
    }
    std::printf(" (version %llu, ticks %llu, pushes %llu, solves %lld, "
                "skips %lld)\n",
                static_cast<unsigned long long>(state.version),
                static_cast<unsigned long long>(state.ticks_applied),
                static_cast<unsigned long long>(state.pushes),
                static_cast<long long>(state.solves),
                static_cast<long long>(state.skips));
  }
  const ServiceMetrics metrics = svc.Metrics();
  std::printf("service: %llu events, %llu pushes, %llu solves, %llu skips, "
              "%llu compactions\n",
              static_cast<unsigned long long>(metrics.subscription_events),
              static_cast<unsigned long long>(metrics.subscription_pushes),
              static_cast<unsigned long long>(metrics.subscription_solves),
              static_cast<unsigned long long>(metrics.subscription_skips),
              static_cast<unsigned long long>(metrics.compactions));
  for (std::size_t s = 0; s < num_subs; ++s) {
    if (Status status = svc.Unsubscribe(subs[s]->id()); !status.ok()) {
      return Fail(status);
    }
  }
  if (args.Has("metrics")) {
    std::printf("%s", DumpMetricsText().c_str());
  }
  return 0;
}

int Fleet(const Args& args) {
  const auto dir = args.Get("dir");
  if (!dir) return Fail("fleet needs --dir");
  const int num_venues = static_cast<int>(args.GetInt("venues", 4));
  const std::size_t clients_per_query =
      static_cast<std::size_t>(args.GetInt("clients", 200));
  const int queries = static_cast<int>(args.GetInt("queries", 24));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.GetInt("seed", 1));
  if (num_venues < 1 || queries < 1) {
    return Fail("--venues and --queries must be >= 1");
  }

  if (args.Has("build")) {
    // Venue i differs in size and door jitter, so the fleet exercises
    // different index shapes rather than N copies of one snapshot.
    const int base_rooms = static_cast<int>(args.GetInt("rooms", 120));
    const int levels = static_cast<int>(args.GetInt("levels", 2));
    for (int i = 0; i < num_venues; ++i) {
      char id[16];
      std::snprintf(id, sizeof(id), "v%03d", i);
      VenueGeneratorSpec spec;
      spec.name = id;
      spec.levels = levels;
      spec.total_rooms = base_rooms + 10 * (i % 4);
      spec.door_jitter_seed = seed + static_cast<std::uint64_t>(i);
      Result<Venue> venue = GenerateVenue(spec);
      if (!venue.ok()) return Fail(venue.status());
      Result<VipTree> tree =
          VipTree::Build(&venue.value(), DefaultServiceTreeOptions());
      if (!tree.ok()) return Fail(tree.status());
      Rng rng(seed + static_cast<std::uint64_t>(i));
      Result<FacilitySets> sets = SelectUniformFacilities(
          *venue, static_cast<std::size_t>(args.GetInt("existing", 8)),
          static_cast<std::size_t>(args.GetInt("candidates", 16)), &rng);
      if (!sets.ok()) return Fail(sets.status());
      const std::string venue_dir = *dir + "/" + id;
      if (Status s = WriteVenueSnapshot(venue_dir, *venue, *tree,
                                        sets->existing, sets->candidates);
          !s.ok()) {
        return Fail(s);
      }
      std::printf("built %s: %s\n", venue_dir.c_str(),
                  venue->ToString().c_str());
    }
  }

  VenueRouterOptions ropts;
  ropts.memory_budget_bytes =
      static_cast<std::size_t>(args.GetInt("budget-mb", 0)) * (1 << 20);
  ropts.max_resident_venues =
      static_cast<std::size_t>(args.GetInt("max-resident", 0));
  ropts.load_mode = args.Has("parse-load") ? SnapshotLoadMode::kParse
                                           : SnapshotLoadMode::kMmap;
  ropts.service.num_workers = static_cast<int>(args.GetInt("workers", 2));
  Result<std::unique_ptr<VenueRouter>> router = VenueRouter::Open(*dir, ropts);
  if (!router.ok()) return Fail(router.status());
  const std::vector<std::string> ids = (*router)->venue_ids();
  std::printf("fleet %s: %zu venues (%s load, budget %ld MiB, "
              "max resident %zu)\n",
              dir->c_str(), ids.size(),
              ropts.load_mode == SnapshotLoadMode::kMmap ? "mmap" : "parse",
              args.GetInt("budget-mb", 0), ropts.max_resident_venues);

  // Round-robin the fleet. Client sets are generated per venue (partition
  // ids are venue-local) and reused across that venue's queries.
  const IflsObjective kObjectives[] = {
      IflsObjective::kMinMax, IflsObjective::kMinDist, IflsObjective::kMaxSum};
  std::map<std::string, std::vector<Client>> fleet_clients;
  for (int q = 0; q < queries; ++q) {
    const std::string& id = ids[static_cast<std::size_t>(q) % ids.size()];
    auto it = fleet_clients.find(id);
    if (it == fleet_clients.end()) {
      Result<Venue> venue =
          LoadVenueFromFile(*dir + "/" + id + "/" + kFleetVenueFileName);
      if (!venue.ok()) return Fail(venue.status());
      Rng rng(seed ^ std::hash<std::string>{}(id));
      it = fleet_clients
               .emplace(id, GenerateClients(*venue, clients_per_query, {},
                                            &rng))
               .first;
    }
    ServiceRequest request;
    request.objective = kObjectives[q % 3];
    request.clients = it->second;
    const ServiceReply reply = (*router)->Query(id, std::move(request));
    if (!reply.status.ok()) return Fail(reply.status);
    if (reply.result.found) {
      std::printf("  %s %s: partition %d objective %.4f\n", id.c_str(),
                  IflsObjectiveName(request.objective), reply.result.answer,
                  reply.result.objective);
    } else {
      std::printf("  %s %s: no improving candidate\n", id.c_str(),
                  IflsObjectiveName(request.objective));
    }
  }

  for (const VenueEntryStats& s : (*router)->VenueStats()) {
    std::printf("venue %s: %s, %.2f MiB resident, %.2f MiB mapped, "
                "%llu loads, %llu evictions\n",
                s.venue_id.c_str(), s.resident ? "resident" : "cold",
                s.resident_bytes / (1024.0 * 1024.0),
                s.mapped_bytes / (1024.0 * 1024.0),
                static_cast<unsigned long long>(s.loads),
                static_cast<unsigned long long>(s.evictions));
  }
  const VenueRouterMetrics m = (*router)->Metrics();
  std::printf("router: %llu loads, %llu hits, %llu evictions, %zu/%zu "
              "resident, %.2f MiB resident, %.2f MiB mapped\n",
              static_cast<unsigned long long>(m.loads),
              static_cast<unsigned long long>(m.hits),
              static_cast<unsigned long long>(m.evictions),
              m.resident_venues, m.known_venues,
              m.resident_bytes / (1024.0 * 1024.0),
              m.mapped_bytes / (1024.0 * 1024.0));
  if (args.Has("metrics")) {
    std::printf("%s", DumpMetricsText().c_str());
  }
  return 0;
}

/// Builds the preset-backed service the network commands serve. The venue,
/// facility sets and client pool are deterministic for a given seed, so a
/// `serve --smoke` differential check has stable ground truth.
Result<std::shared_ptr<IflsService>> BuildServeService(const Args& args) {
  const auto preset = ParsePreset(args.GetOr("preset", "MC"));
  if (!preset) return Status::InvalidArgument("unknown preset");
  Result<Venue> venue = BuildPresetVenue(*preset);
  if (!venue.ok()) return venue.status();
  Rng rng(static_cast<std::uint64_t>(args.GetInt("seed", 1)));
  Result<FacilitySets> sets = SelectUniformFacilities(
      *venue, static_cast<std::size_t>(args.GetInt("existing", 8)),
      static_cast<std::size_t>(args.GetInt("candidates", 16)), &rng);
  if (!sets.ok()) return sets.status();
  ServiceOptions options;
  options.num_workers = static_cast<int>(args.GetInt("workers", 2));
  options.queue_capacity =
      static_cast<std::size_t>(args.GetInt("queue", 1024));
  // The preset name doubles as the cost-ledger venue label, so the served
  // ifls_ledger_* series carry venue="MC" etc. out of the box.
  options.venue_label = args.GetOr("preset", "MC");
  Result<std::unique_ptr<IflsService>> service = IflsService::Create(
      std::move(venue).value(), sets->existing, sets->candidates, options);
  if (!service.ok()) return service.status();
  return std::shared_ptr<IflsService>(std::move(service).value());
}

int Serve(const Args& args) {
  Result<std::shared_ptr<IflsService>> service = BuildServeService(args);
  if (!service.ok()) return Fail(service.status());

  ServerOptions sopts;
  sopts.port = static_cast<std::uint16_t>(args.GetInt("port", 0));
  sopts.coalesce_batches = !args.Has("no-coalesce");
  Result<std::unique_ptr<IflsServer>> server =
      IflsServer::Create(*service, sopts);
  if (!server.ok()) return Fail(server.status());
  std::printf("serving %s on 127.0.0.1:%u (%s batching, %ld workers)\n",
              args.GetOr("preset", "MC").c_str(), (*server)->port(),
              sopts.coalesce_batches ? "coalesced" : "per-query",
              args.GetInt("workers", 2));
  std::fflush(stdout);

  if (args.Has("smoke")) {
    // Self-test: N wire queries differentially checked against the same
    // in-process service, then a metrics pull over the wire.
    const int n = static_cast<int>(args.GetInt("smoke", 6));
    Result<std::unique_ptr<IflsClient>> client =
        IflsClient::Connect((*server)->port());
    if (!client.ok()) return Fail(client.status());
    const IflsObjective kObjectives[] = {IflsObjective::kMinMax,
                                         IflsObjective::kMinDist,
                                         IflsObjective::kMaxSum};
    const std::shared_ptr<const ServingState> state =
        (*service)->AcquireState();
    for (int i = 0; i < n; ++i) {
      Rng qrng(static_cast<std::uint64_t>(7000 + i));
      WireQueryRequest request;
      request.clients =
          GenerateClients(state->snapshot->venue(), 64, {}, &qrng);
      ServiceRequest truth;
      truth.objective = kObjectives[i % 3];
      truth.clients = request.clients;
      const ServiceReply expected = (*service)->Query(std::move(truth));
      if (!expected.status.ok()) return Fail(expected.status);
      Result<WireQueryResponse> response =
          (*client)->Query(kObjectives[i % 3], request);
      if (!response.ok()) return Fail(response.status());
      if (response->found != expected.result.found ||
          response->answer != expected.result.answer ||
          std::memcmp(&response->objective, &expected.result.objective,
                      sizeof(double)) != 0) {
        return Fail("smoke: wire answer differs from in-process service");
      }
    }
    Result<std::string> metrics = (*client)->PullMetrics();
    if (!metrics.ok()) return Fail(metrics.status());
    if (metrics->find("ifls_net_frames_total") == std::string::npos) {
      return Fail("smoke: wire metrics pull missing ifls_net_ series");
    }
    std::printf("smoke ok: %d queries bit-identical over the wire\n", n);
    if (args.Has("metrics")) std::printf("%s", DumpMetricsText().c_str());
    (*server)->Stop();
    (*service)->Stop();
    return 0;
  }

  // Foreground serving: block until SIGINT/SIGTERM, then drain and exit.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  int sig = 0;
  sigwait(&set, &sig);
  std::printf("signal %d: shutting down\n", sig);
  (*server)->Stop();
  if (args.Has("metrics")) std::printf("%s", DumpMetricsText().c_str());
  (*service)->Stop();
  return 0;
}

int BenchNet(const Args& args) {
  Result<std::shared_ptr<IflsService>> service = BuildServeService(args);
  if (!service.ok()) return Fail(service.status());

  const std::size_t connections =
      static_cast<std::size_t>(args.GetInt("connections", 1024));
  const std::size_t clients_per_query =
      static_cast<std::size_t>(args.GetInt("clients", 32));
  const std::size_t distinct =
      static_cast<std::size_t>(args.GetInt("distinct", 24));
  const int pipeline = static_cast<int>(args.GetInt("pipeline", 2));

  // Ground truth pool the load generator replays and checks against.
  const std::shared_ptr<const ServingState> state = (*service)->AcquireState();
  Rng rng(static_cast<std::uint64_t>(args.GetInt("seed", 1)) ^ 0x9e3779b9u);
  const std::vector<Client> pool =
      GenerateClients(state->snapshot->venue(), 8192, {}, &rng);
  const IflsObjective kObjectives[] = {IflsObjective::kMinMax,
                                       IflsObjective::kMinDist,
                                       IflsObjective::kMaxSum};
  std::vector<NetExpectation> expectations;
  for (std::size_t q = 0; q < distinct; ++q) {
    NetExpectation exp;
    exp.objective = kObjectives[q % 3];
    const std::size_t start =
        rng.NextBounded(pool.size() - clients_per_query);
    exp.clients.assign(
        pool.begin() + static_cast<std::ptrdiff_t>(start),
        pool.begin() + static_cast<std::ptrdiff_t>(start + clients_per_query));
    ServiceRequest request;
    request.objective = exp.objective;
    request.clients = exp.clients;
    const ServiceReply reply = (*service)->Query(std::move(request));
    if (!reply.status.ok()) return Fail(reply.status);
    exp.found = reply.result.found;
    exp.answer = reply.result.answer;
    exp.objective_value = reply.result.objective;
    expectations.push_back(std::move(exp));
  }

  ServerOptions sopts;
  sopts.coalesce_batches = !args.Has("no-coalesce");
  sopts.num_dispatchers = static_cast<int>(args.GetInt("dispatchers", 4));
  sopts.dispatch_queue_capacity =
      connections * (static_cast<std::size_t>(pipeline) + 1);
  Result<std::unique_ptr<IflsServer>> server =
      IflsServer::Create(*service, sopts);
  if (!server.ok()) return Fail(server.status());

  LoadGenOptions load;
  load.port = (*server)->port();
  load.num_connections = connections;
  load.num_threads = static_cast<int>(args.GetInt("threads", 8));
  load.pipeline_depth = pipeline;
  load.queries_per_connection =
      static_cast<std::size_t>(args.GetInt("queries", 16));
  Result<LoadGenReport> report = RunNetworkLoad(load, expectations);
  if (!report.ok()) return Fail(report.status());

  const ServerMetrics sm = (*server)->Metrics();
  std::printf(
      "bench-net (%s batching): %llu ok / %llu err / %llu mismatch across "
      "%zu connections in %.3fs\n"
      "  %.0f qps, p50 %.3fms, p99 %.3fms, p999 %.3fms\n"
      "  server: %llu frames, %llu batches (%llu queries batched), "
      "%llu rejected\n",
      sopts.coalesce_batches ? "coalesced" : "per-query",
      static_cast<unsigned long long>(report->completed),
      static_cast<unsigned long long>(report->errors),
      static_cast<unsigned long long>(report->mismatches),
      report->connections, report->wall_seconds, report->qps,
      report->p50_seconds * 1e3, report->p99_seconds * 1e3,
      report->p999_seconds * 1e3,
      static_cast<unsigned long long>(sm.frames_received),
      static_cast<unsigned long long>(sm.batches),
      static_cast<unsigned long long>(sm.batched_queries),
      static_cast<unsigned long long>(sm.rejected));
  (*server)->Stop();
  (*service)->Stop();
  if (report->mismatches != 0) {
    return Fail("bench-net: differential mismatches against the service");
  }
  return 0;
}

// `ifls_cli kernels` prints the ISA tier ladder (compiled / CPU-supported /
// active per tier). With --supports=TIER it is silent and answers via exit
// code (0 = this binary can pin TIER here, 1 = it cannot, 2 = unknown name),
// which is what the CI matrix uses to skip pins a runner cannot execute.
int Kernels(const Args& args) {
  if (const auto query = args.Get("supports")) {
    const Result<kernels::KernelTier> tier = kernels::ParseKernelTier(*query);
    if (!tier.ok()) {
      std::fprintf(stderr, "%s\n", tier.status().ToString().c_str());
      return 2;
    }
    return kernels::KernelTierSupported(*tier) ? 0 : 1;
  }
  const kernels::KernelTier active = kernels::ActiveKernelTier();
  std::printf("%-8s %-9s %-10s %s\n", "tier", "compiled", "supported",
              "active");
  for (int t = 0; t < kernels::kNumKernelTiers; ++t) {
    const auto tier = static_cast<kernels::KernelTier>(t);
    std::printf("%-8s %-9s %-10s %s\n", kernels::KernelTierName(tier),
                kernels::KernelTierCompiled(tier) ? "yes" : "no",
                kernels::KernelTierSupported(tier) ? "yes" : "no",
                tier == active ? "*" : "");
  }
  std::printf("best tier: %s\n",
              kernels::KernelTierName(kernels::BestKernelTier()));
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s gen-venue|gen-workload|solve|info|render|trace|"
                 "subscribe|fleet|serve|bench-net|kernels [--flags]\n",
                 argv[0]);
    return 1;
  }
  const std::string command = argv[1];
  Args args(argc, argv, 2);
  if (!args.ok()) return 1;
  if (command == "kernels") return Kernels(args);
  if (command == "gen-venue") return GenVenue(args);
  if (command == "gen-workload") return GenWorkload(args);
  if (command == "solve") return Solve(args);
  if (command == "info") return Info(args);
  if (command == "render") return Render(args);
  if (command == "trace") return Trace(args);
  if (command == "subscribe") return Subscribe(args);
  if (command == "fleet") return Fleet(args);
  if (command == "serve") return Serve(args);
  if (command == "bench-net") return BenchNet(args);
  return Fail("unknown command");
}

}  // namespace
}  // namespace ifls

int main(int argc, char** argv) { return ifls::Run(argc, argv); }
