#include "src/service/result_iterator.h"

#include <utility>

#include "src/common/trace.h"

namespace ifls {

ResultIterator::ResultIterator(std::shared_ptr<const ServingState> state,
                               std::unique_ptr<RankedStream> stream,
                               std::uint64_t version, Counter* pages)
    : state_(std::move(state)),
      version_(version),
      pages_(pages),
      stream_(std::move(stream)) {}

ResultIterator::Page ResultIterator::Next(std::size_t m) {
  TraceSpan span(TraceCategory::kService, "iterator_page");
  std::lock_guard<std::mutex> lock(mu_);
  Page page = stream_->Next(m);
  if (pages_ != nullptr) pages_->Add();
  return page;
}

bool ResultIterator::exhausted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stream_->exhausted();
}

std::size_t ResultIterator::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stream_->emitted();
}

std::size_t ResultIterator::total_candidates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stream_->total_candidates();
}

QueryStats ResultIterator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stream_->stats();
}

}  // namespace ifls
