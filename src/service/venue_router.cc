#include "src/service/venue_router.h"

#include <filesystem>
#include <limits>
#include <utility>

namespace ifls {

VenueRouter::VenueRouter(std::string root, VenueRouterOptions options)
    : root_(std::move(root)), options_(options) {}

VenueRouter::~VenueRouter() {
  // Callbacks read `this`; tear them down before members die.
  metric_registrations_.clear();
}

Result<std::unique_ptr<VenueRouter>> VenueRouter::Open(
    const std::string& root, VenueRouterOptions options) {
  IFLS_ASSIGN_OR_RETURN(std::vector<std::string> ids, ListFleetVenues(root));
  if (ids.empty()) {
    return Status::InvalidArgument("fleet root '" + root +
                                   "' contains no venue snapshots");
  }
  std::unique_ptr<VenueRouter> router(
      new VenueRouter(root, std::move(options)));
  for (std::string& id : ids) {
    router->entries_.emplace(std::move(id), Entry{});
  }
  router->RegisterMetrics();
  return router;
}

Result<std::shared_ptr<IflsService>> VenueRouter::Service(
    const std::string& venue_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(venue_id);
  if (it == entries_.end()) {
    return Status::NotFound("unknown venue '" + venue_id + "'");
  }
  Entry& entry = it->second;
  // Exactly one caller hydrates; same-venue callers wait, other venues
  // proceed (the load itself runs outside the router lock).
  while (entry.loading) loaded_cv_.wait(lock);
  if (entry.service != nullptr) {
    entry.last_used = ++touch_clock_;
    ++hits_;
    return entry.service;
  }

  entry.loading = true;
  lock.unlock();

  const std::string dir =
      (std::filesystem::path(root_) / venue_id).string();
  Status load_status;
  std::shared_ptr<IflsService> loaded;
  std::size_t resident_bytes = 0;
  std::size_t mapped_bytes = 0;
  {
    Result<LoadedVenueSnapshot> snapshot =
        LoadVenueSnapshot(dir, options_.load_mode);
    if (!snapshot.ok()) {
      load_status = snapshot.status();
    } else {
      resident_bytes = snapshot.value().tree->MemoryFootprintBytes();
      mapped_bytes = snapshot.value().tree->MappedFootprintBytes();
      // Stamp the routing id on the per-venue service so its cost-ledger
      // samples carry venue="<id>" (the template label, if any, would make
      // every venue's traffic indistinguishable).
      ServiceOptions service_options = options_.service;
      service_options.venue_label = venue_id;
      Result<std::unique_ptr<IflsService>> service =
          IflsService::CreateFromParts(
              snapshot.value().venue, snapshot.value().tree,
              std::move(snapshot.value().existing),
              std::move(snapshot.value().candidates), service_options);
      if (!service.ok()) {
        load_status = service.status();
      } else {
        loaded = std::shared_ptr<IflsService>(std::move(service).value());
      }
    }
  }

  lock.lock();
  entry.loading = false;
  loaded_cv_.notify_all();
  if (!load_status.ok()) return load_status;

  entry.service = std::move(loaded);
  entry.resident_bytes = resident_bytes;
  entry.mapped_bytes = mapped_bytes;
  entry.last_used = ++touch_clock_;
  ++entry.loads;
  ++loads_;
  EvictOverBudgetLocked(venue_id);
  return entry.service;
}

ServiceReply VenueRouter::Query(const std::string& venue_id,
                                ServiceRequest request) {
  Result<std::shared_ptr<IflsService>> service = Service(venue_id);
  if (!service.ok()) {
    ServiceReply reply;
    reply.status = service.status();
    return reply;
  }
  return service.value()->Query(std::move(request));
}

Status VenueRouter::Mutate(const std::string& venue_id,
                           const Mutation& mutation,
                           std::uint64_t* applied_version) {
  IFLS_ASSIGN_OR_RETURN(std::shared_ptr<IflsService> service,
                        Service(venue_id));
  return service->Mutate(mutation, applied_version);
}

Result<std::shared_ptr<Subscription>> VenueRouter::Subscribe(
    const std::string& venue_id, const std::vector<Client>& clients,
    const SubscriptionOptions& options, SubscriptionCallback callback) {
  IFLS_ASSIGN_OR_RETURN(std::shared_ptr<IflsService> service,
                        Service(venue_id));
  return service->Subscribe(clients, options, std::move(callback));
}

Status VenueRouter::Unsubscribe(const std::string& venue_id,
                                std::uint64_t subscription_id) {
  // Deliberately does not hydrate: unsubscribing from an evicted venue is a
  // no-op (eviction already closed the service's subscriptions).
  std::shared_ptr<IflsService> service;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(venue_id);
    if (it == entries_.end()) {
      return Status::NotFound("unknown venue '" + venue_id + "'");
    }
    service = it->second.service;
  }
  if (service == nullptr) return Status::OK();
  return service->Unsubscribe(subscription_id);
}

Status VenueRouter::TickSubscription(const std::string& venue_id,
                                     std::uint64_t subscription_id,
                                     ClientId client, const Point& position,
                                     PartitionId partition) {
  IFLS_ASSIGN_OR_RETURN(std::shared_ptr<IflsService> service,
                        Service(venue_id));
  return service->TickSubscription(subscription_id, client, position,
                                   partition);
}

Status VenueRouter::Preload(const std::string& venue_id) {
  return Service(venue_id).status();
}

Status VenueRouter::Evict(const std::string& venue_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(venue_id);
  if (it == entries_.end()) {
    return Status::NotFound("unknown venue '" + venue_id + "'");
  }
  while (it->second.loading) loaded_cv_.wait(lock);
  if (it->second.service != nullptr) EvictEntryLocked(venue_id, it->second);
  return Status::OK();
}

bool VenueRouter::IsResident(const std::string& venue_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(venue_id);
  return it != entries_.end() && it->second.service != nullptr;
}

std::vector<std::string> VenueRouter::venue_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  return ids;
}

std::vector<VenueEntryStats> VenueRouter::VenueStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<VenueEntryStats> stats;
  stats.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    VenueEntryStats s;
    s.venue_id = id;
    s.resident = entry.service != nullptr;
    s.resident_bytes = s.resident ? entry.resident_bytes : 0;
    s.mapped_bytes = s.resident ? entry.mapped_bytes : 0;
    s.loads = entry.loads;
    s.evictions = entry.evictions;
    stats.push_back(std::move(s));
  }
  return stats;
}

VenueRouterMetrics VenueRouter::Metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  VenueRouterMetrics m;
  m.loads = loads_;
  m.hits = hits_;
  m.evictions = evictions_;
  m.known_venues = entries_.size();
  for (const auto& [id, entry] : entries_) {
    if (entry.service == nullptr) continue;
    ++m.resident_venues;
    m.resident_bytes += entry.resident_bytes;
    m.mapped_bytes += entry.mapped_bytes;
  }
  return m;
}

void VenueRouter::EvictOverBudgetLocked(const std::string& keep) {
  auto over_budget = [&]() {
    std::size_t resident = 0;
    std::size_t bytes = 0;
    for (const auto& [id, entry] : entries_) {
      if (entry.service == nullptr) continue;
      ++resident;
      bytes += entry.resident_bytes;
    }
    if (options_.max_resident_venues > 0 &&
        resident > options_.max_resident_venues) {
      return true;
    }
    return options_.memory_budget_bytes > 0 &&
           bytes > options_.memory_budget_bytes;
  };
  while (over_budget()) {
    std::map<std::string, Entry>::iterator victim = entries_.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const Entry& entry = it->second;
      if (entry.service == nullptr || entry.loading || it->first == keep) {
        continue;
      }
      if (entry.last_used < oldest) {
        oldest = entry.last_used;
        victim = it;
      }
    }
    // Only the protected venue remains: serving it beats the budget.
    if (victim == entries_.end()) break;
    EvictEntryLocked(victim->first, victim->second);
  }
}

void VenueRouter::EvictEntryLocked(const std::string& id, Entry& entry) {
  (void)id;
  // Dropping our reference is the whole eviction: in-flight callers hold
  // their own shared_ptr, so the service (and, once they finish, the tree
  // and its mapping) is destroyed after the last request completes. The
  // mapped file bytes stay in the page cache — that is the warm-restart
  // path Service() re-maps on the next touch.
  entry.service.reset();
  entry.resident_bytes = 0;
  entry.mapped_bytes = 0;
  ++entry.evictions;
  ++evictions_;
}

void VenueRouter::RegisterMetrics() {
  auto& registry = MetricsRegistry::Global();
  auto counter = [this](std::uint64_t VenueRouterMetrics::* field) {
    return [this, field]() {
      return Metrics().*field;
    };
  };
  auto gauge = [this](std::size_t VenueRouterMetrics::* field) {
    return [this, field]() {
      return static_cast<double>(Metrics().*field);
    };
  };
  metric_registrations_.push_back(registry.RegisterCallbackCounter(
      "ifls_router_loads_total", "", counter(&VenueRouterMetrics::loads)));
  metric_registrations_.push_back(registry.RegisterCallbackCounter(
      "ifls_router_hits_total", "", counter(&VenueRouterMetrics::hits)));
  metric_registrations_.push_back(registry.RegisterCallbackCounter(
      "ifls_router_evictions_total", "",
      counter(&VenueRouterMetrics::evictions)));
  metric_registrations_.push_back(registry.RegisterCallbackGauge(
      "ifls_router_known_venues", "",
      gauge(&VenueRouterMetrics::known_venues)));
  metric_registrations_.push_back(registry.RegisterCallbackGauge(
      "ifls_router_resident_venues", "",
      gauge(&VenueRouterMetrics::resident_venues)));
  metric_registrations_.push_back(registry.RegisterCallbackGauge(
      "ifls_router_resident_bytes", "",
      gauge(&VenueRouterMetrics::resident_bytes)));
  metric_registrations_.push_back(registry.RegisterCallbackGauge(
      "ifls_router_mapped_bytes", "",
      gauge(&VenueRouterMetrics::mapped_bytes)));
}

}  // namespace ifls
