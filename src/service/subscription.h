#ifndef IFLS_SERVICE_SUBSCRIPTION_H_
#define IFLS_SERVICE_SUBSCRIPTION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/core/continuous.h"
#include "src/service/delta_overlay.h"
#include "src/service/snapshot.h"

namespace ifls {

class IflsService;

/// Per-subscription configuration.
struct SubscriptionOptions {
  /// Relative staleness budget for the standing answer: an event only
  /// triggers a pushed re-solve when the continuous engine's certified
  /// lower bound can no longer prove the cached answer within `tolerance`
  /// of optimal. 0 keeps the subscription exact (pushes still elide when
  /// the cached answer provably remains optimal).
  double tolerance = 0.0;
};

/// One pushed re-solve of a standing query. Pushes are full solver answers:
/// bit-identical to a from-scratch SolveEfficient over the facility sets at
/// `version` with the subscription's clients after `ticks_applied` moves
/// (tests/subscription_fuzz_test locks this in).
struct SubscriptionPush {
  std::uint64_t subscription_id = 0;
  /// Push ordinal within the subscription; 0 is the initial answer
  /// delivered synchronously by Subscribe.
  std::uint64_t sequence = 0;
  /// Service mutation version (accepted-mutation count) folded into this
  /// answer.
  std::uint64_t version = 0;
  /// Client moves folded into this answer.
  std::uint64_t ticks_applied = 0;
  IflsResult result;
  /// Event admission -> push delivery.
  double latency_seconds = 0.0;
};

/// Invoked on the pumping thread (a service worker, or the caller itself in
/// admission-only mode) with the subscription's processing lock held:
/// reentering the service from the callback deadlocks. Must not throw.
using SubscriptionCallback = std::function<void(const SubscriptionPush&)>;

/// A standing IFLS query registered with IflsService::Subscribe. The
/// subscription pins the ServingState current at registration (its oracle
/// backs all future re-solves; distances are identical across snapshots
/// because the venue never changes) and mirrors the service's accepted
/// mutation stream plus its own trajectory ticks into a ContinuousIfls
/// monitor. Every event runs the monitor's certified-bound check; only
/// events that actually invalidate the cached answer (beyond the configured
/// tolerance) re-solve and push.
///
/// Thread-safe. Owned jointly by the service and the caller; after
/// Unsubscribe (or service stop) the object stays readable via Current()
/// but receives no further events.
class Subscription {
 public:
  /// Point-in-time observation of the standing answer.
  struct State {
    bool has_answer = false;
    PartitionId answer = kInvalidPartition;
    /// Exact current objective of the standing answer (certified, so valid
    /// even when the last events were skips).
    double objective = 0.0;
    std::uint64_t version = 0;
    std::uint64_t ticks_applied = 0;
    std::uint64_t events_processed = 0;
    std::uint64_t pushes = 0;
    std::int64_t solves = 0;
    std::int64_t skips = 0;
  };

  std::uint64_t id() const { return id_; }
  double tolerance() const { return options_.tolerance; }

  State Current() const;

 private:
  friend class IflsService;

  using Clock = std::chrono::steady_clock;

  /// Counter/histogram sinks the owning service aggregates pushes into.
  struct Sink {
    std::atomic<std::uint64_t>* events = nullptr;
    std::atomic<std::uint64_t>* pushes = nullptr;
    std::atomic<std::uint64_t>* solves = nullptr;
    std::atomic<std::uint64_t>* skips = nullptr;
    LatencyHistogram* push_seconds = nullptr;
  };

  /// One queued invalidation source: an accepted service mutation or a
  /// trajectory tick. Processed FIFO under monitor_mu_.
  struct Event {
    enum class Kind : std::uint8_t { kMutation, kTick };
    Kind kind = Kind::kMutation;
    Mutation mutation;                 // kMutation
    std::uint64_t version = 0;         // kMutation: version after applying
    ClientId client = 0;               // kTick
    Point position;
    PartitionId partition = kInvalidPartition;
    Clock::time_point enqueued_at;
  };

  Subscription(std::uint64_t id, SubscriptionOptions options,
               SubscriptionCallback callback,
               std::shared_ptr<const ServingState> pinned,
               const EfficientOptions& solver, Sink sink);

  /// Runs the initial solve and delivers push #0. Caller holds monitor_mu_.
  void DeliverInitialLocked(Clock::time_point subscribed_at);

  /// FIFO admission; no-ops once closed.
  void EnqueueMutation(const Mutation& mutation, std::uint64_t version,
                       Clock::time_point now);
  void EnqueueTick(ClientId client, const Point& position,
                   PartitionId partition, Clock::time_point now);

  /// Drains and processes every pending event (events enqueued while the
  /// pump runs are picked up too). Safe to call concurrently; monitor_mu_
  /// serializes.
  void Pump();

  /// Stops event intake and drops anything pending.
  void Close();

  void ProcessEventLocked(const Event& event);
  void PushLocked(const IflsResult& result, Clock::time_point enqueued_at);

  const std::uint64_t id_;
  const SubscriptionOptions options_;
  const SubscriptionCallback callback_;
  /// Pins the oracle (tree + venue) the monitor solves against.
  const std::shared_ptr<const ServingState> pinned_;
  const Sink sink_;

  /// Guards pending_ and closed_ only: Mutate's event fan-out must never
  /// block behind a running solve.
  mutable std::mutex events_mu_;
  std::deque<Event> pending_;
  bool closed_ = false;

  /// Serializes monitor access and everything below it.
  mutable std::mutex monitor_mu_;
  ContinuousIfls monitor_;
  std::uint64_t version_ = 0;        // mutations folded so far
  std::uint64_t ticks_applied_ = 0;  // moves folded so far
  std::uint64_t sequence_ = 0;       // next push ordinal
  std::uint64_t events_processed_ = 0;
  std::uint64_t pushes_ = 0;

  /// Scheduling dedup flag; guarded by the owning service's queue mutex.
  bool scheduled_ = false;
};

}  // namespace ifls

#endif  // IFLS_SERVICE_SUBSCRIPTION_H_
