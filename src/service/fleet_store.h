#ifndef IFLS_SERVICE_FLEET_STORE_H_
#define IFLS_SERVICE_FLEET_STORE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/index/vip_tree.h"
#include "src/indoor/venue.h"

namespace ifls {

// The on-disk layout VenueRouter serves from: one subdirectory per venue
// under a fleet root, each holding everything needed to (re)hydrate an
// IflsService without rebuilding the index:
//
//   <root>/<venue_id>/venue.txt       IFLS_VENUE text (io/venue_io)
//   <root>/<venue_id>/index.v3.ifls   VIP-tree snapshot, format v3 (mmap)
//   <root>/<venue_id>/index.v2.txt    same index, format v2 text (the
//                                     parse-load comparison path)
//   <root>/<venue_id>/facilities.txt  base existing/candidate sets
//
// Venue ids are the subdirectory names. Writing is offline (build once,
// serve many); loading picks the mmap path or the parse path per
// SnapshotLoadMode, so cold-load vs zero-copy-load is measurable on the
// exact same snapshot.

inline constexpr char kFleetVenueFileName[] = "venue.txt";
inline constexpr char kFleetIndexV3FileName[] = "index.v3.ifls";
inline constexpr char kFleetIndexV2FileName[] = "index.v2.txt";
inline constexpr char kFleetFacilitiesFileName[] = "facilities.txt";

/// How LoadVenueSnapshot hydrates the index.
enum class SnapshotLoadMode {
  /// Zero-copy: mmap the v3 file; arenas stay file-backed.
  kMmap,
  /// Legacy parse of the v2 text file into heap arenas (the before-world,
  /// kept as the bench baseline and a fallback).
  kParse,
};

/// One venue's snapshot, hydrated. The tree points at the venue, so the two
/// travel together; both are shared with the IndexSnapshots built on top.
struct LoadedVenueSnapshot {
  std::shared_ptr<const Venue> venue;
  std::shared_ptr<const VipTree> tree;
  std::vector<PartitionId> existing;
  std::vector<PartitionId> candidates;
};

/// Writes one venue's snapshot under `dir` (created if missing): the venue,
/// the index in both v3 and v2 formats, and the facility sets. Overwrites
/// existing files; partial writes surface as IOError.
Status WriteVenueSnapshot(const std::string& dir, const Venue& venue,
                          const VipTree& tree,
                          std::span<const PartitionId> existing,
                          std::span<const PartitionId> candidates);

/// Hydrates the snapshot written to `dir`, via mmap or parse.
Result<LoadedVenueSnapshot> LoadVenueSnapshot(const std::string& dir,
                                              SnapshotLoadMode mode);

/// Venue ids (subdirectory names containing a venue file) under `root`,
/// sorted ascending for deterministic iteration.
Result<std::vector<std::string>> ListFleetVenues(const std::string& root);

}  // namespace ifls

#endif  // IFLS_SERVICE_FLEET_STORE_H_
