#include "src/service/subscription.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/trace.h"

namespace ifls {

Subscription::Subscription(std::uint64_t id, SubscriptionOptions options,
                           SubscriptionCallback callback,
                           std::shared_ptr<const ServingState> pinned,
                           const EfficientOptions& solver, Sink sink)
    : id_(id),
      options_(options),
      callback_(std::move(callback)),
      pinned_(std::move(pinned)),
      sink_(sink),
      // The monitor starts from the effective (snapshot ⊕ overlay) sets at
      // registration and thereafter mirrors the service's accepted mutation
      // stream, so its sets always equal the service's composition at the
      // folded version. Distances go straight to the pinned tree —
      // bit-identical to any OverlayOracle, which only forwards.
      monitor_(&pinned_->snapshot->tree(),
               pinned_->overlay.effective_existing(),
               pinned_->overlay.effective_candidates(),
               ContinuousIfls::Options{solver}) {}

Subscription::State Subscription::Current() const {
  std::lock_guard<std::mutex> lock(monitor_mu_);
  State state;
  state.has_answer = monitor_.has_cached_answer();
  state.answer = monitor_.cached_answer();
  if (state.has_answer) state.objective = monitor_.certified_objective();
  state.version = version_;
  state.ticks_applied = ticks_applied_;
  state.events_processed = events_processed_;
  state.pushes = pushes_;
  state.solves = monitor_.solve_count();
  state.skips = monitor_.skip_count();
  return state;
}

void Subscription::DeliverInitialLocked(Clock::time_point subscribed_at) {
  Result<IflsResult> answer = monitor_.Answer();
  if (!answer.ok()) {
    IFLS_LOG(ERROR) << "subscription " << id_ << " initial solve failed: "
                    << answer.status().ToString();
    return;
  }
  if (sink_.solves != nullptr) {
    sink_.solves->fetch_add(1, std::memory_order_relaxed);
  }
  PushLocked(answer.value(), subscribed_at);
}

void Subscription::EnqueueMutation(const Mutation& mutation,
                                   std::uint64_t version,
                                   Clock::time_point now) {
  Event event;
  event.kind = Event::Kind::kMutation;
  event.mutation = mutation;
  event.version = version;
  event.enqueued_at = now;
  std::lock_guard<std::mutex> lock(events_mu_);
  if (closed_) return;
  pending_.push_back(event);
}

void Subscription::EnqueueTick(ClientId client, const Point& position,
                               PartitionId partition, Clock::time_point now) {
  Event event;
  event.kind = Event::Kind::kTick;
  event.client = client;
  event.position = position;
  event.partition = partition;
  event.enqueued_at = now;
  std::lock_guard<std::mutex> lock(events_mu_);
  if (closed_) return;
  pending_.push_back(event);
}

void Subscription::Pump() {
  TraceSpan span(TraceCategory::kService, "subscription_pump");
  std::lock_guard<std::mutex> lock(monitor_mu_);
  for (;;) {
    Event event;
    {
      std::lock_guard<std::mutex> elock(events_mu_);
      if (pending_.empty()) return;
      event = pending_.front();
      pending_.pop_front();
    }
    ProcessEventLocked(event);
  }
}

void Subscription::Close() {
  std::lock_guard<std::mutex> lock(events_mu_);
  closed_ = true;
  pending_.clear();
}

void Subscription::ProcessEventLocked(const Event& event) {
  ++events_processed_;
  if (sink_.events != nullptr) {
    sink_.events->fetch_add(1, std::memory_order_relaxed);
  }
  Status applied = Status::OK();
  switch (event.kind) {
    case Event::Kind::kMutation:
      switch (event.mutation.kind) {
        case MutationKind::kAddFacility:
          applied = monitor_.AddExistingFacility(event.mutation.partition);
          break;
        case MutationKind::kRemoveFacility:
          applied = monitor_.RemoveExistingFacility(event.mutation.partition);
          break;
        case MutationKind::kAddCandidate:
          applied = monitor_.AddCandidateFacility(event.mutation.partition);
          break;
        case MutationKind::kRemoveCandidate:
          applied = monitor_.RemoveCandidateFacility(event.mutation.partition);
          break;
      }
      // The service only forwards overlay-accepted mutations and the monitor
      // mirrors that exact stream, so folding cannot fail; version tracking
      // stays monotonic either way.
      version_ = event.version;
      break;
    case Event::Kind::kTick:
      applied = monitor_.MoveClient(event.client, event.position,
                                    event.partition);
      if (applied.ok()) ++ticks_applied_;
      break;
  }
  if (!applied.ok()) {
    IFLS_LOG(ERROR) << "subscription " << id_ << " failed to fold event: "
                    << applied.ToString();
    return;
  }
  // Bound-based invalidation: the continuous engine's certified lower bound
  // decides in O(1) whether the cached answer survives this event.
  Result<ContinuousIfls::MonitorAnswer> answer =
      monitor_.AnswerWithin(options_.tolerance);
  if (!answer.ok()) {
    IFLS_LOG(ERROR) << "subscription " << id_ << " re-solve failed: "
                    << answer.status().ToString();
    return;
  }
  if (answer.value().refreshed) {
    if (sink_.solves != nullptr) {
      sink_.solves->fetch_add(1, std::memory_order_relaxed);
    }
    PushLocked(answer.value().result, event.enqueued_at);
  } else if (sink_.skips != nullptr) {
    sink_.skips->fetch_add(1, std::memory_order_relaxed);
  }
}

void Subscription::PushLocked(const IflsResult& result,
                              Clock::time_point enqueued_at) {
  SubscriptionPush push;
  push.subscription_id = id_;
  push.sequence = sequence_++;
  push.version = version_;
  push.ticks_applied = ticks_applied_;
  push.result = result;
  push.latency_seconds =
      std::chrono::duration<double>(Clock::now() - enqueued_at).count();
  ++pushes_;
  if (sink_.pushes != nullptr) {
    sink_.pushes->fetch_add(1, std::memory_order_relaxed);
  }
  if (sink_.push_seconds != nullptr) {
    sink_.push_seconds->Record(push.latency_seconds);
  }
  if (callback_) {
    TraceSpan span(TraceCategory::kService, "subscription_push");
    callback_(push);
  }
}

}  // namespace ifls
