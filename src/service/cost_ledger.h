#ifndef IFLS_SERVICE_COST_LEDGER_H_
#define IFLS_SERVICE_COST_LEDGER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/metrics_registry.h"
#include "src/common/trace.h"
#include "src/core/query.h"
#include "src/core/solve_dispatch.h"

namespace ifls {

/// One completed query as the cost ledger sees it (DESIGN.md §15): where it
/// ran (venue), what it computed (objective), who asked (trace id + the
/// caller's RPC span id when the query arrived over the wire), how long each
/// serving phase took, and the solver/oracle work counters attributed to it.
struct QueryCostSample {
  /// ServiceOptions::venue_label of the service that ran the query; empty
  /// for unlabeled single-venue services.
  std::string venue;
  IflsObjective objective = IflsObjective::kMinMax;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  double queue_seconds = 0.0;
  double solve_seconds = 0.0;
  QueryStats stats;
};

/// A retained worst-query entry: the sample, the kernel tier that served it,
/// and — when the query won the sampling draw — its full span tree, captured
/// at record time so the trace ring wrapping later cannot lose it.
struct SlowQueryRecord {
  QueryCostSample sample;
  std::string tier;
  std::vector<TraceEvent> spans;
};

/// Process-wide per-query cost ledger (DESIGN.md §15). Two products:
///
///  - Per-{venue, objective, tier} aggregates: every completed query folds
///    its phase times and work counters into exponentially-decayed means
///    (time constant kDecayTauSeconds — a sample from tau seconds ago
///    contributes e^-1 of a fresh one), registered lazily as
///    `ifls_ledger_*{venue=...,objective=...,tier=...}` series in
///    MetricsRegistry, so a Prometheus scrape shows the *current* cost shape
///    of production traffic, not a lifetime average.
///
///  - A fixed-capacity ring of the K worst queries by total latency
///    (queue + solve), each retaining its full span tree for post-hoc
///    retrieval through the /slow admin endpoint. Admission is a lock-free
///    scan of K atomic latency words: the common case (query not among the
///    K worst) costs K relaxed loads and allocates nothing. A query that
///    beats the current minimum claims the slot by CAS on the latency word,
///    then publishes the record under that slot's mutex; a claim lost to a
///    concurrent racer drops the sample (best-effort by design — under
///    contention every retained entry is still a real query, entries are
///    just not guaranteed to be the exact K worst).
///
/// All methods are safe from any thread.
class QueryCostLedger {
 public:
  static constexpr std::size_t kSlowRingSlots = 8;
  static constexpr double kDecayTauSeconds = 60.0;

  static QueryCostLedger& Global();

  /// Folds one completed query into the aggregates and offers it to the
  /// slow ring. `capture_spans` controls whether a ring winner snapshots its
  /// span tree (callers pass the query's sampling verdict).
  void RecordQuery(const QueryCostSample& sample, bool capture_spans);

  /// The retained worst queries, worst (highest total latency) first.
  std::vector<std::shared_ptr<const SlowQueryRecord>> SlowQueries() const;

  /// SlowQueries() rendered as the /slow JSON document: an array of records
  /// with their span trees ({name, cat, tid, start_us, dur_us} objects).
  std::string SlowQueriesJson() const;

  /// Drops all aggregates (unregistering their metrics series) and empties
  /// the slow ring. Test isolation only — production never resets.
  void Reset();

  QueryCostLedger(const QueryCostLedger&) = delete;
  QueryCostLedger& operator=(const QueryCostLedger&) = delete;

 private:
  /// Decayed means for one {venue, objective, tier} key. Folding and the
  /// metrics callbacks share `mu` (samples are slow-path relative to the
  /// queries themselves; contention is per-key).
  struct Aggregate {
    mutable std::mutex mu;
    std::uint64_t queries = 0;
    std::uint64_t last_update_nanos = 0;
    double solve_seconds = 0.0;
    double queue_seconds = 0.0;
    double kernel_invocations = 0.0;
    double compositions = 0.0;
    double door_cache_hits = 0.0;
    double door_cache_misses = 0.0;
    double dijkstra_fallbacks = 0.0;
    std::vector<MetricsRegistry::Registration> registrations;
  };

  struct SlowSlot {
    /// Total latency of the resident entry; 0 = empty. The admission word.
    std::atomic<double> total_seconds{0.0};
    mutable std::mutex mu;
    std::shared_ptr<const SlowQueryRecord> record;
  };

  QueryCostLedger() = default;
  ~QueryCostLedger() = default;  // never runs: Global() leaks the singleton

  Aggregate* AggregateFor(const std::string& venue, IflsObjective objective,
                          const char* tier);
  void OfferSlow(const QueryCostSample& sample, const char* tier,
                 bool capture_spans);

  mutable std::mutex map_mu_;
  std::map<std::string, std::unique_ptr<Aggregate>> aggregates_;
  std::array<SlowSlot, kSlowRingSlots> slow_ring_;
};

}  // namespace ifls

#endif  // IFLS_SERVICE_COST_LEDGER_H_
