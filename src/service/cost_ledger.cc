#include "src/service/cost_ledger.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/index/minplus_kernels.h"

namespace ifls {

namespace {

/// Prometheus-friendly lowercase objective label ("minmax"/"mindist"/
/// "maxsum"), distinct from the display-cased IflsObjectiveName.
const char* ObjectiveLabel(IflsObjective objective) {
  switch (objective) {
    case IflsObjective::kMinMax: return "minmax";
    case IflsObjective::kMinDist: return "mindist";
    case IflsObjective::kMaxSum: return "maxsum";
  }
  return "unknown";
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

}  // namespace

QueryCostLedger& QueryCostLedger::Global() {
  // Leaked like TraceRecorder::Global(): worker threads may record during
  // static destruction, and the registry callbacks must stay valid until
  // their registrations die with this object.
  static QueryCostLedger* instance = new QueryCostLedger();
  return *instance;
}

QueryCostLedger::Aggregate* QueryCostLedger::AggregateFor(
    const std::string& venue, IflsObjective objective, const char* tier) {
  std::string key = venue;
  key.push_back('\0');
  key += ObjectiveLabel(objective);
  key.push_back('\0');
  key += tier;

  std::lock_guard<std::mutex> lock(map_mu_);
  auto it = aggregates_.find(key);
  if (it != aggregates_.end()) return it->second.get();

  auto aggregate = std::make_unique<Aggregate>();
  Aggregate* agg = aggregate.get();
  std::string labels = "venue=\"" + venue + "\",objective=\"" +
                       ObjectiveLabel(objective) + "\",tier=\"" + tier + "\"";
  MetricsRegistry& registry = MetricsRegistry::Global();
  // The callbacks capture `agg` raw: aggregates live until Reset(), which
  // drops every registration (callback guaranteed quiescent) first.
  agg->registrations.push_back(registry.RegisterCallbackCounter(
      "ifls_ledger_queries_total", labels, [agg]() -> std::uint64_t {
        std::lock_guard<std::mutex> l(agg->mu);
        return agg->queries;
      }));
  const auto gauge = [&](const char* name, double Aggregate::* field) {
    agg->registrations.push_back(registry.RegisterCallbackGauge(
        name, labels, [agg, field]() -> double {
          std::lock_guard<std::mutex> l(agg->mu);
          return agg->*field;
        }));
  };
  gauge("ifls_ledger_solve_seconds", &Aggregate::solve_seconds);
  gauge("ifls_ledger_queue_seconds", &Aggregate::queue_seconds);
  gauge("ifls_ledger_kernel_invocations", &Aggregate::kernel_invocations);
  gauge("ifls_ledger_compositions", &Aggregate::compositions);
  gauge("ifls_ledger_door_cache_hits", &Aggregate::door_cache_hits);
  gauge("ifls_ledger_door_cache_misses", &Aggregate::door_cache_misses);
  gauge("ifls_ledger_dijkstra_fallbacks", &Aggregate::dijkstra_fallbacks);

  it = aggregates_.emplace(std::move(key), std::move(aggregate)).first;
  return it->second.get();
}

void QueryCostLedger::RecordQuery(const QueryCostSample& sample,
                                  bool capture_spans) {
  const char* tier = kernels::ActiveKernelName();
  Aggregate* agg = AggregateFor(sample.venue, sample.objective, tier);
  const std::uint64_t now = TraceNowNanos();
  {
    std::lock_guard<std::mutex> lock(agg->mu);
    // Decayed-mean fold: the previous mean loses exp(-dt/tau) of its weight
    // per dt seconds of wall clock, so idle keys drift toward the newest
    // samples instead of averaging over their whole lifetime. The first
    // sample seeds the means directly.
    double w = 0.0;
    if (agg->queries > 0) {
      const double dt =
          static_cast<double>(now - agg->last_update_nanos) / 1e9;
      w = std::exp(-std::max(dt, 0.0) / kDecayTauSeconds);
    }
    const auto fold = [w](double* mean, double x) {
      *mean = w * *mean + (1.0 - w) * x;
    };
    fold(&agg->solve_seconds, sample.solve_seconds);
    fold(&agg->queue_seconds, sample.queue_seconds);
    fold(&agg->kernel_invocations,
         static_cast<double>(sample.stats.kernel_invocations));
    fold(&agg->compositions, static_cast<double>(sample.stats.matrix_lookups));
    fold(&agg->door_cache_hits, static_cast<double>(sample.stats.cache_hits));
    fold(&agg->door_cache_misses,
         static_cast<double>(sample.stats.cache_misses));
    fold(&agg->dijkstra_fallbacks,
         static_cast<double>(sample.stats.dijkstra_fallbacks));
    agg->queries += 1;
    agg->last_update_nanos = now;
  }
  OfferSlow(sample, tier, capture_spans);
}

void QueryCostLedger::OfferSlow(const QueryCostSample& sample,
                                const char* tier, bool capture_spans) {
  const double total = sample.queue_seconds + sample.solve_seconds;
  if (total <= 0.0) return;  // the empty-slot sentinel is 0

  // Lock-free admission: find the cheapest resident entry; bail without
  // allocating when this query does not beat it.
  std::size_t victim = 0;
  double victim_total = slow_ring_[0].total_seconds.load(
      std::memory_order_relaxed);
  for (std::size_t i = 1; i < kSlowRingSlots; ++i) {
    const double t = slow_ring_[i].total_seconds.load(
        std::memory_order_relaxed);
    if (t < victim_total) {
      victim = i;
      victim_total = t;
    }
  }
  if (total <= victim_total) return;
  double expected = victim_total;
  if (!slow_ring_[victim].total_seconds.compare_exchange_strong(
          expected, total, std::memory_order_acq_rel)) {
    return;  // a concurrent recorder claimed the slot; drop (best-effort)
  }

  auto record = std::make_shared<SlowQueryRecord>();
  record->sample = sample;
  record->tier = tier;
  if (capture_spans && sample.trace_id != 0) {
    record->spans = TraceRecorder::Global().SnapshotTrace(sample.trace_id);
  }
  std::lock_guard<std::mutex> lock(slow_ring_[victim].mu);
  slow_ring_[victim].record = std::move(record);
}

std::vector<std::shared_ptr<const SlowQueryRecord>>
QueryCostLedger::SlowQueries() const {
  std::vector<std::shared_ptr<const SlowQueryRecord>> records;
  for (const SlowSlot& slot : slow_ring_) {
    std::shared_ptr<const SlowQueryRecord> record;
    {
      std::lock_guard<std::mutex> lock(slot.mu);
      record = slot.record;
    }
    if (record != nullptr) records.push_back(std::move(record));
  }
  std::sort(records.begin(), records.end(),
            [](const std::shared_ptr<const SlowQueryRecord>& a,
               const std::shared_ptr<const SlowQueryRecord>& b) {
              const double ta =
                  a->sample.queue_seconds + a->sample.solve_seconds;
              const double tb =
                  b->sample.queue_seconds + b->sample.solve_seconds;
              if (ta != tb) return ta > tb;
              return a->sample.trace_id < b->sample.trace_id;
            });
  return records;
}

std::string QueryCostLedger::SlowQueriesJson() const {
  const auto records = SlowQueries();
  std::string out = "{\n  \"slow_queries\": [";
  bool first_record = true;
  for (const auto& record : records) {
    out += first_record ? "\n    {" : ",\n    {";
    first_record = false;
    const QueryCostSample& s = record->sample;
    out += "\"trace_id\": " + std::to_string(s.trace_id);
    out += ", \"parent_span_id\": " + std::to_string(s.parent_span_id);
    out += ", \"venue\": ";
    AppendJsonString(&out, s.venue);
    out += ", \"objective\": \"";
    out += ObjectiveLabel(s.objective);
    out += "\", \"tier\": ";
    AppendJsonString(&out, record->tier);
    out += ", \"queue_seconds\": ";
    AppendJsonDouble(&out, s.queue_seconds);
    out += ", \"solve_seconds\": ";
    AppendJsonDouble(&out, s.solve_seconds);
    out += ", \"stats\": {\"kernel_invocations\": " +
           std::to_string(s.stats.kernel_invocations);
    out += ", \"compositions\": " + std::to_string(s.stats.matrix_lookups);
    out += ", \"door_cache_hits\": " + std::to_string(s.stats.cache_hits);
    out += ", \"door_cache_misses\": " + std::to_string(s.stats.cache_misses);
    out += ", \"dijkstra_fallbacks\": " +
           std::to_string(s.stats.dijkstra_fallbacks);
    out += ", \"distance_computations\": " +
           std::to_string(s.stats.distance_computations);
    out += "}, \"spans\": [";
    bool first_span = true;
    for (const TraceEvent& e : record->spans) {
      out += first_span ? "\n      {" : ",\n      {";
      first_span = false;
      out += "\"name\": ";
      AppendJsonString(&out, e.name != nullptr ? e.name : "");
      out += ", \"cat\": \"";
      out += TraceCategoryName(e.category);
      out += "\", \"tid\": " + std::to_string(e.tid);
      out += ", \"start_us\": ";
      AppendJsonDouble(&out, static_cast<double>(e.start_nanos) / 1e3);
      out += ", \"dur_us\": ";
      AppendJsonDouble(&out,
                       static_cast<double>(e.end_nanos - e.start_nanos) / 1e3);
      out += "}";
    }
    out += first_span ? "]}" : "\n    ]}";
  }
  out += first_record ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void QueryCostLedger::Reset() {
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    // Drop registrations first: after each Reset() returns, its callback is
    // guaranteed not to be running, so freeing the aggregates is safe.
    for (auto& [key, aggregate] : aggregates_) {
      aggregate->registrations.clear();
    }
    aggregates_.clear();
  }
  for (SlowSlot& slot : slow_ring_) {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.record.reset();
    slot.total_seconds.store(0.0, std::memory_order_relaxed);
  }
}

}  // namespace ifls
