#include "src/service/service.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/common/logging.h"
#include "src/common/stopwatch.h"
#include "src/service/cost_ledger.h"

namespace ifls {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point DeadlineFor(Clock::time_point admitted_at,
                              double request_seconds,
                              double default_seconds) {
  double seconds = request_seconds;
  if (seconds == 0.0) seconds = default_seconds;
  if (seconds <= 0.0) return Clock::time_point::max();
  return admitted_at + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
}

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Distinguishes concurrently-live services in the metrics registry.
std::string NextInstanceLabel() {
  static std::atomic<std::uint64_t> next_instance{0};
  return "instance=\"" +
         std::to_string(next_instance.fetch_add(1, std::memory_order_relaxed)) +
         "\"";
}

}  // namespace

std::string ServiceMetrics::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "submitted=%llu admitted=%llu shed=%llu completed=%llu failed=%llu "
      "deadline_expired=%llu mutations=%llu rejected=%llu compactions=%llu "
      "cache_hit=%llu cache_miss=%llu cache_entries=%llu cache_evict=%llu "
      "iterators=%llu subs=%zu sub_events=%llu sub_pushes=%llu "
      "sub_solves=%llu sub_skips=%llu "
      "epoch=%llu overlay=%zu queue_depth=%zu p50=%.1fus p99=%.1fus",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(deadline_expired),
      static_cast<unsigned long long>(mutations_applied),
      static_cast<unsigned long long>(mutations_rejected),
      static_cast<unsigned long long>(compactions),
      static_cast<unsigned long long>(oracle_cache_hits),
      static_cast<unsigned long long>(oracle_cache_misses),
      static_cast<unsigned long long>(oracle_cache_entries),
      static_cast<unsigned long long>(oracle_cache_evictions),
      static_cast<unsigned long long>(iterators_opened), subscriptions_active,
      static_cast<unsigned long long>(subscription_events),
      static_cast<unsigned long long>(subscription_pushes),
      static_cast<unsigned long long>(subscription_solves),
      static_cast<unsigned long long>(subscription_skips),
      static_cast<unsigned long long>(snapshot_epoch), overlay_size,
      queue_depth, latency_p50_seconds * 1e6, latency_p99_seconds * 1e6);
  return buf;
}

Result<std::unique_ptr<IflsService>> IflsService::Create(
    Venue venue, std::vector<PartitionId> existing,
    std::vector<PartitionId> candidates, const ServiceOptions& options) {
  return CreateFromParts(std::make_shared<const Venue>(std::move(venue)),
                         /*tree=*/nullptr, std::move(existing),
                         std::move(candidates), options);
}

Result<std::unique_ptr<IflsService>> IflsService::CreateFromParts(
    std::shared_ptr<const Venue> venue, std::shared_ptr<const VipTree> tree,
    std::vector<PartitionId> existing, std::vector<PartitionId> candidates,
    const ServiceOptions& options) {
  if (options.num_workers < 0) {
    return Status::InvalidArgument("num_workers must be >= 0");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (venue == nullptr) {
    return Status::InvalidArgument("venue must not be null");
  }
  if (tree != nullptr && &tree->venue() != venue.get()) {
    return Status::InvalidArgument(
        "pre-built tree does not reference the supplied venue");
  }
  const std::size_t num_partitions = venue->num_partitions();
  Result<std::shared_ptr<const IndexSnapshot>> boot = IndexSnapshot::Build(
      std::move(venue), std::move(existing), std::move(candidates),
      /*epoch=*/0, options.tree, std::move(tree));
  if (!boot.ok()) return boot.status();
  std::unique_ptr<IflsService> service(new IflsService(
      options, std::move(boot).value(), num_partitions));
  service->StartThreads();
  return service;
}

IflsService::IflsService(ServiceOptions options,
                         std::shared_ptr<const IndexSnapshot> boot,
                         std::size_t num_partitions)
    : options_(std::move(options)),
      overlay_(num_partitions, boot->existing(), boot->candidates()),
      snapshot_(std::move(boot)) {
  // Publish the boot state before any thread exists, so AcquireState() is
  // never null and needs no locking.
  state_.Store(std::make_shared<const ServingState>(snapshot_,
                                                    overlay_.delta()));
  RegisterMetrics();
}

IflsService::~IflsService() {
  // Drop the registry callbacks before anything else dies: once clear()
  // returns, no exposition pass can touch this service again.
  metric_registrations_.clear();
  Stop();
}

void IflsService::RegisterMetrics() {
  MetricsRegistry& registry = MetricsRegistry::Global();

  query_distance_computations_ =
      registry.GetCounter("ifls_query_distance_computations_total");
  query_lower_bound_computations_ =
      registry.GetCounter("ifls_query_lower_bound_computations_total");
  query_nn_searches_ = registry.GetCounter("ifls_query_nn_searches_total");
  query_clients_pruned_ =
      registry.GetCounter("ifls_query_clients_pruned_total");
  query_cache_hits_ = registry.GetCounter("ifls_query_cache_hits_total");
  query_cache_misses_ = registry.GetCounter("ifls_query_cache_misses_total");
  iterator_pages_ = registry.GetCounter("ifls_iterator_pages_total");
  subscription_push_seconds_ =
      registry.GetHistogram("ifls_subscription_push_seconds");

  const std::string label = NextInstanceLabel();
  auto counter = [&](const char* name, const std::atomic<std::uint64_t>* v) {
    metric_registrations_.push_back(registry.RegisterCallbackCounter(
        name, label, [v] { return v->load(std::memory_order_relaxed); }));
  };
  counter("ifls_service_submitted_total", &submitted_);
  counter("ifls_service_admitted_total", &admitted_);
  counter("ifls_service_shed_total", &shed_);
  counter("ifls_service_completed_total", &completed_);
  counter("ifls_service_failed_total", &failed_);
  counter("ifls_service_deadline_expired_total", &deadline_expired_);
  counter("ifls_service_mutations_applied_total", &mutations_applied_);
  counter("ifls_service_mutations_rejected_total", &mutations_rejected_);
  counter("ifls_service_compactions_total", &compactions_);
  counter("ifls_service_oracle_cache_hits_total", &oracle_cache_hits_);
  counter("ifls_service_oracle_cache_misses_total", &oracle_cache_misses_);
  counter("ifls_service_iterators_opened_total", &iterators_opened_);
  counter("ifls_subscription_events_total", &subscription_events_);
  counter("ifls_subscription_pushes_total", &subscription_pushes_);
  counter("ifls_subscription_solves_total", &subscription_solves_);
  counter("ifls_subscription_skips_total", &subscription_skips_);

  metric_registrations_.push_back(registry.RegisterCallbackGauge(
      "ifls_subscription_active", label, [this] {
        std::lock_guard<std::mutex> lock(subs_mu_);
        return static_cast<double>(subscriptions_.size());
      }));

  metric_registrations_.push_back(registry.RegisterCallbackGauge(
      "ifls_service_queue_depth", label, [this] {
        std::lock_guard<std::mutex> lock(queue_mu_);
        return static_cast<double>(queue_.size());
      }));
  metric_registrations_.push_back(registry.RegisterCallbackGauge(
      "ifls_service_snapshot_epoch", label, [this] {
        return static_cast<double>(state_.Acquire()->snapshot->epoch());
      }));
  metric_registrations_.push_back(registry.RegisterCallbackGauge(
      "ifls_service_overlay_size", label, [this] {
        return static_cast<double>(state_.Acquire()->overlay.delta().size());
      }));
  metric_registrations_.push_back(registry.RegisterCallbackGauge(
      "ifls_service_door_cache_entries", label, [this] {
        return static_cast<double>(
            state_.Acquire()->snapshot->tree().door_cache_stats().entries);
      }));
  metric_registrations_.push_back(registry.RegisterCallbackGauge(
      "ifls_service_door_cache_evictions", label, [this] {
        return static_cast<double>(
            state_.Acquire()->snapshot->tree().door_cache_stats().evictions);
      }));
  metric_registrations_.push_back(registry.RegisterCallbackHistogram(
      "ifls_service_latency_seconds", label, &latency_));
}

void IflsService::StartThreads() {
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  compactor_ = std::thread([this] { CompactorLoop(); });
}

std::shared_ptr<const ServingState> IflsService::AcquireState() const {
  return state_.Acquire();
}

std::uint64_t IflsService::snapshot_epoch() const {
  return state_.Acquire()->snapshot->epoch();
}

// ---------------------------------------------------------------------------
// Query path
// ---------------------------------------------------------------------------

IflsService::PendingQuery IflsService::MakePending(ServiceRequest request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  PendingQuery item;
  item.request = std::move(request);
  item.admitted_at = Clock::now();
  // The admission stamp doubles as the queue-wait span start, so tracing
  // adds no clock read here; the id is one relaxed fetch_add.
  if (item.request.trace_id != 0) {
    // Propagated context (a networked query): adopt the caller's trace id
    // and carry its sampling verdict — the server never re-rolls the draw
    // for a query the client already decided to sample (or not).
    item.trace_id = item.request.trace_id;
    item.trace_propagated = true;
    item.trace_sampled = item.request.trace_sampled;
  } else if (TraceEnabled()) {
    item.trace_id = TraceRecorder::Global().NewTraceId();
  }
  item.deadline = DeadlineFor(item.admitted_at, item.request.deadline_seconds,
                              options_.default_deadline_seconds);
  return item;
}

Status IflsService::Admit(PendingQuery item) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("service is stopping");
    }
    if (queue_.size() >= options_.queue_capacity) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("admission queue full (" +
                                 std::to_string(options_.queue_capacity) +
                                 " queries)");
    }
    queue_.push_back(std::move(item));
    admitted_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
  return Status::OK();
}

void IflsService::Deliver(PendingQuery* item, ServiceReply reply) {
  if (item->done) {
    item->done(std::move(reply));
  } else {
    item->promise.set_value(std::move(reply));
  }
}

Result<std::future<ServiceReply>> IflsService::SubmitQuery(
    ServiceRequest request) {
  PendingQuery item = MakePending(std::move(request));
  std::future<ServiceReply> future = item.promise.get_future();
  IFLS_RETURN_NOT_OK(Admit(std::move(item)));
  return future;
}

Status IflsService::SubmitQueryAsync(ServiceRequest request,
                                     std::function<void(ServiceReply)> done) {
  PendingQuery item = MakePending(std::move(request));
  item.done = std::move(done);
  return Admit(std::move(item));
}

ServiceReply IflsService::Query(ServiceRequest request) {
  Result<std::future<ServiceReply>> submitted =
      SubmitQuery(std::move(request));
  ServiceReply reply;
  if (!submitted.ok()) {
    reply.status = submitted.status();
    return reply;
  }
  std::future<ServiceReply> future = std::move(submitted).value();
  if (options_.num_workers == 0) {
    // Admission-only mode: pump the queue on the calling thread until this
    // request's reply materializes (it may not be the next item in line).
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!ProcessOneInline()) break;
    }
  }
  return future.get();
}

bool IflsService::ProcessOneInline() {
  PendingQuery item;
  std::shared_ptr<Subscription> pump;
  bool have_query = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!queue_.empty()) {
      item = std::move(queue_.front());
      queue_.pop_front();
      have_query = true;
    } else if (!sub_pumps_.empty()) {
      pump = std::move(sub_pumps_.front());
      sub_pumps_.pop_front();
      pump->scheduled_ = false;
    } else {
      return false;
    }
    ++executing_;
  }
  if (have_query) {
    Execute(std::move(item));
  } else {
    pump->Pump();
  }
  FinishOneTask();
  return true;
}

bool IflsService::ProcessOnePumpInline() {
  std::shared_ptr<Subscription> pump;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (sub_pumps_.empty()) return false;
    pump = std::move(sub_pumps_.front());
    sub_pumps_.pop_front();
    pump->scheduled_ = false;
    ++executing_;
  }
  pump->Pump();
  FinishOneTask();
  return true;
}

void IflsService::FinishOneTask() {
  std::lock_guard<std::mutex> lock(queue_mu_);
  --executing_;
  if (queue_.empty() && sub_pumps_.empty() && executing_ == 0) {
    drained_cv_.notify_all();
  }
}

void IflsService::WorkerLoop() {
  for (;;) {
    PendingQuery item;
    std::shared_ptr<Subscription> pump;
    bool have_query = false;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_ || !queue_.empty() || !sub_pumps_.empty();
      });
      // stopping_, both queues already drained
      if (queue_.empty() && sub_pumps_.empty()) return;
      if (!queue_.empty()) {
        item = std::move(queue_.front());
        queue_.pop_front();
        have_query = true;
      } else {
        pump = std::move(sub_pumps_.front());
        sub_pumps_.pop_front();
        pump->scheduled_ = false;
      }
      ++executing_;
    }
    if (have_query) {
      Execute(std::move(item));
    } else {
      pump->Pump();
    }
    FinishOneTask();
  }
}

void IflsService::Execute(PendingQuery item) {
  const Clock::time_point start = Clock::now();
  ServiceReply reply;
  reply.trace_id = item.trace_id;
  reply.queue_seconds = Seconds(start - item.admitted_at);

  // Spans below this point carry the query's trace id; a query that lost
  // the 1-in-N sampling draw records nothing at all. Propagated contexts
  // carry the caller's verdict instead of a fresh local draw: a client that
  // sampled its RPC must see the server half of the trace, and a client
  // that didn't must not pay for one (DESIGN.md §15).
  TraceRecorder& recorder = TraceRecorder::Global();
  const bool sampled =
      item.trace_propagated
          ? (TraceEnabled() && item.trace_sampled)
          : (TraceEnabled() && item.trace_id != 0 &&
             recorder.Sampled(item.trace_id));
  TraceIdScope trace_scope(item.trace_id, sampled);
  if (sampled) {
    recorder.Record(TraceCategory::kService, "queue_wait", item.trace_id,
                    TraceNanosFrom(item.admitted_at), TraceNanosFrom(start));
  }

  if (start > item.deadline) {
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    reply.status = Status::DeadlineExceeded(
        "deadline passed after " + std::to_string(reply.queue_seconds) +
        "s in queue");
    latency_.Record(reply.queue_seconds);
    Deliver(&item, std::move(reply));
    return;
  }

  // One atomic acquire pins a mutually consistent (snapshot, overlay) pair
  // for the whole solve; concurrent mutations and snapshot publications
  // build fresh states and never touch this one.
  std::shared_ptr<const ServingState> state;
  {
    TraceSpan span(TraceCategory::kService, "snapshot_pin");
    state = state_.Acquire();
  }
  reply.snapshot_epoch = state->snapshot->epoch();
  reply.overlay_size = state->overlay.delta().size();

  IflsContext ctx;
  {
    TraceSpan span(TraceCategory::kService, "overlay_compose");
    ctx.oracle = &state->oracle();
    ctx.existing = state->overlay.effective_existing();
    ctx.candidates = state->overlay.effective_candidates();
    ctx.clients = std::move(item.request.clients);
  }

  Stopwatch solve_watch;
  Result<IflsResult> solved = Status::Internal("solver did not run");
  {
    TraceSpan span(TraceCategory::kService, "solve");
    solved = SolveWithObjective(item.request.objective, ctx, options_.solvers);
  }
  reply.solve_seconds = solve_watch.ElapsedSeconds();

  completed_.fetch_add(1, std::memory_order_relaxed);
  if (solved.ok()) {
    reply.result = std::move(solved).value();
    // Fold the query's per-thread-attributed memo traffic into the service
    // totals; the sink mechanism guarantees these are exactly this query's.
    const QueryStats& stats = reply.result.stats;
    oracle_cache_hits_.fetch_add(stats.cache_hits, std::memory_order_relaxed);
    oracle_cache_misses_.fetch_add(stats.cache_misses,
                                   std::memory_order_relaxed);
    query_distance_computations_->Add(
        static_cast<std::uint64_t>(stats.distance_computations));
    query_lower_bound_computations_->Add(
        static_cast<std::uint64_t>(stats.lower_bound_computations));
    query_nn_searches_->Add(static_cast<std::uint64_t>(stats.nn_searches));
    query_clients_pruned_->Add(
        static_cast<std::uint64_t>(stats.clients_pruned));
    query_cache_hits_->Add(stats.cache_hits);
    query_cache_misses_->Add(stats.cache_misses);
    // Cost ledger (DESIGN.md §15): fold this query into the per-{venue,
    // objective, tier} decayed aggregates and offer it to the slow-query
    // ring. Span capture follows the sampling verdict — an unsampled query
    // has no spans to retain.
    QueryCostSample sample;
    sample.venue = options_.venue_label;
    sample.objective = item.request.objective;
    sample.trace_id = item.trace_id;
    sample.parent_span_id = item.request.parent_span_id;
    sample.queue_seconds = reply.queue_seconds;
    sample.solve_seconds = reply.solve_seconds;
    sample.stats = stats;
    QueryCostLedger::Global().RecordQuery(sample, sampled);
  } else {
    reply.status = solved.status();
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  const double elapsed = Seconds(Clock::now() - item.admitted_at);
  latency_.Record(elapsed);
  if (options_.slow_query_threshold_seconds > 0.0 &&
      elapsed >= options_.slow_query_threshold_seconds) {
    LogSlowQuery(reply, item.request.objective, elapsed);
  }
  Deliver(&item, std::move(reply));
}

void IflsService::LogSlowQuery(const ServiceReply& reply,
                               IflsObjective objective,
                               double elapsed_seconds) const {
  char header[256];
  std::snprintf(
      header, sizeof(header),
      "slow query trace_id=%llu objective=%s elapsed=%.3fms "
      "(threshold=%.3fms) queue=%.3fms solve=%.3fms epoch=%llu overlay=%zu",
      static_cast<unsigned long long>(reply.trace_id),
      IflsObjectiveName(objective), elapsed_seconds * 1e3,
      options_.slow_query_threshold_seconds * 1e3, reply.queue_seconds * 1e3,
      reply.solve_seconds * 1e3,
      static_cast<unsigned long long>(reply.snapshot_epoch),
      reply.overlay_size);
  std::string message(header);
  if (reply.trace_id != 0) {
    // Spans of this query only; rings are per-thread so the whole query's
    // tree lives in the executing thread's buffer (plus none elsewhere).
    message += FormatSpanTree(
        TraceRecorder::Global().SnapshotTrace(reply.trace_id));
  }
  IFLS_LOG(WARNING) << message;
}

// ---------------------------------------------------------------------------
// Mutation path
// ---------------------------------------------------------------------------

Status IflsService::Mutate(const Mutation& mutation,
                           std::uint64_t* applied_version) {
  bool trigger_compaction = false;
  std::vector<std::shared_ptr<Subscription>> to_pump;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    const Status applied = overlay_.Apply(mutation);
    if (!applied.ok()) {
      mutations_rejected_.fetch_add(1, std::memory_order_relaxed);
      return applied;
    }
    PublishStateLocked();
    mutations_applied_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t version = overlay_.mutations_applied();
    if (applied_version != nullptr) *applied_version = version;
    // Fan the accepted mutation out to every standing query while still
    // under writer_mu_: each subscription's event stream then carries the
    // mutations in exactly the order their versions were assigned.
    {
      const Clock::time_point now = Clock::now();
      std::lock_guard<std::mutex> slock(subs_mu_);
      to_pump.reserve(subscriptions_.size());
      for (auto& [id, sub] : subscriptions_) {
        sub->EnqueueMutation(mutation, version, now);
        to_pump.push_back(sub);
      }
    }
    trigger_compaction = options_.compaction_threshold > 0 &&
                         overlay_.net_size() >= options_.compaction_threshold;
  }
  for (const auto& sub : to_pump) SchedulePump(sub);
  if (!to_pump.empty() && options_.num_workers == 0) {
    // Admission-only mode: deliver invalidations synchronously, so Mutate
    // returning means every affected subscription has been pushed/skipped.
    while (ProcessOnePumpInline()) {
    }
  }
  if (trigger_compaction) {
    std::lock_guard<std::mutex> lock(compact_mu_);
    // Coalesce: only request when the compactor has no pending work.
    if (compactions_requested_ == compactions_done_ && !compactor_stop_) {
      ++compactions_requested_;
      compact_cv_.notify_one();
    }
  }
  return Status::OK();
}

void IflsService::PublishStateLocked() {
  state_.Store(std::make_shared<const ServingState>(
      snapshot_, overlay_.delta(), overlay_.mutations_applied()));
}

// ---------------------------------------------------------------------------
// Streaming iterators & standing subscriptions
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ResultIterator>> IflsService::OpenIterator(
    ServiceRequest request) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) return Status::Unavailable("service is stopping");
  }
  TraceSpan span(TraceCategory::kService, "iterator_open");
  std::shared_ptr<const ServingState> state = state_.Acquire();
  const std::uint64_t version = state->version;
  IflsContext ctx;
  ctx.oracle = &state->oracle();
  ctx.existing = state->overlay.effective_existing();
  ctx.candidates = state->overlay.effective_candidates();
  ctx.clients = std::move(request.clients);
  IFLS_ASSIGN_OR_RETURN(
      std::unique_ptr<RankedStream> stream,
      OpenRankedStream(request.objective, ctx, options_.solvers));
  iterators_opened_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<ResultIterator>(new ResultIterator(
      std::move(state), std::move(stream), version, iterator_pages_));
}

Result<std::shared_ptr<Subscription>> IflsService::Subscribe(
    const std::vector<Client>& clients, const SubscriptionOptions& options,
    SubscriptionCallback callback) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) return Status::Unavailable("service is stopping");
  }
  if (options.tolerance < 0.0) {
    return Status::InvalidArgument("tolerance must be non-negative");
  }
  if (!callback) {
    return Status::InvalidArgument("subscription callback must be set");
  }
  // Validate up front: the monitor IFLS_CHECKs client placement.
  {
    const Venue& venue = state_.Acquire()->snapshot->venue();
    for (const Client& c : clients) {
      if (c.partition < 0 ||
          static_cast<std::size_t>(c.partition) >= venue.num_partitions() ||
          !venue.partition(c.partition).rect.Contains(c.position)) {
        return Status::InvalidArgument(
            "subscription client outside its partition");
      }
    }
  }
  const Clock::time_point subscribed_at = Clock::now();
  Subscription::Sink sink;
  sink.events = &subscription_events_;
  sink.pushes = &subscription_pushes_;
  sink.solves = &subscription_solves_;
  sink.skips = &subscription_skips_;
  sink.push_seconds = subscription_push_seconds_;
  std::shared_ptr<Subscription> sub;
  std::unique_lock<std::mutex> monitor_lock;
  {
    // Capture the effective sets, seed the monitor and register — all
    // atomically with the mutation stream, so no accepted mutation is ever
    // missed by or double-counted in the monitor.
    std::lock_guard<std::mutex> lock(writer_mu_);
    std::uint64_t id = 0;
    {
      std::lock_guard<std::mutex> slock(subs_mu_);
      id = next_subscription_id_++;
    }
    sub = std::shared_ptr<Subscription>(
        new Subscription(id, options, std::move(callback), state_.Acquire(),
                         options_.solvers.minmax, sink));
    for (const Client& c : clients) {
      sub->monitor_.AddClient(c.position, c.partition);
    }
    sub->version_ = overlay_.mutations_applied();
    // Take the processing lock before the subscription becomes visible:
    // mutations may start queueing events the moment it is registered, but
    // nothing can fold ahead of the initial answer.
    monitor_lock = std::unique_lock<std::mutex>(sub->monitor_mu_);
    {
      std::lock_guard<std::mutex> slock(subs_mu_);
      subscriptions_.emplace(sub->id(), sub);
    }
  }
  sub->DeliverInitialLocked(subscribed_at);
  monitor_lock.unlock();
  return sub;
}

Status IflsService::Unsubscribe(std::uint64_t subscription_id) {
  std::shared_ptr<Subscription> sub;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    auto it = subscriptions_.find(subscription_id);
    if (it == subscriptions_.end()) {
      return Status::NotFound("no subscription with id " +
                              std::to_string(subscription_id));
    }
    sub = std::move(it->second);
    subscriptions_.erase(it);
  }
  sub->Close();
  return Status::OK();
}

Status IflsService::TickSubscription(std::uint64_t subscription_id,
                                     ClientId client, const Point& position,
                                     PartitionId partition) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) return Status::Unavailable("service is stopping");
  }
  std::shared_ptr<Subscription> sub;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    auto it = subscriptions_.find(subscription_id);
    if (it == subscriptions_.end()) {
      return Status::NotFound("no subscription with id " +
                              std::to_string(subscription_id));
    }
    sub = it->second;
  }
  const Venue& venue = sub->pinned_->snapshot->venue();
  if (partition < 0 ||
      static_cast<std::size_t>(partition) >= venue.num_partitions() ||
      !venue.partition(partition).rect.Contains(position)) {
    return Status::InvalidArgument("tick position outside the partition");
  }
  sub->EnqueueTick(client, position, partition, Clock::now());
  SchedulePump(sub);
  if (options_.num_workers == 0) {
    while (ProcessOnePumpInline()) {
    }
  }
  return Status::OK();
}

void IflsService::SchedulePump(const std::shared_ptr<Subscription>& sub) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_ || sub->scheduled_) return;
    sub->scheduled_ = true;
    sub_pumps_.push_back(sub);
  }
  queue_cv_.notify_one();
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

Status IflsService::CompactNow() {
  std::uint64_t target = 0;
  {
    std::lock_guard<std::mutex> lock(compact_mu_);
    if (compactor_stop_) return Status::Unavailable("service is stopping");
    target = ++compactions_requested_;
    compact_cv_.notify_one();
  }
  std::unique_lock<std::mutex> lock(compact_mu_);
  compacted_cv_.wait(lock, [this, target] {
    return compactions_done_ >= target || compactor_stop_;
  });
  if (compactions_done_ < target) {
    return Status::Unavailable("service stopped before compaction finished");
  }
  return Status::OK();
}

void IflsService::CompactorLoop() {
  for (;;) {
    std::uint64_t target = 0;
    {
      std::unique_lock<std::mutex> lock(compact_mu_);
      compact_cv_.wait(lock, [this] {
        return compactor_stop_ || compactions_requested_ > compactions_done_;
      });
      if (compactor_stop_) {
        compacted_cv_.notify_all();
        return;
      }
      target = compactions_requested_;
    }
    CompactOnce();
    {
      std::lock_guard<std::mutex> lock(compact_mu_);
      compactions_done_ = std::max(compactions_done_, target);
      compacted_cv_.notify_all();
    }
  }
}

void IflsService::CompactOnce() {
  TraceSpan compaction_span(TraceCategory::kCompaction, "compaction");

  // Cut: capture the base snapshot and the net delta under the writer lock.
  // Everything folded into the new snapshot is exactly this cut; mutations
  // racing the build stay in the overlay via the rebase below.
  std::shared_ptr<const IndexSnapshot> base;
  FacilityDelta cut;
  std::uint64_t epoch = 0;
  {
    TraceSpan span(TraceCategory::kCompaction, "overlay_cut");
    std::lock_guard<std::mutex> lock(writer_mu_);
    base = snapshot_;
    cut = overlay_.delta();
    epoch = next_epoch_;
  }

  const std::vector<PartitionId> new_existing = ComposeFacilitySet(
      base->existing(), cut.added_existing, cut.removed_existing);
  const std::vector<PartitionId> new_candidates = ComposeFacilitySet(
      base->candidates(), cut.added_candidates, cut.removed_candidates);

  // The slow part — FacilityIndex (and optionally the VIP-tree) rebuild —
  // runs without any lock: queries and mutations proceed against the old
  // state throughout.
  Result<std::shared_ptr<const IndexSnapshot>> built =
      Status::Internal("snapshot build did not run");
  {
    TraceSpan span(TraceCategory::kCompaction, "snapshot_build");
    built = IndexSnapshot::Build(
        base->shared_venue(), new_existing, new_candidates, epoch,
        options_.tree,
        options_.rebuild_tree_on_compact ? nullptr : base->shared_tree());
  }
  if (!built.ok()) {
    // Composed sets come from validated mutations, so this is a logic error;
    // keep serving the old snapshot rather than dying mid-flight.
    IFLS_LOG(ERROR) << "compaction failed, keeping epoch "
                    << base->epoch() << ": " << built.status().ToString();
    return;
  }

  {
    TraceSpan span(TraceCategory::kCompaction, "publish_rebase");
    std::lock_guard<std::mutex> lock(writer_mu_);
    snapshot_ = std::move(built).value();
    next_epoch_ = epoch + 1;
    overlay_.RebaseTo(snapshot_->existing(), snapshot_->candidates());
    PublishStateLocked();
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Lifecycle & metrics
// ---------------------------------------------------------------------------

void IflsService::Drain() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  drained_cv_.wait(lock, [this] {
    return queue_.empty() && sub_pumps_.empty() && executing_ == 0;
  });
}

void IflsService::Stop() {
  std::deque<PendingQuery> orphaned;
  std::deque<std::shared_ptr<Subscription>> orphaned_pumps;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
    orphaned.swap(queue_);
    orphaned_pumps.swap(sub_pumps_);
    for (const auto& sub : orphaned_pumps) sub->scheduled_ = false;
  }
  // Close intake on every subscription: late ticks/mutations can no longer
  // queue events, and whatever was pending is dropped.
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (auto& [id, sub] : subscriptions_) sub->Close();
  }
  queue_cv_.notify_all();
  for (PendingQuery& item : orphaned) {
    ServiceReply reply;
    reply.status = Status::Unavailable("service stopped before execution");
    shed_.fetch_add(1, std::memory_order_relaxed);
    Deliver(&item, std::move(reply));
  }
  {
    std::lock_guard<std::mutex> lock(compact_mu_);
    compactor_stop_ = true;
  }
  compact_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (compactor_.joinable()) compactor_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.empty() && sub_pumps_.empty() && executing_ == 0) {
      drained_cv_.notify_all();
    }
  }
}

ServiceMetrics IflsService::Metrics() const {
  ServiceMetrics m;
  m.submitted = submitted_.load(std::memory_order_relaxed);
  m.admitted = admitted_.load(std::memory_order_relaxed);
  m.shed = shed_.load(std::memory_order_relaxed);
  m.completed = completed_.load(std::memory_order_relaxed);
  m.failed = failed_.load(std::memory_order_relaxed);
  m.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  m.mutations_applied = mutations_applied_.load(std::memory_order_relaxed);
  m.mutations_rejected = mutations_rejected_.load(std::memory_order_relaxed);
  m.compactions = compactions_.load(std::memory_order_relaxed);
  m.oracle_cache_hits = oracle_cache_hits_.load(std::memory_order_relaxed);
  m.oracle_cache_misses =
      oracle_cache_misses_.load(std::memory_order_relaxed);
  m.iterators_opened = iterators_opened_.load(std::memory_order_relaxed);
  m.subscription_events =
      subscription_events_.load(std::memory_order_relaxed);
  m.subscription_pushes =
      subscription_pushes_.load(std::memory_order_relaxed);
  m.subscription_solves =
      subscription_solves_.load(std::memory_order_relaxed);
  m.subscription_skips = subscription_skips_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    m.subscriptions_active = subscriptions_.size();
  }
  const std::shared_ptr<const ServingState> state = state_.Acquire();
  m.snapshot_epoch = state->snapshot->epoch();
  m.overlay_size = state->overlay.delta().size();
  const ConcurrentDoorCache::Stats cache =
      state->snapshot->tree().door_cache_stats();
  m.oracle_cache_entries = cache.entries;
  m.oracle_cache_evictions = cache.evictions;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    m.queue_depth = queue_.size();
  }
  m.latency_p50_seconds = latency_.PercentileSeconds(0.5);
  m.latency_p99_seconds = latency_.PercentileSeconds(0.99);
  m.latency_mean_seconds = latency_.MeanSeconds();
  return m;
}

}  // namespace ifls
