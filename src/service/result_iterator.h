#ifndef IFLS_SERVICE_RESULT_ITERATOR_H_
#define IFLS_SERVICE_RESULT_ITERATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

#include "src/common/metrics_registry.h"
#include "src/core/efficient.h"
#include "src/service/snapshot.h"

namespace ifls {

class IflsService;

/// A paged view of one ranked MinMax answer, obtained from
/// IflsService::OpenIterator. The iterator pins the ServingState current at
/// open time, so every page is computed against the same (snapshot ⊕
/// overlay) composition: pages are mutually consistent and completely
/// unaffected by mutations or compactions that land while the caller is
/// between Next() calls. Concatenating all pages reproduces, bit-identically,
/// the full ranked answer a one-shot top-k=|Fn| solve would return — but the
/// underlying search is continued lazily, so asking for the first page of a
/// large candidate set does only the work the certified prefix requires.
///
/// Thread-safe; Next() calls serialize.
class ResultIterator {
 public:
  using Page = RankedStream::Page;

  /// Returns up to `m` more (candidate, objective) pairs in ranked order
  /// (ascending objective, ties by lowest partition id). `exhausted` is set
  /// on the page that delivers the final entry and on every page after.
  Page Next(std::size_t m);

  bool exhausted() const;
  /// Entries delivered across all pages so far.
  std::size_t emitted() const;
  /// Candidate count of the pinned composition (the ranking's final length).
  std::size_t total_candidates() const;
  /// Cumulative solver work across all pages so far.
  QueryStats stats() const;

  /// Service mutation version the iterator is pinned to.
  std::uint64_t version() const { return version_; }
  std::uint64_t snapshot_epoch() const { return state_->snapshot->epoch(); }
  std::size_t overlay_size() const { return state_->overlay.delta().size(); }

  /// The pinned state itself (tests re-solve against it to check pages).
  const std::shared_ptr<const ServingState>& state() const { return state_; }

  ResultIterator(const ResultIterator&) = delete;
  ResultIterator& operator=(const ResultIterator&) = delete;

 private:
  friend class IflsService;

  ResultIterator(std::shared_ptr<const ServingState> state,
                 std::unique_ptr<RankedStream> stream, std::uint64_t version,
                 Counter* pages);

  /// Declared before stream_: the stream reads the pinned state's oracle, so
  /// it must be destroyed first (members destroy in reverse order).
  const std::shared_ptr<const ServingState> state_;
  const std::uint64_t version_;
  Counter* const pages_;

  mutable std::mutex mu_;
  std::unique_ptr<RankedStream> stream_;
};

}  // namespace ifls

#endif  // IFLS_SERVICE_RESULT_ITERATOR_H_
