#ifndef IFLS_SERVICE_DELTA_OVERLAY_H_
#define IFLS_SERVICE_DELTA_OVERLAY_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/index/facility_index.h"
#include "src/index/overlay_oracle.h"

namespace ifls {

/// A facility mutation accepted by the online service.
enum class MutationKind : std::uint8_t {
  kAddFacility = 0,     // partition becomes an existing facility (Fe)
  kRemoveFacility = 1,  // existing facility closes
  kAddCandidate = 2,    // partition becomes a candidate location (Fn)
  kRemoveCandidate = 3, // candidate withdrawn
};

/// "AddFacility" / "RemoveFacility" / "AddCandidate" / "RemoveCandidate".
const char* MutationKindName(MutationKind kind);

struct Mutation {
  MutationKind kind = MutationKind::kAddFacility;
  PartitionId partition = kInvalidPartition;
};

/// The mutable write side of the serving subsystem: absorbs facility
/// mutations relative to a base snapshot and keeps the *net* difference (a
/// partition toggled back to its base role drops out entirely, so the
/// overlay's size tracks genuine drift, not traffic). Compaction folds the
/// net delta into a fresh snapshot and RebaseTo()s the overlay onto it;
/// mutations that raced the rebuild survive as the remaining difference.
///
/// Validation is strict and stateful: each mutation is checked against the
/// partition's *effective* role (base ⊕ overlay), so the mutation stream is
/// replayable — the same sequence accepted here produces the same effective
/// sets on a from-scratch rebuild. Promoting a candidate to a facility takes
/// an explicit RemoveCandidate first (and vice versa); the two sets stay
/// disjoint by construction.
///
/// Not internally synchronized: the owning service serializes writers and
/// snapshots the net delta under its own lock.
class DeltaOverlay {
 public:
  /// Base facility sets must be sorted, unique, disjoint and in range
  /// (IndexSnapshot::Build canonicalizes them).
  DeltaOverlay(std::size_t num_partitions,
               std::span<const PartitionId> base_existing,
               std::span<const PartitionId> base_candidates);

  /// Validates `m` against the effective state and absorbs it.
  ///   kOutOfRange           partition id outside the venue
  ///   kAlreadyExists        Add* of a partition already in that role
  ///   kFailedPrecondition   Add* of a partition holding the *other* role
  ///   kNotFound             Remove* of a partition not in that role
  Status Apply(const Mutation& m);

  /// Effective role of a partition under base ⊕ overlay.
  FacilityKind EffectiveKind(PartitionId p) const;

  /// Net difference vs the current base, canonical sorted order.
  FacilityDelta delta() const;

  /// Number of partitions whose effective role differs from the base — the
  /// compaction trigger metric.
  std::size_t net_size() const { return overrides_.size(); }

  /// Mutations accepted since construction (monotonic, survives rebases).
  std::uint64_t mutations_applied() const { return mutations_applied_; }

  /// Re-anchors the overlay onto a freshly published snapshot whose base
  /// sets are `new_existing`/`new_candidates`: the overlay afterwards
  /// carries exactly the difference between the current effective state and
  /// the new base. Folding a compaction cut this way preserves mutations
  /// that arrived while the snapshot was being built.
  void RebaseTo(std::span<const PartitionId> new_existing,
                std::span<const PartitionId> new_candidates);

 private:
  std::vector<FacilityKind> base_kind_;  // per partition, current base
  /// Effective role of every partition whose role differs from base. An
  /// ordered map so delta() streams each bucket already sorted.
  std::map<PartitionId, FacilityKind> overrides_;
  std::uint64_t mutations_applied_ = 0;
};

}  // namespace ifls

#endif  // IFLS_SERVICE_DELTA_OVERLAY_H_
