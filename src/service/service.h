#ifndef IFLS_SERVICE_SERVICE_H_
#define IFLS_SERVICE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/metrics_registry.h"
#include "src/common/status.h"
#include "src/common/trace.h"
#include "src/common/versioned.h"
#include "src/core/solve_dispatch.h"
#include "src/service/delta_overlay.h"
#include "src/service/result_iterator.h"
#include "src/service/snapshot.h"
#include "src/service/subscription.h"

namespace ifls {

/// Serving defaults for the index build: unlike offline paper-comparison
/// runs (where memoizing door distances would blur the baseline-vs-efficient
/// comparison, see VipTreeOptions), a long-lived service wants the sharded
/// door-distance cache on — repeated client traffic against one snapshot is
/// exactly the workload it pays off for.
inline VipTreeOptions DefaultServiceTreeOptions() {
  VipTreeOptions tree;
  tree.enable_door_distance_cache = true;
  return tree;
}

/// Configuration of the online serving front.
struct ServiceOptions {
  /// Query worker threads. 0 = admission-only mode: requests queue but
  /// nothing drains until the caller pumps ProcessOneInline() (embedders,
  /// deterministic tests).
  int num_workers = 2;
  /// Admission queue bound; a submit finding the queue full is shed with
  /// Status::kUnavailable instead of growing latency without bound.
  std::size_t queue_capacity = 256;
  /// Net overlay size (partitions whose role drifted from the snapshot
  /// base) at which the background compactor cuts a fresh snapshot.
  /// 0 disables automatic compaction; CompactNow() always works.
  std::size_t compaction_threshold = 64;
  /// When true the compactor rebuilds the VIP-tree from the venue on every
  /// compaction (bit-identical to the shared tree — construction is
  /// deterministic — so this only buys distrust of the sharing fast path).
  bool rebuild_tree_on_compact = false;
  /// Default per-query deadline, measured from admission; <= 0 = none.
  /// A request whose deadline passes while still queued is answered with
  /// Status::kDeadlineExceeded without running the solver.
  double default_deadline_seconds = 0.0;
  /// When > 0, a query whose admission-to-reply latency reaches this many
  /// seconds is dumped to the log as a span tree (queue wait, snapshot pin,
  /// solver phases, oracle work) — provided tracing is enabled and the query
  /// won the sampling draw; otherwise only the summary line is logged.
  double slow_query_threshold_seconds = 0.0;
  VipTreeOptions tree = DefaultServiceTreeOptions();
  SolverOptionSet solvers;
  /// Venue label stamped on this service's per-query cost-ledger samples
  /// (the `venue` dimension of the ifls_ledger_* series). Empty is fine for
  /// single-venue deployments; the fleet front fills it from the store.
  std::string venue_label;
};

/// One query submitted to the service: an objective plus its client set.
/// Facility sets come from the service's serving state, not the request.
struct ServiceRequest {
  IflsObjective objective = IflsObjective::kMinMax;
  std::vector<Client> clients;
  /// Per-request deadline override; 0 uses the service default, < 0 forces
  /// no deadline.
  double deadline_seconds = 0.0;
  /// Propagated trace context (DESIGN.md §15). When `trace_id` is non-zero
  /// the query adopts it — spans recorded during the solve land under the
  /// caller's trace id and the caller's sampling verdict (`trace_sampled`)
  /// is honored verbatim instead of re-rolling the server-side 1-in-N draw,
  /// so a sampled client RPC is never dropped by the server. A zero
  /// `trace_id` keeps the local behavior: mint an id, roll the draw.
  std::uint64_t trace_id = 0;
  bool trace_sampled = false;
  /// The caller-side span the adopted spans nest under (the RPC's request
  /// id on networked queries); recorded on ledger samples for correlation.
  std::uint64_t parent_span_id = 0;
};

/// Outcome of one request. `status` is kOk with `result` filled, or the
/// validation/solver error, or kDeadlineExceeded/kUnavailable from the
/// serving layer itself.
struct ServiceReply {
  Status status;
  IflsResult result;
  /// Epoch of the snapshot the query ran against.
  std::uint64_t snapshot_epoch = 0;
  /// Net overlay size composed on top of that snapshot.
  std::size_t overlay_size = 0;
  /// Trace id assigned at submission (0 when tracing was disabled); spans
  /// recorded during the solve carry it, so a reply can be correlated with
  /// its slice of an exported trace.
  std::uint64_t trace_id = 0;
  double queue_seconds = 0.0;
  double solve_seconds = 0.0;
};

/// Counter block sampled by Metrics(); all fields are totals since start
/// except the gauges (queue_depth, snapshot_epoch, overlay_size).
struct ServiceMetrics {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;               // kUnavailable at admission
  std::uint64_t completed = 0;          // solver ran (ok or solver error)
  std::uint64_t failed = 0;             // completed with non-ok status
  std::uint64_t deadline_expired = 0;   // expired while queued
  std::uint64_t mutations_applied = 0;
  std::uint64_t mutations_rejected = 0;
  std::uint64_t compactions = 0;
  /// Oracle door-distance memo traffic attributed to completed queries
  /// (per-thread sinks -> QueryStats -> these totals).
  std::uint64_t oracle_cache_hits = 0;
  std::uint64_t oracle_cache_misses = 0;
  /// Streaming/standing-query traffic.
  std::uint64_t iterators_opened = 0;
  std::uint64_t subscription_events = 0;  // events folded into monitors
  std::uint64_t subscription_pushes = 0;  // re-solves delivered
  std::uint64_t subscription_solves = 0;  // full solves run (incl. initial)
  std::uint64_t subscription_skips = 0;   // events certified non-invalidating
  std::uint64_t snapshot_epoch = 0;     // gauge
  std::size_t overlay_size = 0;         // gauge
  std::size_t queue_depth = 0;          // gauge
  std::size_t subscriptions_active = 0; // gauge
  /// Sharded door-distance cache occupancy/evictions of the serving
  /// snapshot's tree (gauges).
  std::uint64_t oracle_cache_entries = 0;
  std::uint64_t oracle_cache_evictions = 0;
  double latency_p50_seconds = 0.0;     // admission -> reply
  double latency_p99_seconds = 0.0;
  double latency_mean_seconds = 0.0;

  std::string ToString() const;
};

/// The online IFLS serving front (DESIGN.md §8): owns a chain of immutable
/// IndexSnapshots published RCU-style, a DeltaOverlay absorbing facility
/// mutations between snapshots, a background compactor folding the overlay
/// into fresh snapshots, and a bounded worker pool answering
/// MinMax/MinDist/MaxSum queries against a pinned (snapshot ⊕ overlay) view.
///
/// Consistency contract: every query runs against exactly one ServingState —
/// one atomic acquire yields a snapshot and the overlay delta cut against
/// that same snapshot, and answers are bit-identical to a from-scratch
/// rebuild over the composed facility sets (tests/service_differential_test
/// locks this in). Readers never block on mutations or compaction: both
/// publish a fresh immutable state and never touch a published one.
class IflsService {
 public:
  /// Builds the boot snapshot (epoch 0) and starts the worker + compactor
  /// threads. The venue is moved in and owned by the service's snapshots.
  static Result<std::unique_ptr<IflsService>> Create(
      Venue venue, std::vector<PartitionId> existing,
      std::vector<PartitionId> candidates, const ServiceOptions& options = {});

  /// Boots from pre-hydrated parts: a shared venue and — when `tree` is
  /// non-null — a pre-built VIP-tree (typically an mmap-loaded v3 snapshot,
  /// see fleet_store/VenueRouter), skipping the index build entirely. With
  /// a null tree this behaves like Create over the shared venue.
  static Result<std::unique_ptr<IflsService>> CreateFromParts(
      std::shared_ptr<const Venue> venue, std::shared_ptr<const VipTree> tree,
      std::vector<PartitionId> existing, std::vector<PartitionId> candidates,
      const ServiceOptions& options = {});

  ~IflsService();

  IflsService(const IflsService&) = delete;
  IflsService& operator=(const IflsService&) = delete;

  /// Admits `request` into the bounded queue. Returns kUnavailable without
  /// queuing when the queue is full (backpressure) or the service is
  /// stopping; otherwise the future carries the reply.
  Result<std::future<ServiceReply>> SubmitQuery(ServiceRequest request);

  /// Callback-completion variant of SubmitQuery for event-driven fronts (the
  /// network server): on admission, `done` fires exactly once — on the
  /// worker thread that executed the query (or the pumping thread in
  /// admission-only mode), or on the Stop() caller for requests orphaned in
  /// the queue. Returns kUnavailable *without invoking the callback* when
  /// the request is shed at admission, so the caller can map backpressure to
  /// its own error path synchronously. `done` must not re-enter the service.
  Status SubmitQueryAsync(ServiceRequest request,
                          std::function<void(ServiceReply)> done);

  /// Submit + wait convenience. Shed/stopped submissions surface in the
  /// reply's status.
  ServiceReply Query(ServiceRequest request);

  /// Applies one facility mutation. On success the change is visible to
  /// every query admitted afterwards (a fresh ServingState is published
  /// before Mutate returns), every standing subscription gets the mutation
  /// queued as an invalidation event, and `applied_version` (when non-null)
  /// receives the service's new mutation version — the value iterator pins
  /// and subscription pushes report.
  Status Mutate(const Mutation& mutation,
                std::uint64_t* applied_version = nullptr);

  /// Opens a streaming iterator over the ranked answer, pinned to the
  /// serving state current at this call: pages stay mutually consistent no
  /// matter what mutations or compactions land later. Only MinMax defines a
  /// full ranking today; other objectives return InvalidArgument.
  Result<std::unique_ptr<ResultIterator>> OpenIterator(ServiceRequest request);

  /// Registers a standing MinMax query over `clients` (ids within the
  /// subscription are 0..clients.size()-1 in registration order). The
  /// initial answer (push sequence 0) is delivered synchronously before
  /// Subscribe returns; afterwards the subscription receives a push only
  /// when a mutation or trajectory tick actually invalidates its cached
  /// answer beyond `options.tolerance` — certified-fresh events are skipped
  /// without solving. Pushes run on worker threads (or inline from Mutate /
  /// TickSubscription in admission-only mode).
  Result<std::shared_ptr<Subscription>> Subscribe(
      const std::vector<Client>& clients, const SubscriptionOptions& options,
      SubscriptionCallback callback);

  /// Deregisters and closes a subscription; its pending events are dropped.
  /// An in-flight push may still complete concurrently.
  Status Unsubscribe(std::uint64_t subscription_id);

  /// Moves one client of a standing query. The move is queued as an
  /// invalidation event and processed asynchronously (inline in
  /// admission-only mode); a push follows only if the move invalidates the
  /// cached answer.
  Status TickSubscription(std::uint64_t subscription_id, ClientId client,
                          const Point& position, PartitionId partition);

  /// Forces a synchronous compaction: blocks until the compactor has cut,
  /// built and published a snapshot folding the overlay as of this call.
  /// Returns kUnavailable after Stop().
  Status CompactNow();

  /// Blocks until the admission queue is empty and no query is executing.
  void Drain();

  /// Stops admission, drains nothing: queued-but-unprocessed requests are
  /// answered kUnavailable, then workers and compactor join. Idempotent;
  /// the destructor calls it.
  void Stop();

  /// Pops and executes one queued request — or, when the query queue is
  /// empty, one pending subscription pump — on the calling thread
  /// (admission-only mode or manual pumping). Returns false when there is
  /// nothing to do.
  bool ProcessOneInline();

  /// The state queries currently run against; pins its snapshot until the
  /// caller drops the pointer. Never null.
  std::shared_ptr<const ServingState> AcquireState() const;

  std::uint64_t snapshot_epoch() const;
  ServiceMetrics Metrics() const;
  const ServiceOptions& options() const { return options_; }

 private:
  struct PendingQuery {
    ServiceRequest request;
    /// Exactly one completion channel is armed: `done` when submitted via
    /// SubmitQueryAsync, the promise otherwise. Deliver() routes the reply.
    std::promise<ServiceReply> promise;
    std::function<void(ServiceReply)> done;
    std::chrono::steady_clock::time_point admitted_at;
    /// time_point::max() when the request has no deadline.
    std::chrono::steady_clock::time_point deadline;
    /// 0 when tracing was disabled at submission.
    std::uint64_t trace_id = 0;
    /// True when the request carried a propagated trace context; the
    /// propagated sampling verdict then overrides the local draw.
    bool trace_propagated = false;
    bool trace_sampled = false;
  };

  /// Routes `reply` to the item's completion channel (callback or promise).
  static void Deliver(PendingQuery* item, ServiceReply reply);
  /// Stamps admission time, trace id and deadline; shared by both submit
  /// fronts.
  PendingQuery MakePending(ServiceRequest request);
  /// Bounded admission under queue_mu_: kUnavailable when full or stopping.
  Status Admit(PendingQuery item);

  IflsService(ServiceOptions options,
              std::shared_ptr<const IndexSnapshot> boot,
              std::size_t num_partitions);

  void StartThreads();
  void WorkerLoop();
  void CompactorLoop();
  /// Builds and publishes a snapshot folding the overlay as cut at call
  /// time. Runs on the compactor thread (single snapshot writer).
  void CompactOnce();
  void Execute(PendingQuery item);
  void PublishStateLocked();
  /// Queues `sub` for pumping unless it is already queued or the service is
  /// stopping, and wakes a worker.
  void SchedulePump(const std::shared_ptr<Subscription>& sub);
  /// Pops and runs one pending subscription pump only (the inline drain used
  /// by Mutate/TickSubscription in admission-only mode). Returns false when
  /// none is pending.
  bool ProcessOnePumpInline();
  /// Drops the executing_ count taken when a query or pump was popped and
  /// wakes Drain() when everything ran dry.
  void FinishOneTask();
  /// Exposes the service's counters/gauges/latency histogram plus the
  /// ifls_query_* solver-work rollups through MetricsRegistry::Global(),
  /// labeled instance="<n>" so concurrent services don't collide.
  void RegisterMetrics();
  void LogSlowQuery(const ServiceReply& reply, IflsObjective objective,
                    double elapsed_seconds) const;

  const ServiceOptions options_;

  /// What queries read: swapped atomically, never mutated after publish.
  VersionedPtr<ServingState> state_;

  /// Writer side: serializes mutations, compaction folds and publications.
  /// Lock order: writer_mu_ -> subs_mu_ -> queue_mu_. A subscription's
  /// monitor_mu_ may be acquired under writer_mu_ (Subscribe) but no service
  /// lock is ever taken while holding a monitor_mu_ alone.
  mutable std::mutex writer_mu_;
  DeltaOverlay overlay_;
  std::shared_ptr<const IndexSnapshot> snapshot_;  // newest published
  std::uint64_t next_epoch_ = 1;

  /// Standing queries. Registration happens under writer_mu_ -> subs_mu_ so
  /// each subscription's event stream is atomic with the mutation version it
  /// was captured at.
  mutable std::mutex subs_mu_;
  std::map<std::uint64_t, std::shared_ptr<Subscription>> subscriptions_;
  std::uint64_t next_subscription_id_ = 1;

  // Admission queue.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;    // workers: work available / stop
  std::condition_variable drained_cv_;  // Drain(): queue empty, none running
  std::deque<PendingQuery> queue_;
  /// Subscriptions with queued events awaiting a pump; guarded by queue_mu_
  /// (as is each entry's scheduled_ flag). Workers prefer queries.
  std::deque<std::shared_ptr<Subscription>> sub_pumps_;
  std::size_t executing_ = 0;
  bool stopping_ = false;

  // Compactor coordination.
  std::mutex compact_mu_;
  std::condition_variable compact_cv_;   // wake the compactor
  std::condition_variable compacted_cv_; // CompactNow completion
  std::uint64_t compactions_requested_ = 0;
  std::uint64_t compactions_done_ = 0;
  bool compactor_stop_ = false;

  std::vector<std::thread> workers_;
  std::thread compactor_;

  // Metrics (relaxed atomics; gauges sampled on read).
  mutable LatencyHistogram latency_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> mutations_applied_{0};
  std::atomic<std::uint64_t> mutations_rejected_{0};
  std::atomic<std::uint64_t> compactions_{0};
  std::atomic<std::uint64_t> oracle_cache_hits_{0};
  std::atomic<std::uint64_t> oracle_cache_misses_{0};
  std::atomic<std::uint64_t> iterators_opened_{0};
  std::atomic<std::uint64_t> subscription_events_{0};
  std::atomic<std::uint64_t> subscription_pushes_{0};
  std::atomic<std::uint64_t> subscription_solves_{0};
  std::atomic<std::uint64_t> subscription_skips_{0};

  /// Process-wide solver-work rollups (registry-owned, unlabeled): the
  /// QueryStats of every completed query fold into these.
  Counter* query_distance_computations_ = nullptr;
  Counter* query_lower_bound_computations_ = nullptr;
  Counter* query_nn_searches_ = nullptr;
  Counter* query_clients_pruned_ = nullptr;
  Counter* query_cache_hits_ = nullptr;
  Counter* query_cache_misses_ = nullptr;
  /// Registry-owned streaming/standing-query series (process-wide, like the
  /// ifls_query_* rollups).
  Counter* iterator_pages_ = nullptr;
  LatencyHistogram* subscription_push_seconds_ = nullptr;
  /// Callback registrations for this instance's series; cleared first thing
  /// in the destructor, so no scrape can observe a dying service.
  std::vector<MetricsRegistry::Registration> metric_registrations_;
};

}  // namespace ifls

#endif  // IFLS_SERVICE_SERVICE_H_
