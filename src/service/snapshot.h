#ifndef IFLS_SERVICE_SNAPSHOT_H_
#define IFLS_SERVICE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/index/facility_index.h"
#include "src/index/overlay_oracle.h"
#include "src/index/vip_tree.h"
#include "src/indoor/venue.h"

namespace ifls {

/// One immutable, reference-counted version of the serving index: the venue,
/// the VIP-tree over it, the canonical (sorted) base facility sets Fe/Fn at
/// the time the snapshot was cut, and the object-layer FacilityIndex over
/// the base Fe. Snapshots are published RCU-style: once Build() returns, the
/// object is never mutated, so any number of query threads may read it while
/// the compactor builds its successor; the shared_ptr refcount keeps a
/// superseded snapshot alive until its last in-flight query finishes.
///
/// The venue and the VIP-tree travel as shared_ptrs because facility
/// mutations never change venue geometry: successive snapshots of one
/// service share the tree (bit-identical to rebuilding it, since tree
/// construction is deterministic) unless the service is configured to
/// rebuild from scratch on every compaction.
class IndexSnapshot {
 public:
  /// Validates and canonicalizes (sorts) the facility sets, builds the
  /// FacilityIndex, and — when `tree` is null — builds the VIP-tree.
  /// Fe/Fn must be in-range, duplicate-free and disjoint.
  static Result<std::shared_ptr<const IndexSnapshot>> Build(
      std::shared_ptr<const Venue> venue, std::vector<PartitionId> existing,
      std::vector<PartitionId> candidates, std::uint64_t epoch,
      const VipTreeOptions& tree_options,
      std::shared_ptr<const VipTree> tree = nullptr);

  /// Monotonically increasing publication number (0 = the boot snapshot).
  std::uint64_t epoch() const { return epoch_; }

  const Venue& venue() const { return *venue_; }
  const std::shared_ptr<const Venue>& shared_venue() const { return venue_; }
  const VipTree& tree() const { return *tree_; }
  const std::shared_ptr<const VipTree>& shared_tree() const { return tree_; }
  const FacilityIndex& facility_index() const { return *facility_index_; }

  /// Base facility sets, sorted ascending (the canonical order).
  std::span<const PartitionId> existing() const { return existing_; }
  std::span<const PartitionId> candidates() const { return candidates_; }

 private:
  IndexSnapshot() = default;

  std::shared_ptr<const Venue> venue_;
  std::shared_ptr<const VipTree> tree_;
  std::unique_ptr<FacilityIndex> facility_index_;
  std::vector<PartitionId> existing_;
  std::vector<PartitionId> candidates_;
  std::uint64_t epoch_ = 0;
};

/// What one query actually runs against: a pinned snapshot plus the overlay
/// view composing the net facility delta on top of it. Immutable and
/// published as a unit (every mutation and every compaction publishes a
/// fresh ServingState), so a reader's single atomic acquire yields a
/// mutually consistent (snapshot, delta) pair — no locking, no torn reads.
struct ServingState {
  ServingState(std::shared_ptr<const IndexSnapshot> snap, FacilityDelta d,
               std::uint64_t version = 0)
      : snapshot(std::move(snap)),
        overlay(&snapshot->tree(), snapshot->existing(),
                snapshot->candidates(), std::move(d)),
        version(version) {}

  /// The oracle queries consume: forwards distances to the snapshot tree,
  /// streams the composed facility sets.
  const OverlayOracle& oracle() const { return overlay; }

  std::shared_ptr<const IndexSnapshot> snapshot;
  OverlayOracle overlay;
  /// Facility mutations the owning service had accepted when this state was
  /// published. Survives compaction (a rebase republishes the same version
  /// under a new epoch), so it is the global version iterators and
  /// subscription pushes are pinned to. 0 for states built outside a
  /// service.
  std::uint64_t version = 0;
};

}  // namespace ifls

#endif  // IFLS_SERVICE_SNAPSHOT_H_
