#ifndef IFLS_SERVICE_VENUE_ROUTER_H_
#define IFLS_SERVICE_VENUE_ROUTER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/metrics_registry.h"
#include "src/common/status.h"
#include "src/service/fleet_store.h"
#include "src/service/service.h"

namespace ifls {

/// Router configuration. The memory budget governs *resident heap* bytes
/// (tree descriptors, door caches, service state) — mapped snapshot bytes
/// are excluded on purpose: they belong to the page cache, evicting a venue
/// does not free them, and re-mapping them is what makes warm restarts
/// cheap. See MemoryTracker::ChargeMapped.
struct VenueRouterOptions {
  /// Resident-byte budget across all loaded venues; 0 = unlimited. The
  /// venue being served is never evicted, so one venue may exceed the
  /// budget alone.
  std::size_t memory_budget_bytes = 0;
  /// Hard cap on simultaneously resident venues; 0 = unlimited.
  std::size_t max_resident_venues = 0;
  /// How snapshots hydrate (mmap zero-copy vs legacy v2 parse).
  SnapshotLoadMode load_mode = SnapshotLoadMode::kMmap;
  /// Template for every per-venue service.
  ServiceOptions service;
};

/// Aggregated router counters; per-venue detail via VenueStats().
struct VenueRouterMetrics {
  std::uint64_t loads = 0;        // snapshot hydrations (incl. reloads)
  std::uint64_t hits = 0;         // requests served by a resident service
  std::uint64_t evictions = 0;
  std::size_t known_venues = 0;
  std::size_t resident_venues = 0;
  std::size_t resident_bytes = 0;  // heap estimate driving eviction
  std::size_t mapped_bytes = 0;    // page-cache bytes (excluded from budget)
};

/// Per-venue state visible to operators.
struct VenueEntryStats {
  std::string venue_id;
  bool resident = false;
  std::size_t resident_bytes = 0;
  std::size_t mapped_bytes = 0;
  std::uint64_t loads = 0;
  std::uint64_t evictions = 0;
};

/// Serves a whole fleet of venues from one process (DESIGN.md §12): lazily
/// hydrates a per-venue IflsService from a fleet snapshot directory on
/// first touch, keeps services LRU-ordered under a resident-memory budget,
/// and evicts cold venues by dropping their heap state — with mmap-loaded
/// snapshots the payload stays in the page cache, so a later touch
/// re-hydrates by re-mapping instead of re-parsing or rebuilding.
///
/// Thread-safety: all methods are safe to call concurrently. Loads run
/// outside the router lock (only same-venue callers wait on each other);
/// queries against resident venues are a map lookup. Eviction only drops
/// the router's reference — in-flight queries hold the service shared_ptr,
/// so a service dies after its last caller returns, never under one.
class VenueRouter {
 public:
  /// Scans `root` for venue subdirectories (fleet_store layout). Venues are
  /// discovered eagerly but hydrated lazily.
  static Result<std::unique_ptr<VenueRouter>> Open(
      const std::string& root, VenueRouterOptions options = {});

  ~VenueRouter();

  VenueRouter(const VenueRouter&) = delete;
  VenueRouter& operator=(const VenueRouter&) = delete;

  /// The per-venue service, hydrating it if evicted/never loaded. The
  /// returned shared_ptr keeps the service alive across a concurrent
  /// eviction. NotFound for unknown venue ids.
  Result<std::shared_ptr<IflsService>> Service(const std::string& venue_id);

  // ---- Routed request surface (thin forwards over Service()). ----------

  ServiceReply Query(const std::string& venue_id, ServiceRequest request);
  Status Mutate(const std::string& venue_id, const Mutation& mutation,
                std::uint64_t* applied_version = nullptr);
  Result<std::shared_ptr<Subscription>> Subscribe(
      const std::string& venue_id, const std::vector<Client>& clients,
      const SubscriptionOptions& options, SubscriptionCallback callback);
  Status Unsubscribe(const std::string& venue_id,
                     std::uint64_t subscription_id);
  Status TickSubscription(const std::string& venue_id,
                          std::uint64_t subscription_id, ClientId client,
                          const Point& position, PartitionId partition);

  // ---- Lifecycle ------------------------------------------------------

  /// Hydrates a venue without issuing a request (warm-up).
  Status Preload(const std::string& venue_id);

  /// Drops a venue's resident state now (manual eviction / maintenance).
  /// In-flight requests finish against their pinned service. OK when the
  /// venue was already cold; NotFound for unknown ids.
  Status Evict(const std::string& venue_id);

  bool IsResident(const std::string& venue_id) const;
  std::vector<std::string> venue_ids() const;
  std::vector<VenueEntryStats> VenueStats() const;
  VenueRouterMetrics Metrics() const;
  const VenueRouterOptions& options() const { return options_; }

 private:
  struct Entry {
    std::shared_ptr<IflsService> service;  // null when cold
    std::size_t resident_bytes = 0;
    std::size_t mapped_bytes = 0;
    /// Router-wide monotonic touch stamp (LRU order).
    std::uint64_t last_used = 0;
    std::uint64_t loads = 0;
    std::uint64_t evictions = 0;
    /// True while one caller hydrates; others wait on loaded_cv_.
    bool loading = false;
  };

  VenueRouter(std::string root, VenueRouterOptions options);

  /// Evicts LRU venues until budget and count hold, never touching
  /// `keep` or a loading entry. Caller holds mu_.
  void EvictOverBudgetLocked(const std::string& keep);
  void EvictEntryLocked(const std::string& id, Entry& entry);
  void RegisterMetrics();

  const std::string root_;
  const VenueRouterOptions options_;

  mutable std::mutex mu_;
  std::condition_variable loaded_cv_;
  std::map<std::string, Entry> entries_;
  std::uint64_t touch_clock_ = 0;
  std::uint64_t loads_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t evictions_ = 0;

  std::vector<MetricsRegistry::Registration> metric_registrations_;
};

}  // namespace ifls

#endif  // IFLS_SERVICE_VENUE_ROUTER_H_
