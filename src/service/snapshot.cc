#include "src/service/snapshot.h"

#include <algorithm>
#include <string>
#include <utility>

namespace ifls {
namespace {

Status CanonicalizeSet(std::vector<PartitionId>* ids, std::size_t num_parts,
                       const char* what) {
  std::sort(ids->begin(), ids->end());
  if (std::adjacent_find(ids->begin(), ids->end()) != ids->end()) {
    return Status::InvalidArgument(std::string(what) +
                                   " contains duplicate partitions");
  }
  for (PartitionId p : *ids) {
    if (p < 0 || static_cast<std::size_t>(p) >= num_parts) {
      return Status::OutOfRange(std::string(what) + " partition " +
                                std::to_string(p) + " out of range");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<const IndexSnapshot>> IndexSnapshot::Build(
    std::shared_ptr<const Venue> venue, std::vector<PartitionId> existing,
    std::vector<PartitionId> candidates, std::uint64_t epoch,
    const VipTreeOptions& tree_options, std::shared_ptr<const VipTree> tree) {
  if (venue == nullptr) {
    return Status::InvalidArgument("snapshot venue is null");
  }
  const std::size_t num_parts = venue->num_partitions();
  IFLS_RETURN_NOT_OK(CanonicalizeSet(&existing, num_parts, "existing set"));
  IFLS_RETURN_NOT_OK(CanonicalizeSet(&candidates, num_parts,
                                     "candidate set"));
  std::vector<PartitionId> both;
  std::set_intersection(existing.begin(), existing.end(), candidates.begin(),
                        candidates.end(), std::back_inserter(both));
  if (!both.empty()) {
    return Status::InvalidArgument(
        "existing and candidate sets intersect at partition " +
        std::to_string(both.front()));
  }
  if (tree == nullptr) {
    Result<VipTree> built = VipTree::Build(venue.get(), tree_options);
    if (!built.ok()) return built.status();
    tree = std::make_shared<const VipTree>(std::move(built).value());
  }
  // make_shared needs a public constructor; the snapshot type is small and
  // built exactly here, so plain new under a shared_ptr is fine.
  std::shared_ptr<IndexSnapshot> snap(new IndexSnapshot());
  snap->venue_ = std::move(venue);
  snap->tree_ = std::move(tree);
  snap->existing_ = std::move(existing);
  snap->candidates_ = std::move(candidates);
  snap->epoch_ = epoch;
  snap->facility_index_ =
      std::make_unique<FacilityIndex>(snap->tree_.get(), snap->existing_);
  return std::shared_ptr<const IndexSnapshot>(std::move(snap));
}

}  // namespace ifls
