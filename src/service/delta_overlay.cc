#include "src/service/delta_overlay.h"

#include <string>

namespace ifls {
namespace {

std::vector<FacilityKind> BuildKinds(
    std::size_t num_partitions, std::span<const PartitionId> existing,
    std::span<const PartitionId> candidates) {
  std::vector<FacilityKind> kinds(num_partitions, FacilityKind::kNone);
  for (PartitionId p : existing) {
    kinds[static_cast<std::size_t>(p)] = FacilityKind::kExisting;
  }
  for (PartitionId p : candidates) {
    kinds[static_cast<std::size_t>(p)] = FacilityKind::kCandidate;
  }
  return kinds;
}

const char* RoleName(FacilityKind kind) {
  switch (kind) {
    case FacilityKind::kNone:
      return "unassigned";
    case FacilityKind::kExisting:
      return "an existing facility";
    case FacilityKind::kCandidate:
      return "a candidate location";
  }
  return "?";
}

}  // namespace

const char* MutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::kAddFacility:
      return "AddFacility";
    case MutationKind::kRemoveFacility:
      return "RemoveFacility";
    case MutationKind::kAddCandidate:
      return "AddCandidate";
    case MutationKind::kRemoveCandidate:
      return "RemoveCandidate";
  }
  return "unknown";
}

DeltaOverlay::DeltaOverlay(std::size_t num_partitions,
                           std::span<const PartitionId> base_existing,
                           std::span<const PartitionId> base_candidates)
    : base_kind_(BuildKinds(num_partitions, base_existing, base_candidates)) {}

FacilityKind DeltaOverlay::EffectiveKind(PartitionId p) const {
  const auto it = overrides_.find(p);
  if (it != overrides_.end()) return it->second;
  return base_kind_[static_cast<std::size_t>(p)];
}

Status DeltaOverlay::Apply(const Mutation& m) {
  const PartitionId p = m.partition;
  if (p < 0 || static_cast<std::size_t>(p) >= base_kind_.size()) {
    return Status::OutOfRange(std::string(MutationKindName(m.kind)) + "(" +
                              std::to_string(p) + "): partition out of range");
  }
  const FacilityKind effective = EffectiveKind(p);
  FacilityKind target = FacilityKind::kNone;
  switch (m.kind) {
    case MutationKind::kAddFacility:
    case MutationKind::kAddCandidate: {
      target = m.kind == MutationKind::kAddFacility ? FacilityKind::kExisting
                                                    : FacilityKind::kCandidate;
      if (effective == target) {
        return Status::AlreadyExists(
            std::string(MutationKindName(m.kind)) + "(" + std::to_string(p) +
            "): partition is already " + RoleName(target));
      }
      if (effective != FacilityKind::kNone) {
        return Status::FailedPrecondition(
            std::string(MutationKindName(m.kind)) + "(" + std::to_string(p) +
            "): partition is currently " + RoleName(effective) +
            "; remove that role first");
      }
      break;
    }
    case MutationKind::kRemoveFacility:
    case MutationKind::kRemoveCandidate: {
      const FacilityKind required = m.kind == MutationKind::kRemoveFacility
                                        ? FacilityKind::kExisting
                                        : FacilityKind::kCandidate;
      if (effective != required) {
        return Status::NotFound(std::string(MutationKindName(m.kind)) + "(" +
                                std::to_string(p) + "): partition is " +
                                RoleName(effective) + ", not " +
                                RoleName(required));
      }
      target = FacilityKind::kNone;
      break;
    }
  }
  if (base_kind_[static_cast<std::size_t>(p)] == target) {
    overrides_.erase(p);  // back to its base role: net change cancels
  } else {
    overrides_[p] = target;
  }
  ++mutations_applied_;
  return Status::OK();
}

FacilityDelta DeltaOverlay::delta() const {
  FacilityDelta d;
  for (const auto& [p, kind] : overrides_) {
    const FacilityKind base = base_kind_[static_cast<std::size_t>(p)];
    if (base == FacilityKind::kExisting && kind != FacilityKind::kExisting) {
      d.removed_existing.push_back(p);
    }
    if (base == FacilityKind::kCandidate && kind != FacilityKind::kCandidate) {
      d.removed_candidates.push_back(p);
    }
    if (kind == FacilityKind::kExisting && base != FacilityKind::kExisting) {
      d.added_existing.push_back(p);
    }
    if (kind == FacilityKind::kCandidate &&
        base != FacilityKind::kCandidate) {
      d.added_candidates.push_back(p);
    }
  }
  return d;  // map iteration order keeps every bucket sorted
}

void DeltaOverlay::RebaseTo(std::span<const PartitionId> new_existing,
                            std::span<const PartitionId> new_candidates) {
  std::vector<FacilityKind> new_base =
      BuildKinds(base_kind_.size(), new_existing, new_candidates);
  std::map<PartitionId, FacilityKind> new_overrides;
  // Effective roles are unchanged by a rebase; only the reference point
  // moves: a partition is overridden afterwards iff its effective role
  // differs from the *new* base. The full scan matters — a mutation undone
  // *after* the compaction cut leaves no override here, yet its pre-cut
  // effect is folded into the new base, so the difference shows up exactly
  // at such unoverridden partitions.
  for (std::size_t i = 0; i < base_kind_.size(); ++i) {
    const auto p = static_cast<PartitionId>(i);
    const FacilityKind effective = EffectiveKind(p);
    if (new_base[i] != effective) new_overrides.emplace(p, effective);
  }
  base_kind_ = std::move(new_base);
  overrides_ = std::move(new_overrides);
}

}  // namespace ifls
