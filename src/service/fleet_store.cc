#include "src/service/fleet_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "src/io/venue_io.h"

namespace ifls {
namespace {

namespace fs = std::filesystem;

constexpr char kFacilitiesMagic[] = "IFLS_FACILITIES";
constexpr int kFacilitiesVersion = 1;

Status SaveFacilities(const std::string& path,
                      std::span<const PartitionId> existing,
                      std::span<const PartitionId> candidates) {
  std::ofstream os(path);
  if (!os.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  os << kFacilitiesMagic << " " << kFacilitiesVersion << "\n";
  os << "existing " << existing.size();
  for (PartitionId p : existing) os << " " << p;
  os << "\n";
  os << "candidates " << candidates.size();
  for (PartitionId p : candidates) os << " " << p;
  os << "\n";
  if (!os.good()) return Status::IOError("failed writing '" + path + "'");
  return Status::OK();
}

Status LoadFacilityList(std::istream& in, const char* tag,
                        std::vector<PartitionId>* out) {
  std::string keyword;
  std::size_t count = 0;
  if (!(in >> keyword >> count) || keyword != tag) {
    return Status::InvalidArgument(std::string("expected '") + tag +
                                   "' in facilities file");
  }
  out->resize(count);
  for (PartitionId& p : *out) {
    if (!(in >> p)) {
      return Status::InvalidArgument(std::string("truncated '") + tag +
                                     "' list in facilities file");
    }
  }
  return Status::OK();
}

Result<std::pair<std::vector<PartitionId>, std::vector<PartitionId>>>
LoadFacilities(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kFacilitiesMagic) {
    return Status::InvalidArgument("'" + path +
                                   "' is not an IFLS facilities file");
  }
  if (version != kFacilitiesVersion) {
    return Status::InvalidArgument("unsupported facilities file version " +
                                   std::to_string(version));
  }
  std::pair<std::vector<PartitionId>, std::vector<PartitionId>> sets;
  IFLS_RETURN_NOT_OK(LoadFacilityList(in, "existing", &sets.first));
  IFLS_RETURN_NOT_OK(LoadFacilityList(in, "candidates", &sets.second));
  return sets;
}

std::string Join(const std::string& dir, const char* file) {
  return (fs::path(dir) / file).string();
}

}  // namespace

Status WriteVenueSnapshot(const std::string& dir, const Venue& venue,
                          const VipTree& tree,
                          std::span<const PartitionId> existing,
                          std::span<const PartitionId> candidates) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create snapshot directory '" + dir +
                           "': " + ec.message());
  }
  IFLS_RETURN_NOT_OK(SaveVenueToFile(venue, Join(dir, kFleetVenueFileName)));
  IFLS_RETURN_NOT_OK(tree.SaveV3ToFile(Join(dir, kFleetIndexV3FileName)));
  IFLS_RETURN_NOT_OK(tree.SaveToFile(Join(dir, kFleetIndexV2FileName)));
  return SaveFacilities(Join(dir, kFleetFacilitiesFileName), existing,
                        candidates);
}

Result<LoadedVenueSnapshot> LoadVenueSnapshot(const std::string& dir,
                                              SnapshotLoadMode mode) {
  Result<Venue> venue = LoadVenueFromFile(Join(dir, kFleetVenueFileName));
  if (!venue.ok()) return venue.status();
  LoadedVenueSnapshot snapshot;
  snapshot.venue = std::make_shared<const Venue>(std::move(venue).value());

  Result<VipTree> tree =
      mode == SnapshotLoadMode::kMmap
          ? VipTree::LoadV3FromFile(snapshot.venue.get(),
                                    Join(dir, kFleetIndexV3FileName))
          : VipTree::LoadFromFile(snapshot.venue.get(),
                                  Join(dir, kFleetIndexV2FileName));
  if (!tree.ok()) return tree.status();
  snapshot.tree = std::make_shared<const VipTree>(std::move(tree).value());

  IFLS_ASSIGN_OR_RETURN(auto sets,
                        LoadFacilities(Join(dir, kFleetFacilitiesFileName)));
  snapshot.existing = std::move(sets.first);
  snapshot.candidates = std::move(sets.second);
  return snapshot;
}

Result<std::vector<std::string>> ListFleetVenues(const std::string& root) {
  std::error_code ec;
  fs::directory_iterator it(root, ec);
  if (ec) {
    return Status::IOError("cannot list fleet root '" + root +
                           "': " + ec.message());
  }
  std::vector<std::string> ids;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_directory()) continue;
    if (fs::exists(entry.path() / kFleetVenueFileName)) {
      ids.push_back(entry.path().filename().string());
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace ifls
