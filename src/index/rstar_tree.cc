#include "src/index/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "src/common/logging.h"

namespace ifls {
namespace {

/// Planar-only geometry: node MBRs span levels, so the level-aware Rect
/// helpers do not apply.
Rect PlanarUnion(const Rect& a, const Rect& b) {
  return Rect(std::min(a.min_x, b.min_x), std::min(a.min_y, b.min_y),
              std::max(a.max_x, b.max_x), std::max(a.max_y, b.max_y),
              a.level);
}

double PlanarMinDistance(const Rect& r, const Point& p) {
  const double dx = std::max({r.min_x - p.x, 0.0, p.x - r.max_x});
  const double dy = std::max({r.min_y - p.y, 0.0, p.y - r.max_y});
  return std::sqrt(dx * dx + dy * dy);
}

bool PlanarIntersects(const Rect& a, const Rect& b) {
  return a.min_x <= b.max_x && b.min_x <= a.max_x && a.min_y <= b.max_y &&
         b.min_y <= a.max_y;
}

bool PlanarContains(const Rect& r, const Point& p) {
  return p.x >= r.min_x && p.x <= r.max_x && p.y >= r.min_y && p.y <= r.max_y;
}

}  // namespace

Rect RStarTree::MbrOf(const std::vector<Entry>& entries,
                      const std::vector<std::int32_t>& indices) {
  IFLS_DCHECK(!indices.empty());
  Rect mbr = entries[static_cast<std::size_t>(indices[0])].rect;
  for (std::size_t i = 1; i < indices.size(); ++i) {
    mbr = PlanarUnion(mbr, entries[static_cast<std::size_t>(indices[i])].rect);
  }
  return mbr;
}

RStarTree::RStarTree(std::vector<Entry> entries, int node_capacity)
    : entries_(std::move(entries)), num_entries_(entries_.size()) {
  IFLS_CHECK(node_capacity >= 2);
  if (entries_.empty()) return;

  // ---- Sort-tile-recursive leaf packing. ---------------------------------
  std::vector<std::int32_t> order(entries_.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::int32_t>(i);
  }
  auto center_x = [&](std::int32_t i) {
    const Rect& r = entries_[static_cast<std::size_t>(i)].rect;
    return (r.min_x + r.max_x) / 2;
  };
  auto center_y = [&](std::int32_t i) {
    const Rect& r = entries_[static_cast<std::size_t>(i)].rect;
    return (r.min_y + r.max_y) / 2;
  };
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return center_x(a) < center_x(b);
  });
  const std::size_t n = order.size();
  const auto cap = static_cast<std::size_t>(node_capacity);
  const std::size_t num_leaves = (n + cap - 1) / cap;
  const auto slabs = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const std::size_t slab_size = (n + slabs - 1) / slabs;

  std::vector<std::int32_t> level_nodes;
  for (std::size_t s = 0; s < slabs; ++s) {
    const std::size_t begin = s * slab_size;
    if (begin >= n) break;
    const std::size_t end = std::min(begin + slab_size, n);
    std::sort(order.begin() + static_cast<std::ptrdiff_t>(begin),
              order.begin() + static_cast<std::ptrdiff_t>(end),
              [&](std::int32_t a, std::int32_t b) {
                return center_y(a) < center_y(b);
              });
    for (std::size_t i = begin; i < end; i += cap) {
      Node leaf;
      leaf.is_leaf = true;
      for (std::size_t j = i; j < std::min(i + cap, end); ++j) {
        leaf.children.push_back(order[j]);
      }
      leaf.mbr = MbrOf(entries_, leaf.children);
      level_nodes.push_back(static_cast<std::int32_t>(nodes_.size()));
      nodes_.push_back(std::move(leaf));
    }
  }

  // ---- Pack upper levels until a single root. ----------------------------
  height_ = 1;
  while (level_nodes.size() > 1) {
    ++height_;
    std::sort(level_nodes.begin(), level_nodes.end(),
              [&](std::int32_t a, std::int32_t b) {
                const Rect& ra = nodes_[static_cast<std::size_t>(a)].mbr;
                const Rect& rb = nodes_[static_cast<std::size_t>(b)].mbr;
                const double ax = (ra.min_x + ra.max_x) / 2;
                const double bx = (rb.min_x + rb.max_x) / 2;
                if (ax != bx) return ax < bx;
                return (ra.min_y + ra.max_y) < (rb.min_y + rb.max_y);
              });
    std::vector<std::int32_t> next;
    for (std::size_t i = 0; i < level_nodes.size(); i += cap) {
      Node parent;
      parent.is_leaf = false;
      Rect mbr;
      for (std::size_t j = i; j < std::min(i + cap, level_nodes.size());
           ++j) {
        parent.children.push_back(level_nodes[j]);
        const Rect& child =
            nodes_[static_cast<std::size_t>(level_nodes[j])].mbr;
        mbr = j == i ? child : PlanarUnion(mbr, child);
      }
      parent.mbr = mbr;
      next.push_back(static_cast<std::int32_t>(nodes_.size()));
      nodes_.push_back(std::move(parent));
    }
    level_nodes = std::move(next);
  }
  root_ = level_nodes.front();
}

std::vector<std::int32_t> RStarTree::Contains(const Point& p) const {
  std::vector<std::int32_t> results;
  if (root_ < 0) return results;
  std::vector<std::int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (!PlanarContains(node.mbr, p)) continue;
    for (std::int32_t child : node.children) {
      if (node.is_leaf) {
        const Entry& e = entries_[static_cast<std::size_t>(child)];
        if (e.rect.level == p.level && PlanarContains(e.rect, p)) {
          results.push_back(e.id);
        }
      } else {
        stack.push_back(child);
      }
    }
  }
  return results;
}

std::vector<std::int32_t> RStarTree::Intersects(const Rect& window) const {
  std::vector<std::int32_t> results;
  if (root_ < 0) return results;
  std::vector<std::int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (!PlanarIntersects(node.mbr, window)) continue;
    for (std::int32_t child : node.children) {
      if (node.is_leaf) {
        const Entry& e = entries_[static_cast<std::size_t>(child)];
        if (e.rect.level == window.level &&
            PlanarIntersects(e.rect, window)) {
          results.push_back(e.id);
        }
      } else {
        stack.push_back(child);
      }
    }
  }
  return results;
}

std::vector<std::int32_t> RStarTree::NearestNeighbors(const Point& p,
                                                      int k) const {
  std::vector<std::int32_t> results;
  if (root_ < 0 || k <= 0) return results;
  struct QueueEntry {
    double dist;
    std::int32_t index;  // node index, or ~entry index for settled entries
    bool is_entry;
    bool operator>(const QueueEntry& other) const {
      return dist > other.dist;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  queue.push({0.0, root_, false});
  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    if (top.is_entry) {
      results.push_back(entries_[static_cast<std::size_t>(top.index)].id);
      if (static_cast<int>(results.size()) == k) break;
      continue;
    }
    const Node& node = nodes_[static_cast<std::size_t>(top.index)];
    for (std::int32_t child : node.children) {
      if (node.is_leaf) {
        const Entry& e = entries_[static_cast<std::size_t>(child)];
        if (e.rect.level != p.level) continue;
        queue.push({PlanarMinDistance(e.rect, p), child, true});
      } else {
        queue.push(
            {PlanarMinDistance(nodes_[static_cast<std::size_t>(child)].mbr,
                               p),
             child, false});
      }
    }
  }
  return results;
}

std::size_t RStarTree::MemoryFootprintBytes() const {
  std::size_t total = sizeof(RStarTree);
  total += entries_.capacity() * sizeof(Entry);
  for (const Node& n : nodes_) {
    total += sizeof(Node) + n.children.capacity() * sizeof(std::int32_t);
  }
  return total;
}

}  // namespace ifls
