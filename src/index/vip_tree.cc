#include "src/index/vip_tree.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <sstream>
#include <utility>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/common/workspace_pool.h"
#include "src/graph/door_graph.h"

namespace ifls {
namespace {

thread_local VipTreeCounters* g_counter_sink = nullptr;

/// Sorted, deduplicated copy.
std::vector<DoorId> SortedUnique(std::vector<DoorId> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

/// An item to be clustered: a representative point plus its original index.
struct SpatialItem {
  double x = 0.0;
  double y = 0.0;
  double level = 0.0;
  std::size_t index = 0;
};

/// Orders items spatially — level-major, Hilbert curve within the level —
/// and cuts the order into consecutive chunks of at most `capacity`
/// members. Adjacent rooms along a corridor land in the same chunk, giving
/// the compact, few-access-door nodes the VIP-tree relies on. Chunks also
/// break at level boundaries, so whole floors congeal into single nodes
/// whose only access doors are stair doors — the topology-aware clustering
/// the VIP-tree paper emphasizes for multi-level venues. When level breaks
/// would prevent the level from shrinking (e.g. one node per level already),
/// the function falls back to plain capacity chunking, guaranteeing
/// progress. Returns the cluster index per original item index.
std::vector<int> ChunkBySpatialOrder(std::vector<SpatialItem> items,
                                     int capacity,
                                     bool break_on_level_change = true) {
  double min_x = 0, max_x = 0, min_y = 0, max_y = 0;
  bool first = true;
  for (const SpatialItem& it : items) {
    if (first) {
      min_x = max_x = it.x;
      min_y = max_y = it.y;
      first = false;
    } else {
      min_x = std::min(min_x, it.x);
      max_x = std::max(max_x, it.x);
      min_y = std::min(min_y, it.y);
      max_y = std::max(max_y, it.y);
    }
  }
  constexpr std::uint32_t kOrder = 16;
  const double span_x = std::max(max_x - min_x, 1e-9);
  const double span_y = std::max(max_y - min_y, 1e-9);
  const double cells = static_cast<double>((1u << kOrder) - 1);
  struct Keyed {
    std::int64_t level_key;
    std::uint64_t hilbert;
    std::size_t index;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(items.size());
  for (const SpatialItem& it : items) {
    const auto gx =
        static_cast<std::uint32_t>((it.x - min_x) / span_x * cells);
    const auto gy =
        static_cast<std::uint32_t>((it.y - min_y) / span_y * cells);
    keyed.push_back({static_cast<std::int64_t>(std::llround(it.level)),
                     HilbertIndex(kOrder, gx, gy), it.index});
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.level_key != b.level_key) return a.level_key < b.level_key;
    if (a.hilbert != b.hilbert) return a.hilbert < b.hilbert;
    return a.index < b.index;
  });
  std::vector<int> cluster(items.size(), -1);
  int current = 0;
  int members = 0;
  for (std::size_t i = 0; i < keyed.size(); ++i) {
    const bool level_break = break_on_level_change && i > 0 &&
                             keyed[i].level_key != keyed[i - 1].level_key;
    if (members >= capacity || level_break) {
      ++current;
      members = 0;
    }
    cluster[keyed[i].index] = current;
    ++members;
  }
  if (break_on_level_change &&
      static_cast<std::size_t>(current) + 1 >= items.size() &&
      items.size() > 1) {
    // Level breaks stalled the merge (one item per level); merge across
    // levels instead.
    return ChunkBySpatialOrder(std::move(items), capacity, false);
  }
  return cluster;
}

}  // namespace

ScopedVipTreeCounterSink::ScopedVipTreeCounterSink(VipTreeCounters* sink)
    : previous_(g_counter_sink) {
  g_counter_sink = sink;
}

ScopedVipTreeCounterSink::~ScopedVipTreeCounterSink() {
  g_counter_sink = previous_;
}

VipTreeCounters* ScopedVipTreeCounterSink::Active() { return g_counter_sink; }

VipTree::VipTree(VipTree&& other) noexcept
    : venue_(other.venue_),
      options_(other.options_),
      nodes_(std::move(other.nodes_)),
      leaf_of_partition_(std::move(other.leaf_of_partition_)),
      root_(other.root_),
      num_leaves_(other.num_leaves_),
      height_(other.height_),
      door_cache_(std::move(other.door_cache_)) {
  shared_counters_.door_distance_evals.store(
      other.shared_counters_.door_distance_evals.load(
          std::memory_order_relaxed),
      std::memory_order_relaxed);
  shared_counters_.matrix_lookups.store(
      other.shared_counters_.matrix_lookups.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  shared_counters_.cache_hits.store(
      other.shared_counters_.cache_hits.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  other.venue_ = nullptr;
}

VipTree& VipTree::operator=(VipTree&& other) noexcept {
  if (this == &other) return *this;
  VipTree tmp(std::move(other));
  // Steal tmp's state member by member; no self-aliasing remains.
  venue_ = tmp.venue_;
  options_ = tmp.options_;
  nodes_ = std::move(tmp.nodes_);
  leaf_of_partition_ = std::move(tmp.leaf_of_partition_);
  root_ = tmp.root_;
  num_leaves_ = tmp.num_leaves_;
  height_ = tmp.height_;
  door_cache_ = std::move(tmp.door_cache_);
  shared_counters_.door_distance_evals.store(
      tmp.shared_counters_.door_distance_evals.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  shared_counters_.matrix_lookups.store(
      tmp.shared_counters_.matrix_lookups.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  shared_counters_.cache_hits.store(
      tmp.shared_counters_.cache_hits.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

void VipTree::BumpDoorDistanceEvals() const {
  if (g_counter_sink != nullptr) {
    ++g_counter_sink->door_distance_evals;
  } else {
    shared_counters_.door_distance_evals.fetch_add(1,
                                                   std::memory_order_relaxed);
  }
}

void VipTree::BumpMatrixLookups(std::uint64_t n) const {
  if (g_counter_sink != nullptr) {
    g_counter_sink->matrix_lookups += n;
  } else {
    shared_counters_.matrix_lookups.fetch_add(n, std::memory_order_relaxed);
  }
}

void VipTree::BumpCacheHits() const {
  if (g_counter_sink != nullptr) {
    ++g_counter_sink->cache_hits;
  } else {
    shared_counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
  }
}

VipTreeCounters VipTree::counters() const {
  VipTreeCounters out;
  out.door_distance_evals =
      shared_counters_.door_distance_evals.load(std::memory_order_relaxed);
  out.matrix_lookups =
      shared_counters_.matrix_lookups.load(std::memory_order_relaxed);
  out.cache_hits =
      shared_counters_.cache_hits.load(std::memory_order_relaxed);
  return out;
}

void VipTree::ResetCounters() const {
  shared_counters_.door_distance_evals.store(0, std::memory_order_relaxed);
  shared_counters_.matrix_lookups.store(0, std::memory_order_relaxed);
  shared_counters_.cache_hits.store(0, std::memory_order_relaxed);
}

bool VipTree::CachedDoorDistance(std::uint64_t key, double* out) const {
  std::lock_guard<std::mutex> lock(door_cache_->mu);
  const auto it = door_cache_->map.find(key);
  if (it == door_cache_->map.end()) return false;
  *out = it->second;
  return true;
}

void VipTree::StoreDoorDistance(std::uint64_t key, double value) const {
  std::lock_guard<std::mutex> lock(door_cache_->mu);
  door_cache_->map.emplace(key, value);
}

void VipTree::ClearDistanceCache() const {
  std::lock_guard<std::mutex> lock(door_cache_->mu);
  door_cache_->map.clear();
}

std::size_t VipTree::distance_cache_size() const {
  std::lock_guard<std::mutex> lock(door_cache_->mu);
  return door_cache_->map.size();
}

Result<VipTree> VipTree::Build(const Venue* venue, VipTreeOptions options) {
  if (venue == nullptr) {
    return Status::InvalidArgument("venue must not be null");
  }
  if (options.leaf_capacity < 1 || options.internal_fanout < 2) {
    return Status::InvalidArgument(
        "leaf_capacity must be >= 1 and internal_fanout >= 2");
  }
  IFLS_RETURN_NOT_OK(venue->Validate());

  VipTree tree;
  tree.venue_ = venue;
  tree.options_ = options;

  const std::size_t num_partitions = venue->num_partitions();

  // ---- Leaf formation: spatially chunk the partitions. ------------------
  std::vector<SpatialItem> partition_items;
  partition_items.reserve(num_partitions);
  for (std::size_t i = 0; i < num_partitions; ++i) {
    const Partition& p = venue->partition(static_cast<PartitionId>(i));
    const Point c = p.rect.center();
    partition_items.push_back(
        {c.x, c.y, static_cast<double>(p.level()), i});
  }
  std::vector<int> leaf_cluster =
      ChunkBySpatialOrder(std::move(partition_items), options.leaf_capacity);
  const int num_leaves =
      1 + *std::max_element(leaf_cluster.begin(), leaf_cluster.end());

  tree.leaf_of_partition_.assign(num_partitions, kInvalidNode);
  tree.num_leaves_ = static_cast<std::size_t>(num_leaves);
  tree.nodes_.resize(static_cast<std::size_t>(num_leaves));
  for (int l = 0; l < num_leaves; ++l) {
    VipNode& node = tree.nodes_[static_cast<std::size_t>(l)];
    node.id = static_cast<NodeId>(l);
  }
  for (std::size_t p = 0; p < num_partitions; ++p) {
    const NodeId leaf = static_cast<NodeId>(leaf_cluster[p]);
    tree.nodes_[static_cast<std::size_t>(leaf)].partitions.push_back(
        static_cast<PartitionId>(p));
    tree.leaf_of_partition_[p] = leaf;
  }

  // ---- Upper levels: spatially chunk nodes until a single root. ---------
  // Each node carries a centroid (partition-count weighted) used as its
  // clustering representative.
  struct Centroid {
    double sum_x = 0, sum_y = 0, sum_level = 0;
    double count = 0;
  };
  std::vector<Centroid> centroids(static_cast<std::size_t>(num_leaves));
  for (std::size_t p = 0; p < num_partitions; ++p) {
    const Partition& part = venue->partition(static_cast<PartitionId>(p));
    const Point c = part.rect.center();
    Centroid& cen = centroids[static_cast<std::size_t>(leaf_cluster[p])];
    cen.sum_x += c.x;
    cen.sum_y += c.y;
    cen.sum_level += part.level();
    cen.count += 1;
  }

  std::vector<NodeId> level;
  level.reserve(static_cast<std::size_t>(num_leaves));
  for (int l = 0; l < num_leaves; ++l) level.push_back(static_cast<NodeId>(l));

  while (level.size() > 1) {
    const std::size_t k = level.size();
    std::vector<SpatialItem> items;
    items.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      const Centroid& c = centroids[i];
      items.push_back({c.sum_x / c.count, c.sum_y / c.count,
                       c.sum_level / c.count, i});
    }
    const std::vector<int> groups =
        ChunkBySpatialOrder(std::move(items), options.internal_fanout);
    const int num_groups = 1 + *std::max_element(groups.begin(), groups.end());
    IFLS_CHECK(static_cast<std::size_t>(num_groups) < k);
    std::vector<NodeId> next_level;
    next_level.reserve(static_cast<std::size_t>(num_groups));
    std::vector<Centroid> next_centroids(
        static_cast<std::size_t>(num_groups));
    for (int g = 0; g < num_groups; ++g) {
      VipNode parent;
      parent.id = static_cast<NodeId>(tree.nodes_.size());
      next_level.push_back(parent.id);
      tree.nodes_.push_back(std::move(parent));
    }
    for (std::size_t i = 0; i < k; ++i) {
      const auto g = static_cast<std::size_t>(groups[i]);
      const NodeId parent_id = next_level[g];
      tree.nodes_[static_cast<std::size_t>(level[i])].parent = parent_id;
      tree.nodes_[static_cast<std::size_t>(parent_id)].children.push_back(
          level[i]);
      next_centroids[g].sum_x += centroids[i].sum_x;
      next_centroids[g].sum_y += centroids[i].sum_y;
      next_centroids[g].sum_level += centroids[i].sum_level;
      next_centroids[g].count += centroids[i].count;
    }
    level = std::move(next_level);
    centroids = std::move(next_centroids);
  }
  tree.root_ = level.front();

  // ---- Depths (needed for the access-door containment checks below). ----
  {
    std::queue<NodeId> bfs;
    bfs.push(tree.root_);
    tree.nodes_[static_cast<std::size_t>(tree.root_)].depth = 0;
    while (!bfs.empty()) {
      const NodeId cur = bfs.front();
      bfs.pop();
      VipNode& n = tree.nodes_[static_cast<std::size_t>(cur)];
      for (NodeId ch : n.children) {
        tree.nodes_[static_cast<std::size_t>(ch)].depth = n.depth + 1;
        bfs.push(ch);
      }
    }
  }

  // ---- Door sets and access doors. ---------------------------------------
  for (VipNode& n : tree.nodes_) {
    if (!n.is_leaf()) continue;
    std::vector<DoorId> doors;
    for (PartitionId p : n.partitions) {
      const auto& pd = venue->partition(p).doors;
      doors.insert(doors.end(), pd.begin(), pd.end());
    }
    n.doors = SortedUnique(std::move(doors));
    std::vector<DoorId> access;
    for (DoorId d : n.doors) {
      const Door& door = venue->door(d);
      const bool a_in = tree.leaf_of_partition_[static_cast<std::size_t>(
                            door.partition_a)] == n.id;
      const bool b_in = tree.leaf_of_partition_[static_cast<std::size_t>(
                            door.partition_b)] == n.id;
      if (a_in != b_in) access.push_back(d);
    }
    n.access_doors = std::move(access);  // subset of sorted -> sorted
  }
  // Internal nodes in ascending id order (children first).
  for (VipNode& n : tree.nodes_) {
    if (n.is_leaf()) continue;
    std::vector<DoorId> doors;
    for (NodeId ch : n.children) {
      const auto& cad = tree.nodes_[static_cast<std::size_t>(ch)].access_doors;
      doors.insert(doors.end(), cad.begin(), cad.end());
    }
    n.doors = SortedUnique(std::move(doors));
    std::vector<DoorId> access;
    for (DoorId d : n.doors) {
      const Door& door = venue->door(d);
      const bool a_in = tree.NodeContainsPartition(n.id, door.partition_a);
      const bool b_in = tree.NodeContainsPartition(n.id, door.partition_b);
      if (a_in != b_in) access.push_back(d);
    }
    n.access_doors = std::move(access);
  }

  IFLS_RETURN_NOT_OK(tree.ComputeDerivedState());

  // ---- Matrices: one global Dijkstra per door fills every row. -----------
  DoorGraph graph(*venue);
  // door -> nodes whose square matrix has it as a row.
  std::vector<std::vector<NodeId>> matrix_rows(venue->num_doors());
  for (VipNode& n : tree.nodes_) {
    n.matrix = DoorMatrix(n.doors, n.doors, options.store_first_hop);
    for (DoorId d : n.doors) {
      matrix_rows[static_cast<std::size_t>(d)].push_back(n.id);
    }
    if (n.is_leaf() && options.build_leaf_to_ancestor) {
      for (NodeId anc = n.parent; anc != kInvalidNode;
           anc = tree.nodes_[static_cast<std::size_t>(anc)].parent) {
        n.ancestor_matrices.emplace_back(
            n.doors, tree.nodes_[static_cast<std::size_t>(anc)].access_doors,
            options.store_first_hop);
      }
    }
  }
  // Door d's Dijkstra run fills exactly the matrix rows indexed by door d,
  // so distinct doors write disjoint memory and the sweep parallelizes
  // without synchronization; the built index is bit-identical for any
  // thread count. Each worker leases a reusable Dijkstra workspace so the
  // sweep is allocation-free after warmup.
  const int build_threads = options.build_threads <= 0
                                ? ThreadPool::DefaultThreads()
                                : options.build_threads;
  WorkspacePool<DijkstraWorkspace> workspaces;
  const auto fill_rows_for_door = [&](std::size_t d) {
    const DoorId door = static_cast<DoorId>(d);
    WorkspacePool<DijkstraWorkspace>::Lease ws = workspaces.Acquire();
    const ShortestPaths& paths =
        SingleSourceShortestPaths(graph, door, ws.get());
    for (NodeId nid : matrix_rows[d]) {
      VipNode& n = tree.nodes_[static_cast<std::size_t>(nid)];
      n.matrix.FillRowFromShortestPaths(door, paths);
      if (n.is_leaf()) {
        for (DoorMatrix& anc : n.ancestor_matrices) {
          if (!anc.empty()) anc.FillRowFromShortestPaths(door, paths);
        }
      }
    }
  };
  if (build_threads > 1 && venue->num_doors() > 1) {
    ThreadPool pool(build_threads);
    pool.ParallelFor(venue->num_doors(), fill_rows_for_door);
  } else {
    for (std::size_t d = 0; d < venue->num_doors(); ++d) {
      fill_rows_for_door(d);
    }
  }

  return tree;
}

Status VipTree::ComputeDerivedState() {
  // Root: the unique parentless node.
  root_ = kInvalidNode;
  for (const VipNode& n : nodes_) {
    if (n.parent == kInvalidNode) {
      if (root_ != kInvalidNode) {
        return Status::InvalidArgument("tree has multiple roots");
      }
      root_ = n.id;
    }
  }
  if (root_ == kInvalidNode) {
    return Status::InvalidArgument("tree has no root");
  }

  // Partition -> leaf mapping; leaf count.
  leaf_of_partition_.assign(venue_->num_partitions(), kInvalidNode);
  num_leaves_ = 0;
  for (const VipNode& n : nodes_) {
    if (!n.is_leaf()) continue;
    ++num_leaves_;
    for (PartitionId p : n.partitions) {
      if (p < 0 ||
          static_cast<std::size_t>(p) >= leaf_of_partition_.size()) {
        return Status::InvalidArgument("leaf references unknown partition");
      }
      if (leaf_of_partition_[static_cast<std::size_t>(p)] != kInvalidNode) {
        return Status::InvalidArgument("partition assigned to two leaves");
      }
      leaf_of_partition_[static_cast<std::size_t>(p)] = n.id;
    }
  }
  for (std::size_t p = 0; p < leaf_of_partition_.size(); ++p) {
    if (leaf_of_partition_[p] == kInvalidNode) {
      return Status::InvalidArgument("partition " + std::to_string(p) +
                                     " is in no leaf");
    }
  }

  // Depths, height, subtree sizes via BFS from the root.
  {
    std::size_t visited = 0;
    std::queue<NodeId> bfs;
    bfs.push(root_);
    nodes_[static_cast<std::size_t>(root_)].depth = 0;
    height_ = 0;
    std::vector<NodeId> order;
    order.reserve(nodes_.size());
    while (!bfs.empty()) {
      const NodeId cur = bfs.front();
      bfs.pop();
      ++visited;
      order.push_back(cur);
      VipNode& n = nodes_[static_cast<std::size_t>(cur)];
      height_ = std::max(height_, n.depth);
      for (NodeId ch : n.children) {
        if (ch < 0 || static_cast<std::size_t>(ch) >= nodes_.size() ||
            nodes_[static_cast<std::size_t>(ch)].parent != cur) {
          return Status::InvalidArgument("broken parent/child link");
        }
        nodes_[static_cast<std::size_t>(ch)].depth = n.depth + 1;
        bfs.push(ch);
      }
    }
    if (visited != nodes_.size()) {
      return Status::InvalidArgument("tree contains unreachable nodes");
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      VipNode& n = nodes_[static_cast<std::size_t>(*it)];
      if (n.is_leaf()) {
        n.subtree_partitions = static_cast<std::int32_t>(n.partitions.size());
      } else {
        std::int32_t total = 0;
        for (NodeId ch : n.children) {
          total += nodes_[static_cast<std::size_t>(ch)].subtree_partitions;
        }
        n.subtree_partitions = total;
      }
    }
  }

  // Matrix index maps (no searches at query time).
  for (VipNode& n : nodes_) {
    n.access_door_idx.clear();
    n.child_access_idx.clear();
    auto index_in_doors = [&n](DoorId d) -> std::int32_t {
      const auto it = std::lower_bound(n.doors.begin(), n.doors.end(), d);
      if (it == n.doors.end() || *it != d) return -1;
      return static_cast<std::int32_t>(it - n.doors.begin());
    };
    n.access_door_idx.reserve(n.access_doors.size());
    for (DoorId d : n.access_doors) {
      const std::int32_t idx = index_in_doors(d);
      if (idx < 0) {
        return Status::InvalidArgument(
            "access door missing from its node's door set");
      }
      n.access_door_idx.push_back(idx);
    }
    if (!n.is_leaf()) {
      n.child_access_idx.resize(n.children.size());
      for (std::size_t i = 0; i < n.children.size(); ++i) {
        const VipNode& child =
            nodes_[static_cast<std::size_t>(n.children[i])];
        n.child_access_idx[i].reserve(child.access_doors.size());
        for (DoorId d : child.access_doors) {
          const std::int32_t idx = index_in_doors(d);
          if (idx < 0) {
            return Status::InvalidArgument(
                "child access door missing from parent door set");
          }
          n.child_access_idx[i].push_back(idx);
        }
      }
    }
  }
  return Status::OK();
}

const VipNode& VipTree::node(NodeId id) const {
  IFLS_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size())
      << "node id " << id << " out of range";
  return nodes_[static_cast<std::size_t>(id)];
}

NodeId VipTree::LeafOf(PartitionId p) const {
  IFLS_CHECK(p >= 0 &&
             static_cast<std::size_t>(p) < leaf_of_partition_.size());
  return leaf_of_partition_[static_cast<std::size_t>(p)];
}

bool VipTree::NodeContainsPartition(NodeId n, PartitionId p) const {
  const int target_depth = node(n).depth;
  NodeId cur = LeafOf(p);
  while (cur != kInvalidNode && node(cur).depth > target_depth) {
    cur = node(cur).parent;
  }
  return cur == n;
}

NodeId VipTree::LowestCommonAncestor(NodeId a, NodeId b) const {
  while (node(a).depth > node(b).depth) a = node(a).parent;
  while (node(b).depth > node(a).depth) b = node(b).parent;
  while (a != b) {
    a = node(a).parent;
    b = node(b).parent;
  }
  return a;
}

std::size_t VipTree::MemoryFootprintBytes() const {
  std::size_t total = sizeof(VipTree);
  for (const VipNode& n : nodes_) {
    total += sizeof(VipNode);
    total += n.children.capacity() * sizeof(NodeId);
    total += n.partitions.capacity() * sizeof(PartitionId);
    total += n.doors.capacity() * sizeof(DoorId);
    total += n.access_doors.capacity() * sizeof(DoorId);
    total += n.matrix.MemoryFootprintBytes();
    for (const DoorMatrix& m : n.ancestor_matrices) {
      total += m.MemoryFootprintBytes();
    }
    total += n.access_door_idx.capacity() * sizeof(std::int32_t);
    for (const auto& v : n.child_access_idx) {
      total += v.capacity() * sizeof(std::int32_t);
    }
  }
  total += leaf_of_partition_.capacity() * sizeof(NodeId);
  // Memoized door distances (conceptually part of the index; grows with
  // query traffic up to doors^2 entries).
  total += distance_cache_size() *
           (sizeof(std::uint64_t) + sizeof(double) + 2 * sizeof(void*));
  return total;
}

std::string VipTree::ToString() const {
  std::ostringstream os;
  os << (options_.build_leaf_to_ancestor ? "VIP-tree" : "IP-tree") << "{"
     << nodes_.size() << " nodes, " << num_leaves_ << " leaves, height "
     << height_ << ", "
     << MemoryFootprintBytes() / 1024.0 / 1024.0 << " MiB}";
  return os.str();
}

}  // namespace ifls
