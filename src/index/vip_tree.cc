#include "src/index/vip_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <sstream>
#include <utility>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/common/workspace_pool.h"
#include "src/graph/door_graph.h"

namespace ifls {
namespace {

/// Sorted, deduplicated copy.
std::vector<DoorId> SortedUnique(std::vector<DoorId> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

/// An item to be clustered: a representative point plus its original index.
struct SpatialItem {
  double x = 0.0;
  double y = 0.0;
  double level = 0.0;
  std::size_t index = 0;
};

/// Orders items spatially — level-major, Hilbert curve within the level —
/// and cuts the order into consecutive chunks of at most `capacity`
/// members. Adjacent rooms along a corridor land in the same chunk, giving
/// the compact, few-access-door nodes the VIP-tree relies on. Chunks also
/// break at level boundaries, so whole floors congeal into single nodes
/// whose only access doors are stair doors — the topology-aware clustering
/// the VIP-tree paper emphasizes for multi-level venues. When level breaks
/// would prevent the level from shrinking (e.g. one node per level already),
/// the function falls back to plain capacity chunking, guaranteeing
/// progress. Returns the cluster index per original item index.
std::vector<int> ChunkBySpatialOrder(std::vector<SpatialItem> items,
                                     int capacity,
                                     bool break_on_level_change = true) {
  double min_x = 0, max_x = 0, min_y = 0, max_y = 0;
  bool first = true;
  for (const SpatialItem& it : items) {
    if (first) {
      min_x = max_x = it.x;
      min_y = max_y = it.y;
      first = false;
    } else {
      min_x = std::min(min_x, it.x);
      max_x = std::max(max_x, it.x);
      min_y = std::min(min_y, it.y);
      max_y = std::max(max_y, it.y);
    }
  }
  constexpr std::uint32_t kOrder = 16;
  const double span_x = std::max(max_x - min_x, 1e-9);
  const double span_y = std::max(max_y - min_y, 1e-9);
  const double cells = static_cast<double>((1u << kOrder) - 1);
  struct Keyed {
    std::int64_t level_key;
    std::uint64_t hilbert;
    std::size_t index;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(items.size());
  for (const SpatialItem& it : items) {
    const auto gx =
        static_cast<std::uint32_t>((it.x - min_x) / span_x * cells);
    const auto gy =
        static_cast<std::uint32_t>((it.y - min_y) / span_y * cells);
    keyed.push_back({static_cast<std::int64_t>(std::llround(it.level)),
                     HilbertIndex(kOrder, gx, gy), it.index});
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.level_key != b.level_key) return a.level_key < b.level_key;
    if (a.hilbert != b.hilbert) return a.hilbert < b.hilbert;
    return a.index < b.index;
  });
  std::vector<int> cluster(items.size(), -1);
  int current = 0;
  int members = 0;
  for (std::size_t i = 0; i < keyed.size(); ++i) {
    const bool level_break = break_on_level_change && i > 0 &&
                             keyed[i].level_key != keyed[i - 1].level_key;
    if (members >= capacity || level_break) {
      ++current;
      members = 0;
    }
    cluster[keyed[i].index] = current;
    ++members;
  }
  if (break_on_level_change &&
      static_cast<std::size_t>(current) + 1 >= items.size() &&
      items.size() > 1) {
    // Level breaks stalled the merge (one item per level); merge across
    // levels instead.
    return ChunkBySpatialOrder(std::move(items), capacity, false);
  }
  return cluster;
}

}  // namespace

VipTree::VipTree(VipTree&& other) noexcept
    : venue_(other.venue_),
      options_(other.options_),
      ids_(std::move(other.ids_)),
      dist_(std::move(other.dist_)),
      hops_(std::move(other.hops_)),
      ancestor_views_(std::move(other.ancestor_views_)),
      nodes_(std::move(other.nodes_)),
      leaf_of_partition_(std::move(other.leaf_of_partition_)),
      root_(other.root_),
      num_leaves_(other.num_leaves_),
      height_(other.height_),
      door_cache_(std::move(other.door_cache_)),
      mapping_(std::move(other.mapping_)) {
  // Spans and matrix views in nodes_ point into the arenas' heap blocks,
  // which the vector moves transfer verbatim — no rewiring needed.
  CopyCountersFrom(other);
  other.venue_ = nullptr;
}

VipTree& VipTree::operator=(VipTree&& other) noexcept {
  if (this == &other) return *this;
  VipTree tmp(std::move(other));
  // Steal tmp's state member by member; no self-aliasing remains.
  venue_ = tmp.venue_;
  options_ = tmp.options_;
  ids_ = std::move(tmp.ids_);
  dist_ = std::move(tmp.dist_);
  hops_ = std::move(tmp.hops_);
  ancestor_views_ = std::move(tmp.ancestor_views_);
  nodes_ = std::move(tmp.nodes_);
  leaf_of_partition_ = std::move(tmp.leaf_of_partition_);
  root_ = tmp.root_;
  num_leaves_ = tmp.num_leaves_;
  height_ = tmp.height_;
  door_cache_ = std::move(tmp.door_cache_);
  mapping_ = std::move(tmp.mapping_);
  CopyCountersFrom(tmp);
  return *this;
}

bool VipTree::CachedDoorDistance(std::uint64_t key, double* out) const {
  return door_cache_ != nullptr && door_cache_->Lookup(key, out);
}

void VipTree::StoreDoorDistance(std::uint64_t key, double value) const {
  if (door_cache_ != nullptr) door_cache_->Insert(key, value);
}

void VipTree::ClearDistanceCache() const {
  if (door_cache_ != nullptr) door_cache_->Clear();
}

std::size_t VipTree::distance_cache_size() const {
  return door_cache_ != nullptr ? door_cache_->size() : 0;
}

ConcurrentDoorCache::Stats VipTree::door_cache_stats() const {
  return door_cache_ != nullptr ? door_cache_->stats()
                                : ConcurrentDoorCache::Stats{};
}

Result<VipTree> VipTree::Build(const Venue* venue, VipTreeOptions options) {
  if (venue == nullptr) {
    return Status::InvalidArgument("venue must not be null");
  }
  if (options.leaf_capacity < 1 || options.internal_fanout < 2) {
    return Status::InvalidArgument(
        "leaf_capacity must be >= 1 and internal_fanout >= 2");
  }
  IFLS_RETURN_NOT_OK(venue->Validate());

  VipTree tree;
  tree.venue_ = venue;
  tree.options_ = options;

  const std::size_t num_partitions = venue->num_partitions();

  // The clustering phase works on a transient structural description; the
  // result is converted into the flat arena layout in one pass once every
  // id list's exact size is known.
  VipTreeStructure structure;

  // ---- Leaf formation: spatially chunk the partitions. ------------------
  std::vector<SpatialItem> partition_items;
  partition_items.reserve(num_partitions);
  for (std::size_t i = 0; i < num_partitions; ++i) {
    const Partition& p = venue->partition(static_cast<PartitionId>(i));
    const Point c = p.rect.center();
    partition_items.push_back(
        {c.x, c.y, static_cast<double>(p.level()), i});
  }
  std::vector<int> leaf_cluster =
      ChunkBySpatialOrder(std::move(partition_items), options.leaf_capacity);
  const int num_leaves =
      1 + *std::max_element(leaf_cluster.begin(), leaf_cluster.end());

  std::vector<NodeId> leaf_of(num_partitions, kInvalidNode);
  structure.nodes.resize(static_cast<std::size_t>(num_leaves));
  for (int l = 0; l < num_leaves; ++l) {
    structure.nodes[static_cast<std::size_t>(l)].id = static_cast<NodeId>(l);
  }
  for (std::size_t p = 0; p < num_partitions; ++p) {
    const NodeId leaf = static_cast<NodeId>(leaf_cluster[p]);
    structure.nodes[static_cast<std::size_t>(leaf)].partitions.push_back(
        static_cast<PartitionId>(p));
    leaf_of[p] = leaf;
  }

  // ---- Upper levels: spatially chunk nodes until a single root. ---------
  // Each node carries a centroid (partition-count weighted) used as its
  // clustering representative.
  struct Centroid {
    double sum_x = 0, sum_y = 0, sum_level = 0;
    double count = 0;
  };
  std::vector<Centroid> centroids(static_cast<std::size_t>(num_leaves));
  for (std::size_t p = 0; p < num_partitions; ++p) {
    const Partition& part = venue->partition(static_cast<PartitionId>(p));
    const Point c = part.rect.center();
    Centroid& cen = centroids[static_cast<std::size_t>(leaf_cluster[p])];
    cen.sum_x += c.x;
    cen.sum_y += c.y;
    cen.sum_level += part.level();
    cen.count += 1;
  }

  std::vector<NodeId> level;
  level.reserve(static_cast<std::size_t>(num_leaves));
  for (int l = 0; l < num_leaves; ++l) level.push_back(static_cast<NodeId>(l));

  while (level.size() > 1) {
    const std::size_t k = level.size();
    std::vector<SpatialItem> items;
    items.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      const Centroid& c = centroids[i];
      items.push_back({c.sum_x / c.count, c.sum_y / c.count,
                       c.sum_level / c.count, i});
    }
    const std::vector<int> groups =
        ChunkBySpatialOrder(std::move(items), options.internal_fanout);
    const int num_groups = 1 + *std::max_element(groups.begin(), groups.end());
    IFLS_CHECK(static_cast<std::size_t>(num_groups) < k);
    std::vector<NodeId> next_level;
    next_level.reserve(static_cast<std::size_t>(num_groups));
    std::vector<Centroid> next_centroids(
        static_cast<std::size_t>(num_groups));
    for (int g = 0; g < num_groups; ++g) {
      VipTreeStructure::Node parent;
      parent.id = static_cast<NodeId>(structure.nodes.size());
      next_level.push_back(parent.id);
      structure.nodes.push_back(std::move(parent));
    }
    for (std::size_t i = 0; i < k; ++i) {
      const auto g = static_cast<std::size_t>(groups[i]);
      const NodeId parent_id = next_level[g];
      structure.nodes[static_cast<std::size_t>(level[i])].parent = parent_id;
      structure.nodes[static_cast<std::size_t>(parent_id)]
          .children.push_back(level[i]);
      next_centroids[g].sum_x += centroids[i].sum_x;
      next_centroids[g].sum_y += centroids[i].sum_y;
      next_centroids[g].sum_level += centroids[i].sum_level;
      next_centroids[g].count += centroids[i].count;
    }
    level = std::move(next_level);
    centroids = std::move(next_centroids);
  }
  const NodeId root = level.front();

  // ---- Depths (needed for the access-door containment checks below). ----
  std::vector<int> depth(structure.nodes.size(), 0);
  {
    std::queue<NodeId> bfs;
    bfs.push(root);
    while (!bfs.empty()) {
      const NodeId cur = bfs.front();
      bfs.pop();
      for (NodeId ch : structure.nodes[static_cast<std::size_t>(cur)].children) {
        depth[static_cast<std::size_t>(ch)] =
            depth[static_cast<std::size_t>(cur)] + 1;
        bfs.push(ch);
      }
    }
  }

  // ---- Door sets and access doors. ---------------------------------------
  const auto contains = [&](NodeId nid, PartitionId p) {
    NodeId cur = leaf_of[static_cast<std::size_t>(p)];
    while (cur != kInvalidNode &&
           depth[static_cast<std::size_t>(cur)] >
               depth[static_cast<std::size_t>(nid)]) {
      cur = structure.nodes[static_cast<std::size_t>(cur)].parent;
    }
    return cur == nid;
  };
  for (VipTreeStructure::Node& n : structure.nodes) {
    if (!n.is_leaf()) continue;
    std::vector<DoorId> doors;
    for (PartitionId p : n.partitions) {
      const auto& pd = venue->partition(p).doors;
      doors.insert(doors.end(), pd.begin(), pd.end());
    }
    n.doors = SortedUnique(std::move(doors));
    std::vector<DoorId> access;
    for (DoorId d : n.doors) {
      const Door& door = venue->door(d);
      const bool a_in =
          leaf_of[static_cast<std::size_t>(door.partition_a)] == n.id;
      const bool b_in =
          leaf_of[static_cast<std::size_t>(door.partition_b)] == n.id;
      if (a_in != b_in) access.push_back(d);
    }
    n.access_doors = std::move(access);  // subset of sorted -> sorted
  }
  // Internal nodes in ascending id order (children first).
  for (VipTreeStructure::Node& n : structure.nodes) {
    if (n.is_leaf()) continue;
    std::vector<DoorId> doors;
    for (NodeId ch : n.children) {
      const auto& cad =
          structure.nodes[static_cast<std::size_t>(ch)].access_doors;
      doors.insert(doors.end(), cad.begin(), cad.end());
    }
    n.doors = SortedUnique(std::move(doors));
    std::vector<DoorId> access;
    for (DoorId d : n.doors) {
      const Door& door = venue->door(d);
      const bool a_in = contains(n.id, door.partition_a);
      const bool b_in = contains(n.id, door.partition_b);
      if (a_in != b_in) access.push_back(d);
    }
    n.access_doors = std::move(access);
  }

  IFLS_RETURN_NOT_OK(tree.InitFromStructure(structure));

  // ---- Matrices: one global Dijkstra per door fills every row. -----------
  DoorGraph graph(*venue);
  // door -> nodes whose square matrix has it as a row.
  std::vector<std::vector<NodeId>> matrix_rows(venue->num_doors());
  for (const VipNode& n : tree.nodes_) {
    for (DoorId d : n.doors) {
      matrix_rows[static_cast<std::size_t>(d)].push_back(n.id);
    }
  }
  // Door d's Dijkstra run fills exactly the matrix rows indexed by door d,
  // so distinct doors write disjoint arena cells and the sweep parallelizes
  // without synchronization; the built index is bit-identical for any
  // thread count. Each worker leases a reusable Dijkstra workspace so the
  // sweep is allocation-free after warmup.
  const int build_threads = options.build_threads <= 0
                                ? ThreadPool::DefaultThreads()
                                : options.build_threads;
  WorkspacePool<DijkstraWorkspace> workspaces;
  const auto fill_rows_for_door = [&](std::size_t d) {
    const DoorId door = static_cast<DoorId>(d);
    WorkspacePool<DijkstraWorkspace>::Lease ws = workspaces.Acquire();
    const ShortestPaths& paths =
        SingleSourceShortestPaths(graph, door, ws.get());
    for (NodeId nid : matrix_rows[d]) {
      const VipNode& n = tree.nodes_[static_cast<std::size_t>(nid)];
      tree.FillMatrixRow(n.matrix, door, paths);
      if (n.is_leaf()) {
        for (const DoorMatrixView& anc : n.ancestor_matrices) {
          if (!anc.empty()) tree.FillMatrixRow(anc, door, paths);
        }
      }
    }
  };
  if (build_threads > 1 && venue->num_doors() > 1) {
    ThreadPool pool(build_threads);
    pool.ParallelFor(venue->num_doors(), fill_rows_for_door);
  } else {
    for (std::size_t d = 0; d < venue->num_doors(); ++d) {
      fill_rows_for_door(d);
    }
  }

  return tree;
}

Status VipTree::InitFromStructure(const VipTreeStructure& structure) {
  // Both Build and Load funnel through here with options_ already set, so
  // this is the one place the door memo gets sized. Allocated only when
  // enabled: the sharded slot array is a fixed upfront cost.
  if (options_.enable_door_distance_cache) {
    door_cache_ = std::make_unique<ConcurrentDoorCache>(
        options_.door_distance_cache_capacity);
  } else {
    door_cache_.reset();
  }

  const std::size_t n_nodes = structure.nodes.size();
  if (n_nodes == 0) {
    return Status::InvalidArgument("tree has no nodes");
  }
  for (std::size_t i = 0; i < n_nodes; ++i) {
    if (structure.nodes[i].id != static_cast<NodeId>(i)) {
      return Status::InvalidArgument("node ids must match their positions");
    }
  }

  // Root: the unique parentless node.
  root_ = kInvalidNode;
  for (const VipTreeStructure::Node& n : structure.nodes) {
    if (n.parent == kInvalidNode) {
      if (root_ != kInvalidNode) {
        return Status::InvalidArgument("tree has multiple roots");
      }
      root_ = n.id;
    }
  }
  if (root_ == kInvalidNode) {
    return Status::InvalidArgument("tree has no root");
  }

  // Partition -> leaf mapping; leaf count.
  leaf_of_partition_.assign(venue_->num_partitions(), kInvalidNode);
  num_leaves_ = 0;
  for (const VipTreeStructure::Node& n : structure.nodes) {
    if (!n.is_leaf()) continue;
    ++num_leaves_;
    for (PartitionId p : n.partitions) {
      if (p < 0 ||
          static_cast<std::size_t>(p) >= leaf_of_partition_.size()) {
        return Status::InvalidArgument("leaf references unknown partition");
      }
      if (leaf_of_partition_[static_cast<std::size_t>(p)] != kInvalidNode) {
        return Status::InvalidArgument("partition assigned to two leaves");
      }
      leaf_of_partition_[static_cast<std::size_t>(p)] = n.id;
    }
  }
  for (std::size_t p = 0; p < leaf_of_partition_.size(); ++p) {
    if (leaf_of_partition_[p] == kInvalidNode) {
      return Status::InvalidArgument("partition " + std::to_string(p) +
                                     " is in no leaf");
    }
  }

  // Depths, height, subtree sizes via BFS from the root.
  std::vector<int> depth(n_nodes, 0);
  std::vector<std::int32_t> subtree(n_nodes, 0);
  {
    std::size_t visited = 0;
    std::queue<NodeId> bfs;
    bfs.push(root_);
    height_ = 0;
    std::vector<NodeId> order;
    order.reserve(n_nodes);
    while (!bfs.empty()) {
      const NodeId cur = bfs.front();
      bfs.pop();
      ++visited;
      order.push_back(cur);
      const VipTreeStructure::Node& n =
          structure.nodes[static_cast<std::size_t>(cur)];
      height_ = std::max(height_, depth[static_cast<std::size_t>(cur)]);
      for (NodeId ch : n.children) {
        if (ch < 0 || static_cast<std::size_t>(ch) >= n_nodes ||
            structure.nodes[static_cast<std::size_t>(ch)].parent != cur) {
          return Status::InvalidArgument("broken parent/child link");
        }
        depth[static_cast<std::size_t>(ch)] =
            depth[static_cast<std::size_t>(cur)] + 1;
        bfs.push(ch);
      }
    }
    if (visited != n_nodes) {
      return Status::InvalidArgument("tree contains unreachable nodes");
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const auto i = static_cast<std::size_t>(*it);
      const VipTreeStructure::Node& n = structure.nodes[i];
      if (n.is_leaf()) {
        subtree[i] = static_cast<std::int32_t>(n.partitions.size());
      } else {
        std::int32_t total = 0;
        for (NodeId ch : n.children) {
          total += subtree[static_cast<std::size_t>(ch)];
        }
        subtree[i] = total;
      }
    }
  }

  // Matrix index maps (no searches at query time), still in per-node
  // temporaries: access_door_idx, plus the flattened child-access table
  // (prefix offsets + concatenated per-child index lists).
  std::vector<std::vector<std::int32_t>> access_idx(n_nodes);
  std::vector<std::vector<std::int32_t>> child_off(n_nodes);
  std::vector<std::vector<std::int32_t>> child_flat(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const VipTreeStructure::Node& n = structure.nodes[i];
    const auto index_in_doors = [&n](DoorId d) -> std::int32_t {
      const auto it = std::lower_bound(n.doors.begin(), n.doors.end(), d);
      if (it == n.doors.end() || *it != d) return -1;
      return static_cast<std::int32_t>(it - n.doors.begin());
    };
    access_idx[i].reserve(n.access_doors.size());
    for (DoorId d : n.access_doors) {
      const std::int32_t idx = index_in_doors(d);
      if (idx < 0) {
        return Status::InvalidArgument(
            "access door missing from its node's door set");
      }
      access_idx[i].push_back(idx);
    }
    if (!n.is_leaf()) {
      child_off[i].reserve(n.children.size() + 1);
      child_off[i].push_back(0);
      for (NodeId ch : n.children) {
        const VipTreeStructure::Node& child =
            structure.nodes[static_cast<std::size_t>(ch)];
        for (DoorId d : child.access_doors) {
          const std::int32_t idx = index_in_doors(d);
          if (idx < 0) {
            return Status::InvalidArgument(
                "child access door missing from parent door set");
          }
          child_flat[i].push_back(idx);
        }
        child_off[i].push_back(
            static_cast<std::int32_t>(child_flat[i].size()));
      }
    }
  }

  // ---- Exact arena totals; reservation happens once, so every span and
  // matrix view handed out below stays valid for the tree's lifetime.
  const bool vip = options_.build_leaf_to_ancestor;
  std::size_t id_total = 0;
  std::size_t dist_total = 0;
  std::size_t anc_view_total = 0;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const VipTreeStructure::Node& n = structure.nodes[i];
    id_total += n.children.size() + n.partitions.size() + n.doors.size() +
                n.access_doors.size() + access_idx[i].size() +
                child_off[i].size() + child_flat[i].size();
    dist_total += n.doors.size() * n.doors.size();
    if (vip && n.is_leaf()) {
      anc_view_total += static_cast<std::size_t>(depth[i]);
      for (NodeId anc = n.parent; anc != kInvalidNode;
           anc = structure.nodes[static_cast<std::size_t>(anc)].parent) {
        dist_total +=
            n.doors.size() *
            structure.nodes[static_cast<std::size_t>(anc)].access_doors.size();
      }
    }
  }
  ids_.Reserve(id_total);
  dist_.Reserve(dist_total);
  if (options_.store_first_hop) hops_.Reserve(dist_total);
  // Mapped arenas validate the computed totals against their section sizes
  // instead of allocating; a mismatch means the snapshot's descriptors and
  // payload disagree, and continuing would hand out spans past the mapping.
  IFLS_RETURN_NOT_OK(ids_.BackingStatus());
  IFLS_RETURN_NOT_OK(dist_.BackingStatus());
  IFLS_RETURN_NOT_OK(hops_.BackingStatus());
  ancestor_views_.clear();
  ancestor_views_.reserve(anc_view_total);
  nodes_.assign(n_nodes, VipNode{});

  // ---- Pass 1: scalar fields and id payloads (node id ascending).
  const auto append_ids = [this](const std::vector<std::int32_t>& v) {
    const std::size_t off = ids_.AppendRange(v.begin(), v.end());
    return std::span<const std::int32_t>(ids_.data() + off, v.size());
  };
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const VipTreeStructure::Node& sn = structure.nodes[i];
    VipNode& n = nodes_[i];
    n.id = sn.id;
    n.parent = sn.parent;
    n.depth = depth[i];
    n.subtree_partitions = subtree[i];
    n.children = append_ids(sn.children);
    n.partitions = append_ids(sn.partitions);
    n.doors = append_ids(sn.doors);
    n.access_doors = append_ids(sn.access_doors);
    n.access_door_idx = append_ids(access_idx[i]);
    n.child_access_off_ = append_ids(child_off[i]);
    n.child_access_flat_ = append_ids(child_flat[i]);
  }

  // ---- Pass 2: matrix payload slots and views (node id ascending; per
  // node the main matrix, then — VIP leaves — ancestor matrices
  // k = 0..depth-1). This order is also the v2 serialization payload order.
  const auto allocate_matrix = [this](std::span<const DoorId> rows,
                                      std::span<const DoorId> cols) {
    const std::size_t cells = rows.size() * cols.size();
    const std::size_t off = dist_.Allocate(cells, kInfDistance);
    const DoorId* hop_ptr = nullptr;
    if (options_.store_first_hop) {
      const std::size_t hop_off = hops_.Allocate(cells, kInvalidDoor);
      IFLS_DCHECK(hop_off == off);
      hop_ptr = hops_.data() + hop_off;
    }
    return DoorMatrixView(rows, cols, dist_.data() + off, hop_ptr);
  };
  for (std::size_t i = 0; i < n_nodes; ++i) {
    VipNode& n = nodes_[i];
    n.matrix = allocate_matrix(n.doors, n.doors);
    if (vip && n.is_leaf()) {
      const std::size_t first = ancestor_views_.size();
      for (NodeId anc = n.parent; anc != kInvalidNode;
           anc = nodes_[static_cast<std::size_t>(anc)].parent) {
        ancestor_views_.push_back(allocate_matrix(
            n.doors, nodes_[static_cast<std::size_t>(anc)].access_doors));
      }
      n.ancestor_matrices = std::span<const DoorMatrixView>(
          ancestor_views_.data() + first, ancestor_views_.size() - first);
    }
  }
  // Mapped arenas replayed the passes as verification: any content mismatch
  // between the mapped ids section and the derived layout is sticky here.
  IFLS_RETURN_NOT_OK(ids_.BackingStatus());
  IFLS_RETURN_NOT_OK(dist_.BackingStatus());
  IFLS_RETURN_NOT_OK(hops_.BackingStatus());
  return Status::OK();
}

void VipTree::FillMatrixRow(const DoorMatrixView& view, DoorId row,
                            const ShortestPaths& paths) {
  const int r = view.RowIndex(row);
  IFLS_DCHECK(r >= 0);
  const std::size_t cols = view.num_cols();
  const std::size_t base =
      static_cast<std::size_t>(view.dist_data() - dist_.data()) +
      static_cast<std::size_t>(r) * cols;
  double* dist_row = dist_.mutable_data() + base;
  DoorId* hop_row = nullptr;
  if (view.has_first_hop()) {
    hop_row = hops_.mutable_data() +
              (static_cast<std::size_t>(view.first_hop_data() - hops_.data()) +
               static_cast<std::size_t>(r) * cols);
  }
  const std::span<const DoorId> col_ids = view.cols();
  for (std::size_t c = 0; c < cols; ++c) {
    const auto target = static_cast<std::size_t>(col_ids[c]);
    dist_row[c] = paths.distance[target];
    if (hop_row != nullptr) hop_row[c] = paths.first_hop[target];
  }
}

const VipNode& VipTree::node(NodeId id) const {
  IFLS_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size())
      << "node id " << id << " out of range";
  return nodes_[static_cast<std::size_t>(id)];
}

NodeId VipTree::LeafOf(PartitionId p) const {
  IFLS_CHECK(p >= 0 &&
             static_cast<std::size_t>(p) < leaf_of_partition_.size());
  return leaf_of_partition_[static_cast<std::size_t>(p)];
}

bool VipTree::NodeContainsPartition(NodeId n, PartitionId p) const {
  const int target_depth = node(n).depth;
  NodeId cur = LeafOf(p);
  while (cur != kInvalidNode && node(cur).depth > target_depth) {
    cur = node(cur).parent;
  }
  return cur == n;
}

NodeId VipTree::LowestCommonAncestor(NodeId a, NodeId b) const {
  while (node(a).depth > node(b).depth) a = node(a).parent;
  while (node(b).depth > node(a).depth) b = node(b).parent;
  while (a != b) {
    a = node(a).parent;
    b = node(b).parent;
  }
  return a;
}

std::size_t VipTree::MemoryFootprintBytes() const {
  std::size_t total = sizeof(VipTree);
  total += nodes_.capacity() * sizeof(VipNode);
  total += ids_.MemoryFootprintBytes();
  total += dist_.MemoryFootprintBytes();
  total += hops_.MemoryFootprintBytes();
  total += ancestor_views_.capacity() * sizeof(DoorMatrixView);
  total += leaf_of_partition_.capacity() * sizeof(NodeId);
  // Memoized door distances (conceptually part of the index; the sharded
  // slot array is allocated up front when the memo is enabled).
  if (door_cache_ != nullptr) total += door_cache_->MemoryFootprintBytes();
  return total;
}

std::size_t VipTree::MappedFootprintBytes() const {
  return mapping_ != nullptr ? mapping_->size() : 0;
}

VipTreeLayoutStats VipTree::LayoutStats() const {
  VipTreeLayoutStats s;
  s.num_nodes = nodes_.size();
  s.num_leaves = num_leaves_;
  s.id_bytes = ids_.size() * sizeof(std::int32_t);
  s.dist_bytes = dist_.size() * sizeof(double);
  s.hop_bytes = hops_.size() * sizeof(DoorId);
  s.arena_used_bytes = s.id_bytes + s.dist_bytes + s.hop_bytes;
  // capacity() covers both backings (heap reservation or mapped section
  // size), so utilization stays meaningful for mapped trees too.
  s.arena_capacity_bytes = ids_.capacity() * sizeof(std::int32_t) +
                           dist_.capacity() * sizeof(double) +
                           hops_.capacity() * sizeof(DoorId);
  s.mapped_bytes =
      ids_.MappedBytes() + dist_.MappedBytes() + hops_.MappedBytes();
  s.arena_utilization =
      s.arena_capacity_bytes == 0
          ? 1.0
          : static_cast<double>(s.arena_used_bytes) /
                static_cast<double>(s.arena_capacity_bytes);
  s.bytes_per_node = nodes_.empty() ? 0.0
                                    : static_cast<double>(
                                          MemoryFootprintBytes()) /
                                          static_cast<double>(nodes_.size());
  return s;
}

std::string VipTree::ToString() const {
  std::ostringstream os;
  os << (options_.build_leaf_to_ancestor ? "VIP-tree" : "IP-tree") << "{"
     << nodes_.size() << " nodes, " << num_leaves_ << " leaves, height "
     << height_ << ", "
     << MemoryFootprintBytes() / 1024.0 / 1024.0 << " MiB resident"
     << (is_mapped()
             ? ", " + std::to_string(MappedFootprintBytes() / 1024 / 1024) +
                   " MiB mapped"
             : "")
     << "}";
  return os.str();
}

}  // namespace ifls
