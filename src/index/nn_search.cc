#include "src/index/nn_search.h"

#include <functional>
#include <queue>

#include "src/common/logging.h"
#include "src/common/memory_tracker.h"
#include "src/common/trace.h"

namespace ifls {
namespace {

struct Entry {
  double key = 0.0;
  std::int32_t id = -1;  // NodeId or PartitionId depending on is_partition
  bool is_partition = false;
  bool operator>(const Entry& other) const { return key > other.key; }
};

bool MatchesFilter(const FacilityIndex& index, PartitionId p,
                   FacilityFilter filter) {
  switch (filter) {
    case FacilityFilter::kAny:
      return index.IsFacility(p);
    case FacilityFilter::kExistingOnly:
      return index.IsExisting(p);
    case FacilityFilter::kCandidateOnly:
      return index.IsCandidate(p);
  }
  return false;
}

/// Best-first traversal emitting facilities in ascending exact distance.
/// `emit` returns false to stop the search.
///
/// Every key computed here (PointToPartition exact distances, PointToNode
/// lower bounds) bottoms out in the oracle's min-plus reductions, which run
/// on the blocked kernels in src/index/minplus_kernels.h — the kernels'
/// bit-identity contract is what keeps this traversal's pop order, and thus
/// NN tie-breaks, identical across scalar and SIMD dispatch.
void IncrementalSearch(const FacilityIndex& index, const Point& query,
                       PartitionId query_partition, FacilityFilter filter,
                       NnSearchStats* stats,
                       const std::function<bool(const NnResult&)>& emit) {
  TraceSpan span(TraceCategory::kOracle, "nn_search");
  const DistanceOracle& oracle = index.oracle();
  // The queue charges the caller's active MemoryTracker so a query's search
  // footprint shows up in its memory stats.
  std::priority_queue<Entry, std::vector<Entry, TrackingAllocator<Entry>>,
                      std::greater<Entry>>
      queue;

  auto push = [&](const Entry& e) {
    queue.push(e);
    if (stats != nullptr) ++stats->queue_pushes;
  };

  if (index.SubtreeCount(oracle.root()) > 0) {
    push({0.0, oracle.root(), false});
  }
  while (!queue.empty()) {
    const Entry top = queue.top();
    queue.pop();
    if (stats != nullptr) ++stats->queue_pops;
    if (top.is_partition) {
      // PointToPartition keys are exact, so a popped partition is settled.
      if (!emit({top.id, top.key})) return;
      continue;
    }
    if (oracle.IsLeaf(top.id)) {
      for (PartitionId p : oracle.NodePartitions(top.id)) {
        if (!MatchesFilter(index, p, filter)) continue;
        const double d = oracle.PointToPartition(query, query_partition, p);
        if (stats != nullptr) ++stats->distance_computations;
        push({d, p, true});
      }
    } else {
      for (NodeId ch : oracle.Children(top.id)) {
        if (index.SubtreeCount(ch) == 0) continue;
        const double bound = oracle.PointToNode(query, query_partition, ch);
        if (stats != nullptr) ++stats->distance_computations;
        push({bound, ch, false});
      }
    }
  }
}

}  // namespace

std::optional<NnResult> NearestFacility(const FacilityIndex& index,
                                        const Point& query,
                                        PartitionId query_partition,
                                        FacilityFilter filter,
                                        NnSearchStats* stats) {
  std::optional<NnResult> result;
  IncrementalSearch(index, query, query_partition, filter, stats,
                    [&](const NnResult& r) {
                      result = r;
                      return false;
                    });
  return result;
}

std::vector<NnResult> KNearestFacilities(const FacilityIndex& index,
                                         const Point& query,
                                         PartitionId query_partition, int k,
                                         FacilityFilter filter,
                                         NnSearchStats* stats) {
  IFLS_CHECK(k >= 0);
  std::vector<NnResult> results;
  if (k == 0) return results;
  results.reserve(static_cast<std::size_t>(k));
  IncrementalSearch(index, query, query_partition, filter, stats,
                    [&](const NnResult& r) {
                      results.push_back(r);
                      return static_cast<int>(results.size()) < k;
                    });
  return results;
}

std::vector<NnResult> FacilitiesWithinRadius(const FacilityIndex& index,
                                             const Point& query,
                                             PartitionId query_partition,
                                             double radius,
                                             FacilityFilter filter,
                                             NnSearchStats* stats) {
  std::vector<NnResult> results;
  IncrementalSearch(index, query, query_partition, filter, stats,
                    [&](const NnResult& r) {
                      if (r.distance > radius) return false;
                      results.push_back(r);
                      return true;
                    });
  return results;
}

}  // namespace ifls
