#ifndef IFLS_INDEX_VIP_TREE_IO_V3_H_
#define IFLS_INDEX_VIP_TREE_IO_V3_H_

#include <cstddef>
#include <cstdint>

#include "src/common/hash.h"

namespace ifls {

// On-disk layout of the IFLS VIP-tree snapshot format v3 (binary,
// little-endian, page-aligned, checksummed). Unlike the v1/v2 text formats,
// a v3 file is *directly mappable*: the three arena sections are the bytes
// the in-memory index reads at query time, so loading is mmap + a descriptor
// fixup pass over the (small) node-record table — never a parse or a copy of
// the bulk payload.
//
//   [ V3Header, zero-padded to kV3SectionAlignment ]
//   [ num_nodes x V3NodeRecord  (the descriptor table) ]  -> checksummed
//   [ pad ] [ ids section:  ids_count  x int32  ]  -+
//   [ pad ] [ dist section: dist_count x double ]   +- checksummed together
//   [ pad ] [ hops section: hops_count x int32  ]  -+
//
// Every section offset is kV3SectionAlignment-aligned, so any mmap base
// (page-aligned by definition) yields naturally aligned int32/double views.
// The per-node id lists (children, partitions, doors, access doors) and the
// derived index maps live inside the ids section in the deterministic arena
// layout order; the descriptor table stores only the counts needed to slice
// them back out. The loader re-derives the index maps and *verifies* them
// against the mapped ids section, so a bit-rotted file cannot produce a
// structurally plausible but wrong index even when its checksums were also
// tampered with.

inline constexpr char kV3Magic[8] = {'I', 'F', 'L', 'S', 'S', 'N', 'P', '3'};
inline constexpr std::uint32_t kV3Version = 3;
/// Section alignment; one x86/arm64 page, so mapped sections start on page
/// boundaries and the header occupies exactly one page.
inline constexpr std::size_t kV3SectionAlignment = 4096;

/// Fixed-size file header (first kV3SectionAlignment bytes, zero-padded).
struct V3Header {
  char magic[8];
  std::uint32_t version = kV3Version;
  std::uint32_t header_bytes = kV3SectionAlignment;
  /// Total file size; a mapping smaller than this is a short map.
  std::uint64_t file_bytes = 0;

  // VipTreeOptions (build-relevant subset; runtime tuning fields such as the
  // door-cache capacity are not part of the format).
  std::int32_t leaf_capacity = 0;
  std::int32_t internal_fanout = 0;
  std::uint8_t build_leaf_to_ancestor = 0;
  std::uint8_t store_first_hop = 0;
  std::uint8_t single_door_optimization = 0;
  std::uint8_t enable_door_distance_cache = 0;
  std::uint32_t reserved = 0;

  // Venue fingerprint: a loaded tree must match the venue it is given.
  std::uint64_t num_partitions = 0;
  std::uint64_t num_doors = 0;

  std::uint64_t num_nodes = 0;
  /// Descriptor table (V3NodeRecord array) location.
  std::uint64_t structure_offset = 0;
  std::uint64_t structure_bytes = 0;
  /// Arena sections: byte offset + element count each.
  std::uint64_t ids_offset = 0;
  std::uint64_t ids_count = 0;
  std::uint64_t dist_offset = 0;
  std::uint64_t dist_count = 0;
  std::uint64_t hops_offset = 0;
  std::uint64_t hops_count = 0;

  /// FNV-1a 64 over the descriptor table bytes.
  std::uint64_t structure_checksum = 0;
  /// FNV-1a 64 over the ids, dist and hops section bytes, in that order
  /// (padding between sections excluded).
  std::uint64_t payload_checksum = 0;
  /// FNV-1a 64 over this struct's bytes with this field zeroed.
  std::uint64_t header_checksum = 0;
};
static_assert(sizeof(V3Header) <= kV3SectionAlignment,
              "v3 header must fit its page");

/// One node of the descriptor table. List *contents* live in the ids
/// section; records carry only what the fixup pass needs to slice and
/// re-validate them.
struct V3NodeRecord {
  std::int32_t id = -1;
  std::int32_t parent = -1;
  std::uint32_t num_children = 0;
  std::uint32_t num_partitions = 0;
  std::uint32_t num_doors = 0;
  std::uint32_t num_access_doors = 0;
  /// Ancestor matrix count (leaves in VIP mode: depth; else 0), validated
  /// against the re-derived structure.
  std::uint32_t num_ancestors = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(V3NodeRecord) == 32, "v3 node record layout drifted");

// The v3 checksum primitive is the shared FNV-1a 64 from src/common/hash.h
// (re-exported through the include above); the wire codec (net/wire) uses
// the same one, so a frame checksum and a snapshot checksum are computed by
// one implementation.

/// Rounds `offset` up to the next kV3SectionAlignment boundary.
inline constexpr std::uint64_t V3AlignUp(std::uint64_t offset) {
  return (offset + kV3SectionAlignment - 1) & ~(kV3SectionAlignment - 1);
}

}  // namespace ifls

#endif  // IFLS_INDEX_VIP_TREE_IO_V3_H_
