#ifndef IFLS_INDEX_VIP_TREE_H_
#define IFLS_INDEX_VIP_TREE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/arena.h"
#include "src/common/concurrent_cache.h"
#include "src/common/mapped_file.h"
#include "src/common/status.h"
#include "src/index/distance_oracle.h"
#include "src/index/door_matrix.h"
#include "src/indoor/venue.h"

namespace ifls {

/// Build parameters for IP-tree / VIP-tree construction.
struct VipTreeOptions {
  /// Maximum partitions merged into one leaf node.
  int leaf_capacity = 8;
  /// Maximum children per internal node. The default lets a typical floor's
  /// leaves merge into one node, leaving only stair doors as access doors.
  int internal_fanout = 8;
  /// When true (VIP-tree), leaves additionally materialize door-to-ancestor-
  /// access-door matrices; when false (IP-tree), those distances are composed
  /// through the node chain at query time.
  bool build_leaf_to_ancestor = true;
  /// Store first-hop doors alongside distances (path reconstruction).
  bool store_first_hop = true;
  /// Use the paper's single-door shortcut (§5.3.1 Case 1): clients in a
  /// one-door partition reuse the partition-level distance plus their local
  /// leg. Toggleable for the ablation benchmark.
  bool single_door_optimization = true;
  /// Worker threads for the matrix-building Dijkstra sweep (one global run
  /// per door; each door writes its own disjoint matrix rows, so the built
  /// index is bit-identical for any thread count). <= 0 uses all hardware
  /// threads; 1 keeps the build single-threaded.
  int build_threads = 0;
  /// Memoize DoorToDoor results in a hash table owned by the index (the
  /// door-graph distances are static, so the cache is conceptually part of
  /// the materialized index, like Yang et al.'s door-to-door hash table).
  /// OFF by default: the paper's cost model recomputes matrix compositions
  /// per iDist call, and the redundancy across clients of one partition is
  /// precisely what the efficient approach's grouping exploits — a global
  /// memo would hand that advantage to the baseline too. The ablation bench
  /// measures the memoized configuration separately.
  bool enable_door_distance_cache = false;
  /// Slot budget for the sharded door-distance memo (rounded up to a power
  /// of two per shard). Runtime tuning only — not part of the serialized
  /// index format.
  std::size_t door_distance_cache_capacity = ConcurrentDoorCache::kDefaultCapacity;
};

/// One tree node. Leaves own a contiguous group of adjacent partitions;
/// internal nodes own adjacent child nodes. In the IFLS algorithms the
/// "children" of a leaf are its partitions (paper Algorithm 3 line 19).
///
/// Flat layout: every variable-length payload — id lists, index maps, and
/// all matrix cells — lives in the owning tree's contiguous arena buffers;
/// the node only carries spans/views into them. Nodes are therefore small,
/// trivially copyable descriptors, and a traversal touching many nodes walks
/// a handful of contiguous allocations instead of chasing per-node heap
/// pointers.
struct VipNode {
  NodeId id = kInvalidNode;
  NodeId parent = kInvalidNode;
  /// Root has depth 0.
  int depth = 0;
  /// Number of partitions in the subtree (leaf: partitions.size()).
  std::int32_t subtree_partitions = 0;
  /// Child node ids; empty for leaves.
  std::span<const NodeId> children;
  /// Partitions directly owned (leaves only).
  std::span<const PartitionId> partitions;
  /// Door universe of this node, sorted: leaf = every door incident to an
  /// owned partition; internal = union of children's access doors.
  std::span<const DoorId> doors;
  /// Doors with exactly one side inside this node's partition set, sorted.
  /// Empty for the root of a closed venue.
  std::span<const DoorId> access_doors;
  /// Global shortest distances over `doors` x `doors` (cells in the arena).
  DoorMatrixView matrix;
  /// VIP extension (leaves only): ancestor_matrices[k] has rows = this
  /// leaf's doors and cols = access doors of the k-th ancestor
  /// (k = 0 -> parent, k = depth-1 -> root).
  std::span<const DoorMatrixView> ancestor_matrices;
  /// Positions of `access_doors[i]` within `doors` (hence within `matrix`
  /// rows/cols). Precomputed so query-time composition needs no searches.
  std::span<const std::int32_t> access_door_idx;

  bool is_leaf() const { return children.empty(); }

  /// Internal nodes: child_access_idx(i)[j] = position of
  /// children[i]'s access_doors[j] within `doors`. Stored flattened:
  /// `child_access_off_` holds children.size()+1 prefix offsets into
  /// `child_access_flat_`.
  std::span<const std::int32_t> child_access_idx(std::size_t i) const {
    const auto begin = static_cast<std::size_t>(child_access_off_[i]);
    const auto end = static_cast<std::size_t>(child_access_off_[i + 1]);
    return child_access_flat_.subspan(begin, end - begin);
  }

  // Flat backing for child_access_idx (treat as private to the tree).
  std::span<const std::int32_t> child_access_off_;
  std::span<const std::int32_t> child_access_flat_;
};

/// Transient structural description of a tree: plain per-node vectors, as
/// produced by the build clustering phase or parsed by the serialization
/// loaders, before conversion into the flat arena layout. Internal API
/// shared by vip_tree.cc and vip_tree_io.cc.
struct VipTreeStructure {
  struct Node {
    NodeId id = kInvalidNode;
    NodeId parent = kInvalidNode;
    std::vector<NodeId> children;
    std::vector<PartitionId> partitions;
    std::vector<DoorId> doors;
    std::vector<DoorId> access_doors;

    bool is_leaf() const { return children.empty(); }
  };
  std::vector<Node> nodes;
};

/// Size/utilization report of the flat layout (bench_index_micro).
struct VipTreeLayoutStats {
  std::size_t num_nodes = 0;
  std::size_t num_leaves = 0;
  /// Used bytes per arena.
  std::size_t id_bytes = 0;
  std::size_t dist_bytes = 0;
  std::size_t hop_bytes = 0;
  /// Used / reserved bytes across all arenas (reservation is exact, so
  /// utilization is 1.0 unless a layout bug under-fills).
  std::size_t arena_used_bytes = 0;
  std::size_t arena_capacity_bytes = 0;
  double arena_utilization = 1.0;
  /// Total index bytes (MemoryFootprintBytes) divided by node count.
  double bytes_per_node = 0.0;
  /// File-mapped arena bytes (0 for heap-backed trees). Counted in
  /// arena_capacity_bytes but not in MemoryFootprintBytes: dropping a
  /// mapped tree frees only its resident descriptors, the page cache keeps
  /// these bytes warm.
  std::size_t mapped_bytes = 0;
};

/// The VIP-tree (Shao et al., PVLDB'16): a bottom-up hierarchical
/// partitioning of an indoor venue with materialized door-to-door distance
/// matrices, supporting O(small) indoor distance queries without graph
/// expansion. With `build_leaf_to_ancestor = false` this degrades to the
/// IP-tree. Matrices are built with *global* Dijkstra runs so every distance
/// the tree returns is exactly the door-graph shortest distance (see
/// DESIGN.md §3.2).
///
/// This is the materialized DistanceOracle backend: solvers consume it
/// through the interface, while serialization, path reconstruction and the
/// benches may use the concrete structure below.
///
/// Thread-safety: after Build/Load, every distance/structure accessor is a
/// read-only path safe to call from any number of threads concurrently —
/// counters go to per-thread sinks or the atomic aggregate, and the door
/// memo (when enabled) is a sharded lock-free cache (ConcurrentDoorCache),
/// so query threads never serialize on it. Only Save/Load/Build and moves
/// require external exclusivity.
class VipTree : public DistanceOracle {
 public:
  /// Builds the index over `venue`. The venue must outlive the tree.
  static Result<VipTree> Build(const Venue* venue, VipTreeOptions options = {});

  VipTree(VipTree&& other) noexcept;
  VipTree& operator=(VipTree&& other) noexcept;

  const Venue& venue() const override { return *venue_; }
  const VipTreeOptions& options() const { return options_; }

  // ---- Structure -----------------------------------------------------

  NodeId root() const override { return root_; }
  std::size_t num_nodes() const override { return nodes_.size(); }
  std::size_t num_leaves() const { return num_leaves_; }
  int height() const { return height_; }
  const VipNode& node(NodeId id) const;

  bool IsLeaf(NodeId n) const override { return node(n).is_leaf(); }
  NodeId Parent(NodeId n) const override { return node(n).parent; }
  std::span<const NodeId> Children(NodeId n) const override {
    return node(n).children;
  }
  std::span<const PartitionId> NodePartitions(NodeId n) const override {
    return node(n).partitions;
  }

  /// Leaf node owning partition `p`.
  NodeId LeafOf(PartitionId p) const override;

  /// True when partition `p` lies inside node `n`'s subtree.
  bool NodeContainsPartition(NodeId n, PartitionId p) const override;

  /// Lowest common ancestor of two nodes.
  NodeId LowestCommonAncestor(NodeId a, NodeId b) const;

  // ---- Distances (implemented in vip_distance.cc) ---------------------
  // PointToDoor / PointToPoint / DoorToPartition / PartitionToPartition are
  // inherited from DistanceOracle: their compositions over DoorToDoor are
  // the generic ones.

  /// Exact global door-to-door walking distance, composed from the stored
  /// matrices (leaf lookup, or leaf->LCA-access-door->leaf composition).
  double DoorToDoor(DoorId a, DoorId b) const override;

  /// Exact indoor distance from a point to the nearest reachable boundary of
  /// partition `target` (paper iDist(c, p)); 0 when pa == target. Applies
  /// the single-door optimization when enabled.
  double PointToPartition(const Point& a, PartitionId pa,
                          PartitionId target) const override;

  /// Paper iMinD(p, I) with I a tree node: 0 when the node contains p, else
  /// min over doors(p) x access_doors(n).
  double PartitionToNode(PartitionId p, NodeId n) const override;

  /// Lower bound used by top-down NN: distance from a concrete point to the
  /// nearest access door of node `n` (0 when the node contains pa).
  double PointToNode(const Point& a, PartitionId pa, NodeId n) const override;

  /// First door to take from door `a` toward door `b`, when first-hop
  /// storage is enabled and both doors share a leaf; kInvalidDoor otherwise.
  DoorId FirstHop(DoorId a, DoorId b) const;

  // ---- Serialization (vip_tree_io.cc) ------------------------------------

  /// Writes the complete index (structure + matrices) in the IFLS_VIPTREE
  /// text format v2 (flat payload), so the offline build can be done once
  /// and shipped. Deterministic: identical trees serialize byte-identically.
  Status Save(std::ostream* out) const;
  Status SaveToFile(const std::string& path) const;

  /// Writes the legacy v1 (per-node matrix) format; kept so the v1->v2
  /// migration path stays testable against freshly built trees.
  Status SaveLegacyV1(std::ostream* out) const;

  /// Writes the complete index in the binary snapshot format v3
  /// (page-aligned, checksummed, directly mappable; see vip_tree_io_v3.h).
  /// Deterministic and backing-agnostic: heap-built and mapped trees of the
  /// same index serialize byte-identically.
  Status SaveV3ToFile(const std::string& path) const;

  /// Loads an index previously saved for (a venue identical to) `venue`
  /// from a text stream. Accepts format v2 and legacy v1 (migrated into the
  /// arena layout on load). Validates structural consistency against the
  /// venue.
  static Result<VipTree> Load(const Venue* venue, std::istream* in);

  /// Loads from a file of any supported format, sniffing the magic: v3
  /// files are mmap-ed zero-copy (arenas stay file-backed for the tree's
  /// lifetime), v1/v2 files take the legacy parse path, bit-identically to
  /// before v3 existed.
  static Result<VipTree> LoadFromFile(const Venue* venue,
                                      const std::string& path);

  /// Maps a format-v3 snapshot: validates magic/version/checksums/venue,
  /// adopts the payload sections as read-only mapped arenas, and replays
  /// the layout pass as a descriptor fixup that re-derives and verifies
  /// every span. All corruption modes (short map, bad magic, checksum
  /// mismatch, truncated descriptor table, payload/structure disagreement)
  /// surface as proper Status errors.
  static Result<VipTree> LoadV3FromFile(const Venue* venue,
                                        const std::string& path);

  // ---- Introspection ---------------------------------------------------

  /// Drops all memoized door distances (only meaningful when the cache is
  /// enabled). Call between runs that must not share warm state.
  void ClearDistanceCache() const;
  std::size_t distance_cache_size() const;

  /// Occupancy/eviction gauges of the sharded door-distance memo.
  ConcurrentDoorCache::Stats door_cache_stats() const;

  /// Resident heap bytes held by arenas, node descriptors and auxiliary
  /// tables. For a mapped tree this is only the descriptor/fixup state (and
  /// the door cache when enabled) — the payload bytes live in the page
  /// cache and are reported by MappedFootprintBytes(). Eviction budgets use
  /// this value: it is what dropping the tree actually frees.
  std::size_t MemoryFootprintBytes() const;

  /// File-mapped bytes kept alive by this tree (0 for heap-backed trees).
  std::size_t MappedFootprintBytes() const;

  /// True when the arenas view an mmap-ed snapshot instead of the heap.
  bool is_mapped() const { return mapping_ != nullptr; }

  /// Arena sizes and utilization of the flat layout.
  VipTreeLayoutStats LayoutStats() const;

  std::string ToString() const;

 private:
  VipTree() = default;

  /// Converts a validated-on-the-fly structural description into the flat
  /// arena layout: derives depths, height, leaf-of-partition and index maps
  /// (returning InvalidArgument on inconsistencies), computes exact arena
  /// totals, and lays out every id list and matrix payload (distances
  /// initialized to kInfDistance, first hops to kInvalidDoor) in
  /// deterministic order — node id ascending; per node the main matrix then
  /// ancestor matrices k = 0..depth-1. Shared by Build and Load; the caller
  /// then fills the payload cells in place.
  Status InitFromStructure(const VipTreeStructure& structure);

  /// Fills matrix row `row` of `view` (which must alias this tree's arenas)
  /// from a completed single-source run.
  void FillMatrixRow(const DoorMatrixView& view, DoorId row,
                     const ShortestPaths& paths);

  /// Distance from door `a` (incident to leaf `leaf`) to every access door
  /// of `ancestor`, appended to `*out` aligned with that node's access_doors.
  /// Uses materialized matrices in VIP mode, chain composition in IP mode.
  void DistancesToAncestorAccessDoors(DoorId a, NodeId leaf, NodeId ancestor,
                                      std::vector<double>* out) const;

  /// Memo lookup/insert used by DoorToDoor when the cache is enabled.
  /// Keys are (from_door << 32) | to_door — per orientation, since the two
  /// orientations' compositions may differ in the last ULP and the cache
  /// must never change a bit. The backing store is a sharded lock-free
  /// ConcurrentDoorCache held behind a pointer so the tree stays movable.
  bool CachedDoorDistance(std::uint64_t key, double* out) const;
  void StoreDoorDistance(std::uint64_t key, double value) const;

  const Venue* venue_ = nullptr;
  VipTreeOptions options_;

  /// Flat storage. All id-typed payloads (NodeId/PartitionId/DoorId and
  /// int32 index maps share the same representation) live in `ids_`; matrix
  /// distances in `dist_`; first hops in `hops_`. Spans and views in nodes_
  /// point into these buffers — reservation is exact and up front, so the
  /// pointers are stable for the tree's lifetime and across moves.
  ArenaBuffer<std::int32_t> ids_;
  ArenaBuffer<double> dist_;
  ArenaBuffer<DoorId> hops_;
  /// Per-leaf ancestor matrix views, concatenated in node order; each
  /// leaf's `ancestor_matrices` spans a slice of this vector.
  std::vector<DoorMatrixView> ancestor_views_;

  std::vector<VipNode> nodes_;
  std::vector<NodeId> leaf_of_partition_;
  NodeId root_ = kInvalidNode;
  std::size_t num_leaves_ = 0;
  int height_ = 0;
  mutable std::unique_ptr<ConcurrentDoorCache> door_cache_;
  /// Keeps the v3 snapshot mapping alive while arenas view it; null for
  /// heap-backed trees. Shared so future readers of the same file could
  /// share one mapping.
  std::shared_ptr<const MappedFile> mapping_;
};

/// The materialized-index implementation of DistanceOracle.
using VipTreeOracle = VipTree;

}  // namespace ifls

#endif  // IFLS_INDEX_VIP_TREE_H_
