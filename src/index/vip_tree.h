#ifndef IFLS_INDEX_VIP_TREE_H_
#define IFLS_INDEX_VIP_TREE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/index/door_matrix.h"
#include "src/indoor/venue.h"

namespace ifls {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Build parameters for IP-tree / VIP-tree construction.
struct VipTreeOptions {
  /// Maximum partitions merged into one leaf node.
  int leaf_capacity = 8;
  /// Maximum children per internal node. The default lets a typical floor's
  /// leaves merge into one node, leaving only stair doors as access doors.
  int internal_fanout = 8;
  /// When true (VIP-tree), leaves additionally materialize door-to-ancestor-
  /// access-door matrices; when false (IP-tree), those distances are composed
  /// through the node chain at query time.
  bool build_leaf_to_ancestor = true;
  /// Store first-hop doors alongside distances (path reconstruction).
  bool store_first_hop = true;
  /// Use the paper's single-door shortcut (§5.3.1 Case 1): clients in a
  /// one-door partition reuse the partition-level distance plus their local
  /// leg. Toggleable for the ablation benchmark.
  bool single_door_optimization = true;
  /// Worker threads for the matrix-building Dijkstra sweep (one global run
  /// per door; each door writes its own disjoint matrix rows, so the built
  /// index is bit-identical for any thread count). <= 0 uses all hardware
  /// threads; 1 keeps the build single-threaded.
  int build_threads = 0;
  /// Memoize DoorToDoor results in a hash table owned by the index (the
  /// door-graph distances are static, so the cache is conceptually part of
  /// the materialized index, like Yang et al.'s door-to-door hash table).
  /// OFF by default: the paper's cost model recomputes matrix compositions
  /// per iDist call, and the redundancy across clients of one partition is
  /// precisely what the efficient approach's grouping exploits — a global
  /// memo would hand that advantage to the baseline too. The ablation bench
  /// measures the memoized configuration separately.
  bool enable_door_distance_cache = false;
};

/// One tree node. Leaves own a contiguous group of adjacent partitions;
/// internal nodes own adjacent child nodes. In the IFLS algorithms the
/// "children" of a leaf are its partitions (paper Algorithm 3 line 19).
struct VipNode {
  NodeId id = kInvalidNode;
  NodeId parent = kInvalidNode;
  /// Root has depth 0.
  int depth = 0;
  /// Child node ids; empty for leaves.
  std::vector<NodeId> children;
  /// Partitions directly owned (leaves only).
  std::vector<PartitionId> partitions;
  /// Door universe of this node, sorted: leaf = every door incident to an
  /// owned partition; internal = union of children's access doors.
  std::vector<DoorId> doors;
  /// Doors with exactly one side inside this node's partition set, sorted.
  /// Empty for the root of a closed venue.
  std::vector<DoorId> access_doors;
  /// Global shortest distances over `doors` x `doors`.
  DoorMatrix matrix;
  /// VIP extension (leaves only): ancestor_matrices[k] has rows = this
  /// leaf's doors and cols = access doors of the k-th ancestor
  /// (k = 0 -> parent, k = depth-1 -> root).
  std::vector<DoorMatrix> ancestor_matrices;
  /// Number of partitions in the subtree (leaf: partitions.size()).
  std::int32_t subtree_partitions = 0;
  /// Positions of `access_doors[i]` within `doors` (hence within `matrix`
  /// rows/cols). Precomputed so query-time composition needs no searches.
  std::vector<std::int32_t> access_door_idx;
  /// Internal nodes: child_access_idx[i][j] = position of
  /// children[i]'s access_doors[j] within `doors`.
  std::vector<std::vector<std::int32_t>> child_access_idx;

  bool is_leaf() const { return children.empty(); }
};

/// Counters the tree updates on its own query paths; algorithms attribute
/// index work per query by installing a ScopedVipTreeCounterSink.
struct VipTreeCounters {
  std::uint64_t door_distance_evals = 0;  // DoorToDoor compositions
  std::uint64_t matrix_lookups = 0;       // individual matrix cell reads
  std::uint64_t cache_hits = 0;           // memoized DoorToDoor answers
};

/// Routes the calling thread's VipTree counter updates (for every tree) into
/// `sink` for the scope's lifetime; restores the previous sink on
/// destruction. Scopes nest, mirroring ScopedMemoryTracking.
///
/// This is the concurrency story for the counters: a thread with a sink
/// installed never touches the tree-wide aggregate, so parallel queries get
/// contention-free, exactly-attributed per-query counts. Threads without a
/// sink fall back to the tree's atomic aggregate, which is race-free but
/// shared.
class ScopedVipTreeCounterSink {
 public:
  explicit ScopedVipTreeCounterSink(VipTreeCounters* sink);
  ~ScopedVipTreeCounterSink();

  ScopedVipTreeCounterSink(const ScopedVipTreeCounterSink&) = delete;
  ScopedVipTreeCounterSink& operator=(const ScopedVipTreeCounterSink&) =
      delete;

  /// The calling thread's active sink; null when none is installed.
  static VipTreeCounters* Active();

 private:
  VipTreeCounters* previous_;
};

/// The VIP-tree (Shao et al., PVLDB'16): a bottom-up hierarchical
/// partitioning of an indoor venue with materialized door-to-door distance
/// matrices, supporting O(small) indoor distance queries without graph
/// expansion. With `build_leaf_to_ancestor = false` this degrades to the
/// IP-tree. Matrices are built with *global* Dijkstra runs so every distance
/// the tree returns is exactly the door-graph shortest distance (see
/// DESIGN.md §3.2).
/// Thread-safety: after Build/Load, every distance/structure accessor is a
/// read-only path safe to call from any number of threads concurrently —
/// counters go to per-thread sinks or the atomic aggregate, and the door
/// memo (when enabled) is guarded by its own mutex. Only Save/Load/Build and
/// moves require external exclusivity.
class VipTree {
 public:
  /// Builds the index over `venue`. The venue must outlive the tree.
  static Result<VipTree> Build(const Venue* venue, VipTreeOptions options = {});

  VipTree(VipTree&& other) noexcept;
  VipTree& operator=(VipTree&& other) noexcept;
  VipTree(const VipTree&) = delete;
  VipTree& operator=(const VipTree&) = delete;

  const Venue& venue() const { return *venue_; }
  const VipTreeOptions& options() const { return options_; }

  // ---- Structure -----------------------------------------------------

  NodeId root() const { return root_; }
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_leaves() const { return num_leaves_; }
  int height() const { return height_; }
  const VipNode& node(NodeId id) const;

  /// Leaf node owning partition `p`.
  NodeId LeafOf(PartitionId p) const;

  /// True when partition `p` lies inside node `n`'s subtree.
  bool NodeContainsPartition(NodeId n, PartitionId p) const;

  /// Lowest common ancestor of two nodes.
  NodeId LowestCommonAncestor(NodeId a, NodeId b) const;

  // ---- Distances (implemented in vip_distance.cc) ---------------------

  /// Exact global door-to-door walking distance, composed from the stored
  /// matrices (leaf lookup, or leaf->LCA-access-door->leaf composition).
  double DoorToDoor(DoorId a, DoorId b) const;

  /// Exact walking distance from a point in partition `pa` to door `d`.
  double PointToDoor(const Point& a, PartitionId pa, DoorId d) const;

  /// Exact indoor distance between two points (paper iDist for two points).
  double PointToPoint(const Point& a, PartitionId pa, const Point& b,
                      PartitionId pb) const;

  /// Exact indoor distance from a point to the nearest reachable boundary of
  /// partition `target` (paper iDist(c, p)); 0 when pa == target. Applies
  /// the single-door optimization when enabled.
  double PointToPartition(const Point& a, PartitionId pa,
                          PartitionId target) const;

  /// Shortest walking distance from door `d` to the nearest door of
  /// partition `target`. Algorithms cache this per (door, partition) to
  /// serve every client of a single-door partition with one lookup.
  double DoorToPartition(DoorId d, PartitionId target) const;

  /// Paper iMinD(p, I) with I a partition: door-set to door-set shortest
  /// distance, zero intra-partition offsets; 0 when p == q.
  double PartitionToPartition(PartitionId p, PartitionId q) const;

  /// Paper iMinD(p, I) with I a tree node: 0 when the node contains p, else
  /// min over doors(p) x access_doors(n).
  double PartitionToNode(PartitionId p, NodeId n) const;

  /// Lower bound used by top-down NN: distance from a concrete point to the
  /// nearest access door of node `n` (0 when the node contains pa).
  double PointToNode(const Point& a, PartitionId pa, NodeId n) const;

  /// First door to take from door `a` toward door `b`, when first-hop
  /// storage is enabled and both doors share a leaf; kInvalidDoor otherwise.
  DoorId FirstHop(DoorId a, DoorId b) const;

  // ---- Serialization (vip_tree_io.cc) ------------------------------------

  /// Writes the complete index (structure + matrices) in the IFLS_VIPTREE
  /// text format, so the offline build can be done once and shipped.
  Status Save(std::ostream* out) const;
  Status SaveToFile(const std::string& path) const;

  /// Loads an index previously saved for (a venue identical to) `venue`.
  /// Validates structural consistency against the venue.
  static Result<VipTree> Load(const Venue* venue, std::istream* in);
  static Result<VipTree> LoadFromFile(const Venue* venue,
                                      const std::string& path);

  // ---- Introspection ---------------------------------------------------

  /// Snapshot of the tree-wide aggregate counters. Work done by threads
  /// with a ScopedVipTreeCounterSink installed lands in their sinks, not
  /// here.
  VipTreeCounters counters() const;
  void ResetCounters() const;

  /// Drops all memoized door distances (only meaningful when the cache is
  /// enabled). Call between runs that must not share warm state.
  void ClearDistanceCache() const;
  std::size_t distance_cache_size() const;

  /// Total bytes held by matrices and structure vectors.
  std::size_t MemoryFootprintBytes() const;

  std::string ToString() const;

 private:
  VipTree() = default;

  /// Recomputes everything derivable from nodes_ + venue_: depths, heights,
  /// leaf-of-partition mapping, matrix index maps. Shared by Build and Load.
  Status ComputeDerivedState();

  /// Distance from door `a` (incident to leaf `leaf`) to every access door
  /// of `ancestor`, appended to `*out` aligned with that node's access_doors.
  /// Uses materialized matrices in VIP mode, chain composition in IP mode.
  void DistancesToAncestorAccessDoors(DoorId a, NodeId leaf, NodeId ancestor,
                                      std::vector<double>* out) const;

  /// Tree-wide counter aggregate, taken only by threads without an
  /// installed sink. Relaxed atomics: the values are metrics, not
  /// synchronization.
  struct AtomicCounters {
    std::atomic<std::uint64_t> door_distance_evals{0};
    std::atomic<std::uint64_t> matrix_lookups{0};
    std::atomic<std::uint64_t> cache_hits{0};
  };

  /// Memoized DoorToDoor answers, keyed (min_door << 32) | max_door. Mutex
  /// and map live behind one pointer so the tree stays movable.
  struct DoorCache {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, double> map;
  };

  // Counter update helpers: thread sink when installed, atomic aggregate
  // otherwise (vip_distance.cc hot paths).
  void BumpDoorDistanceEvals() const;
  void BumpMatrixLookups(std::uint64_t n) const;
  void BumpCacheHits() const;

  /// Memo lookup/insert used by DoorToDoor when the cache is enabled.
  bool CachedDoorDistance(std::uint64_t key, double* out) const;
  void StoreDoorDistance(std::uint64_t key, double value) const;

  const Venue* venue_ = nullptr;
  VipTreeOptions options_;
  std::vector<VipNode> nodes_;
  std::vector<NodeId> leaf_of_partition_;
  NodeId root_ = kInvalidNode;
  std::size_t num_leaves_ = 0;
  int height_ = 0;
  mutable AtomicCounters shared_counters_;
  mutable std::unique_ptr<DoorCache> door_cache_ =
      std::make_unique<DoorCache>();
};

}  // namespace ifls

#endif  // IFLS_INDEX_VIP_TREE_H_
