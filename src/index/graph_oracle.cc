#include "src/index/graph_oracle.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/trace.h"
#include "src/index/minplus_kernels.h"

namespace ifls {

GraphDistanceOracle::GraphDistanceOracle(const Venue* venue)
    : venue_(venue), graph_(*venue), cache_(venue->num_doors()) {
  IFLS_CHECK(venue != nullptr);
}

const ShortestPaths& GraphDistanceOracle::PathsFrom(DoorId source) const {
  CacheSlot& slot = cache_[static_cast<std::size_t>(source)];
  std::call_once(slot.once, [&] {
    // Named span: a full single-source Dijkstra means the distance request
    // fell through every cheaper path — exactly the "why was this query
    // slow" signal traces exist for.
    TraceSpan trace_span(TraceCategory::kOracle, "dijkstra_fallback");
    CountDijkstraFallback();
    WorkspacePool<DijkstraWorkspace>::Lease ws = workspaces_.Acquire();
    // Copy out of the workspace: the slot needs exact-size persistent
    // storage while the workspace's buffers go back to the pool.
    slot.paths = std::make_unique<ShortestPaths>(
        SingleSourceShortestPaths(graph_, source, ws.get()));
    num_runs_.fetch_add(1, std::memory_order_relaxed);
  });
  return *slot.paths;
}

double GraphDistanceOracle::DoorToDoor(DoorId a, DoorId b) const {
  if (a == b) return 0.0;
  // Pair memo first: a hit answers without touching the per-source row.
  // The key is per-orientation (not normalized): two opposite Dijkstra
  // runs agree mathematically but not necessarily bit-for-bit, and the
  // repo-wide contract is that caching never changes a single bit.
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) |
                            static_cast<std::uint32_t>(b);
  double cached = 0.0;
  if (pair_cache_.Lookup(key, &cached)) {
    BumpCacheHits();
    return cached;
  }
  BumpCacheMisses();
  BumpDoorDistanceEvals();
  const double result = PathsFrom(a).distance[static_cast<std::size_t>(b)];
  pair_cache_.Insert(key, result);
  return result;
}

double GraphDistanceOracle::PointToPoint(const Point& a, PartitionId pa,
                                         const Point& b,
                                         PartitionId pb) const {
  if (pa == pb) return PlanarDistance(a, b);
  const std::vector<DoorId>& doors_b = venue_->partition(pb).doors;
  // Hoist the target-side legs: they are identical for every source door,
  // and PointToDoorDistance is deterministic, so precomputing them keeps
  // every candidate term (leg_a + dist) + leg_b bit-identical to the
  // original nested loop.
  static thread_local std::vector<double> legs_b;
  legs_b.resize(doors_b.size());
  for (std::size_t j = 0; j < doors_b.size(); ++j) {
    legs_b[j] = PointToDoorDistance(b, venue_->door(doors_b[j]));
  }
  double best = kInfDistance;
  for (DoorId d1 : venue_->partition(pa).doors) {
    const double leg_a = PointToDoorDistance(a, venue_->door(d1));
    const ShortestPaths& paths = PathsFrom(d1);
    const double cand =
        kernels::MinPlusGatherAdd(leg_a, paths.distance.data(),
                                  doors_b.data(), legs_b.data(),
                                  doors_b.size());
    CountKernelInvocation();
    if (cand < best) best = cand;
  }
  return best;
}

double GraphDistanceOracle::PointToPartition(const Point& a, PartitionId pa,
                                             PartitionId target) const {
  if (pa == target) return 0.0;
  const std::vector<DoorId>& doors_t = venue_->partition(target).doors;
  double best = kInfDistance;
  for (DoorId d1 : venue_->partition(pa).doors) {
    const double leg = PointToDoorDistance(a, venue_->door(d1));
    const ShortestPaths& paths = PathsFrom(d1);
    const double cand = kernels::MinPlusGather(leg, paths.distance.data(),
                                               doors_t.data(), doors_t.size());
    CountKernelInvocation();
    if (cand < best) best = cand;
  }
  return best;
}

double GraphDistanceOracle::PartitionToPartition(PartitionId p,
                                                 PartitionId q) const {
  if (p == q) return 0.0;
  const std::vector<DoorId>& doors_q = venue_->partition(q).doors;
  double best = kInfDistance;
  for (DoorId d1 : venue_->partition(p).doors) {
    const ShortestPaths& paths = PathsFrom(d1);
    // s = 0.0 is bit-neutral: 0.0 + x == x for every nonnegative distance
    // and for +inf.
    const double cand = kernels::MinPlusGather(0.0, paths.distance.data(),
                                               doors_q.data(), doors_q.size());
    CountKernelInvocation();
    if (cand < best) best = cand;
  }
  return best;
}

}  // namespace ifls
