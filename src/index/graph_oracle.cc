#include "src/index/graph_oracle.h"

#include "src/common/logging.h"

namespace ifls {

GraphDistanceOracle::GraphDistanceOracle(const Venue* venue)
    : venue_(venue), graph_(*venue), cache_(venue->num_doors()) {
  IFLS_CHECK(venue != nullptr);
}

const ShortestPaths& GraphDistanceOracle::PathsFrom(DoorId source) const {
  CacheSlot& slot = cache_[static_cast<std::size_t>(source)];
  std::call_once(slot.once, [&] {
    WorkspacePool<DijkstraWorkspace>::Lease ws = workspaces_.Acquire();
    // Copy out of the workspace: the slot needs exact-size persistent
    // storage while the workspace's buffers go back to the pool.
    slot.paths = std::make_unique<ShortestPaths>(
        SingleSourceShortestPaths(graph_, source, ws.get()));
    num_runs_.fetch_add(1, std::memory_order_relaxed);
  });
  return *slot.paths;
}

double GraphDistanceOracle::DoorToDoor(DoorId a, DoorId b) const {
  if (a == b) return 0.0;
  return PathsFrom(a).distance[static_cast<std::size_t>(b)];
}

double GraphDistanceOracle::PointToPoint(const Point& a, PartitionId pa,
                                         const Point& b,
                                         PartitionId pb) const {
  if (pa == pb) return PlanarDistance(a, b);
  double best = kInfDistance;
  for (DoorId d1 : venue_->partition(pa).doors) {
    const double leg_a = PointToDoorDistance(a, venue_->door(d1));
    const ShortestPaths& paths = PathsFrom(d1);
    for (DoorId d2 : venue_->partition(pb).doors) {
      const double leg_b = PointToDoorDistance(b, venue_->door(d2));
      const double cand =
          leg_a + paths.distance[static_cast<std::size_t>(d2)] + leg_b;
      if (cand < best) best = cand;
    }
  }
  return best;
}

double GraphDistanceOracle::PointToPartition(const Point& a, PartitionId pa,
                                             PartitionId target) const {
  if (pa == target) return 0.0;
  double best = kInfDistance;
  for (DoorId d1 : venue_->partition(pa).doors) {
    const double leg = PointToDoorDistance(a, venue_->door(d1));
    const ShortestPaths& paths = PathsFrom(d1);
    for (DoorId d2 : venue_->partition(target).doors) {
      const double cand = leg + paths.distance[static_cast<std::size_t>(d2)];
      if (cand < best) best = cand;
    }
  }
  return best;
}

double GraphDistanceOracle::PartitionToPartition(PartitionId p,
                                                 PartitionId q) const {
  if (p == q) return 0.0;
  double best = kInfDistance;
  for (DoorId d1 : venue_->partition(p).doors) {
    const ShortestPaths& paths = PathsFrom(d1);
    for (DoorId d2 : venue_->partition(q).doors) {
      const double cand = paths.distance[static_cast<std::size_t>(d2)];
      if (cand < best) best = cand;
    }
  }
  return best;
}

}  // namespace ifls
