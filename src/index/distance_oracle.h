#ifndef IFLS_INDEX_DISTANCE_ORACLE_H_
#define IFLS_INDEX_DISTANCE_ORACLE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "src/graph/dijkstra.h"
#include "src/indoor/venue.h"

namespace ifls {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Counters an oracle updates on its own query paths; algorithms attribute
/// index work per query by installing a ScopedOracleCounterSink.
struct OracleCounters {
  std::uint64_t door_distance_evals = 0;  // DoorToDoor compositions
  std::uint64_t matrix_lookups = 0;       // individual matrix cell reads
  std::uint64_t cache_hits = 0;           // memoized DoorToDoor answers
  std::uint64_t cache_misses = 0;         // memo lookups that fell through
  std::uint64_t kernel_invocations = 0;   // blocked min-plus kernel calls
  std::uint64_t dijkstra_fallbacks = 0;   // full graph expansions run
};
/// Historical name from when the VIP-tree was the only counted backend.
using VipTreeCounters = OracleCounters;

/// Routes the calling thread's oracle counter updates (for every oracle)
/// into `sink` for the scope's lifetime; restores the previous sink on
/// destruction. Scopes nest, mirroring ScopedMemoryTracking.
///
/// This is the concurrency story for the counters: a thread with a sink
/// installed never touches the oracle-wide aggregate, so parallel queries
/// get contention-free, exactly-attributed per-query counts. Threads without
/// a sink fall back to the oracle's atomic aggregate, which is race-free but
/// shared.
class ScopedOracleCounterSink {
 public:
  explicit ScopedOracleCounterSink(OracleCounters* sink);
  ~ScopedOracleCounterSink();

  ScopedOracleCounterSink(const ScopedOracleCounterSink&) = delete;
  ScopedOracleCounterSink& operator=(const ScopedOracleCounterSink&) = delete;

  /// The calling thread's active sink; null when none is installed.
  static OracleCounters* Active();

 private:
  OracleCounters* previous_;
};
/// Historical name; see OracleCounters.
using ScopedVipTreeCounterSink = ScopedOracleCounterSink;

/// Counts one blocked min-plus kernel invocation on the calling thread's
/// sink (process-wide atomic fallback otherwise). A free function because
/// kernel call sites (vip_distance, path, graph_oracle, solver hot loops)
/// do not all flow through a DistanceOracle instance.
void CountKernelInvocation();
/// Counts one full-graph Dijkstra fallback (graph oracle miss path).
void CountDijkstraFallback();
/// The process-wide fallback aggregates (work done without a sink).
std::uint64_t SharedKernelInvocations();
std::uint64_t SharedDijkstraFallbacks();

/// Uniform indoor-distance interface every solver consumes, so index
/// backends (materialized VIP-tree, memoized graph oracle, per-call brute
/// force, future sharded/cached/remote backends) are interchangeable without
/// touching solver code.
///
/// Two method families:
///  * Distances — exact indoor walking distances between doors, points and
///    partitions. Only DoorToDoor is pure; the point/partition variants have
///    default implementations composed from it that match the paper's iDist
///    definitions (identical loop structure and pruning to the reference
///    VIP-tree implementation, so answers and tie-breaks agree bit-for-bit
///    across backends that share door-to-door distances).
///  * Hierarchy — the node tree the efficient algorithm and NN search
///    traverse. Backends without a materialized hierarchy inherit a
///    degenerate single-node view: one root "leaf" (id 0) containing every
///    partition, which makes hierarchical solvers fall back to scanning —
///    correct, just unpruned.
///
/// Thread-safety contract: all const methods must be safe for concurrent
/// callers after construction. Counter updates go to the calling thread's
/// sink when one is installed, else to this oracle's atomic aggregate.
class DistanceOracle {
 public:
  virtual ~DistanceOracle();

  DistanceOracle(const DistanceOracle&) = delete;
  DistanceOracle& operator=(const DistanceOracle&) = delete;

  virtual const Venue& venue() const = 0;

  // ---- Distances -------------------------------------------------------

  /// Global shortest walking distance between two doors. The one primitive
  /// every backend must provide.
  virtual double DoorToDoor(DoorId a, DoorId b) const = 0;

  /// Exact walking distance from a point in partition `pa` to door `d`.
  virtual double PointToDoor(const Point& a, PartitionId pa, DoorId d) const;

  /// Exact indoor distance between two points (paper iDist for two points).
  virtual double PointToPoint(const Point& a, PartitionId pa, const Point& b,
                              PartitionId pb) const;

  /// Exact indoor distance from a point to the nearest reachable boundary of
  /// partition `target` (paper iDist(c, p)); 0 when pa == target.
  virtual double PointToPartition(const Point& a, PartitionId pa,
                                  PartitionId target) const;

  /// Shortest walking distance from door `d` to the nearest door of
  /// partition `target`. Algorithms cache this per (door, partition) to
  /// serve every client of a single-door partition with one lookup.
  virtual double DoorToPartition(DoorId d, PartitionId target) const;

  /// Paper iMinD(p, I) with I a partition: door-set to door-set shortest
  /// distance, zero intra-partition offsets; 0 when p == q.
  virtual double PartitionToPartition(PartitionId p, PartitionId q) const;

  // ---- Hierarchy -------------------------------------------------------

  virtual NodeId root() const;
  virtual std::size_t num_nodes() const;
  virtual bool IsLeaf(NodeId n) const;
  virtual NodeId Parent(NodeId n) const;

  /// Leaf node owning partition `p`.
  virtual NodeId LeafOf(PartitionId p) const;

  /// Child node ids of an internal node; empty for leaves.
  virtual std::span<const NodeId> Children(NodeId n) const;

  /// Partitions directly owned by a leaf; empty for internal nodes.
  virtual std::span<const PartitionId> NodePartitions(NodeId n) const;

  /// True when partition `p` lies inside node `n`'s subtree.
  virtual bool NodeContainsPartition(NodeId n, PartitionId p) const;

  /// Paper iMinD(p, I) with I a tree node: 0 when the node contains p, else
  /// min over doors(p) x access_doors(n).
  virtual double PartitionToNode(PartitionId p, NodeId n) const;

  /// Lower bound used by top-down NN: distance from a concrete point to the
  /// nearest access door of node `n` (0 when the node contains pa).
  virtual double PointToNode(const Point& a, PartitionId pa, NodeId n) const;

  // ---- Counters --------------------------------------------------------

  /// Snapshot of the oracle-wide aggregate counters. Work done by threads
  /// with a ScopedOracleCounterSink installed lands in their sinks, not
  /// here.
  OracleCounters counters() const;
  void ResetCounters() const;

 protected:
  DistanceOracle() = default;

  // Counter update helpers: thread sink when installed, atomic aggregate
  // otherwise (hot paths).
  void BumpDoorDistanceEvals() const;
  void BumpMatrixLookups(std::uint64_t n) const;
  void BumpCacheHits() const;
  void BumpCacheMisses() const;

  /// Moves implemented by derived classes carry the aggregate forward.
  void CopyCountersFrom(const DistanceOracle& other);

 private:
  /// Identity partition list backing the single-node hierarchy default;
  /// built on first NodePartitions() call.
  const std::vector<PartitionId>& FlatPartitions() const;

  /// Oracle-wide counter aggregate, taken only by threads without an
  /// installed sink. Relaxed atomics: the values are metrics, not
  /// synchronization.
  mutable std::atomic<std::uint64_t> shared_door_distance_evals_{0};
  mutable std::atomic<std::uint64_t> shared_matrix_lookups_{0};
  mutable std::atomic<std::uint64_t> shared_cache_hits_{0};
  mutable std::atomic<std::uint64_t> shared_cache_misses_{0};

  mutable std::once_flag flat_partitions_once_;
  mutable std::vector<PartitionId> flat_partitions_;
};

}  // namespace ifls

#endif  // IFLS_INDEX_DISTANCE_ORACLE_H_
