#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/common/logging.h"
#include "src/index/vip_tree.h"

// Serialization of a built VIP-tree in the line-oriented IFLS_VIPTREE text
// format. The venue itself is serialized separately (io/venue_io); a loaded
// tree validates its structural consistency against the venue it is given.

namespace ifls {
namespace {

constexpr char kMagic[] = "IFLS_VIPTREE";
constexpr int kVersion = 1;

void SaveIdVector(std::ostream& os, const char* tag,
                  const std::vector<std::int32_t>& v) {
  os << tag << " " << v.size();
  for (std::int32_t x : v) os << " " << x;
  os << "\n";
}

Status LoadIdVector(std::istream& in, const char* tag,
                    std::vector<std::int32_t>* out) {
  std::string keyword;
  std::size_t count = 0;
  if (!(in >> keyword >> count) || keyword != tag) {
    return Status::InvalidArgument(std::string("expected '") + tag + "'");
  }
  out->resize(count);
  for (auto& x : *out) {
    if (!(in >> x)) {
      return Status::InvalidArgument(std::string("truncated '") + tag + "'");
    }
  }
  return Status::OK();
}

void SaveMatrix(std::ostream& os, const DoorMatrix& m) {
  os << "matrix " << m.num_rows() << " " << m.num_cols() << "\n";
  // Row/col door ids (needed to reconstruct), then the payload.
  SaveIdVector(os, "rows", m.rows());
  SaveIdVector(os, "cols", m.cols());
  os << "data";
  for (std::size_t r = 0; r < m.num_rows(); ++r) {
    for (std::size_t c = 0; c < m.num_cols(); ++c) {
      os << " " << m.At(static_cast<int>(r), static_cast<int>(c)) << " "
         << m.FirstHopAt(static_cast<int>(r), static_cast<int>(c));
    }
  }
  os << "\n";
}

Status LoadMatrix(std::istream& in, bool store_first_hop, DoorMatrix* out) {
  std::string keyword;
  std::size_t rows = 0, cols = 0;
  if (!(in >> keyword >> rows >> cols) || keyword != "matrix") {
    return Status::InvalidArgument("expected 'matrix'");
  }
  std::vector<std::int32_t> row_ids, col_ids;
  IFLS_RETURN_NOT_OK(LoadIdVector(in, "rows", &row_ids));
  IFLS_RETURN_NOT_OK(LoadIdVector(in, "cols", &col_ids));
  if (row_ids.size() != rows || col_ids.size() != cols) {
    return Status::InvalidArgument("matrix dimension mismatch");
  }
  if (!(in >> keyword) || keyword != "data") {
    return Status::InvalidArgument("expected 'data'");
  }
  DoorMatrix matrix(row_ids, col_ids, store_first_hop);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      double dist;
      DoorId hop;
      if (!(in >> dist >> hop)) {
        return Status::InvalidArgument("truncated matrix data");
      }
      matrix.Set(static_cast<int>(r), static_cast<int>(c), dist, hop);
    }
  }
  *out = std::move(matrix);
  return Status::OK();
}

}  // namespace

Status VipTree::Save(std::ostream* out) const {
  if (out == nullptr) return Status::InvalidArgument("null output stream");
  std::ostream& os = *out;
  os << std::setprecision(17);
  os << kMagic << " " << kVersion << "\n";
  os << "options " << options_.leaf_capacity << " "
     << options_.internal_fanout << " " << options_.build_leaf_to_ancestor
     << " " << options_.store_first_hop << " "
     << options_.single_door_optimization << " "
     << options_.enable_door_distance_cache << "\n";
  os << "venue " << venue_->num_partitions() << " " << venue_->num_doors()
     << "\n";
  os << "nodes " << nodes_.size() << "\n";
  for (const VipNode& n : nodes_) {
    os << "node " << n.id << " " << n.parent << "\n";
    SaveIdVector(os, "partitions", n.partitions);
    SaveIdVector(os, "children", n.children);
    SaveIdVector(os, "doors", n.doors);
    SaveIdVector(os, "access", n.access_doors);
    SaveMatrix(os, n.matrix);
    os << "ancestors " << n.ancestor_matrices.size() << "\n";
    for (const DoorMatrix& m : n.ancestor_matrices) SaveMatrix(os, m);
  }
  if (!os.good()) return Status::IOError("failed writing VIP-tree stream");
  return Status::OK();
}

Status VipTree::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return Save(&out);
}

Result<VipTree> VipTree::Load(const Venue* venue, std::istream* in) {
  if (venue == nullptr || in == nullptr) {
    return Status::InvalidArgument("venue and stream must not be null");
  }
  std::string magic;
  int version = 0;
  if (!(*in >> magic >> version) || magic != kMagic) {
    return Status::InvalidArgument("not an IFLS_VIPTREE stream");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported VIP-tree format version " +
                                   std::to_string(version));
  }
  VipTree tree;
  tree.venue_ = venue;
  std::string keyword;
  VipTreeOptions& o = tree.options_;
  if (!(*in >> keyword >> o.leaf_capacity >> o.internal_fanout >>
        o.build_leaf_to_ancestor >> o.store_first_hop >>
        o.single_door_optimization >> o.enable_door_distance_cache) ||
      keyword != "options") {
    return Status::InvalidArgument("expected 'options'");
  }
  std::size_t num_partitions = 0, num_doors = 0;
  if (!(*in >> keyword >> num_partitions >> num_doors) ||
      keyword != "venue") {
    return Status::InvalidArgument("expected 'venue'");
  }
  if (num_partitions != venue->num_partitions() ||
      num_doors != venue->num_doors()) {
    return Status::InvalidArgument(
        "index was built for a different venue (partition/door counts "
        "differ)");
  }
  std::size_t num_nodes = 0;
  if (!(*in >> keyword >> num_nodes) || keyword != "nodes") {
    return Status::InvalidArgument("expected 'nodes'");
  }
  tree.nodes_.resize(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    VipNode& n = tree.nodes_[i];
    if (!(*in >> keyword >> n.id >> n.parent) || keyword != "node" ||
        n.id != static_cast<NodeId>(i)) {
      return Status::InvalidArgument("malformed node header at index " +
                                     std::to_string(i));
    }
    IFLS_RETURN_NOT_OK(LoadIdVector(*in, "partitions", &n.partitions));
    IFLS_RETURN_NOT_OK(LoadIdVector(*in, "children", &n.children));
    IFLS_RETURN_NOT_OK(LoadIdVector(*in, "doors", &n.doors));
    IFLS_RETURN_NOT_OK(LoadIdVector(*in, "access", &n.access_doors));
    IFLS_RETURN_NOT_OK(LoadMatrix(*in, o.store_first_hop, &n.matrix));
    std::size_t num_ancestors = 0;
    if (!(*in >> keyword >> num_ancestors) || keyword != "ancestors") {
      return Status::InvalidArgument("expected 'ancestors'");
    }
    n.ancestor_matrices.resize(num_ancestors);
    for (auto& m : n.ancestor_matrices) {
      IFLS_RETURN_NOT_OK(LoadMatrix(*in, o.store_first_hop, &m));
    }
  }
  IFLS_RETURN_NOT_OK(tree.ComputeDerivedState());
  return tree;
}

Result<VipTree> VipTree::LoadFromFile(const Venue* venue,
                                      const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return Load(venue, &in);
}

}  // namespace ifls
