#include <algorithm>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/common/logging.h"
#include "src/index/vip_tree.h"
#include "src/index/vip_tree_io_v3.h"

// Serialization of a built VIP-tree in the line-oriented IFLS_VIPTREE text
// format. The venue itself is serialized separately (io/venue_io); a loaded
// tree validates its structural consistency against the venue it is given.
//
// Two format versions:
//  * v2 (written by Save): structure section without per-matrix row/col id
//    lists — matrix shapes are fully derivable from the node door sets — and
//    one bulk `payload` section holding every distance (and first-hop) cell
//    in the deterministic arena-layout order (node id ascending; per node
//    the main matrix, then ancestor matrices k = 0..depth-1; row-major).
//    The loader streams the payload straight into the arenas. Saves are
//    byte-stable: save(load(save(t))) == save(t).
//  * v1 (legacy, written by SaveLegacyV1): per-node matrices with explicit
//    row/col id lists. The loader migrates v1 files into the arena layout,
//    validating that every matrix's door sets match the derived structure.
// Wrong-magic, wrong-version and truncated streams all surface as proper
// Status errors — never a silent misread.

namespace ifls {
namespace {

constexpr char kMagic[] = "IFLS_VIPTREE";
constexpr int kVersionLegacy = 1;
constexpr int kVersionCurrent = 2;

/// Payload values per line in the v2 bulk section (diff-friendliness only;
/// the loader is whitespace-agnostic).
constexpr std::size_t kPayloadValuesPerLine = 8;

void SaveIdSpan(std::ostream& os, const char* tag,
                std::span<const std::int32_t> v) {
  os << tag << " " << v.size();
  for (std::int32_t x : v) os << " " << x;
  os << "\n";
}

Status LoadIdVector(std::istream& in, const char* tag,
                    std::vector<std::int32_t>* out) {
  std::string keyword;
  std::size_t count = 0;
  if (!(in >> keyword >> count) || keyword != tag) {
    return Status::InvalidArgument(std::string("expected '") + tag + "'");
  }
  out->resize(count);
  for (auto& x : *out) {
    if (!(in >> x)) {
      return Status::InvalidArgument(std::string("truncated '") + tag + "'");
    }
  }
  return Status::OK();
}

void SaveMatrixV1(std::ostream& os, const DoorMatrixView& m) {
  os << "matrix " << m.num_rows() << " " << m.num_cols() << "\n";
  // Row/col door ids (needed to reconstruct), then the payload.
  SaveIdSpan(os, "rows", m.rows());
  SaveIdSpan(os, "cols", m.cols());
  os << "data";
  for (std::size_t r = 0; r < m.num_rows(); ++r) {
    for (std::size_t c = 0; c < m.num_cols(); ++c) {
      os << " " << m.At(static_cast<int>(r), static_cast<int>(c)) << " "
         << m.FirstHopAt(static_cast<int>(r), static_cast<int>(c));
    }
  }
  os << "\n";
}

Status LoadMatrixV1(std::istream& in, bool store_first_hop, DoorMatrix* out) {
  std::string keyword;
  std::size_t rows = 0, cols = 0;
  if (!(in >> keyword >> rows >> cols) || keyword != "matrix") {
    return Status::InvalidArgument("expected 'matrix'");
  }
  std::vector<std::int32_t> row_ids, col_ids;
  IFLS_RETURN_NOT_OK(LoadIdVector(in, "rows", &row_ids));
  IFLS_RETURN_NOT_OK(LoadIdVector(in, "cols", &col_ids));
  if (row_ids.size() != rows || col_ids.size() != cols) {
    return Status::InvalidArgument("matrix dimension mismatch");
  }
  if (!(in >> keyword) || keyword != "data") {
    return Status::InvalidArgument("expected 'data'");
  }
  DoorMatrix matrix(row_ids, col_ids, store_first_hop);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      double dist;
      DoorId hop;
      if (!(in >> dist >> hop)) {
        return Status::InvalidArgument("truncated matrix data");
      }
      matrix.Set(static_cast<int>(r), static_cast<int>(c), dist, hop);
    }
  }
  *out = std::move(matrix);
  return Status::OK();
}

void SaveOptions(std::ostream& os, const VipTreeOptions& o) {
  os << "options " << o.leaf_capacity << " " << o.internal_fanout << " "
     << o.build_leaf_to_ancestor << " " << o.store_first_hop << " "
     << o.single_door_optimization << " " << o.enable_door_distance_cache
     << "\n";
}

}  // namespace

Status VipTree::Save(std::ostream* out) const {
  if (out == nullptr) return Status::InvalidArgument("null output stream");
  std::ostream& os = *out;
  os << std::setprecision(17);
  os << kMagic << " " << kVersionCurrent << "\n";
  SaveOptions(os, options_);
  os << "venue " << venue_->num_partitions() << " " << venue_->num_doors()
     << "\n";
  os << "nodes " << nodes_.size() << "\n";
  for (const VipNode& n : nodes_) {
    os << "node " << n.id << " " << n.parent << "\n";
    SaveIdSpan(os, "partitions", n.partitions);
    SaveIdSpan(os, "children", n.children);
    SaveIdSpan(os, "doors", n.doors);
    SaveIdSpan(os, "access", n.access_doors);
    os << "ancestors " << n.ancestor_matrices.size() << "\n";
  }
  // Bulk payload, streamed straight out of the arenas (their layout order
  // is the documented serialization order).
  const bool has_hops = options_.store_first_hop;
  os << "payload " << dist_.size() << " " << (has_hops ? 1 : 0) << "\n";
  for (std::size_t i = 0; i < dist_.size(); ++i) {
    os << dist_[i];
    if (has_hops) os << " " << hops_[i];
    os << (((i + 1) % kPayloadValuesPerLine == 0 || i + 1 == dist_.size())
               ? "\n"
               : " ");
  }
  os << "end\n";
  if (!os.good()) return Status::IOError("failed writing VIP-tree stream");
  return Status::OK();
}

Status VipTree::SaveLegacyV1(std::ostream* out) const {
  if (out == nullptr) return Status::InvalidArgument("null output stream");
  std::ostream& os = *out;
  os << std::setprecision(17);
  os << kMagic << " " << kVersionLegacy << "\n";
  SaveOptions(os, options_);
  os << "venue " << venue_->num_partitions() << " " << venue_->num_doors()
     << "\n";
  os << "nodes " << nodes_.size() << "\n";
  for (const VipNode& n : nodes_) {
    os << "node " << n.id << " " << n.parent << "\n";
    SaveIdSpan(os, "partitions", n.partitions);
    SaveIdSpan(os, "children", n.children);
    SaveIdSpan(os, "doors", n.doors);
    SaveIdSpan(os, "access", n.access_doors);
    SaveMatrixV1(os, n.matrix);
    os << "ancestors " << n.ancestor_matrices.size() << "\n";
    for (const DoorMatrixView& m : n.ancestor_matrices) SaveMatrixV1(os, m);
  }
  if (!os.good()) return Status::IOError("failed writing VIP-tree stream");
  return Status::OK();
}

Status VipTree::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return Save(&out);
}

Result<VipTree> VipTree::Load(const Venue* venue, std::istream* in) {
  if (venue == nullptr || in == nullptr) {
    return Status::InvalidArgument("venue and stream must not be null");
  }
  std::string magic;
  int version = 0;
  if (!(*in >> magic >> version) || magic != kMagic) {
    return Status::InvalidArgument("not an IFLS_VIPTREE stream");
  }
  if (version != kVersionLegacy && version != kVersionCurrent) {
    return Status::InvalidArgument("unsupported VIP-tree format version " +
                                   std::to_string(version));
  }
  VipTree tree;
  tree.venue_ = venue;
  std::string keyword;
  VipTreeOptions& o = tree.options_;
  if (!(*in >> keyword >> o.leaf_capacity >> o.internal_fanout >>
        o.build_leaf_to_ancestor >> o.store_first_hop >>
        o.single_door_optimization >> o.enable_door_distance_cache) ||
      keyword != "options") {
    return Status::InvalidArgument("expected 'options'");
  }
  std::size_t num_partitions = 0, num_doors = 0;
  if (!(*in >> keyword >> num_partitions >> num_doors) ||
      keyword != "venue") {
    return Status::InvalidArgument("expected 'venue'");
  }
  if (num_partitions != venue->num_partitions() ||
      num_doors != venue->num_doors()) {
    return Status::InvalidArgument(
        "index was built for a different venue (partition/door counts "
        "differ)");
  }
  std::size_t num_nodes = 0;
  if (!(*in >> keyword >> num_nodes) || keyword != "nodes") {
    return Status::InvalidArgument("expected 'nodes'");
  }

  // Structure section (both versions); v1 additionally carries per-node
  // matrices, v2 only the ancestor-matrix counts.
  VipTreeStructure structure;
  structure.nodes.resize(num_nodes);
  std::vector<DoorMatrix> v1_main(version == kVersionLegacy ? num_nodes : 0);
  std::vector<std::vector<DoorMatrix>> v1_ancestors(
      version == kVersionLegacy ? num_nodes : 0);
  std::vector<std::size_t> ancestor_counts(num_nodes, 0);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    VipTreeStructure::Node& n = structure.nodes[i];
    if (!(*in >> keyword >> n.id >> n.parent) || keyword != "node" ||
        n.id != static_cast<NodeId>(i)) {
      return Status::InvalidArgument("malformed node header at index " +
                                     std::to_string(i));
    }
    IFLS_RETURN_NOT_OK(LoadIdVector(*in, "partitions", &n.partitions));
    IFLS_RETURN_NOT_OK(LoadIdVector(*in, "children", &n.children));
    IFLS_RETURN_NOT_OK(LoadIdVector(*in, "doors", &n.doors));
    IFLS_RETURN_NOT_OK(LoadIdVector(*in, "access", &n.access_doors));
    if (version == kVersionLegacy) {
      IFLS_RETURN_NOT_OK(LoadMatrixV1(*in, o.store_first_hop, &v1_main[i]));
    }
    std::size_t num_ancestors = 0;
    if (!(*in >> keyword >> num_ancestors) || keyword != "ancestors") {
      return Status::InvalidArgument("expected 'ancestors'");
    }
    ancestor_counts[i] = num_ancestors;
    if (version == kVersionLegacy) {
      v1_ancestors[i].resize(num_ancestors);
      for (DoorMatrix& m : v1_ancestors[i]) {
        IFLS_RETURN_NOT_OK(LoadMatrixV1(*in, o.store_first_hop, &m));
      }
    }
  }

  // Lay out the arenas from the structure; payload cells are filled below.
  IFLS_RETURN_NOT_OK(tree.InitFromStructure(structure));
  for (std::size_t i = 0; i < num_nodes; ++i) {
    if (ancestor_counts[i] != tree.nodes_[i].ancestor_matrices.size()) {
      return Status::InvalidArgument(
          "ancestor matrix count does not match the tree structure");
    }
  }

  if (version == kVersionCurrent) {
    // v2: stream the bulk payload straight into the arenas.
    std::size_t payload = 0;
    int has_hops = 0;
    if (!(*in >> keyword >> payload >> has_hops) || keyword != "payload") {
      return Status::InvalidArgument("expected 'payload'");
    }
    if (payload != tree.dist_.size()) {
      return Status::InvalidArgument(
          "payload size does not match the tree structure");
    }
    if ((has_hops != 0) != o.store_first_hop) {
      return Status::InvalidArgument(
          "payload first-hop flag contradicts the options header");
    }
    double* dist_cells = tree.dist_.mutable_data();
    DoorId* hop_cells =
        o.store_first_hop ? tree.hops_.mutable_data() : nullptr;
    for (std::size_t i = 0; i < payload; ++i) {
      if (!(*in >> dist_cells[i])) {
        return Status::InvalidArgument("truncated payload data");
      }
      if (hop_cells != nullptr && !(*in >> hop_cells[i])) {
        return Status::InvalidArgument("truncated payload data");
      }
    }
    if (!(*in >> keyword) || keyword != "end") {
      return Status::InvalidArgument("missing 'end' marker");
    }
    return tree;
  }

  // v1 migration: copy each per-node matrix into its arena slot after
  // checking its door sets against the derived structure.
  const auto copy_matrix = [&tree](const DoorMatrixView& view,
                                   const DoorMatrix& m) -> Status {
    if (!std::equal(view.rows().begin(), view.rows().end(),
                    m.rows().begin(), m.rows().end()) ||
        !std::equal(view.cols().begin(), view.cols().end(),
                    m.cols().begin(), m.cols().end())) {
      return Status::InvalidArgument(
          "matrix door sets do not match the tree structure");
    }
    const std::size_t cols = view.num_cols();
    double* dist_cells = tree.dist_.mutable_data() +
                         (view.dist_data() - tree.dist_.data());
    DoorId* hop_cells =
        view.has_first_hop()
            ? tree.hops_.mutable_data() +
                  (view.first_hop_data() - tree.hops_.data())
            : nullptr;
    for (std::size_t r = 0; r < view.num_rows(); ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        dist_cells[r * cols + c] =
            m.At(static_cast<int>(r), static_cast<int>(c));
        if (hop_cells != nullptr) {
          hop_cells[r * cols + c] =
              m.FirstHopAt(static_cast<int>(r), static_cast<int>(c));
        }
      }
    }
    return Status::OK();
  };
  for (std::size_t i = 0; i < num_nodes; ++i) {
    const VipNode& n = tree.nodes_[i];
    IFLS_RETURN_NOT_OK(copy_matrix(n.matrix, v1_main[i]));
    for (std::size_t k = 0; k < n.ancestor_matrices.size(); ++k) {
      IFLS_RETURN_NOT_OK(copy_matrix(n.ancestor_matrices[k],
                                     v1_ancestors[i][k]));
    }
  }
  return tree;
}

Result<VipTree> VipTree::LoadFromFile(const Venue* venue,
                                      const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  // Sniff the binary v3 magic; anything else takes the legacy text path
  // (v1/v2), bit-identically to before v3 existed.
  char magic[sizeof(kV3Magic)] = {};
  in.read(magic, sizeof(magic));
  if (in.gcount() == static_cast<std::streamsize>(sizeof(magic)) &&
      std::memcmp(magic, kV3Magic, sizeof(magic)) == 0) {
    in.close();
    return LoadV3FromFile(venue, path);
  }
  in.clear();
  in.seekg(0);
  return Load(venue, &in);
}

}  // namespace ifls
