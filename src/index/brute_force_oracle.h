#ifndef IFLS_INDEX_BRUTE_FORCE_ORACLE_H_
#define IFLS_INDEX_BRUTE_FORCE_ORACLE_H_

#include <atomic>

#include "src/common/workspace_pool.h"
#include "src/graph/dijkstra.h"
#include "src/graph/door_graph.h"
#include "src/index/distance_oracle.h"

namespace ifls {

/// The "no index at all" DistanceOracle: every DoorToDoor answer runs a
/// fresh targeted Dijkstra over the door graph — nothing is materialized and
/// nothing is memoized. Exists as the zero-trust reference backend for the
/// oracle-equivalence tests and as the cost floor in backend comparisons
/// (GraphDistanceOracle = memoized, VipTree = materialized). Use on small
/// venues only; per-query cost is a full graph search.
///
/// Thread-safe: concurrent queries each borrow a pooled workspace.
class BruteForceOracle : public DistanceOracle {
 public:
  explicit BruteForceOracle(const Venue* venue);

  const Venue& venue() const override { return *venue_; }

  /// Exact global door-to-door distance via per-call Dijkstra.
  double DoorToDoor(DoorId a, DoorId b) const override;

  /// Number of graph searches performed so far.
  std::size_t num_sssp_runs() const {
    return num_runs_.load(std::memory_order_relaxed);
  }

 private:
  const Venue* venue_;
  DoorGraph graph_;
  mutable WorkspacePool<DijkstraWorkspace> workspaces_;
  mutable std::atomic<std::size_t> num_runs_{0};
};

}  // namespace ifls

#endif  // IFLS_INDEX_BRUTE_FORCE_ORACLE_H_
