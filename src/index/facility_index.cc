#include "src/index/facility_index.h"

#include "src/common/logging.h"

namespace ifls {

FacilityIndex::FacilityIndex(const DistanceOracle* oracle,
                             const std::vector<PartitionId>& existing)
    : oracle_(oracle) {
  IFLS_CHECK(oracle != nullptr);
  kinds_.assign(oracle->venue().num_partitions(), FacilityKind::kNone);
  subtree_counts_.assign(static_cast<std::size_t>(oracle->num_nodes()), 0);
  for (PartitionId p : existing) Register(p, FacilityKind::kExisting);
}

void FacilityIndex::AddCandidates(const std::vector<PartitionId>& candidates) {
  for (PartitionId p : candidates) {
    Register(p, FacilityKind::kCandidate);
    candidate_list_.push_back(p);
  }
}

void FacilityIndex::ClearCandidates() {
  for (PartitionId p : candidate_list_) {
    kinds_[static_cast<std::size_t>(p)] = FacilityKind::kNone;
    --num_candidates_;
    for (NodeId n = oracle_->LeafOf(p); n != kInvalidNode;
         n = oracle_->Parent(n)) {
      --subtree_counts_[static_cast<std::size_t>(n)];
    }
  }
  candidate_list_.clear();
}

void FacilityIndex::Register(PartitionId p, FacilityKind kind) {
  IFLS_CHECK(p >= 0 && static_cast<std::size_t>(p) < kinds_.size())
      << "facility partition " << p << " out of range";
  IFLS_CHECK(kinds_[static_cast<std::size_t>(p)] == FacilityKind::kNone)
      << "partition " << p << " registered twice (existing/candidate overlap)";
  kinds_[static_cast<std::size_t>(p)] = kind;
  if (kind == FacilityKind::kExisting) {
    ++num_existing_;
  } else {
    ++num_candidates_;
  }
  for (NodeId n = oracle_->LeafOf(p); n != kInvalidNode;
       n = oracle_->Parent(n)) {
    ++subtree_counts_[static_cast<std::size_t>(n)];
  }
}

}  // namespace ifls
