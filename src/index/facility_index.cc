#include "src/index/facility_index.h"

#include "src/common/logging.h"

namespace ifls {

FacilityIndex::FacilityIndex(const VipTree* tree,
                             const std::vector<PartitionId>& existing)
    : tree_(tree) {
  IFLS_CHECK(tree != nullptr);
  kinds_.assign(tree->venue().num_partitions(), FacilityKind::kNone);
  subtree_counts_.assign(tree->num_nodes(), 0);
  for (PartitionId p : existing) Register(p, FacilityKind::kExisting);
}

void FacilityIndex::AddCandidates(const std::vector<PartitionId>& candidates) {
  for (PartitionId p : candidates) {
    Register(p, FacilityKind::kCandidate);
    candidate_list_.push_back(p);
  }
}

void FacilityIndex::ClearCandidates() {
  for (PartitionId p : candidate_list_) {
    kinds_[static_cast<std::size_t>(p)] = FacilityKind::kNone;
    --num_candidates_;
    for (NodeId n = tree_->LeafOf(p); n != kInvalidNode;
         n = tree_->node(n).parent) {
      --subtree_counts_[static_cast<std::size_t>(n)];
    }
  }
  candidate_list_.clear();
}

void FacilityIndex::Register(PartitionId p, FacilityKind kind) {
  IFLS_CHECK(p >= 0 && static_cast<std::size_t>(p) < kinds_.size())
      << "facility partition " << p << " out of range";
  IFLS_CHECK(kinds_[static_cast<std::size_t>(p)] == FacilityKind::kNone)
      << "partition " << p << " registered twice (existing/candidate overlap)";
  kinds_[static_cast<std::size_t>(p)] = kind;
  if (kind == FacilityKind::kExisting) {
    ++num_existing_;
  } else {
    ++num_candidates_;
  }
  for (NodeId n = tree_->LeafOf(p); n != kInvalidNode;
       n = tree_->node(n).parent) {
    ++subtree_counts_[static_cast<std::size_t>(n)];
  }
}

}  // namespace ifls
