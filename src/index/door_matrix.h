#ifndef IFLS_INDEX_DOOR_MATRIX_H_
#define IFLS_INDEX_DOOR_MATRIX_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "src/common/logging.h"
#include "src/graph/dijkstra.h"
#include "src/indoor/types.h"

namespace ifls {

/// Non-owning dense distance matrix between two (sorted) door sets, with
/// optional first-hop doors for path reconstruction. This is how VIP-tree
/// nodes expose their matrices under the flat layout: the row/col id lists
/// and the row-major payload all live in tree-owned arena buffers, and the
/// view just carries spans/pointers into them — copyable, trivially
/// destructible, and stable across tree moves (the arenas' heap blocks never
/// move). Leaf nodes view all incident doors, internal nodes their
/// children's access doors, and (VIP only) leaves additionally view one
/// matrix per ancestor (rows = leaf doors, cols = ancestor access doors).
class DoorMatrixView {
 public:
  DoorMatrixView() = default;

  /// `rows`/`cols` must be sorted ascending and duplicate-free. `dist` must
  /// point at rows.size()*cols.size() row-major values; `first_hop` likewise
  /// or nullptr when first hops are not stored.
  DoorMatrixView(std::span<const DoorId> rows, std::span<const DoorId> cols,
                 const double* dist, const DoorId* first_hop)
      : rows_(rows), cols_(cols), dist_(dist), first_hop_(first_hop) {}

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return cols_.size(); }
  bool empty() const { return rows_.empty() || cols_.empty(); }

  std::span<const DoorId> rows() const { return rows_; }
  std::span<const DoorId> cols() const { return cols_; }

  /// Raw payload pointers (arena cell addressing; null when default-built).
  const double* dist_data() const { return dist_; }
  const DoorId* first_hop_data() const { return first_hop_; }
  bool has_first_hop() const { return first_hop_ != nullptr; }

  /// Index of `d` among rows, or -1.
  int RowIndex(DoorId d) const { return IndexOf(rows_, d); }
  int ColIndex(DoorId d) const { return IndexOf(cols_, d); }

  bool HasRow(DoorId d) const { return RowIndex(d) >= 0; }
  bool HasCol(DoorId d) const { return ColIndex(d) >= 0; }

  double At(int row, int col) const {
    return dist_[static_cast<std::size_t>(row) * cols_.size() +
                 static_cast<std::size_t>(col)];
  }
  DoorId FirstHopAt(int row, int col) const {
    if (first_hop_ == nullptr) return kInvalidDoor;
    return first_hop_[static_cast<std::size_t>(row) * cols_.size() +
                      static_cast<std::size_t>(col)];
  }

  /// Distance between doors by id. Precondition: both present.
  double Distance(DoorId row, DoorId col) const {
    const int r = RowIndex(row);
    const int c = ColIndex(col);
    IFLS_DCHECK(r >= 0 && c >= 0);
    return At(r, c);
  }

 private:
  static int IndexOf(std::span<const DoorId> v, DoorId d) {
    auto it = std::lower_bound(v.begin(), v.end(), d);
    if (it == v.end() || *it != d) return -1;
    return static_cast<int>(it - v.begin());
  }

  std::span<const DoorId> rows_;
  std::span<const DoorId> cols_;
  const double* dist_ = nullptr;
  const DoorId* first_hop_ = nullptr;
};

/// Owning dense distance matrix between two (sorted) door sets. Retained for
/// the v1 serialization migration path, standalone uses, and as the
/// pointer-chasing comparison layout in bench_index_micro; the tree itself
/// now stores its payloads in arenas exposed through DoorMatrixView.
class DoorMatrix {
 public:
  DoorMatrix() = default;

  /// Both vectors must be sorted ascending and duplicate-free.
  DoorMatrix(std::vector<DoorId> rows, std::vector<DoorId> cols,
             bool store_first_hop)
      : rows_(std::move(rows)), cols_(std::move(cols)) {
    dist_.assign(rows_.size() * cols_.size(), kInfDistance);
    if (store_first_hop) {
      first_hop_.assign(rows_.size() * cols_.size(), kInvalidDoor);
    }
  }

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return cols_.size(); }
  bool empty() const { return dist_.empty(); }

  const std::vector<DoorId>& rows() const { return rows_; }
  const std::vector<DoorId>& cols() const { return cols_; }

  /// Index of `d` among rows, or -1.
  int RowIndex(DoorId d) const { return IndexOf(rows_, d); }
  int ColIndex(DoorId d) const { return IndexOf(cols_, d); }

  bool HasRow(DoorId d) const { return RowIndex(d) >= 0; }
  bool HasCol(DoorId d) const { return ColIndex(d) >= 0; }

  double At(int row, int col) const {
    return dist_[static_cast<std::size_t>(row) * cols_.size() +
                 static_cast<std::size_t>(col)];
  }
  DoorId FirstHopAt(int row, int col) const {
    if (first_hop_.empty()) return kInvalidDoor;
    return first_hop_[static_cast<std::size_t>(row) * cols_.size() +
                      static_cast<std::size_t>(col)];
  }

  void Set(int row, int col, double distance, DoorId first_hop) {
    const std::size_t idx =
        static_cast<std::size_t>(row) * cols_.size() +
        static_cast<std::size_t>(col);
    dist_[idx] = distance;
    if (!first_hop_.empty()) first_hop_[idx] = first_hop;
  }

  /// Distance between doors by id. Precondition: both present.
  double Distance(DoorId row, DoorId col) const {
    const int r = RowIndex(row);
    const int c = ColIndex(col);
    IFLS_DCHECK(r >= 0 && c >= 0);
    return At(r, c);
  }

  /// Fills the row for door `row` from a completed single-source run.
  void FillRowFromShortestPaths(DoorId row, const ShortestPaths& paths) {
    const int r = RowIndex(row);
    IFLS_DCHECK(r >= 0);
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      const std::size_t target = static_cast<std::size_t>(cols_[c]);
      Set(r, static_cast<int>(c), paths.distance[target],
          paths.first_hop[target]);
    }
  }

  std::size_t MemoryFootprintBytes() const {
    return rows_.capacity() * sizeof(DoorId) +
           cols_.capacity() * sizeof(DoorId) +
           dist_.capacity() * sizeof(double) +
           first_hop_.capacity() * sizeof(DoorId);
  }

  /// Non-owning view over this matrix's storage (valid while the matrix is
  /// alive and un-moved).
  DoorMatrixView View() const {
    return DoorMatrixView(rows_, cols_, dist_.data(),
                          first_hop_.empty() ? nullptr : first_hop_.data());
  }

 private:
  static int IndexOf(const std::vector<DoorId>& v, DoorId d) {
    auto it = std::lower_bound(v.begin(), v.end(), d);
    if (it == v.end() || *it != d) return -1;
    return static_cast<int>(it - v.begin());
  }

  std::vector<DoorId> rows_;
  std::vector<DoorId> cols_;
  std::vector<double> dist_;
  std::vector<DoorId> first_hop_;
};

}  // namespace ifls

#endif  // IFLS_INDEX_DOOR_MATRIX_H_
