#ifndef IFLS_INDEX_OVERLAY_ORACLE_H_
#define IFLS_INDEX_OVERLAY_ORACLE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/index/distance_oracle.h"

namespace ifls {

/// Net facility-set difference between a base index snapshot and the live
/// serving state: partitions opened/closed as existing facilities (Fe) and
/// added/withdrawn candidate locations (Fn) since the snapshot was built.
/// All four vectors are sorted ascending and mutually consistent: a
/// partition appears in at most one of them, `removed_*` entries are members
/// of the base set and `added_*` entries are not.
struct FacilityDelta {
  std::vector<PartitionId> added_existing;
  std::vector<PartitionId> removed_existing;
  std::vector<PartitionId> added_candidates;
  std::vector<PartitionId> removed_candidates;

  bool empty() const {
    return added_existing.empty() && removed_existing.empty() &&
           added_candidates.empty() && removed_candidates.empty();
  }
  /// Number of net changes carried.
  std::size_t size() const {
    return added_existing.size() + removed_existing.size() +
           added_candidates.size() + removed_candidates.size();
  }
};

/// Canonical composition base ∪ added ∖ removed. `base` must be sorted
/// ascending; the result is sorted ascending — the same canonical order a
/// from-scratch rebuild over the composed set uses, which is what makes
/// solver tie-breaks on (snapshot ⊕ delta) bit-identical to a rebuild.
std::vector<PartitionId> ComposeFacilitySet(
    std::span<const PartitionId> base, std::span<const PartitionId> added,
    std::span<const PartitionId> removed);

/// Validates a delta against sorted base Fe/Fn: sortedness, uniqueness,
/// membership of removals, non-membership of additions, and Fe/Fn
/// disjointness of the composed sets.
Status ValidateFacilityDelta(const FacilityDelta& delta,
                             std::span<const PartitionId> base_existing,
                             std::span<const PartitionId> base_candidates);

/// DistanceOracle view of (base snapshot ⊕ facility delta): every distance
/// and hierarchy method forwards verbatim to the base oracle — the venue
/// geometry is unchanged by facility mutations, so distances, pruning bounds
/// and work counters are exactly the base's. Forwarding means the overlay
/// inherits the base's hot-path machinery for free: the min-plus kernels
/// (src/index/minplus_kernels.h) and the sharded door-distance memo both
/// run inside the base tree's DoorToDoor/composition paths, so serving
/// queries through an overlay costs one virtual hop and nothing more —
/// while the *facility streams*
/// (effective Fe and Fn) are the delta-composed sets in canonical sorted
/// order. Solvers consume an OverlayOracle through IflsContext exactly like
/// any other backend, and their answers (argmin ids, objective values,
/// tie-breaks) are bit-identical to running against a freshly rebuilt index
/// whose base sets equal the composed sets.
///
/// Thread-safety: immutable after construction; forwards to a base oracle
/// whose const methods are themselves safe for concurrent callers. Counter
/// updates land on the calling thread's sink when installed, else on the
/// *base* oracle's aggregate (delegation does not duplicate counts).
class OverlayOracle : public DistanceOracle {
 public:
  /// `base` must outlive the overlay. `base_existing`/`base_candidates` are
  /// the snapshot's canonical (sorted) facility sets; `delta` must validate
  /// against them (IFLS_CHECKed).
  OverlayOracle(const DistanceOracle* base,
                std::span<const PartitionId> base_existing,
                std::span<const PartitionId> base_candidates,
                FacilityDelta delta);

  const DistanceOracle& base() const { return *base_; }
  const FacilityDelta& delta() const { return delta_; }

  /// Composed facility sets, sorted ascending.
  const std::vector<PartitionId>& effective_existing() const {
    return effective_existing_;
  }
  const std::vector<PartitionId>& effective_candidates() const {
    return effective_candidates_;
  }

  // ---- DistanceOracle: pure forwarding ---------------------------------

  const Venue& venue() const override { return base_->venue(); }

  double DoorToDoor(DoorId a, DoorId b) const override {
    return base_->DoorToDoor(a, b);
  }
  double PointToDoor(const Point& a, PartitionId pa,
                     DoorId d) const override {
    return base_->PointToDoor(a, pa, d);
  }
  double PointToPoint(const Point& a, PartitionId pa, const Point& b,
                      PartitionId pb) const override {
    return base_->PointToPoint(a, pa, b, pb);
  }
  double PointToPartition(const Point& a, PartitionId pa,
                          PartitionId target) const override {
    return base_->PointToPartition(a, pa, target);
  }
  double DoorToPartition(DoorId d, PartitionId target) const override {
    return base_->DoorToPartition(d, target);
  }
  double PartitionToPartition(PartitionId p, PartitionId q) const override {
    return base_->PartitionToPartition(p, q);
  }

  NodeId root() const override { return base_->root(); }
  std::size_t num_nodes() const override { return base_->num_nodes(); }
  bool IsLeaf(NodeId n) const override { return base_->IsLeaf(n); }
  NodeId Parent(NodeId n) const override { return base_->Parent(n); }
  NodeId LeafOf(PartitionId p) const override { return base_->LeafOf(p); }
  std::span<const NodeId> Children(NodeId n) const override {
    return base_->Children(n);
  }
  std::span<const PartitionId> NodePartitions(NodeId n) const override {
    return base_->NodePartitions(n);
  }
  bool NodeContainsPartition(NodeId n, PartitionId p) const override {
    return base_->NodeContainsPartition(n, p);
  }
  double PartitionToNode(PartitionId p, NodeId n) const override {
    return base_->PartitionToNode(p, n);
  }
  double PointToNode(const Point& a, PartitionId pa,
                     NodeId n) const override {
    return base_->PointToNode(a, pa, n);
  }

 private:
  const DistanceOracle* base_;
  FacilityDelta delta_;
  std::vector<PartitionId> effective_existing_;
  std::vector<PartitionId> effective_candidates_;
};

}  // namespace ifls

#endif  // IFLS_INDEX_OVERLAY_ORACLE_H_
