#ifndef IFLS_INDEX_FACILITY_INDEX_H_
#define IFLS_INDEX_FACILITY_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/index/distance_oracle.h"

namespace ifls {

/// Whether a facility partition is an existing facility (Fe) or a candidate
/// location (Fn).
enum class FacilityKind : std::uint8_t { kNone = 0, kExisting = 1, kCandidate = 2 };

/// The "object layer" over a distance oracle's node hierarchy: marks which
/// partitions host facilities and maintains per-node subtree facility counts
/// so searches can skip facility-free subtrees in O(1). Mirrors the paper's
/// split between offline indexing of Fe and query-time indexing of Fn:
/// construct with the existing set, then AddCandidates at query time
/// (O(|Fn| * hierarchy height)). Flat oracles expose a single root node, so
/// the index degenerates to one global facility count.
class FacilityIndex {
 public:
  /// Builds with only the existing facilities registered. The oracle must
  /// outlive the index.
  FacilityIndex(const DistanceOracle* oracle,
                const std::vector<PartitionId>& existing);

  /// Registers candidate locations. A partition cannot be both existing and
  /// candidate; duplicates are checked (IFLS_CHECK).
  void AddCandidates(const std::vector<PartitionId>& candidates);

  /// Removes every candidate registration, keeping the existing set. Lets a
  /// caller reuse the offline Fe index across queries with different Fn.
  void ClearCandidates();

  const DistanceOracle& oracle() const { return *oracle_; }

  FacilityKind kind(PartitionId p) const {
    return kinds_[static_cast<std::size_t>(p)];
  }
  bool IsFacility(PartitionId p) const {
    return kind(p) != FacilityKind::kNone;
  }
  bool IsExisting(PartitionId p) const {
    return kind(p) == FacilityKind::kExisting;
  }
  bool IsCandidate(PartitionId p) const {
    return kind(p) == FacilityKind::kCandidate;
  }

  /// Number of facilities (existing + candidate) in the subtree of `n`.
  std::int32_t SubtreeCount(NodeId n) const {
    return subtree_counts_[static_cast<std::size_t>(n)];
  }

  std::int32_t num_existing() const { return num_existing_; }
  std::int32_t num_candidates() const { return num_candidates_; }

 private:
  void Register(PartitionId p, FacilityKind kind);

  const DistanceOracle* oracle_;
  std::vector<FacilityKind> kinds_;          // per partition
  std::vector<std::int32_t> subtree_counts_; // per node
  std::vector<PartitionId> candidate_list_;
  std::int32_t num_existing_ = 0;
  std::int32_t num_candidates_ = 0;
};

}  // namespace ifls

#endif  // IFLS_INDEX_FACILITY_INDEX_H_
