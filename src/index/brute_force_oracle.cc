#include "src/index/brute_force_oracle.h"

#include "src/common/logging.h"

namespace ifls {

BruteForceOracle::BruteForceOracle(const Venue* venue)
    : venue_(venue), graph_(*venue) {
  IFLS_CHECK(venue != nullptr);
}

double BruteForceOracle::DoorToDoor(DoorId a, DoorId b) const {
  if (a == b) return 0.0;
  BumpDoorDistanceEvals();
  WorkspacePool<DijkstraWorkspace>::Lease ws = workspaces_.Acquire();
  const ShortestPaths& paths =
      ShortestPathsToTargets(graph_, a, {b}, ws.get());
  num_runs_.fetch_add(1, std::memory_order_relaxed);
  return paths.distance[static_cast<std::size_t>(b)];
}

}  // namespace ifls
