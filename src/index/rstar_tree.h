#ifndef IFLS_INDEX_RSTAR_TREE_H_
#define IFLS_INDEX_RSTAR_TREE_H_

#include <cstdint>
#include <vector>

#include "src/geometry/geometry.h"

namespace ifls {

/// A compact R*-tree over rectangles — the *geometric layer* of the
/// composite indoor index of Xie, Lu and Pedersen (ICDE'13), which the
/// paper's related work discusses: it indexes the partitions of a venue for
/// geometric lookups (point location, window queries, planar proximity),
/// complementing the topological VIP-tree. Built by bulk loading (sort-tile
/// -recursive, level-major) which yields the packed, low-overlap nodes
/// R*-style forced reinsertion aims for.
///
/// Entries are (rect, id) pairs; ids are opaque to the tree (partition ids
/// in the library's use).
class RStarTree {
 public:
  struct Entry {
    Rect rect;
    std::int32_t id = -1;
  };

  /// Bulk loads the entries. `node_capacity` children per node.
  explicit RStarTree(std::vector<Entry> entries, int node_capacity = 16);

  std::size_t size() const { return num_entries_; }
  int height() const { return height_; }

  /// Ids of entries whose rect contains `p` (closed; same level only).
  std::vector<std::int32_t> Contains(const Point& p) const;

  /// Ids of entries whose rect intersects-or-touches `window`.
  std::vector<std::int32_t> Intersects(const Rect& window) const;

  /// Ids of the k entries with the smallest planar min-distance to `p`
  /// among entries on p's level, ascending (fewer when the level has fewer
  /// entries). Best-first over node MBR distances.
  std::vector<std::int32_t> NearestNeighbors(const Point& p, int k) const;

  /// Total bytes held.
  std::size_t MemoryFootprintBytes() const;

 private:
  struct Node {
    Rect mbr;
    /// Children: node indices for internal nodes, entry indices for leaves.
    std::vector<std::int32_t> children;
    bool is_leaf = false;
  };

  /// Smallest rect covering all entries on any level (level field of the
  /// MBR is unused; filtering is done per entry).
  static Rect MbrOf(const std::vector<Entry>& entries,
                    const std::vector<std::int32_t>& indices);

  std::vector<Entry> entries_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::size_t num_entries_ = 0;
  int height_ = 0;
};

}  // namespace ifls

#endif  // IFLS_INDEX_RSTAR_TREE_H_
