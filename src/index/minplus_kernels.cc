#include "src/index/minplus_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>

// The AVX2 backend is compiled whenever the build enables IFLS_KERNEL_SIMD
// on an x86-64 gcc/clang toolchain. Each SIMD function carries its own
// __attribute__((target("avx2"))), so no global -mavx2 flag is required and
// the scalar reference in the same TU stays runnable on any CPU; the
// dispatch below only installs the AVX2 table when the running CPU reports
// the feature.
#if defined(IFLS_KERNEL_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define IFLS_KERNEL_SIMD_COMPILED 1
#include <immintrin.h>
#else
#define IFLS_KERNEL_SIMD_COMPILED 0
#endif

namespace ifls {
namespace kernels {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Scalar reference backend. These loops ARE the specification: the SIMD
// backend must reproduce them bit for bit (same left-associated sums, min
// picks an operand, argmin ties to the lowest index).
// ---------------------------------------------------------------------------

namespace scalar {

double MinPlusJoin(const double* a, const std::int32_t* rows, std::size_t nr,
                   const double* b, const std::int32_t* cols, std::size_t nc,
                   const double* m, std::size_t stride) {
  double best = kInf;
  for (std::size_t i = 0; i < nr; ++i) {
    const double ai = a[i];
    const double* row = m + static_cast<std::size_t>(rows[i]) * stride;
    for (std::size_t j = 0; j < nc; ++j) {
      const double cand = (ai + row[cols[j]]) + b[j];
      if (cand < best) best = cand;
    }
  }
  return best;
}

void MinPlusCompose(const double* a, const std::int32_t* rows, std::size_t nr,
                    const std::int32_t* cols, std::size_t nc, const double* m,
                    std::size_t stride, double* out) {
  for (std::size_t j = 0; j < nc; ++j) out[j] = kInf;
  for (std::size_t i = 0; i < nr; ++i) {
    const double ai = a[i];
    const double* row = m + static_cast<std::size_t>(rows[i]) * stride;
    for (std::size_t j = 0; j < nc; ++j) {
      const double cand = ai + row[cols[j]];
      if (cand < out[j]) out[j] = cand;
    }
  }
}

double MinPlusGather(double s, const double* row, const std::int32_t* idx,
                     std::size_t n) {
  double best = kInf;
  for (std::size_t j = 0; j < n; ++j) {
    const double cand = s + row[idx[j]];
    if (cand < best) best = cand;
  }
  return best;
}

double MinPlusGatherAdd(double s, const double* row, const std::int32_t* idx,
                        const double* b, std::size_t n) {
  double best = kInf;
  for (std::size_t j = 0; j < n; ++j) {
    const double cand = (s + row[idx[j]]) + b[j];
    if (cand < best) best = cand;
  }
  return best;
}

double MinPlusPairwise(const double* a, const double* b, std::size_t n) {
  double best = kInf;
  for (std::size_t k = 0; k < n; ++k) {
    const double cand = a[k] + b[k];
    if (cand < best) best = cand;
  }
  return best;
}

std::size_t MinPlusArgmin(double s, const double* row, std::size_t n) {
  std::size_t best_k = 0;
  double best = s + row[0];
  for (std::size_t k = 1; k < n; ++k) {
    const double cand = s + row[k];
    if (cand < best) {
      best = cand;
      best_k = k;
    }
  }
  return best_k;
}

void GatherCells(const double* row, const std::int32_t* idx, std::size_t n,
                 double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = row[idx[i]];
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// AVX2 backend: 4-lane blocked reductions, scalar tails. Gathers use
// vgatherdpd over the int32 index lists exactly as laid out in the arenas.
// ---------------------------------------------------------------------------

#if IFLS_KERNEL_SIMD_COMPILED

namespace avx2 {

/// min over the 4 lanes, folded against `tail` (value-exact: every operand
/// is one of the candidate sums, so picking between equals is bit-neutral).
__attribute__((target("avx2"))) inline double HorizontalMin(__m256d acc,
                                                            double tail) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double best = tail;
  for (int l = 0; l < 4; ++l) {
    if (lanes[l] < best) best = lanes[l];
  }
  return best;
}

__attribute__((target("avx2"))) double MinPlusJoin(
    const double* a, const std::int32_t* rows, std::size_t nr, const double* b,
    const std::int32_t* cols, std::size_t nc, const double* m,
    std::size_t stride) {
  __m256d acc = _mm256_set1_pd(kInf);
  double tail_best = kInf;
  const std::size_t nc4 = nc & ~std::size_t{3};
  for (std::size_t i = 0; i < nr; ++i) {
    const double ai = a[i];
    const double* row = m + static_cast<std::size_t>(rows[i]) * stride;
    const __m256d va = _mm256_set1_pd(ai);
    for (std::size_t j = 0; j < nc4; j += 4) {
      const __m128i vidx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + j));
      const __m256d g = _mm256_i32gather_pd(row, vidx, 8);
      const __m256d vb = _mm256_loadu_pd(b + j);
      const __m256d cand = _mm256_add_pd(_mm256_add_pd(va, g), vb);
      acc = _mm256_min_pd(acc, cand);
    }
    for (std::size_t j = nc4; j < nc; ++j) {
      const double cand = (ai + row[cols[j]]) + b[j];
      if (cand < tail_best) tail_best = cand;
    }
  }
  return HorizontalMin(acc, tail_best);
}

__attribute__((target("avx2"))) void MinPlusCompose(
    const double* a, const std::int32_t* rows, std::size_t nr,
    const std::int32_t* cols, std::size_t nc, const double* m,
    std::size_t stride, double* out) {
  const std::size_t nc4 = nc & ~std::size_t{3};
  for (std::size_t j = 0; j < nc4; j += 4) {
    __m256d acc = _mm256_set1_pd(kInf);
    const __m128i vidx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + j));
    for (std::size_t i = 0; i < nr; ++i) {
      const double* row = m + static_cast<std::size_t>(rows[i]) * stride;
      const __m256d g = _mm256_i32gather_pd(row, vidx, 8);
      const __m256d cand = _mm256_add_pd(_mm256_set1_pd(a[i]), g);
      acc = _mm256_min_pd(acc, cand);
    }
    _mm256_storeu_pd(out + j, acc);
  }
  for (std::size_t j = nc4; j < nc; ++j) {
    double best = kInf;
    for (std::size_t i = 0; i < nr; ++i) {
      const double cand =
          a[i] + m[static_cast<std::size_t>(rows[i]) * stride + cols[j]];
      if (cand < best) best = cand;
    }
    out[j] = best;
  }
}

__attribute__((target("avx2"))) double MinPlusGather(double s,
                                                     const double* row,
                                                     const std::int32_t* idx,
                                                     std::size_t n) {
  __m256d acc = _mm256_set1_pd(kInf);
  const __m256d vs = _mm256_set1_pd(s);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t j = 0; j < n4; j += 4) {
    const __m128i vidx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + j));
    const __m256d g = _mm256_i32gather_pd(row, vidx, 8);
    acc = _mm256_min_pd(acc, _mm256_add_pd(vs, g));
  }
  double tail_best = kInf;
  for (std::size_t j = n4; j < n; ++j) {
    const double cand = s + row[idx[j]];
    if (cand < tail_best) tail_best = cand;
  }
  return HorizontalMin(acc, tail_best);
}

__attribute__((target("avx2"))) double MinPlusGatherAdd(
    double s, const double* row, const std::int32_t* idx, const double* b,
    std::size_t n) {
  __m256d acc = _mm256_set1_pd(kInf);
  const __m256d vs = _mm256_set1_pd(s);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t j = 0; j < n4; j += 4) {
    const __m128i vidx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + j));
    const __m256d g = _mm256_i32gather_pd(row, vidx, 8);
    const __m256d vb = _mm256_loadu_pd(b + j);
    acc = _mm256_min_pd(acc, _mm256_add_pd(_mm256_add_pd(vs, g), vb));
  }
  double tail_best = kInf;
  for (std::size_t j = n4; j < n; ++j) {
    const double cand = (s + row[idx[j]]) + b[j];
    if (cand < tail_best) tail_best = cand;
  }
  return HorizontalMin(acc, tail_best);
}

__attribute__((target("avx2"))) double MinPlusPairwise(const double* a,
                                                       const double* b,
                                                       std::size_t n) {
  __m256d acc = _mm256_set1_pd(kInf);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t k = 0; k < n4; k += 4) {
    const __m256d cand =
        _mm256_add_pd(_mm256_loadu_pd(a + k), _mm256_loadu_pd(b + k));
    acc = _mm256_min_pd(acc, cand);
  }
  double tail_best = kInf;
  for (std::size_t k = n4; k < n; ++k) {
    const double cand = a[k] + b[k];
    if (cand < tail_best) tail_best = cand;
  }
  return HorizontalMin(acc, tail_best);
}

/// Two passes: a vectorized min over the sums, then a scalar scan for the
/// first index attaining it — trivially reproduces the reference tie-break.
__attribute__((target("avx2"))) std::size_t MinPlusArgmin(double s,
                                                          const double* row,
                                                          std::size_t n) {
  __m256d acc = _mm256_set1_pd(kInf);
  const __m256d vs = _mm256_set1_pd(s);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t k = 0; k < n4; k += 4) {
    acc = _mm256_min_pd(acc, _mm256_add_pd(vs, _mm256_loadu_pd(row + k)));
  }
  double best = kInf;
  for (std::size_t k = n4; k < n; ++k) {
    const double cand = s + row[k];
    if (cand < best) best = cand;
  }
  best = HorizontalMin(acc, best);
  for (std::size_t k = 0; k < n; ++k) {
    if (s + row[k] == best) return k;
  }
  // best == +inf with every sum +inf (or NaN inputs, which the distance
  // arrays never contain): the reference scan returns index 0.
  return 0;
}

__attribute__((target("avx2"))) void GatherCells(const double* row,
                                                 const std::int32_t* idx,
                                                 std::size_t n, double* out) {
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m128i vidx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    _mm256_storeu_pd(out + i, _mm256_i32gather_pd(row, vidx, 8));
  }
  for (std::size_t i = n4; i < n; ++i) out[i] = row[idx[i]];
}

}  // namespace avx2

#endif  // IFLS_KERNEL_SIMD_COMPILED

// ---------------------------------------------------------------------------
// Runtime dispatch: one immutable table per backend, swapped atomically.
// ---------------------------------------------------------------------------

struct KernelTable {
  KernelMode mode;
  const char* name;
  double (*min_plus_join)(const double*, const std::int32_t*, std::size_t,
                          const double*, const std::int32_t*, std::size_t,
                          const double*, std::size_t);
  void (*min_plus_compose)(const double*, const std::int32_t*, std::size_t,
                           const std::int32_t*, std::size_t, const double*,
                           std::size_t, double*);
  double (*min_plus_gather)(double, const double*, const std::int32_t*,
                            std::size_t);
  double (*min_plus_gather_add)(double, const double*, const std::int32_t*,
                                const double*, std::size_t);
  double (*min_plus_pairwise)(const double*, const double*, std::size_t);
  std::size_t (*min_plus_argmin)(double, const double*, std::size_t);
  void (*gather_cells)(const double*, const std::int32_t*, std::size_t,
                       double*);
};

constexpr KernelTable kScalarTable = {
    KernelMode::kScalar,     "scalar",
    scalar::MinPlusJoin,     scalar::MinPlusCompose,
    scalar::MinPlusGather,   scalar::MinPlusGatherAdd,
    scalar::MinPlusPairwise, scalar::MinPlusArgmin,
    scalar::GatherCells,
};

#if IFLS_KERNEL_SIMD_COMPILED
constexpr KernelTable kSimdTable = {
    KernelMode::kSimd,     "avx2",
    avx2::MinPlusJoin,     avx2::MinPlusCompose,
    avx2::MinPlusGather,   avx2::MinPlusGatherAdd,
    avx2::MinPlusPairwise, avx2::MinPlusArgmin,
    avx2::GatherCells,
};
#endif

bool CpuHasAvx2() {
#if IFLS_KERNEL_SIMD_COMPILED
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const KernelTable* ResolveTable(KernelMode mode) {
  if (mode == KernelMode::kAuto) {
    if (const char* env = std::getenv("IFLS_KERNELS")) {
      if (std::strcmp(env, "scalar") == 0) mode = KernelMode::kScalar;
      if (std::strcmp(env, "simd") == 0 || std::strcmp(env, "avx2") == 0) {
        mode = KernelMode::kSimd;
      }
    }
  }
#if IFLS_KERNEL_SIMD_COMPILED
  if (mode != KernelMode::kScalar && CpuHasAvx2()) return &kSimdTable;
#endif
  return &kScalarTable;
}

std::atomic<const KernelTable*>& ActiveTableSlot() {
  static std::atomic<const KernelTable*> slot{
      ResolveTable(KernelMode::kAuto)};
  return slot;
}

const KernelTable& Active() {
  return *ActiveTableSlot().load(std::memory_order_acquire);
}

}  // namespace

bool SimdAvailable() { return CpuHasAvx2(); }

void SetKernelMode(KernelMode mode) {
  ActiveTableSlot().store(ResolveTable(mode), std::memory_order_release);
}

KernelMode ActiveKernelMode() { return Active().mode; }

const char* ActiveKernelName() { return Active().name; }

double MinPlusJoin(const double* a, const std::int32_t* rows, std::size_t nr,
                   const double* b, const std::int32_t* cols, std::size_t nc,
                   const double* m, std::size_t stride) {
  return Active().min_plus_join(a, rows, nr, b, cols, nc, m, stride);
}

void MinPlusCompose(const double* a, const std::int32_t* rows, std::size_t nr,
                    const std::int32_t* cols, std::size_t nc, const double* m,
                    std::size_t stride, double* out) {
  Active().min_plus_compose(a, rows, nr, cols, nc, m, stride, out);
}

double MinPlusGather(double s, const double* row, const std::int32_t* idx,
                     std::size_t n) {
  return Active().min_plus_gather(s, row, idx, n);
}

double MinPlusGatherAdd(double s, const double* row, const std::int32_t* idx,
                        const double* b, std::size_t n) {
  return Active().min_plus_gather_add(s, row, idx, b, n);
}

double MinPlusPairwise(const double* a, const double* b, std::size_t n) {
  return Active().min_plus_pairwise(a, b, n);
}

std::size_t MinPlusArgmin(double s, const double* row, std::size_t n) {
  return Active().min_plus_argmin(s, row, n);
}

void GatherCells(const double* row, const std::int32_t* idx, std::size_t n,
                 double* out) {
  Active().gather_cells(row, idx, n, out);
}

}  // namespace kernels
}  // namespace ifls
