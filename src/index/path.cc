#include "src/index/path.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "src/common/logging.h"
#include "src/index/distance_oracle.h"
#include "src/index/minplus_kernels.h"

namespace ifls {

PathReconstructor::PathReconstructor(const VipTree* tree)
    : tree_(tree), graph_(tree->venue()) {
  IFLS_CHECK(tree != nullptr);
}

namespace {

Status ValidateEndpoint(const Venue& venue, const Point& p, PartitionId pid,
                        const char* which) {
  if (pid < 0 || static_cast<std::size_t>(pid) >= venue.num_partitions()) {
    return Status::InvalidArgument(std::string(which) +
                                   " partition id out of range");
  }
  if (!venue.partition(pid).rect.Contains(p)) {
    return Status::InvalidArgument(std::string(which) +
                                   " point lies outside its partition");
  }
  return Status::OK();
}

}  // namespace

std::vector<DoorId> PathReconstructor::DoorRoute(DoorId a, DoorId b) const {
  std::vector<DoorId> route;
  route.push_back(a);
  DoorId cur = a;
  const std::size_t max_hops = tree_->venue().num_doors() + 1;
  while (cur != b && route.size() <= max_hops) {
    const DoorId hop = tree_->FirstHop(cur, b);
    if (hop == kInvalidDoor) {
      // Crossed out of first-hop coverage (different leaves): finish with
      // an exact graph search from the current door.
      const ShortestPaths paths = ShortestPathsToTargets(graph_, cur, {b});
      std::vector<DoorId> tail = ReconstructPath(paths, cur, b);
      IFLS_CHECK(!tail.empty()) << "unreachable door pair in connected venue";
      route.insert(route.end(), tail.begin() + 1, tail.end());
      return route;
    }
    route.push_back(hop);
    cur = hop;
  }
  IFLS_CHECK(cur == b) << "first-hop chain failed to terminate";
  return route;
}

Result<IndoorPath> PathReconstructor::PointToPoint(const Point& a,
                                                   PartitionId pa,
                                                   const Point& b,
                                                   PartitionId pb) const {
  const Venue& venue = tree_->venue();
  IFLS_RETURN_NOT_OK(ValidateEndpoint(venue, a, pa, "start"));
  IFLS_RETURN_NOT_OK(ValidateEndpoint(venue, b, pb, "end"));
  IndoorPath path;
  path.start = a;
  path.start_partition = pa;
  path.end = b;
  path.end_partition = pb;
  if (pa == pb) {
    path.distance = PlanarDistance(a, b);
    return path;
  }
  // Row-at-a-time argmin: materialize each source door's candidate sums
  // (the exact left-associated expression of the original nested loop),
  // then let the kernel pick the first index attaining the row minimum.
  // A strict `row_min < best` update preserves the original flattened-scan
  // tie-break: within a row, the last strict improvement lands on the first
  // occurrence of the row minimum.
  const std::vector<DoorId>& doors_b = venue.partition(pb).doors;
  std::vector<double> sums(doors_b.size());
  double best = kInfDistance;
  DoorId best_a = kInvalidDoor;
  DoorId best_b = kInvalidDoor;
  for (DoorId d1 : venue.partition(pa).doors) {
    const double leg_a = PointToDoorDistance(a, venue.door(d1));
    for (std::size_t j = 0; j < doors_b.size(); ++j) {
      const double leg_b = PointToDoorDistance(b, venue.door(doors_b[j]));
      sums[j] = leg_a + tree_->DoorToDoor(d1, doors_b[j]) + leg_b;
    }
    if (sums.empty()) continue;
    const std::size_t j = kernels::MinPlusArgmin(0.0, sums.data(), sums.size());
    CountKernelInvocation();
    if (sums[j] < best) {
      best = sums[j];
      best_a = d1;
      best_b = doors_b[j];
    }
  }
  if (best_a == kInvalidDoor) {
    return Status::NotFound("no door route between the partitions");
  }
  path.distance = best;
  path.doors = DoorRoute(best_a, best_b);
  return path;
}

Result<IndoorPath> PathReconstructor::PointToPartition(
    const Point& a, PartitionId pa, PartitionId target) const {
  const Venue& venue = tree_->venue();
  IFLS_RETURN_NOT_OK(ValidateEndpoint(venue, a, pa, "start"));
  if (target < 0 ||
      static_cast<std::size_t>(target) >= venue.num_partitions()) {
    return Status::InvalidArgument("target partition id out of range");
  }
  IndoorPath path;
  path.start = a;
  path.start_partition = pa;
  path.end_partition = target;
  if (pa == target) {
    path.end = a;
    path.distance = 0.0;
    return path;
  }
  const std::vector<DoorId>& doors_t = venue.partition(target).doors;
  std::vector<double> row(doors_t.size());
  double best = kInfDistance;
  DoorId best_a = kInvalidDoor;
  DoorId best_b = kInvalidDoor;
  for (DoorId d1 : venue.partition(pa).doors) {
    const double leg = PointToDoorDistance(a, venue.door(d1));
    for (std::size_t j = 0; j < doors_t.size(); ++j) {
      row[j] = tree_->DoorToDoor(d1, doors_t[j]);
    }
    if (row.empty()) continue;
    // First-index argmin over leg + row[j]; strict update keeps the
    // original flattened-scan tie-break (see PointToPoint above).
    const std::size_t j = kernels::MinPlusArgmin(leg, row.data(), row.size());
    CountKernelInvocation();
    const double cand = leg + row[j];
    if (cand < best) {
      best = cand;
      best_a = d1;
      best_b = doors_t[j];
    }
  }
  if (best_a == kInvalidDoor) {
    return Status::NotFound("no door route to the target partition");
  }
  path.distance = best;
  path.doors = DoorRoute(best_a, best_b);
  path.end = venue.door(best_b).position;
  return path;
}

std::vector<Point> PathReconstructor::Waypoints(const IndoorPath& path,
                                                const Venue& venue) {
  std::vector<Point> points;
  points.reserve(path.doors.size() + 2);
  points.push_back(path.start);
  for (DoorId d : path.doors) points.push_back(venue.door(d).position);
  points.push_back(path.end);
  return points;
}

std::string PathReconstructor::Describe(const IndoorPath& path,
                                        const Venue& venue) {
  std::ostringstream os;
  os << "partition " << path.start_partition;
  for (DoorId d : path.doors) {
    const Door& door = venue.door(d);
    os << " -> door " << d;
    if (door.is_stair_door()) os << " (stairs)";
  }
  os << " -> partition " << path.end_partition << " [" << path.distance
     << " m, " << path.doors.size() << " doors]";
  return os.str();
}

}  // namespace ifls
