#include <algorithm>
#include <optional>

#include "src/common/logging.h"
#include "src/common/trace.h"
#include "src/index/minplus_kernels.h"
#include "src/index/vip_tree.h"

namespace ifls {
namespace {

/// Appends the (up to two) distinct leaves containing door `d`.
void LeavesOfDoor(const VipTree& tree, const Door& d, NodeId out[2],
                  int* count) {
  out[0] = tree.LeafOf(d.partition_a);
  const NodeId other = tree.LeafOf(d.partition_b);
  *count = 1;
  if (other != out[0]) {
    out[1] = other;
    *count = 2;
  }
}

}  // namespace

void VipTree::DistancesToAncestorAccessDoors(DoorId a, NodeId leaf,
                                             NodeId ancestor,
                                             std::vector<double>* out) const {
  const VipNode& leaf_node = node(leaf);
  const VipNode& anc_node = node(ancestor);
  out->clear();
  if (ancestor == leaf) {
    const int row = leaf_node.matrix.RowIndex(a);
    IFLS_DCHECK(row >= 0);
    const std::size_t n = leaf_node.access_door_idx.size();
    out->resize(n);
    kernels::GatherCells(
        leaf_node.matrix.dist_data() +
            static_cast<std::size_t>(row) * leaf_node.matrix.num_cols(),
        leaf_node.access_door_idx.data(), n, out->data());
    CountKernelInvocation();
    BumpMatrixLookups(n);
    return;
  }
  if (options_.build_leaf_to_ancestor) {
    // VIP mode: direct lookup in the materialized leaf->ancestor matrix.
    const int k = leaf_node.depth - anc_node.depth - 1;
    IFLS_DCHECK(k >= 0 &&
                static_cast<std::size_t>(k) < leaf_node.ancestor_matrices.size());
    const DoorMatrixView& m =
        leaf_node.ancestor_matrices[static_cast<std::size_t>(k)];
    const int row = m.RowIndex(a);
    IFLS_DCHECK(row >= 0);
    out->reserve(m.num_cols());
    for (std::size_t c = 0; c < m.num_cols(); ++c) {
      out->push_back(m.At(row, static_cast<int>(c)));
    }
    BumpMatrixLookups(m.num_cols());
    return;
  }
  // IP mode: compose along the node chain leaf -> ... -> ancestor. At each
  // step, distances to the current node's access doors are folded through
  // the parent's matrix into distances to the parent's access doors.
  std::vector<double> dist;
  DistancesToAncestorAccessDoors(a, leaf, leaf, &dist);  // over AD(leaf)
  NodeId cur = leaf;
  while (cur != ancestor) {
    const NodeId parent_id = node(cur).parent;
    IFLS_CHECK(parent_id != kInvalidNode)
        << "ancestor is not on the leaf's root chain";
    const VipNode& parent = node(parent_id);
    // Position of `cur` among the parent's children (fanout is small).
    std::size_t child_pos = 0;
    while (parent.children[child_pos] != cur) ++child_pos;
    const std::span<const std::int32_t> rows =
        parent.child_access_idx(child_pos);
    const std::span<const std::int32_t> cols = parent.access_door_idx;
    std::vector<double> next(cols.size());
    kernels::MinPlusCompose(dist.data(), rows.data(), rows.size(), cols.data(),
                            cols.size(), parent.matrix.dist_data(),
                            parent.matrix.num_cols(), next.data());
    CountKernelInvocation();
    BumpMatrixLookups(rows.size() * cols.size());
    dist = std::move(next);
    cur = parent_id;
  }
  *out = std::move(dist);
}

double VipTree::DoorToDoor(DoorId a, DoorId b) const {
  if (a == b) return 0.0;
  // Per-orientation key, deliberately NOT normalized to (min, max): the
  // composed value for (a, b) associates its sums in the opposite order
  // from (b, a) and may differ in the last ULP, so serving one orientation
  // from the other's entry would make a warm cache visibly diverge from a
  // cold recompute. Caching each orientation separately keeps cached and
  // uncached answers bit-identical.
  const std::uint64_t cache_key = (static_cast<std::uint64_t>(a) << 32) |
                                  static_cast<std::uint32_t>(b);
  std::optional<TraceSpan> fill_span;
  if (options_.enable_door_distance_cache) {
    double cached = 0.0;
    if (CachedDoorDistance(cache_key, &cached)) {
      BumpCacheHits();
      return cached;
    }
    BumpCacheMisses();
    // Everything below is the work a warm cache would have skipped.
    if (TraceEnabled()) {
      fill_span.emplace(TraceCategory::kCache, "door_cache_fill");
    }
  }
  BumpDoorDistanceEvals();
  const Door& door_a = venue_->door(a);

  // Fast path: both doors incident to one leaf -> direct matrix lookup.
  NodeId leaves_a[2];
  int count_a = 0;
  LeavesOfDoor(*this, door_a, leaves_a, &count_a);
  for (int i = 0; i < count_a; ++i) {
    const VipNode& leaf = node(leaves_a[i]);
    const int row = leaf.matrix.RowIndex(a);
    const int col = leaf.matrix.ColIndex(b);
    if (row >= 0 && col >= 0) {
      BumpMatrixLookups(1);
      const double result = leaf.matrix.At(row, col);
      if (options_.enable_door_distance_cache) {
        StoreDoorDistance(cache_key, result);
      }
      return result;
    }
  }

  // General case: compose through the LCA of the two home leaves.
  TraceSpan compose_span(TraceCategory::kOracle, "vip_lca_compose");
  const Door& door_b = venue_->door(b);
  const NodeId la = LeafOf(door_a.partition_a);
  const NodeId lb = LeafOf(door_b.partition_a);
  IFLS_DCHECK(la != lb);  // same leaf was handled by the fast path

  // Walk both sides up to the children of the LCA.
  NodeId ca = la;
  NodeId cb = lb;
  while (node(ca).depth > node(cb).depth) ca = node(ca).parent;
  while (node(cb).depth > node(ca).depth) cb = node(cb).parent;
  while (node(ca).parent != node(cb).parent) {
    ca = node(ca).parent;
    cb = node(cb).parent;
  }
  IFLS_DCHECK(ca != cb);
  const VipNode& lca = node(node(ca).parent);

  // Per-thread reusable composition buffers: DoorToDoor sits on the hot
  // path of every solver, and thread-locality both removes the per-call
  // allocations and keeps concurrent readers from sharing scratch.
  // DoorToDoor never re-enters itself, so one scratch pair per thread
  // suffices.
  static thread_local std::vector<double> dist_a;
  static thread_local std::vector<double> dist_b;
  DistancesToAncestorAccessDoors(a, la, ca, &dist_a);
  DistancesToAncestorAccessDoors(b, lb, cb, &dist_b);

  // Positions of the two children among the LCA's children (small fanout).
  std::size_t pos_a = 0;
  while (lca.children[pos_a] != ca) ++pos_a;
  std::size_t pos_b = 0;
  while (lca.children[pos_b] != cb) ++pos_b;
  const std::span<const std::int32_t> rows = lca.child_access_idx(pos_a);
  const std::span<const std::int32_t> cols = lca.child_access_idx(pos_b);

  // The kernel evaluates the exact reference expression
  // (dist_a[i] + m) + dist_b[j]; unreachable rows (dist_a[i] == inf) yield
  // +inf candidates, which never beat a finite minimum, so skipping them is
  // unnecessary for bit-identity.
  const double best = kernels::MinPlusJoin(
      dist_a.data(), rows.data(), rows.size(), dist_b.data(), cols.data(),
      cols.size(), lca.matrix.dist_data(), lca.matrix.num_cols());
  CountKernelInvocation();
  BumpMatrixLookups(rows.size() * cols.size());
  if (options_.enable_door_distance_cache) {
    StoreDoorDistance(cache_key, best);
  }
  return best;
}

double VipTree::PointToPartition(const Point& a, PartitionId pa,
                                 PartitionId target) const {
  if (pa == target) return 0.0;
  const Partition& part_a = venue_->partition(pa);
  if (options_.single_door_optimization && part_a.doors.size() == 1) {
    // Paper §5.3.1 Case 1: the single exit door makes the partition-level
    // distance reusable; only the local leg differs per point.
    const Door& only = venue_->door(part_a.doors[0]);
    return PointToDoorDistance(a, only) +
           DoorToPartition(only.id, target);
  }
  // General case: the interface's generic composition (identical loops to
  // the pre-oracle implementation).
  return DistanceOracle::PointToPartition(a, pa, target);
}

double VipTree::PartitionToNode(PartitionId p, NodeId n) const {
  if (NodeContainsPartition(n, p)) return 0.0;
  const VipNode& target = node(n);
  const Partition& part = venue_->partition(p);
  double best = kInfDistance;
  for (DoorId d1 : part.doors) {
    for (DoorId ad : target.access_doors) {
      const double cand = DoorToDoor(d1, ad);
      if (cand < best) best = cand;
    }
  }
  return best;
}

double VipTree::PointToNode(const Point& a, PartitionId pa, NodeId n) const {
  if (NodeContainsPartition(n, pa)) return 0.0;
  const VipNode& target = node(n);
  const Partition& part = venue_->partition(pa);
  double best = kInfDistance;
  for (DoorId d1 : part.doors) {
    const double leg = PointToDoorDistance(a, venue_->door(d1));
    if (leg >= best) continue;
    for (DoorId ad : target.access_doors) {
      const double cand = leg + DoorToDoor(d1, ad);
      if (cand < best) best = cand;
    }
  }
  return best;
}

DoorId VipTree::FirstHop(DoorId a, DoorId b) const {
  if (a == b || !options_.store_first_hop) return kInvalidDoor;
  const Door& door_a = venue_->door(a);
  NodeId leaves_a[2];
  int count_a = 0;
  LeavesOfDoor(*this, door_a, leaves_a, &count_a);
  for (int i = 0; i < count_a; ++i) {
    const VipNode& leaf = node(leaves_a[i]);
    const int row = leaf.matrix.RowIndex(a);
    const int col = leaf.matrix.ColIndex(b);
    if (row >= 0 && col >= 0) return leaf.matrix.FirstHopAt(row, col);
  }
  return kInvalidDoor;
}

}  // namespace ifls
