#ifndef IFLS_INDEX_MINPLUS_KERNELS_H_
#define IFLS_INDEX_MINPLUS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace ifls {
namespace kernels {

/// Every IFLS objective bottoms out in min-plus reductions over VIP-tree
/// door matrices: min_k (src[k] + M[k][j] + dst[j]) and friends, executed
/// millions of times per workload directly on the arena-resident matrix
/// spans. This family implements those reductions as blocked, contiguous
/// kernels over a ladder of ISA tiers, one translation unit per tier
/// (src/index/kernels/):
///
///  * scalar    — portable reference, always compiled, always available;
///  * sse4      — 2-lane __m128d blocks (-msse4.2), for older serving
///                hardware without AVX;
///  * avx2      — 4-lane __m256d blocks with vgatherdpd (-mavx2);
///  * avx512    — 8-lane __m512d blocks (-mavx512f).
///
/// cmake/cpu_features.cmake probes the compiler per tier and compiles each
/// backend's translation unit with its own per-file ISA flag (no global
/// -m<isa>; the rest of the binary keeps the baseline ISA and still runs
/// anywhere). At startup a choose-best table keyed on runtime cpuid
/// (__builtin_cpu_supports) selects the highest compiled-in tier this CPU
/// reports; IFLS_KERNELS=scalar|sse4|avx2|avx512 pins any tier, and naming
/// an unknown or unavailable tier is a typed error, never a silent
/// fallback.
///
/// Bit-identity contract: every tier produces bit-identical doubles. The
/// candidate terms are the exact same IEEE expressions — left-associated
/// sums like (a[i] + m) + b[j], no FMA contraction, no reassociation — and
/// the reduction operator `min` always returns one of its operands, so the
/// reduction order (scalar loop vs 2/4/8-lane tree) cannot change a single
/// bit. Argmin kernels additionally pin the tie-break: lowest index
/// attaining the minimal sum wins, matching the reference `cand < best`
/// loops. tests/minplus_kernels_test.cc locks both properties in across
/// the full tier product under ASan.

/// The ISA ladder, ordered: a higher tier is never slower to select. Values
/// are dense and stable (bench reports and the tier-product tests iterate
/// [0, kNumKernelTiers)).
enum class KernelTier : int {
  kScalar = 0,
  kSse4 = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};
inline constexpr int kNumKernelTiers = 4;

/// Stable lower-case tier name: "scalar", "sse4", "avx2", "avx512". These
/// are exactly the IFLS_KERNELS values, the ifls_kernel_backend metric
/// labels and the bench-report kernel_dispatch strings.
const char* KernelTierName(KernelTier tier);

/// Parses a tier name ("avx512f" is accepted as an alias for "avx512", and
/// the legacy "simd" pin from the two-backend era resolves to the best
/// supported SIMD tier). Unknown names are kInvalidArgument listing the
/// valid values.
Result<KernelTier> ParseKernelTier(const std::string& name);

/// True when the tier's backend is compiled into this binary (its
/// IFLS_HAVE_<TIER> translation unit was built).
bool KernelTierCompiled(KernelTier tier);

/// True when the tier is compiled in AND the running CPU reports the
/// feature. kScalar is always supported.
bool KernelTierSupported(KernelTier tier);

/// The highest supported tier — what auto-dispatch selects.
KernelTier BestKernelTier();

/// Pins dispatch to exactly `tier`. kFailedPrecondition when the tier is
/// not compiled in or the CPU lacks it; on error the active tier is
/// unchanged. Thread-safe (atomic table swap); in-flight kernel calls
/// finish on the table they started with.
Status PinKernelTier(KernelTier tier);

/// Applies the IFLS_KERNELS environment override, if set. Unset: OK, no
/// change. Set to a valid supported tier: pins it. Set to an unknown name
/// or an unavailable tier: a typed error and no change. Called by the lazy
/// dispatch init (which logs any error and falls back to BestKernelTier())
/// and directly by tools/benches that want the error to be fatal.
Status ApplyKernelEnvOverride();

/// Restores auto dispatch: the IFLS_KERNELS override when valid, else the
/// best supported tier (any invalid override is logged once per call).
/// Tests and benches that pinned a tier call this to hand dispatch back.
void ResetKernelTierAuto();

/// The tier the dispatch table currently points at.
KernelTier ActiveKernelTier();

/// KernelTierName(ActiveKernelTier()) — for bench reports and logs.
const char* ActiveKernelName();

// ---------------------------------------------------------------------------
// Kernels. All matrices are row-major with a fixed row stride; `rows`/`cols`
// are int32 index lists selecting matrix rows/columns (the arena layout's
// access-door index maps are exactly that). Empty inputs reduce to
// +infinity / are no-ops.
// ---------------------------------------------------------------------------

/// Row+matrix+col join (the DoorToDoor LCA composition):
///   min over i,j of (a[i] + m[rows[i]*stride + cols[j]]) + b[j].
double MinPlusJoin(const double* a, const std::int32_t* rows, std::size_t nr,
                   const double* b, const std::int32_t* cols, std::size_t nc,
                   const double* m, std::size_t stride);

/// Fold distances through a matrix (IP-mode chain composition):
///   out[j] = min over i of a[i] + m[rows[i]*stride + cols[j]].
void MinPlusCompose(const double* a, const std::int32_t* rows, std::size_t nr,
                    const std::int32_t* cols, std::size_t nc, const double* m,
                    std::size_t stride, double* out);

/// Scalar-source gather reduce: min over j of s + row[idx[j]].
double MinPlusGather(double s, const double* row, const std::int32_t* idx,
                     std::size_t n);

/// Scalar-source gather join: min over j of (s + row[idx[j]]) + b[j].
double MinPlusGatherAdd(double s, const double* row, const std::int32_t* idx,
                        const double* b, std::size_t n);

/// Batched pairwise reduce (many-clients-one-candidate):
///   min over k of a[k] + b[k].
double MinPlusPairwise(const double* a, const double* b, std::size_t n);

/// First-hop extraction: the lowest index k attaining
///   min over k of s + row[k].
/// Precondition: n > 0. Ties resolve to the lowest index, matching the
/// reference `cand < best` scan.
std::size_t MinPlusArgmin(double s, const double* row, std::size_t n);

/// out[i] = row[idx[i]] (row extraction by access-door index map).
void GatherCells(const double* row, const std::int32_t* idx, std::size_t n,
                 double* out);

}  // namespace kernels
}  // namespace ifls

#endif  // IFLS_INDEX_MINPLUS_KERNELS_H_
